# Tier-1 gate: `make ci` is what every change must keep green.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build vet test race bench fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$

fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/tree
	$(GO) test -run='^$$' -fuzz='^FuzzParseString$$' -fuzztime=$(FUZZTIME) ./internal/xmltree
	$(GO) test -run='^$$' -fuzz='^FuzzLoadIndex$$' -fuzztime=$(FUZZTIME) ./internal/search

ci: build vet test race fuzz
