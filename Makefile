# Tier-1 gate: `make ci` is what every change must keep green.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build vet test race hammer chaos bench bench-server bench-diff fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Parallel-engine and storage-engine certificate: the shard invariance
# tests and the compaction hammer (concurrent inserts, deletes, queries,
# compactions and snapshots) under the race detector, repeated.
hammer:
	$(GO) test -race -count=2 -run 'Shard|Hammer' ./internal/search

# Fault-tolerance certificate: the chaos matrix drives every durability
# operation (insert, delete, seal, compact, snapshot, rotate, trim)
# through every fault class (crash, short write, fsync error), restarts
# after each cell, and asserts zero acked-write loss plus
# snapshot/WAL/live-index parity — all under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Degraded|Fallback|TornTombstone' ./internal/server ./internal/wal

bench:
	$(GO) test -bench=. -benchmem -run=^$$

# End-to-end serving benchmark: fixed-seed workload over real HTTP against
# an in-process server; writes client percentiles + server stage means.
bench-server:
	$(GO) run ./cmd/benchserver -out BENCH_server.json

# Compare two benchmark reports (defaults: the committed BENCH_server.json
# against a fresh run). Exits 3 on a >20% p99 regression.
#   make bench-diff OLD=BENCH_server.json NEW=BENCH_server.new.json
OLD ?= BENCH_server.json
NEW ?= BENCH_server.new.json
bench-diff:
	test -f $(NEW) || $(GO) run ./cmd/benchserver -out $(NEW)
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/tree
	$(GO) test -run='^$$' -fuzz='^FuzzParseString$$' -fuzztime=$(FUZZTIME) ./internal/xmltree
	$(GO) test -run='^$$' -fuzz='^FuzzLoadIndex$$' -fuzztime=$(FUZZTIME) ./internal/search
	$(GO) test -run='^$$' -fuzz='^FuzzManifest$$' -fuzztime=$(FUZZTIME) ./internal/segstore

ci: build vet test race hammer chaos fuzz
