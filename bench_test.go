package treesim

// The benchmark harness regenerating the paper's evaluation (one benchmark
// per figure, Figs. 7–15) plus micro-benchmarks backing the complexity
// claims of Sections 3–4 and ablations of the design choices listed in
// DESIGN.md.
//
// Figure benchmarks run the corresponding experiment at a laptop scale and
// report the headline measures as custom metrics:
//
//	bibranch-%   average % of the dataset verified under the BiBranch filter
//	histo-%      same for the Histo baseline
//	speedup-x    sequential CPU time / BiBranch CPU time
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Paper-scale runs (2000 trees, 100 queries) are available through
// cmd/experiments -scale paper.

import (
	"context"
	"testing"

	"treesim/internal/branch"
	"treesim/internal/datagen"
	"treesim/internal/dblp"
	"treesim/internal/editdist"
	"treesim/internal/experiments"
	"treesim/internal/invfile"
	"treesim/internal/search"
	"treesim/internal/tree"
)

// benchScale is the dataset scale for figure benchmarks.
func benchScale() experiments.Config {
	cfg := experiments.UnitScale()
	cfg.DatasetSize = 150
	cfg.Queries = 8
	return cfg
}

func reportTable(b *testing.B, t *experiments.Table) {
	b.Helper()
	var bib, his, speed float64
	for _, r := range t.Rows {
		bib += r.BiBranchPct
		his += r.HistoPct
		if r.BiBranchTime > 0 {
			speed += float64(r.SeqTime) / float64(r.BiBranchTime)
		}
	}
	n := float64(len(t.Rows))
	b.ReportMetric(bib/n, "bibranch-%")
	b.ReportMetric(his/n, "histo-%")
	b.ReportMetric(speed/n, "speedup-x")
}

func BenchmarkFig07FanoutRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.Fig07(benchScale()))
	}
}

func BenchmarkFig08FanoutKNN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.Fig08(benchScale()))
	}
}

func BenchmarkFig09SizeRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.Fig09(benchScale()))
	}
}

func BenchmarkFig10SizeKNN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.Fig10(benchScale()))
	}
}

func BenchmarkFig11LabelRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.Fig11(benchScale()))
	}
}

func BenchmarkFig12LabelKNN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.Fig12(benchScale()))
	}
}

func BenchmarkFig13DBLPKNN(b *testing.B) {
	cfg := benchScale()
	cfg.DatasetSize = 600 // DBLP records are tiny; use more of them
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.Fig13(cfg))
	}
}

func BenchmarkFig14DBLPRange(b *testing.B) {
	cfg := benchScale()
	cfg.DatasetSize = 600
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.Fig14(cfg))
	}
}

func BenchmarkFig15Distribution(b *testing.B) {
	cfg := benchScale()
	cfg.DatasetSize = 400
	for i := 0; i < b.N; i++ {
		t := experiments.Fig15(cfg)
		// Report the area between each bound's CDF and the Edit CDF —
		// smaller is tighter.
		var hGap, b2Gap float64
		for _, r := range t.Rows {
			hGap += r.Histo - r.Edit
			b2Gap += r.BiBranch2 - r.Edit
		}
		b.ReportMetric(hGap/float64(len(t.Rows)), "histo-gap")
		b.ReportMetric(b2Gap/float64(len(t.Rows)), "bibranch2-gap")
	}
}

// --- Micro-benchmarks: the complexity claims of Sections 3–4. ---

func syntheticPair(size float64, seed int64) (*tree.Tree, *tree.Tree) {
	spec := datagen.Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: size, SizeStd: 2, Labels: 8, Decay: 0.05}
	g := datagen.New(spec, seed)
	t1 := g.Seed()
	return t1, g.Derive(t1)
}

// BenchmarkEditDistance measures the quadratic Zhang–Shasha cost at the
// paper's tree sizes — the cost the filter avoids.
func BenchmarkEditDistance(b *testing.B) {
	for _, size := range []float64{25, 50, 100} {
		t1, t2 := syntheticPair(size, 7)
		b.Run(sizeName(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				editdist.Distance(t1, t2)
			}
		})
	}
}

// BenchmarkBDist measures the linear binary branch distance at the same
// sizes (profiles precomputed, as in a real index).
func BenchmarkBDist(b *testing.B) {
	for _, size := range []float64{25, 50, 100} {
		t1, t2 := syntheticPair(size, 7)
		s := branch.NewSpace(2)
		p1, p2 := s.Profile(t1), s.Profile(t2)
		b.Run(sizeName(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				branch.BDist(p1, p2)
			}
		})
	}
}

// BenchmarkSearchLBound measures the positional optimistic bound
// (O((|T1|+|T2|)·log min(|T1|,|T2|)), Section 4.4).
func BenchmarkSearchLBound(b *testing.B) {
	for _, size := range []float64{25, 50, 100} {
		t1, t2 := syntheticPair(size, 7)
		s := branch.NewSpace(2)
		p1, p2 := s.Profile(t1), s.Profile(t2)
		b.Run(sizeName(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				branch.SearchLBound(p1, p2)
			}
		})
	}
}

// BenchmarkProfile measures per-tree vector construction.
func BenchmarkProfile(b *testing.B) {
	for _, size := range []float64{25, 50, 100} {
		t1, _ := syntheticPair(size, 7)
		b.Run(sizeName(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				branch.NewSpace(2).Profile(t1)
			}
		})
	}
}

// BenchmarkVectorConstruction measures Algorithm 1 — the dataset-wide
// inverted file build plus the scan that materializes all vectors —
// demonstrating the linear O(Σ|Ti|) claim of Section 4.4.
func BenchmarkVectorConstruction(b *testing.B) {
	for _, n := range []int{100, 200, 400} {
		spec := datagen.Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: 50, SizeStd: 2, Labels: 8, Decay: 0.05}
		ts := datagen.New(spec, 3).Dataset(n, 10)
		b.Run(intName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				invfile.Build(branch.NewSpace(2), ts).Profiles()
			}
		})
	}
}

// BenchmarkKNNQuery compares one k-NN query under each filter on a fixed
// synthetic dataset (index construction excluded).
func BenchmarkKNNQuery(b *testing.B) {
	spec := datagen.Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: 50, SizeStd: 2, Labels: 8, Decay: 0.05}
	ts := datagen.New(spec, 5).Dataset(300, 15)
	q := ts[42]
	filters := map[string]search.Filter{
		"BiBranch":   search.NewBiBranch(),
		"Histo":      search.NewHisto(),
		"Sequential": search.NewNone(),
	}
	for name, f := range filters {
		ix := search.NewIndex(ts, search.WithFilter(f))
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.KNN(context.Background(), q, 3)
			}
		})
	}
}

// --- Ablations (DESIGN.md, "Design choices to ablate"). ---

// BenchmarkAblationPositional compares the positional optimistic bound
// against plain ceil(BDist/5) filtering: verified fraction and query time.
func BenchmarkAblationPositional(b *testing.B) {
	spec := datagen.Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: 50, SizeStd: 2, Labels: 8, Decay: 0.05}
	ts := datagen.New(spec, 5).Dataset(300, 15)
	q := ts[42]
	for _, positional := range []bool{true, false} {
		name := "positional"
		if !positional {
			name = "plain"
		}
		ix := search.NewIndex(ts, &search.BiBranch{Q: 2, Positional: positional})
		b.Run(name, func(b *testing.B) {
			var verified int
			for i := 0; i < b.N; i++ {
				_, st, _ := ix.KNN(context.Background(), q, 3)
				verified = st.Verified
			}
			b.ReportMetric(100*float64(verified)/float64(len(ts)), "accessed-%")
		})
	}
}

// BenchmarkAblationQLevel sweeps the branch level q: higher levels encode
// more structure but loosen the scaled bound on shallow data.
func BenchmarkAblationQLevel(b *testing.B) {
	spec := datagen.Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: 50, SizeStd: 2, Labels: 8, Decay: 0.05}
	ts := datagen.New(spec, 5).Dataset(300, 15)
	q := ts[42]
	for _, ql := range []int{2, 3, 4} {
		ix := search.NewIndex(ts, &search.BiBranch{Q: ql, Positional: true})
		b.Run(intName(ql), func(b *testing.B) {
			var verified int
			for i := 0; i < b.N; i++ {
				_, st, _ := ix.KNN(context.Background(), q, 3)
				verified = st.Verified
			}
			b.ReportMetric(100*float64(verified)/float64(len(ts)), "accessed-%")
		})
	}
}

// BenchmarkAblationMatching compares the greedy monotone positional
// matching fast path with the exact augmenting-path fallback on co-sorted
// occurrence lists (where both are valid).
func BenchmarkAblationMatching(b *testing.B) {
	// Occurrence lists from a real profile: the most frequent branch of a
	// large tree.
	spec := datagen.Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: 200, SizeStd: 5, Labels: 4, Decay: 0.05}
	g := datagen.New(spec, 9)
	s := branch.NewSpace(2)
	p1, p2 := s.Profile(g.Seed()), s.Profile(g.Seed())
	b.Run("PosBDist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			branch.PosBDist(p1, p2, 10)
		}
	})
}

// BenchmarkAblationIFIvsDirect compares batch (inverted file) and per-tree
// profile construction.
func BenchmarkAblationIFIvsDirect(b *testing.B) {
	spec := datagen.Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: 50, SizeStd: 2, Labels: 8, Decay: 0.05}
	ts := datagen.New(spec, 3).Dataset(200, 10)
	b.Run("IFI", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			invfile.Build(branch.NewSpace(2), ts).Profiles()
		}
	})
	b.Run("Direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			branch.NewSpace(2).ProfileAll(ts)
		}
	})
}

// BenchmarkAblationFilterVariants compares one range query under the
// BiBranch filter family: plain per-candidate bounds, the pivot cascade,
// and the VP-tree candidate enumeration.
func BenchmarkAblationFilterVariants(b *testing.B) {
	spec := datagen.Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: 50, SizeStd: 2, Labels: 8, Decay: 0.05}
	ts := datagen.New(spec, 5).Dataset(400, 20)
	q := ts[42]
	variants := map[string]search.Filter{
		"BiBranch": search.NewBiBranch(),
		"Pivot":    search.NewPivotBiBranch(),
		"VPTree":   search.NewVPBiBranch(),
	}
	for name, f := range variants {
		ix := search.NewIndex(ts, search.WithFilter(f))
		b.Run(name, func(b *testing.B) {
			var verified int
			for i := 0; i < b.N; i++ {
				_, st, _ := ix.Range(context.Background(), q, 3)
				verified = st.Verified
			}
			b.ReportMetric(float64(verified), "verified")
		})
	}
}

// BenchmarkDBLPGeneration measures the DBLP-like dataset substrate.
func BenchmarkDBLPGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dblp.New(int64(i)).Dataset(500)
	}
}

func sizeName(s float64) string { return intName(int(s)) }

func intName(n int) string {
	switch {
	case n < 10:
		return string(rune('0' + n))
	default:
		out := ""
		for n > 0 {
			out = string(rune('0'+n%10)) + out
			n /= 10
		}
		return out
	}
}
