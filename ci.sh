#!/bin/sh
# Tier-1 gate: build, vet, test, and race-test the whole module.
# Equivalent to `make ci`; kept as a shell script for environments
# without make.
set -eu

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

# Serving-benchmark smoke: a tiny fixed-seed run proves the end-to-end
# harness works; real numbers come from `make bench-server`.
echo "== benchserver smoke"
go run ./cmd/benchserver -n 200 -queries 20 -out "$(mktemp /tmp/bench_server.XXXXXX.json)"

# Fuzz smoke: a short budget per target catches parser and codec
# regressions on the spot; long runs belong in a dedicated job.
FUZZTIME="${FUZZTIME:-10s}"
echo "== go test -fuzz (fuzztime $FUZZTIME per target)"
go test -run='^$' -fuzz='^FuzzParse$' -fuzztime="$FUZZTIME" ./internal/tree
go test -run='^$' -fuzz='^FuzzParseString$' -fuzztime="$FUZZTIME" ./internal/xmltree
go test -run='^$' -fuzz='^FuzzLoadIndex$' -fuzztime="$FUZZTIME" ./internal/search

echo "ci: all green"
