#!/bin/sh
# Tier-1 gate: build, vet, test, and race-test the whole module.
# Equivalent to `make ci`; kept as a shell script for environments
# without make.
set -eu

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

# Shard + compaction hammer: the parallel engine's exactness certificate
# (forced over-sharding, shared worker pool, concurrent queries) and the
# storage engine's epoch-snapshot certificate (concurrent inserts,
# deletes, queries, compactions, snapshot writes) — run under the race
# detector on their own so a failure names the engine, not a random
# package.
echo "== shard + compaction hammer (-race)"
go test -race -count=2 -run 'Shard|Hammer' ./internal/search

# Chaos matrix: every durability operation × every fault class, with a
# restart and a zero-acked-write-loss + parity check per cell. Run under
# the race detector so the degraded-mode prober and snapshot loop are
# exercised for data races too.
echo "== chaos matrix (-race)"
go test -race -count=1 -run 'Chaos|Degraded|Fallback|TornTombstone' ./internal/server ./internal/wal

# Serving-benchmark smoke: a tiny fixed-seed run proves the end-to-end
# harness works; real numbers come from `make bench-server`. The run
# also exercises the flight recorder: benchserver GETs /debug/traces
# and /debug/slo against its server and writes what it saw into the
# report's trace_recorder section — so check that section is present
# and the ring actually retained traces.
echo "== benchserver smoke (includes /debug/traces + /debug/slo)"
SMOKE_BENCH="$(mktemp /tmp/bench_server.XXXXXX.json)"
go run ./cmd/benchserver -n 200 -queries 20 -out "$SMOKE_BENCH"
grep -q '"trace_recorder"' "$SMOKE_BENCH" || {
    echo "ci: smoke report has no trace_recorder section" >&2; exit 1; }
grep -q '"retained": 0,' "$SMOKE_BENCH" && {
    echo "ci: flight recorder retained nothing during the smoke" >&2; exit 1; }

# The smoke run also stands up an in-process OTLP/JSON collector and
# drives a fully-sampled workload through the exporter: benchserver
# itself fails if the collector rejects a batch, so here it is enough
# to check the section exists, at least one batch was delivered, and
# nothing was dropped on the floor.
grep -q '"otlp_export"' "$SMOKE_BENCH" || {
    echo "ci: smoke report has no otlp_export section" >&2; exit 1; }
grep -q '"batches": 0,' "$SMOKE_BENCH" && {
    echo "ci: exporter delivered no OTLP batches during the smoke" >&2; exit 1; }
grep -q '"dropped": 0,' "$SMOKE_BENCH" || {
    echo "ci: exporter dropped traces during the smoke" >&2; exit 1; }

# The smoke run also measures the bounded verification engine: on this
# workload the refine stage must have cut at least one verification
# short via the O(n) pre-checks and at least one via a DP early abort,
# and the DP cells actually touched must be strictly below what full
# verification of the same pairs would cost.
grep -q '"bounded_refine"' "$SMOKE_BENCH" || {
    echo "ci: smoke report has no bounded_refine section" >&2; exit 1; }
grep -q '"refine_aborted_total": 0,' "$SMOKE_BENCH" && {
    echo "ci: bounded refine never aborted a DP during the smoke" >&2; exit 1; }
grep -q '"precheck_rejects_total": 0,' "$SMOKE_BENCH" && {
    echo "ci: bounded refine pre-checks rejected nothing during the smoke" >&2; exit 1; }
cells=$(sed -n 's/^ *"dp_cells_total": \([0-9][0-9]*\).*/\1/p' "$SMOKE_BENCH" | head -1)
full=$(sed -n 's/^ *"dp_cells_full_total": \([0-9][0-9]*\).*/\1/p' "$SMOKE_BENCH" | head -1)
[ -n "$cells" ] && [ -n "$full" ] && [ "$cells" -lt "$full" ] || {
    echo "ci: bounded refine touched $cells of $full DP cells; want strictly fewer" >&2; exit 1; }

# Advisory bench diff: compare the committed full-size report against the
# smoke run. The configurations differ (and CI machines are noisy), so a
# flagged regression is a prompt to run `make bench-diff` properly, never
# a gate — hence the `|| true`.
if [ -f BENCH_server.json ]; then
    echo "== benchdiff (advisory)"
    go run ./cmd/benchdiff BENCH_server.json "$SMOKE_BENCH" || true
fi

# Fuzz smoke: a short budget per target catches parser and codec
# regressions on the spot; long runs belong in a dedicated job.
FUZZTIME="${FUZZTIME:-10s}"
echo "== go test -fuzz (fuzztime $FUZZTIME per target)"
go test -run='^$' -fuzz='^FuzzParse$' -fuzztime="$FUZZTIME" ./internal/tree
go test -run='^$' -fuzz='^FuzzParseString$' -fuzztime="$FUZZTIME" ./internal/xmltree
go test -run='^$' -fuzz='^FuzzLoadIndex$' -fuzztime="$FUZZTIME" ./internal/search
go test -run='^$' -fuzz='^FuzzManifest$' -fuzztime="$FUZZTIME" ./internal/segstore
go test -run='^$' -fuzz='^FuzzParseTraceparent$' -fuzztime="$FUZZTIME" ./internal/obs
go test -run='^$' -fuzz='^FuzzTraceparentMiddleware$' -fuzztime="$FUZZTIME" ./internal/server

echo "ci: all green"
