#!/bin/sh
# Tier-1 gate: build, vet, test, and race-test the whole module.
# Equivalent to `make ci`; kept as a shell script for environments
# without make.
set -eu

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "ci: all green"
