// Command benchdiff compares two benchmark reports (BENCH_server.json
// from cmd/benchserver, or BENCH_filters.json from cmd/treesim-analyze)
// and prints per-metric deltas, so a perf change shows up as numbers
// rather than two JSON blobs to eyeball.
//
//	benchdiff BENCH_server.json BENCH_server.new.json
//	benchdiff -threshold 0.1 old.json new.json
//
// Reports are flattened to dotted keys (arrays of objects key by their
// "spec"/"filter"/"name" field when present, by index otherwise) and
// every numeric metric present in both files is compared. Any latency
// percentile key (containing "p99") that regressed by more than
// -threshold exits 3 — usable as an advisory CI gate. Metadata keys
// (timestamps, versions, seeds) are not numbers being measured and are
// skipped.
//
// BENCH_server.json also carries the flight recorder's health under
// trace_recorder.* (retained counts, adaptive threshold, measured
// overhead per request) and the OTLP exporter's under otlp_export.*
// (delivered batches and spans, drop count, measured export overhead
// on the k-NN p50); the flattening picks both up like any other
// numeric leaf, so recorder or exporter drift shows in the same diff.
// None of those keys contain "p99", so they inform but never gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.20, "p99 regression tolerance as a fraction (0.20 = +20%)")
	all := fs.Bool("all", false, "print every compared metric, not only ones that changed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold 0.2] OLD.json NEW.json")
		return 2
	}
	oldM, err := loadFlat(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 1
	}
	newM, err := loadFlat(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 1
	}

	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		if _, ok := newM[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var regressions []string
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\told\tnew\tdelta")
	shown := 0
	for _, k := range keys {
		ov, nv := oldM[k], newM[k]
		delta := "="
		changed := ov != nv
		if changed {
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(nv-ov)/ov)
			} else {
				delta = fmt.Sprintf("%+g", nv-ov)
			}
		}
		if changed || *all {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", k, formatNum(ov), formatNum(nv), delta)
			shown++
		}
		if strings.Contains(k, "p99") && ov > 0 && nv > ov*(1+*threshold) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %s -> %s (+%.1f%%, tolerance %.0f%%)",
					k, formatNum(ov), formatNum(nv), 100*(nv-ov)/ov, 100**threshold))
		}
	}
	tw.Flush()
	if shown == 0 {
		fmt.Fprintln(stdout, "no numeric metrics changed")
	}
	if only := len(oldM) + len(newM) - 2*len(keys); only > 0 {
		fmt.Fprintf(stdout, "(%d metrics present in only one report)\n", only)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d p99 regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
		return 3
	}
	return 0
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// skipKeys are metadata leaves, not measured metrics.
var skipKeys = map[string]bool{
	"timestamp": true, "go_version": true, "seed": true, "qlog": true,
	"gomaxprocs": true,
}

func loadFlat(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := map[string]float64{}
	flatten("", doc, out)
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no numeric metrics found", path)
	}
	return out, nil
}

// flatten walks the decoded JSON, collecting numeric leaves under dotted
// keys. Array elements that are objects with a stable identity field
// ("spec", "filter", "name") key by it, so reports stay comparable when
// the element order changes.
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			if prefix == "" && skipKeys[k] {
				continue
			}
			flatten(joinKey(prefix, k), child, out)
		}
	case []any:
		for i, child := range x {
			key := fmt.Sprintf("%d", i)
			if obj, ok := child.(map[string]any); ok {
				for _, id := range []string{"spec", "filter", "name"} {
					if s, ok := obj[id].(string); ok && s != "" {
						key = s
						break
					}
				}
			}
			flatten(joinKey(prefix, key), child, out)
		}
	case float64:
		out[prefix] = x
	}
}

func joinKey(prefix, k string) string {
	if prefix == "" {
		return k
	}
	return prefix + "." + k
}
