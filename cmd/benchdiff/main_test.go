package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldReport = `{
	"timestamp": "2026-01-01T00:00:00Z",
	"go_version": "go1.0",
	"endpoints": {"/v1/knn": {"p50_us": 100, "p99_us": 1000}},
	"filters": [
		{"spec": "bibranch", "accessed_fraction": 0.1, "total_p99_us": 500},
		{"spec": "histo", "accessed_fraction": 0.5, "total_p99_us": 900}
	]
}`

// TestDiffClean: a within-tolerance comparison exits 0 and reports the
// deltas by stable keys (array elements keyed by spec, not index).
func TestDiffClean(t *testing.T) {
	oldPath := writeJSON(t, "old.json", oldReport)
	newPath := writeJSON(t, "new.json", `{
		"timestamp": "2026-02-01T00:00:00Z",
		"go_version": "go2.0",
		"endpoints": {"/v1/knn": {"p50_us": 90, "p99_us": 1100}},
		"filters": [
			{"spec": "histo", "accessed_fraction": 0.5, "total_p99_us": 900},
			{"spec": "bibranch", "accessed_fraction": 0.08, "total_p99_us": 550}
		]
	}`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"endpoints./v1/knn.p99_us", "1000", "1100", "+10.0%",
		"filters.bibranch.accessed_fraction", "-20.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	// Reordered array elements still matched by spec: histo is unchanged,
	// so it must not appear as a changed metric.
	if strings.Contains(out, "filters.histo") {
		t.Errorf("unchanged histo metrics reported as deltas:\n%s", out)
	}
	// Metadata never compared.
	if strings.Contains(out, "timestamp") || strings.Contains(out, "go_version") {
		t.Errorf("metadata leaked into the diff:\n%s", out)
	}
}

// TestDiffP99Regression: a >20% p99 regression exits 3 and names the
// offending metric.
func TestDiffP99Regression(t *testing.T) {
	oldPath := writeJSON(t, "old.json", oldReport)
	newPath := writeJSON(t, "new.json", strings.ReplaceAll(oldReport, `"p99_us": 1000`, `"p99_us": 1300`))
	var stdout, stderr bytes.Buffer
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 3 {
		t.Fatalf("exit %d, want 3\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "endpoints./v1/knn.p99_us") {
		t.Errorf("regression report lacks the metric:\n%s", stderr.String())
	}
	// A wider tolerance accepts the same delta.
	if code := run([]string{"-threshold", "0.5", oldPath, newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("threshold 0.5: exit %d, want 0", code)
	}
}

// TestDiffBadInputs: wrong arity and unreadable files fail cleanly.
func TestDiffBadInputs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"only-one.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	good := writeJSON(t, "good.json", oldReport)
	if code := run([]string{good, filepath.Join(t.TempDir(), "missing.json")}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	bad := writeJSON(t, "bad.json", "not json")
	if code := run([]string{good, bad}, &stdout, &stderr); code != 1 {
		t.Errorf("bad json: exit %d, want 1", code)
	}
}
