// Command benchserver measures the HTTP serving path end to end: it
// builds a fixed-seed index, starts an in-process treesim server on a
// loopback listener, drives a reproducible k-NN and range workload over
// real HTTP, and writes a JSON report (BENCH_server.json) with
// client-observed latency percentiles per endpoint, the mean accessed
// fraction (the paper's quality measure), and per-stage means taken from
// the server's own /metrics histograms.
//
//	benchserver -n 2000 -queries 200 -out BENCH_server.json
//
// The same seed always produces the same dataset and query mix, so two
// reports differ only by machine and code version.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"treesim/internal/datagen"
	"treesim/internal/obs"
	"treesim/internal/search"
	"treesim/internal/server"
	"treesim/internal/tree"
)

type config struct {
	n           int
	queries     int
	k           int
	tau         int
	seed        int64
	concurrency int
	out         string
}

// endpointReport is the client-side view of one endpoint's latencies.
type endpointReport struct {
	Requests int     `json:"requests"`
	P50US    int64   `json:"p50_us"`
	P99US    int64   `json:"p99_us"`
	MeanUS   int64   `json:"mean_us"`
	MaxUS    int64   `json:"max_us"`
	QPS      float64 `json:"qps"`
}

// recorderReport measures the flight recorder: what the workload left in
// the ring, and what the recorder costs on the single-query k-NN path
// (identical drives against a recorder-on and a recorder-off server).
type recorderReport struct {
	Retained        int   `json:"retained"`
	RetainedSlow    int   `json:"retained_slow"`
	RetainedOverThr int   `json:"retained_over_threshold"`
	ThresholdUS     int64 `json:"threshold_us"`
	RefineSpansOK   int   `json:"refine_spans_ok"` // 1 when a tail trace carries refine attrs
	KnnP50OnUS      int64 `json:"knn_p50_recorder_on_us"`
	KnnP50OffUS     int64 `json:"knn_p50_recorder_off_us"`
	// Overhead of offering every request to the recorder, from the p50
	// delta of the two drives. Negative values are measurement noise.
	OverheadNSPerRequest int64   `json:"overhead_ns_per_request"`
	OverheadPct          float64 `json:"overhead_pct"`
}

// otlpReport measures the OTLP/JSON exporter: what a fully-sampled
// k-NN drive delivered to an in-process collector (every batch is
// strictly validated before it counts), and what export costs on the
// single-query path (identical drives against an exporter-on and
// exporter-off server).
type otlpReport struct {
	Batches        int64 `json:"batches"`
	Spans          int64 `json:"spans"`
	InvalidBatches int64 `json:"invalid_batches"`
	Dropped        int64 `json:"dropped"`
	KnnP50OnUS     int64 `json:"knn_p50_export_on_us"`
	KnnP50OffUS    int64 `json:"knn_p50_export_off_us"`
	// Overhead of exporting every trace, from the p50 delta of the two
	// drives. Negative values are measurement noise.
	OverheadNSPerRequest int64   `json:"overhead_ns_per_request"`
	OverheadPct          float64 `json:"overhead_pct"`
}

// boundedReport measures the bounded verification engine: identical
// single-connection k-NN drives against a bounded-refine-on and a
// bounded-refine-off server (results are identical by construction; only
// the verification work differs), plus the cut-short counters the on
// server accumulated.
type boundedReport struct {
	KnnP50OnUS      int64 `json:"knn_p50_bounded_on_us"`
	KnnP99OnUS      int64 `json:"knn_p99_bounded_on_us"`
	KnnP50OffUS     int64 `json:"knn_p50_bounded_off_us"`
	KnnP99OffUS     int64 `json:"knn_p99_bounded_off_us"`
	RefineAborted   int   `json:"refine_aborted_total"`
	PrecheckRejects int   `json:"precheck_rejects_total"`
	DPCells         int64 `json:"dp_cells_total"`
	DPCellsFull     int64 `json:"dp_cells_full_total"`
	// Fraction of full-DP work the bounded engine actually paid.
	DPCellsRatio float64 `json:"dp_cells_ratio"`
}

// report is the written JSON document.
type report struct {
	Timestamp            string                    `json:"timestamp"`
	GoVersion            string                    `json:"go_version"`
	N                    int                       `json:"n"`
	Queries              int                       `json:"queries"`
	K                    int                       `json:"k"`
	Tau                  int                       `json:"tau"`
	Seed                 int64                     `json:"seed"`
	Concurrency          int                       `json:"concurrency"`
	GoMaxProcs           int                       `json:"gomaxprocs"`
	Filter               string                    `json:"filter"`
	Endpoints            map[string]endpointReport `json:"endpoints"`
	Shards               map[string]endpointReport `json:"shards"`
	Mixed                map[string]endpointReport `json:"mixed"`
	MeanAccessedFraction float64                   `json:"mean_accessed_fraction"`
	StageMeansUS         map[string]float64        `json:"stage_means_us"`
	BoundedRefine        boundedReport             `json:"bounded_refine"`
	Recorder             recorderReport            `json:"trace_recorder"`
	OTLPExport           otlpReport                `json:"otlp_export"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.IntVar(&c.n, "n", 2000, "dataset size")
	fs.IntVar(&c.queries, "queries", 200, "queries per endpoint")
	fs.IntVar(&c.k, "k", 5, "k for the k-NN workload")
	fs.IntVar(&c.tau, "tau", 3, "tau for the range workload")
	fs.Int64Var(&c.seed, "seed", 1, "dataset and workload seed")
	fs.IntVar(&c.concurrency, "c", runtime.GOMAXPROCS(0), "concurrent client connections")
	fs.StringVar(&c.out, "out", "BENCH_server.json", "report path")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rep, err := bench(c)
	if err != nil {
		fmt.Fprintf(stderr, "benchserver: %v\n", err)
		return 1
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(stderr, "benchserver: %v\n", err)
		return 1
	}
	if err := os.WriteFile(c.out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(stderr, "benchserver: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "benchserver: %d+%d queries against %d trees; report written to %s\n",
		c.queries, c.queries, c.n, c.out)
	return 0
}

func bench(c config) (*report, error) {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 16, SizeStd: 5, Labels: 8, Decay: 0.1}
	ts := datagen.New(spec, c.seed).Dataset(c.n, 5)
	ix := search.NewIndex(ts, search.NewBiBranch())

	srv := server.New(ix, server.Config{
		MaxInFlight: c.concurrency * 2,
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln) //nolint:errcheck // torn down with the process
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	// The workload queries are dataset members in a seed-fixed shuffle, so
	// every run visits the same trees in the same order.
	order := fixedShuffle(c.n, c.seed)

	client := &http.Client{}
	rep := &report{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		N:           c.n,
		Queries:     c.queries,
		K:           c.k,
		Tau:         c.tau,
		Seed:        c.seed,
		Concurrency: c.concurrency,
		Filter:      ix.Filter().Name(),
		Endpoints:   make(map[string]endpointReport),
	}

	for _, w := range []struct {
		endpoint string
		body     func(q string) any
	}{
		{"/v1/knn", func(q string) any {
			return map[string]any{"tree": q, "k": c.k}
		}},
		{"/v1/range", func(q string) any {
			return map[string]any{"tree": q, "tau": c.tau}
		}},
	} {
		lat, elapsed, err := drive(client, base+w.endpoint, c, ts, order, w.body)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.endpoint, err)
		}
		rep.Endpoints[w.endpoint] = summarize(lat, elapsed)
	}

	// Shards dimension: single-query k-NN latency (concurrency 1) with the
	// per-query stages forced sequential (s1) versus fanned out over
	// GOMAXPROCS shards (smax) — the parallel engine's speedup when cores
	// are otherwise idle. On a single-core host the two coincide.
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Shards = make(map[string]endpointReport)
	single := c
	single.concurrency = 1
	for _, sc := range []struct {
		name   string
		shards int
	}{{"s1", 1}, {"smax", 0}} {
		six := search.NewIndex(ts, search.NewBiBranch(), search.WithShards(sc.shards))
		ssrv := server.New(six, server.Config{
			MaxInFlight: 4,
			Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		sln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go ssrv.Serve(sln) //nolint:errcheck // torn down with the process
		lat, elapsed, err := drive(client, "http://"+sln.Addr().String()+"/v1/knn", single, ts, order,
			func(q string) any { return map[string]any{"tree": q, "k": c.k} })
		sln.Close()
		if err != nil {
			return nil, fmt.Errorf("shards %s: %w", sc.name, err)
		}
		rep.Shards[sc.name+"_knn"] = summarize(lat, elapsed)
	}

	// Mixed read/write dimension: sustained insert traffic interleaved
	// with k-NN reads against the segmented store, a fresh index per mix
	// so write volume is identical across runs. rw90_10 writes every 10th
	// request, rw50_50 every other one; the interleave is positional, so
	// the same seed always issues the same request sequence.
	rep.Mixed = make(map[string]endpointReport)
	inserts := datagen.New(spec, c.seed+1).Dataset(c.queries, 5)
	for _, mix := range []struct {
		name   string
		everyN int
	}{{"rw90_10", 10}, {"rw50_50", 2}} {
		mixIx := search.NewIndex(ts, search.NewBiBranch())
		msrv := server.New(mixIx, server.Config{
			MaxInFlight: c.concurrency * 2,
			Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		mln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go msrv.Serve(mln) //nolint:errcheck // torn down with the process
		knn, ins, elapsed, err := driveMixed(client, "http://"+mln.Addr().String(), c, ts, order, inserts, mix.everyN)
		mln.Close()
		if err != nil {
			return nil, fmt.Errorf("mixed %s: %w", mix.name, err)
		}
		rep.Mixed[mix.name+"_knn"] = summarize(knn, elapsed)
		rep.Mixed[mix.name+"_insert"] = summarize(ins, elapsed)
	}

	// Server-side aggregates: mean accessed fraction and per-stage means
	// from the obs histograms behind /metrics.
	var snap server.Snapshot
	if err := getJSON(client, base+"/metrics", &snap); err != nil {
		return nil, err
	}
	rep.MeanAccessedFraction = snap.Queries.MeanAccessedFraction
	rep.StageMeansUS = map[string]float64{
		"filter": histMeanUS(snap.QueryFilterSeconds),
		"refine": histMeanUS(snap.QueryRefineSeconds),
	}

	if err := benchBounded(client, c, ts, order, rep); err != nil {
		return nil, fmt.Errorf("bounded: %w", err)
	}
	if err := benchRecorder(client, base, c, ts, order, rep); err != nil {
		return nil, fmt.Errorf("recorder: %w", err)
	}
	if err := benchOTLP(client, c, ts, order, rep); err != nil {
		return nil, fmt.Errorf("otlp: %w", err)
	}
	return rep, nil
}

// benchBounded drives the identical single-connection k-NN workload
// against a bounded-refine-on and a bounded-refine-off server and reports
// both latency profiles plus the on server's cut-short counters. The
// result sets are identical (pinned by the search package's invariance
// tests); the delta is purely verification work avoided.
func benchBounded(client *http.Client, c config, ts []*tree.Tree, order []int, rep *report) error {
	// Two servers that differ only in WithBoundedRefine, measured with
	// alternating drives (the same warm-up + interleaved min-of-3 protocol
	// as the exporter bench, so machine drift lands on both arms equally).
	single := c
	single.concurrency = 1
	knnBody := func(q string) any { return map[string]any{"tree": q, "k": c.k} }
	type arm struct {
		on         bool
		ln         net.Listener
		p50s, p99s []int64
	}
	arms := []*arm{{on: true}, {on: false}}
	for _, a := range arms {
		bix := search.NewIndex(ts, search.NewBiBranch(), search.WithBoundedRefine(a.on))
		bsrv := server.New(bix, server.Config{
			MaxInFlight: 4,
			Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		a.ln = ln
		go bsrv.Serve(ln) //nolint:errcheck // torn down with the process
		defer ln.Close()
		warm := single
		if warm.queries > 30 {
			warm.queries = 30
		}
		if _, _, err := drive(client, "http://"+ln.Addr().String()+"/v1/knn", warm, ts, order, knnBody); err != nil {
			return err
		}
	}
	for round := 0; round < 3; round++ {
		for _, a := range arms {
			lat, elapsed, err := drive(client, "http://"+a.ln.Addr().String()+"/v1/knn", single, ts, order, knnBody)
			if err != nil {
				return err
			}
			sum := summarize(lat, elapsed)
			a.p50s = append(a.p50s, sum.P50US)
			a.p99s = append(a.p99s, sum.P99US)
		}
	}
	minOf := func(vs []int64) int64 {
		best := vs[0]
		for _, v := range vs[1:] {
			if v < best {
				best = v
			}
		}
		return best
	}
	for _, a := range arms {
		if a.on {
			rep.BoundedRefine.KnnP50OnUS = minOf(a.p50s)
			rep.BoundedRefine.KnnP99OnUS = minOf(a.p99s)
			var snap server.Snapshot
			if err := getJSON(client, "http://"+a.ln.Addr().String()+"/metrics", &snap); err != nil {
				return err
			}
			rep.BoundedRefine.RefineAborted = snap.Queries.RefineAbortedTotal
			rep.BoundedRefine.PrecheckRejects = snap.Queries.PrecheckRejectsTotal
			rep.BoundedRefine.DPCells = snap.Queries.DPCellsTotal
			rep.BoundedRefine.DPCellsFull = snap.Queries.DPCellsFullTotal
			if snap.Queries.DPCellsFullTotal > 0 {
				rep.BoundedRefine.DPCellsRatio =
					float64(snap.Queries.DPCellsTotal) / float64(snap.Queries.DPCellsFullTotal)
			}
		} else {
			rep.BoundedRefine.KnnP50OffUS = minOf(a.p50s)
			rep.BoundedRefine.KnnP99OffUS = minOf(a.p99s)
		}
	}
	return nil
}

// benchOTLP stands up an in-process OTLP/JSON collector that rejects
// any batch failing strict validation, drives the single-query k-NN
// workload against an exporter-on (TraceSample 1, so every trace
// exports) and an exporter-off server, and reports delivery counts plus
// the p50 cost of having the exporter on the request path.
func benchOTLP(client *http.Client, c config, ts []*tree.Tree, order []int, rep *report) error {
	var batches, spans, invalid atomic.Int64
	sinkMux := http.NewServeMux()
	sinkMux.HandleFunc("/v1/traces", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n, err := obs.CountOTLPSpans(body)
		if err != nil {
			invalid.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		batches.Add(1)
		spans.Add(int64(n))
	})
	sinkLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	sink := &http.Server{Handler: sinkMux}
	go sink.Serve(sinkLn) //nolint:errcheck // closed below
	defer sink.Close()
	endpoint := "http://" + sinkLn.Addr().String() + "/v1/traces"

	// Two servers that differ only in export config, measured with
	// alternating drives: the p50 delta under test is small enough that
	// back-to-back same-arm runs would fold machine drift into the
	// answer. Warm-up drives pay the fresh-server one-time costs
	// (connection setup, allocator growth), then three measured rounds
	// per arm; the per-arm minimum is the usual noise-robust latency
	// estimator.
	single := c
	single.concurrency = 1
	knnBody := func(q string) any { return map[string]any{"tree": q, "k": c.k} }
	type arm struct {
		on   bool
		srv  *server.Server
		ln   net.Listener
		p50s []int64
	}
	arms := []*arm{{on: true}, {on: false}}
	for _, a := range arms {
		cfg := server.Config{
			MaxInFlight: 4,
			Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		}
		if a.on {
			cfg.OTLPEndpoint = endpoint
			cfg.TraceSample = 1
		}
		a.srv = server.New(search.NewIndex(ts, search.NewBiBranch()), cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		a.ln = ln
		go a.srv.Serve(ln) //nolint:errcheck // shut down below
		warm := single
		if warm.queries > 30 {
			warm.queries = 30
		}
		if _, _, err := drive(client, "http://"+ln.Addr().String()+"/v1/knn", warm, ts, order, knnBody); err != nil {
			return err
		}
	}
	for round := 0; round < 3; round++ {
		for _, a := range arms {
			lat, elapsed, err := drive(client, "http://"+a.ln.Addr().String()+"/v1/knn", single, ts, order, knnBody)
			if err != nil {
				return err
			}
			a.p50s = append(a.p50s, summarize(lat, elapsed).P50US)
		}
	}
	p50 := make(map[bool]int64)
	for _, a := range arms {
		// Shutdown flushes the exporter queue, so the sink's counters and
		// the exporter's drop count are final before we read them.
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		serr := a.srv.Shutdown(sctx)
		cancel()
		if serr != nil {
			return fmt.Errorf("flush shutdown: %w", serr)
		}
		if a.on {
			rep.OTLPExport.Dropped = int64(a.srv.Exporter().Stats().Dropped)
		}
		best := a.p50s[0]
		for _, v := range a.p50s[1:] {
			if v < best {
				best = v
			}
		}
		p50[a.on] = best
	}
	rep.OTLPExport.Batches = batches.Load()
	rep.OTLPExport.Spans = spans.Load()
	rep.OTLPExport.InvalidBatches = invalid.Load()
	if rep.OTLPExport.Batches == 0 {
		return fmt.Errorf("exporter delivered no batches to the collector")
	}
	if rep.OTLPExport.InvalidBatches > 0 {
		return fmt.Errorf("collector rejected %d batches as invalid OTLP/JSON", rep.OTLPExport.InvalidBatches)
	}
	rep.OTLPExport.KnnP50OnUS = p50[true]
	rep.OTLPExport.KnnP50OffUS = p50[false]
	rep.OTLPExport.OverheadNSPerRequest = (p50[true] - p50[false]) * 1e3
	if p50[false] > 0 {
		rep.OTLPExport.OverheadPct = float64(p50[true]-p50[false]) / float64(p50[false]) * 100
	}
	return nil
}

// benchRecorder inspects the main server's flight recorder after the
// workload (tail retention over the adaptive threshold, refine spans in
// the retained trees, /debug/slo liveness) and measures the recorder's
// per-request cost by driving the single-query k-NN workload against a
// recorder-on and a recorder-off server.
func benchRecorder(client *http.Client, base string, c config, ts []*tree.Tree, order []int, rep *report) error {
	// The workload above fed the main server's recorder; the traces it
	// kept over the adaptive threshold are the tail the ring exists for.
	var all server.DebugTracesResponse
	if err := getJSON(client, base+"/debug/traces", &all); err != nil {
		return err
	}
	rep.Recorder.Retained = all.Stats.Retained
	rep.Recorder.RetainedSlow = all.Stats.Slow
	rep.Recorder.ThresholdUS = all.Stats.ThresholdUS

	var tail server.DebugTracesResponse
	url := fmt.Sprintf("%s/debug/traces?min_us=%d", base, all.Stats.ThresholdUS)
	if err := getJSON(client, url, &tail); err != nil {
		return err
	}
	rep.Recorder.RetainedOverThr = len(tail.Traces)
	for _, tr := range tail.Traces {
		for _, child := range tr.Trace.Children {
			if child.Name == "refine" && child.Attrs["verified"] != nil {
				rep.Recorder.RefineSpansOK = 1
			}
		}
	}

	// /debug/slo must answer and carry rows for the driven endpoints.
	var slo server.SLOResponse
	if err := getJSON(client, base+"/debug/slo", &slo); err != nil {
		return err
	}
	if len(slo.Endpoints) == 0 {
		return fmt.Errorf("/debug/slo reports no endpoints after the workload")
	}

	// Overhead: identical single-connection k-NN drives against fresh
	// servers that differ only in TraceRing.
	single := c
	single.concurrency = 1
	p50 := make(map[bool]int64)
	for _, on := range []bool{true, false} {
		ring := 0 // default: recorder on
		if !on {
			ring = -1
		}
		rix := search.NewIndex(ts, search.NewBiBranch())
		rsrv := server.New(rix, server.Config{
			MaxInFlight: 4,
			TraceRing:   ring,
			Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go rsrv.Serve(rln) //nolint:errcheck // torn down with the process
		lat, elapsed, err := drive(client, "http://"+rln.Addr().String()+"/v1/knn", single, ts, order,
			func(q string) any { return map[string]any{"tree": q, "k": c.k} })
		rln.Close()
		if err != nil {
			return err
		}
		p50[on] = summarize(lat, elapsed).P50US
	}
	rep.Recorder.KnnP50OnUS = p50[true]
	rep.Recorder.KnnP50OffUS = p50[false]
	rep.Recorder.OverheadNSPerRequest = (p50[true] - p50[false]) * 1e3
	if p50[false] > 0 {
		rep.Recorder.OverheadPct = float64(p50[true]-p50[false]) / float64(p50[false]) * 100
	}
	return nil
}

// fixedShuffle is a deterministic permutation of [0,n) (an LCG-driven
// Fisher-Yates, independent of math/rand's evolving defaults).
func fixedShuffle(n int, seed int64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// drive fires c.queries requests over c.concurrency workers and returns
// per-request latencies plus the wall-clock to finish them all.
func drive(client *http.Client, url string, c config, ts []*tree.Tree, order []int, body func(string) any) ([]time.Duration, time.Duration, error) {
	lat := make([]time.Duration, c.queries)
	var next atomic.Int64
	next.Store(-1)
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= c.queries {
					return
				}
				q := ts[order[i%len(order)]].String()
				payload, err := json.Marshal(body(q))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("status %d", resp.StatusCode))
					return
				}
				lat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, 0, err
	}
	return lat, time.Since(start), nil
}

// driveMixed fires c.queries requests where every everyN-th (by stream
// position, so the mix is deterministic) is a POST /v1/trees insert and
// the rest are k-NN reads, and returns the two latency populations
// separately plus the shared wall-clock.
func driveMixed(client *http.Client, base string, c config, ts []*tree.Tree, order []int, inserts []*tree.Tree, everyN int) (knn, ins []time.Duration, elapsed time.Duration, err error) {
	lat := make([]time.Duration, c.queries)
	isWrite := make([]bool, c.queries)
	var next atomic.Int64
	next.Store(-1)
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= c.queries {
					return
				}
				var url string
				var body any
				if i%everyN == 0 {
					isWrite[i] = true
					url = base + "/v1/trees"
					body = map[string]any{"tree": inserts[(i/everyN)%len(inserts)].String()}
				} else {
					url = base + "/v1/knn"
					body = map[string]any{"tree": ts[order[i%len(order)]].String(), "k": c.k}
				}
				payload, err := json.Marshal(body)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("%s: status %d", url, resp.StatusCode))
					return
				}
				lat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, nil, 0, err
	}
	elapsed = time.Since(start)
	for i, d := range lat {
		if isWrite[i] {
			ins = append(ins, d)
		} else {
			knn = append(knn, d)
		}
	}
	return knn, ins, elapsed, nil
}

func summarize(lat []time.Duration, elapsed time.Duration) endpointReport {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum, max time.Duration
	for _, d := range sorted {
		sum += d
		if d > max {
			max = d
		}
	}
	pct := func(p float64) int64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return sorted[i].Microseconds()
	}
	out := endpointReport{
		Requests: len(lat),
		P50US:    pct(0.50),
		P99US:    pct(0.99),
		MaxUS:    max.Microseconds(),
	}
	if len(lat) > 0 {
		out.MeanUS = (sum / time.Duration(len(lat))).Microseconds()
	}
	if elapsed > 0 {
		out.QPS = float64(len(lat)) / elapsed.Seconds()
	}
	return out
}

// histMeanUS converts a /metrics histogram to its mean in microseconds.
func histMeanUS(h server.HistogramJSON) float64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumSeconds / float64(h.Count) * 1e6
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
