package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchServerSmoke: a small run exits 0 and writes a well-formed
// report with both endpoints, ordered percentiles, and stage means.
func TestBenchServerSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stderr bytes.Buffer
	if code := run([]string{"-n", "120", "-queries", "15", "-out", out}, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	for _, ep := range []string{"/v1/knn", "/v1/range"} {
		e, ok := rep.Endpoints[ep]
		if !ok {
			t.Fatalf("no %s in report", ep)
		}
		if e.Requests != 15 {
			t.Errorf("%s requests %d, want 15", ep, e.Requests)
		}
		if e.P50US <= 0 || e.P99US < e.P50US {
			t.Errorf("%s percentiles out of order: p50=%d p99=%d", ep, e.P50US, e.P99US)
		}
	}
	for _, key := range []string{"rw90_10_knn", "rw90_10_insert", "rw50_50_knn", "rw50_50_insert"} {
		e, ok := rep.Mixed[key]
		if !ok {
			t.Fatalf("no mixed dimension %s in report", key)
		}
		if e.Requests == 0 {
			t.Errorf("mixed %s recorded no requests", key)
		}
	}
	if rw := rep.Mixed["rw50_50_insert"]; rw.Requests != 8 {
		t.Errorf("rw50_50 inserts %d, want 8 of 15", rw.Requests)
	}
	if rep.MeanAccessedFraction <= 0 || rep.MeanAccessedFraction > 1 {
		t.Errorf("mean accessed fraction %v out of (0,1]", rep.MeanAccessedFraction)
	}
	if rep.StageMeansUS["filter"] <= 0 || rep.StageMeansUS["refine"] <= 0 {
		t.Errorf("stage means not populated: %v", rep.StageMeansUS)
	}
}

// TestFixedShuffleDeterministic: the workload order is a permutation and
// identical across runs with the same seed.
func TestFixedShuffleDeterministic(t *testing.T) {
	a := fixedShuffle(50, 7)
	b := fixedShuffle(50, 7)
	seen := make(map[int]bool, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shuffle not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
		seen[a[i]] = true
	}
	if len(seen) != 50 {
		t.Fatalf("not a permutation: %d distinct of 50", len(seen))
	}
	if c := fixedShuffle(50, 8); equalInts(a, c) {
		t.Error("different seeds produced the same order")
	}
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
