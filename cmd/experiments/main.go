// Command experiments regenerates the figures of the paper's evaluation
// section (Figs. 7–15). Example usage:
//
//	experiments -fig 13                  # one figure, quick scale
//	experiments -fig all -scale quick    # everything, laptop scale
//	experiments -fig 9 -scale paper      # paper dimensions (2000 trees,
//	                                     # 100 queries — takes a long time)
//	experiments -fig 7 -n 500 -queries 50 -seed 7
//
// Each figure prints the series the paper plots: the percentage of the
// dataset whose exact edit distance had to be evaluated under the BiBranch
// and Histo filters, the result-set size, and the CPU time of the filtered
// search versus the sequential scan.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"treesim/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to reproduce: 7..15 or 'all'")
		scale   = flag.String("scale", "quick", "experiment scale: quick, paper, or unit")
		n       = flag.Int("n", 0, "override dataset size")
		queries = flag.Int("queries", 0, "override query count")
		seed    = flag.Int64("seed", 0, "override random seed")
		workers = flag.Int("workers", 0, "query parallelism (0 = GOMAXPROCS)")
		format  = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickScale()
	case "paper":
		cfg = experiments.PaperScale()
	case "unit":
		cfg = experiments.UnitScale()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want quick, paper, or unit)\n", *scale)
		os.Exit(2)
	}
	if *n > 0 {
		cfg.DatasetSize = *n
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}

	var err error
	if strings.EqualFold(*fig, "all") {
		err = experiments.RunAll(cfg, os.Stdout)
	} else {
		err = experiments.RunFormat(strings.TrimPrefix(*fig, "fig"), cfg, os.Stdout, *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
