// Command treegen generates tree datasets in the native line format (one
// canonical tree encoding per line).
//
// Synthetic datasets use the paper's generator notation:
//
//	treegen -spec 'N{4,0.5}N{50,2}L8D0.05' -n 2000 -seeds 20 -o data.trees
//
// DBLP-like bibliographic datasets:
//
//	treegen -dblp -n 2000 -o dblp.trees
package main

import (
	"flag"
	"fmt"
	"os"

	"treesim/internal/datagen"
	"treesim/internal/dataset"
	"treesim/internal/dblp"
	"treesim/internal/tree"
)

func main() {
	var (
		spec     = flag.String("spec", "N{4,0.5}N{50,2}L8D0.05", "synthetic dataset spec (paper notation)")
		useDBLP  = flag.Bool("dblp", false, "generate DBLP-like bibliographic records instead")
		n        = flag.Int("n", 2000, "number of trees")
		seeds    = flag.Int("seeds", 20, "number of seed trees (mutation chains) for synthetic data")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
		showInfo = flag.Bool("stats", false, "print dataset statistics to stderr")
	)
	flag.Parse()

	var ts []*tree.Tree
	if *useDBLP {
		ts = dblp.New(*seed).Dataset(*n)
	} else {
		sp, err := datagen.ParseSpec(*spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "treegen: %v\n", err)
			os.Exit(2)
		}
		ts = datagen.New(sp, *seed).Dataset(*n, *seeds)
	}

	if *showInfo {
		var size, height int
		for _, t := range ts {
			size += t.Size()
			height += t.Height()
		}
		fmt.Fprintf(os.Stderr, "treegen: %d trees, avg size %.2f, avg height %.2f\n",
			len(ts), float64(size)/float64(len(ts)), float64(height)/float64(len(ts)))
	}

	var err error
	if *out == "" {
		err = dataset.Save(os.Stdout, ts)
	} else {
		err = dataset.SaveFile(*out, ts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "treegen: %v\n", err)
		os.Exit(1)
	}
}
