package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"treesim/internal/dataset"
)

// TestGenerateViaGoRun exercises the binary end to end when the go tool is
// available; otherwise it is skipped (unit coverage of the generator
// itself lives in internal/datagen).
func TestGenerateViaGoRun(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	out := filepath.Join(t.TempDir(), "d.trees")
	cmd := exec.Command("go", "run", ".", "-spec", "N{3,0.5}N{15,2}L5D0.05",
		"-n", "25", "-seeds", "4", "-seed", "3", "-o", out, "-stats")
	cmd.Dir = "."
	stderr, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("treegen failed: %v\n%s", err, stderr)
	}
	if !strings.Contains(string(stderr), "25 trees") {
		t.Errorf("stats line missing: %s", stderr)
	}
	ts, err := dataset.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 25 {
		t.Errorf("generated %d trees, want 25", len(ts))
	}

	// DBLP mode.
	cmd = exec.Command("go", "run", ".", "-dblp", "-n", "10", "-o", out)
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("treegen -dblp failed: %v\n%s", err, msg)
	}
	ts, err = dataset.LoadFile(out)
	if err != nil || len(ts) != 10 {
		t.Errorf("dblp generation broken: %d trees, %v", len(ts), err)
	}

	// Malformed spec exits non-zero.
	cmd = exec.Command("go", "run", ".", "-spec", "garbage")
	if _, err := cmd.CombinedOutput(); err == nil {
		t.Error("malformed spec accepted")
	}
}
