// Command treesim-analyze replays a recorded query workload (a JSONL log
// written by treesimd -qlog) offline against a matrix of candidate
// filters and reports each filter's effectiveness on that real traffic:
// accessed fraction (the paper's quality measure), false-positive rate,
// mean candidate count, observed bound tightness, and stage times. It is
// the paper's filter-comparison experiment (§6) run on the queries a
// deployment actually served, instead of a synthetic workload.
//
//	treesim-analyze -qlog queries.jsonl -data data.trees
//	treesim-analyze -qlog queries.jsonl -data data.trees \
//	    -filters bibranch,bibranch-q3,histo,none -out BENCH_filters.json
//
// The dataset must be the one the recording server indexed (replayed
// counters are sanity-checked against the recorded dataset size). Output:
// a ranked table on stdout and a JSON report (-out) that cmd/benchdiff
// can compare across code versions.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"treesim/internal/dataset"
	"treesim/internal/qlog"
	"treesim/internal/search"
	"treesim/internal/tree"
	"treesim/internal/xmltree"
)

type config struct {
	qlogPath string
	data     string
	xmlDir   string
	index    string
	filters  string
	out      string
	limit    int
}

// defaultFilters is the replay matrix: the paper's positional filter, its
// ablations (no positions; higher branch levels), the histogram baseline
// the paper compares against, and the no-filter floor.
const defaultFilters = "bibranch,bibranch-nopos,bibranch-q3,bibranch-q4,histo,none"

// filterReport is one filter's aggregate over the replayed workload.
type filterReport struct {
	Filter string `json:"filter"`
	// Spec is the -filters token that produced this row.
	Spec    string `json:"spec"`
	Queries int    `json:"queries"`
	// Errors counts records that failed to replay (unparsable tree).
	Errors int `json:"errors,omitempty"`
	// AccessedFraction is total verified / total dataset scans — the share
	// of the dataset that paid an exact edit distance under this filter.
	AccessedFraction float64 `json:"accessed_fraction"`
	// CandidatesMean is the mean per-query candidate count.
	CandidatesMean float64 `json:"candidates_mean"`
	// FalsePositiveRate is total false positives / total verified.
	FalsePositiveRate float64 `json:"false_positive_rate"`
	// TightnessMean is the mean BDist/EDist over sampled verified pairs
	// (0 when the filter has no branch embedding), TightnessSamples how
	// many pairs were sampled, TightnessLimit the filter's proven bound.
	TightnessMean    float64 `json:"tightness_mean,omitempty"`
	TightnessSamples int     `json:"tightness_samples,omitempty"`
	TightnessLimit   int     `json:"tightness_limit,omitempty"`
	FilterMeanUS     float64 `json:"filter_mean_us"`
	RefineMeanUS     float64 `json:"refine_mean_us"`
	// TotalP50US/TotalP99US are per-query total (filter+refine) time
	// percentiles.
	TotalP50US int64 `json:"total_p50_us"`
	TotalP99US int64 `json:"total_p99_us"`
	// IndexBuildUS is the one-time cost of building this filter's index.
	IndexBuildUS int64 `json:"index_build_us"`
	// Bounded-verification counters over the replay: verifications cut
	// short by the O(n) pre-checks or by a DP early abort, and the DP
	// cells actually computed vs. what full verification would cost.
	RefineAborted   int   `json:"refine_aborted"`
	PrecheckRejects int   `json:"precheck_rejects"`
	DPCells         int64 `json:"dp_cells"`
	DPCellsFull     int64 `json:"dp_cells_full"`
}

// report is the written JSON document.
type report struct {
	Timestamp string         `json:"timestamp"`
	GoVersion string         `json:"go_version"`
	QlogPath  string         `json:"qlog"`
	Records   int            `json:"records"`
	Skipped   int            `json:"skipped,omitempty"`
	Dataset   int            `json:"dataset"`
	Filters   []filterReport `json:"filters"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("treesim-analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.StringVar(&c.qlogPath, "qlog", "", "recorded workload (JSONL from treesimd -qlog); required")
	fs.StringVar(&c.data, "data", "", "dataset file in line format (the dataset the recording server indexed)")
	fs.StringVar(&c.xmlDir, "xml", "", "directory of XML documents (alternative to -data)")
	fs.StringVar(&c.index, "index", "", "saved index file; its trees become the dataset (alternative to -data/-xml)")
	fs.StringVar(&c.filters, "filters", defaultFilters,
		"comma-separated filter matrix: bibranch, bibranch-nopos, bibranch-qN, histo, seq, none")
	fs.StringVar(&c.out, "out", "BENCH_filters.json", "JSON report path (empty disables)")
	fs.IntVar(&c.limit, "limit", 0, "replay at most this many records (0 = all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if c.qlogPath == "" {
		fmt.Fprintln(stderr, "treesim-analyze: -qlog is required")
		return 2
	}

	recs, skipped, err := qlog.ReadFile(c.qlogPath)
	if err != nil {
		fmt.Fprintf(stderr, "treesim-analyze: %v\n", err)
		return 1
	}
	if skipped > 0 {
		fmt.Fprintf(stderr, "treesim-analyze: skipped %d unreadable log lines\n", skipped)
	}
	if c.limit > 0 && len(recs) > c.limit {
		recs = recs[:c.limit]
	}
	if len(recs) == 0 {
		fmt.Fprintln(stderr, "treesim-analyze: workload is empty")
		return 1
	}

	ts, err := loadDataset(c)
	if err != nil {
		fmt.Fprintf(stderr, "treesim-analyze: %v\n", err)
		return 1
	}
	if want := recs[0].Stats.Dataset; want > 0 && want != len(ts) {
		fmt.Fprintf(stderr, "treesim-analyze: warning: workload was recorded over %d trees, replaying over %d\n",
			want, len(ts))
	}

	specs := strings.Split(c.filters, ",")
	rep := report{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		QlogPath:  c.qlogPath,
		Records:   len(recs),
		Skipped:   skipped,
		Dataset:   len(ts),
	}
	for _, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		f, err := makeFilter(spec)
		if err != nil {
			fmt.Fprintf(stderr, "treesim-analyze: %v\n", err)
			return 2
		}
		fr, err := replay(spec, f, ts, recs)
		if err != nil {
			fmt.Fprintf(stderr, "treesim-analyze: %s: %v\n", spec, err)
			return 1
		}
		rep.Filters = append(rep.Filters, fr)
		fmt.Fprintf(stderr, "treesim-analyze: %s: %d queries, accessed %.4f\n",
			fr.Spec, fr.Queries, fr.AccessedFraction)
	}

	printTable(stdout, rep)
	if c.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "treesim-analyze: %v\n", err)
			return 1
		}
		if err := os.WriteFile(c.out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "treesim-analyze: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "treesim-analyze: report written to %s\n", c.out)
	}
	return 0
}

func loadDataset(c config) ([]*tree.Tree, error) {
	switch {
	case c.data != "":
		return dataset.LoadFile(c.data)
	case c.xmlDir != "":
		ts, _, err := dataset.LoadXMLDir(c.xmlDir, xmltree.DefaultOptions())
		return ts, err
	case c.index != "":
		f, err := os.Open(c.index)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ix, err := search.LoadIndex(f)
		if err != nil {
			return nil, err
		}
		ts := make([]*tree.Tree, ix.Size())
		for i := range ts {
			ts[i] = ix.Tree(i)
		}
		return ts, nil
	}
	return nil, fmt.Errorf("need a dataset: -data, -xml or -index")
}

// makeFilter resolves one -filters token.
func makeFilter(spec string) (search.Filter, error) {
	switch spec {
	case "bibranch":
		return &search.BiBranch{Q: 2, Positional: true}, nil
	case "bibranch-nopos":
		return &search.BiBranch{Q: 2, Positional: false}, nil
	case "histo":
		return search.NewHisto(), nil
	case "seq":
		return search.NewSeq(), nil
	case "none":
		return search.NewNone(), nil
	}
	if q, ok := strings.CutPrefix(spec, "bibranch-q"); ok {
		var level int
		if _, err := fmt.Sscanf(q, "%d", &level); err == nil && level >= 2 {
			return &search.BiBranch{Q: level, Positional: true}, nil
		}
	}
	return nil, fmt.Errorf("unknown filter %q (want bibranch, bibranch-nopos, bibranch-qN, histo, seq or none)", spec)
}

// replay runs the whole workload through one filter and aggregates its
// quality counters.
func replay(spec string, f search.Filter, ts []*tree.Tree, recs []qlog.Record) (filterReport, error) {
	buildStart := time.Now()
	ix := search.NewIndex(ts, search.WithFilter(f))
	fr := filterReport{
		Filter:       ix.Filter().Name(),
		Spec:         spec,
		IndexBuildUS: time.Since(buildStart).Microseconds(),
	}
	if lr, ok := f.(search.FactorReporter); ok {
		fr.TightnessLimit = lr.Factor()
	}

	var (
		verified, datasetScans, candidates, falsePos int
		filterTime, refineTime                       time.Duration
		tightSum                                     float64
		tightN                                       int
		totals                                       []int64
	)
	ctx := context.Background()
	for _, r := range recs {
		q, err := tree.Parse(r.Tree)
		if err != nil || q.IsEmpty() {
			fr.Errors++
			continue
		}
		var stats search.Stats
		switch r.Op {
		case "knn":
			_, stats, err = ix.KNN(ctx, q, r.K)
		case "range":
			_, stats, err = ix.Range(ctx, q, r.Tau)
		default:
			fr.Errors++
			continue
		}
		if err != nil {
			return fr, err
		}
		fr.Queries++
		verified += stats.Verified
		datasetScans += stats.Dataset
		candidates += stats.Candidates
		falsePos += stats.FalsePositives
		fr.RefineAborted += stats.RefineAborted
		fr.PrecheckRejects += stats.PrecheckRejects
		fr.DPCells += stats.DPCells
		fr.DPCellsFull += stats.DPCellsFull
		filterTime += stats.FilterTime
		refineTime += stats.RefineTime
		for _, t := range stats.Tightness {
			tightSum += t
			tightN++
		}
		totals = append(totals, (stats.FilterTime + stats.RefineTime).Microseconds())
	}
	if fr.Queries == 0 {
		return fr, fmt.Errorf("no replayable records")
	}
	if datasetScans > 0 {
		fr.AccessedFraction = float64(verified) / float64(datasetScans)
	}
	fr.CandidatesMean = float64(candidates) / float64(fr.Queries)
	if verified > 0 {
		fr.FalsePositiveRate = float64(falsePos) / float64(verified)
	}
	if tightN > 0 {
		fr.TightnessMean = tightSum / float64(tightN)
		fr.TightnessSamples = tightN
	}
	fr.FilterMeanUS = float64(filterTime.Microseconds()) / float64(fr.Queries)
	fr.RefineMeanUS = float64(refineTime.Microseconds()) / float64(fr.Queries)
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	fr.TotalP50US = totals[(len(totals)-1)/2]
	fr.TotalP99US = totals[(len(totals)-1)*99/100]
	return fr, nil
}

// printTable renders the per-filter comparison, best accessed fraction
// first — the ranking the paper's experiments report.
func printTable(w io.Writer, rep report) {
	rows := append([]filterReport(nil), rep.Filters...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].AccessedFraction < rows[j].AccessedFraction })
	fmt.Fprintf(w, "workload: %d queries over %d trees (%s)\n\n", rep.Records, rep.Dataset, rep.QlogPath)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "filter\taccessed\tcand/query\tfp-rate\ttightness\tfilter-us\trefine-us\tp99-us\tdp-cells\tcut-short")
	for _, r := range rows {
		tight := "-"
		if r.TightnessSamples > 0 {
			tight = fmt.Sprintf("%.2f/%d", r.TightnessMean, r.TightnessLimit)
		}
		cells := "-"
		if r.DPCellsFull > 0 {
			cells = fmt.Sprintf("%.2f", float64(r.DPCells)/float64(r.DPCellsFull))
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.1f\t%.3f\t%s\t%.0f\t%.0f\t%d\t%s\t%d+%d\n",
			r.Spec, r.AccessedFraction, r.CandidatesMean, r.FalsePositiveRate,
			tight, r.FilterMeanUS, r.RefineMeanUS, r.TotalP99US,
			cells, r.PrecheckRejects, r.RefineAborted)
	}
	tw.Flush()
}
