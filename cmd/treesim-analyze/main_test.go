package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/qlog"
)

// writeWorkload builds a tiny dataset + recorded workload on disk and
// returns their paths.
func writeWorkload(t *testing.T, n, queries int) (dataPath, qlogPath string) {
	t.Helper()
	dir := t.TempDir()
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 12, SizeStd: 4, Labels: 5, Decay: 0.1}
	ts := datagen.New(spec, 7).Dataset(n, 5)

	var sb strings.Builder
	for _, tr := range ts {
		sb.WriteString(tr.String())
		sb.WriteByte('\n')
	}
	dataPath = filepath.Join(dir, "data.trees")
	if err := os.WriteFile(dataPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	qlogPath = filepath.Join(dir, "queries.jsonl")
	w, err := qlog.Open(qlogPath, qlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < queries; i++ {
		rec := qlog.Record{Op: "knn", Tree: ts[i%n].String(), K: 3}
		if i%3 == 2 {
			rec = qlog.Record{Op: "range", Tree: ts[i%n].String(), Tau: 3}
		}
		rec.Stats.Dataset = n
		if err := w.Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dataPath, qlogPath
}

// TestAnalyzeEndToEnd: replay a recorded workload against the default
// filter matrix; the report must rank the paper's BiBranch filter at a
// lower accessed fraction than the histogram baseline, and the no-filter
// floor at 1.0.
func TestAnalyzeEndToEnd(t *testing.T) {
	dataPath, qlogPath := writeWorkload(t, 40, 12)
	out := filepath.Join(t.TempDir(), "BENCH_filters.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-qlog", qlogPath, "-data", dataPath,
		"-filters", "bibranch,bibranch-nopos,bibranch-q3,histo,none",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if rep.Records != 12 || rep.Dataset != 40 {
		t.Fatalf("report covers %d records over %d trees, want 12/40", rep.Records, rep.Dataset)
	}
	if len(rep.Filters) < 4 {
		t.Fatalf("report has %d filters, want >= 4", len(rep.Filters))
	}

	byName := map[string]filterReport{}
	for _, f := range rep.Filters {
		if f.Queries != 12 {
			t.Errorf("%s replayed %d queries, want 12", f.Filter, f.Queries)
		}
		if f.AccessedFraction <= 0 || f.AccessedFraction > 1 {
			t.Errorf("%s accessed fraction %v outside (0,1]", f.Filter, f.AccessedFraction)
		}
		byName[f.Spec] = f
	}
	bib, histo, none := byName["bibranch"], byName["histo"], byName["none"]
	if bib.Filter == "" || histo.Filter == "" || none.Filter == "" {
		t.Fatalf("missing expected filters in %v", rep.Filters)
	}
	// The acceptance criterion: the paper's filter beats the histogram
	// baseline on candidate-set quality over the same real workload.
	if bib.AccessedFraction >= histo.AccessedFraction {
		t.Errorf("BiBranch accessed %.4f not better than histogram %.4f",
			bib.AccessedFraction, histo.AccessedFraction)
	}
	if none.AccessedFraction != 1 {
		t.Errorf("no-filter accessed fraction %v, want 1", none.AccessedFraction)
	}
	// BiBranch carries tightness evidence within its proven bound.
	if bib.TightnessSamples == 0 {
		t.Error("BiBranch replay produced no tightness samples")
	}
	if bib.TightnessLimit != 5 {
		t.Errorf("BiBranch tightness limit %d, want 5", bib.TightnessLimit)
	}
	if bib.TightnessMean > 5 {
		t.Errorf("BiBranch mean tightness %.3f exceeds the proven bound", bib.TightnessMean)
	}

	// The table ranks filters and mentions each one by its spec — the
	// spec, not the filter name, because bibranch-q3/-q4 share a name.
	table := stdout.String()
	for _, f := range rep.Filters {
		if !strings.Contains(table, f.Spec) {
			t.Errorf("table lacks filter spec %s:\n%s", f.Spec, table)
		}
	}
}

// TestAnalyzeBadInputs: missing flags and unknown filters fail cleanly.
func TestAnalyzeBadInputs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no -qlog: exit %d, want 2", code)
	}
	dataPath, qlogPath := writeWorkload(t, 5, 2)
	if code := run([]string{"-qlog", qlogPath, "-data", dataPath, "-filters", "nonsense", "-out", ""},
		&stdout, &stderr); code != 2 {
		t.Errorf("unknown filter: exit %d, want 2", code)
	}
	if code := run([]string{"-qlog", filepath.Join(t.TempDir(), "missing.jsonl"), "-data", dataPath, "-out", ""},
		&stdout, &stderr); code != 1 {
		t.Errorf("missing qlog: exit %d, want 1", code)
	}
}

// TestAnalyzeLimit: -limit truncates the replayed workload.
func TestAnalyzeLimit(t *testing.T) {
	dataPath, qlogPath := writeWorkload(t, 20, 10)
	out := filepath.Join(t.TempDir(), "r.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-qlog", qlogPath, "-data", dataPath, "-filters", "bibranch", "-limit", "4", "-out", out},
		&stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	raw, _ := os.ReadFile(out)
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Records != 4 || rep.Filters[0].Queries != 4 {
		t.Fatalf("limit ignored: %d records, %d queries", rep.Records, rep.Filters[0].Queries)
	}
}
