// Command treesim-trace browses a running treesimd's flight recorder and
// SLO table from the terminal — the operator's view of "what was slow and
// why" without a tracing backend.
//
//	treesim-trace list                          # retained traces, newest first
//	treesim-trace list -endpoint /v1/knn -min 5ms -error -limit 10
//	treesim-trace get r0000002a                 # one trace, span tree pretty-printed
//	treesim-trace get 4bf92f3577b34da6a3ce929d0e0e4736   # same, by W3C trace id
//	treesim-trace slo                           # per-endpoint burn-rate table
//	treesim-trace profiles                      # tail-triggered CPU profiles
//	treesim-trace profile p000003               # save one profile (pprof-gzip)
//
// The debug endpoints are loopback-only, so -addr defaults to
// localhost; point it through a port-forward for a remote node. Every
// request the tool makes carries a W3C traceparent header of its own,
// so the server's request log ties an operator's pokes to one trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"treesim/internal/obs"
	"treesim/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage: treesim-trace [-addr host:port] <command>

commands:
  list [-endpoint E] [-min D] [-error] [-limit N]   list retained traces
  get <request-id | trace-id>                       print one trace's span tree
  slo                                               print the SLO burn-rate table
  profiles                                          list tail-triggered CPU profiles
  profile <profile-id> [-o FILE]                    save one profile's pprof-gzip bytes`)
	return 2
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("treesim-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "treesimd address (debug endpoints are loopback-only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		return usage(stderr)
	}
	base := "http://" + *addr
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "list":
		return runList(base, rest, stdout, stderr)
	case "get":
		return runGet(base, rest, stdout, stderr)
	case "slo":
		return runSLO(base, stdout, stderr)
	case "profiles":
		return runProfiles(base, stdout, stderr)
	case "profile":
		return runProfile(base, rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "treesim-trace: unknown command %q\n", cmd)
		return usage(stderr)
	}
}

// getRaw fetches url with a fresh W3C trace context on the request —
// outbound calls are traced like any other client's — and returns the
// 200 body, surfacing the server's error envelope on non-200.
func getRaw(url string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("traceparent", obs.NewTraceContext().Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var er server.ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error.Code != "" {
			return nil, fmt.Errorf("%s: %s (%s)", resp.Status, er.Error.Message, er.Error.Code)
		}
		return nil, fmt.Errorf("%s: %s", resp.Status, body)
	}
	return body, nil
}

// getInto fetches url and decodes the JSON body.
func getInto(url string, out any) error {
	body, err := getRaw(url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}

func runList(base string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("treesim-trace list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	endpoint := fs.String("endpoint", "", "only traces for this endpoint")
	minDur := fs.Duration("min", 0, "only traces at least this slow")
	errOnly := fs.Bool("error", false, "only errored requests")
	limit := fs.Int("limit", 0, "cap the listing (0 = all retained)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	url := fmt.Sprintf("%s/debug/traces?endpoint=%s&min_us=%d&limit=%d",
		base, *endpoint, minDur.Microseconds(), *limit)
	if *errOnly {
		url += "&error=1"
	}
	var resp server.DebugTracesResponse
	if err := getInto(url, &resp); err != nil {
		fmt.Fprintf(stderr, "treesim-trace: %v\n", err)
		return 1
	}
	st := resp.Stats
	fmt.Fprintf(stdout, "recorder: %d/%d retained (%d error, %d slow, %d baseline), %d offered, %d dropped, slow threshold %v\n",
		st.Retained, st.Capacity, st.Errors, st.Slow, st.Baseline,
		st.Offered, st.Dropped, time.Duration(st.ThresholdUS)*time.Microsecond)
	if len(resp.Traces) == 0 {
		fmt.Fprintln(stdout, "no matching traces")
		return 0
	}
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "REQUEST\tTRACE\tENDPOINT\tSTATUS\tCLASS\tDURATION\tSTART")
	for _, tr := range resp.Traces {
		class := string(tr.Class)
		if tr.Degraded {
			class += "+degraded"
		}
		trace := tr.TraceID
		if trace == "" {
			trace = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%v\t%s\n",
			tr.RequestID, trace, tr.Endpoint, tr.Status, class,
			time.Duration(tr.DurationUS)*time.Microsecond,
			tr.Start.Format(time.RFC3339))
	}
	tw.Flush()
	return 0
}

func runGet(base string, args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: treesim-trace get <request-id | trace-id>")
		return 2
	}
	var tr server.DebugTraceResponse
	if err := getInto(base+"/debug/traces/"+args[0], &tr); err != nil {
		fmt.Fprintf(stderr, "treesim-trace: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s %s status=%d class=%s dur=%v (slow threshold %v)\n",
		tr.RequestID, tr.Endpoint, tr.Status, tr.Class,
		time.Duration(tr.DurationUS)*time.Microsecond,
		time.Duration(tr.ThresholdUS)*time.Microsecond)
	if tr.TraceID != "" {
		fmt.Fprintf(stdout, "trace_id: %s\n", tr.TraceID)
	}
	if tr.ProfileID != "" {
		fmt.Fprintf(stdout, "profile: %s (treesim-trace profile %s)\n", tr.ProfileID, tr.ProfileID)
	}
	obs.FprintSpanTree(stdout, tr.Trace)
	if tr.Explain != nil {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		fmt.Fprintln(stdout, "explain:")
		enc.Encode(tr.Explain)
	}
	return 0
}

func runProfiles(base string, stdout, stderr io.Writer) int {
	var resp server.DebugProfilesResponse
	if err := getInto(base+"/debug/profiles", &resp); err != nil {
		fmt.Fprintf(stderr, "treesim-trace: %v\n", err)
		return 1
	}
	st := resp.Stats
	fmt.Fprintf(stdout, "profiler: %d retained (%d triggered, %d captured, %d skipped by rate limit)\n",
		st.Retained, st.Triggered, st.Captured, st.Skipped)
	if len(resp.Profiles) == 0 {
		fmt.Fprintln(stdout, "no profiles captured")
		return 0
	}
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PROFILE\tTRACE\tREQUEST\tREASON\tDURATION\tSIZE\tSTART")
	for _, p := range resp.Profiles {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%v\t%dB\t%s\n",
			p.ID, p.TraceID, p.RequestID, p.Reason,
			time.Duration(p.DurationMS)*time.Millisecond, p.Size,
			p.Start.Format(time.RFC3339))
	}
	tw.Flush()
	return 0
}

func runProfile(base string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("treesim-trace profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default <profile-id>.pprof.gz)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Accept flags on either side of the id: stdlib flag parsing stops
	// at the first positional, so "profile p000001 -o f" needs a second
	// pass over what follows the id.
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(stderr, "usage: treesim-trace profile <profile-id> [-o FILE]")
		return 2
	}
	id := rest[0]
	if len(rest) > 1 {
		if err := fs.Parse(rest[1:]); err != nil {
			return 2
		}
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "usage: treesim-trace profile <profile-id> [-o FILE]")
			return 2
		}
	}
	body, err := getRaw(base + "/debug/profiles/" + id)
	if err != nil {
		fmt.Fprintf(stderr, "treesim-trace: %v\n", err)
		return 1
	}
	path := *out
	if path == "" {
		path = id + ".pprof.gz"
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		fmt.Fprintf(stderr, "treesim-trace: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %d bytes to %s (go tool pprof %s)\n", len(body), path, path)
	return 0
}

func runSLO(base string, stdout, stderr io.Writer) int {
	var slo server.SLOResponse
	if err := getInto(base+"/debug/slo", &slo); err != nil {
		fmt.Fprintf(stderr, "treesim-trace: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "objective: %v latency, %.4g target; windows fast=%v slow=%v\n",
		time.Duration(slo.LatencyObjectiveS*float64(time.Second)), slo.Target,
		time.Duration(slo.FastWindowS*float64(time.Second)),
		time.Duration(slo.WindowS*float64(time.Second)))
	if slo.Degraded {
		fmt.Fprintf(stdout, "DEGRADED: read-only mode active (%s), entered %d time(s)\n",
			slo.DegradedReason, slo.DegradedTotal)
	}
	if len(slo.Endpoints) == 0 {
		fmt.Fprintln(stdout, "no traffic recorded")
		return 0
	}
	eps := append([]obs.EndpointSLO(nil), slo.Endpoints...)
	sort.Slice(eps, func(i, j int) bool { return eps[i].Endpoint < eps[j].Endpoint })
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ENDPOINT\tWINDOW\tREQUESTS\tERRORS\tSLOW\tBAD%\tBURN")
	for _, e := range eps {
		for _, w := range []struct {
			name string
			win  obs.SLOWindow
		}{{"fast", e.Fast}, {"slow", e.Slow}} {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.2f%%\t%.2f\n",
				e.Endpoint, w.name, w.win.Requests, w.win.Errors, w.win.Slow,
				w.win.BadRatio*100, w.win.BurnRate)
		}
	}
	tw.Flush()
	return 0
}
