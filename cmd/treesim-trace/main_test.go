package main

import (
	"bytes"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/search"
	"treesim/internal/server"
)

// startServer brings up a real server over a generated dataset, drives a
// few queries through it so the recorder has content, and returns the
// host:port the CLI should target.
func startServer(t *testing.T) (string, []string) {
	t.Helper()
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 12, SizeStd: 4, Labels: 5, Decay: 0.1}
	ts := datagen.New(spec, 7).Dataset(30, 5)
	ix := search.NewIndex(ts, search.NewBiBranch())
	s := server.New(ix, server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)

	var ids []string
	for i := 0; i < 5; i++ {
		resp, err := hs.Client().Post(hs.URL+"/v1/knn", "application/json",
			strings.NewReader(`{"tree":`+jsonString(ts[i].String())+`,"k":2}`))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.Header.Get("X-Request-Id"))
		resp.Body.Close()
	}
	return strings.TrimPrefix(hs.URL, "http://"), ids
}

func jsonString(s string) string {
	var b bytes.Buffer
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"', '\\':
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	b.WriteByte('"')
	return b.String()
}

func TestListGetSLO(t *testing.T) {
	addr, ids := startServer(t)

	var out, errb bytes.Buffer
	if code := run([]string{"-addr", addr, "list"}, &out, &errb); code != 0 {
		t.Fatalf("list exit %d: %s", code, errb.String())
	}
	listing := out.String()
	if !strings.Contains(listing, "recorder:") || !strings.Contains(listing, "/v1/knn") {
		t.Fatalf("list output missing recorder header or endpoint:\n%s", listing)
	}

	// Every request landed in a fresh ring, so any served id is fetchable.
	out.Reset()
	if code := run([]string{"-addr", addr, "get", ids[0]}, &out, &errb); code != 0 {
		t.Fatalf("get exit %d: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{ids[0], "/v1/knn", "filter", "refine", "verified="} {
		if !strings.Contains(got, want) {
			t.Errorf("get output missing %q:\n%s", want, got)
		}
	}

	out.Reset()
	if code := run([]string{"-addr", addr, "get", "r00beef00"}, &out, &errb); code != 1 {
		t.Fatalf("get of unknown id exit %d, want 1", code)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-addr", addr, "slo"}, &out, &errb); code != 0 {
		t.Fatalf("slo exit %d: %s", code, errb.String())
	}
	table := out.String()
	for _, want := range []string{"objective:", "ENDPOINT", "/v1/knn", "fast", "slow"} {
		if !strings.Contains(table, want) {
			t.Errorf("slo output missing %q:\n%s", want, table)
		}
	}

	// Filters pass through: -error hides the all-200 traffic.
	out.Reset()
	if code := run([]string{"-addr", addr, "list", "-error"}, &out, &errb); code != 0 {
		t.Fatalf("list -error exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no matching traces") {
		t.Fatalf("list -error over healthy traffic:\n%s", out.String())
	}
}

func TestUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("no usage text: %s", errb.String())
	}
	if code := run([]string{"bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown command exit %d, want 2", code)
	}
}
