// Command treesim runs similarity queries over tree datasets using the
// binary branch filter-and-refine engine.
//
//	treesim knn   -data data.trees -query 'a(b,c)' -k 5
//	treesim knn   -data data.trees -query-index 17 -k 10 -filter histo
//	treesim knn   -data data.trees -query 'a(b,c)' -k 5 -explain
//	treesim range -data data.trees -query 'a(b,c)' -tau 3
//	treesim dist  'a(b(c,d),b(c,d),e)' 'a(b(c,d,b(e)),c,d,e)'
//	treesim stats -data data.trees
//
// Datasets are line-format files (see cmd/treegen) or directories of XML
// documents (-xml dir). Filters: bibranch (default; the paper's positional
// binary branch bound), bibranch-nopos, histo, seq, none.
//
// For a long-lived server over the same engine, see cmd/treesimd.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"treesim/internal/branch"
	"treesim/internal/dataset"
	"treesim/internal/editdist"
	"treesim/internal/join"
	"treesim/internal/search"
	"treesim/internal/tree"
	"treesim/internal/xmltree"
)

// Every subcommand returns an error instead of exiting, so failures (a
// missing dataset file, an unparsable query) surface as a clear message
// and exit code 1 — and so tests can exercise the failure paths
// in-process.

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "knn":
		err = runKNN(os.Args[2:])
	case "range":
		err = runRange(os.Args[2:])
	case "dist":
		err = runDist(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "index":
		err = runIndex(os.Args[2:])
	case "selfjoin":
		err = runSelfJoin(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "treesim: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: treesim <knn|range|dist|diff|stats|index|selfjoin> [flags]")
	fmt.Fprintln(os.Stderr, "run 'treesim <command> -h' for command flags")
	os.Exit(2)
}

// dataFlags registers the dataset/query flags shared by knn and range.
type dataFlags struct {
	data, xmlDir, query string
	index               string
	queryIndex          int
	filter              string
	q                   int
}

func (d *dataFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&d.data, "data", "", "dataset file in line format")
	fs.StringVar(&d.xmlDir, "xml", "", "directory of XML documents (alternative to -data)")
	fs.StringVar(&d.index, "index", "", "saved index file (alternative to -data/-xml; see 'treesim index')")
	fs.StringVar(&d.query, "query", "", "query tree in canonical text format")
	fs.IntVar(&d.queryIndex, "query-index", -1, "use dataset tree i as the query")
	fs.StringVar(&d.filter, "filter", "bibranch", "filter: bibranch, bibranch-nopos, histo, seq, none")
	fs.IntVar(&d.q, "q", 2, "binary branch level (bibranch filters)")
}

// buildIndex loads or builds the search index and resolves the query tree.
func (d *dataFlags) buildIndex() (*search.Index, *tree.Tree, error) {
	if d.index != "" {
		f, err := os.Open(d.index)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		ix, err := search.LoadIndex(f)
		if err != nil {
			return nil, nil, err
		}
		q, err := d.resolveQuery(ix.Size())
		if err != nil {
			return nil, nil, err
		}
		if q == nil {
			q = ix.Tree(d.queryIndex)
		}
		return ix, q, nil
	}
	ts, q, err := d.load()
	if err != nil {
		return nil, nil, err
	}
	f, err := d.makeFilter()
	if err != nil {
		return nil, nil, err
	}
	return search.NewIndex(ts, search.WithFilter(f)), q, nil
}

// resolveQuery parses -query, or validates -query-index against a dataset
// of n trees (returning nil, nil to mean "use tree -query-index").
func (d *dataFlags) resolveQuery(n int) (*tree.Tree, error) {
	switch {
	case d.query != "":
		q, err := tree.Parse(d.query)
		if err != nil {
			return nil, fmt.Errorf("bad -query: %w", err)
		}
		return q, nil
	case d.queryIndex >= 0 && d.queryIndex < n:
		return nil, nil
	default:
		return nil, fmt.Errorf("need -query or a valid -query-index (0..%d)", n-1)
	}
}

// loadData loads the dataset from -data or -xml.
func (d *dataFlags) loadData() ([]*tree.Tree, error) {
	var ts []*tree.Tree
	var err error
	switch {
	case d.data != "":
		ts, err = dataset.LoadFile(d.data)
	case d.xmlDir != "":
		ts, _, err = dataset.LoadXMLDir(d.xmlDir, xmltree.DefaultOptions())
	default:
		err = fmt.Errorf("need -data or -xml")
	}
	if err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("dataset is empty")
	}
	return ts, nil
}

func (d *dataFlags) load() ([]*tree.Tree, *tree.Tree, error) {
	ts, err := d.loadData()
	if err != nil {
		return nil, nil, err
	}
	q, err := d.resolveQuery(len(ts))
	if err != nil {
		return nil, nil, err
	}
	if q == nil {
		q = ts[d.queryIndex]
	}
	return ts, q, nil
}

func (d *dataFlags) makeFilter() (search.Filter, error) {
	switch d.filter {
	case "bibranch":
		return &search.BiBranch{Q: d.q, Positional: true}, nil
	case "bibranch-nopos":
		return &search.BiBranch{Q: d.q, Positional: false}, nil
	case "histo":
		return search.NewHisto(), nil
	case "seq":
		return search.NewSeq(), nil
	case "none":
		return search.NewNone(), nil
	default:
		return nil, fmt.Errorf("unknown filter %q", d.filter)
	}
}

func runKNN(args []string) error {
	fs := flag.NewFlagSet("knn", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	k := fs.Int("k", 5, "number of nearest neighbors")
	explain := fs.Bool("explain", false, "print the query's filter-quality analysis (bound distribution, false positives, tightness)")
	fs.Parse(args)

	start := time.Now()
	ix, q, err := df.buildIndex()
	if err != nil {
		return err
	}
	buildTime := time.Since(start)
	var ex *search.Explain
	var opts []search.QueryOption
	if *explain {
		opts = append(opts, search.WithExplain(&ex))
	}
	res, stats, err := ix.KNN(context.Background(), q, *k, opts...)
	if err != nil {
		return err
	}

	fmt.Printf("index: %d trees, filter %s, ready in %v\n", ix.Size(), ix.Filter().Name(), buildTime.Round(time.Millisecond))
	fmt.Printf("query: %s\n", q)
	fmt.Printf("stats: %s\n", stats)
	if ex != nil {
		fmt.Print(ex.String())
	}
	for rank, r := range res {
		fmt.Printf("%3d. dist=%d  id=%d  %s\n", rank+1, r.Dist, r.ID, ix.Tree(r.ID))
	}
	return nil
}

func runRange(args []string) error {
	fs := flag.NewFlagSet("range", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	tau := fs.Int("tau", 2, "range radius (edit distance)")
	explain := fs.Bool("explain", false, "print the query's filter-quality analysis (bound distribution, false positives, tightness)")
	fs.Parse(args)

	ix, q, err := df.buildIndex()
	if err != nil {
		return err
	}
	var ex *search.Explain
	var opts []search.QueryOption
	if *explain {
		opts = append(opts, search.WithExplain(&ex))
	}
	res, stats, err := ix.Range(context.Background(), q, *tau, opts...)
	if err != nil {
		return err
	}

	fmt.Printf("index: %d trees, filter %s\n", ix.Size(), ix.Filter().Name())
	fmt.Printf("query: %s (tau=%d)\n", q, *tau)
	fmt.Printf("stats: %s\n", stats)
	if ex != nil {
		fmt.Print(ex.String())
	}
	for _, r := range res {
		fmt.Printf("dist=%d  id=%d  %s\n", r.Dist, r.ID, ix.Tree(r.ID))
	}
	return nil
}

func runDist(args []string) error {
	fs := flag.NewFlagSet("dist", flag.ExitOnError)
	q := fs.Int("q", 2, "binary branch level")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("dist needs exactly two tree arguments")
	}
	t1, err := tree.Parse(rest[0])
	if err != nil {
		return fmt.Errorf("bad first tree: %w", err)
	}
	t2, err := tree.Parse(rest[1])
	if err != nil {
		return fmt.Errorf("bad second tree: %w", err)
	}

	space := branch.NewSpace(*q)
	p1, p2 := space.Profile(t1), space.Profile(t2)
	bd := branch.BDist(p1, p2)
	fmt.Printf("|T1|=%d |T2|=%d (q=%d)\n", t1.Size(), t2.Size(), *q)
	fmt.Printf("edit distance:        %d\n", editdist.Distance(t1, t2))
	fmt.Printf("binary branch dist:   %d (lower bound %d)\n", bd, branch.EditLowerBound(bd, *q))
	fmt.Printf("positional bound:     %d\n", branch.SearchLBound(p1, p2))
	fmt.Printf("sequence lower bound: %d\n", editdist.SequenceLowerBound(t1, t2))
	return nil
}

// runDiff prints an optimal edit script between two trees.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("diff needs exactly two tree arguments")
	}
	t1, err := tree.Parse(rest[0])
	if err != nil {
		return fmt.Errorf("bad first tree: %w", err)
	}
	t2, err := tree.Parse(rest[1])
	if err != nil {
		return fmt.Errorf("bad second tree: %w", err)
	}
	fmt.Print(editdist.EditScript(t1, t2))
	return nil
}

// runIndex builds a BiBranch index from a dataset and saves it.
func runIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	out := fs.String("o", "index.tsix", "output index file")
	fs.Parse(args)

	ts, err := df.loadData()
	if err != nil {
		return err
	}

	positional := df.filter != "bibranch-nopos"
	start := time.Now()
	ix := search.NewIndex(ts, &search.BiBranch{Q: df.q, Positional: positional})
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	err = search.SaveIndex(f, ix)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d trees (q=%d, positional=%v) into %s in %v\n",
		ix.Size(), df.q, positional, *out, time.Since(start).Round(time.Millisecond))
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	fs.Parse(args)

	ts, err := df.loadData()
	if err != nil {
		return err
	}

	var size, height, leaves int
	labels := map[string]bool{}
	for _, t := range ts {
		size += t.Size()
		height += t.Height()
		leaves += t.Leaves()
		for l := range t.LabelCounts() {
			labels[l] = true
		}
	}
	n := float64(len(ts))
	space := branch.NewSpace(df.q)
	space.ProfileAll(ts)
	fmt.Printf("trees:           %d\n", len(ts))
	fmt.Printf("avg size:        %.2f\n", float64(size)/n)
	fmt.Printf("avg height:      %.2f\n", float64(height)/n)
	fmt.Printf("avg leaves:      %.2f\n", float64(leaves)/n)
	fmt.Printf("distinct labels: %d\n", len(labels))
	fmt.Printf("branch space:    %s distinct %d-level branches\n", strconv.Itoa(space.Size()), df.q)
	return nil
}

// runSelfJoin finds every pair of dataset trees within edit distance tau.
func runSelfJoin(args []string) error {
	fs := flag.NewFlagSet("selfjoin", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	tau := fs.Int("tau", 2, "join threshold (edit distance)")
	workers := fs.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
	limit := fs.Int("limit", 20, "print at most this many pairs (0 = all)")
	fs.Parse(args)

	ts, err := df.loadData()
	if err != nil {
		return err
	}

	start := time.Now()
	pairs, stats := join.SelfJoin(ts, *tau, join.Options{Q: df.q, Workers: *workers})
	elapsed := time.Since(start)

	fmt.Printf("self-join of %d trees at tau=%d: %d pairs in %v\n",
		len(ts), *tau, stats.Results, elapsed.Round(time.Millisecond))
	fmt.Printf("exact distances computed: %d of %d candidate pairs (%.2f%%)\n",
		stats.Verified, stats.Pairs, 100*float64(stats.Verified)/float64(max(1, stats.Pairs)))
	for i, p := range pairs {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... %d more pairs\n", len(pairs)-i)
			break
		}
		fmt.Printf("dist=%d  (%d, %d)\n", p.Dist, p.R, p.S)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
