// Command treesim runs similarity queries over tree datasets using the
// binary branch filter-and-refine engine.
//
//	treesim knn   -data data.trees -query 'a(b,c)' -k 5
//	treesim knn   -data data.trees -query-index 17 -k 10 -filter histo
//	treesim range -data data.trees -query 'a(b,c)' -tau 3
//	treesim dist  'a(b(c,d),b(c,d),e)' 'a(b(c,d,b(e)),c,d,e)'
//	treesim stats -data data.trees
//
// Datasets are line-format files (see cmd/treegen) or directories of XML
// documents (-xml dir). Filters: bibranch (default; the paper's positional
// binary branch bound), bibranch-nopos, histo, seq, none.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"treesim/internal/branch"
	"treesim/internal/dataset"
	"treesim/internal/editdist"
	"treesim/internal/join"
	"treesim/internal/search"
	"treesim/internal/tree"
	"treesim/internal/xmltree"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "knn":
		runKNN(os.Args[2:])
	case "range":
		runRange(os.Args[2:])
	case "dist":
		runDist(os.Args[2:])
	case "diff":
		runDiff(os.Args[2:])
	case "stats":
		runStats(os.Args[2:])
	case "index":
		runIndex(os.Args[2:])
	case "selfjoin":
		runSelfJoin(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: treesim <knn|range|dist|diff|stats|index|selfjoin> [flags]")
	fmt.Fprintln(os.Stderr, "run 'treesim <command> -h' for command flags")
	os.Exit(2)
}

// dataFlags registers the dataset/query flags shared by knn and range.
type dataFlags struct {
	data, xmlDir, query string
	index               string
	queryIndex          int
	filter              string
	q                   int
}

func (d *dataFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&d.data, "data", "", "dataset file in line format")
	fs.StringVar(&d.xmlDir, "xml", "", "directory of XML documents (alternative to -data)")
	fs.StringVar(&d.index, "index", "", "saved index file (alternative to -data/-xml; see 'treesim index')")
	fs.StringVar(&d.query, "query", "", "query tree in canonical text format")
	fs.IntVar(&d.queryIndex, "query-index", -1, "use dataset tree i as the query")
	fs.StringVar(&d.filter, "filter", "bibranch", "filter: bibranch, bibranch-nopos, histo, seq, none")
	fs.IntVar(&d.q, "q", 2, "binary branch level (bibranch filters)")
}

// buildIndex loads or builds the search index and resolves the query tree.
func (d *dataFlags) buildIndex() (*search.Index, *tree.Tree) {
	if d.index != "" {
		f, err := os.Open(d.index)
		fatalIf(err)
		defer f.Close()
		ix, err := search.LoadIndex(f)
		fatalIf(err)
		q := d.resolveQuery(nil, ix)
		return ix, q
	}
	ts, q := d.load()
	return search.NewIndex(ts, d.makeFilter()), q
}

// resolveQuery picks the query from -query or -query-index against a
// loaded index.
func (d *dataFlags) resolveQuery(_ []*tree.Tree, ix *search.Index) *tree.Tree {
	switch {
	case d.query != "":
		q, err := tree.Parse(d.query)
		fatalIf(err)
		return q
	case d.queryIndex >= 0 && d.queryIndex < ix.Size():
		return ix.Tree(d.queryIndex)
	default:
		fatalIf(fmt.Errorf("need -query or a valid -query-index (0..%d)", ix.Size()-1))
		return nil
	}
}

func (d *dataFlags) load() ([]*tree.Tree, *tree.Tree) {
	var ts []*tree.Tree
	var err error
	switch {
	case d.data != "":
		ts, err = dataset.LoadFile(d.data)
	case d.xmlDir != "":
		ts, _, err = dataset.LoadXMLDir(d.xmlDir, xmltree.DefaultOptions())
	default:
		err = fmt.Errorf("need -data or -xml")
	}
	fatalIf(err)
	if len(ts) == 0 {
		fatalIf(fmt.Errorf("dataset is empty"))
	}

	var q *tree.Tree
	switch {
	case d.query != "":
		q, err = tree.Parse(d.query)
		fatalIf(err)
	case d.queryIndex >= 0 && d.queryIndex < len(ts):
		q = ts[d.queryIndex]
	default:
		err = fmt.Errorf("need -query or a valid -query-index (0..%d)", len(ts)-1)
		fatalIf(err)
	}
	return ts, q
}

func (d *dataFlags) makeFilter() search.Filter {
	switch d.filter {
	case "bibranch":
		return &search.BiBranch{Q: d.q, Positional: true}
	case "bibranch-nopos":
		return &search.BiBranch{Q: d.q, Positional: false}
	case "histo":
		return search.NewHisto()
	case "seq":
		return search.NewSeq()
	case "none":
		return search.NewNone()
	default:
		fatalIf(fmt.Errorf("unknown filter %q", d.filter))
		return nil
	}
}

func runKNN(args []string) {
	fs := flag.NewFlagSet("knn", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	k := fs.Int("k", 5, "number of nearest neighbors")
	fs.Parse(args)

	start := time.Now()
	ix, q := df.buildIndex()
	buildTime := time.Since(start)
	res, stats := ix.KNN(q, *k)

	fmt.Printf("index: %d trees, filter %s, ready in %v\n", ix.Size(), ix.Filter().Name(), buildTime.Round(time.Millisecond))
	fmt.Printf("query: %s\n", q)
	fmt.Printf("stats: %s\n", stats)
	for rank, r := range res {
		fmt.Printf("%3d. dist=%d  id=%d  %s\n", rank+1, r.Dist, r.ID, ix.Tree(r.ID))
	}
}

func runRange(args []string) {
	fs := flag.NewFlagSet("range", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	tau := fs.Int("tau", 2, "range radius (edit distance)")
	fs.Parse(args)

	ix, q := df.buildIndex()
	res, stats := ix.Range(q, *tau)

	fmt.Printf("index: %d trees, filter %s\n", ix.Size(), ix.Filter().Name())
	fmt.Printf("query: %s (tau=%d)\n", q, *tau)
	fmt.Printf("stats: %s\n", stats)
	for _, r := range res {
		fmt.Printf("dist=%d  id=%d  %s\n", r.Dist, r.ID, ix.Tree(r.ID))
	}
}

func runDist(args []string) {
	fs := flag.NewFlagSet("dist", flag.ExitOnError)
	q := fs.Int("q", 2, "binary branch level")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		fatalIf(fmt.Errorf("dist needs exactly two tree arguments"))
	}
	t1, err := tree.Parse(rest[0])
	fatalIf(err)
	t2, err := tree.Parse(rest[1])
	fatalIf(err)

	space := branch.NewSpace(*q)
	p1, p2 := space.Profile(t1), space.Profile(t2)
	bd := branch.BDist(p1, p2)
	fmt.Printf("|T1|=%d |T2|=%d (q=%d)\n", t1.Size(), t2.Size(), *q)
	fmt.Printf("edit distance:        %d\n", editdist.Distance(t1, t2))
	fmt.Printf("binary branch dist:   %d (lower bound %d)\n", bd, branch.EditLowerBound(bd, *q))
	fmt.Printf("positional bound:     %d\n", branch.SearchLBound(p1, p2))
	fmt.Printf("sequence lower bound: %d\n", editdist.SequenceLowerBound(t1, t2))
}

// runDiff prints an optimal edit script between two trees.
func runDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		fatalIf(fmt.Errorf("diff needs exactly two tree arguments"))
	}
	t1, err := tree.Parse(rest[0])
	fatalIf(err)
	t2, err := tree.Parse(rest[1])
	fatalIf(err)
	fmt.Print(editdist.EditScript(t1, t2))
}

// runIndex builds a BiBranch index from a dataset and saves it.
func runIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	out := fs.String("o", "index.tsix", "output index file")
	fs.Parse(args)

	var ts []*tree.Tree
	var err error
	switch {
	case df.data != "":
		ts, err = dataset.LoadFile(df.data)
	case df.xmlDir != "":
		ts, _, err = dataset.LoadXMLDir(df.xmlDir, xmltree.DefaultOptions())
	default:
		err = fmt.Errorf("need -data or -xml")
	}
	fatalIf(err)

	positional := df.filter != "bibranch-nopos"
	start := time.Now()
	ix := search.NewIndex(ts, &search.BiBranch{Q: df.q, Positional: positional})
	f, err := os.Create(*out)
	fatalIf(err)
	err = search.SaveIndex(f, ix)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	fatalIf(err)
	fmt.Printf("indexed %d trees (q=%d, positional=%v) into %s in %v\n",
		ix.Size(), df.q, positional, *out, time.Since(start).Round(time.Millisecond))
}

func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	fs.Parse(args)

	var ts []*tree.Tree
	var err error
	switch {
	case df.data != "":
		ts, err = dataset.LoadFile(df.data)
	case df.xmlDir != "":
		ts, _, err = dataset.LoadXMLDir(df.xmlDir, xmltree.DefaultOptions())
	default:
		err = fmt.Errorf("need -data or -xml")
	}
	fatalIf(err)

	var size, height, leaves int
	labels := map[string]bool{}
	for _, t := range ts {
		size += t.Size()
		height += t.Height()
		leaves += t.Leaves()
		for l := range t.LabelCounts() {
			labels[l] = true
		}
	}
	n := float64(len(ts))
	space := branch.NewSpace(df.q)
	space.ProfileAll(ts)
	fmt.Printf("trees:           %d\n", len(ts))
	fmt.Printf("avg size:        %.2f\n", float64(size)/n)
	fmt.Printf("avg height:      %.2f\n", float64(height)/n)
	fmt.Printf("avg leaves:      %.2f\n", float64(leaves)/n)
	fmt.Printf("distinct labels: %d\n", len(labels))
	fmt.Printf("branch space:    %s distinct %d-level branches\n", strconv.Itoa(space.Size()), df.q)
}

// runSelfJoin finds every pair of dataset trees within edit distance tau.
func runSelfJoin(args []string) {
	fs := flag.NewFlagSet("selfjoin", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	tau := fs.Int("tau", 2, "join threshold (edit distance)")
	workers := fs.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
	limit := fs.Int("limit", 20, "print at most this many pairs (0 = all)")
	fs.Parse(args)

	var ts []*tree.Tree
	var err error
	switch {
	case df.data != "":
		ts, err = dataset.LoadFile(df.data)
	case df.xmlDir != "":
		ts, _, err = dataset.LoadXMLDir(df.xmlDir, xmltree.DefaultOptions())
	default:
		err = fmt.Errorf("need -data or -xml")
	}
	fatalIf(err)

	start := time.Now()
	pairs, stats := join.SelfJoin(ts, *tau, join.Options{Q: df.q, Workers: *workers})
	elapsed := time.Since(start)

	fmt.Printf("self-join of %d trees at tau=%d: %d pairs in %v\n",
		len(ts), *tau, stats.Results, elapsed.Round(time.Millisecond))
	fmt.Printf("exact distances computed: %d of %d candidate pairs (%.2f%%)\n",
		stats.Verified, stats.Pairs, 100*float64(stats.Verified)/float64(max(1, stats.Pairs)))
	for i, p := range pairs {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... %d more pairs\n", len(pairs)-i)
			break
		}
		fmt.Printf("dist=%d  (%d, %d)\n", p.Dist, p.R, p.S)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "treesim: %v\n", err)
		os.Exit(1)
	}
}
