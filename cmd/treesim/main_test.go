package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/dataset"
)

// writeTestData generates a small dataset file for CLI tests.
func writeTestData(t *testing.T) string {
	t.Helper()
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 12, SizeStd: 3, Labels: 5, Decay: 0.1}
	ts := datagen.New(spec, 9).Dataset(30, 5)
	path := filepath.Join(t.TempDir(), "data.trees")
	if err := dataset.SaveFile(path, ts); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout redirects os.Stdout around fn and returns what was
// printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestRunKNNCommand(t *testing.T) {
	data := writeTestData(t)
	out := captureStdout(t, func() {
		runKNN([]string{"-data", data, "-query-index", "3", "-k", "2"})
	})
	if !contains(out, "dist=0") || !contains(out, "filter BiBranch") {
		t.Errorf("knn output missing expected content:\n%s", out)
	}
}

func TestRunKNNFilters(t *testing.T) {
	data := writeTestData(t)
	for _, f := range []string{"bibranch", "bibranch-nopos", "histo", "seq", "none"} {
		out := captureStdout(t, func() {
			runKNN([]string{"-data", data, "-query-index", "0", "-k", "1", "-filter", f})
		})
		if !contains(out, "dist=0") {
			t.Errorf("filter %s: output missing result:\n%s", f, out)
		}
	}
}

func TestRunRangeCommand(t *testing.T) {
	data := writeTestData(t)
	out := captureStdout(t, func() {
		runRange([]string{"-data", data, "-query-index", "5", "-tau", "2"})
	})
	if !contains(out, "tau=2") || !contains(out, "dist=0") {
		t.Errorf("range output missing expected content:\n%s", out)
	}
}

func TestRunDistCommand(t *testing.T) {
	out := captureStdout(t, func() {
		runDist([]string{"a(b(c,d),b(c,d),e)", "a(b(c,d,b(e)),c,d,e)"})
	})
	if !contains(out, "edit distance:        3") ||
		!contains(out, "binary branch dist:   9") {
		t.Errorf("dist output wrong:\n%s", out)
	}
}

func TestRunDiffCommand(t *testing.T) {
	out := captureStdout(t, func() {
		runDiff([]string{"a(b)", "a(c(b))"})
	})
	if !contains(out, "cost 1") || !contains(out, "insert") {
		t.Errorf("diff output wrong:\n%s", out)
	}
}

func TestRunStatsCommand(t *testing.T) {
	data := writeTestData(t)
	out := captureStdout(t, func() {
		runStats([]string{"-data", data})
	})
	if !contains(out, "trees:           30") || !contains(out, "branch space") {
		t.Errorf("stats output wrong:\n%s", out)
	}
}

func TestRunIndexAndQueryFromIndex(t *testing.T) {
	data := writeTestData(t)
	idx := filepath.Join(t.TempDir(), "data.tsix")
	out := captureStdout(t, func() {
		runIndex([]string{"-data", data, "-o", idx})
	})
	if !contains(out, "indexed 30 trees") {
		t.Errorf("index output wrong:\n%s", out)
	}
	out = captureStdout(t, func() {
		runKNN([]string{"-index", idx, "-query-index", "3", "-k", "2"})
	})
	if !contains(out, "dist=0") {
		t.Errorf("knn from saved index wrong:\n%s", out)
	}
}

func TestRunSelfJoinCommand(t *testing.T) {
	data := writeTestData(t)
	out := captureStdout(t, func() {
		runSelfJoin([]string{"-data", data, "-tau", "2", "-limit", "3"})
	})
	if !contains(out, "self-join of 30 trees") {
		t.Errorf("selfjoin output wrong:\n%s", out)
	}
}

func TestXMLDirInput(t *testing.T) {
	dir := t.TempDir()
	docs := map[string]string{
		"a.xml": "<r><a>one</a></r>",
		"b.xml": "<r><a>two</a></r>",
		"c.xml": "<r><b>one</b><b>three</b></r>",
	}
	for name, content := range docs {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out := captureStdout(t, func() {
		runKNN([]string{"-xml", dir, "-query", "r(a(one))", "-k", "1"})
	})
	if !contains(out, "dist=0") {
		t.Errorf("xml knn output wrong:\n%s", out)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// TestMissingDatasetError: a missing dataset file is a returned error (so
// main exits 1 with a message), never a panic or a zero exit.
func TestMissingDatasetError(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.trees")
	for name, fn := range map[string]func([]string) error{
		"knn":      runKNN,
		"range":    runRange,
		"stats":    runStats,
		"index":    runIndex,
		"selfjoin": runSelfJoin,
	} {
		err := fn([]string{"-data", missing, "-query", "a(b)"})
		if name == "stats" || name == "index" || name == "selfjoin" {
			err = fn([]string{"-data", missing})
		}
		if err == nil {
			t.Errorf("%s with missing dataset: nil error", name)
			continue
		}
		if !contains(err.Error(), "no such file") {
			t.Errorf("%s with missing dataset: unclear error %q", name, err)
		}
	}
}

// TestBadQueryError: an unparsable -query is a clear returned error.
func TestBadQueryError(t *testing.T) {
	data := writeTestData(t)
	err := runKNN([]string{"-data", data, "-query", "a(b", "-k", "2"})
	if err == nil || !contains(err.Error(), "bad -query") {
		t.Errorf("bad query: error %v, want parse failure mentioning -query", err)
	}
	err = runRange([]string{"-data", data, "-query", "a(b,", "-tau", "1"})
	if err == nil || !contains(err.Error(), "bad -query") {
		t.Errorf("bad range query: error %v", err)
	}
}

// TestMissingQueryError: neither -query nor a valid -query-index.
func TestMissingQueryError(t *testing.T) {
	data := writeTestData(t)
	err := runKNN([]string{"-data", data})
	if err == nil || !contains(err.Error(), "need -query") {
		t.Errorf("missing query: error %v", err)
	}
	err = runKNN([]string{"-data", data, "-query-index", "999"})
	if err == nil || !contains(err.Error(), "need -query") {
		t.Errorf("out-of-range query index: error %v", err)
	}
}

// TestBadTreeArgsError: dist/diff reject malformed tree literals.
func TestBadTreeArgsError(t *testing.T) {
	if err := runDist([]string{"a(b", "c"}); err == nil || !contains(err.Error(), "bad first tree") {
		t.Errorf("dist bad tree: error %v", err)
	}
	if err := runDiff([]string{"a", "c)"}); err == nil || !contains(err.Error(), "bad second tree") {
		t.Errorf("diff bad tree: error %v", err)
	}
	if err := runDist([]string{"a"}); err == nil || !contains(err.Error(), "exactly two") {
		t.Errorf("dist arity: error %v", err)
	}
}

// TestUnknownFilterError: a bogus -filter name is a returned error.
func TestUnknownFilterError(t *testing.T) {
	data := writeTestData(t)
	err := runKNN([]string{"-data", data, "-query-index", "0", "-filter", "bogus"})
	if err == nil || !contains(err.Error(), "unknown filter") {
		t.Errorf("unknown filter: error %v", err)
	}
}

// TestBadIndexFileError: loading a non-index file fails cleanly.
func TestBadIndexFileError(t *testing.T) {
	data := writeTestData(t) // a line-format dataset, not an index
	err := runKNN([]string{"-index", data, "-query", "a(b)"})
	if err == nil || !contains(err.Error(), "magic") {
		t.Errorf("bad index file: error %v", err)
	}
}
