package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/dataset"
)

// writeTestData generates a small dataset file for CLI tests.
func writeTestData(t *testing.T) string {
	t.Helper()
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 12, SizeStd: 3, Labels: 5, Decay: 0.1}
	ts := datagen.New(spec, 9).Dataset(30, 5)
	path := filepath.Join(t.TempDir(), "data.trees")
	if err := dataset.SaveFile(path, ts); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout redirects os.Stdout around fn and returns what was
// printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestRunKNNCommand(t *testing.T) {
	data := writeTestData(t)
	out := captureStdout(t, func() {
		runKNN([]string{"-data", data, "-query-index", "3", "-k", "2"})
	})
	if !contains(out, "dist=0") || !contains(out, "filter BiBranch") {
		t.Errorf("knn output missing expected content:\n%s", out)
	}
}

func TestRunKNNFilters(t *testing.T) {
	data := writeTestData(t)
	for _, f := range []string{"bibranch", "bibranch-nopos", "histo", "seq", "none"} {
		out := captureStdout(t, func() {
			runKNN([]string{"-data", data, "-query-index", "0", "-k", "1", "-filter", f})
		})
		if !contains(out, "dist=0") {
			t.Errorf("filter %s: output missing result:\n%s", f, out)
		}
	}
}

func TestRunRangeCommand(t *testing.T) {
	data := writeTestData(t)
	out := captureStdout(t, func() {
		runRange([]string{"-data", data, "-query-index", "5", "-tau", "2"})
	})
	if !contains(out, "tau=2") || !contains(out, "dist=0") {
		t.Errorf("range output missing expected content:\n%s", out)
	}
}

func TestRunDistCommand(t *testing.T) {
	out := captureStdout(t, func() {
		runDist([]string{"a(b(c,d),b(c,d),e)", "a(b(c,d,b(e)),c,d,e)"})
	})
	if !contains(out, "edit distance:        3") ||
		!contains(out, "binary branch dist:   9") {
		t.Errorf("dist output wrong:\n%s", out)
	}
}

func TestRunDiffCommand(t *testing.T) {
	out := captureStdout(t, func() {
		runDiff([]string{"a(b)", "a(c(b))"})
	})
	if !contains(out, "cost 1") || !contains(out, "insert") {
		t.Errorf("diff output wrong:\n%s", out)
	}
}

func TestRunStatsCommand(t *testing.T) {
	data := writeTestData(t)
	out := captureStdout(t, func() {
		runStats([]string{"-data", data})
	})
	if !contains(out, "trees:           30") || !contains(out, "branch space") {
		t.Errorf("stats output wrong:\n%s", out)
	}
}

func TestRunIndexAndQueryFromIndex(t *testing.T) {
	data := writeTestData(t)
	idx := filepath.Join(t.TempDir(), "data.tsix")
	out := captureStdout(t, func() {
		runIndex([]string{"-data", data, "-o", idx})
	})
	if !contains(out, "indexed 30 trees") {
		t.Errorf("index output wrong:\n%s", out)
	}
	out = captureStdout(t, func() {
		runKNN([]string{"-index", idx, "-query-index", "3", "-k", "2"})
	})
	if !contains(out, "dist=0") {
		t.Errorf("knn from saved index wrong:\n%s", out)
	}
}

func TestRunSelfJoinCommand(t *testing.T) {
	data := writeTestData(t)
	out := captureStdout(t, func() {
		runSelfJoin([]string{"-data", data, "-tau", "2", "-limit", "3"})
	})
	if !contains(out, "self-join of 30 trees") {
		t.Errorf("selfjoin output wrong:\n%s", out)
	}
}

func TestXMLDirInput(t *testing.T) {
	dir := t.TempDir()
	docs := map[string]string{
		"a.xml": "<r><a>one</a></r>",
		"b.xml": "<r><a>two</a></r>",
		"c.xml": "<r><b>one</b><b>three</b></r>",
	}
	for name, content := range docs {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out := captureStdout(t, func() {
		runKNN([]string{"-xml", dir, "-query", "r(a(one))", "-k", "1"})
	})
	if !contains(out, "dist=0") {
		t.Errorf("xml knn output wrong:\n%s", out)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
