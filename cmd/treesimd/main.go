// Command treesimd is the long-lived similarity-search server: it loads or
// builds a filter-and-refine index once at startup and serves concurrent
// k-NN / range / insert traffic over HTTP/JSON (see internal/server for
// the API).
//
//	treesimd -data data.trees -addr :8080
//	treesimd -data data.trees -snapshot index.tsix     # warm restarts
//	treesimd -index data.tsix -max-inflight 128 -timeout 5s
//
// Index sources, in priority order: -snapshot (when the file exists — a
// warm restart), -index (a file written by 'treesim index'), -data/-xml
// (build from a dataset with -filter/-q). With -snapshot set, the server
// persists the live index there periodically and again on shutdown, so
// inserts survive restarts.
//
// With -wal set, every accepted insert is appended to a write-ahead log
// before it is acknowledged, closing the crash window between snapshots:
// startup recovery loads the snapshot, replays the WAL records it does
// not cover, and trims the log once a fresh snapshot is published. The
// log is segmented — it rotates to a new file beyond -wal-max-bytes and
// trimming deletes whole covered segments — and -wal-sync chooses the
// fsync policy ("always" per record, or "never").
//
// Snapshots are generational: each publication shifts the previous file
// to <path>.1, .2, … up to -snapshot-keep generations. A corrupt or
// truncated snapshot no longer aborts startup when an older generation
// loads — the server falls back generation by generation and replays
// the correspondingly longer WAL suffix. Startup fails only when every
// retained generation is damaged. At runtime a failing disk (WAL append
// or snapshot errors) flips the server into degraded read-only mode:
// queries keep serving, writes get 503 not_durable with Retry-After,
// and a background prober restores write service when the disk heals.
//
// Observability: -slow-query logs the span tree of any query at or above
// the threshold (0 logs every query) together with its EXPLAIN record,
// ?trace=1 on the query endpoints returns the same breakdown inline,
// ?explain=1 returns the per-query filter-quality analysis, GET /metrics
// serves Prometheus text with ?format=prom, GET /version reports the
// build, and -pprof mounts net/http/pprof on a separate loopback-only
// listener. -qlog records served queries (sampled by -qlog-sample,
// rotated beyond -qlog-max-bytes) to a JSONL workload log that
// cmd/treesim-analyze replays offline against a matrix of filters.
//
// A flight recorder keeps the span trees of recent interesting requests
// in a fixed ring (-trace-ring entries): every errored request, every
// request slower than an adaptive tail threshold, and a sampled baseline
// of normal traffic. The loopback-only GET /debug/traces lists them
// (filter with ?endpoint=, ?min_us=, ?error=1), GET /debug/traces/{id}
// fetches one, and GET /debug/slo serves per-endpoint error-budget burn
// rates against the -slo-latency / -slo-target objectives; browse both
// with cmd/treesim-trace.
//
// Distributed tracing: every request carries W3C trace-context — an
// inbound traceparent header continues the caller's trace, otherwise a
// fresh 128-bit trace ID is minted — and the ID is echoed in X-Trace-Id
// and every log line. With -otlp-endpoint set, finished span trees are
// batched into OTLP/JSON and POSTed to that collector URL in the
// background: errored and tail-retained traces always export,
// caller-sampled traces (flag 01) export, and the rest are head-sampled
// at -trace-sample by a deterministic hash of the trace ID. Tail-slow
// and errored requests also trigger a short CPU profile (rate-limited
// to one per -profile-every), retained in memory and served on the
// loopback-only GET /debug/profiles, linked to traces by trace ID.
//
// SIGINT/SIGTERM trigger a graceful drain: readiness flips to 503,
// in-flight queries finish, a final snapshot is written, then the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"treesim/internal/dataset"
	"treesim/internal/qlog"
	"treesim/internal/search"
	"treesim/internal/server"
	"treesim/internal/tree"
	"treesim/internal/wal"
	"treesim/internal/xmltree"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// config is the parsed flag set.
type config struct {
	addr         string
	data, xmlDir string
	indexFile    string
	snapshot     string
	snapInterval time.Duration
	snapKeep     int
	walPath      string
	walSync      string
	walMaxBytes  int64
	filter       string
	q            int
	maxInFlight  int
	timeout      time.Duration
	drain        time.Duration
	addrFile     string
	omitTrees    bool
	slowQuery    time.Duration
	pprofAddr    string
	qlogPath     string
	qlogSample   float64
	qlogMaxBytes int64
	shards       int
	refineWork   int
	boundedOff   bool
	memtable     int
	compactAt    int
	traceRing    int
	sloLatency   time.Duration
	sloTarget    float64
	otlpEndpoint string
	traceSample  float64
	profileEvery time.Duration
	version      bool
}

// run is main with injectable args/stderr and an exit code, so the
// lifecycle is testable in-process.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("treesimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.StringVar(&c.addr, "addr", ":8080", "listen address")
	fs.StringVar(&c.data, "data", "", "dataset file in line format (build an index at startup)")
	fs.StringVar(&c.xmlDir, "xml", "", "directory of XML documents (alternative to -data)")
	fs.StringVar(&c.indexFile, "index", "", "saved index file from 'treesim index' (alternative to -data/-xml)")
	fs.StringVar(&c.snapshot, "snapshot", "", "snapshot path: loaded at startup when present, persisted periodically and at shutdown")
	fs.DurationVar(&c.snapInterval, "snapshot-interval", time.Minute, "periodic snapshot cadence (requires -snapshot)")
	fs.IntVar(&c.snapKeep, "snapshot-keep", 3, "snapshot generations retained for corruption fallback (1 = only the latest)")
	fs.StringVar(&c.walPath, "wal", "", "write-ahead log path: inserts are logged before acknowledgment and replayed at startup")
	fs.StringVar(&c.walSync, "wal-sync", "always", "WAL fsync policy: always (fsync per record) or never")
	fs.Int64Var(&c.walMaxBytes, "wal-max-bytes", 0, "rotate the WAL to a new segment beyond this size (0 = 64MiB, negative disables rotation)")
	fs.StringVar(&c.filter, "filter", "bibranch", "filter when building from -data/-xml: bibranch, bibranch-nopos")
	fs.IntVar(&c.q, "q", 2, "binary branch level when building from -data/-xml")
	fs.IntVar(&c.maxInFlight, "max-inflight", 64, "admitted concurrent query requests; beyond this the server answers 429")
	fs.DurationVar(&c.timeout, "timeout", 10*time.Second, "per-query deadline (504 beyond it)")
	fs.DurationVar(&c.drain, "drain", 15*time.Second, "graceful-shutdown drain budget")
	fs.StringVar(&c.addrFile, "addr-file", "", "write the bound address to this file once listening (for scripts)")
	fs.BoolVar(&c.omitTrees, "omit-trees", false, "leave tree text out of query results")
	fs.DurationVar(&c.slowQuery, "slow-query", -1, "log the span tree of queries at or above this duration (0 logs every query; negative disables)")
	fs.StringVar(&c.pprofAddr, "pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060); empty disables")
	fs.StringVar(&c.qlogPath, "qlog", "", "record served queries to this JSONL workload log (replay with treesim-analyze); empty disables")
	fs.Float64Var(&c.qlogSample, "qlog-sample", 1, "fraction of queries recorded to -qlog, deterministic in stream position (0,1]")
	fs.Int64Var(&c.qlogMaxBytes, "qlog-max-bytes", 0, "rotate the -qlog file beyond this size (0 = 64MiB, negative disables rotation)")
	fs.IntVar(&c.shards, "shards", 0, "dataset shards per query's filter stage (0 = GOMAXPROCS, 1 = sequential)")
	fs.IntVar(&c.refineWork, "refine-workers", 0, "index-wide worker pool size shared by all queries (0 = GOMAXPROCS)")
	fs.BoolVar(&c.boundedOff, "no-bounded-refine", false, "compute every verification distance in full instead of cutting off at the query threshold (results are identical; for benchmarking)")
	fs.IntVar(&c.memtable, "memtable-size", 0, "inserts absorbed by the mutable memtable segment before it seals (0 = default)")
	fs.IntVar(&c.compactAt, "compact-threshold", 0, "sealed segments that trigger a background compaction (0 = default, negative = manual only)")
	fs.IntVar(&c.traceRing, "trace-ring", 0, "retained traces in the flight recorder, served on /debug/traces (0 = 256, negative disables)")
	fs.DurationVar(&c.sloLatency, "slo-latency", 0, "per-request latency objective for the SLO burn rate (0 = 100ms)")
	fs.Float64Var(&c.sloTarget, "slo-target", 0, "good-request objective in (0,1) for the SLO burn rate (0 = 0.99)")
	fs.StringVar(&c.otlpEndpoint, "otlp-endpoint", "", "POST finished traces as OTLP/JSON to this collector URL (e.g. http://localhost:4318/v1/traces); empty disables export")
	fs.Float64Var(&c.traceSample, "trace-sample", 0, "head-sampling rate in [0,1] for exporting normal traces (errors and tail-retained traces always export)")
	fs.DurationVar(&c.profileEvery, "profile-every", 0, "minimum spacing between tail-triggered CPU profiles (0 = 1m, negative disables)")
	fs.BoolVar(&c.version, "version", false, "print build information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if c.version {
		bi := server.Build()
		fmt.Fprintf(stderr, "treesimd %s", bi.GoVersion)
		if bi.Revision != "" {
			dirty := ""
			if bi.Dirty {
				dirty = " (dirty)"
			}
			fmt.Fprintf(stderr, " %s%s %s", bi.Revision, dirty, bi.Time)
		}
		fmt.Fprintln(stderr)
		return 0
	}

	syncPolicy, err := wal.ParseSyncPolicy(c.walSync)
	if err != nil {
		fmt.Fprintf(stderr, "treesimd: -wal-sync: %v\n", err)
		return 2
	}

	log := slog.New(slog.NewTextHandler(stderr, nil))
	ix, origin, err := loadIndex(c)
	if err != nil {
		fmt.Fprintf(stderr, "treesimd: %v\n", err)
		return 1
	}
	log.Info("index ready", "trees", ix.Size(), "filter", ix.Filter().Name(), "origin", origin)

	scfg := server.Config{
		MaxInFlight:      c.maxInFlight,
		QueryTimeout:     c.timeout,
		SnapshotPath:     c.snapshot,
		SnapshotInterval: c.snapInterval,
		SnapshotKeep:     c.snapKeep,
		WALPath:          c.walPath,
		WALSync:          syncPolicy,
		WALMaxBytes:      c.walMaxBytes,
		OmitTrees:        c.omitTrees,
		TraceRing:        c.traceRing,
		SLOLatency:       c.sloLatency,
		SLOTarget:        c.sloTarget,
		OTLPEndpoint:     c.otlpEndpoint,
		TraceSample:      c.traceSample,
		ProfileEvery:     c.profileEvery,
		Logger:           log,
	}
	if c.otlpEndpoint != "" {
		log.Info("otlp export enabled", "endpoint", c.otlpEndpoint, "sample", c.traceSample)
	}
	if c.slowQuery >= 0 {
		threshold := c.slowQuery
		scfg.SlowQuery = &threshold
	}
	if c.qlogPath != "" {
		qw, err := qlog.Open(c.qlogPath, qlog.Options{SampleRate: c.qlogSample, MaxBytes: c.qlogMaxBytes})
		if err != nil {
			fmt.Fprintf(stderr, "treesimd: -qlog: %v\n", err)
			return 2
		}
		defer func() {
			seen, kept, errs := qw.Counters()
			log.Info("query log closed", "path", c.qlogPath, "seen", seen, "recorded", kept, "errors", errs)
			qw.Close()
		}()
		scfg.QueryLog = qw
		log.Info("query log enabled", "path", c.qlogPath, "sample", c.qlogSample)
	}
	srv := server.New(ix, scfg)

	rec, err := srv.Recover()
	if err != nil {
		fmt.Fprintf(stderr, "treesimd: recovery: %v\n", err)
		return 1
	}
	if c.walPath != "" {
		log.Info("recovery complete", "result", rec.String(), "trees", ix.Size())
	}

	if c.pprofAddr != "" {
		pln, err := listenPprof(c.pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "treesimd: -pprof: %v\n", err)
			return 2
		}
		defer pln.Close()
		go servePprof(pln)
		log.Info("pprof listening", "addr", pln.Addr().String())
	}

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		fmt.Fprintf(stderr, "treesimd: %v\n", err)
		return 1
	}
	if c.addrFile != "" {
		if err := os.WriteFile(c.addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "treesimd: writing -addr-file: %v\n", err)
			ln.Close()
			return 1
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener failed before any signal.
		fmt.Fprintf(stderr, "treesimd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	log.Info("signal received, draining", "budget", c.drain)
	sctx, cancel := context.WithTimeout(context.Background(), c.drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "treesimd: shutdown: %v\n", err)
		return 1
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "treesimd: serve: %v\n", err)
		return 1
	}
	return 0
}

// listenPprof binds the debug listener, refusing non-loopback addresses:
// pprof exposes heap contents and must never face the network.
func listenPprof(addr string) (net.Listener, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("bad address %q: %v", addr, err)
	}
	ip := net.ParseIP(host)
	if host != "localhost" && (ip == nil || !ip.IsLoopback()) {
		return nil, fmt.Errorf("refusing non-loopback address %q (pprof exposes process internals)", addr)
	}
	return net.Listen("tcp", addr)
}

// servePprof mounts the net/http/pprof handlers on a fresh mux — never the
// default one, which other packages may have extended — and serves until
// the listener closes.
func servePprof(ln net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	_ = srv.Serve(ln)
}

// loadIndex resolves the index source: warm snapshot, saved index file, or
// a dataset to build from. The parallelism options apply uniformly to all
// three paths.
func loadIndex(c config) (*search.Index, string, error) {
	par := []search.IndexOption{
		search.WithShards(c.shards), search.WithRefineWorkers(c.refineWork),
		search.WithMemtableSize(c.memtable), search.WithCompactionThreshold(c.compactAt),
		search.WithBoundedRefine(!c.boundedOff),
	}
	if c.snapshot != "" {
		ix, gen, err := server.LoadSnapshotFallback(nil, c.snapshot, c.snapKeep, par...)
		switch {
		case err == nil:
			origin := "snapshot " + c.snapshot
			if gen > 0 {
				// Newer generations were corrupt or truncated; the WAL
				// replay that follows covers the suffix this older cut
				// misses.
				origin = fmt.Sprintf("snapshot %s (fell back to generation %d)", c.snapshot, gen)
			}
			return ix, origin, nil
		case errors.Is(err, os.ErrNotExist):
			// Cold start: no generation on disk, fall through to the
			// other index sources.
		default:
			return nil, "", fmt.Errorf("loading snapshot %s: %w", c.snapshot, err)
		}
	}
	if c.indexFile != "" {
		f, err := os.Open(c.indexFile)
		if err != nil {
			return nil, "", fmt.Errorf("opening index: %w", err)
		}
		defer f.Close()
		ix, err := search.LoadIndex(f, par...)
		if err != nil {
			return nil, "", fmt.Errorf("loading index %s: %w", c.indexFile, err)
		}
		return ix, "index " + c.indexFile, nil
	}

	switch {
	case c.data != "":
		ts, err := dataset.LoadFile(c.data)
		if err != nil {
			return nil, "", fmt.Errorf("loading dataset: %w", err)
		}
		return buildIndex(c, ts, "dataset "+c.data)
	case c.xmlDir != "":
		ts, _, err := dataset.LoadXMLDir(c.xmlDir, xmltree.DefaultOptions())
		if err != nil {
			return nil, "", fmt.Errorf("loading XML directory: %w", err)
		}
		return buildIndex(c, ts, "xml "+c.xmlDir)
	}
	return nil, "", errors.New("need an index source: -snapshot (existing), -index, -data or -xml")
}

func buildIndex(c config, ts []*tree.Tree, origin string) (*search.Index, string, error) {
	if len(ts) == 0 {
		return nil, "", errors.New("dataset is empty")
	}
	var positional bool
	switch c.filter {
	case "bibranch":
		positional = true
	case "bibranch-nopos":
		positional = false
	default:
		return nil, "", fmt.Errorf("unknown filter %q (want bibranch or bibranch-nopos)", c.filter)
	}
	ix := search.NewIndex(ts, &search.BiBranch{Q: c.q, Positional: positional},
		search.WithShards(c.shards), search.WithRefineWorkers(c.refineWork),
		search.WithMemtableSize(c.memtable), search.WithCompactionThreshold(c.compactAt),
		search.WithBoundedRefine(!c.boundedOff))
	return ix, origin, nil
}
