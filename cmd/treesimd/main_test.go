package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"treesim/internal/datagen"
	"treesim/internal/dataset"
	"treesim/internal/search"
	"treesim/internal/wal"
)

func writeTestData(t *testing.T) string {
	t.Helper()
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 12, SizeStd: 3, Labels: 5, Decay: 0.1}
	ts := datagen.New(spec, 9).Dataset(30, 5)
	path := filepath.Join(t.TempDir(), "data.trees")
	if err := dataset.SaveFile(path, ts); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunErrors: startup failures exit non-zero with a clear message.
func TestRunErrors(t *testing.T) {
	data := writeTestData(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no source", nil, "need an index source"},
		{"missing dataset", []string{"-data", filepath.Join(t.TempDir(), "nope.trees")}, "loading dataset"},
		{"bad filter", []string{"-data", data, "-filter", "bogus"}, "unknown filter"},
		{"bad flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"bad index file", []string{"-index", data}, "loading index"},
	}
	for _, c := range cases {
		var stderr bytes.Buffer
		if code := run(c.args, &stderr); code == 0 {
			t.Errorf("%s: exit 0, want non-zero", c.name)
		}
		if !strings.Contains(stderr.String(), c.want) {
			t.Errorf("%s: stderr %q missing %q", c.name, stderr.String(), c.want)
		}
	}
}

// startServer runs the daemon in-process on an ephemeral port and waits
// until it serves, returning the base URL and the exit-code channel.
func startServer(t *testing.T, args []string) (string, chan int) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args = append(args, "-addr", "127.0.0.1:0", "-addr-file", addrFile)
	exit := make(chan int, 1)
	go func() { exit <- run(args, io.Discard) }()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			base = "http://" + strings.TrimSpace(string(b))
			if resp, err := http.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == 200 {
					break
				}
			}
		}
		select {
		case code := <-exit:
			t.Fatalf("server exited early with %d", code)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return base, exit
}

// sigterm asks the daemon to drain (the signal handler is registered
// before the listener starts answering, so this is race-free) and waits
// for its exit code.
func sigterm(t *testing.T, exit chan int) int {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		return code
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
		return -1
	}
}

// TestLifecycleSIGTERM: the daemon builds an index from a dataset, serves
// queries and inserts, drains on SIGTERM with exit 0, persists a final
// snapshot that holds the insert, and warm-restarts from it.
func TestLifecycleSIGTERM(t *testing.T) {
	data := writeTestData(t)
	snap := filepath.Join(t.TempDir(), "index.tsix")

	base, exit := startServer(t, []string{"-data", data, "-snapshot", snap, "-snapshot-interval", "1h"})

	// A k-NN query works end to end.
	body := []byte(`{"tree":"a(b,c)","k":3}`)
	resp, err := http.Post(base+"/v1/knn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("knn status %d", resp.StatusCode)
	}
	// Insert one tree so the final snapshot has something unsaved.
	resp, err = http.Post(base+"/v1/trees", "application/json",
		bytes.NewReader([]byte(`{"tree":"sig(term(x),y)"}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("insert status %d", resp.StatusCode)
	}

	if code := sigterm(t, exit); code != 0 {
		t.Fatalf("exit code %d after SIGTERM, want 0", code)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after SIGTERM")
	}

	f, err := os.Open(snap)
	if err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
	loaded, err := search.LoadIndex(f)
	f.Close()
	if err != nil {
		t.Fatalf("final snapshot corrupt: %v", err)
	}
	if loaded.Size() != 31 {
		t.Fatalf("snapshot holds %d trees, want 31 (30 dataset + 1 insert)", loaded.Size())
	}

	// Warm restart from the snapshot: the insert is still there.
	base2, exit2 := startServer(t, []string{"-snapshot", snap})
	resp, err = http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		IndexSize int `json:"index_size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics.IndexSize != 31 {
		t.Fatalf("warm restart index size %d, want 31", metrics.IndexSize)
	}
	if code := sigterm(t, exit2); code != 0 {
		t.Fatalf("warm restart exit code %d, want 0", code)
	}
}

// writeSnapshot builds a small index and persists it, returning its path
// and size.
func writeSnapshot(t *testing.T, dir string) (string, int) {
	t.Helper()
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 12, SizeStd: 3, Labels: 5, Decay: 0.1}
	ts := datagen.New(spec, 9).Dataset(20, 5)
	ix := search.NewIndex(ts, search.NewBiBranch())
	path := filepath.Join(dir, "index.tsix")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := search.SaveIndex(f, ix); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, len(ts)
}

// TestCorruptSnapshotRefusesStart: a damaged snapshot must abort startup
// with a non-zero exit and a clear message, never serve silently.
func TestCorruptSnapshotRefusesStart(t *testing.T) {
	snap, _ := writeSnapshot(t, t.TempDir())
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var stderr bytes.Buffer
	if code := run([]string{"-snapshot", snap}, &stderr); code != 1 {
		t.Fatalf("exit %d with corrupt snapshot, want 1", code)
	}
	if !strings.Contains(stderr.String(), "corrupt") {
		t.Fatalf("stderr %q does not name the corruption", stderr.String())
	}
}

// TestBadWALSyncFlag: an unknown -wal-sync value is a usage error.
func TestBadWALSyncFlag(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-wal-sync", "sometimes"}, &stderr); code != 2 {
		t.Fatalf("exit %d with bad -wal-sync, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-wal-sync") {
		t.Fatalf("stderr %q does not name the flag", stderr.String())
	}
}

// TestFallbackGenerationWarmStart: when the current snapshot is corrupt
// but an older generation (written by a previous publication's shift
// chain) still loads, the daemon starts from the older generation
// instead of refusing — the whole point of -snapshot-keep.
func TestFallbackGenerationWarmStart(t *testing.T) {
	dir := t.TempDir()
	snap, base := writeSnapshot(t, dir)
	good, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap+".1", good, 0o644); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x01
	if err := os.WriteFile(snap, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	url, exit := startServer(t, []string{"-snapshot", snap})
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		IndexSize int `json:"index_size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics.IndexSize != base {
		t.Fatalf("index size %d after generation fallback, want %d", metrics.IndexSize, base)
	}
	if code := sigterm(t, exit); code != 0 {
		t.Fatalf("exit code %d after SIGTERM, want 0", code)
	}
}

// TestWALWarmStart: the daemon replays a write-ahead log over a snapshot
// at startup — the crash-recovery path as a real restarted process runs
// it — and reports the replay in /metrics.
func TestWALWarmStart(t *testing.T) {
	dir := t.TempDir()
	snap, base := writeSnapshot(t, dir)
	walPath := filepath.Join(dir, "wal.log")

	// Two acknowledged-but-unsnapshotted inserts, as the WAL of a killed
	// process would hold them: u32 dataset position + canonical text.
	l, err := wal.Open(walPath, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, text := range []string{"warm(a,b)", "warm2(c(d),e)"} {
		rec := make([]byte, 4+len(text))
		binary.LittleEndian.PutUint32(rec[:4], uint32(base+i))
		copy(rec[4:], text)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	url, exit := startServer(t, []string{"-snapshot", snap, "-wal", walPath})
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		IndexSize   int    `json:"index_size"`
		WALReplayed uint64 `json:"wal_replayed_records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics.IndexSize != base+2 {
		t.Fatalf("index size %d after replay, want %d", metrics.IndexSize, base+2)
	}
	if metrics.WALReplayed != 2 {
		t.Fatalf("wal_replayed_records %d, want 2", metrics.WALReplayed)
	}
	if code := sigterm(t, exit); code != 0 {
		t.Fatalf("exit %d after SIGTERM, want 0", code)
	}

	// Recovery re-persisted the replayed state: a second start finds it
	// in the snapshot with nothing left to replay.
	url2, exit2 := startServer(t, []string{"-snapshot", snap, "-wal", walPath})
	resp, err = http.Get(url2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics.IndexSize, metrics.WALReplayed = 0, 99
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics.IndexSize != base+2 || metrics.WALReplayed != 0 {
		t.Fatalf("second start: size %d replayed %d, want %d and 0",
			metrics.IndexSize, metrics.WALReplayed, base+2)
	}
	if code := sigterm(t, exit2); code != 0 {
		t.Fatalf("second exit %d after SIGTERM, want 0", code)
	}
}
