package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"treesim/internal/datagen"
	"treesim/internal/dataset"
	"treesim/internal/search"
)

func writeTestData(t *testing.T) string {
	t.Helper()
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 12, SizeStd: 3, Labels: 5, Decay: 0.1}
	ts := datagen.New(spec, 9).Dataset(30, 5)
	path := filepath.Join(t.TempDir(), "data.trees")
	if err := dataset.SaveFile(path, ts); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunErrors: startup failures exit non-zero with a clear message.
func TestRunErrors(t *testing.T) {
	data := writeTestData(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no source", nil, "need an index source"},
		{"missing dataset", []string{"-data", filepath.Join(t.TempDir(), "nope.trees")}, "loading dataset"},
		{"bad filter", []string{"-data", data, "-filter", "bogus"}, "unknown filter"},
		{"bad flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"bad index file", []string{"-index", data}, "loading index"},
	}
	for _, c := range cases {
		var stderr bytes.Buffer
		if code := run(c.args, &stderr); code == 0 {
			t.Errorf("%s: exit 0, want non-zero", c.name)
		}
		if !strings.Contains(stderr.String(), c.want) {
			t.Errorf("%s: stderr %q missing %q", c.name, stderr.String(), c.want)
		}
	}
}

// startServer runs the daemon in-process on an ephemeral port and waits
// until it serves, returning the base URL and the exit-code channel.
func startServer(t *testing.T, args []string) (string, chan int) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args = append(args, "-addr", "127.0.0.1:0", "-addr-file", addrFile)
	exit := make(chan int, 1)
	go func() { exit <- run(args, io.Discard) }()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			base = "http://" + strings.TrimSpace(string(b))
			if resp, err := http.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == 200 {
					break
				}
			}
		}
		select {
		case code := <-exit:
			t.Fatalf("server exited early with %d", code)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return base, exit
}

// sigterm asks the daemon to drain (the signal handler is registered
// before the listener starts answering, so this is race-free) and waits
// for its exit code.
func sigterm(t *testing.T, exit chan int) int {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		return code
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
		return -1
	}
}

// TestLifecycleSIGTERM: the daemon builds an index from a dataset, serves
// queries and inserts, drains on SIGTERM with exit 0, persists a final
// snapshot that holds the insert, and warm-restarts from it.
func TestLifecycleSIGTERM(t *testing.T) {
	data := writeTestData(t)
	snap := filepath.Join(t.TempDir(), "index.tsix")

	base, exit := startServer(t, []string{"-data", data, "-snapshot", snap, "-snapshot-interval", "1h"})

	// A k-NN query works end to end.
	body := []byte(`{"tree":"a(b,c)","k":3}`)
	resp, err := http.Post(base+"/v1/knn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("knn status %d", resp.StatusCode)
	}
	// Insert one tree so the final snapshot has something unsaved.
	resp, err = http.Post(base+"/v1/trees", "application/json",
		bytes.NewReader([]byte(`{"tree":"sig(term(x),y)"}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("insert status %d", resp.StatusCode)
	}

	if code := sigterm(t, exit); code != 0 {
		t.Fatalf("exit code %d after SIGTERM, want 0", code)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after SIGTERM")
	}

	f, err := os.Open(snap)
	if err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
	loaded, err := search.LoadIndex(f)
	f.Close()
	if err != nil {
		t.Fatalf("final snapshot corrupt: %v", err)
	}
	if loaded.Size() != 31 {
		t.Fatalf("snapshot holds %d trees, want 31 (30 dataset + 1 insert)", loaded.Size())
	}

	// Warm restart from the snapshot: the insert is still there.
	base2, exit2 := startServer(t, []string{"-snapshot", snap})
	resp, err = http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		IndexSize int `json:"index_size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics.IndexSize != 31 {
		t.Fatalf("warm restart index size %d, want 31", metrics.IndexSize)
	}
	if code := sigterm(t, exit2); code != 0 {
		t.Fatalf("warm restart exit code %d, want 0", code)
	}
}
