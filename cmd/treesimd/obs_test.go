package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// logBuffer collects the daemon's stderr while the test reads it.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (lb *logBuffer) Write(p []byte) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Write(p)
}

func (lb *logBuffer) String() string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.String()
}

// startServerLogged is startServer with a captured log.
func startServerLogged(t *testing.T, args []string) (string, *logBuffer, chan int) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args = append(args, "-addr", "127.0.0.1:0", "-addr-file", addrFile)
	var buf logBuffer
	exit := make(chan int, 1)
	go func() { exit <- run(args, &buf) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			base := "http://" + strings.TrimSpace(string(b))
			if resp, err := http.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == 200 {
					return base, &buf, exit
				}
			}
		}
		select {
		case code := <-exit:
			t.Fatalf("server exited early with %d (log: %s)", code, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPprofRefusesNonLoopback: the debug listener never binds a routable
// address.
func TestPprofRefusesNonLoopback(t *testing.T) {
	data := writeTestData(t)
	for _, addr := range []string{"0.0.0.0:0", "8.8.8.8:6060", "no-port"} {
		var stderr bytes.Buffer
		if code := run([]string{"-data", data, "-pprof", addr}, &stderr); code != 2 {
			t.Errorf("-pprof %s: exit %d, want 2", addr, code)
		}
		if !strings.Contains(stderr.String(), "-pprof") {
			t.Errorf("-pprof %s: stderr %q lacks the flag name", addr, stderr.String())
		}
	}
}

// TestListenPprofLoopback: unit check of the address gate.
func TestListenPprofLoopback(t *testing.T) {
	for _, addr := range []string{"127.0.0.1:0", "localhost:0", "[::1]:0"} {
		ln, err := listenPprof(addr)
		if err != nil {
			t.Errorf("loopback %s refused: %v", addr, err)
			continue
		}
		ln.Close()
	}
	if ln, err := listenPprof("0.0.0.0:0"); err == nil {
		ln.Close()
		t.Error("0.0.0.0 accepted")
	}
}

// TestPprofEndpoint: -pprof serves the profile index on its own listener,
// and the main API listener does not expose /debug/pprof/.
func TestPprofEndpoint(t *testing.T) {
	data := writeTestData(t)
	base, buf, exit := startServerLogged(t, []string{"-data", data, "-pprof", "127.0.0.1:0"})

	re := regexp.MustCompile(`msg="pprof listening" addr=(\S+)`)
	var paddr string
	deadline := time.Now().Add(5 * time.Second)
	for paddr == "" {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			paddr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pprof address never logged: %s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get("http://" + paddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index status %d body %q", resp.StatusCode, body)
	}

	if resp, err := http.Get(base + "/debug/pprof/"); err == nil {
		resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Error("main listener exposes /debug/pprof/")
		}
	}

	if code := sigterm(t, exit); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
}

// TestSlowQueryFlag: -slow-query 0 makes every query emit a slow-query
// record with its request ID and span tree; the default stays silent.
func TestSlowQueryFlag(t *testing.T) {
	data := writeTestData(t)
	base, buf, exit := startServerLogged(t, []string{"-data", data, "-slow-query", "0"})

	resp, err := http.Post(base+"/v1/knn", "application/json",
		strings.NewReader(`{"tree":"a(b,c)","k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	rid := resp.Header.Get("X-Request-Id")
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("knn status %d", resp.StatusCode)
	}
	if code := sigterm(t, exit); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}

	log := buf.String()
	if !strings.Contains(log, `msg="slow query"`) {
		t.Fatalf("no slow-query record in log: %s", log)
	}
	if !strings.Contains(log, "request_id="+rid) {
		t.Errorf("slow-query log lacks request id %s", rid)
	}
	if !strings.Contains(log, "trace.filter.dur_us=") {
		t.Errorf("slow-query log lacks the span tree: %s", log)
	}
}

// TestSlowQueryDefaultOff: without the flag no slow-query records appear.
func TestSlowQueryDefaultOff(t *testing.T) {
	data := writeTestData(t)
	base, buf, exit := startServerLogged(t, []string{"-data", data})
	resp, err := http.Post(base+"/v1/knn", "application/json",
		strings.NewReader(`{"tree":"a(b,c)","k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code := sigterm(t, exit); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if strings.Contains(buf.String(), "slow query") {
		t.Errorf("slow-query record without -slow-query: %s", buf.String())
	}
}
