package treesim_test

import (
	"context"
	"fmt"

	"treesim"
)

// The paper's running example (Fig. 1): the binary branch distance
// lower-bounds the edit distance at a fraction of its cost.
func Example() {
	t1 := treesim.MustParseTree("a(b(c,d),b(c,d),e)")
	t2 := treesim.MustParseTree("a(b(c,d,b(e)),c,d,e)")

	fmt.Println("edit distance:", treesim.EditDistance(t1, t2))

	space := treesim.NewBranchSpace(2)
	p1, p2 := space.Profile(t1), space.Profile(t2)
	fmt.Println("branch distance:", treesim.BDist(p1, p2))
	fmt.Println("lower bound:", treesim.SearchLBound(p1, p2))
	// Output:
	// edit distance: 3
	// branch distance: 9
	// lower bound: 2
}

// Exact k-NN search with filter-and-refine: only a fraction of the
// dataset pays the real edit distance.
func ExampleIndex_kNN() {
	spec, _ := treesim.ParseGeneratorSpec("N{3,0.5}N{20,2}L6D0.05")
	data := treesim.GenerateDataset(spec, 200, 20, 42)

	ix := treesim.NewIndex(data, treesim.NewBiBranchFilter())
	results, stats, _ := ix.KNN(context.Background(), data[17], 3)

	fmt.Println("results:", len(results), "nearest dist:", results[0].Dist)
	fmt.Println("verified fewer than half:", stats.Verified < stats.Dataset/2)
	// Output:
	// results: 3 nearest dist: 0
	// verified fewer than half: true
}

// Range queries return every tree within an edit-distance radius, exactly.
func ExampleIndex_range() {
	spec, _ := treesim.ParseGeneratorSpec("N{3,0.5}N{20,2}L6D0.05")
	data := treesim.GenerateDataset(spec, 200, 20, 42)

	ix := treesim.NewIndex(data, treesim.NewBiBranchFilter())
	results, _, _ := ix.Range(context.Background(), data[17], 1)

	for _, r := range results {
		fmt.Println(r.ID, r.Dist)
	}
	// Output:
	// 17 0
	// 37 1
	// 57 1
}

// Edit scripts expose the optimal operation sequence, not just its cost.
func ExampleEditScript() {
	s := treesim.EditScript(
		treesim.MustParseTree("a(b,c)"),
		treesim.MustParseTree("a(x(b,c),d)"),
	)
	fmt.Print(s)
	// Output:
	// cost 2
	// insert  d@4
	// insert  x@3
}

// A similarity self-join finds all near-duplicate pairs without the
// quadratic nested loop of exact distance computations.
func ExampleSelfJoin() {
	trees := []*treesim.Tree{
		treesim.MustParseTree("a(b,c)"),
		treesim.MustParseTree("a(b,x)"),
		treesim.MustParseTree("q(w(e,r,t),y)"),
		treesim.MustParseTree("a(b)"),
	}
	pairs, _ := treesim.SelfJoin(trees, 1, treesim.JoinOptions{})
	for _, p := range pairs {
		fmt.Println(p.R, p.S, p.Dist)
	}
	// Output:
	// 0 1 1
	// 0 3 1
	// 1 3 1
}
