// k-NN classification of tree-structured data — a Section 1 motivation.
//
// RNA molecules from several structural families are used as a labeled
// training set; held-out mutants are classified by majority vote among
// their k structurally nearest training molecules. The binary branch
// filter makes each classification touch only a fraction of the training
// set with exact edit distances.
//
//	go run ./examples/classify
package main

import (
	"fmt"
	"math/rand"

	"treesim/internal/classify"
	"treesim/internal/rna"
	"treesim/internal/search"
	"treesim/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(19))

	const families = 6
	var train []*tree.Tree
	var trainY []string
	var test []*tree.Tree
	var testY []string

	for fam := 0; fam < families; fam++ {
		label := fmt.Sprintf("family-%d", fam)
		base := rna.Random(rng, 50+rng.Intn(25))
		for v := 0; v < 30; v++ {
			m := rna.Mutate(rng, base, 1+rng.Intn(3))
			train = append(train, m.MustTree())
			trainY = append(trainY, label)
		}
		for v := 0; v < 5; v++ {
			m := rna.Mutate(rng, base, 2+rng.Intn(4))
			test = append(test, m.MustTree())
			testY = append(testY, label)
		}
	}

	c, err := classify.New(train, trainY, 5, search.NewBiBranch())
	if err != nil {
		panic(err)
	}
	ev, err := c.Evaluate(test, testY)
	if err != nil {
		panic(err)
	}

	fmt.Printf("classified %d held-out molecules against %d training molecules\n",
		ev.Total, len(train))
	fmt.Printf("accuracy: %.1f%%\n", 100*ev.Accuracy())
	fmt.Printf("exact distances computed: %d (%.1f%% of the %d query·train pairs)\n",
		ev.Verified,
		100*float64(ev.Verified)/float64(ev.Total*len(train)),
		ev.Total*len(train))

	fmt.Println("\nconfusion matrix (rows = truth):")
	classes := ev.Classes()
	fmt.Printf("%12s", "")
	for _, p := range classes {
		fmt.Printf("%10s", p)
	}
	fmt.Println()
	for _, truth := range classes {
		fmt.Printf("%12s", truth)
		for _, pred := range classes {
			fmt.Printf("%10d", ev.Confusion[truth][pred])
		}
		fmt.Println()
	}
}
