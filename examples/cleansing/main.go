// Data cleansing — a Section 1 motivation. A bibliographic collection
// contains exact duplicates and near duplicates (re-entered records with a
// typo, a changed year, a dropped field). The pipeline: (1) collapse exact
// duplicates with structural hashing, (2) find near-duplicate pairs with a
// similarity self-join at a small edit-distance threshold, (3) report the
// duplicate clusters for review.
//
//	go run ./examples/cleansing
package main

import (
	"fmt"
	"sort"

	"treesim/internal/dblp"
	"treesim/internal/join"
	"treesim/internal/tree"
)

func main() {
	// The DBLP-like generator already produces venue blocks with exact
	// and near duplicates — precisely the dirty data of interest.
	records := dblp.New(37).Dataset(600)

	// Step 1: exact duplicates via structural hashing.
	groups := tree.Dedup(records)
	reps := make([]int, 0, len(groups))
	exactDups := 0
	for rep, members := range groups {
		reps = append(reps, rep)
		exactDups += len(members) - 1
	}
	sort.Ints(reps)
	distinct := make([]*tree.Tree, len(reps))
	for i, r := range reps {
		distinct[i] = records[r]
	}
	fmt.Printf("records: %d, exact duplicates removed: %d, distinct: %d\n",
		len(records), exactDups, len(distinct))

	// Step 2: near duplicates among the distinct records.
	const tau = 2
	pairs, stats := join.SelfJoin(distinct, tau, join.Options{})
	fmt.Printf("near-duplicate pairs (edit distance ≤ %d): %d\n", tau, stats.Results)
	fmt.Printf("exact distances computed: %d of %d pairs (%.2f%%)\n",
		stats.Verified, stats.Pairs, 100*float64(stats.Verified)/float64(stats.Pairs))

	// Step 3: group pairs into clusters (union-find) for review.
	parent := make([]int, len(distinct))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, p := range pairs {
		parent[find(p.R)] = find(p.S)
	}
	clusters := map[int][]int{}
	for i := range distinct {
		r := find(i)
		clusters[r] = append(clusters[r], i)
	}
	multi := 0
	largest := 0
	var example []int
	for _, members := range clusters {
		if len(members) > 1 {
			multi++
			if len(members) > largest {
				largest = len(members)
				example = members
			}
		}
	}
	fmt.Printf("near-duplicate clusters: %d (largest has %d records)\n", multi, largest)
	if len(example) > 0 {
		fmt.Println("\nlargest cluster:")
		for _, id := range example {
			s := distinct[id].String()
			if len(s) > 90 {
				s = s[:90] + "…"
			}
			fmt.Printf("  %s\n", s)
		}
	}
}
