package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"treesim/internal/datagen"
	"treesim/internal/faultfs"
	"treesim/internal/obs"
	"treesim/internal/search"
	"treesim/internal/server"
)

// TestClientAgainstServer runs the whole example end to end against an
// in-process treesimd: insert trees, query, fetch a match.
func TestClientAgainstServer(t *testing.T) {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 10, SizeStd: 3, Labels: 6, Decay: 0.1}
	ix := search.NewIndex(datagen.New(spec, 7).Dataset(20, 4), search.NewBiBranch())
	s := server.New(ix, server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	var out bytes.Buffer
	if err := Run(hs.URL, &out); err != nil {
		t.Fatalf("client run: %v\ntranscript:\n%s", err, out.String())
	}
	transcript := out.String()
	for _, want := range []string{
		"inserted id=20",              // first insert lands after the dataset
		"index now 25 trees",          // all five inserts arrived
		"dist=1 id=20",                // the near-duplicate is the best match
		"accessed fraction",           // the quality metric came through
		"best match",                  // the GET-by-id round trip worked
		"author(yang),author(kalnis)", // with the right tree text
	} {
		if !strings.Contains(transcript, want) {
			t.Errorf("transcript missing %q:\n%s", want, transcript)
		}
	}
	if ix.Size() != 25 {
		t.Fatalf("server index holds %d trees, want 25", ix.Size())
	}
}

// TestClientTraced: with -trace the transcript ends in the server's span
// tree — the request root with filter and refine stages and their
// candidate counters.
func TestClientTraced(t *testing.T) {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 10, SizeStd: 3, Labels: 6, Decay: 0.1}
	ix := search.NewIndex(datagen.New(spec, 8).Dataset(20, 4), search.NewBiBranch())
	s := server.New(ix, server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	var out bytes.Buffer
	if err := RunTraced(hs.URL, &out, true); err != nil {
		t.Fatalf("traced run: %v\ntranscript:\n%s", err, out.String())
	}
	transcript := out.String()
	for _, want := range []string{
		"trace (server-side time per stage):",
		"/v1/knn",      // the root span
		"filter",       // both pipeline stages appear...
		"refine",       // ...as indented children
		"candidates=",  // with the filter's candidate count
		"verified=",    // and the refine verification count
		"request_id=r", // the root carries its request ID
	} {
		if !strings.Contains(transcript, want) {
			t.Errorf("transcript missing %q:\n%s", want, transcript)
		}
	}
}

// TestClientRidesOutDegradedMode runs the retry policy against a real
// server in degraded read-only mode, not a scripted handler: an
// injected WAL fault makes the first insert fail and flips the server
// degraded (503 not_durable + Retry-After), and the client's backoff
// outlasts the degraded window — the durability prober heals the
// one-shot fault and a retried attempt lands.
func TestClientRidesOutDegradedMode(t *testing.T) {
	dir := t.TempDir()
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 10, SizeStd: 3, Labels: 6, Decay: 0.1}
	ix := search.NewIndex(datagen.New(spec, 9).Dataset(10, 4), search.NewBiBranch())
	// Write 1 is the WAL magic at open; write 2 — the first insert's
	// append — fails once, and every write after that succeeds.
	s := server.New(ix, server.Config{
		Logger:                slog.New(slog.NewTextHandler(io.Discard, nil)),
		WALPath:               dir + "/wal.log",
		SnapshotPath:          dir + "/index.tsix",
		SnapshotInterval:      -1,
		DegradedProbeInterval: 5 * time.Millisecond,
		FS:                    &faultfs.Injector{FailWriteN: 2},
	})
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Shutdown(context.Background())

	attempts := 0
	p := retryPolicy{
		maxAttempts: 5,
		baseDelay:   20 * time.Millisecond,
		maxDelay:    time.Second,
		sleep:       func(d time.Duration) { attempts++; time.Sleep(d) },
		jitter:      rand.New(rand.NewSource(1)),
	}
	var res insertResponse
	if err := post(hs.Client(), p, hs.URL+"/v1/trees", insertRequest{Tree: "a(b,c)"}, &res); err != nil {
		t.Fatalf("insert through degraded window: %v", err)
	}
	if attempts == 0 {
		t.Fatal("insert succeeded without retrying — the degraded window never opened")
	}
	if res.ID != 10 || ix.Size() != 11 {
		t.Fatalf("insert landed as id %d (index size %d), want id 10 and size 11", res.ID, ix.Size())
	}
}

// flakyHandler answers with a scripted status sequence, then 200.
func flakyHandler(t *testing.T, statuses []int, retryAfter string) (http.Handler, *int) {
	t.Helper()
	attempts := new(int)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := *attempts
		*attempts++
		if i < len(statuses) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(statuses[i])
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":1,"size":2}`)
	}), attempts
}

// TestPostRetriesTransientStatuses: 429/503/504 are retried with backoff
// until the server recovers; the eventual 200 is decoded normally.
func TestPostRetriesTransientStatuses(t *testing.T) {
	for _, status := range []int{429, 503, 504} {
		h, attempts := flakyHandler(t, []int{status, status}, "")
		hs := httptest.NewServer(h)
		var slept []time.Duration
		p := retryPolicy{
			maxAttempts: 5,
			baseDelay:   10 * time.Millisecond,
			maxDelay:    80 * time.Millisecond,
			sleep:       func(d time.Duration) { slept = append(slept, d) },
			jitter:      rand.New(rand.NewSource(1)),
		}
		var res insertResponse
		err := post(hs.Client(), p, hs.URL, insertRequest{Tree: "a"}, &res)
		hs.Close()
		if err != nil {
			t.Fatalf("status %d: post failed after recovery: %v", status, err)
		}
		if *attempts != 3 {
			t.Fatalf("status %d: server saw %d attempts, want 3", status, *attempts)
		}
		if len(slept) != 2 {
			t.Fatalf("status %d: %d sleeps, want 2", status, len(slept))
		}
		// Equal jitter: each delay lies in [backoff/2, backoff].
		for i, d := range slept {
			base := p.baseDelay << i
			if d < base/2 || d > base {
				t.Fatalf("status %d: sleep %d = %v outside [%v, %v]", status, i, d, base/2, base)
			}
		}
		if res.Size != 2 {
			t.Fatalf("status %d: response not decoded: %+v", status, res)
		}
	}
}

// TestPostHonorsRetryAfter: a Retry-After above the computed backoff
// stretches the wait to what the server asked for.
func TestPostHonorsRetryAfter(t *testing.T) {
	h, _ := flakyHandler(t, []int{503}, "2")
	hs := httptest.NewServer(h)
	defer hs.Close()
	var slept []time.Duration
	p := retryPolicy{
		maxAttempts: 3,
		baseDelay:   time.Millisecond,
		maxDelay:    time.Second,
		sleep:       func(d time.Duration) { slept = append(slept, d) },
		jitter:      rand.New(rand.NewSource(1)),
	}
	var res insertResponse
	if err := post(hs.Client(), p, hs.URL, insertRequest{Tree: "a"}, &res); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("sleeps %v, want exactly the server's 2s Retry-After", slept)
	}
}

// TestPostGivesUp: a server that never recovers exhausts the budget and
// surfaces the last transient status; a non-transient status fails at
// once with no sleeps.
func TestPostGivesUp(t *testing.T) {
	h, attempts := flakyHandler(t, []int{503, 503, 503, 503, 503, 503}, "")
	hs := httptest.NewServer(h)
	defer hs.Close()
	sleeps := 0
	p := retryPolicy{
		maxAttempts: 3,
		baseDelay:   time.Millisecond,
		maxDelay:    time.Second,
		sleep:       func(time.Duration) { sleeps++ },
	}
	err := post(hs.Client(), p, hs.URL, insertRequest{Tree: "a"}, nil)
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want give-up after 3 attempts", err)
	}
	if *attempts != 3 || sleeps != 2 {
		t.Fatalf("attempts %d sleeps %d, want 3 and 2", *attempts, sleeps)
	}

	h2, attempts2 := flakyHandler(t, []int{422, 422}, "")
	hs2 := httptest.NewServer(h2)
	defer hs2.Close()
	sleeps = 0
	if err := post(hs2.Client(), p, hs2.URL, insertRequest{Tree: "a"}, nil); err == nil {
		t.Fatal("non-transient 422 did not fail")
	}
	if *attempts2 != 1 || sleeps != 0 {
		t.Fatalf("422: attempts %d sleeps %d, want 1 and 0", *attempts2, sleeps)
	}
}

// TestPostReusesTraceAcrossRetries: every attempt of one logical
// request carries the same trace ID with a fresh span ID, and the
// attempt number in tracestate — the server-side view is one trace of
// numbered attempts.
func TestPostReusesTraceAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var parents, states []string
	inner, _ := flakyHandler(t, []int{503, 503}, "")
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		parents = append(parents, r.Header.Get("traceparent"))
		states = append(states, r.Header.Get("tracestate"))
		mu.Unlock()
		inner.ServeHTTP(w, r)
	})
	hs := httptest.NewServer(h)
	defer hs.Close()
	p := retryPolicy{
		maxAttempts: 5,
		baseDelay:   time.Millisecond,
		maxDelay:    time.Millisecond,
		sleep:       func(time.Duration) {},
	}
	var res insertResponse
	if err := post(hs.Client(), p, hs.URL, insertRequest{Tree: "a"}, &res); err != nil {
		t.Fatal(err)
	}
	if len(parents) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(parents))
	}
	var traceIDs, spanIDs []string
	for i, h := range parents {
		tc, err := obs.ParseTraceparent(h)
		if err != nil {
			t.Fatalf("attempt %d traceparent %q: %v", i, h, err)
		}
		traceIDs = append(traceIDs, tc.TraceID.String())
		spanIDs = append(spanIDs, tc.SpanID.String())
		if n, ok := obs.ParseRetryState(states[i]); !ok || n != i {
			t.Fatalf("attempt %d tracestate %q, want retry:%d", i, states[i], i)
		}
	}
	if traceIDs[0] != traceIDs[1] || traceIDs[1] != traceIDs[2] {
		t.Fatalf("trace id changed across retries: %v", traceIDs)
	}
	if spanIDs[0] == spanIDs[1] || spanIDs[1] == spanIDs[2] {
		t.Fatalf("span id reused across retries: %v", spanIDs)
	}
}
