package main

import (
	"bytes"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/search"
	"treesim/internal/server"
)

// TestClientAgainstServer runs the whole example end to end against an
// in-process treesimd: insert trees, query, fetch a match.
func TestClientAgainstServer(t *testing.T) {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 10, SizeStd: 3, Labels: 6, Decay: 0.1}
	ix := search.NewIndex(datagen.New(spec, 7).Dataset(20, 4), search.NewBiBranch())
	s := server.New(ix, server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	var out bytes.Buffer
	if err := Run(hs.URL, &out); err != nil {
		t.Fatalf("client run: %v\ntranscript:\n%s", err, out.String())
	}
	transcript := out.String()
	for _, want := range []string{
		"inserted id=20",              // first insert lands after the dataset
		"index now 25 trees",          // all five inserts arrived
		"dist=1 id=20",                // the near-duplicate is the best match
		"accessed fraction",           // the quality metric came through
		"best match",                  // the GET-by-id round trip worked
		"author(yang),author(kalnis)", // with the right tree text
	} {
		if !strings.Contains(transcript, want) {
			t.Errorf("transcript missing %q:\n%s", want, transcript)
		}
	}
	if ix.Size() != 25 {
		t.Fatalf("server index holds %d trees, want 25", ix.Size())
	}
}
