// Client: talk to a running treesimd over its HTTP/JSON API.
//
// Inserts a handful of trees into the live index, asks for the nearest
// neighbors of a query, fetches one matched tree back by id, and prints
// the server's accessed-fraction quality metric — the round trip every
// treesimd client makes.
//
//	go run ./cmd/treesimd -data data.trees &   # or any running server
//	go run ./examples/client -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"time"

	"treesim/internal/obs"
)

// The wire types, as a client would declare them (they mirror
// internal/server's API; a real deployment would share a schema).
type insertRequest struct {
	Tree string `json:"tree"`
}

type insertResponse struct {
	ID   int `json:"id"`
	Size int `json:"size"`
}

type knnRequest struct {
	Tree string `json:"tree"`
	K    int    `json:"k"`
}

type result struct {
	ID   int    `json:"id"`
	Dist int    `json:"dist"`
	Tree string `json:"tree"`
}

type knnResponse struct {
	Results []result `json:"results"`
	Stats   struct {
		Dataset          int     `json:"dataset"`
		Verified         int     `json:"verified"`
		AccessedFraction float64 `json:"accessed_fraction"`
	} `json:"stats"`
	Trace *obs.SpanSnapshot `json:"trace"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "treesimd base URL")
	trace := flag.Bool("trace", false, "request ?trace=1 and print the per-stage breakdown of the k-NN query")
	flag.Parse()
	if err := RunTraced(*addr, os.Stdout, *trace); err != nil {
		fmt.Fprintf(os.Stderr, "client: %v\n", err)
		os.Exit(1)
	}
}

// retryPolicy says how to treat the server's transient answers: 429
// (admission control sheds load), 503 (durability temporarily
// unavailable — including degraded read-only mode, where a failing disk
// makes the server refuse writes with not_durable + Retry-After until
// its prober sees the disk heal) and 504 (query deadline). Those are
// retried with capped exponential backoff and equal jitter — half the
// backoff is deterministic, half random, so a herd of clients spreads
// out — and a Retry-After header overrides the computed delay when it
// asks for longer. Everything else (4xx mistakes, 5xx bugs) fails
// immediately.
type retryPolicy struct {
	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration
	sleep       func(time.Duration) // nil means time.Sleep
	jitter      *rand.Rand          // nil means the global source
}

func defaultRetryPolicy() retryPolicy {
	return retryPolicy{maxAttempts: 5, baseDelay: 100 * time.Millisecond, maxDelay: 5 * time.Second}
}

// retryable reports whether the status is worth another attempt.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// delay computes the wait before retry number attempt (0-based), folding
// in the server's Retry-After when it asks for more.
func (p retryPolicy) delay(attempt int, retryAfter string) time.Duration {
	d := p.baseDelay << attempt
	if d > p.maxDelay || d <= 0 {
		d = p.maxDelay
	}
	half := d / 2
	jittered := half + time.Duration(p.intn(int64(half)+1))
	if s, err := strconv.Atoi(retryAfter); err == nil && s >= 0 {
		if ra := time.Duration(s) * time.Second; ra > jittered {
			return ra
		}
	}
	return jittered
}

func (p retryPolicy) intn(n int64) int64 {
	if p.jitter != nil {
		return p.jitter.Int63n(n)
	}
	return rand.Int63n(n)
}

func (p retryPolicy) wait(d time.Duration) {
	if p.sleep != nil {
		p.sleep(d)
		return
	}
	time.Sleep(d)
}

// Run executes the demo round trip against a treesimd at base, writing a
// transcript to out. It is the whole example; main only parses flags.
func Run(base string, out io.Writer) error {
	return RunTraced(base, out, false)
}

// RunTraced is Run with an optional ?trace=1 on the k-NN query, printing
// the server's span tree — where the request spent its time, stage by
// stage — after the results.
func RunTraced(base string, out io.Writer, trace bool) error {
	return run(base, out, &http.Client{Timeout: 30 * time.Second}, defaultRetryPolicy(), trace)
}

func run(base string, out io.Writer, client *http.Client, policy retryPolicy, trace bool) error {

	// A few document-ish trees, one of them nearly a duplicate.
	trees := []string{
		"article(title(trees),author(yang),author(kalnis),year(2005))",
		"article(title(trees),author(yang),author(kalnis),year(2004))",
		"article(title(graphs),author(lee),year(1999))",
		"book(title(algorithms),author(knuth))",
		"article(title(streams),author(das),author(gehrke),year(2003))",
	}
	for _, t := range trees {
		var ins insertResponse
		if err := post(client, policy, base+"/v1/trees", insertRequest{Tree: t}, &ins); err != nil {
			return fmt.Errorf("inserting %q: %w", t, err)
		}
		fmt.Fprintf(out, "inserted id=%d (index now %d trees)\n", ins.ID, ins.Size)
	}

	// Nearest neighbors of a slightly mistyped record.
	query := "article(title(trees),author(yang),author(kalnis),year(2006))"
	knnURL := base + "/v1/knn"
	if trace {
		knnURL += "?trace=1"
	}
	var knn knnResponse
	if err := post(client, policy, knnURL, knnRequest{Tree: query, K: 3}, &knn); err != nil {
		return fmt.Errorf("knn: %w", err)
	}
	fmt.Fprintf(out, "query: %s\n", query)
	for rank, r := range knn.Results {
		fmt.Fprintf(out, "%3d. dist=%d id=%d %s\n", rank+1, r.Dist, r.ID, r.Tree)
	}
	fmt.Fprintf(out, "filter quality: verified %d of %d trees (accessed fraction %.2f)\n",
		knn.Stats.Verified, knn.Stats.Dataset, knn.Stats.AccessedFraction)
	if trace {
		if knn.Trace == nil {
			return fmt.Errorf("asked for a trace but the response carries none")
		}
		fmt.Fprintf(out, "trace (server-side time per stage):\n")
		obs.FprintSpanTree(out, *knn.Trace)
	}

	// Fetch the best match back by id.
	if len(knn.Results) > 0 {
		resp, err := client.Get(fmt.Sprintf("%s/v1/trees/%d", base, knn.Results[0].ID))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET tree: status %s", resp.Status)
		}
		var tr struct {
			Tree string `json:"tree"`
			Size int    `json:"size"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			return err
		}
		fmt.Fprintf(out, "best match (%d nodes): %s\n", tr.Size, tr.Tree)
	}
	return nil
}

// post sends v as JSON and decodes the 200 response into res, retrying
// transient statuses per the policy.
//
// One logical request is one W3C trace: the trace ID is drawn once and
// reused across every retry, each attempt gets a fresh span ID (it IS a
// distinct call), and the attempt number rides in tracestate — so on
// the server a retried request reads as one trace of numbered attempts
// instead of unrelated traces.
func post(client *http.Client, p retryPolicy, url string, v, res any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tc := obs.NewTraceContext()
	var lastErr error
	for attempt := 0; attempt < p.maxAttempts; attempt++ {
		if attempt > 0 {
			tc = tc.WithNewSpan()
		}
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("traceparent", tc.Traceparent())
		req.Header.Set("tracestate", obs.RetryState(attempt))
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		if retryable(resp.StatusCode) {
			retryAfter := resp.Header.Get("Retry-After")
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
			resp.Body.Close()
			lastErr = fmt.Errorf("status %s: %s", resp.Status, msg)
			if attempt < p.maxAttempts-1 {
				p.wait(p.delay(attempt, retryAfter))
			}
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
			return fmt.Errorf("status %s: %s", resp.Status, msg)
		}
		return json.NewDecoder(resp.Body).Decode(res)
	}
	return fmt.Errorf("giving up after %d attempts: %w", p.maxAttempts, lastErr)
}
