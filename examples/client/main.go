// Client: talk to a running treesimd over its HTTP/JSON API.
//
// Inserts a handful of trees into the live index, asks for the nearest
// neighbors of a query, fetches one matched tree back by id, and prints
// the server's accessed-fraction quality metric — the round trip every
// treesimd client makes.
//
//	go run ./cmd/treesimd -data data.trees &   # or any running server
//	go run ./examples/client -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

// The wire types, as a client would declare them (they mirror
// internal/server's API; a real deployment would share a schema).
type insertRequest struct {
	Tree string `json:"tree"`
}

type insertResponse struct {
	ID   int `json:"id"`
	Size int `json:"size"`
}

type knnRequest struct {
	Tree string `json:"tree"`
	K    int    `json:"k"`
}

type result struct {
	ID   int    `json:"id"`
	Dist int    `json:"dist"`
	Tree string `json:"tree"`
}

type knnResponse struct {
	Results []result `json:"results"`
	Stats   struct {
		Dataset          int     `json:"dataset"`
		Verified         int     `json:"verified"`
		AccessedFraction float64 `json:"accessed_fraction"`
	} `json:"stats"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "treesimd base URL")
	flag.Parse()
	if err := Run(*addr, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "client: %v\n", err)
		os.Exit(1)
	}
}

// Run executes the demo round trip against a treesimd at base, writing a
// transcript to out. It is the whole example; main only parses flags.
func Run(base string, out io.Writer) error {
	client := &http.Client{Timeout: 30 * time.Second}

	// A few document-ish trees, one of them nearly a duplicate.
	trees := []string{
		"article(title(trees),author(yang),author(kalnis),year(2005))",
		"article(title(trees),author(yang),author(kalnis),year(2004))",
		"article(title(graphs),author(lee),year(1999))",
		"book(title(algorithms),author(knuth))",
		"article(title(streams),author(das),author(gehrke),year(2003))",
	}
	for _, t := range trees {
		var ins insertResponse
		if err := post(client, base+"/v1/trees", insertRequest{Tree: t}, &ins); err != nil {
			return fmt.Errorf("inserting %q: %w", t, err)
		}
		fmt.Fprintf(out, "inserted id=%d (index now %d trees)\n", ins.ID, ins.Size)
	}

	// Nearest neighbors of a slightly mistyped record.
	query := "article(title(trees),author(yang),author(kalnis),year(2006))"
	var knn knnResponse
	if err := post(client, base+"/v1/knn", knnRequest{Tree: query, K: 3}, &knn); err != nil {
		return fmt.Errorf("knn: %w", err)
	}
	fmt.Fprintf(out, "query: %s\n", query)
	for rank, r := range knn.Results {
		fmt.Fprintf(out, "%3d. dist=%d id=%d %s\n", rank+1, r.Dist, r.ID, r.Tree)
	}
	fmt.Fprintf(out, "filter quality: verified %d of %d trees (accessed fraction %.2f)\n",
		knn.Stats.Verified, knn.Stats.Dataset, knn.Stats.AccessedFraction)

	// Fetch the best match back by id.
	if len(knn.Results) > 0 {
		resp, err := client.Get(fmt.Sprintf("%s/v1/trees/%d", base, knn.Results[0].ID))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET tree: status %s", resp.Status)
		}
		var tr struct {
			Tree string `json:"tree"`
			Size int    `json:"size"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			return err
		}
		fmt.Fprintf(out, "best match (%d nodes): %s\n", tr.Size, tr.Tree)
	}
	return nil
}

// post sends v as JSON and decodes the 200 response into res.
func post(client *http.Client, url string, v, res any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("status %s: %s", resp.Status, msg)
	}
	return json.NewDecoder(resp.Body).Decode(res)
}
