// Clustering tree-structured data — one of the database manipulations the
// paper lists as building on similarity evaluation (Section 1: "approximate
// join, clustering, k-NN classification, ...").
//
// k-medoids clustering needs many tree-to-medoid distance evaluations per
// iteration. The binary branch lower bound replaces most exact evaluations:
// a point clearly closer to its current medoid than any other medoid's
// lower bound can keep its assignment without computing the exact distance.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"treesim/internal/branch"
	"treesim/internal/datagen"
	"treesim/internal/editdist"
	"treesim/internal/tree"
)

const (
	k          = 5
	iterations = 4
)

func main() {
	// Dataset: k well-separated mutation chains.
	spec, _ := datagen.ParseSpec("N{3,0.5}N{30,2}L8D0.08")
	g := datagen.New(spec, 11)
	var data []*tree.Tree
	var truth []int
	for c := 0; c < k; c++ {
		seed := g.Seed()
		cur := seed
		for i := 0; i < 60; i++ {
			data = append(data, cur)
			truth = append(truth, c)
			cur = g.Derive(cur)
		}
	}

	space := branch.NewSpace(2)
	profiles := space.ProfileAll(data)

	rng := rand.New(rand.NewSource(3))
	medoids := rng.Perm(len(data))[:k]
	assign := make([]int, len(data))

	exactEvals, prunedEvals := 0, 0
	dist := func(i, j int) int {
		exactEvals++
		return editdist.Distance(data[i], data[j])
	}

	for it := 0; it < iterations; it++ {
		// Assignment step with lower-bound pruning, in the style of
		// Algorithm 2: visit medoids in ascending lower-bound order and
		// stop computing exact distances once the next bound cannot beat
		// the best distance found so far.
		for i := range data {
			type cand struct{ m, lb int }
			cands := make([]cand, len(medoids))
			for ci, m := range medoids {
				cands[ci] = cand{m, branch.SearchLBound(profiles[i], profiles[m])}
			}
			sort.Slice(cands, func(x, y int) bool { return cands[x].lb < cands[y].lb })
			best, bestD := -1, int(^uint(0)>>1)
			for ci, c := range cands {
				if c.lb >= bestD {
					prunedEvals += len(cands) - ci
					break
				}
				if d := dist(i, c.m); d < bestD {
					best, bestD = c.m, d
				}
			}
			assign[i] = best
		}
		// Update step: the medoid of each cluster becomes the member
		// minimizing the total distance, estimated on a sample to keep
		// the example fast.
		for mi, m := range medoids {
			var members []int
			for i, a := range assign {
				if a == m {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			sample := members
			if len(sample) > 12 {
				rng.Shuffle(len(members), func(x, y int) { members[x], members[y] = members[y], members[x] })
				sample = members[:12]
			}
			bestCost, bestIdx := int(^uint(0)>>1), m
			for _, cand := range sample {
				cost := 0
				for _, other := range sample {
					cost += dist(cand, other)
				}
				if cost < bestCost {
					bestCost, bestIdx = cost, cand
				}
			}
			medoids[mi] = bestIdx
		}
	}

	// Evaluate cluster purity against the generating chains.
	purity := 0
	byMedoid := map[int]map[int]int{}
	for i, m := range assign {
		if byMedoid[m] == nil {
			byMedoid[m] = map[int]int{}
		}
		byMedoid[m][truth[i]]++
	}
	for _, counts := range byMedoid {
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		purity += max
	}

	fmt.Printf("clustered %d trees into %d clusters over %d iterations\n",
		len(data), k, iterations)
	fmt.Printf("purity vs. generating chains: %.1f%%\n", 100*float64(purity)/float64(len(data)))
	fmt.Printf("exact distance evaluations: %d, pruned by lower bound: %d (%.1f%% saved)\n",
		exactEvals, prunedEvals,
		100*float64(prunedEvals)/float64(exactEvals+prunedEvals))
}
