// Approximate similarity self-join — another core operation the paper
// motivates (Section 1), and the setting of Guha et al.'s approximate XML
// joins. Find all pairs of trees within edit distance τ.
//
// The nested-loop join needs |D|²/2 exact distance evaluations. With the
// binary branch lower bound, a pair is evaluated only when its optimistic
// bound is ≤ τ. Both variants produce the identical pair set; the example
// reports how many exact evaluations the filter saved.
//
//	go run ./examples/join
package main

import (
	"fmt"
	"time"

	"treesim/internal/datagen"
	"treesim/internal/editdist"
	"treesim/internal/join"
	"treesim/internal/tree"
)

const tau = 3

func main() {
	spec, _ := datagen.ParseSpec("N{3,0.5}N{25,2}L8D0.05")
	data := datagen.New(spec, 21).Dataset(400, 24)

	// Filtered join (the join package: binary branch pruning + parallel
	// refinement).
	start := time.Now()
	filtered, stats := join.SelfJoin(data, tau, join.Options{})
	filteredTime := time.Since(start)

	// Nested-loop reference join.
	start = time.Now()
	var nested []join.Pair
	for i := range data {
		for j := i + 1; j < len(data); j++ {
			if d := editdist.Distance(data[i], data[j]); d <= tau {
				nested = append(nested, join.Pair{R: i, S: j, Dist: d})
			}
		}
	}
	nestedTime := time.Since(start)

	if !samePairs(filtered, nested) {
		fmt.Println("ERROR: join results differ — the lower bound is broken")
		return
	}

	fmt.Printf("self-join of %d trees at tau=%d\n", len(data), tau)
	fmt.Printf("result pairs:            %d\n", stats.Results)
	fmt.Printf("candidate pairs (exact): %d of %d (%.2f%%)\n",
		stats.Verified, stats.Pairs, 100*float64(stats.Verified)/float64(stats.Pairs))
	fmt.Printf("filtered join:  %v\n", filteredTime.Round(time.Millisecond))
	fmt.Printf("nested loop:    %v (%.1fx slower)\n",
		nestedTime.Round(time.Millisecond), float64(nestedTime)/float64(filteredTime))
	sample := filtered
	if len(sample) > 3 {
		sample = sample[:3]
	}
	for _, p := range sample {
		fmt.Printf("  e.g. (%d, %d): %s ~ %s\n", p.R, p.S,
			truncate(data[p.R]), truncate(data[p.S]))
	}
}

func samePairs(a, b []join.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[join.Pair]bool, len(a))
	for _, p := range a {
		seen[p] = true
	}
	for _, p := range b {
		if !seen[p] {
			return false
		}
	}
	return true
}

func truncate(t *tree.Tree) string {
	s := t.String()
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}
