// Quickstart: the binary branch embedding in five minutes.
//
// Builds the paper's two example trees (Fig. 1), shows their binary branch
// vectors' distance and the lower bounds it yields for the tree edit
// distance, then runs a 3-NN similarity query over a small synthetic
// dataset with the filter-and-refine engine.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"treesim/internal/branch"
	"treesim/internal/datagen"
	"treesim/internal/editdist"
	"treesim/internal/search"
	"treesim/internal/tree"
)

func main() {
	// The running example of the paper (Fig. 1).
	t1 := tree.MustParse("a(b(c,d),b(c,d),e)")
	t2 := tree.MustParse("a(b(c,d,b(e)),c,d,e)")
	fmt.Println("T1 =", t1)
	fmt.Println("T2 =", t2)

	// The exact tree edit distance (Zhang–Shasha): expensive, O(n² ·
	// depth²) in the worst case.
	fmt.Println("edit distance:", editdist.Distance(t1, t2))

	// The binary branch distance: O(|T1|+|T2|), and BDist ≤ 5·EDist
	// (Theorem 3.2), so ceil(BDist/5) is a cheap lower bound.
	space := branch.NewSpace(2)
	p1, p2 := space.Profile(t1), space.Profile(t2)
	bd := branch.BDist(p1, p2)
	fmt.Printf("binary branch distance: %d  →  EDist ≥ %d\n",
		bd, branch.EditLowerBound(bd, 2))

	// The positional bound (Section 4.2–4.3) is tighter.
	fmt.Println("positional lower bound:", branch.SearchLBound(p1, p2))

	// Similarity search: index a dataset once, query with any tree. The
	// filter prunes most of the dataset; only survivors pay the real edit
	// distance, and the lower-bound property guarantees exact results.
	spec, _ := datagen.ParseSpec("N{3,0.5}N{25,2}L6D0.05")
	data := datagen.New(spec, 42).Dataset(500, 25)
	ix := search.NewIndex(data, search.NewBiBranch())

	query := data[137]
	results, stats, _ := ix.KNN(context.Background(), query, 3)
	fmt.Printf("\n3-NN of tree #137 over %d trees:\n", ix.Size())
	for i, r := range results {
		fmt.Printf("  %d. id=%-4d dist=%d\n", i+1, r.ID, r.Dist)
	}
	fmt.Printf("verified only %d/%d trees (%.1f%%) — the filter pruned the rest\n",
		stats.Verified, stats.Dataset, 100*stats.AccessedFraction())
}
