// RNA secondary structure similarity — the Section 1 motivation:
// "efficient prediction of the functions of RNA molecules".
//
// RNA secondary structures (dot-bracket notation) are converted into
// labeled trees: each base pair becomes an internal node, each unpaired
// base a leaf. Structurally similar molecules then have small tree edit
// distance, so k-NN retrieval over a structure library finds functional
// analogues of a query molecule.
//
//	go run ./examples/rna
package main

import (
	"context"
	"fmt"
	"math/rand"

	"treesim/internal/rna"
	"treesim/internal/search"
	"treesim/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A library of synthetic molecules: a few structural families, each
	// family a set of point-mutated variants of a base structure.
	var lib []rna.Molecule
	var families []int
	for fam := 0; fam < 8; fam++ {
		base := rna.Random(rng, 40+rng.Intn(30))
		base.Name = fmt.Sprintf("family-%d/base", fam)
		lib = append(lib, base)
		families = append(families, fam)
		for v := 0; v < 24; v++ {
			m := rna.Mutate(rng, base, 1+rng.Intn(4))
			m.Name = fmt.Sprintf("family-%d/variant-%d", fam, v)
			lib = append(lib, m)
			families = append(families, fam)
		}
	}

	data := make([]*tree.Tree, len(lib))
	for i, m := range lib {
		data[i] = m.MustTree()
	}
	ix := search.NewIndex(data, search.NewBiBranch())

	// Query: an unseen mutant of family 5's base structure.
	query := rna.Mutate(rng, lib[5*25], 2)
	fmt.Printf("query: %s\n  %s\n  %s\n\n", query.Name, query.Sequence, query.Structure)

	results, stats, _ := ix.KNN(context.Background(), query.MustTree(), 5)
	fmt.Println("5 structurally nearest molecules:")
	correct := 0
	for i, r := range results {
		fmt.Printf("  %d. dist=%-3d %s\n", i+1, r.Dist, lib[r.ID].Name)
		if families[r.ID] == 5 {
			correct++
		}
	}
	fmt.Printf("\n%d/5 neighbors are from the query's true family\n", correct)
	fmt.Printf("verified %d/%d structures (%.1f%%) — filter pruned the rest\n",
		stats.Verified, stats.Dataset, 100*stats.AccessedFraction())
}
