// Document version management — the Section 1 motivation: "version
// management for documents". Successive versions of a structured document
// (an XML report) are compared with optimal edit scripts: the edit
// distance quantifies the change between versions, and the backtraced
// script shows exactly which nodes were relabeled, deleted and inserted.
// The binary branch lower bound then finds, for a given revision, the
// closest archived version without computing most exact distances.
//
//	go run ./examples/versiondiff
package main

import (
	"fmt"

	"treesim/internal/branch"
	"treesim/internal/editdist"
	"treesim/internal/tree"
	"treesim/internal/xmltree"
)

// Four versions of a structured report: v2 renames a section, v3 adds an
// author and a section, v4 restructures the appendix.
var versions = []string{
	`<report><title>Q1 results</title><author>dana</author>
	  <section><h>sales</h><p>flat</p></section>
	  <section><h>costs</h><p>down</p></section></report>`,
	`<report><title>Q1 results</title><author>dana</author>
	  <section><h>revenue</h><p>flat</p></section>
	  <section><h>costs</h><p>down</p></section></report>`,
	`<report><title>Q1 results</title><author>dana</author><author>erik</author>
	  <section><h>revenue</h><p>flat</p></section>
	  <section><h>costs</h><p>down</p></section>
	  <section><h>outlook</h><p>stable</p></section></report>`,
	`<report><title>Q1 results</title><author>dana</author><author>erik</author>
	  <section><h>revenue</h><p>flat</p></section>
	  <section><h>costs</h><p>down</p></section>
	  <appendix><section><h>outlook</h><p>stable</p></section></appendix></report>`,
}

func main() {
	opts := xmltree.DefaultOptions()
	trees := make([]*tree.Tree, len(versions))
	for i, v := range versions {
		trees[i] = xmltree.MustParseString(v, opts)
	}

	// Pairwise diffs between consecutive versions.
	for i := 1; i < len(trees); i++ {
		s := editdist.EditScript(trees[i-1], trees[i])
		rel, del, ins := s.Counts()
		fmt.Printf("v%d → v%d: distance %d (%d relabels, %d deletions, %d insertions)\n",
			i, i+1, s.Cost, rel, del, ins)
		for _, op := range s.Ops {
			if op.Kind != editdist.Match {
				fmt.Printf("    %s\n", op)
			}
		}
	}

	// "Which archived version is this unattributed revision closest to?"
	revision := xmltree.MustParseString(
		`<report><title>Q1 results</title><author>dana</author><author>erik</author>
		  <section><h>revenue</h><p>flat</p></section>
		  <section><h>costs</h><p>rising</p></section>
		  <section><h>outlook</h><p>stable</p></section></report>`, opts)

	space := branch.NewSpace(2)
	profiles := space.ProfileAll(trees)
	rp := space.Profile(revision)

	bestVersion, bestDist, exactEvals := -1, int(^uint(0)>>1), 0
	for i, p := range profiles {
		if branch.SearchLBound(rp, p) >= bestDist {
			continue // the lower bound alone rules this version out
		}
		exactEvals++
		if d := editdist.Distance(revision, trees[i]); d < bestDist {
			bestVersion, bestDist = i, d
		}
	}
	fmt.Printf("\nrevision is closest to v%d (distance %d); exact diffs computed: %d of %d\n",
		bestVersion+1, bestDist, exactEvals, len(trees))
}
