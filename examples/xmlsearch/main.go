// XML similarity search under spelling errors — the Section 1 motivation:
// "XML data searching under the presence of spelling errors".
//
// A small bibliographic XML collection is indexed; queries are records
// whose text content carries typos and whose structure has small
// variations (a missing field, a reordered author). Exact matching finds
// nothing; a range query under tree edit distance retrieves the intended
// records.
//
//	go run ./examples/xmlsearch
package main

import (
	"context"
	"fmt"

	"treesim/internal/search"
	"treesim/internal/tree"
	"treesim/internal/xmltree"
)

var collection = []string{
	`<article><author>Erik Larsen</author><title>adaptive query optimization</title><year>2003</year><journal>VLDB Journal</journal></article>`,
	`<article><author>Grace Weber</author><title>spatial index structures</title><year>2001</year><journal>TODS</journal></article>`,
	`<inproceedings><author>Chen Kumar</author><author>Dana Novak</author><title>streaming joins</title><year>2004</year><booktitle>SIGMOD</booktitle></inproceedings>`,
	`<inproceedings><author>Hiro Tanaka</author><title>tree similarity evaluation</title><year>2005</year><booktitle>SIGMOD</booktitle></inproceedings>`,
	`<article><author>Ivan Rossi</author><title>transaction recovery</title><year>1999</year><journal>TODS</journal></article>`,
	`<inproceedings><author>Jing Park</author><author>Alice Silva</author><title>cache conscious structures</title><year>2002</year><booktitle>VLDB</booktitle></inproceedings>`,
	`<article><author>Fatima Haddad</author><title>schema integration</title><year>2000</year><journal>Information Systems</journal></article>`,
	`<inproceedings><author>Bob Moreau</author><title>approximate string joins</title><year>2001</year><booktitle>VLDB</booktitle></inproceedings>`,
}

// queries carry the kinds of errors data cleansing meets: typos in text,
// a dropped field, an extra field.
var queries = []struct {
	desc string
	xml  string
}{
	{
		"typo in author and title",
		`<inproceedings><author>Hiro Tanka</author><title>tree similarity evaluaton</title><year>2005</year><booktitle>SIGMOD</booktitle></inproceedings>`,
	},
	{
		"missing year, typo in journal",
		`<article><author>Erik Larsen</author><title>adaptive query optimization</title><journal>VLDB Jornal</journal></article>`,
	},
	{
		"extra field and dropped second author",
		`<inproceedings><author>Chen Kumar</author><title>streaming joins</title><year>2004</year><booktitle>SIGMOD</booktitle><pages>1-12</pages></inproceedings>`,
	},
}

func main() {
	opts := xmltree.DefaultOptions()
	data := make([]*tree.Tree, len(collection))
	for i, doc := range collection {
		data[i] = xmltree.MustParseString(doc, opts)
	}
	ix := search.NewIndex(data, search.NewBiBranch())

	const tau = 4 // tolerate up to 4 edit operations
	for _, q := range queries {
		qt := xmltree.MustParseString(q.xml, opts)
		results, stats, _ := ix.Range(context.Background(), qt, tau)
		fmt.Printf("query (%s):\n", q.desc)
		if len(results) == 0 {
			fmt.Println("  no record within distance", tau)
		}
		for _, r := range results {
			fmt.Printf("  dist=%d  record #%d: %.70s...\n", r.Dist, r.ID, collection[r.ID])
		}
		fmt.Printf("  (verified %d of %d records)\n\n", stats.Verified, stats.Dataset)
	}
}
