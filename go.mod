module treesim

go 1.22
