package treesim

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestEndToEndPipeline drives the whole system the way a downstream user
// would: generate a dataset, persist it, reload it, build and persist an
// index, reload that, answer k-NN and range queries exactly, self-join the
// data, and diff two of its members — asserting cross-component
// consistency at every step.
func TestEndToEndPipeline(t *testing.T) {
	spec, err := ParseGeneratorSpec("N{3,0.5}N{22,2}L6D0.05")
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDataset(spec, 120, 12, 2026)

	// Dataset persistence round trip.
	var buf bytes.Buffer
	if err := SaveDataset(&buf, data); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadDataset(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != len(data) {
		t.Fatalf("reloaded %d trees", len(reloaded))
	}

	// Index persistence round trip over the reloaded data.
	ix := NewIndex(reloaded, NewBiBranchFilter())
	buf.Reset()
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	ix, err = LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Queries through the reloaded index match a sequential scan over the
	// original data.
	seq := NewIndex(data, NewNoFilter())
	query := data[31]
	wantK, _, _ := seq.KNN(context.Background(), query, 5)
	gotK, stats, _ := ix.KNN(context.Background(), query, 5)
	for i := range wantK {
		if wantK[i].Dist != gotK[i].Dist {
			t.Fatalf("k-NN distances diverge at %d: %v vs %v", i, gotK, wantK)
		}
	}
	if stats.Verified >= stats.Dataset {
		t.Error("filter did not prune anything")
	}

	tau := wantK[len(wantK)-1].Dist
	wantR, _, _ := seq.Range(context.Background(), query, tau)
	gotR, _, _ := ix.Range(context.Background(), query, tau)
	if len(wantR) != len(gotR) {
		t.Fatalf("range results diverge: %d vs %d", len(gotR), len(wantR))
	}

	// Every k-NN answer must also be a range answer at its own distance,
	// and the self-join at tau must contain each (query, neighbor) pair.
	pairs, _ := SelfJoin(data, tau, JoinOptions{})
	inJoin := map[[2]int]int{}
	for _, p := range pairs {
		inJoin[[2]int{p.R, p.S}] = p.Dist
		inJoin[[2]int{p.S, p.R}] = p.Dist
	}
	for _, r := range gotK {
		if r.ID == 31 {
			continue // self-pairs are not join results
		}
		d, ok := inJoin[[2]int{31, r.ID}]
		if !ok || d != r.Dist {
			t.Fatalf("join missing pair (31,%d) at distance %d", r.ID, r.Dist)
		}
	}

	// Edit scripts agree with the distances the engine reported.
	for _, r := range gotK[:2] {
		s := EditScript(query, ix.Tree(r.ID))
		if s.Cost != r.Dist {
			t.Fatalf("script cost %d, engine distance %d", s.Cost, r.Dist)
		}
	}

	// The constrained distance never undercuts any reported distance.
	for _, r := range gotK {
		if cd := ConstrainedEditDistance(query, ix.Tree(r.ID)); cd < r.Dist {
			t.Fatalf("constrained %d below edit distance %d", cd, r.Dist)
		}
	}
}
