package branch

import (
	"testing"

	"treesim/internal/tree"
)

func paperT1() *tree.Tree { return tree.MustParse("a(b(c,d),b(c,d),e)") }
func paperT2() *tree.Tree { return tree.MustParse("a(b(c,d,b(e)),c,d,e)") }

func TestFactor(t *testing.T) {
	for q, want := range map[int]int{2: 5, 3: 9, 4: 13} {
		if got := Factor(q); got != want {
			t.Errorf("Factor(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestWindowLen(t *testing.T) {
	for q, want := range map[int]int{2: 3, 3: 7, 4: 15} {
		if got := NewSpace(q).WindowLen(); got != want {
			t.Errorf("WindowLen(q=%d) = %d, want %d", q, got, want)
		}
	}
}

func TestNewSpaceRejectsQ1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSpace(1) should panic")
		}
	}()
	NewSpace(1)
}

// branchSet returns the multiset of branch label-sequences of a profile.
func branchSet(p *Profile) map[string]int {
	out := make(map[string]int)
	for _, e := range p.Vec.Elems() {
		key := p.Space().Key(e.Dim)
		out[join(KeyLabels(key))] = e.Count
	}
	return out
}

func join(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "|"
		}
		s += p
	}
	return s
}

// TestProfilePaperT1 checks the exact branch multiset of T1 against the
// hand-derived content of Fig. 3 (vocabulary rows of the inverted file).
func TestProfilePaperT1(t *testing.T) {
	s := NewSpace(2)
	p := s.Profile(paperT1())
	if p.Size != 8 {
		t.Fatalf("Size = %d, want 8", p.Size)
	}
	got := branchSet(p)
	want := map[string]int{
		"a|b|ε": 1, "b|c|b": 1, "b|c|e": 1, "c|ε|d": 2, "d|ε|ε": 2, "e|ε|ε": 1,
	}
	assertSameCounts(t, got, want)
}

// TestProfilePaperT2 checks T2's branch multiset likewise.
func TestProfilePaperT2(t *testing.T) {
	s := NewSpace(2)
	p := s.Profile(paperT2())
	if p.Size != 9 {
		t.Fatalf("Size = %d, want 9", p.Size)
	}
	got := branchSet(p)
	want := map[string]int{
		"a|b|ε": 1, "b|c|c": 1, "c|ε|d": 2, "d|ε|b": 1, "b|e|ε": 1,
		"e|ε|ε": 2, "d|ε|e": 1,
	}
	assertSameCounts(t, got, want)
}

func assertSameCounts(t *testing.T, got, want map[string]int) {
	t.Helper()
	for k, w := range want {
		if got[k] != w {
			t.Errorf("branch %q count = %d, want %d", k, got[k], w)
		}
	}
	for k, g := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("unexpected branch %q (count %d)", k, g)
		}
	}
}

// TestBDistPaperPair: the binary branch vectors of Fig. 3 give
// BDist(T1,T2) = 9.
func TestBDistPaperPair(t *testing.T) {
	s := NewSpace(2)
	p1, p2 := s.Profile(paperT1()), s.Profile(paperT2())
	if got := BDist(p1, p2); got != 9 {
		t.Errorf("BDist(T1,T2) = %d, want 9", got)
	}
	// Sanity: self-distance and symmetry.
	if BDist(p1, p1) != 0 {
		t.Error("BDist(T1,T1) != 0")
	}
	if BDist(p1, p2) != BDist(p2, p1) {
		t.Error("BDist not symmetric")
	}
}

// TestFigure4Counterexample: BDist is not a metric — the two distinct trees
// of Fig. 4's construction share a branch vector.
func TestFigure4Counterexample(t *testing.T) {
	s := NewSpace(2)
	tx := tree.MustParse("A(B(C(D)),C)")
	ty := tree.MustParse("A(B(C),C(D))")
	px, py := s.Profile(tx), s.Profile(ty)
	if got := BDist(px, py); got != 0 {
		t.Fatalf("BDist = %d, want 0 (the Fig. 4 phenomenon)", got)
	}
	if tree.Equal(tx, ty) {
		t.Fatal("the counterexample trees must differ")
	}
	// The positional filter can nevertheless separate them at pr = 0.
	if got := PosBDist(px, py, 0); got == 0 {
		t.Error("PosBDist at pr=0 should separate the Fig. 4 trees")
	}
}

// TestProfileCountsSumToSize: for every q, each node roots exactly one
// branch, so counts sum to |T|.
func TestProfileCountsSumToSize(t *testing.T) {
	for _, q := range []int{2, 3, 4} {
		s := NewSpace(q)
		for _, tr := range []*tree.Tree{paperT1(), paperT2(), tree.MustParse("x"), tree.New(nil)} {
			p := s.Profile(tr)
			if p.Vec.Sum() != tr.Size() || p.Size != tr.Size() {
				t.Errorf("q=%d %q: branch count %d, size %d, want %d",
					q, tr, p.Vec.Sum(), p.Size, tr.Size())
			}
		}
	}
}

// TestQ3WindowPadding: windows below shallow nodes are ε-padded to the full
// 2^q−1 labels.
func TestQ3WindowPadding(t *testing.T) {
	s := NewSpace(3)
	p := s.Profile(tree.MustParse("a(b)"))
	got := branchSet(p)
	want := map[string]int{
		"a|b|ε|ε|ε|ε|ε": 1,
		"b|ε|ε|ε|ε|ε|ε": 1,
	}
	assertSameCounts(t, got, want)
}

func TestKeyLabelsRoundTrip(t *testing.T) {
	seqs := [][]string{
		{"a", "b", "ε"},
		{"", "x:y", "3:a"},
		{"label with spaces", "ε", "ε"},
	}
	for _, seq := range seqs {
		got := KeyLabels(encodeKey(seq))
		if len(got) != len(seq) {
			t.Fatalf("KeyLabels(%v) = %v", seq, got)
		}
		for i := range seq {
			if got[i] != seq[i] {
				t.Errorf("KeyLabels round trip: %v -> %v", seq, got)
			}
		}
	}
}

func TestSpaceInterning(t *testing.T) {
	s := NewSpace(2)
	p1 := s.Profile(paperT1())
	before := s.Size()
	p1b := s.Profile(paperT1())
	if s.Size() != before {
		t.Error("re-profiling the same tree grew the space")
	}
	if BDist(p1, p1b) != 0 {
		t.Error("identical trees should have identical vectors")
	}
	// Distinct spaces are incomparable.
	other := NewSpace(2).Profile(paperT1())
	defer func() {
		if recover() == nil {
			t.Error("cross-space BDist should panic")
		}
	}()
	BDist(p1, other)
}

// TestProfileAllParallelMatchesSerial: concurrent profiling produces
// vectors with identical distances (dimension numbering may differ, which
// is invisible through the API).
func TestProfileAllParallelMatchesSerial(t *testing.T) {
	trees := []*tree.Tree{paperT1(), paperT2()}
	for i := 0; i < 40; i++ {
		trees = append(trees, tree.MustParse("a(b(c,d),e)"))
		trees = append(trees, paperT1())
	}
	serialSpace := NewSpace(2)
	serial := serialSpace.ProfileAll(trees)
	parallelSpace := NewSpace(2)
	par := parallelSpace.ProfileAllParallel(trees, 8)
	if len(par) != len(serial) {
		t.Fatalf("%d profiles, want %d", len(par), len(serial))
	}
	for i := range trees {
		for j := range trees {
			if BDist(serial[i], serial[j]) != BDist(par[i], par[j]) {
				t.Fatalf("BDist(%d,%d) differs between serial and parallel", i, j)
			}
		}
	}
	// Worker clamping paths.
	if got := NewSpace(2).ProfileAllParallel(trees[:1], 16); len(got) != 1 {
		t.Error("single-item parallel profiling broken")
	}
	if got := NewSpace(2).ProfileAllParallel(nil, 4); len(got) != 0 {
		t.Error("empty parallel profiling broken")
	}
}

func TestAssembleValidation(t *testing.T) {
	s := NewSpace(2)
	p := s.Profile(paperT1())
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("wrong size", func() {
		Assemble(s, p.Size+1, p.Vec, p.Pos)
	})
	expectPanic("missing position lists", func() {
		Assemble(s, p.Size, p.Vec, p.Pos[:1])
	})
	truncated := make([][]Occurrence, len(p.Pos))
	copy(truncated, p.Pos)
	for i, occ := range truncated {
		if len(occ) > 1 {
			truncated[i] = occ[:1]
			break
		}
	}
	expectPanic("occurrence count mismatch", func() {
		Assemble(s, p.Size, p.Vec, truncated)
	})
}

func TestEditLowerBound(t *testing.T) {
	cases := []struct{ bd, q, want int }{
		{0, 2, 0}, {1, 2, 1}, {5, 2, 1}, {6, 2, 2}, {9, 2, 2}, {10, 2, 2},
		{11, 2, 3}, {9, 3, 1}, {10, 3, 2},
	}
	for _, c := range cases {
		if got := EditLowerBound(c.bd, c.q); got != c.want {
			t.Errorf("EditLowerBound(%d, q=%d) = %d, want %d", c.bd, c.q, got, c.want)
		}
	}
}
