package branch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"treesim/internal/vector"
)

// Binary serialization of a branch space and its dataset profiles, so a
// built index can be persisted and reloaded without re-profiling the
// dataset. The format is versioned and fully validated on read:
//
//	magic "TSBB1\x00"
//	u32 q
//	u32 number of branch keys, then each key as (u32 len, bytes)
//	u32 number of profiles, then each profile as:
//	    u32 tree size, u32 nnz,
//	    nnz × (u32 dim, u32 count, count × (i32 pre, i32 post))
//
// All integers are little-endian.

var codecMagic = [6]byte{'T', 'S', 'B', 'B', '1', 0}

// Write serializes the space and the given profiles (which must belong to
// the space).
func Write(w io.Writer, s *Space, ps []*Profile) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(codecMagic[:]); err != nil {
		return err
	}
	u32 := func(v int) error { return binary.Write(bw, binary.LittleEndian, uint32(v)) }

	s.mu.RLock()
	keys := s.keys
	s.mu.RUnlock()

	if err := u32(s.q); err != nil {
		return err
	}
	if err := u32(len(keys)); err != nil {
		return err
	}
	for _, k := range keys {
		if err := u32(len(k)); err != nil {
			return err
		}
		if _, err := bw.WriteString(k); err != nil {
			return err
		}
	}

	if err := u32(len(ps)); err != nil {
		return err
	}
	for i, p := range ps {
		if p.space != s {
			return fmt.Errorf("branch: profile %d belongs to a different space", i)
		}
		if err := u32(p.Size); err != nil {
			return err
		}
		if err := u32(p.Vec.NonZero()); err != nil {
			return err
		}
		for ei, e := range p.Vec.Elems() {
			if err := u32(int(e.Dim)); err != nil {
				return err
			}
			if err := u32(e.Count); err != nil {
				return err
			}
			for _, occ := range p.Pos[ei] {
				if err := binary.Write(bw, binary.LittleEndian, occ.Pre); err != nil {
					return err
				}
				if err := binary.Write(bw, binary.LittleEndian, occ.Post); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a space and its profiles, validating structure.
func Read(r io.Reader) (*Space, []*Profile, error) {
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("branch: reading magic: %w", err)
	}
	if magic != codecMagic {
		return nil, nil, fmt.Errorf("branch: bad magic %q", magic)
	}
	u32 := func() (int, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return int(v), err
	}

	q, err := u32()
	if err != nil {
		return nil, nil, err
	}
	if q < MinQ || q > 16 {
		return nil, nil, fmt.Errorf("branch: implausible q=%d", q)
	}
	nKeys, err := u32()
	if err != nil {
		return nil, nil, err
	}
	s := NewSpace(q)
	for i := 0; i < nKeys; i++ {
		kl, err := u32()
		if err != nil {
			return nil, nil, err
		}
		if kl > 1<<20 {
			return nil, nil, fmt.Errorf("branch: key %d implausibly long (%d)", i, kl)
		}
		buf := make([]byte, kl)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, nil, err
		}
		if got := s.intern(string(buf)); int(got) != i {
			return nil, nil, fmt.Errorf("branch: duplicate key %d in stream", i)
		}
	}

	nProfiles, err := u32()
	if err != nil {
		return nil, nil, err
	}
	// Untrusted counts never size an allocation directly: slices grow as
	// bytes actually arrive (a lying length prefix then dies on EOF or a
	// validation check, having cost only a small starter capacity), and
	// counts with a structural bound are checked against it.
	ps := make([]*Profile, 0, capAlloc(nProfiles))
	for pi := 0; pi < nProfiles; pi++ {
		size, err := u32()
		if err != nil {
			return nil, nil, err
		}
		if size > maxTreeSize {
			return nil, nil, fmt.Errorf("branch: profile %d implausibly large (%d nodes)", pi, size)
		}
		nnz, err := u32()
		if err != nil {
			return nil, nil, err
		}
		if nnz > size {
			// Each distinct branch occurs at least once and the counts
			// sum to size, so nnz beyond size is corruption.
			return nil, nil, fmt.Errorf("branch: profile %d has %d branch kinds but only %d nodes", pi, nnz, size)
		}
		elems := make([]vector.Elem, 0, capAlloc(nnz))
		pos := make([][]Occurrence, 0, capAlloc(nnz))
		for ei := 0; ei < nnz; ei++ {
			dim, err := u32()
			if err != nil {
				return nil, nil, err
			}
			if dim >= nKeys {
				return nil, nil, fmt.Errorf("branch: profile %d references unknown dim %d", pi, dim)
			}
			count, err := u32()
			if err != nil {
				return nil, nil, err
			}
			if count == 0 || count > size {
				return nil, nil, fmt.Errorf("branch: profile %d dim %d has bad count %d", pi, dim, count)
			}
			elems = append(elems, vector.Elem{Dim: vector.Dim(dim), Count: count})
			occ := make([]Occurrence, 0, capAlloc(count))
			for oi := 0; oi < count; oi++ {
				var o Occurrence
				if err := binary.Read(br, binary.LittleEndian, &o.Pre); err != nil {
					return nil, nil, err
				}
				if err := binary.Read(br, binary.LittleEndian, &o.Post); err != nil {
					return nil, nil, err
				}
				occ = append(occ, o)
			}
			pos = append(pos, occ)
		}
		vec, err := vector.FromSorted(elems)
		if err != nil {
			return nil, nil, fmt.Errorf("branch: profile %d: %w", pi, err)
		}
		if vec.Sum() != size {
			return nil, nil, fmt.Errorf("branch: profile %d counts sum to %d, size says %d",
				pi, vec.Sum(), size)
		}
		ps = append(ps, Assemble(s, size, vec, pos))
	}
	return s, ps, nil
}

// maxTreeSize mirrors the tree codec's 1<<26 cap: profiles claiming more
// nodes than any loadable tree are corrupt.
const maxTreeSize = 1 << 26

// capAlloc bounds the starter capacity taken from an untrusted count, so
// a lying length prefix cannot demand a huge allocation up front.
func capAlloc(n int) int { return min(n, 4096) }
