package branch

import (
	"bytes"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/tree"
	"treesim/internal/vector"
)

func codecDataset() []*tree.Tree {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 18, SizeStd: 5, Labels: 5, Decay: 0.1}
	return datagen.New(spec, 77).Dataset(30, 4)
}

func TestCodecRoundTrip(t *testing.T) {
	for _, q := range []int{2, 3} {
		ts := codecDataset()
		s := NewSpace(q)
		ps := s.ProfileAll(ts)

		var buf bytes.Buffer
		if err := Write(&buf, s, ps); err != nil {
			t.Fatal(err)
		}
		s2, ps2, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if s2.Q() != q || s2.Size() != s.Size() {
			t.Fatalf("space changed: q=%d size=%d, want q=%d size=%d",
				s2.Q(), s2.Size(), q, s.Size())
		}
		for d := 0; d < s.Size(); d++ {
			if s.Key(vector.Dim(d)) != s2.Key(vector.Dim(d)) {
				t.Fatalf("key %d changed", d)
			}
		}
		if len(ps2) != len(ps) {
			t.Fatalf("%d profiles, want %d", len(ps2), len(ps))
		}
		for i := range ps {
			if ps[i].Size != ps2[i].Size || !vector.Equal(ps[i].Vec, ps2[i].Vec) {
				t.Fatalf("profile %d vector changed", i)
			}
			for j := range ps[i].Pos {
				if len(ps[i].Pos[j]) != len(ps2[i].Pos[j]) {
					t.Fatalf("profile %d dim %d positions changed", i, j)
				}
				for k := range ps[i].Pos[j] {
					if ps[i].Pos[j][k] != ps2[i].Pos[j][k] {
						t.Fatalf("profile %d dim %d occ %d changed", i, j, k)
					}
				}
			}
		}
		// Distances across the boundary agree.
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if BDist(ps[i], ps[j]) != BDist(ps2[i], ps2[j]) {
					t.Fatalf("BDist(%d,%d) changed", i, j)
				}
				if SearchLBound(ps[i], ps[j]) != SearchLBound(ps2[i], ps2[j]) {
					t.Fatalf("SearchLBound(%d,%d) changed", i, j)
				}
			}
		}
	}
}

func TestCodecRejectsForeignProfile(t *testing.T) {
	ts := codecDataset()
	s1, s2 := NewSpace(2), NewSpace(2)
	p1 := s1.ProfileAll(ts[:3])
	p2 := s2.Profile(ts[4])
	var buf bytes.Buffer
	if err := Write(&buf, s1, append(p1, p2)); err == nil {
		t.Error("foreign profile accepted")
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	ts := codecDataset()
	s := NewSpace(2)
	ps := s.ProfileAll(ts)
	var buf bytes.Buffer
	if err := Write(&buf, s, ps); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, full...)
	bad[0] = 'X'
	if _, _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncations at several depths.
	for _, cut := range []int{3, 8, len(full) / 3, len(full) - 1} {
		if _, _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Implausible q.
	bad = append([]byte{}, full...)
	bad[6] = 200 // q field low byte
	if _, _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("implausible q accepted")
	}
}

func TestCodecEmptyProfiles(t *testing.T) {
	s := NewSpace(2)
	var buf bytes.Buffer
	if err := Write(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	s2, ps, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Size() != 0 || len(ps) != 0 {
		t.Error("empty space round trip failed")
	}
}
