package branch

import (
	"testing"

	"treesim/internal/tree"
)

// TestDeepTrees: the recursive transforms and profilers must handle very
// deep trees (Go growable stacks make deep recursion safe; this guards
// against accidental quadratic blowups or depth limits).
func TestDeepTrees(t *testing.T) {
	const depth = 30000
	root := &tree.Node{Label: "n"}
	cur := root
	for i := 1; i < depth; i++ {
		c := &tree.Node{Label: "n"}
		cur.Children = []*tree.Node{c}
		cur = c
	}
	path := tree.New(root)
	if path.Size() != depth || path.Height() != depth {
		t.Fatalf("path tree malformed: size=%d height=%d", path.Size(), path.Height())
	}

	s := NewSpace(2)
	p := s.Profile(path)
	if p.Size != depth {
		t.Fatalf("profile size %d", p.Size)
	}
	// A label-uniform path has exactly two distinct branches:
	// (n, n, ε) ×(depth−1) and the leaf (n, ε, ε).
	if p.Vec.NonZero() != 2 {
		t.Fatalf("distinct branches = %d, want 2", p.Vec.NonZero())
	}

	// A second path one node shorter is one delete away; bounds respect it.
	shorter := path.Clone()
	nodes := shorter.PreOrder()
	if err := tree.Delete(shorter, nodes[len(nodes)-1]); err != nil {
		t.Fatal(err)
	}
	p2 := s.Profile(shorter)
	if bd := BDist(p, p2); bd > 5 {
		t.Fatalf("BDist after one delete = %d, want ≤ 5", bd)
	}
	if lb := SearchLBound(p, p2); lb > 1 {
		t.Fatalf("SearchLBound after one delete = %d, want ≤ 1", lb)
	}

	// Wide trees exercise the sibling chain in B(T).
	wide := &tree.Node{Label: "r"}
	for i := 0; i < 30000; i++ {
		wide.Children = append(wide.Children, &tree.Node{Label: "c"})
	}
	pw := s.Profile(tree.New(wide))
	if pw.Size != 30001 {
		t.Fatalf("wide profile size %d", pw.Size)
	}
}
