package branch

import "treesim/internal/vector"

// BDist returns the (q-level) binary branch distance of Definition 4: the
// L1 distance of the two branch vectors. Complexity O(|T1| + |T2|).
//
// BDist is a pseudometric on trees (non-negative, symmetric, triangle
// inequality) but not a metric: distinct trees can share a branch vector
// (Fig. 4 of the paper). By Theorems 3.2/3.3 it lower-bounds the unit-cost
// tree edit distance scaled by Factor(q):
//
//	BDist(T1,T2) ≤ Factor(q) · EDist(T1,T2)
func BDist(a, b *Profile) int {
	sameSpace(a, b)
	return vector.L1(a.Vec, b.Vec)
}

// EditLowerBound converts a q-level binary branch distance into a lower
// bound on the unit-cost tree edit distance: ceil(bdist / Factor(q)).
func EditLowerBound(bdist, q int) int {
	f := Factor(q)
	return (bdist + f - 1) / f
}

// BDistLowerBound returns the plain (non-positional) edit distance lower
// bound ceil(BDist(a,b)/Factor(q)).
func BDistLowerBound(a, b *Profile) int {
	return EditLowerBound(BDist(a, b), a.Q())
}
