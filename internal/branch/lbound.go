package branch

// SearchLBound (Section 4.3, function SearchLBound of Algorithm 2) derives
// the best positional lower bound on the tree edit distance by binary
// search over the positional range.
//
// For any pr, Proposition 4.2 gives: PosBDist(a,b,pr) > Factor(q)·pr
// implies EDist > pr. PosBDist is non-increasing in pr while Factor(q)·pr
// is increasing, so the predicate "PosBDist(pr) ≤ Factor(q)·pr" is monotone
// and the smallest pr satisfying it — call it pr_opt — is found by binary
// search over [prmin, prmax] with prmin = ||T1|−|T2|| (itself a valid lower
// bound, since each edit operation changes the size by at most one) and
// prmax = max(|T1|,|T2|) (beyond which positional constraints are vacuous
// and PosBDist degenerates to BDist). pr_opt is a valid lower bound:
// either pr_opt = prmin, or the predicate fails at pr_opt−1 and
// Proposition 4.2 yields EDist ≥ pr_opt. SearchLBound dominates the plain
// bound: pr_opt ≥ ceil(BDist/Factor(q)).

// SearchLBound returns the optimistic lower bound on EDist(a,b): the
// tightest bound obtainable from positional binary branch distances.
// Complexity: O((|T1|+|T2|) · log min(|T1|,|T2|)).
func SearchLBound(a, b *Profile) int {
	sameSpace(a, b)
	f := Factor(a.Q())
	prmin := a.Size - b.Size
	if prmin < 0 {
		prmin = -prmin
	}
	prmax := a.Size
	if b.Size > prmax {
		prmax = b.Size
	}
	if PosBDist(a, b, prmin) <= f*prmin {
		return prmin
	}
	// Invariant: predicate fails at lo-1, holds at hi.
	lo, hi := prmin+1, prmax
	for lo < hi {
		mid := lo + (hi-lo)/2
		if PosBDist(a, b, mid) <= f*mid {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// RangeLowerBound returns a lower-bound value L specialized for a range
// query with threshold tau: L > tau implies EDist(a,b) > tau, so the pair
// can be safely pruned. Following Section 4.3 it combines the optimistic
// bound of SearchLBound with ceil(PosBDist(a,b,tau)/Factor(q)), which is a
// valid filter at threshold tau because EDist ≤ tau would force
// PosBDist(a,b,tau) ≤ Factor(q)·EDist.
func RangeLowerBound(a, b *Profile, tau int) int {
	sameSpace(a, b)
	f := Factor(a.Q())
	atTau := (PosBDist(a, b, tau) + f - 1) / f
	opt := SearchLBound(a, b)
	if atTau > opt {
		return atTau
	}
	return opt
}
