package branch

import (
	"testing"

	"treesim/internal/editdist"
	"treesim/internal/tree"
)

func TestSearchLBoundIdenticalTrees(t *testing.T) {
	s := NewSpace(2)
	p := s.Profile(paperT1())
	if got := SearchLBound(p, p); got != 0 {
		t.Errorf("SearchLBound(T,T) = %d, want 0", got)
	}
	if got := RangeLowerBound(p, p, 0); got != 0 {
		t.Errorf("RangeLowerBound(T,T,0) = %d, want 0", got)
	}
}

func TestSearchLBoundEmptyVsNonEmpty(t *testing.T) {
	s := NewSpace(2)
	e := s.Profile(tree.New(nil))
	p := s.Profile(paperT1())
	// EDist(∅, T1) = 8 and the size difference is 8, so the bound is 8.
	if got := SearchLBound(e, p); got != 8 {
		t.Errorf("SearchLBound(∅,T1) = %d, want 8", got)
	}
	if got := SearchLBound(e, e); got != 0 {
		t.Errorf("SearchLBound(∅,∅) = %d, want 0", got)
	}
	if got := BDist(e, p); got != 8 {
		t.Errorf("BDist(∅,T1) = %d, want 8", got)
	}
}

// TestSearchLBoundSymmetric: both SearchLBound and RangeLowerBound are
// symmetric in their tree arguments.
func TestSearchLBoundSymmetric(t *testing.T) {
	g := testGen(20)
	s := NewSpace(2)
	for trial := 0; trial < 40; trial++ {
		p1, p2 := s.Profile(g.Seed()), s.Profile(g.Seed())
		if SearchLBound(p1, p2) != SearchLBound(p2, p1) {
			t.Fatal("SearchLBound asymmetric")
		}
		for _, tau := range []int{0, 2, 5} {
			if RangeLowerBound(p1, p2, tau) != RangeLowerBound(p2, p1, tau) {
				t.Fatal("RangeLowerBound asymmetric")
			}
		}
	}
}

// TestQ4PositionalSound extends the positional soundness checks to q=4.
func TestQ4PositionalSound(t *testing.T) {
	g := testGen(21)
	s := NewSpace(4)
	f := Factor(4)
	for trial := 0; trial < 60; trial++ {
		t1 := g.Seed()
		t2 := g.RandomEdits(t1, 1+trial%5)
		ed := editdist.Distance(t1, t2)
		p1, p2 := s.Profile(t1), s.Profile(t2)
		if lb := SearchLBound(p1, p2); lb > ed {
			t.Fatalf("q=4: SearchLBound %d > EDist %d for\n  %s\n  %s", lb, ed, t1, t2)
		}
		// Contrapositive of the generalized Proposition 4.2.
		if got := PosBDist(p1, p2, ed); got > f*ed {
			t.Fatalf("q=4: PosBDist(ed)=%d > %d·%d", got, f, ed)
		}
	}
}

// TestPosBDistMonotoneAllLevels: monotonicity in pr at every branch level.
func TestPosBDistMonotoneAllLevels(t *testing.T) {
	g := testGen(22)
	for _, q := range []int{2, 3, 4} {
		s := NewSpace(q)
		t1, t2 := g.Seed(), g.Seed()
		p1, p2 := s.Profile(t1), s.Profile(t2)
		bd := BDist(p1, p2)
		prmax := p1.Size
		if p2.Size > prmax {
			prmax = p2.Size
		}
		prev := PosBDist(p1, p2, 0)
		for pr := 1; pr <= prmax; pr++ {
			cur := PosBDist(p1, p2, pr)
			if cur > prev {
				t.Fatalf("q=%d: PosBDist increased at pr=%d", q, pr)
			}
			prev = cur
		}
		if prev != bd {
			t.Fatalf("q=%d: PosBDist(prmax)=%d != BDist=%d", q, prev, bd)
		}
	}
}

// TestRangeLowerBoundDominatesSearchLBound: the range-specialized bound is
// at least the generic one.
func TestRangeLowerBoundDominates(t *testing.T) {
	g := testGen(23)
	s := NewSpace(2)
	for trial := 0; trial < 50; trial++ {
		p1, p2 := s.Profile(g.Seed()), s.Profile(g.Seed())
		generic := SearchLBound(p1, p2)
		for _, tau := range []int{0, 1, 3, 10} {
			if got := RangeLowerBound(p1, p2, tau); got < generic {
				t.Fatalf("RangeLowerBound(tau=%d)=%d below SearchLBound=%d",
					tau, got, generic)
			}
		}
	}
}

// TestSearchLBoundSingleNodeTrees: degenerate inputs.
func TestSearchLBoundSingleNodes(t *testing.T) {
	s := NewSpace(2)
	a := s.Profile(tree.MustParse("a"))
	b := s.Profile(tree.MustParse("b"))
	// EDist = 1 (relabel); the bound must be ≤ 1 and ≥ ceil(BDist/5) = 1.
	if got := SearchLBound(a, b); got != 1 {
		t.Errorf("SearchLBound(a,b) = %d, want 1", got)
	}
	if got := SearchLBound(a, s.Profile(tree.MustParse("a"))); got != 0 {
		t.Errorf("SearchLBound(a,a) = %d, want 0", got)
	}
}
