package branch

// Positional binary branch distance (Section 4.2).
//
// Two occurrences of the same branch in T1 and T2 may be matched under
// positional range pr only if both their preorder positions and their
// postorder positions differ by at most pr (Proposition 4.1: an edit
// mapping of cost ≤ pr displaces a node's preorder/postorder position by at
// most pr). The positional binary branch distance with range pr is
//
//	PosBDist(T1,T2,pr) = Σ_j (b1j + b2j − 2·|M'max(T1,T2,j,pr)|)
//	                   = |T1| + |T2| − 2·Σ_j |M'max(T1,T2,j,pr)|
//
// where M'max is a maximum-cardinality matching of the occurrences of
// branch j (Definition 6). Proposition 4.2: PosBDist(T1,T2,l) > 5l implies
// EDist(T1,T2) > l (with 5 generalizing to Factor(q)).
//
// Computing |M'max| exactly matters for correctness: an undersized matching
// would inflate PosBDist and could prune true results. Occurrence lists are
// produced in ascending preorder position; when the postorder positions are
// also ascending in both lists (no occurrence is an ancestor of another —
// the overwhelmingly common case), the compatibility neighborhoods form
// monotone intervals and a linear greedy sweep is provably maximum.
// Otherwise we fall back to an exact augmenting-path maximum bipartite
// matching.

// PosBDist returns the positional binary branch distance between the two
// profiles with positional range pr. It is monotonically non-increasing in
// pr, equals BDist(a,b) for pr ≥ max(|T1|,|T2|), and is at least BDist(a,b)
// everywhere.
func PosBDist(a, b *Profile, pr int) int {
	sameSpace(a, b)
	matched := 0
	ae, be := a.Vec.Elems(), b.Vec.Elems()
	i, j := 0, 0
	for i < len(ae) && j < len(be) {
		switch {
		case ae[i].Dim < be[j].Dim:
			i++
		case ae[i].Dim > be[j].Dim:
			j++
		default:
			matched += MatchSize(a.Pos[i], b.Pos[j], pr)
			i++
			j++
		}
	}
	return a.Size + b.Size - 2*matched
}

// MatchSize returns |M'max|: the maximum number of occurrence pairs (one
// from each list) that can be matched one-to-one under positional range pr.
// Both lists must be sorted by ascending Pre (as produced by Profile).
func MatchSize(av, bv []Occurrence, pr int) int {
	if len(av) == 0 || len(bv) == 0 {
		return 0
	}
	// Two provably-exact greedy regimes: posts ascending in both lists
	// (sibling-structured occurrences) or descending in both (ancestor
	// chains, e.g. a(a(a(...)))). In both, later elements dominate
	// earlier ones consistently in each coordinate, so compatibility
	// neighborhoods are monotone intervals and the greedy sweep is a
	// maximum matching.
	if postSorted(av) && postSorted(bv) {
		return greedyMatch(av, bv, pr, +1)
	}
	if postDescending(av) && postDescending(bv) {
		return greedyMatch(av, bv, pr, -1)
	}
	return exactMatch(av, bv, pr)
}

func compatible(a, b Occurrence, pr int) bool {
	return absDiff(a.Pre, b.Pre) <= int32(pr) && absDiff(a.Post, b.Post) <= int32(pr)
}

func absDiff(x, y int32) int32 {
	if x > y {
		return x - y
	}
	return y - x
}

// postSorted reports whether Post is non-decreasing along the (Pre-sorted)
// list. If it is, later occurrences dominate earlier ones in both
// coordinates, which is what makes the greedy sweep exact.
func postSorted(v []Occurrence) bool {
	for i := 1; i < len(v); i++ {
		if v[i].Post < v[i-1].Post {
			return false
		}
	}
	return true
}

// postDescending reports whether Post is non-increasing along the
// (Pre-sorted) list — the signature of occurrences forming an
// ancestor-descendant chain.
func postDescending(v []Occurrence) bool {
	for i := 1; i < len(v); i++ {
		if v[i].Post > v[i-1].Post {
			return false
		}
	}
	return true
}

// greedyMatch computes a maximum matching in linear time when both lists
// are monotone in Post with the same direction (dir = +1 ascending,
// dir = −1 descending; Pre always ascends). At each step either the heads
// are compatible (match them: with monotone interval neighborhoods the
// leftmost-leftmost exchange argument applies), or one head is strictly
// outside the other's window in a coordinate that only moves further away
// along the other list, so it is discarded.
func greedyMatch(av, bv []Occurrence, pr int, dir int32) int {
	i, j, m := 0, 0, 0
	p := int32(pr)
	for i < len(av) && j < len(bv) {
		a, b := av[i], bv[j]
		if compatible(a, b, pr) {
			m++
			i++
			j++
			continue
		}
		// In the oriented coordinates (Pre, dir·Post), later elements of
		// each list are never smaller; a head strictly below the other's
		// window in either oriented coordinate is unmatchable from here
		// on.
		if a.Pre < b.Pre-p || dir*a.Post < dir*b.Post-p {
			i++
			continue
		}
		// Symmetrically b is unmatchable against av[i:].
		j++
	}
	return m
}

// exactMatch computes a maximum bipartite matching with augmenting paths
// (Kuhn's algorithm, O(V·E)). It is only reached when a branch occurs at
// two positions where one occurrence is an ancestor of the other — rare,
// and the lists involved are short in practice.
func exactMatch(av, bv []Occurrence, pr int) int {
	// adj[i] lists the b-indices compatible with av[i].
	adj := make([][]int, len(av))
	for i, a := range av {
		for j, b := range bv {
			if compatible(a, b, pr) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	matchB := make([]int, len(bv))
	for i := range matchB {
		matchB[i] = -1
	}
	visited := make([]bool, len(bv))
	var try func(i int) bool
	try = func(i int) bool {
		for _, j := range adj[i] {
			if visited[j] {
				continue
			}
			visited[j] = true
			if matchB[j] == -1 || try(matchB[j]) {
				matchB[j] = i
				return true
			}
		}
		return false
	}
	m := 0
	for i := range av {
		for k := range visited {
			visited[k] = false
		}
		if try(i) {
			m++
		}
	}
	return m
}
