package branch

import (
	"math/rand"
	"testing"

	"treesim/internal/tree"
)

// TestMatchSizePaperExample reproduces the Section 4.2 walkthrough with
// positional range pr = 1 on the Fig. 2 numbering:
//
//	BiB(c,ε,d): T1 occurrences (3,1),(6,4); T2 occurrences (3,1),(7,6).
//	Only (3,1)↔(3,1) can match.
//	BiB(e,ε,ε): T1 (8,7); T2 (6,3),(9,8). Only (8,7)↔(9,8) can match.
func TestMatchSizePaperExample(t *testing.T) {
	cOcc1 := []Occurrence{{3, 1}, {6, 4}}
	cOcc2 := []Occurrence{{3, 1}, {7, 6}}
	if got := MatchSize(cOcc1, cOcc2, 1); got != 1 {
		t.Errorf("MatchSize(c-branch, pr=1) = %d, want 1", got)
	}
	eOcc1 := []Occurrence{{8, 7}}
	eOcc2 := []Occurrence{{6, 3}, {9, 8}}
	if got := MatchSize(eOcc1, eOcc2, 1); got != 1 {
		t.Errorf("MatchSize(e-branch, pr=1) = %d, want 1", got)
	}
	if got := MatchSize(eOcc1, []Occurrence{{6, 3}}, 1); got != 0 {
		t.Errorf("incompatible pair matched: %d", got)
	}
}

// TestPosBDistPaperPair: with the Fig. 2 profiles, the hand computation
// gives PosBDist(T1,T2,1) = 17 − 2·3 = 11 and PosBDist(T1,T2,2) = 17 − 2·4 = 9.
func TestPosBDistPaperPair(t *testing.T) {
	s := NewSpace(2)
	p1, p2 := s.Profile(paperT1()), s.Profile(paperT2())
	if got := PosBDist(p1, p2, 1); got != 11 {
		t.Errorf("PosBDist(T1,T2,1) = %d, want 11", got)
	}
	if got := PosBDist(p1, p2, 2); got != 9 {
		t.Errorf("PosBDist(T1,T2,2) = %d, want 9", got)
	}
}

// TestSearchLBoundPaperPair: the predicate fails at pr=1 (11 > 5) and holds
// at pr=2 (9 ≤ 10), so the optimistic bound is 2 — and EDist(T1,T2) = 3.
func TestSearchLBoundPaperPair(t *testing.T) {
	s := NewSpace(2)
	p1, p2 := s.Profile(paperT1()), s.Profile(paperT2())
	if got := SearchLBound(p1, p2); got != 2 {
		t.Errorf("SearchLBound(T1,T2) = %d, want 2", got)
	}
}

// TestPosBDistMonotone: PosBDist is non-increasing in pr, bounded below by
// BDist, and equals BDist at pr = max(|T1|,|T2|).
func TestPosBDistMonotone(t *testing.T) {
	s := NewSpace(2)
	p1, p2 := s.Profile(paperT1()), s.Profile(paperT2())
	bd := BDist(p1, p2)
	prmax := p2.Size
	prev := PosBDist(p1, p2, 0)
	for pr := 1; pr <= prmax; pr++ {
		cur := PosBDist(p1, p2, pr)
		if cur > prev {
			t.Errorf("PosBDist increased from %d to %d at pr=%d", prev, cur, pr)
		}
		if cur < bd {
			t.Errorf("PosBDist(%d) = %d below BDist = %d", pr, cur, bd)
		}
		prev = cur
	}
	if prev != bd {
		t.Errorf("PosBDist(prmax) = %d, want BDist = %d", prev, bd)
	}
}

// TestPosBDistIdentity: a tree at range 0 matches itself perfectly.
func TestPosBDistIdentity(t *testing.T) {
	s := NewSpace(2)
	p := s.Profile(paperT2())
	if got := PosBDist(p, p, 0); got != 0 {
		t.Errorf("PosBDist(T,T,0) = %d, want 0", got)
	}
}

func TestMatchSizeEmpty(t *testing.T) {
	if MatchSize(nil, []Occurrence{{1, 1}}, 5) != 0 {
		t.Error("empty list should match nothing")
	}
	if MatchSize([]Occurrence{{1, 1}}, nil, 5) != 0 {
		t.Error("empty list should match nothing")
	}
}

// TestGreedyEqualsExact: on co-sorted random occurrence lists the greedy
// sweep must agree with the augmenting-path matching.
func TestGreedyEqualsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		a := randomCoSorted(rng, 1+rng.Intn(8))
		b := randomCoSorted(rng, 1+rng.Intn(8))
		pr := rng.Intn(6)
		g := greedyMatch(a, b, pr, +1)
		e := exactMatch(a, b, pr)
		if g != e {
			t.Fatalf("trial %d: greedy=%d exact=%d (a=%v b=%v pr=%d)", trial, g, e, a, b, pr)
		}
	}
}

// randomCoSorted builds a list ascending in both Pre and Post.
func randomCoSorted(rng *rand.Rand, n int) []Occurrence {
	out := make([]Occurrence, n)
	pre, post := int32(0), int32(0)
	for i := range out {
		pre += 1 + int32(rng.Intn(4))
		post += 1 + int32(rng.Intn(4))
		out[i] = Occurrence{Pre: pre, Post: post}
	}
	return out
}

// TestGreedyDescendingEqualsExact: the descending fast path (ancestor
// chains) must also agree with the exact matcher.
func TestGreedyDescendingEqualsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 500; trial++ {
		a := randomAntiSorted(rng, 1+rng.Intn(8))
		b := randomAntiSorted(rng, 1+rng.Intn(8))
		pr := rng.Intn(8)
		g := greedyMatch(a, b, pr, -1)
		e := exactMatch(a, b, pr)
		if g != e {
			t.Fatalf("trial %d: greedy=%d exact=%d (a=%v b=%v pr=%d)", trial, g, e, a, b, pr)
		}
	}
}

// randomAntiSorted builds a list with Pre ascending and Post descending —
// the ancestor-chain signature.
func randomAntiSorted(rng *rand.Rand, n int) []Occurrence {
	out := make([]Occurrence, n)
	pre := int32(0)
	post := int32(50)
	for i := range out {
		pre += 1 + int32(rng.Intn(4))
		post -= 1 + int32(rng.Intn(4))
		out[i] = Occurrence{Pre: pre, Post: post}
	}
	return out
}

// TestMatchSizePathTreesFast: the path-tree pathology (30k-node chains of
// one label) must use the descending fast path, not the quadratic exact
// matcher.
func TestMatchSizePathTreesFast(t *testing.T) {
	const n = 30000
	a := make([]Occurrence, n)
	b := make([]Occurrence, n-1)
	for i := range a {
		a[i] = Occurrence{Pre: int32(i + 1), Post: int32(n - i)}
	}
	for i := range b {
		b[i] = Occurrence{Pre: int32(i + 1), Post: int32(n - 1 - i)}
	}
	if got := MatchSize(a, b, 1); got != n-1 {
		t.Fatalf("MatchSize = %d, want %d", got, n-1)
	}
}

// TestExactMatchAncestorChain: occurrences of a self-similar branch where
// one occurrence is an ancestor of another (Pre ascending, Post descending)
// exercise the exact-matching fallback.
func TestExactMatchAncestorChain(t *testing.T) {
	// a(a(a)): every node roots branch (a,a,ε) except the leaf (a,ε,ε).
	s := NewSpace(2)
	chain3 := tree.MustParse("a(a(a))")
	chain4 := tree.MustParse("a(a(a(a)))")
	p3, p4 := s.Profile(chain3), s.Profile(chain4)
	// (a,a,ε) occurs twice in chain3 at (1,3),(2,2) — Post descending.
	if got := PosBDist(p3, p4, 0); got < BDist(p3, p4) {
		t.Errorf("PosBDist below BDist: %d < %d", got, BDist(p3, p4))
	}
	// One insert transforms chain3 into chain4, so every lower bound ≤ 1.
	if got := SearchLBound(p3, p4); got > 1 {
		t.Errorf("SearchLBound(chain3,chain4) = %d, want ≤ 1", got)
	}
}

// TestMatchSizeUsesExactForNonMonotone: a crafted non-co-sorted instance
// where a naive greedy-by-Pre undercounts; MatchSize must find 2.
func TestMatchSizeUsesExactForNonMonotone(t *testing.T) {
	// A: (1,10), (2,1)   — ancestor then descendant (Post drops).
	// B: (1,1), (2,10)
	// pr=0: compatible pairs are none (positions must agree in both).
	// pr=1: (1,10)-(2,10)? pre diff 1 ok post diff 0 ok → yes.
	//        (2,1)-(1,1): pre diff 1, post diff 0 → yes. Perfect matching 2.
	a := []Occurrence{{1, 10}, {2, 1}}
	b := []Occurrence{{1, 1}, {2, 10}}
	if got := MatchSize(a, b, 1); got != 2 {
		t.Errorf("MatchSize = %d, want 2", got)
	}
	if got := MatchSize(a, b, 0); got != 0 {
		t.Errorf("MatchSize(pr=0) = %d, want 0", got)
	}
}
