package branch

import (
	"runtime"
	"sync"
	"sync/atomic"

	"treesim/internal/btree"
	"treesim/internal/labels"
	"treesim/internal/tree"
	"treesim/internal/vector"
)

// Occurrence is one occurrence of a binary branch: the 1-based preorder and
// postorder position (in the original tree T) of the node the branch is
// rooted at. Proposition 4.1 bounds how far an occurrence can move under k
// edit operations, which is what the positional filter exploits.
type Occurrence struct {
	Pre  int32
	Post int32
}

// Profile is the binary branch representation of one tree: its branch
// vector BRV_q(T) plus, for each non-zero dimension, the positions of the
// branch's occurrences sorted by preorder position. Profiles built from the
// same Space are directly comparable.
type Profile struct {
	// Size is |T|, the node count of the profiled tree. For every q the
	// total branch count equals |T| (one branch rooted at each node).
	Size int
	// Vec is the sparse branch vector BRV_q(T).
	Vec *vector.Sparse
	// Pos holds the occurrence positions for each non-zero dimension,
	// parallel to Vec.Elems(), each list in ascending preorder position.
	Pos [][]Occurrence

	space *Space
}

// Q returns the branch level the profile was built at.
func (p *Profile) Q() int { return p.space.q }

// Space returns the branch space the profile belongs to.
func (p *Profile) Space() *Space { return p.space }

// Branches enumerates the q-level binary branches of t in preorder of the
// original tree, calling fn once per original node with the branch's
// interned dimension and the node's 1-based preorder and postorder
// positions. It returns |T|. This streaming form is the common core of
// per-tree profiling and of the dataset-wide inverted file construction
// (Algorithm 1): occurrences arrive grouped by tree and in ascending
// preorder position.
//
// Complexity: O(|T| · 2^q) time.
func (s *Space) Branches(t *tree.Tree, fn func(d vector.Dim, pre, post int32)) int {
	bt := btree.Normalized(t)
	size := 0

	window := make([]string, 0, s.WindowLen())
	var emit func(n *btree.Node, levels int)
	emit = func(n *btree.Node, levels int) {
		if levels == 0 {
			return
		}
		if n == nil || n.Epsilon {
			window = append(window, labels.EpsilonString)
			emit(nil, levels-1)
			emit(nil, levels-1)
			return
		}
		window = append(window, n.Label)
		emit(n.Left, levels-1)
		emit(n.Right, levels-1)
	}

	// Visit original nodes in preorder of B(T) — which equals preorder of
	// T — so per-branch occurrence sequences come out sorted by Pre.
	var walk func(n *btree.Node)
	walk = func(n *btree.Node) {
		if n == nil || n.Epsilon {
			return
		}
		size++
		window = window[:0]
		emit(n, s.q)
		fn(s.intern(encodeKey(window)), int32(n.Pre), int32(n.Post))
		walk(n.Left)
		walk(n.Right)
	}
	walk(bt.Root)
	return size
}

// Profile computes the q-level binary branch profile of t, interning any
// previously unseen branches into the space.
//
// Complexity: O(|T| · 2^q) time; O(distinct branches + |T|) space.
func (s *Space) Profile(t *tree.Tree) *Profile {
	occs := make(map[vector.Dim][]Occurrence)
	b := vector.NewBuilder()
	size := s.Branches(t, func(d vector.Dim, pre, post int32) {
		b.Inc(d)
		occs[d] = append(occs[d], Occurrence{Pre: pre, Post: post})
	})

	vec := b.MustVector()
	pos := make([][]Occurrence, vec.NonZero())
	for i, e := range vec.Elems() {
		pos[i] = occs[e.Dim]
	}
	return &Profile{Size: size, Vec: vec, Pos: pos, space: s}
}

// ProfileAll profiles every tree of a dataset in order.
func (s *Space) ProfileAll(ts []*tree.Tree) []*Profile {
	out := make([]*Profile, len(ts))
	for i, t := range ts {
		out[i] = s.Profile(t)
	}
	return out
}

// ProfileAllParallel profiles a dataset with the given number of workers
// (≤ 0 means GOMAXPROCS). The space's interner is safe for concurrent use,
// and dimension assignment stays deterministic-per-space only in the sense
// that equal branches get equal dimensions; the dimension *numbering* may
// differ between runs, which never affects any distance.
func (s *Space) ProfileAllParallel(ts []*tree.Tree, workers int) []*Profile {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ts) {
		workers = len(ts)
	}
	if workers <= 1 {
		return s.ProfileAll(ts)
	}
	out := make([]*Profile, len(ts))
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(ts) {
					return
				}
				out[i] = s.Profile(ts[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Assemble constructs a Profile from pre-computed parts: the tree size, the
// branch vector, and the per-dimension occurrence lists parallel to
// vec.Elems(). It is used by the inverted-file scan (Algorithm 1 lines
// 6–13) which materializes the same data laid out by dimension rather than
// by tree. The vector's total count must equal size and the position lists
// must be parallel to the vector's coordinates.
func Assemble(s *Space, size int, vec *vector.Sparse, pos [][]Occurrence) *Profile {
	if vec.Sum() != size {
		panic("branch: vector total does not match tree size")
	}
	if len(pos) != vec.NonZero() {
		panic("branch: position lists not parallel to vector coordinates")
	}
	for i, e := range vec.Elems() {
		if len(pos[i]) != e.Count {
			panic("branch: occurrence count does not match vector coordinate")
		}
	}
	return &Profile{Size: size, Vec: vec, Pos: pos, space: s}
}

// sameSpace panics unless the two profiles were built from one Space;
// vectors from different spaces use unrelated dimension numbering and any
// distance between them would be meaningless.
func sameSpace(a, b *Profile) {
	if a.space != b.space {
		panic("branch: profiles from different spaces are not comparable")
	}
}
