// Package branch implements the paper's primary contribution: the binary
// branch embedding of rooted, ordered, labeled trees.
//
// A q-level binary branch (Definition 5; Definition 2 is the q=2 case) is
// the perfect binary tree of height q−1 rooted at an original node u of the
// ε-normalized binary tree representation B(T), padded with ε below the
// leaves where necessary. Every tree T maps to a sparse vector BRV_q(T)
// counting the occurrences of each distinct branch (Definition 3); the L1
// distance of two such vectors is the (q-level) binary branch distance
// BDist_q (Definition 4), and
//
//	BDist_q(T1,T2) ≤ [4(q−1)+1] · EDist(T1,T2)   (Theorems 3.2 and 3.3)
//
// so ceil(BDist_q/[4(q−1)+1]) lower-bounds the unit-cost tree edit
// distance. The positional binary branch distance (Definition 6) tightens
// the bound further using preorder/postorder positions, and SearchLBound
// (Section 4.3) binary-searches the positional range for the best bound.
package branch

import (
	"strconv"
	"strings"
	"sync"

	"treesim/internal/vector"
)

// MinQ is the smallest meaningful branch level. q=1 records single labels
// only (no structure); the paper starts at q=2.
const MinQ = 2

// Factor returns the per-edit-operation bound 4(q−1)+1 of Theorem 3.3: one
// edit operation changes at most Factor(q) q-level binary branches. For
// q=2 this is the constant 5 of Theorem 3.2.
func Factor(q int) int { return 4*(q-1) + 1 }

// Space is the alphabet Γ of q-level binary branches observed in a dataset.
// It interns each distinct branch into a dense vector dimension, so branch
// vectors of different trees are directly comparable. A Space is safe for
// concurrent use.
type Space struct {
	q  int
	mu sync.RWMutex
	// ids maps the encoded branch key to its dimension.
	ids map[string]vector.Dim
	// keys lists the branch keys by dimension, for debugging/inspection.
	keys []string
}

// NewSpace returns an empty branch space at level q (q ≥ MinQ; q=2 is the
// two-level branch of Definition 2).
func NewSpace(q int) *Space {
	if q < MinQ {
		panic("branch: q must be >= 2")
	}
	return &Space{q: q, ids: make(map[string]vector.Dim, 256)}
}

// Q returns the branch level of the space.
func (s *Space) Q() int { return s.q }

// Size returns |Γ|, the number of distinct branches interned so far.
func (s *Space) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.keys)
}

// WindowLen returns the number of labels in one branch window: 2^q − 1
// (the node count of a perfect binary tree with q levels).
func (s *Space) WindowLen() int { return (1 << uint(s.q)) - 1 }

// intern returns the dimension of the branch encoded by key, assigning a
// fresh dimension on first sight.
func (s *Space) intern(key string) vector.Dim {
	s.mu.RLock()
	id, ok := s.ids[key]
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[key]; ok {
		return id
	}
	id = vector.Dim(len(s.keys))
	s.keys = append(s.keys, key)
	s.ids[key] = id
	return id
}

// Key returns the encoded key of dimension d. It panics if d was never
// issued by this space.
func (s *Space) Key(d vector.Dim) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.keys[d]
}

// KeyLabels decodes an encoded branch key back into its label sequence
// (the preorder traversal of the branch window; ε appears as "ε").
func KeyLabels(key string) []string {
	var out []string
	for len(key) > 0 {
		i := strings.IndexByte(key, ':')
		n, err := strconv.Atoi(key[:i])
		if err != nil {
			panic("branch: corrupt key: " + key)
		}
		key = key[i+1:]
		out = append(out, key[:n])
		key = key[n:]
	}
	return out
}

// encodeKey builds an unambiguous string key from a label sequence using
// length prefixes ("<len>:<label>" per label), so labels containing any
// byte sequence are handled.
func encodeKey(seq []string) string {
	var sb strings.Builder
	for _, l := range seq {
		sb.WriteString(strconv.Itoa(len(l)))
		sb.WriteByte(':')
		sb.WriteString(l)
	}
	return sb.String()
}
