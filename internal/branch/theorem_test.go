package branch

import (
	"math/rand"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/editdist"
	"treesim/internal/tree"
)

// This file tests the paper's formal results as properties over random
// trees:
//
//	Theorem 3.2:      BDist(T1,T2)   ≤ 5·EDist(T1,T2)
//	Theorem 3.3:      BDist_q(T1,T2) ≤ [4(q−1)+1]·EDist(T1,T2)
//	Lemma 3.1:        every node occurs in at most 2 two-level branches
//	                  (at most q q-level branches)
//	Section 3.2:      BDist is a pseudometric (triangle inequality)
//	Proposition 4.2:  PosBDist(T1,T2,l) > 5l ⇒ EDist > l
//	Section 4.3:      SearchLBound ≤ EDist, SearchLBound ≥ ceil(BDist/5)

func testGen(seed int64) *datagen.Generator {
	spec := datagen.Spec{
		FanoutMean: 2.5, FanoutStd: 1,
		SizeMean: 12, SizeStd: 4,
		Labels: 4, Decay: 0.1,
	}
	return datagen.New(spec, seed)
}

// TestTheorem32And33 checks the scaled lower bound for q ∈ {2,3,4} on
// random pairs with exactly-known edit bounds and exact distances.
func TestTheorem32And33(t *testing.T) {
	g := testGen(1)
	for _, q := range []int{2, 3, 4} {
		s := NewSpace(q)
		f := Factor(q)
		for trial := 0; trial < 60; trial++ {
			t1 := g.Seed()
			t2 := g.RandomEdits(t1, 1+trial%8)
			ed := editdist.Distance(t1, t2)
			bd := BDist(s.Profile(t1), s.Profile(t2))
			if bd > f*ed {
				t.Fatalf("q=%d: BDist=%d > %d·EDist=%d for\n  %s\n  %s",
					q, bd, f, ed, t1, t2)
			}
		}
	}
}

// TestTheorem32UnrelatedTrees checks the bound on pairs that are not edit
// neighbors of each other (independent random trees).
func TestTheorem32UnrelatedTrees(t *testing.T) {
	g := testGen(2)
	s := NewSpace(2)
	for trial := 0; trial < 60; trial++ {
		t1, t2 := g.Seed(), g.Seed()
		ed := editdist.Distance(t1, t2)
		bd := BDist(s.Profile(t1), s.Profile(t2))
		if bd > 5*ed {
			t.Fatalf("BDist=%d > 5·EDist=%d for\n  %s\n  %s", bd, ed, t1, t2)
		}
	}
}

// TestSingleOperationDeltas verifies the per-operation cases of the proof
// of Theorem 3.2: a relabel changes BDist by at most 4; an insert or delete
// by at most 5.
func TestSingleOperationDeltas(t *testing.T) {
	g := testGen(3)
	s := NewSpace(2)
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		t1 := g.Seed()
		t2 := t1.Clone()
		nodes := t2.PreOrder()
		n := nodes[rng.Intn(len(nodes))]
		var limit int
		switch rng.Intn(3) {
		case 0: // relabel
			n.Label = "zz" // certainly a fresh label
			limit = 4
		case 1: // delete
			if n == t2.Root && len(n.Children) != 1 {
				continue
			}
			if err := tree.Delete(t2, n); err != nil {
				continue
			}
			limit = 5
		default: // insert
			deg := len(n.Children)
			pos := rng.Intn(deg + 1)
			count := 0
			if deg-pos > 0 {
				count = rng.Intn(deg - pos + 1)
			}
			if _, err := tree.Insert(t2, n, pos, count, "zz"); err != nil {
				continue
			}
			limit = 5
		}
		bd := BDist(s.Profile(t1), s.Profile(t2))
		if bd > limit {
			t.Fatalf("single op changed BDist by %d > %d:\n  %s\n  %s",
				bd, limit, t1, t2)
		}
	}
}

// TestLemma31 counts, for each node of random trees, in how many q-level
// branch windows it appears; Lemma 3.1 bounds this by 2 for q=2 and the
// generalization by q.
func TestLemma31(t *testing.T) {
	g := testGen(4)
	for _, q := range []int{2, 3, 4} {
		for trial := 0; trial < 20; trial++ {
			tr := g.Seed()
			counts := windowMembership(tr, q)
			for n, c := range counts {
				if c > q {
					t.Fatalf("q=%d: node %q appears in %d windows (max %d) in %s",
						q, n.label, c, q, tr)
				}
			}
		}
	}
}

// windowMembership counts how many branch windows each original node of T
// appears in, by replaying the window enumeration over B(T).
func windowMembership(tr *tree.Tree, q int) map[*bNode]int {
	root := toBNodes(tr)
	counts := make(map[*bNode]int)
	var collect func(n *bNode, levels int)
	collect = func(n *bNode, levels int) {
		if levels == 0 || n == nil {
			return
		}
		counts[n]++
		collect(n.left, levels-1)
		collect(n.right, levels-1)
	}
	var walk func(n *bNode)
	walk = func(n *bNode) {
		if n == nil {
			return
		}
		collect(n, q)
		walk(n.left)
		walk(n.right)
	}
	walk(root)
	return counts
}

// bNode is a minimal left-child/right-sibling node for the membership
// test, independent of the production btree package.
type bNode struct {
	label       string
	left, right *bNode
}

func toBNodes(tr *tree.Tree) *bNode {
	if tr.IsEmpty() {
		return nil
	}
	var build func(n *tree.Node) *bNode
	build = func(n *tree.Node) *bNode {
		bn := &bNode{label: n.Label}
		var prev *bNode
		for _, c := range n.Children {
			cb := build(c)
			if prev == nil {
				bn.left = cb
			} else {
				prev.right = cb
			}
			prev = cb
		}
		return bn
	}
	return build(tr.Root)
}

// TestTriangleInequality: BDist is a pseudometric.
func TestTriangleInequality(t *testing.T) {
	g := testGen(5)
	s := NewSpace(2)
	profiles := make([]*Profile, 10)
	for i := range profiles {
		profiles[i] = s.Profile(g.Seed())
	}
	for i, a := range profiles {
		for j, b := range profiles {
			for k, c := range profiles {
				if i == j || j == k || i == k {
					continue
				}
				if BDist(a, c) > BDist(a, b)+BDist(b, c) {
					t.Fatalf("triangle violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

// TestProposition42 and the SearchLBound soundness: the optimistic bound
// never exceeds the true edit distance, and it dominates the plain bound.
func TestSearchLBoundSound(t *testing.T) {
	g := testGen(6)
	for _, q := range []int{2, 3} {
		s := NewSpace(q)
		for trial := 0; trial < 80; trial++ {
			var t1, t2 *tree.Tree
			if trial%2 == 0 {
				t1, t2 = g.Seed(), g.Seed()
			} else {
				t1 = g.Seed()
				t2 = g.RandomEdits(t1, 1+trial%5)
			}
			p1, p2 := s.Profile(t1), s.Profile(t2)
			ed := editdist.Distance(t1, t2)
			lb := SearchLBound(p1, p2)
			if lb > ed {
				t.Fatalf("q=%d: SearchLBound=%d > EDist=%d for\n  %s\n  %s",
					q, lb, ed, t1, t2)
			}
			if plain := BDistLowerBound(p1, p2); lb < plain {
				t.Fatalf("q=%d: SearchLBound=%d below plain bound %d", q, lb, plain)
			}
			szd := t1.Size() - t2.Size()
			if szd < 0 {
				szd = -szd
			}
			if lb < szd {
				t.Fatalf("q=%d: SearchLBound=%d below size difference %d", q, lb, szd)
			}
		}
	}
}

// TestRangeLowerBoundSound: whenever EDist ≤ tau, RangeLowerBound ≤ tau
// (no false dismissals in range queries).
func TestRangeLowerBoundSound(t *testing.T) {
	g := testGen(7)
	s := NewSpace(2)
	for trial := 0; trial < 120; trial++ {
		t1 := g.Seed()
		t2 := g.RandomEdits(t1, trial%7)
		p1, p2 := s.Profile(t1), s.Profile(t2)
		ed := editdist.Distance(t1, t2)
		for _, tau := range []int{ed, ed + 1, ed + 3} {
			if lb := RangeLowerBound(p1, p2, tau); lb > tau {
				t.Fatalf("RangeLowerBound=%d > tau=%d but EDist=%d for\n  %s\n  %s",
					lb, tau, ed, t1, t2)
			}
		}
	}
}

// TestProposition41 checks the positional displacement bound directly: in
// an optimal mapping... observable consequence: for related trees at edit
// distance k, PosBDist at pr=k obeys the Proposition 4.2 inequality.
func TestProposition42Inequality(t *testing.T) {
	g := testGen(8)
	s := NewSpace(2)
	for trial := 0; trial < 100; trial++ {
		t1 := g.Seed()
		t2 := g.RandomEdits(t1, 1+trial%6)
		ed := editdist.Distance(t1, t2)
		p1, p2 := s.Profile(t1), s.Profile(t2)
		// Contrapositive of Prop 4.2: EDist ≤ l ⇒ PosBDist(l) ≤ 5l.
		for _, l := range []int{ed, ed + 2} {
			if got := PosBDist(p1, p2, l); got > 5*l {
				t.Fatalf("PosBDist(%d)=%d > 5·%d with EDist=%d for\n  %s\n  %s",
					l, got, l, ed, t1, t2)
			}
		}
	}
}

// TestPositionalStrictlyTighter: the positional bound must actually earn
// its keep — on mid-sized synthetic trees it should beat the plain
// ceil(BDist/5) bound on a substantial fraction of pairs.
func TestPositionalStrictlyTighter(t *testing.T) {
	spec := datagen.Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: 50, SizeStd: 2, Labels: 8, Decay: 0.05}
	ts := datagen.New(spec, 1).Dataset(60, 8)
	s := NewSpace(2)
	ps := s.ProfileAll(ts)
	tighter, total := 0, 0
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			total++
			if SearchLBound(ps[i], ps[j]) > BDistLowerBound(ps[i], ps[j]) {
				tighter++
			}
		}
	}
	if tighter == 0 {
		t.Error("positional bound never improved on the plain bound")
	}
	t.Logf("positional strictly tighter on %d/%d pairs", tighter, total)
}

// TestBDistVsEditOnIdentical: identical trees always embed to identical
// vectors at every level.
func TestBDistVsEditOnIdentical(t *testing.T) {
	g := testGen(9)
	for _, q := range []int{2, 3, 4} {
		s := NewSpace(q)
		tr := g.Seed()
		if got := BDist(s.Profile(tr), s.Profile(tr.Clone())); got != 0 {
			t.Errorf("q=%d: BDist of identical trees = %d", q, got)
		}
	}
}

// TestHigherQNeverLooser: BDist_q normalized by Factor(q) stays a valid
// bound, and raw BDist is non-decreasing in q on average — here we assert
// the weaker, always-true direction: each level's scaled bound ≤ EDist.
func TestScaledBoundsAllLevels(t *testing.T) {
	g := testGen(10)
	spaces := map[int]*Space{2: NewSpace(2), 3: NewSpace(3), 4: NewSpace(4)}
	for trial := 0; trial < 40; trial++ {
		t1, t2 := g.Seed(), g.Seed()
		ed := editdist.Distance(t1, t2)
		for q, s := range spaces {
			lb := EditLowerBound(BDist(s.Profile(t1), s.Profile(t2)), q)
			if lb > ed {
				t.Fatalf("q=%d: scaled bound %d exceeds EDist %d", q, lb, ed)
			}
		}
	}
}
