// Package btree implements the binary tree representation of rooted,
// ordered, labeled trees (Section 2.3 of the paper) and its ε-normalization
// (Section 3.2).
//
// The transform is the classic left-child/right-sibling encoding: in B(T),
// the left child of a node is its first child in T and the right child is
// its next sibling in T. The encoding is lossless — every parent-child edge
// of T other than "first child" edges is replaced by a sibling link, which
// is exactly what makes edit operations touch only a constant number of
// binary branches (Section 3.1).
//
// Normalization appends ε nodes so that every original node has exactly two
// children in B(T); the ε padding makes the two-level branch structure
// (label, left, right) total on original nodes.
package btree

import (
	"strings"

	"treesim/internal/tree"
)

// Node is a node of a binary tree representation. Original nodes carry the
// 1-based preorder and postorder position of the corresponding node in the
// source tree T (these equal the preorder and inorder positions in B(T));
// ε padding nodes have Epsilon set and positions 0.
type Node struct {
	Label   string
	Left    *Node
	Right   *Node
	Pre     int  // 1-based preorder position in T (0 for ε)
	Post    int  // 1-based postorder position in T (0 for ε)
	Epsilon bool // true for appended ε nodes
}

// IsLeaf reports whether the node has no children at all.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// BinaryTree is the binary tree representation B(T) of a tree T.
type BinaryTree struct {
	Root *Node
	// Normalized records whether ε padding has been applied.
	Normalized bool
}

// FromTree builds the (un-normalized) binary tree representation B(T) using
// the left-child/right-sibling encoding, stamping each node with its
// preorder and postorder position in T.
func FromTree(t *tree.Tree) *BinaryTree {
	if t.IsEmpty() {
		return &BinaryTree{}
	}
	pre, post := 0, 0
	var build func(n *tree.Node) *Node
	build = func(n *tree.Node) *Node {
		pre++
		bn := &Node{Label: n.Label, Pre: pre}
		var children []*Node
		for _, c := range n.Children {
			children = append(children, build(c))
		}
		post++
		bn.Post = post
		if len(children) > 0 {
			bn.Left = children[0]
			for i := 0; i+1 < len(children); i++ {
				children[i].Right = children[i+1]
			}
		}
		return bn
	}
	return &BinaryTree{Root: build(t.Root)}
}

// Normalize appends ε nodes so every non-ε node has exactly two children,
// producing the full binary tree of Section 3.2. It is idempotent.
func (b *BinaryTree) Normalize() {
	if b.Root == nil || b.Normalized {
		b.Normalized = true
		return
	}
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.Epsilon {
			return
		}
		if n.Left == nil {
			n.Left = &Node{Label: "ε", Epsilon: true}
		} else {
			rec(n.Left)
		}
		if n.Right == nil {
			n.Right = &Node{Label: "ε", Epsilon: true}
		} else {
			rec(n.Right)
		}
	}
	rec(b.Root)
	b.Normalized = true
}

// Normalized builds the normalized binary tree representation in one step.
func Normalized(t *tree.Tree) *BinaryTree {
	b := FromTree(t)
	b.Normalize()
	return b
}

// ToTree inverts the left-child/right-sibling encoding, ignoring ε nodes.
// ToTree(FromTree(t)) is structurally equal to t.
func (b *BinaryTree) ToTree() *tree.Tree {
	if b.Root == nil || b.Root.Epsilon {
		return tree.New(nil)
	}
	return tree.New(rebuild(b.Root))
}

func rebuild(bn *Node) *tree.Node {
	n := &tree.Node{Label: bn.Label}
	for c := bn.Left; c != nil && !c.Epsilon; c = c.Right {
		n.Children = append(n.Children, rebuild(c))
	}
	return n
}

// Size returns the number of original (non-ε) nodes.
func (b *BinaryTree) Size() int {
	n := 0
	b.Walk(func(nd *Node) {
		if !nd.Epsilon {
			n++
		}
	})
	return n
}

// FullSize returns the number of nodes including ε padding.
func (b *BinaryTree) FullSize() int {
	n := 0
	b.Walk(func(*Node) { n++ })
	return n
}

// Height returns the number of nodes on the longest root-to-leaf path,
// counting ε nodes.
func (b *BinaryTree) Height() int {
	var rec func(n *Node) int
	rec = func(n *Node) int {
		if n == nil {
			return 0
		}
		l, r := rec(n.Left), rec(n.Right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return rec(b.Root)
}

// Walk visits every node (including ε nodes) in preorder.
func (b *BinaryTree) Walk(visit func(*Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		visit(n)
		rec(n.Left)
		rec(n.Right)
	}
	rec(b.Root)
}

// IsFull reports whether every non-ε node has exactly two children and
// every ε node is a leaf — the invariant established by Normalize.
func (b *BinaryTree) IsFull() bool {
	ok := true
	b.Walk(func(n *Node) {
		if n.Epsilon {
			if n.Left != nil || n.Right != nil {
				ok = false
			}
			return
		}
		if n.Left == nil || n.Right == nil {
			ok = false
		}
	})
	return ok
}

// String renders the binary tree in a parenthesized (label left right)
// format with "-" for absent children, e.g. "(a (b - -) (c - -))".
// ε nodes render as "ε". Intended for tests and debugging.
func (b *BinaryTree) String() string {
	var sb strings.Builder
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil {
			sb.WriteByte('-')
			return
		}
		if n.Epsilon {
			sb.WriteString("ε")
			return
		}
		sb.WriteByte('(')
		sb.WriteString(n.Label)
		sb.WriteByte(' ')
		rec(n.Left)
		sb.WriteByte(' ')
		rec(n.Right)
		sb.WriteByte(')')
	}
	rec(b.Root)
	return sb.String()
}
