package btree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treesim/internal/tree"
)

func paperT1() *tree.Tree { return tree.MustParse("a(b(c,d),b(c,d),e)") }
func paperT2() *tree.Tree { return tree.MustParse("a(b(c,d,b(e)),c,d,e)") }

// TestFromTreePaperFigure2 checks the left-child/right-sibling structure of
// B(T1) against Fig. 2 of the paper, including the (pre, post) stamps.
func TestFromTreePaperFigure2(t *testing.T) {
	b := FromTree(paperT1())
	r := b.Root
	if r.Label != "a" || r.Pre != 1 || r.Post != 8 {
		t.Fatalf("root = %q (%d,%d)", r.Label, r.Pre, r.Post)
	}
	if r.Right != nil {
		t.Error("root of B(T) must have no right child (roots have no siblings)")
	}
	b1 := r.Left // first b
	if b1.Label != "b" || b1.Pre != 2 || b1.Post != 3 {
		t.Fatalf("first child = %q (%d,%d), want b (2,3)", b1.Label, b1.Pre, b1.Post)
	}
	c1 := b1.Left
	if c1.Label != "c" || c1.Pre != 3 || c1.Post != 1 {
		t.Errorf("c = %q (%d,%d), want c (3,1)", c1.Label, c1.Pre, c1.Post)
	}
	d1 := c1.Right
	if d1.Label != "d" || d1.Pre != 4 || d1.Post != 2 {
		t.Errorf("d = %q (%d,%d), want d (4,2)", d1.Label, d1.Pre, d1.Post)
	}
	b2 := b1.Right // second b, sibling link
	if b2.Label != "b" || b2.Pre != 5 || b2.Post != 6 {
		t.Errorf("second b = %q (%d,%d), want b (5,6)", b2.Label, b2.Pre, b2.Post)
	}
	e := b2.Right
	if e.Label != "e" || e.Pre != 8 || e.Post != 7 {
		t.Errorf("e = %q (%d,%d), want e (8,7)", e.Label, e.Pre, e.Post)
	}
}

func TestNormalizeIsFull(t *testing.T) {
	for _, tr := range []*tree.Tree{paperT1(), paperT2(), tree.MustParse("a")} {
		b := Normalized(tr)
		if !b.IsFull() {
			t.Errorf("normalized B(%s) is not a full binary tree: %s", tr, b)
		}
		if b.Size() != tr.Size() {
			t.Errorf("Size = %d, want %d", b.Size(), tr.Size())
		}
		// Every original node gains exactly 0 ε's... in total, a full
		// binary tree with n internal (original) nodes has n+1 ε leaves.
		if got, want := b.FullSize(), 2*tr.Size()+1; got != want {
			t.Errorf("FullSize = %d, want %d", got, want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	b := FromTree(paperT1())
	b.Normalize()
	full := b.FullSize()
	b.Normalize()
	if b.FullSize() != full {
		t.Error("second Normalize changed the tree")
	}
}

func TestToTreeInverse(t *testing.T) {
	for _, s := range []string{"a", "a(b)", "a(b,c)", "a(b(c,d),b(c,d),e)", "a(b(c,d,b(e)),c,d,e)"} {
		tr := tree.MustParse(s)
		if got := FromTree(tr).ToTree(); !tree.Equal(tr, got) {
			t.Errorf("ToTree(FromTree(%q)) = %q", s, got)
		}
		// Inverse also holds after normalization (ε nodes are ignored).
		if got := Normalized(tr).ToTree(); !tree.Equal(tr, got) {
			t.Errorf("ToTree(Normalized(%q)) = %q", s, got)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	b := FromTree(tree.New(nil))
	if b.Root != nil || b.Size() != 0 || b.Height() != 0 {
		t.Error("empty tree should produce empty binary tree")
	}
	b.Normalize()
	if !b.IsFull() {
		t.Error("empty binary tree is vacuously full")
	}
	if got := b.ToTree(); !got.IsEmpty() {
		t.Error("ToTree of empty should be empty")
	}
}

func randomTree(rng *rand.Rand, n int) *tree.Tree {
	if n <= 0 {
		return tree.New(nil)
	}
	alphabet := []string{"a", "b", "c", "d"}
	nodes := make([]*tree.Node, n)
	for i := range nodes {
		nodes[i] = &tree.Node{Label: alphabet[rng.Intn(len(alphabet))]}
	}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(i)]
		p.Children = append(p.Children, nodes[i])
	}
	return tree.New(nodes[0])
}

// TestRoundTripQuick: the binary representation is lossless on random trees.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, int(size)%60)
		b := Normalized(tr)
		return b.IsFull() && tree.Equal(tr, b.ToTree()) && b.Size() == tr.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestNumberingMatchesTree: the Pre/Post stamps in B(T) equal the original
// tree's preorder and postorder numbering.
func TestNumberingMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		tr := randomTree(rng, 1+rng.Intn(40))
		pos := tr.Number()
		b := FromTree(tr)
		// Collect (pre,post) pairs from both and compare as sets keyed by pre.
		fromB := map[int]int{}
		b.Walk(func(n *Node) {
			if !n.Epsilon {
				fromB[n.Pre] = n.Post
			}
		})
		for _, n := range pos.Nodes {
			if fromB[pos.Pre[n]] != pos.Post[n] {
				t.Fatalf("node %q: B(T) has post %d for pre %d, tree says %d",
					n.Label, fromB[pos.Pre[n]], pos.Pre[n], pos.Post[n])
			}
		}
	}
}

func TestHeight(t *testing.T) {
	// a(b,c): B(T) is a → b → (right) c: height 3 un-normalized.
	b := FromTree(tree.MustParse("a(b,c)"))
	if got := b.Height(); got != 3 {
		t.Errorf("Height = %d, want 3", got)
	}
	b.Normalize()
	if got := b.Height(); got != 4 {
		t.Errorf("normalized Height = %d, want 4", got)
	}
}

func TestIsLeaf(t *testing.T) {
	b := FromTree(tree.MustParse("a(b)"))
	if b.Root.IsLeaf() {
		t.Error("root with a child reported as leaf")
	}
	if !b.Root.Left.IsLeaf() {
		t.Error("childless node not reported as leaf")
	}
	b.Normalize()
	if b.Root.IsLeaf() {
		t.Error("normalized root reported as leaf")
	}
	if !b.Root.Right.IsLeaf() { // the appended ε
		t.Error("ε node should be a leaf")
	}
}

func TestStringRendering(t *testing.T) {
	b := Normalized(tree.MustParse("a(b)"))
	if got := b.String(); got != "(a (b ε ε) ε)" {
		t.Errorf("String = %q", got)
	}
}
