// Package classify implements k-NN classification of tree-structured data
// — one of the database manipulations the paper motivates (Section 1).
// A query tree is assigned the majority class among its k nearest training
// trees under the tree edit distance; neighbor retrieval runs through the
// binary branch filter-and-refine engine, so classification cost is
// dominated by the few exact distances that survive the filter.
package classify

import (
	"context"
	"fmt"
	"sort"

	"treesim/internal/search"
	"treesim/internal/tree"
)

// Classifier is a k-NN classifier over a labeled tree collection.
type Classifier struct {
	ix      *search.Index
	classes []string
	k       int
}

// New builds a classifier from parallel slices of training trees and class
// labels. k is the neighborhood size; filter may be nil (sequential scan).
func New(ts []*tree.Tree, classes []string, k int, filter search.Filter) (*Classifier, error) {
	if len(ts) != len(classes) {
		return nil, fmt.Errorf("classify: %d trees but %d class labels", len(ts), len(classes))
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("classify: empty training set")
	}
	if k < 1 {
		return nil, fmt.Errorf("classify: k must be positive, got %d", k)
	}
	return &Classifier{
		ix:      search.NewIndex(ts, search.WithFilter(filter)),
		classes: classes,
		k:       k,
	}, nil
}

// Prediction is the outcome of classifying one tree.
type Prediction struct {
	Class     string
	Neighbors []search.Result // the k nearest training trees
	Votes     map[string]int  // votes per class among the neighbors
	Stats     search.Stats
}

// Predict classifies t by majority vote among its k nearest neighbors.
// Ties are broken by the smaller summed distance, then lexicographically,
// so prediction is deterministic.
func (c *Classifier) Predict(t *tree.Tree) Prediction {
	nn, stats, _ := c.ix.KNN(context.Background(), t, c.k)
	votes := make(map[string]int)
	distSum := make(map[string]int)
	for _, r := range nn {
		cls := c.classes[r.ID]
		votes[cls]++
		distSum[cls] += r.Dist
	}
	best := ""
	for cls := range votes {
		if best == "" || better(votes, distSum, cls, best) {
			best = cls
		}
	}
	return Prediction{Class: best, Neighbors: nn, Votes: votes, Stats: stats}
}

func better(votes, distSum map[string]int, a, b string) bool {
	switch {
	case votes[a] != votes[b]:
		return votes[a] > votes[b]
	case distSum[a] != distSum[b]:
		return distSum[a] < distSum[b]
	default:
		return a < b
	}
}

// Evaluation summarizes classifier accuracy over a labeled test set.
type Evaluation struct {
	Total     int
	Correct   int
	Confusion map[string]map[string]int // Confusion[truth][predicted]
	Verified  int                       // exact distances computed in total
}

// Accuracy returns the fraction of correct predictions.
func (e Evaluation) Accuracy() float64 {
	if e.Total == 0 {
		return 0
	}
	return float64(e.Correct) / float64(e.Total)
}

// Classes lists the class labels appearing in the evaluation, sorted.
func (e Evaluation) Classes() []string {
	set := map[string]bool{}
	for truth, row := range e.Confusion {
		set[truth] = true
		for pred := range row {
			set[pred] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Evaluate classifies every test tree and tallies accuracy and the
// confusion matrix.
func (c *Classifier) Evaluate(ts []*tree.Tree, truth []string) (Evaluation, error) {
	if len(ts) != len(truth) {
		return Evaluation{}, fmt.Errorf("classify: %d test trees but %d labels", len(ts), len(truth))
	}
	ev := Evaluation{Confusion: make(map[string]map[string]int)}
	for i, t := range ts {
		p := c.Predict(t)
		ev.Total++
		ev.Verified += p.Stats.Verified
		if p.Class == truth[i] {
			ev.Correct++
		}
		row := ev.Confusion[truth[i]]
		if row == nil {
			row = make(map[string]int)
			ev.Confusion[truth[i]] = row
		}
		row[p.Class]++
	}
	return ev, nil
}
