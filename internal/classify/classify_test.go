package classify

import (
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/search"
	"treesim/internal/tree"
)

// chainData builds c labeled mutation chains of length n each, returning
// training trees/labels and held-out test trees/labels (later chain
// members, further from the seed).
func chainData(c, n int, seed int64) (train []*tree.Tree, trainY []string, test []*tree.Tree, testY []string) {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 0.5, SizeMean: 25, SizeStd: 2, Labels: 8, Decay: 0.08}
	g := datagen.New(spec, seed)
	for ci := 0; ci < c; ci++ {
		label := string(rune('A' + ci))
		cur := g.Seed()
		for i := 0; i < n; i++ {
			train = append(train, cur)
			trainY = append(trainY, label)
			cur = g.Derive(cur)
		}
		// Two more mutation steps beyond the training chain.
		test = append(test, g.Derive(cur))
		testY = append(testY, label)
	}
	return
}

func TestClassifierAccuracy(t *testing.T) {
	train, trainY, test, testY := chainData(5, 25, 81)
	c, err := New(train, trainY, 3, search.NewBiBranch())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := c.Evaluate(test, testY)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total != 5 {
		t.Fatalf("Total = %d", ev.Total)
	}
	// Chains are well separated; classification should be perfect.
	if ev.Accuracy() < 0.99 {
		t.Errorf("accuracy %.2f, expected 1.0 on well-separated chains (confusion %v)",
			ev.Accuracy(), ev.Confusion)
	}
	if ev.Verified == 0 || ev.Verified > ev.Total*len(train) {
		t.Errorf("verified count implausible: %d", ev.Verified)
	}
}

func TestPredictDeterministicTieBreak(t *testing.T) {
	// Two classes, equidistant neighbors: prediction must be stable.
	train := []*tree.Tree{
		tree.MustParse("a(b)"), tree.MustParse("a(c)"),
	}
	c, err := New(train, []string{"beta", "alpha"}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Query at distance 1 from both.
	p := c.Predict(tree.MustParse("a(d)"))
	if p.Class != "alpha" { // tie on votes and distance → lexicographic
		t.Errorf("tie broke to %q, want alpha", p.Class)
	}
	if p.Votes["alpha"] != 1 || p.Votes["beta"] != 1 {
		t.Errorf("votes %v", p.Votes)
	}
}

func TestPredictSelf(t *testing.T) {
	train, trainY, _, _ := chainData(3, 10, 82)
	c, err := New(train, trainY, 1, search.NewBiBranch())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(train); i += 7 {
		p := c.Predict(train[i])
		if p.Class != trainY[i] {
			t.Errorf("training member %d classified as %q, want %q", i, p.Class, trainY[i])
		}
		if p.Neighbors[0].Dist != 0 {
			t.Errorf("nearest neighbor of a training member should be itself")
		}
	}
}

func TestPredictVoteAndDistanceTieBreaks(t *testing.T) {
	// Class "far" has more votes; class "near" has fewer votes: majority
	// must win regardless of distance.
	train := []*tree.Tree{
		tree.MustParse("a(b)"), tree.MustParse("a(c)"), // far ×2
		tree.MustParse("a(b,c,d,e)"), // near ×1 (will be distance 3)
	}
	c, err := New(train, []string{"far", "far", "near"}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Predict(tree.MustParse("a(x)"))
	if p.Class != "far" {
		t.Errorf("majority lost: %q (votes %v)", p.Class, p.Votes)
	}

	// Equal votes: smaller summed distance wins over lexicographic order.
	train2 := []*tree.Tree{
		tree.MustParse("q(w)"),       // class "zzz", distance 0 to query
		tree.MustParse("q(a,b,c,d)"), // class "aaa", distance 4
	}
	c2, err := New(train2, []string{"zzz", "aaa"}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2 := c2.Predict(tree.MustParse("q(w)"))
	if p2.Class != "zzz" {
		t.Errorf("distance tie-break lost: %q", p2.Class)
	}
}

func TestNewValidation(t *testing.T) {
	ts := []*tree.Tree{tree.MustParse("a")}
	if _, err := New(ts, []string{"x", "y"}, 1, nil); err == nil {
		t.Error("mismatched labels accepted")
	}
	if _, err := New(nil, nil, 1, nil); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := New(ts, []string{"x"}, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestEvaluateValidation(t *testing.T) {
	ts := []*tree.Tree{tree.MustParse("a")}
	c, _ := New(ts, []string{"x"}, 1, nil)
	if _, err := c.Evaluate(ts, nil); err == nil {
		t.Error("mismatched test labels accepted")
	}
}

func TestEvaluationHelpers(t *testing.T) {
	ev := Evaluation{
		Total: 4, Correct: 3,
		Confusion: map[string]map[string]int{
			"A": {"A": 2},
			"B": {"B": 1, "A": 1},
		},
	}
	if ev.Accuracy() != 0.75 {
		t.Errorf("accuracy %f", ev.Accuracy())
	}
	cls := ev.Classes()
	if len(cls) != 2 || cls[0] != "A" || cls[1] != "B" {
		t.Errorf("classes %v", cls)
	}
	if (Evaluation{}).Accuracy() != 0 {
		t.Error("empty evaluation accuracy should be 0")
	}
}
