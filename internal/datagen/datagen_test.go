package datagen

import (
	"math"
	"testing"

	"treesim/internal/tree"
)

func TestSpecRoundTrip(t *testing.T) {
	spec := Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: 50, SizeStd: 2, Labels: 8, Decay: 0.05}
	s := spec.String()
	if s != "N{4,0.5}N{50,2}L8D0.05" {
		t.Errorf("String = %q", s)
	}
	got, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Errorf("ParseSpec(%q) = %+v, want %+v", s, got, spec)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"N{4,0.5}",
		"N{4,0.5}N{50,2}L8",      // missing decay
		"N{4,0.5}N{50,2}L0D0.05", // zero labels
		"N{0,0.5}N{50,2}L8D0.05", // zero fanout
		"N{4,0.5}N{50,2}L8D1.5",  // decay > 1
		"garbage",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) unexpectedly succeeded", s)
		}
	}
}

func TestSeedSizeDistribution(t *testing.T) {
	spec := Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: 50, SizeStd: 2, Labels: 8, Decay: 0.05}
	g := New(spec, 1)
	sum, n := 0.0, 200
	for i := 0; i < n; i++ {
		s := g.Seed()
		size := s.Size()
		sum += float64(size)
		// "most trees should have a size range from 46 to 54" (§5.1) —
		// allow generous slack for the breadth-first cutoff.
		if size < 40 || size > 60 {
			t.Errorf("seed size %d outside expected envelope", size)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid seed: %v", err)
		}
	}
	mean := sum / float64(n)
	if math.Abs(mean-50) > 3 {
		t.Errorf("mean seed size %.1f, want ≈50", mean)
	}
}

func TestSeedUsesAllLabels(t *testing.T) {
	spec := Spec{FanoutMean: 4, FanoutStd: 0.5, SizeMean: 50, SizeStd: 2, Labels: 8, Decay: 0.05}
	g := New(spec, 2)
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		for l := range g.Seed().LabelCounts() {
			seen[l] = true
		}
	}
	if len(seen) != 8 {
		t.Errorf("saw %d labels, want 8: %v", len(seen), seen)
	}
	for l := range seen {
		if l != Label(0) && l != Label(1) && l != Label(2) && l != Label(3) &&
			l != Label(4) && l != Label(5) && l != Label(6) && l != Label(7) {
			t.Errorf("unexpected label %q", l)
		}
	}
}

func TestDeterminism(t *testing.T) {
	spec := Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 20, SizeStd: 3, Labels: 4, Decay: 0.05}
	a := New(spec, 99).Dataset(20, 3)
	b := New(spec, 99).Dataset(20, 3)
	for i := range a {
		if !tree.Equal(a[i], b[i]) {
			t.Fatalf("dataset not deterministic at tree %d", i)
		}
	}
	c := New(spec, 100).Dataset(20, 3)
	same := true
	for i := range a {
		if !tree.Equal(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestDeriveKeepsValidity(t *testing.T) {
	spec := Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 25, SizeStd: 3, Labels: 4, Decay: 0.3}
	g := New(spec, 5)
	cur := g.Seed()
	for i := 0; i < 30; i++ {
		next := g.Derive(cur)
		if err := next.Validate(); err != nil {
			t.Fatalf("derived tree %d invalid: %v", i, err)
		}
		if next.IsEmpty() {
			t.Fatalf("derived tree %d empty", i)
		}
		// The original must not be mutated.
		if err := cur.Validate(); err != nil {
			t.Fatalf("source tree corrupted by Derive: %v", err)
		}
		cur = next
	}
}

func TestDatasetShape(t *testing.T) {
	spec := Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 20, SizeStd: 3, Labels: 4, Decay: 0.05}
	ds := New(spec, 7).Dataset(50, 5)
	if len(ds) != 50 {
		t.Fatalf("Dataset returned %d trees", len(ds))
	}
	for i, tr := range ds {
		if tr.IsEmpty() {
			t.Errorf("tree %d is empty", i)
		}
	}
	// Degenerate parameters.
	if got := New(spec, 7).Dataset(3, 10); len(got) != 3 {
		t.Errorf("seeds>n: got %d trees", len(got))
	}
	if got := New(spec, 7).Dataset(4, 0); len(got) != 4 {
		t.Errorf("seeds=0: got %d trees", len(got))
	}
}

func TestRandomEditsZero(t *testing.T) {
	spec := Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 15, SizeStd: 3, Labels: 4, Decay: 0.05}
	g := New(spec, 9)
	t1 := g.Seed()
	t2 := g.RandomEdits(t1, 0)
	if !tree.Equal(t1, t2) {
		t.Error("zero edits changed the tree")
	}
}

func TestLabelNaming(t *testing.T) {
	if Label(0) != "l0" || Label(63) != "l63" {
		t.Error("Label naming changed")
	}
}

func TestGeneratorSpecAccessor(t *testing.T) {
	spec := Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 10, SizeStd: 2, Labels: 4, Decay: 0.1}
	if got := New(spec, 1).Spec(); got != spec {
		t.Errorf("Spec() = %+v", got)
	}
}

func TestNewPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid spec accepted")
		}
	}()
	New(Spec{}, 1)
}

func TestRandomEditsValidAndDeterministic(t *testing.T) {
	spec := Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 18, SizeStd: 3, Labels: 5, Decay: 0.1}
	a := New(spec, 77)
	b := New(spec, 77)
	base := a.Seed()
	_ = b.Seed()
	for k := 0; k < 12; k++ {
		ea := a.RandomEdits(base, k)
		eb := b.RandomEdits(base, k)
		if !tree.Equal(ea, eb) {
			t.Fatalf("RandomEdits not deterministic at k=%d", k)
		}
		if err := ea.Validate(); err != nil {
			t.Fatalf("k=%d produced invalid tree: %v", k, err)
		}
		if !tree.Equal(base, a.RandomEdits(base, 0)) {
			t.Fatal("RandomEdits mutated its input")
		}
	}
}

func TestRandomEditsOnTinyTree(t *testing.T) {
	spec := Spec{FanoutMean: 2, FanoutStd: 0.5, SizeMean: 1, SizeStd: 0, Labels: 2, Decay: 0.1}
	g := New(spec, 3)
	single := tree.MustParse("l0")
	// Heavy mutation on a single-node tree must stay valid and non-empty
	// recovery must work when deletions empty it.
	for trial := 0; trial < 30; trial++ {
		out := g.RandomEdits(single, 10)
		if err := out.Validate(); err != nil {
			t.Fatalf("invalid: %v", err)
		}
	}
}
