package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"treesim/internal/tree"
)

// Generator produces synthetic trees from a Spec. It is deterministic for a
// given seed and not safe for concurrent use.
type Generator struct {
	spec Spec
	rng  *rand.Rand
}

// New returns a generator for the spec with a deterministic random source.
func New(spec Spec, seed int64) *Generator {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Generator{spec: spec, rng: rand.New(rand.NewSource(seed))}
}

// Spec returns the generator's dataset specification.
func (g *Generator) Spec() Spec { return g.spec }

// Label returns the i-th label of the alphabet ("l0", "l1", ...).
func Label(i int) string { return fmt.Sprintf("l%d", i) }

func (g *Generator) randLabel() string {
	return Label(g.rng.Intn(g.spec.Labels))
}

// normalInt samples round(Normal(mean, std)) clamped to [lo, ∞).
func (g *Generator) normalInt(mean, std float64, lo int) int {
	v := int(math.Round(g.rng.NormFloat64()*std + mean))
	if v < lo {
		v = lo
	}
	return v
}

// Seed grows one seed tree: the maximum size is sampled from the size
// distribution, then the tree grows breadth first, each processed node
// receiving a fanout sampled from the fanout distribution until the size
// budget is exhausted (Section 5).
func (g *Generator) Seed() *tree.Tree {
	maxSize := g.normalInt(g.spec.SizeMean, g.spec.SizeStd, 1)
	root := &tree.Node{Label: g.randLabel()}
	size := 1
	queue := []*tree.Node{root}
	for len(queue) > 0 && size < maxSize {
		n := queue[0]
		queue = queue[1:]
		fanout := g.normalInt(g.spec.FanoutMean, g.spec.FanoutStd, 0)
		for i := 0; i < fanout && size < maxSize; i++ {
			c := &tree.Node{Label: g.randLabel()}
			n.Children = append(n.Children, c)
			queue = append(queue, c)
			size++
		}
	}
	return tree.New(root)
}

// Derive returns a new tree obtained from t by visiting every node and,
// with probability Spec.Decay, applying one equiprobable edit operation
// (insert a child adopting a random run of the node's children, delete the
// node, or relabel it). t itself is not modified.
func (g *Generator) Derive(t *tree.Tree) *tree.Tree {
	out := t.Clone()
	// Snapshot the nodes up front; nodes deleted by an earlier operation
	// simply fail their ErrNotInTree check and are skipped.
	nodes := out.PreOrder()
	for _, n := range nodes {
		if g.rng.Float64() >= g.spec.Decay {
			continue
		}
		switch g.rng.Intn(3) {
		case 0: // insert under n
			deg := len(n.Children)
			pos := g.rng.Intn(deg + 1)
			count := 0
			if deg-pos > 0 {
				count = g.rng.Intn(deg - pos + 1)
			}
			_, _ = tree.Insert(out, n, pos, count, g.randLabel())
		case 1: // delete n (skipped when n is a multi-child root or gone)
			_ = tree.Delete(out, n)
		default: // relabel n
			n.Label = g.randLabel()
		}
	}
	if out.IsEmpty() {
		// Deletions emptied the tree; keep datasets free of empty trees.
		out.Root = &tree.Node{Label: g.randLabel()}
	}
	return out
}

// Dataset produces n trees from the given number of seed trees. The first
// seeds trees are fresh seeds; every further tree is derived from the tree
// generated (seeds) positions earlier, so each seed starts a mutation chain
// whose members drift apart gradually — the distance structure the paper's
// sensitivity experiments rely on.
func (g *Generator) Dataset(n, seeds int) []*tree.Tree {
	if seeds < 1 {
		seeds = 1
	}
	if seeds > n {
		seeds = n
	}
	out := make([]*tree.Tree, 0, n)
	for i := 0; i < seeds; i++ {
		out = append(out, g.Seed())
	}
	for len(out) < n {
		out = append(out, g.Derive(out[len(out)-seeds]))
	}
	return out
}

// RandomEdits applies exactly k random valid edit operations to a clone of
// t and returns it. Unlike Derive, every operation is applied to the
// current state of the tree, so the edit distance between t and the result
// is at most k — the property the lower-bound tests are built on.
func (g *Generator) RandomEdits(t *tree.Tree, k int) *tree.Tree {
	out := t.Clone()
	for i := 0; i < k; i++ {
		if out.IsEmpty() {
			out.Root = &tree.Node{Label: g.randLabel()}
			continue // counted as one insert
		}
		nodes := out.PreOrder()
		n := nodes[g.rng.Intn(len(nodes))]
		switch g.rng.Intn(3) {
		case 0:
			deg := len(n.Children)
			pos := g.rng.Intn(deg + 1)
			count := 0
			if deg-pos > 0 {
				count = g.rng.Intn(deg - pos + 1)
			}
			_, _ = tree.Insert(out, n, pos, count, g.randLabel())
		case 1:
			if n == out.Root && len(n.Children) > 1 {
				n.Label = g.randLabel() // root with several children: relabel instead
			} else {
				_ = tree.Delete(out, n)
			}
		default:
			n.Label = g.randLabel()
		}
	}
	return out
}
