// Package datagen implements the synthetic tree generator of Section 5 of
// the paper (itself modeled on Zaki's tree generator, reference [21],
// without the web-browsing simulation).
//
// A dataset is described by a Spec written in the paper's notation, e.g.
//
//	N{4,0.5}N{50,2}L8D0.05
//
// meaning: node fanout ~ Normal(4, 0.5), tree size ~ Normal(50, 2), 8
// distinct labels, and a decay factor of 0.05. Seed trees are grown breadth
// first up to a sampled maximum size with uniformly sampled labels; further
// trees are derived by visiting each node of an existing tree and, with
// probability equal to the decay factor, applying an equiprobable insert /
// delete / relabel edit, each derived tree seeding the next generation.
package datagen

import (
	"fmt"
	"regexp"
	"strconv"
)

// Spec holds the four parameter groups of the Section 5 generator.
type Spec struct {
	FanoutMean float64 // mean node fanout
	FanoutStd  float64 // fanout standard deviation
	SizeMean   float64 // mean tree size (node count)
	SizeStd    float64 // size standard deviation
	Labels     int     // number of distinct labels in the dataset
	Decay      float64 // per-node mutation probability when deriving trees
}

// String renders the spec in the paper's notation,
// e.g. "N{4,0.5}N{50,2}L8D0.05".
func (s Spec) String() string {
	return fmt.Sprintf("N{%g,%g}N{%g,%g}L%dD%g",
		s.FanoutMean, s.FanoutStd, s.SizeMean, s.SizeStd, s.Labels, s.Decay)
}

var specRE = regexp.MustCompile(
	`^N\{([0-9.]+),([0-9.]+)\}N\{([0-9.]+),([0-9.]+)\}L([0-9]+)D([0-9.]+)$`)

// ParseSpec parses the paper's dataset notation produced by Spec.String.
func ParseSpec(s string) (Spec, error) {
	m := specRE.FindStringSubmatch(s)
	if m == nil {
		return Spec{}, fmt.Errorf("datagen: malformed spec %q (want N{f,σ}N{s,σ}LyDz)", s)
	}
	f := func(i int) float64 {
		v, _ := strconv.ParseFloat(m[i], 64)
		return v
	}
	lab, _ := strconv.Atoi(m[5])
	spec := Spec{
		FanoutMean: f(1), FanoutStd: f(2),
		SizeMean: f(3), SizeStd: f(4),
		Labels: lab, Decay: f(6),
	}
	return spec, spec.Validate()
}

// Validate checks that the spec parameters are usable.
func (s Spec) Validate() error {
	switch {
	case s.FanoutMean <= 0:
		return fmt.Errorf("datagen: fanout mean must be positive, got %g", s.FanoutMean)
	case s.SizeMean < 1:
		return fmt.Errorf("datagen: size mean must be at least 1, got %g", s.SizeMean)
	case s.FanoutStd < 0 || s.SizeStd < 0:
		return fmt.Errorf("datagen: standard deviations must be non-negative")
	case s.Labels < 1:
		return fmt.Errorf("datagen: need at least one label, got %d", s.Labels)
	case s.Decay < 0 || s.Decay > 1:
		return fmt.Errorf("datagen: decay must be a probability, got %g", s.Decay)
	}
	return nil
}
