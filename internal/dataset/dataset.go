// Package dataset loads and saves collections of trees. Two on-disk forms
// are supported: the native line format (one tree per line in the
// canonical text encoding of package tree, with #-comments) and
// directories of XML documents (one tree per file).
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"treesim/internal/tree"
	"treesim/internal/xmltree"
)

// Save writes the dataset in the line format: a header comment followed by
// one canonical tree encoding per line.
func Save(w io.Writer, ts []*tree.Tree) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# treesim dataset: %d trees\n", len(ts))
	for i, t := range ts {
		if t.IsEmpty() {
			return fmt.Errorf("dataset: tree %d is empty", i)
		}
		bw.WriteString(t.String())
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// SaveFile writes the dataset to a file in the line format.
func SaveFile(path string, ts []*tree.Tree) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, ts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a dataset in the line format. Blank lines and lines starting
// with '#' are skipped.
func Load(r io.Reader) ([]*tree.Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var out []*tree.Tree
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := tree.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
		}
		if t.IsEmpty() {
			return nil, fmt.Errorf("dataset: line %d: empty tree", lineNo)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return out, nil
}

// LoadFile reads a dataset file in the line format.
func LoadFile(path string) ([]*tree.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadXMLDir parses every *.xml file in dir (sorted by name) into one tree
// each, using the given conversion options.
func LoadXMLDir(dir string, opts xmltree.Options) ([]*tree.Tree, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(strings.ToLower(e.Name()), ".xml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	ts := make([]*tree.Tree, 0, len(names))
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		t, err := xmltree.Parse(f, opts)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: %s: %w", name, err)
		}
		ts = append(ts, t)
	}
	return ts, names, nil
}
