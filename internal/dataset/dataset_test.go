package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/tree"
	"treesim/internal/xmltree"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 15, SizeStd: 4, Labels: 5, Decay: 0.1}
	ts := datagen.New(spec, 31).Dataset(40, 4)

	var sb strings.Builder
	if err := Save(&sb, ts); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("loaded %d trees, want %d", len(got), len(ts))
	}
	for i := range ts {
		if !tree.Equal(ts[i], got[i]) {
			t.Fatalf("tree %d changed in round trip", i)
		}
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\na(b)\n   \n# more\nc\n"
	got, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].String() != "a(b)" || got[1].String() != "c" {
		t.Errorf("Load = %v", got)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("a(b\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := Load(strings.NewReader("a)\n")); err == nil {
		t.Error("trailing junk accepted")
	}
}

func TestSaveRejectsEmptyTree(t *testing.T) {
	var sb strings.Builder
	if err := Save(&sb, []*tree.Tree{tree.New(nil)}); err == nil {
		t.Error("empty tree saved")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.trees")
	ts := []*tree.Tree{tree.MustParse("a(b,c)"), tree.MustParse("x")}
	if err := SaveFile(path, ts); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !tree.Equal(got[0], ts[0]) || !tree.Equal(got[1], ts[1]) {
		t.Error("file round trip failed")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadXMLDir(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"b.xml": `<b><x/></b>`,
		"a.xml": `<a>hello</a>`,
		"c.txt": "not xml",
		"d.xml": `<d/>`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ts, names, err := LoadXMLDir(dir, xmltree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("loaded %d trees, want 3", len(ts))
	}
	// Sorted by filename: a, b, d.
	if names[0] != "a.xml" || names[1] != "b.xml" || names[2] != "d.xml" {
		t.Errorf("names = %v", names)
	}
	if !tree.Equal(ts[0], tree.MustParse("a(hello)")) {
		t.Errorf("a.xml parsed to %s", ts[0])
	}

	// A malformed XML file fails the whole load with its name in the error.
	if err := os.WriteFile(filepath.Join(dir, "bad.xml"), []byte("<oops>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadXMLDir(dir, xmltree.DefaultOptions()); err == nil ||
		!strings.Contains(err.Error(), "bad.xml") {
		t.Errorf("malformed file not reported: %v", err)
	}
}

func TestLoadXMLDirMissing(t *testing.T) {
	if _, _, err := LoadXMLDir("/nonexistent-path-xyz", xmltree.DefaultOptions()); err == nil {
		t.Error("missing dir accepted")
	}
}
