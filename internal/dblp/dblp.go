// Package dblp synthesizes DBLP-like bibliographic records as labeled
// trees. The paper's real-data experiments (Figs. 13–15) sample 2000
// records from the DBLP XML repository; offline we generate records with
// the same relevant characteristics (see DESIGN.md, "Substitutions"):
//
//   - bushy, shallow trees: a record element whose field elements each
//     carry one text leaf (height 3), averaging ≈10 nodes — the paper
//     reports an average of 10.15 nodes and average depth 2.902;
//   - a small element vocabulary (article/inproceedings/author/title/...)
//     with high-cardinality text labels;
//   - strong clustering: records of one venue share year/venue text and
//     draw authors from that venue's community, so intra-venue edit
//     distances are small — the paper reports an average pairwise distance
//     of ≈5 and notes "the DBLP data clustered very well".
package dblp

import (
	"fmt"
	"math/rand"

	"treesim/internal/tree"
)

// Generator produces DBLP-like records. Deterministic per seed; not safe
// for concurrent use.
type Generator struct {
	rng    *rand.Rand
	venues []venue
}

type venue struct {
	name    string
	kind    string // "article" (journal) or "inproceedings" (conference)
	field   string // "journal" or "booktitle"
	authors []string
	words   []string
}

// New returns a generator with a fixed universe of venues, author
// communities and topic vocabularies derived from the seed.
func New(seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{rng: rng}
	for v := 0; v < 20; v++ {
		kind, field := "article", "journal"
		if v%2 == 1 {
			kind, field = "inproceedings", "booktitle"
		}
		ve := venue{
			name:  fmt.Sprintf("venue-%d", v),
			kind:  kind,
			field: field,
		}
		// Each venue has a community of authors drawn from a global pool,
		// overlapping with neighboring venues.
		base := v * 7
		for a := 0; a < 18; a++ {
			ve.authors = append(ve.authors, authorName(base+a))
		}
		// And a topical vocabulary overlapping with neighbors.
		for w := 0; w < 10; w++ {
			ve.words = append(ve.words, topicWord(v*4+w))
		}
		g.venues = append(g.venues, ve)
	}
	return g
}

func authorName(i int) string {
	first := []string{"Alice", "Bob", "Chen", "Dana", "Erik", "Fatima", "Grace", "Hiro", "Ivan", "Jing"}
	last := []string{"Schmidt", "Tanaka", "Okafor", "Novak", "Rossi", "Larsen", "Weber", "Silva", "Kumar", "Park", "Moreau", "Haddad", "Olsen", "Dube"}
	return first[i%len(first)] + " " + last[(i/len(first))%len(last)]
}

func topicWord(i int) string {
	words := []string{
		"query", "index", "stream", "join", "tree", "graph", "cache",
		"storage", "transaction", "schema", "similarity", "cluster",
		"mining", "optimization", "distributed", "parallel", "spatial",
		"temporal", "approximate", "adaptive", "scalable", "secure",
		"relational", "semistructured", "xml", "web", "sensor", "mobile",
	}
	return words[i%len(words)]
}

// Record generates one bibliographic record tree from a random venue.
func (g *Generator) Record() *tree.Tree {
	return g.record(g.venues[g.rng.Intn(len(g.venues))])
}

// record generates one bibliographic record tree for the given venue: the
// record element with author(s), title, year and venue fields (plus
// occasional pages/volume), each field carrying one text leaf.
func (g *Generator) record(v venue) *tree.Tree {
	root := &tree.Node{Label: v.kind}
	field := func(name, text string) {
		root.Children = append(root.Children,
			&tree.Node{Label: name, Children: []*tree.Node{{Label: text}}})
	}
	// Author counts concentrate on 2 so that unrelated records mostly
	// share their shape and differ in text relabels only — that is what
	// gives the paper's DBLP sample its small average pairwise distance
	// (≈5 on ≈10-node records).
	nAuthors := 2
	switch r := g.rng.Float64(); {
	case r < 0.25:
		nAuthors = 1
	case r > 0.75:
		nAuthors = 3
	}
	for a := 0; a < nAuthors; a++ {
		field("author", v.authors[g.rng.Intn(len(v.authors))])
	}
	field("title", g.title(v))
	// Venue years cluster tightly.
	field("year", fmt.Sprintf("%d", 1998+g.rng.Intn(7)))
	field(v.field, v.name)
	if g.rng.Float64() < 0.25 {
		field("pages", fmt.Sprintf("%d-%d", 100+g.rng.Intn(400), 110+g.rng.Intn(420)))
	}
	if v.kind == "article" && g.rng.Float64() < 0.15 {
		field("volume", fmt.Sprintf("%d", 1+g.rng.Intn(30)))
	}
	return tree.New(root)
}

func (g *Generator) title(v venue) string {
	n := 2 + g.rng.Intn(3)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += v.words[g.rng.Intn(len(v.words))]
	}
	return s
}

// Dataset generates n records the way a slice of the real DBLP XML looks:
// in venue blocks. Records of one venue share the venue text, draw their
// years from a narrow window and their authors from the venue community,
// so intra-block edit distances are small; a fraction of records are near
// duplicates of earlier block members (extended versions, errata,
// cross-listings). This is what makes the paper's DBLP sample "cluster
// very well" (Section 5.2) with an average pairwise distance of ≈5 and
// very small k-NN radii.
func (g *Generator) Dataset(n int) []*tree.Tree {
	out := make([]*tree.Tree, 0, n)
	for len(out) < n {
		v := g.venues[g.rng.Intn(len(g.venues))]
		block := 20 + g.rng.Intn(41)
		blockStart := len(out)
		for b := 0; b < block && len(out) < n; b++ {
			if len(out) > blockStart && g.rng.Float64() < 0.45 {
				src := out[blockStart+g.rng.Intn(len(out)-blockStart)]
				out = append(out, g.Variant(src))
				continue
			}
			out = append(out, g.record(v))
		}
	}
	return out
}

// Variant returns a near duplicate of a record: one to three small field
// perturbations (retitle/redate/swap an author, drop or add an optional
// field).
func (g *Generator) Variant(t *tree.Tree) *tree.Tree {
	out := t.Clone()
	edits := 1
	if g.rng.Float64() < 0.3 {
		edits = 2
	}
	for e := 0; e < edits; e++ {
		fields := out.Root.Children
		if len(fields) == 0 {
			break
		}
		f := fields[g.rng.Intn(len(fields))]
		switch {
		case len(f.Children) == 1 && g.rng.Float64() < 0.7:
			// Perturb the field text.
			switch f.Label {
			case "year":
				f.Children[0].Label = fmt.Sprintf("%d", 1998+g.rng.Intn(7))
			case "author":
				v := g.venues[g.rng.Intn(len(g.venues))]
				f.Children[0].Label = v.authors[g.rng.Intn(len(v.authors))]
			case "pages", "volume":
				f.Children[0].Label = fmt.Sprintf("%d", 1+g.rng.Intn(500))
			default:
				f.Children[0].Label += "s" // a spelling-level change
			}
		case f.Label == "pages" || f.Label == "volume":
			// Drop the optional field subtree (field element + its text).
			kids := out.Root.Children
			for i, c := range kids {
				if c == f {
					out.Root.Children = append(kids[:i:i], kids[i+1:]...)
					break
				}
			}
		default:
			// Add an optional field at the end.
			_, _ = tree.Insert(out, out.Root, len(out.Root.Children), 0, "ee")
		}
	}
	return out
}

// Stats returns the average node count and the average height of the
// trees — the two shape numbers the paper reports for its DBLP sample
// (10.15 nodes, depth 2.902).
func Stats(ts []*tree.Tree) (avgSize, avgHeight float64) {
	if len(ts) == 0 {
		return 0, 0
	}
	var size, height int
	for _, t := range ts {
		size += t.Size()
		height += t.Height()
	}
	n := float64(len(ts))
	return float64(size) / n, float64(height) / n
}
