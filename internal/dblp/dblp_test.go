package dblp

import (
	"math/rand"
	"testing"

	"treesim/internal/editdist"
	"treesim/internal/tree"
)

func TestRecordShape(t *testing.T) {
	g := New(1)
	for i := 0; i < 50; i++ {
		r := g.Record()
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
		root := r.Root
		if root.Label != "article" && root.Label != "inproceedings" {
			t.Errorf("unexpected record type %q", root.Label)
		}
		// Every field is an element with exactly one text leaf.
		authors := 0
		hasTitle, hasYear, hasVenue := false, false, false
		for _, f := range root.Children {
			if f.Label != "ee" && (len(f.Children) != 1 || !f.Children[0].IsLeaf()) {
				t.Errorf("field %q not element+text", f.Label)
			}
			switch f.Label {
			case "author":
				authors++
			case "title":
				hasTitle = true
			case "year":
				hasYear = true
			case "journal", "booktitle":
				hasVenue = true
			}
		}
		if authors < 1 || authors > 3 || !hasTitle || !hasYear || !hasVenue {
			t.Errorf("record missing mandatory fields: %s", r)
		}
		if root.Label == "article" {
			for _, f := range root.Children {
				if f.Label == "booktitle" {
					t.Error("article with booktitle")
				}
			}
		}
	}
}

// TestDatasetCalibration: the synthetic DBLP sample matches the statistics
// the paper reports for its real sample — ≈10 nodes per record, height 3,
// clustered with small average pairwise distance (paper: 10.15 / 2.902 /
// 5.031).
func TestDatasetCalibration(t *testing.T) {
	ts := New(2).Dataset(800)
	if len(ts) != 800 {
		t.Fatalf("dataset size %d", len(ts))
	}
	avgSize, avgHeight := Stats(ts)
	if avgSize < 8 || avgSize > 14 {
		t.Errorf("avg size %.2f outside [8,14]", avgSize)
	}
	if avgHeight < 2.7 || avgHeight > 3.2 {
		t.Errorf("avg height %.2f outside [2.7,3.2]", avgHeight)
	}
	// Sampled average pairwise edit distance in the paper's ballpark.
	rng := rand.New(rand.NewSource(3))
	sum, n := 0, 300
	for i := 0; i < n; i++ {
		a, b := ts[rng.Intn(len(ts))], ts[rng.Intn(len(ts))]
		sum += editdist.Distance(a, b)
	}
	avg := float64(sum) / float64(n)
	if avg < 3 || avg > 9 {
		t.Errorf("avg pairwise distance %.2f outside [3,9] (paper: 5.03)", avg)
	}
}

// TestClustering: variants stay close to their source; unrelated records
// from different venues are farther away on average.
func TestVariantsAreNear(t *testing.T) {
	g := New(5)
	rng := rand.New(rand.NewSource(7))
	base := g.Record()
	farSum, nearSum := 0, 0
	const n = 30
	for i := 0; i < n; i++ {
		v := g.Variant(base)
		if err := v.Validate(); err != nil {
			t.Fatalf("invalid variant: %v", err)
		}
		nearSum += editdist.Distance(base, v)
		farSum += editdist.Distance(base, g.Record())
		_ = rng
	}
	if nearSum >= farSum {
		t.Errorf("variants (total dist %d) not closer than unrelated records (%d)",
			nearSum, farSum)
	}
	if avg := float64(nearSum) / n; avg > 4.5 {
		t.Errorf("variant average distance %.2f too large", avg)
	}
}

func TestVariantDoesNotMutateSource(t *testing.T) {
	g := New(8)
	base := g.Record()
	snapshot := base.String()
	for i := 0; i < 10; i++ {
		g.Variant(base)
	}
	if base.String() != snapshot {
		t.Error("Variant mutated its source record")
	}
}

func TestDeterminism(t *testing.T) {
	a := New(42).Dataset(50)
	b := New(42).Dataset(50)
	for i := range a {
		if !tree.Equal(a[i], b[i]) {
			t.Fatalf("dataset not deterministic at record %d", i)
		}
	}
}

func TestStatsEmpty(t *testing.T) {
	s, h := Stats(nil)
	if s != 0 || h != 0 {
		t.Error("Stats of empty dataset should be zero")
	}
}
