package editdist

import "treesim/internal/tree"

// Threshold-bounded verification: a cutoff-aware variant of the
// Zhang–Shasha program for callers that only need a yes/no against a known
// threshold (the refine stage of similarity search: τ for range queries,
// the running k-th-best for k-NN). Three mechanisms, in escalating cost:
//
//  1. O(n) pre-checks. Size delta, height delta, and label-histogram L1
//     delta are each admissible lower bounds on the number of edit
//     operations; scaled by the cost model's per-operation minimum they
//     reject a pair before any DP memory is even allocated.
//
//  2. Diagonal band. A forest-distance cell comparing prefixes whose
//     sizes differ by more than band = cutoff/minOpCost nodes costs more
//     than the cutoff in unmatched inserts or deletes alone, so each
//     keyroot subproblem only fills the cells within that band of its
//     diagonal (Ukkonen's trick, lifted to the tree DP).
//
//  3. Frontier-row abandoning. When every cell of a subproblem's frontier
//     row exceeds the cutoff, every later cell of that subproblem does
//     too: restricting an optimal Tai mapping of larger prefixes to the
//     frontier row's prefix yields a valid, cheaper mapping measured by
//     some cell of that row. The subproblem is abandoned and its untouched
//     tree-distance entries keep the `unreachable` sentinel — which is
//     exactly their meaning for the subproblems that read them later.
//
// Soundness: band-confined values never underestimate (they minimize over
// a subset of edit paths), and whenever the true distance is ≤ the cutoff
// the optimal path stays inside the band (leaving it costs > cutoff on
// non-decreasing path costs), so the computed value is exact. A computed
// value > cutoff therefore proves the true distance > cutoff, but may
// overshoot it — which is why bounded calls report `cutoff+1` as the
// certified lower bound rather than the raw cell value. The band and the
// pre-checks need a positive per-operation minimum cost (see MinOpCoster);
// without one the band degenerates to the full matrix and only the — still
// sound for any non-negative costs — row abandoning remains.

// unreachable is the sentinel for "no mapping at or below the cutoff
// reaches this cell". It is far enough from the int ceiling that adding
// operation costs cannot wrap, and any value at or above it compares
// greater than every admissible cutoff.
const unreachable = int(^uint(0)>>1) / 4 // math.MaxInt / 4

// sat adds an operation cost onto a (possibly unreachable) DP value,
// saturating so unreachable stays unreachable.
func sat(v, cost int) int {
	if v >= unreachable || v+cost >= unreachable {
		return unreachable
	}
	return v + cost
}

// MinOpCoster is an optional CostModel capability: a uniform lower bound
// (≥ 1) on the cost of every single edit operation — every insert, every
// delete, and every relabel between distinct labels. Models reporting it
// unlock the pre-checks and the diagonal band of the bounded distance;
// models without it still get frontier-row abandoning, which is sound for
// any non-negative costs.
type MinOpCoster interface {
	MinOpCost() int
}

// MinOpCost implements MinOpCoster: every UnitCost operation costs 1.
func (UnitCost) MinOpCost() int { return 1 }

// minOpCost resolves a model's per-operation minimum, 0 when unknown.
func minOpCost(c CostModel) int {
	if m, ok := c.(MinOpCoster); ok {
		if v := m.MinOpCost(); v >= 1 {
			return v
		}
	}
	return 0
}

// precheckBound returns the best O(n) admissible lower bound on the edit
// distance: max of size delta, height delta, and half the label-histogram
// L1 delta (rounded up), scaled by the per-operation minimum cost. Each is
// a lower bound on the operation count — insert/delete change size and
// height by at most one and histogram mass by one; relabel changes
// neither size nor height and at most two units of mass.
func precheckBound(t1, t2 *tree.Tree, a, b *decomp, cmin int) int {
	lb := a.n - b.n
	if lb < 0 {
		lb = -lb
	}
	if hd := t1.Height() - t2.Height(); hd > lb {
		lb = hd
	} else if -hd > lb {
		lb = -hd
	}
	counts := make(map[string]int, a.n)
	for i := 1; i <= a.n; i++ {
		counts[a.label[i]]++
	}
	for j := 1; j <= b.n; j++ {
		counts[b.label[j]]--
	}
	l1 := 0
	for _, v := range counts {
		if v < 0 {
			v = -v
		}
		l1 += v
	}
	if h := (l1 + 1) / 2; h > lb {
		lb = h
	}
	if lb > 0 && cmin > unreachable/lb {
		return unreachable
	}
	return cmin * lb
}

// fullCells is how many interior forest-distance cells the unbounded
// program computes: Σ over keyroot pairs of (i−lml(i)+1)·(j−lml(j)+1),
// which factorizes into the product of the two trees' per-keyroot
// special-subforest size sums.
func fullCells(a, b *decomp) int64 {
	var sa, sb int64
	for _, i := range a.keyroots {
		sa += int64(i - a.lml[i] + 1)
	}
	for _, j := range b.keyroots {
		sb += int64(j - b.lml[j] + 1)
	}
	return sa * sb
}

// distBounded runs the band-limited, early-abandoning program over all
// keyroot pairs (both trees non-empty). It returns the root cell — which
// is the exact distance when ≤ cutoff, and otherwise only a witness that
// the distance exceeds it (possibly the unreachable sentinel).
func distBounded(a, b *decomp, c CostModel, cutoff, band int, m *Metrics) int {
	// td starts at unreachable: a cell a subproblem never wrote (cut off by
	// the band, or behind an abandoned frontier) is proven > cutoff, and
	// the sentinel makes later subproblems treat it exactly that way.
	td := make([][]int, a.n+1)
	for i := range td {
		row := make([]int, b.n+1)
		for j := range row {
			row[j] = unreachable
		}
		td[i] = row
	}
	fd := make([][]int, a.n+1)
	for i := range fd {
		fd[i] = make([]int, b.n+1)
	}
	var cells int64
	for _, i := range a.keyroots {
		for _, j := range b.keyroots {
			treeDistBounded(a, b, i, j, c, td, fd, cutoff, band, &cells)
		}
	}
	if m != nil {
		m.Cells = cells
	}
	return td[a.n][b.n]
}

// treeDistBounded fills the in-band cells of one keyroot subproblem,
// abandoning it as soon as an entire frontier row exceeds the cutoff (the
// untouched td entries keep their unreachable sentinel). Reads outside the
// band — or of fd scratch the band never wrote — go through read, which
// substitutes the sentinel.
func treeDistBounded(a, b *decomp, i, j int, c CostModel, td, fd [][]int, cutoff, band int, cells *int64) {
	li, lj := a.lml[i], b.lml[j]
	// A cell (r, cc) is in band when the two forest prefixes it compares
	// differ by at most band nodes; anything farther off the diagonal
	// costs more than the cutoff in unmatched inserts or deletes alone.
	read := func(r, cc int) int {
		if d := (r - li) - (cc - lj); d > band || d < -band {
			return unreachable
		}
		return fd[r][cc]
	}
	fd[li-1][lj-1] = 0
	for dj := lj; dj <= j && dj-lj < band; dj++ {
		fd[li-1][dj] = sat(fd[li-1][dj-1], c.Insert(b.label[dj]))
	}
	for di := li; di <= i; di++ {
		rowMin := unreachable
		if di-li < band {
			fd[di][lj-1] = sat(fd[di-1][lj-1], c.Delete(a.label[di]))
			rowMin = fd[di][lj-1]
		}
		lo, hi := lj+(di-li)-band, lj+(di-li)+band
		if lo < lj {
			lo = lj
		}
		if hi > j {
			hi = j
		}
		for dj := lo; dj <= hi; dj++ {
			del := sat(read(di-1, dj), c.Delete(a.label[di]))
			ins := sat(read(di, dj-1), c.Insert(b.label[dj]))
			var v int
			if a.lml[di] == li && b.lml[dj] == lj {
				rel := sat(read(di-1, dj-1), c.Relabel(a.label[di], b.label[dj]))
				v = min3(del, ins, rel)
				td[di][dj] = v
			} else {
				sub := sat(read(a.lml[di]-1, b.lml[dj]-1), td[di][dj])
				v = min3(del, ins, sub)
			}
			fd[di][dj] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if hi >= lo {
			*cells += int64(hi - lo + 1)
		}
		if rowMin > cutoff {
			return
		}
	}
}
