package editdist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/tree"
)

// checkWithin asserts the DistanceWithin contract for one (pair, cutoff):
// agreement with the full distance when within, a certified lower bound
// otherwise.
func checkWithin(t *testing.T, t1, t2 *tree.Tree, cutoff int, opts ...Option) {
	t.Helper()
	full := Distance(t1, t2, opts...)
	d, ok := DistanceWithin(t1, t2, cutoff, opts...)
	if full <= cutoff {
		if !ok || d != full {
			t.Fatalf("DistanceWithin(%q,%q,%d) = (%d,%v), want (%d,true)",
				t1, t2, cutoff, d, ok, full)
		}
	} else {
		if ok {
			t.Fatalf("DistanceWithin(%q,%q,%d) = (%d,true), but full distance is %d",
				t1, t2, cutoff, d, full)
		}
		if d <= cutoff || d > full {
			t.Fatalf("DistanceWithin(%q,%q,%d) lower bound %d outside (%d,%d]",
				t1, t2, cutoff, d, cutoff, full)
		}
	}
}

// TestDistanceWithinAgainstBruteForce: on small random trees, exhaustively
// sweep cutoffs around the brute-force distance and check the bounded
// program lands on the right side every time, under unit costs.
func TestDistanceWithinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{"a", "b", "c"}
	for trial := 0; trial < 200; trial++ {
		t1 := smallRandomTree(rng, 7, alphabet)
		t2 := smallRandomTree(rng, 7, alphabet)
		bf := BruteForce(t1, t2, UnitCost{})
		if full := Distance(t1, t2); full != bf {
			t.Fatalf("trial %d: Distance(%q,%q) = %d, brute force = %d", trial, t1, t2, full, bf)
		}
		for cutoff := 0; cutoff <= bf+3; cutoff++ {
			checkWithin(t, t1, t2, cutoff)
		}
	}
}

// bandedWeighted is a non-unit model that reports its per-operation
// minimum, unlocking the pre-checks and the diagonal band.
type bandedWeighted struct{ weighted }

func (w bandedWeighted) MinOpCost() int {
	m := w.rel
	if w.ins < m {
		m = w.ins
	}
	if w.del < m {
		m = w.del
	}
	return m
}

// TestDistanceWithinCustomCosts repeats the brute-force sweep under two
// non-unit models: one opaque (frontier abandoning only) and one
// reporting MinOpCost (pre-checks + band).
func TestDistanceWithinCustomCosts(t *testing.T) {
	models := []CostModel{
		weighted{rel: 3, ins: 2, del: 5},
		bandedWeighted{weighted{rel: 3, ins: 2, del: 5}},
	}
	for mi, c := range models {
		rng := rand.New(rand.NewSource(int64(100 + mi)))
		alphabet := []string{"a", "b"}
		for trial := 0; trial < 100; trial++ {
			t1 := smallRandomTree(rng, 6, alphabet)
			t2 := smallRandomTree(rng, 6, alphabet)
			bf := BruteForce(t1, t2, c)
			for cutoff := 0; cutoff <= bf+4; cutoff += 1 + cutoff/3 {
				checkWithin(t, t1, t2, cutoff, WithCost(c))
			}
		}
	}
}

// TestDistanceWithinRandomDatasets: dataset-scale random pairs (the sizes
// the search engine actually verifies), cutoffs spread from far below to
// above the true distance.
func TestDistanceWithinRandomDatasets(t *testing.T) {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 24, SizeStd: 8, Labels: 5, Decay: 0.1}
	ts := datagen.New(spec, 17).Dataset(40, 5)
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 120; trial++ {
		t1 := ts[rng.Intn(len(ts))]
		t2 := ts[rng.Intn(len(ts))]
		full := Distance(t1, t2)
		for _, cutoff := range []int{0, 1, full / 2, full - 1, full, full + 1, full + 10} {
			if cutoff < 0 {
				continue
			}
			checkWithin(t, t1, t2, cutoff)
		}
	}
}

// chain builds a deep/skinny tree: a single path of depth n.
func chain(n int, labels []string) *tree.Tree {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(labels[i%len(labels)])
		if i < n-1 {
			b.WriteByte('(')
		}
	}
	b.WriteString(strings.Repeat(")", n-1))
	return tree.MustParse(b.String())
}

// star builds a wide/flat tree: a root with n-1 leaves.
func star(n int, labels []string) *tree.Tree {
	leaves := make([]string, n-1)
	for i := range leaves {
		leaves[i] = labels[i%len(labels)]
	}
	return tree.MustParse(fmt.Sprintf("%s(%s)", labels[0], strings.Join(leaves, ",")))
}

// TestDistanceWithinAdversarialShapes: deep/skinny and wide/flat trees are
// RTED's motivating cases where Zhang–Shasha's decomposition degenerates;
// the bounded program must stay exact there, and the pre-checks must
// reject chain-vs-star pairs (huge height delta) without any DP.
func TestDistanceWithinAdversarialShapes(t *testing.T) {
	labels := []string{"a", "b", "c"}
	shapes := []*tree.Tree{
		chain(17, labels), chain(18, []string{"b", "c"}),
		star(17, labels), star(19, []string{"c", "a"}),
		tree.MustParse("a(b(c(d,e),f),g(h))"),
	}
	for _, t1 := range shapes {
		for _, t2 := range shapes {
			full := Distance(t1, t2)
			for _, cutoff := range []int{0, 2, full - 1, full, full + 1} {
				if cutoff < 0 {
					continue
				}
				checkWithin(t, t1, t2, cutoff)
			}
		}
	}
	// Chain vs star: heights 17 vs 2, so any cutoff < 15 must be decided
	// by the height pre-check alone.
	var m Metrics
	d, ok := DistanceWithin(chain(17, labels), star(17, labels), 10, WithMetrics(&m))
	if ok || !m.Precheck || m.Cells != 0 {
		t.Fatalf("chain-vs-star: got (%d,%v) precheck=%v cells=%d, want precheck rejection with 0 cells",
			d, ok, m.Precheck, m.Cells)
	}
	if d <= 10 {
		t.Fatalf("chain-vs-star: lower bound %d not above the cutoff", d)
	}
}

// chainOf builds a single path carrying exactly the given labels, root
// to leaf.
func chainOf(labels []string) *tree.Tree {
	return tree.MustParse(strings.Join(labels, "(") + strings.Repeat(")", len(labels)-1))
}

// TestDistanceWithinMetrics pins the accounting contract: full calls
// touch exactly FullCells, bounded calls strictly fewer on prunable
// pairs, and the Precheck/Aborted flags identify how a rejection was
// proven.
func TestDistanceWithinMetrics(t *testing.T) {
	// Two chains with the same label multiset (two interior labels
	// swapped): identical size, height and histogram defeat every
	// pre-check, so the DP has to do the proving.
	labs1 := make([]string, 16)
	for i := range labs1 {
		labs1[i] = []string{"a", "b", "c"}[i%3]
	}
	labs2 := append([]string(nil), labs1...)
	labs2[5], labs2[9] = labs2[9], labs2[5]
	t1 := chainOf(labs1)
	t2 := chainOf(labs2)

	var full Metrics
	d := Distance(t1, t2, WithMetrics(&full))
	if d == 0 {
		t.Fatal("permuted chains at distance 0")
	}
	if full.Cells != full.FullCells || full.Cells == 0 {
		t.Fatalf("full call: cells %d, full cells %d; want equal and non-zero", full.Cells, full.FullCells)
	}
	if full.Precheck || full.Aborted {
		t.Fatalf("full call flagged precheck=%v aborted=%v", full.Precheck, full.Aborted)
	}

	var m Metrics
	if _, ok := DistanceWithin(t1, t2, 0, WithMetrics(&m)); ok {
		t.Fatalf("distance %d reported within cutoff 0", d)
	}
	if m.Precheck || !m.Aborted {
		t.Fatalf("cutoff 0: precheck=%v aborted=%v, want DP abort", m.Precheck, m.Aborted)
	}
	if m.Cells == 0 || m.Cells >= m.FullCells {
		t.Fatalf("cutoff 0: touched %d of %d cells, want strictly fewer (and some)", m.Cells, m.FullCells)
	}

	// Within the cutoff: exact distance, still banded below the full count.
	var w Metrics
	got, ok := DistanceWithin(t1, t2, d, WithMetrics(&w))
	if !ok || got != d {
		t.Fatalf("DistanceWithin at the exact distance: (%d,%v), want (%d,true)", got, ok, d)
	}
	if w.Cells >= w.FullCells {
		t.Fatalf("cutoff %d: touched %d of %d cells, want strictly fewer", d, w.Cells, w.FullCells)
	}

	// A large size delta must be rejected by the pre-check, no DP at all.
	var p Metrics
	if _, ok := DistanceWithin(star(30, []string{"a"}), tree.MustParse("a"), 5, WithMetrics(&p)); ok {
		t.Fatal("size-delta pair reported within cutoff")
	}
	if !p.Precheck || p.Cells != 0 {
		t.Fatalf("size-delta pair: precheck=%v cells=%d, want rejection before any DP", p.Precheck, p.Cells)
	}
}

// TestDistanceWithinCellsGate is the DP-work regression gate: across a
// fixed random workload with refine-realistic cutoffs, the bounded
// program must touch well under half of the full program's cells.
func TestDistanceWithinCellsGate(t *testing.T) {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 20, SizeStd: 6, Labels: 6, Decay: 0.1}
	ts := datagen.New(spec, 23).Dataset(30, 5)
	var touched, fullTotal int64
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			var m Metrics
			DistanceWithin(ts[i], ts[j], 4, WithMetrics(&m))
			touched += m.Cells
			fullTotal += m.FullCells
		}
	}
	if touched*2 >= fullTotal {
		t.Fatalf("bounded τ=4 workload touched %d of %d full cells; want < 50%%", touched, fullTotal)
	}
}

// TestDistanceOptions pins the option-folding surface: defaults, nil
// options, cost equivalence with the deprecated entry point, tightest
// cutoff winning, and negative cutoffs.
func TestDistanceOptions(t *testing.T) {
	t1 := paperT1()
	t2 := paperT2()
	c := weighted{rel: 2, ins: 1, del: 1}
	if got, want := Distance(t1, t2, nil, WithCost(c)), DistanceCost(t1, t2, c); got != want {
		t.Fatalf("Distance WithCost = %d, DistanceCost = %d", got, want)
	}
	if got, want := Distance(t1, t2, WithCost(nil)), Distance(t1, t2); got != want {
		t.Fatalf("WithCost(nil) = %d, default = %d", got, want)
	}
	full := Distance(t1, t2)
	// The tightest of several cutoffs wins, wherever it is supplied.
	if _, ok := DistanceWithin(t1, t2, full+5, WithCutoff(full-1)); ok {
		t.Fatal("WithCutoff tighter than the argument was ignored")
	}
	if d, ok := DistanceWithin(t1, t2, full-1, WithCutoff(full+5)); ok || d != full-1+1 {
		t.Fatalf("argument cutoff: (%d,%v), want (%d,false)", d, ok, full)
	}
	if d := Distance(t1, t2, WithCutoff(full)); d != full {
		t.Fatalf("Distance WithCutoff at the distance = %d, want %d", d, full)
	}
	if d, ok := DistanceWithin(t1, t2, -3); ok || d != 0 {
		t.Fatalf("negative cutoff: (%d,%v), want (0,false)", d, ok)
	}
	if d, ok := DistanceWithin(t1, t1, 0); !ok || d != 0 {
		t.Fatalf("identical pair at cutoff 0: (%d,%v), want (0,true)", d, ok)
	}
	if d, ok := DistanceWithin(t1, t2, math.MaxInt); !ok || d != full {
		t.Fatalf("MaxInt cutoff: (%d,%v), want (%d,true)", d, ok, full)
	}
}

// benchPairs is a fixed workload of refine-sized tree pairs.
func benchPairs(n int) [][2]*tree.Tree {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 28, SizeStd: 8, Labels: 6, Decay: 0.1}
	ts := datagen.New(spec, 31).Dataset(2*n, 5)
	pairs := make([][2]*tree.Tree, n)
	for i := range pairs {
		pairs[i] = [2]*tree.Tree{ts[2*i], ts[2*i+1]}
	}
	return pairs
}

// BenchmarkDistanceWithin measures the bounded verifier at a
// refine-realistic cutoff, reporting DP cells per verification alongside
// time. Compare with BenchmarkDistanceFull for the saving.
func BenchmarkDistanceWithin(b *testing.B) {
	pairs := benchPairs(64)
	var m Metrics
	var cells, fullCells int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		DistanceWithin(p[0], p[1], 6, WithMetrics(&m))
		cells += m.Cells
		fullCells += m.FullCells
	}
	b.ReportMetric(float64(cells)/float64(b.N), "cells/op")
	b.ReportMetric(float64(fullCells)/float64(b.N), "fullcells/op")
}

// BenchmarkDistanceFull is the unbounded baseline over the same workload.
func BenchmarkDistanceFull(b *testing.B) {
	pairs := benchPairs(64)
	var m Metrics
	var cells int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		Distance(p[0], p[1], WithMetrics(&m))
		cells += m.Cells
	}
	b.ReportMetric(float64(cells)/float64(b.N), "cells/op")
}
