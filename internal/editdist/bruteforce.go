package editdist

import "treesim/internal/tree"

// BruteForce computes the tree edit distance by exhaustive search over all
// valid Tai mappings between the two trees. A mapping is a one-to-one set
// of node pairs preserving ancestor order and sibling order — equivalently,
// preserving both the preorder and the postorder relative order of the
// mapped nodes — and by Tai's theorem the edit distance equals the minimum
// over valid mappings M of
//
//	Σ_{(u,v)∈M} relabel(u,v) + Σ_{u∉M} delete(u) + Σ_{v∉M} insert(v).
//
// The search is exponential; it exists solely to validate the Zhang–Shasha
// dynamic program on small trees in tests. Keep inputs below ~10 nodes.
func BruteForce(t1, t2 *tree.Tree, c CostModel) int {
	n1 := numberNodes(t1)
	n2 := numberNodes(t2)

	deleteAll := 0
	for _, u := range n1 {
		deleteAll += c.Delete(u.label)
	}
	insertAll := 0
	for _, v := range n2 {
		insertAll += c.Insert(v.label)
	}
	best := deleteAll + insertAll // the empty mapping

	used := make([]bool, len(n2))
	var pairs []numbered2 // mapped (u,v) pairs so far, u in preorder

	// remDel[i] = cost of deleting nodes i.. of T1 (suffix sums) for a
	// cheap admissible bound while searching.
	remDel := make([]int, len(n1)+1)
	for i := len(n1) - 1; i >= 0; i-- {
		remDel[i] = remDel[i+1] + c.Delete(n1[i].label)
	}

	var rec func(i int, cost int, usedCount int)
	rec = func(i, cost, usedCount int) {
		if cost >= best {
			return
		}
		if i == len(n1) {
			// Unmapped T2 nodes are insertions.
			for j, v := range n2 {
				if !used[j] {
					cost += c.Insert(v.label)
				}
			}
			if cost < best {
				best = cost
			}
			return
		}
		u := n1[i]
		// Option 1: map u to some unused, order-consistent v.
		for j, v := range n2 {
			if used[j] || !consistent(pairs, u, v) {
				continue
			}
			used[j] = true
			pairs = append(pairs, numbered2{u, v})
			rec(i+1, cost+c.Relabel(u.label, v.label), usedCount+1)
			pairs = pairs[:len(pairs)-1]
			used[j] = false
		}
		// Option 2: delete u.
		rec(i+1, cost+c.Delete(u.label), usedCount)
	}
	rec(0, 0, 0)
	return best
}

type numbered struct {
	label     string
	pre, post int
}

type numbered2 struct{ u, v numbered }

// consistent checks that adding (u,v) preserves preorder and postorder
// relative order against every existing pair. u is visited in ascending
// preorder, so pre(u') < pre(u) for all prior pairs; v must follow suit,
// and the postorder orders of the two sides must agree.
func consistent(pairs []numbered2, u, v numbered) bool {
	for _, p := range pairs {
		if p.v.pre >= v.pre {
			return false
		}
		if (p.u.post < u.post) != (p.v.post < v.post) {
			return false
		}
	}
	return true
}

func numberNodes(t *tree.Tree) []numbered {
	pos := t.Number()
	out := make([]numbered, 0, len(pos.Nodes))
	for _, n := range pos.Nodes {
		out = append(out, numbered{label: n.Label, pre: pos.Pre[n], post: pos.Post[n]})
	}
	return out
}
