package editdist

import "treesim/internal/tree"

// Constrained tree edit distance — Zhang, "Algorithms for the constrained
// editing distance between ordered labelled trees" (Pattern Recognition
// 1995), reference [22] of the paper. The constrained distance restricts
// Tai mappings so that two separate subtrees of T1 map to two separate
// subtrees of T2 (Section 2.1's description). The restriction makes the
// problem solvable in O(|T1|·|T2|) — versus the extra depth factors of the
// unrestricted DP — at the price of possibly overestimating:
//
//	Distance(t1, t2) ≤ ConstrainedDistance(t1, t2)
//
// Under unit costs the constrained distance is itself a metric, so it also
// serves as a cheap upper bound for the unrestricted distance (e.g. to
// seed the k-NN pruning radius before any exact evaluation).

// ConstrainedDistance returns the unit-cost constrained edit distance.
func ConstrainedDistance(t1, t2 *tree.Tree) int {
	return ConstrainedDistanceCost(t1, t2, UnitCost{})
}

// ConstrainedDistanceCost returns the constrained edit distance under an
// arbitrary cost model.
func ConstrainedDistanceCost(t1, t2 *tree.Tree, c CostModel) int {
	a, b := indexTree(t1), indexTree(t2)
	switch {
	case a.n == 0 && b.n == 0:
		return 0
	case a.n == 0:
		return b.wholeCost(c.Insert)
	case b.n == 0:
		return a.wholeCost(c.Delete)
	}

	// Whole-subtree and whole-forest deletion/insertion costs.
	delT := make([]int, a.n)
	delF := make([]int, a.n)
	for i := 0; i < a.n; i++ { // postorder: children before parents
		for _, ic := range a.children[i] {
			delF[i] += delT[ic]
		}
		delT[i] = delF[i] + c.Delete(a.label[i])
	}
	insT := make([]int, b.n)
	insF := make([]int, b.n)
	for j := 0; j < b.n; j++ {
		for _, jc := range b.children[j] {
			insF[j] += insT[jc]
		}
		insT[j] = insF[j] + c.Insert(b.label[j])
	}

	// dt[i][j]: constrained distance between the subtrees rooted at i, j.
	// df[i][j]: constrained distance between their children forests.
	dt := make([][]int, a.n)
	df := make([][]int, a.n)
	for i := range dt {
		dt[i] = make([]int, b.n)
		df[i] = make([]int, b.n)
	}

	for i := 0; i < a.n; i++ {
		for j := 0; j < b.n; j++ {
			// Forest distance.
			best := alignForests(a.children[i], b.children[j], delT, insT, dt)
			// F(i) maps entirely inside the children forest of one
			// subtree of F(j) (that subtree's root and siblings are
			// inserted)...
			for _, jc := range b.children[j] {
				if v := insF[j] - insF[jc] + df[i][jc]; v < best {
					best = v
				}
			}
			// ...or symmetrically for F(j) inside F(i).
			for _, ic := range a.children[i] {
				if v := delF[i] - delF[ic] + df[ic][j]; v < best {
					best = v
				}
			}
			df[i][j] = best

			// Tree distance.
			best = df[i][j] + c.Relabel(a.label[i], b.label[j])
			// Subtree i maps inside one child subtree of j (j's root
			// inserted, j's other children inserted)...
			for _, jc := range b.children[j] {
				if v := insT[j] - insT[jc] + dt[i][jc]; v < best {
					best = v
				}
			}
			// ...or subtree j inside one child subtree of i.
			for _, ic := range a.children[i] {
				if v := delT[i] - delT[ic] + dt[ic][j]; v < best {
					best = v
				}
			}
			dt[i][j] = best
		}
	}
	return dt[a.n-1][b.n-1] // roots are last in postorder
}

// alignForests computes the order-preserving alignment of two subtree
// sequences, where substituting subtree ic for jc costs dt[ic][jc] and
// gaps cost whole-subtree deletion/insertion — a string edit distance over
// subtrees.
func alignForests(f1, f2 []int, delT, insT []int, dt [][]int) int {
	m, n := len(f1), len(f2)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	prev[0] = 0
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + insT[f2[j-1]]
	}
	for i := 1; i <= m; i++ {
		cur[0] = prev[0] + delT[f1[i-1]]
		for j := 1; j <= n; j++ {
			cur[j] = min3(
				prev[j]+delT[f1[i-1]],
				cur[j-1]+insT[f2[j-1]],
				prev[j-1]+dt[f1[i-1]][f2[j-1]],
			)
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// indexed is a postorder-indexed tree: node i's children (by index) and
// label, children always preceding their parent.
type indexed struct {
	n        int
	label    []string
	children [][]int
}

func indexTree(t *tree.Tree) *indexed {
	x := &indexed{}
	if t.IsEmpty() {
		return x
	}
	var rec func(n *tree.Node) int
	rec = func(n *tree.Node) int {
		var kids []int
		for _, c := range n.Children {
			kids = append(kids, rec(c))
		}
		idx := x.n
		x.n++
		x.label = append(x.label, n.Label)
		x.children = append(x.children, kids)
		return idx
	}
	rec(t.Root)
	return x
}

func (x *indexed) wholeCost(cost func(string) int) int {
	s := 0
	for _, l := range x.label {
		s += cost(l)
	}
	return s
}
