package editdist

import (
	"math/rand"
	"testing"

	"treesim/internal/tree"
)

func TestConstrainedKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "a", 1},
		{"a", "a", 0},
		{"a", "b", 1},
		{"a(b)", "a", 1},
		{"a(b)", "a(c)", 1},
		{"a(b,c)", "a(b,c)", 0},
		{"a(b,c,d)", "a(x(b,c,d))", 1}, // single insert is constrained-legal
		{"a(x(b,c,d))", "a(b,c,d)", 1},
		{"a(b,c)", "a(c,b)", 2},
	}
	for _, c := range cases {
		got := ConstrainedDistance(tree.MustParse(c.a), tree.MustParse(c.b))
		if got != c.want {
			t.Errorf("ConstrainedDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestConstrainedUpperBoundsUnrestricted: the constrained distance never
// undercuts the unrestricted Zhang–Shasha distance.
func TestConstrainedUpperBoundsUnrestricted(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	alphabet := []string{"a", "b", "c"}
	for trial := 0; trial < 300; trial++ {
		t1 := smallRandomTree(rng, 10, alphabet)
		t2 := smallRandomTree(rng, 10, alphabet)
		cd := ConstrainedDistance(t1, t2)
		ed := Distance(t1, t2)
		if cd < ed {
			t.Fatalf("constrained %d < unrestricted %d for %q vs %q", cd, ed, t1, t2)
		}
		if cd > t1.Size()+t2.Size() {
			t.Fatalf("constrained %d exceeds size sum for %q vs %q", cd, t1, t2)
		}
	}
}

// TestConstrainedStrictlyLarger: the classic separation — r(b,c,d) vs
// r(x(b,c),y(d)) needs two inserts unrestricted, but the constrained
// mapping may not split the separate subtrees b, c into one subtree x.
func TestConstrainedStrictlyLarger(t *testing.T) {
	t1 := tree.MustParse("r(b,c,d)")
	t2 := tree.MustParse("r(x(b,c),y(d))")
	ed := Distance(t1, t2)
	cd := ConstrainedDistance(t1, t2)
	if ed != 2 {
		t.Fatalf("unrestricted distance = %d, want 2", ed)
	}
	if cd <= ed {
		t.Fatalf("constrained %d should exceed unrestricted %d here", cd, ed)
	}
}

// TestConstrainedMetricAxioms: under unit costs the constrained distance
// is a metric (Zhang 1995).
func TestConstrainedMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	alphabet := []string{"a", "b"}
	trees := make([]*tree.Tree, 10)
	for i := range trees {
		trees[i] = smallRandomTree(rng, 9, alphabet)
	}
	for i, a := range trees {
		if ConstrainedDistance(a, a) != 0 {
			t.Errorf("self distance non-zero for %q", a)
		}
		for j, b := range trees {
			dab := ConstrainedDistance(a, b)
			if dab != ConstrainedDistance(b, a) {
				t.Errorf("asymmetric for %q, %q", a, b)
			}
			if dab == 0 && !tree.Equal(a, b) {
				t.Errorf("zero distance for distinct %q, %q", a, b)
			}
			for k, c := range trees {
				if k <= j || j <= i {
					continue
				}
				if ConstrainedDistance(a, c) > dab+ConstrainedDistance(b, c) {
					t.Errorf("triangle violated on %q, %q, %q", a, b, c)
				}
			}
		}
	}
}

// TestConstrainedAgreesOnSimpleEdits: for single relabels/inserts/deletes
// the constrained mapping is unrestricted, so the distances coincide.
func TestConstrainedAgreesOnSimpleEdits(t *testing.T) {
	base := tree.MustParse("a(b(c,d),e(f),g)")
	edits := []string{
		"a(b(c,d),e(f),g)",   // identical
		"a(b(c,x),e(f),g)",   // relabel
		"a(b(c,d),e(f))",     // delete leaf
		"a(b(c,d),e(f),g,h)", // insert leaf
		"a(b(c,d),e,f,g)",    // delete internal (f splices up)
	}
	for _, s := range edits {
		other := tree.MustParse(s)
		cd := ConstrainedDistance(base, other)
		ed := Distance(base, other)
		if cd != ed {
			t.Errorf("constrained %d != unrestricted %d for %q", cd, ed, s)
		}
	}
}

func TestConstrainedWeightedCosts(t *testing.T) {
	c := weighted{rel: 3, ins: 2, del: 5}
	t1 := tree.MustParse("a(b)")
	t2 := tree.MustParse("a(c,d)")
	// Optimal: relabel b→c (3) + insert d (2) = 5.
	if got := ConstrainedDistanceCost(t1, t2, c); got != 5 {
		t.Errorf("weighted constrained = %d, want 5", got)
	}
	if got := ConstrainedDistanceCost(tree.New(nil), t2, c); got != 6 {
		t.Errorf("insert-all = %d, want 6", got)
	}
	if got := ConstrainedDistanceCost(t1, tree.New(nil), c); got != 10 {
		t.Errorf("delete-all = %d, want 10", got)
	}
}

// TestConstrainedIsUpperBoundForBranchFilter: BDist/5 ≤ EDist ≤
// ConstrainedDistance — the sandwich that lets the constrained distance
// seed pruning radii.
func TestConstrainedSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	alphabet := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 100; trial++ {
		t1 := smallRandomTree(rng, 12, alphabet)
		t2 := smallRandomTree(rng, 12, alphabet)
		ed := Distance(t1, t2)
		cd := ConstrainedDistance(t1, t2)
		if !(ed <= cd) {
			t.Fatalf("sandwich violated: ed=%d cd=%d", ed, cd)
		}
	}
}
