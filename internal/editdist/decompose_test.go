package editdist

import (
	"reflect"
	"testing"

	"treesim/internal/tree"
)

// TestDecomposeLeftmostLeaves verifies the l() array of the Zhang–Shasha
// decomposition on a hand-worked tree.
//
//	T = a(b(c,d),e): postorder c=1, d=2, b=3, e=4, a=5.
//	lml: c→1, d→2, b→1 (leftmost leaf c), e→4, a→1.
func TestDecomposeLeftmostLeaves(t *testing.T) {
	d := decompose(tree.MustParse("a(b(c,d),e)"))
	if d.n != 5 {
		t.Fatalf("n = %d", d.n)
	}
	wantLabels := []string{"", "c", "d", "b", "e", "a"}
	if !reflect.DeepEqual(d.label, wantLabels) {
		t.Errorf("labels = %v", d.label)
	}
	wantLml := []int{0, 1, 2, 1, 4, 1}
	if !reflect.DeepEqual(d.lml, wantLml) {
		t.Errorf("lml = %v, want %v", d.lml, wantLml)
	}
}

// TestDecomposeKeyroots: keyroots are the highest node of each distinct
// leftmost path — for a(b(c,d),e): d (lml 2), e (lml 4), a (lml 1).
func TestDecomposeKeyroots(t *testing.T) {
	d := decompose(tree.MustParse("a(b(c,d),e)"))
	want := []int{2, 4, 5}
	if !reflect.DeepEqual(d.keyroots, want) {
		t.Errorf("keyroots = %v, want %v", d.keyroots, want)
	}
	// A pure path has a single keyroot (the root); a star has n-1 + root.
	path := decompose(tree.MustParse("a(b(c(d)))"))
	if !reflect.DeepEqual(path.keyroots, []int{4}) {
		t.Errorf("path keyroots = %v", path.keyroots)
	}
	star := decompose(tree.MustParse("a(b,c,d)"))
	if !reflect.DeepEqual(star.keyroots, []int{2, 3, 4}) {
		t.Errorf("star keyroots = %v", star.keyroots)
	}
}

// TestKeyrootsCoverAllNodes: every node lies on exactly one keyroot's
// leftmost path, so the keyroots' lml values partition postorder indexes.
func TestKeyrootsCoverAllNodes(t *testing.T) {
	for _, s := range []string{"a", "a(b(c,d),b(c,d),e)", "a(b(c(d(e))))", "a(b,c(d,e(f)),g)"} {
		d := decompose(tree.MustParse(s))
		covered := make([]bool, d.n+1)
		for _, k := range d.keyroots {
			for i := d.lml[k]; i <= k; i++ {
				if d.lml[i] == d.lml[k] {
					covered[i] = true
				}
			}
		}
		for i := 1; i <= d.n; i++ {
			if !covered[i] {
				t.Errorf("%s: node %d not covered by any keyroot path", s, i)
			}
		}
	}
}

func TestDecomposeEmpty(t *testing.T) {
	d := decompose(tree.New(nil))
	if d.n != 0 || len(d.keyroots) != 0 {
		t.Errorf("empty decomposition: %+v", d)
	}
	if d.totalCost(func(string) int { return 1 }) != 0 {
		t.Error("empty total cost")
	}
}
