// Package editdist implements the tree edit distance for rooted, ordered,
// labeled trees — the "real" distance that the binary branch embedding
// lower-bounds and that the refine step of similarity search must evaluate.
//
// The main algorithm is the dynamic program of Zhang and Shasha (SIAM J.
// Computing 1989, reference [23] of the paper), which runs in
//
//	O(|T1|·|T2|·min(depth(T1),leaves(T1))·min(depth(T2),leaves(T2)))
//
// time and O(|T1|·|T2|) space. The entry points are options-based
// (Distance, WithCost, WithCutoff); DistanceWithin is the cutoff-first
// surface for threshold verification, backed by O(n) pre-checks, a
// diagonal DP band and frontier-row early abandoning (see bounded.go).
// The package also provides the classic string edit distance and the Guha
// et al. preorder/postorder sequence lower bound (reference [15]), used as
// an additional filter baseline, and an exponential brute-force distance
// over Tai mappings used to validate the dynamic program in tests.
package editdist

import "treesim/internal/tree"

// CostModel assigns costs to the three edit operations. Costs must be
// non-negative, and Relabel(a,a) must be 0 for the distance to satisfy the
// identity axiom.
type CostModel interface {
	// Relabel is the cost of changing label a into label b.
	Relabel(a, b string) int
	// Insert is the cost of inserting a node with the given label.
	Insert(label string) int
	// Delete is the cost of deleting a node with the given label.
	Delete(label string) int
}

// UnitCost is the unit-cost model adopted by the paper: every operation
// costs 1, and relabeling a node to its own label costs 0. Under UnitCost
// the edit distance is the minimum number of operations transforming one
// tree into the other, and it is a metric.
type UnitCost struct{}

// Relabel implements CostModel.
func (UnitCost) Relabel(a, b string) int {
	if a == b {
		return 0
	}
	return 1
}

// Insert implements CostModel.
func (UnitCost) Insert(string) int { return 1 }

// Delete implements CostModel.
func (UnitCost) Delete(string) int { return 1 }

// Distance returns the tree edit distance between t1 and t2 under the
// options' cost model (unit costs by default):
//
//	d := editdist.Distance(t1, t2)                        // paper's unit costs
//	d := editdist.Distance(t1, t2, editdist.WithCost(c))  // custom model
//
// With WithCutoff the computation is bounded: the result is exact whenever
// it is ≤ the cutoff and otherwise only guaranteed to exceed it. Callers
// that need to know which side the pair landed on should use
// DistanceWithin.
func Distance(t1, t2 *tree.Tree, opts ...Option) int {
	cfg := applyOptions(opts)
	d, _ := distance(t1, t2, &cfg)
	return d
}

// DistanceWithin is the cutoff-first entry point for threshold
// verification: it decides whether the edit distance between t1 and t2 is
// at most cutoff, spending as little work as the decision allows
// (pre-checks, diagonal band, early abandoning — see bounded.go). It
// returns (d, true) with the exact distance d when d ≤ cutoff, and
// (lb, false) with a certified lower bound lb > cutoff when the distance
// is proven to exceed it.
func DistanceWithin(t1, t2 *tree.Tree, cutoff int, opts ...Option) (int, bool) {
	cfg := applyOptions(opts)
	if cutoff < cfg.cutoff {
		cfg.cutoff = cutoff
	}
	return distance(t1, t2, &cfg)
}

// DistanceCost returns the tree edit distance under an arbitrary cost
// model, using the Zhang–Shasha dynamic program.
//
// Deprecated: use Distance(t1, t2, WithCost(c)).
func DistanceCost(t1, t2 *tree.Tree, c CostModel) int {
	return Distance(t1, t2, WithCost(c))
}

// distance dispatches a folded configuration: empty-tree cases first, then
// the unbounded or the bounded program. The boolean reports dist ≤ cutoff;
// when false the returned value is a certified lower bound > cutoff.
func distance(t1, t2 *tree.Tree, cfg *config) (int, bool) {
	a, b := decompose(t1), decompose(t2)
	if cfg.metrics != nil {
		*cfg.metrics = Metrics{FullCells: fullCells(a, b)}
	}
	c := cfg.cost
	switch {
	case a.n == 0 && b.n == 0:
		return 0, 0 <= cfg.cutoff
	case a.n == 0:
		d := b.totalCost(c.Insert)
		return d, d <= cfg.cutoff
	case b.n == 0:
		d := a.totalCost(c.Delete)
		return d, d <= cfg.cutoff
	}
	cutoff := cfg.cutoff
	if cutoff >= unreachable {
		// No cutoff (or one too large to prune anything): the plain
		// program, with every cell of every keyroot subproblem computed.
		d := distFull(a, b, c, cfg.metrics)
		return d, d <= cutoff
	}
	if cutoff < 0 {
		// Distances are non-negative, so nothing is within a negative
		// cutoff; 0 is the trivial certified lower bound.
		if cfg.metrics != nil {
			cfg.metrics.Precheck = true
		}
		return 0, false
	}
	cmin := minOpCost(c)
	band := a.n + b.n // covers every cell: no restriction
	if cmin >= 1 {
		if lb := precheckBound(t1, t2, a, b, cmin); lb > cutoff {
			if cfg.metrics != nil {
				cfg.metrics.Precheck = true
			}
			return lb, false
		}
		if w := cutoff / cmin; w < band {
			band = w
		}
	}
	d := distBounded(a, b, c, cutoff, band, cfg.metrics)
	if d > cutoff {
		// The band-confined value proves dist > cutoff but may overshoot
		// the true distance, so certify only the tight integer bound.
		if cfg.metrics != nil {
			cfg.metrics.Aborted = true
		}
		return cutoff + 1, false
	}
	return d, true
}

// distFull runs the unbounded Zhang–Shasha program (both trees non-empty).
func distFull(a, b *decomp, c CostModel, m *Metrics) int {
	// td[i][j] = tree distance between subtree rooted at postorder node i
	// of T1 and subtree rooted at postorder node j of T2 (1-based).
	td := make([][]int, a.n+1)
	for i := range td {
		td[i] = make([]int, b.n+1)
	}
	// Forest distance scratch, reused across keyroot pairs.
	fd := make([][]int, a.n+1)
	for i := range fd {
		fd[i] = make([]int, b.n+1)
	}

	for _, i := range a.keyroots {
		for _, j := range b.keyroots {
			treeDist(a, b, i, j, c, td, fd)
		}
	}
	if m != nil {
		m.Cells = m.FullCells
	}
	return td[a.n][b.n]
}

// treeDist fills td[i'][j'] for all i' on the leftmost path of keyroot i
// and j' on the leftmost path of keyroot j, per Zhang–Shasha.
func treeDist(a, b *decomp, i, j int, c CostModel, td, fd [][]int) {
	li, lj := a.lml[i], b.lml[j]
	fd[li-1][lj-1] = 0
	for di := li; di <= i; di++ {
		fd[di][lj-1] = fd[di-1][lj-1] + c.Delete(a.label[di])
	}
	for dj := lj; dj <= j; dj++ {
		fd[li-1][dj] = fd[li-1][dj-1] + c.Insert(b.label[dj])
	}
	for di := li; di <= i; di++ {
		for dj := lj; dj <= j; dj++ {
			del := fd[di-1][dj] + c.Delete(a.label[di])
			ins := fd[di][dj-1] + c.Insert(b.label[dj])
			if a.lml[di] == li && b.lml[dj] == lj {
				// Both prefixes are whole subtrees: this is also a tree
				// distance.
				rel := fd[di-1][dj-1] + c.Relabel(a.label[di], b.label[dj])
				m := min3(del, ins, rel)
				fd[di][dj] = m
				td[di][dj] = m
			} else {
				sub := fd[a.lml[di]-1][b.lml[dj]-1] + td[di][dj]
				fd[di][dj] = min3(del, ins, sub)
			}
		}
	}
}

// decomp holds the postorder decomposition of a tree used by the DP.
type decomp struct {
	n        int      // node count
	label    []string // label[i] = label of postorder node i (1-based)
	lml      []int    // lml[i]   = postorder index of leftmost leaf of i
	keyroots []int    // ascending LR-keyroots
}

// decompose computes postorder labels, leftmost-leaf indices and the
// LR-keyroots (nodes that are the root or have a left sibling; equivalently
// the highest node of each distinct leftmost path).
func decompose(t *tree.Tree) *decomp {
	d := &decomp{label: []string{""}, lml: []int{0}}
	if t.IsEmpty() {
		return d
	}
	var rec func(n *tree.Node) int // returns postorder index of n
	rec = func(n *tree.Node) int {
		first := 0
		for k, ch := range n.Children {
			idx := rec(ch)
			if k == 0 {
				first = d.lml[idx]
			}
		}
		d.n++
		d.label = append(d.label, n.Label)
		if len(n.Children) == 0 {
			d.lml = append(d.lml, d.n)
		} else {
			d.lml = append(d.lml, first)
		}
		return d.n
	}
	rec(t.Root)
	// Keyroots: for each distinct leftmost-leaf value keep the largest
	// postorder index having it.
	last := make(map[int]int, d.n)
	for i := 1; i <= d.n; i++ {
		last[d.lml[i]] = i
	}
	for i := 1; i <= d.n; i++ {
		if last[d.lml[i]] == i {
			d.keyroots = append(d.keyroots, i)
		}
	}
	return d
}

// totalCost sums a per-label cost over every node, e.g. the cost of
// deleting (or inserting) the whole tree.
func (d *decomp) totalCost(cost func(string) int) int {
	s := 0
	for i := 1; i <= d.n; i++ {
		s += cost(d.label[i])
	}
	return s
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
