package editdist

import (
	"math/rand"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/tree"
)

func paperT1() *tree.Tree { return tree.MustParse("a(b(c,d),b(c,d),e)") }
func paperT2() *tree.Tree { return tree.MustParse("a(b(c,d,b(e)),c,d,e)") }

func TestDistanceKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "a", 1},
		{"a", "a", 0},
		{"a", "b", 1},
		{"a(b)", "a", 1},
		{"a(b)", "a(c)", 1},
		{"a(b,c)", "a(c,b)", 2},                 // swap needs relabel×2 (order matters)
		{"a(b(c))", "a(b,c)", 1},                // delete b? no: a(b(c)) → delete b → a(c); want a(b,c). Insert/delete: distance 2? see below
		{"a(b,c,d)", "a(x(b,c,d))", 1},          // single insert
		{"a(x(b,c,d))", "a(b,c,d)", 1},          // single delete
		{"f(d(a,c(b)),e)", "f(c(d(a,b)),e)", 2}, // classic Zhang–Shasha example
	}
	// Fix the a(b(c)) vs a(b,c) case: delete c (child of b) then insert c
	// under a — or relabel... minimum is 2? Actually: delete b gives a(c);
	// not equal. Mapping keeping a,b,c: in a(b(c)) c is a descendant of b;
	// in a(b,c) c is a sibling of b — ancestor order must be preserved, so
	// b and c cannot both be mapped; distance 2.
	cases[8].want = 2
	for _, c := range cases {
		got := Distance(tree.MustParse(c.a), tree.MustParse(c.b))
		if got != c.want {
			t.Errorf("Distance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestDistancePaperPair: T1→T2 of Fig. 1 takes delete(b), insert(b),
// insert(e) — distance 3 (confirmed by brute force below).
func TestDistancePaperPair(t *testing.T) {
	if got := Distance(paperT1(), paperT2()); got != 3 {
		t.Errorf("Distance(T1,T2) = %d, want 3", got)
	}
	if bf := BruteForce(paperT1(), paperT2(), UnitCost{}); bf != 3 {
		t.Errorf("BruteForce(T1,T2) = %d, want 3", bf)
	}
}

func smallRandomTree(rng *rand.Rand, maxN int, alphabet []string) *tree.Tree {
	n := rng.Intn(maxN + 1)
	if n == 0 {
		return tree.New(nil)
	}
	nodes := make([]*tree.Node, n)
	for i := range nodes {
		nodes[i] = &tree.Node{Label: alphabet[rng.Intn(len(alphabet))]}
	}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(i)]
		p.Children = append(p.Children, nodes[i])
	}
	return tree.New(nodes[0])
}

// TestDistanceAgainstBruteForce validates the Zhang–Shasha DP against
// exhaustive Tai-mapping search on random small trees.
func TestDistanceAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []string{"a", "b", "c"}
	for trial := 0; trial < 300; trial++ {
		t1 := smallRandomTree(rng, 7, alphabet)
		t2 := smallRandomTree(rng, 7, alphabet)
		zs := Distance(t1, t2)
		bf := BruteForce(t1, t2, UnitCost{})
		if zs != bf {
			t.Fatalf("trial %d: ZhangShasha(%q,%q) = %d, brute force = %d",
				trial, t1, t2, zs, bf)
		}
	}
}

// TestDistanceAgainstBruteForceCustomCost repeats the validation under a
// non-unit cost model.
func TestDistanceAgainstBruteForceCustomCost(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	alphabet := []string{"a", "b"}
	c := weighted{rel: 3, ins: 2, del: 5}
	for trial := 0; trial < 150; trial++ {
		t1 := smallRandomTree(rng, 6, alphabet)
		t2 := smallRandomTree(rng, 6, alphabet)
		zs := DistanceCost(t1, t2, c)
		bf := BruteForce(t1, t2, c)
		if zs != bf {
			t.Fatalf("trial %d: DistanceCost(%q,%q) = %d, brute force = %d",
				trial, t1, t2, zs, bf)
		}
	}
}

type weighted struct{ rel, ins, del int }

func (w weighted) Relabel(a, b string) int {
	if a == b {
		return 0
	}
	return w.rel
}
func (w weighted) Insert(string) int { return w.ins }
func (w weighted) Delete(string) int { return w.del }

// TestMetricAxioms: the unit-cost edit distance is a metric.
func TestMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{"a", "b", "c"}
	trees := make([]*tree.Tree, 12)
	for i := range trees {
		trees[i] = smallRandomTree(rng, 8, alphabet)
	}
	for i, a := range trees {
		if Distance(a, a) != 0 {
			t.Errorf("Distance(t,t) != 0 for %q", a)
		}
		for j, b := range trees {
			dab := Distance(a, b)
			if dab != Distance(b, a) {
				t.Errorf("asymmetric distance between %q and %q", a, b)
			}
			if dab == 0 && !tree.Equal(a, b) {
				t.Errorf("zero distance between distinct trees %q, %q", a, b)
			}
			for k, c := range trees {
				if k <= j || j <= i {
					continue
				}
				if Distance(a, c) > dab+Distance(b, c) {
					t.Errorf("triangle violation on %q, %q, %q", a, b, c)
				}
			}
		}
	}
}

// TestDistanceUpperBounds: EDist ≤ |T1|+|T2| (delete all, insert all), and
// EDist ≥ ||T1|−|T2||.
func TestDistanceUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 100; trial++ {
		t1 := smallRandomTree(rng, 15, alphabet)
		t2 := smallRandomTree(rng, 15, alphabet)
		d := Distance(t1, t2)
		if d > t1.Size()+t2.Size() {
			t.Errorf("Distance(%q,%q) = %d exceeds size sum", t1, t2, d)
		}
		diff := t1.Size() - t2.Size()
		if diff < 0 {
			diff = -diff
		}
		if d < diff {
			t.Errorf("Distance(%q,%q) = %d below size difference %d", t1, t2, d, diff)
		}
	}
}

// TestRandomEditsUpperBound: applying k random edit operations moves a tree
// by at most k.
func TestRandomEditsUpperBound(t *testing.T) {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 20, SizeStd: 3, Labels: 5, Decay: 0.05}
	g := datagen.New(spec, 5)
	for trial := 0; trial < 40; trial++ {
		t1 := g.Seed()
		k := 1 + trial%6
		t2 := g.RandomEdits(t1, k)
		if d := Distance(t1, t2); d > k {
			t.Errorf("distance %d after %d edits (t1=%q, t2=%q)", d, k, t1, t2)
		}
	}
}

func TestEmptyTrees(t *testing.T) {
	e := tree.New(nil)
	tr := paperT1()
	if got := Distance(e, tr); got != tr.Size() {
		t.Errorf("Distance(empty, T1) = %d, want %d", got, tr.Size())
	}
	if got := Distance(tr, e); got != tr.Size() {
		t.Errorf("Distance(T1, empty) = %d, want %d", got, tr.Size())
	}
	if got := Distance(e, e); got != 0 {
		t.Errorf("Distance(empty, empty) = %d, want 0", got)
	}
	c := weighted{rel: 1, ins: 7, del: 3}
	if got := DistanceCost(e, tree.MustParse("a(b)"), c); got != 14 {
		t.Errorf("weighted insert-all = %d, want 14", got)
	}
	if got := DistanceCost(tree.MustParse("a(b)"), e, c); got != 6 {
		t.Errorf("weighted delete-all = %d, want 6", got)
	}
}

// TestDeepAndBushy exercises both keyroot regimes: a path tree (depth n,
// one keyroot chain) and a star tree (n−1 keyroots).
func TestDeepAndBushy(t *testing.T) {
	path := tree.MustParse("a(a(a(a(a(a(a(a)))))))")
	star := tree.MustParse("a(a,a,a,a,a,a,a)")
	// Same multiset of labels and size, different structure.
	d := Distance(path, star)
	if d == 0 {
		t.Fatal("path and star must differ")
	}
	if bf := BruteForce(path, star, UnitCost{}); bf != d {
		t.Errorf("ZS = %d, brute force = %d", d, bf)
	}
}
