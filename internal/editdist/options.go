package editdist

import "math"

// Functional options for the distance entry points, mirroring the style of
// search.NewIndex: Distance and DistanceWithin take a variadic tail of
// Options selecting the cost model, the cutoff, and an optional metrics
// sink. The zero configuration is the paper's: unit costs, no cutoff.

// noCutoff marks "no threshold": with this cutoff the entry points run the
// plain, unbounded Zhang–Shasha program. Any cutoff at or above
// `unreachable` (math.MaxInt/4) is treated the same way — it cannot prune
// anything a real dataset produces, and keeping the bounded machinery away
// from the int ceiling avoids overflow in the band arithmetic.
const noCutoff = math.MaxInt

// config collects what the options select.
type config struct {
	cost    CostModel
	cutoff  int
	metrics *Metrics
}

// Option configures one Distance or DistanceWithin call.
type Option interface {
	apply(*config)
}

// option adapts a plain function to Option.
type option func(*config)

func (f option) apply(c *config) { f(c) }

// applyOptions folds the options over the defaults (unit costs, no
// cutoff). Nil options are skipped.
func applyOptions(opts []Option) config {
	cfg := config{cost: UnitCost{}, cutoff: noCutoff}
	for _, o := range opts {
		if o == nil {
			continue
		}
		o.apply(&cfg)
	}
	return cfg
}

// WithCost sets the cost model (nil keeps the default unit costs).
func WithCost(m CostModel) Option {
	return option(func(c *config) {
		if m != nil {
			c.cost = m
		}
	})
}

// WithCutoff bounds the computation at cutoff: the result is exact
// whenever the true distance is ≤ cutoff, and otherwise is only guaranteed
// to exceed it. When several cutoffs apply (the option repeated, or
// combined with DistanceWithin's argument), the tightest wins. Use
// DistanceWithin to observe which side of the cutoff the pair landed on.
func WithCutoff(cutoff int) Option {
	return option(func(c *config) {
		if cutoff < c.cutoff {
			c.cutoff = cutoff
		}
	})
}

// Metrics reports what one bounded (or full) distance computation cost —
// the refine-stage accounting the search engine aggregates per query.
type Metrics struct {
	// Cells is how many forest-distance DP cells were actually computed.
	Cells int64
	// FullCells is how many cells the unbounded program computes for the
	// same pair — the denominator for "DP work saved".
	FullCells int64
	// Precheck reports that an O(n) pre-check (size, height, or
	// label-histogram delta) proved the distance exceeds the cutoff before
	// any DP ran.
	Precheck bool
	// Aborted reports that the DP proved the distance exceeds the cutoff
	// without computing it exactly (band restriction and/or frontier-row
	// early abandoning).
	Aborted bool
}

// WithMetrics directs the per-call cost accounting into *m, which is
// reset at the start of the call. Each call needs its own Metrics value —
// concurrent calls must not share one.
func WithMetrics(m *Metrics) Option {
	return option(func(c *config) { c.metrics = m })
}
