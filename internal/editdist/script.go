package editdist

import (
	"fmt"
	"strings"

	"treesim/internal/tree"
)

// OpKind classifies one step of an edit script.
type OpKind int

// The edit operations of Section 2.1, plus Match for mapped pairs with
// equal labels (cost 0, included so the script describes the full mapping).
const (
	Match OpKind = iota
	Relabel
	Delete
	Insert
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case Match:
		return "match"
	case Relabel:
		return "relabel"
	case Delete:
		return "delete"
	case Insert:
		return "insert"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one step of an optimal edit script. Nodes are identified by their
// 1-based postorder index in their tree (A = source, B = target); 0 means
// the op does not touch that side.
type Op struct {
	Kind   OpKind
	AIndex int    // postorder index in T1 (0 for Insert)
	BIndex int    // postorder index in T2 (0 for Delete)
	ALabel string // label of the T1 node ("" for Insert)
	BLabel string // label of the T2 node ("" for Delete)
	Cost   int
}

// String renders the op compactly, e.g. `relabel a@3 -> b@4`.
func (o Op) String() string {
	switch o.Kind {
	case Match:
		return fmt.Sprintf("match   %s@%d == %s@%d", o.ALabel, o.AIndex, o.BLabel, o.BIndex)
	case Relabel:
		return fmt.Sprintf("relabel %s@%d -> %s@%d", o.ALabel, o.AIndex, o.BLabel, o.BIndex)
	case Delete:
		return fmt.Sprintf("delete  %s@%d", o.ALabel, o.AIndex)
	default:
		return fmt.Sprintf("insert  %s@%d", o.BLabel, o.BIndex)
	}
}

// Script is an optimal edit script: a minimum-cost operation sequence
// transforming T1 into T2, together with the underlying Tai mapping.
type Script struct {
	Ops  []Op
	Cost int
}

// Mapping returns the mapped node pairs as (postorder in T1, postorder in
// T2), including both matches and relabels.
func (s *Script) Mapping() [][2]int {
	var out [][2]int
	for _, op := range s.Ops {
		if op.Kind == Match || op.Kind == Relabel {
			out = append(out, [2]int{op.AIndex, op.BIndex})
		}
	}
	return out
}

// Counts returns how many relabels, deletes and inserts the script uses.
func (s *Script) Counts() (relabels, deletes, inserts int) {
	for _, op := range s.Ops {
		switch op.Kind {
		case Relabel:
			relabels++
		case Delete:
			deletes++
		case Insert:
			inserts++
		}
	}
	return
}

// String renders the non-trivial operations, one per line.
func (s *Script) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cost %d\n", s.Cost)
	for _, op := range s.Ops {
		if op.Kind == Match {
			continue
		}
		sb.WriteString(op.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// EditScript returns an optimal unit-cost edit script from t1 to t2.
func EditScript(t1, t2 *tree.Tree) *Script {
	return EditScriptCost(t1, t2, UnitCost{})
}

// EditScriptCost returns an optimal edit script under an arbitrary cost
// model, by backtracing the Zhang–Shasha dynamic program. Its cost always
// equals DistanceCost(t1, t2, c).
func EditScriptCost(t1, t2 *tree.Tree, c CostModel) *Script {
	a, b := decompose(t1), decompose(t2)
	s := &Script{}
	switch {
	case a.n == 0 && b.n == 0:
		return s
	case a.n == 0:
		for j := 1; j <= b.n; j++ {
			s.emit(Op{Kind: Insert, BIndex: j, BLabel: b.label[j], Cost: c.Insert(b.label[j])})
		}
		return s
	case b.n == 0:
		for i := 1; i <= a.n; i++ {
			s.emit(Op{Kind: Delete, AIndex: i, ALabel: a.label[i], Cost: c.Delete(a.label[i])})
		}
		return s
	}

	// Phase 1: the full DP, filling the tree-distance matrix.
	td := make([][]int, a.n+1)
	for i := range td {
		td[i] = make([]int, b.n+1)
	}
	fd := make([][]int, a.n+1)
	for i := range fd {
		fd[i] = make([]int, b.n+1)
	}
	for _, i := range a.keyroots {
		for _, j := range b.keyroots {
			treeDist(a, b, i, j, c, td, fd)
		}
	}

	// Phase 2: recursive backtrace. Each call re-derives the forest
	// distances for the subtree pair (i, j) and walks the optimal path,
	// emitting operations; subtree matches that were solved in a
	// different keyroot computation recurse.
	var backtrace func(i, j int)
	backtrace = func(i, j int) {
		treeDist(a, b, i, j, c, td, fd)
		li, lj := a.lml[i], b.lml[j]
		di, dj := i, j
		for di >= li || dj >= lj {
			switch {
			case di >= li && (dj < lj || fd[di][dj] == fd[di-1][dj]+c.Delete(a.label[di])):
				s.emit(Op{Kind: Delete, AIndex: di, ALabel: a.label[di], Cost: c.Delete(a.label[di])})
				di--
			case dj >= lj && (di < li || fd[di][dj] == fd[di][dj-1]+c.Insert(b.label[dj])):
				s.emit(Op{Kind: Insert, BIndex: dj, BLabel: b.label[dj], Cost: c.Insert(b.label[dj])})
				dj--
			case a.lml[di] == li && b.lml[dj] == lj:
				// Both prefixes are whole subtrees: (di, dj) is mapped.
				cost := c.Relabel(a.label[di], b.label[dj])
				kind := Relabel
				if cost == 0 && a.label[di] == b.label[dj] {
					kind = Match
				}
				s.emit(Op{Kind: kind, AIndex: di, BIndex: dj,
					ALabel: a.label[di], BLabel: b.label[dj], Cost: cost})
				di--
				dj--
			default:
				// The cell came from an independently solved subtree
				// pair: resolve it recursively, then jump across it.
				// Recursion clobbers fd, so restore this forest's
				// distances afterwards.
				si, sj := di, dj
				di, dj = a.lml[si]-1, b.lml[sj]-1
				backtrace(si, sj)
				treeDist(a, b, i, j, c, td, fd)
			}
		}
	}
	backtrace(a.n, b.n)
	return s
}

func (s *Script) emit(op Op) {
	s.Ops = append(s.Ops, op)
	s.Cost += op.Cost
}
