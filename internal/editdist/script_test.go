package editdist

import (
	"math/rand"
	"strings"
	"testing"

	"treesim/internal/tree"
)

func TestEditScriptPaperPair(t *testing.T) {
	s := EditScript(paperT1(), paperT2())
	if s.Cost != 3 {
		t.Fatalf("script cost %d, want 3", s.Cost)
	}
	rel, del, ins := s.Counts()
	if rel+del+ins != 3 {
		t.Errorf("op counts %d+%d+%d, want 3 total", rel, del, ins)
	}
	// T1 (8 nodes) → T2 (9 nodes): net +1 node.
	if ins-del != 1 {
		t.Errorf("inserts−deletes = %d, want 1", ins-del)
	}
	if len(s.Mapping()) == 0 {
		t.Error("empty mapping")
	}
	if !strings.Contains(s.String(), "cost 3") {
		t.Errorf("script rendering: %q", s.String())
	}
}

// TestScriptCostMatchesDistance: the backtraced script always has exactly
// the DP's optimal cost, and its operation costs sum to Cost.
func TestScriptCostMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alphabet := []string{"a", "b", "c"}
	for trial := 0; trial < 200; trial++ {
		t1 := smallRandomTree(rng, 12, alphabet)
		t2 := smallRandomTree(rng, 12, alphabet)
		s := EditScript(t1, t2)
		want := Distance(t1, t2)
		if s.Cost != want {
			t.Fatalf("trial %d: script cost %d, distance %d (%q vs %q)",
				trial, s.Cost, want, t1, t2)
		}
		sum := 0
		for _, op := range s.Ops {
			sum += op.Cost
		}
		if sum != s.Cost {
			t.Fatalf("op costs sum to %d, script says %d", sum, s.Cost)
		}
	}
}

// TestScriptCostMatchesDistanceWeighted repeats under a non-unit model.
func TestScriptCostMatchesDistanceWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	alphabet := []string{"a", "b"}
	c := weighted{rel: 3, ins: 2, del: 5}
	for trial := 0; trial < 100; trial++ {
		t1 := smallRandomTree(rng, 9, alphabet)
		t2 := smallRandomTree(rng, 9, alphabet)
		s := EditScriptCost(t1, t2, c)
		if want := DistanceCost(t1, t2, c); s.Cost != want {
			t.Fatalf("trial %d: script cost %d, distance %d (%q vs %q)",
				trial, s.Cost, want, t1, t2)
		}
	}
}

// TestScriptMappingValid: the mapping underlying the script is a valid Tai
// mapping — one-to-one and preserving both preorder and postorder order —
// and its op counts are consistent with the tree sizes.
func TestScriptMappingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	alphabet := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 150; trial++ {
		t1 := smallRandomTree(rng, 14, alphabet)
		t2 := smallRandomTree(rng, 14, alphabet)
		s := EditScript(t1, t2)
		m := s.Mapping()

		rel, del, ins := s.Counts()
		matches := len(m) - rel
		if matches+rel+del != t1.Size() {
			t.Fatalf("T1 side unbalanced: %d mapped + %d deleted != %d",
				len(m), del, t1.Size())
		}
		if matches+rel+ins != t2.Size() {
			t.Fatalf("T2 side unbalanced: %d mapped + %d inserted != %d",
				len(m), ins, t2.Size())
		}

		pos1 := postToOrders(t1)
		pos2 := postToOrders(t2)
		seenA, seenB := map[int]bool{}, map[int]bool{}
		for _, p := range m {
			if seenA[p[0]] || seenB[p[1]] {
				t.Fatalf("mapping not one-to-one: %v", m)
			}
			seenA[p[0]], seenB[p[1]] = true, true
		}
		for x := 0; x < len(m); x++ {
			for y := x + 1; y < len(m); y++ {
				u1, v1 := m[x][0], m[x][1]
				u2, v2 := m[y][0], m[y][1]
				if (pos1[u1].pre < pos1[u2].pre) != (pos2[v1].pre < pos2[v2].pre) {
					t.Fatalf("preorder order violated by pairs %v, %v", m[x], m[y])
				}
				if (u1 < u2) != (v1 < v2) { // postorder indices
					t.Fatalf("postorder order violated by pairs %v, %v", m[x], m[y])
				}
			}
		}
	}
}

type orders struct{ pre, post int }

// postToOrders maps each node's 1-based postorder index to its orders.
func postToOrders(t *tree.Tree) map[int]orders {
	pos := t.Number()
	out := make(map[int]orders, len(pos.Nodes))
	for _, n := range pos.Nodes {
		out[pos.Post[n]] = orders{pre: pos.Pre[n], post: pos.Post[n]}
	}
	return out
}

func TestEditScriptEmptyTrees(t *testing.T) {
	e := tree.New(nil)
	tr := tree.MustParse("a(b,c)")
	s := EditScript(e, tr)
	if s.Cost != 3 {
		t.Errorf("insert-all cost %d, want 3", s.Cost)
	}
	if _, del, ins := s.Counts(); del != 0 || ins != 3 {
		t.Errorf("expected 3 inserts, got %d del %d ins", del, ins)
	}
	s = EditScript(tr, e)
	if s.Cost != 3 {
		t.Errorf("delete-all cost %d, want 3", s.Cost)
	}
	s = EditScript(e, e)
	if s.Cost != 0 || len(s.Ops) != 0 {
		t.Errorf("empty-empty script: %+v", s)
	}
}

func TestEditScriptIdentity(t *testing.T) {
	tr := paperT2()
	s := EditScript(tr, tr.Clone())
	if s.Cost != 0 {
		t.Fatalf("self script cost %d", s.Cost)
	}
	if len(s.Mapping()) != tr.Size() {
		t.Errorf("self mapping covers %d of %d nodes", len(s.Mapping()), tr.Size())
	}
	for _, op := range s.Ops {
		if op.Kind != Match {
			t.Errorf("non-match op in identity script: %s", op)
		}
	}
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{Match: "match", Relabel: "relabel", Delete: "delete", Insert: "insert"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("OpKind(%d).String() = %q", int(k), k.String())
		}
	}
	if OpKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
