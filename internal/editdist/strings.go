package editdist

import "treesim/internal/tree"

// StringDistance returns the unit-cost Levenshtein edit distance between
// two label sequences, in O(|a|·|b|) time and O(min) space.
func StringDistance(a, b []string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	// b is the shorter sequence; one rolling row of length |b|+1.
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			sub := prev[j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, sub)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// preLabels returns the node labels of t in preorder.
func preLabels(t *tree.Tree) []string {
	out := make([]string, 0, t.Size())
	t.Walk(func(n *tree.Node) bool {
		out = append(out, n.Label)
		return true
	})
	return out
}

// postLabels returns the node labels of t in postorder.
func postLabels(t *tree.Tree) []string {
	nodes := t.PostOrder()
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label
	}
	return out
}

// SequenceLowerBound implements the lower bound of Guha et al. (SIGMOD
// 2002, reference [15] of the paper): the maximum of the string edit
// distances of the preorder and the postorder label sequences lower-bounds
// the tree edit distance. It costs O(|T1|·|T2|) — asymptotically the same
// as one tree-distance evaluation, which is exactly the scalability problem
// the binary branch embedding avoids; it is included as a baseline.
func SequenceLowerBound(t1, t2 *tree.Tree) int {
	pre := StringDistance(preLabels(t1), preLabels(t2))
	post := StringDistance(postLabels(t1), postLabels(t2))
	if post > pre {
		return post
	}
	return pre
}
