package editdist

import (
	"math/rand"
	"strings"
	"testing"

	"treesim/internal/tree"
)

func split(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "")
}

func TestStringDistanceKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "acb", 2}, // no transposition operation
	}
	for _, c := range cases {
		if got := StringDistance(split(c.a), split(c.b)); got != c.want {
			t.Errorf("StringDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestStringDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		a := randString(rng, 12)
		b := randString(rng, 12)
		if StringDistance(a, b) != StringDistance(b, a) {
			t.Fatalf("asymmetric for %v, %v", a, b)
		}
	}
}

func randString(rng *rand.Rand, maxLen int) []string {
	n := rng.Intn(maxLen)
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + rng.Intn(3)))
	}
	return out
}

// TestSequenceLowerBoundSound: the Guha et al. bound never exceeds the true
// tree edit distance.
func TestSequenceLowerBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	alphabet := []string{"a", "b", "c"}
	for trial := 0; trial < 200; trial++ {
		t1 := smallRandomTree(rng, 8, alphabet)
		t2 := smallRandomTree(rng, 8, alphabet)
		lb := SequenceLowerBound(t1, t2)
		d := Distance(t1, t2)
		if lb > d {
			t.Fatalf("sequence bound %d exceeds edit distance %d for %q vs %q",
				lb, d, t1, t2)
		}
	}
}

func TestSequenceLowerBoundTakesMax(t *testing.T) {
	// Identical preorders, different postorders: a(b(c)) vs a(b,c) have
	// preorder abc/abc (distance 0) but postorder cba/bca (distance 2).
	t1, t2 := tree.MustParse("a(b(c))"), tree.MustParse("a(b,c)")
	if got := SequenceLowerBound(t1, t2); got != 2 {
		t.Errorf("SequenceLowerBound = %d, want 2", got)
	}
}
