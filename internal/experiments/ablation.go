package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"treesim/internal/datagen"
	"treesim/internal/search"
	"treesim/internal/tree"
)

// Ablations of the design choices DESIGN.md calls out. Each returns a
// Table whose BiBranch column holds the variant under study and whose
// Histo column is reused for the comparison variant, with the row label
// naming the configuration.

// AblationPositional compares the positional optimistic bound
// (SearchLBound / RangeLowerBound) against plain ceil(BDist/5) filtering
// on one synthetic dataset, for k-NN and range queries.
func AblationPositional(cfg Config) *Table {
	spec := syntheticSpec(4, 50, 8)
	ts := datagen.New(spec, cfg.Seed).Dataset(cfg.DatasetSize, cfg.Seeds)
	rng := rand.New(rand.NewSource(cfg.Seed))
	avg := cfg.avgPairwiseDistance(ts, rng)
	tau := int(avg*cfg.RangeFraction + 0.5)
	if tau < 1 {
		tau = 1
	}
	qs := cfg.sampleQueries(ts, rng)
	k := cfg.k(len(ts))

	pos := search.NewIndex(ts, &search.BiBranch{Q: 2, Positional: true})
	plain := search.NewIndex(ts, &search.BiBranch{Q: 2, Positional: false})

	t := &Table{
		Figure:  "Ablation: positional bound",
		Title:   "SearchLBound (BiBranch column) vs plain ceil(BDist/5) (Histo column)",
		Dataset: spec.String(),
		XLabel:  "query",
	}
	t.Rows = append(t.Rows,
		ablationRow(cfg, fmt.Sprintf("knn k=%d", k), qs, func(q *tree.Tree) search.Stats {
			_, st, _ := pos.KNN(context.Background(), q, k)
			return st
		}, func(q *tree.Tree) search.Stats {
			_, st, _ := plain.KNN(context.Background(), q, k)
			return st
		}),
		ablationRow(cfg, fmt.Sprintf("range tau=%d", tau), qs, func(q *tree.Tree) search.Stats {
			_, st, _ := pos.Range(context.Background(), q, tau)
			return st
		}, func(q *tree.Tree) search.Stats {
			_, st, _ := plain.Range(context.Background(), q, tau)
			return st
		}),
	)
	return t
}

// AblationQ sweeps the branch level q ∈ {2,3,4}: the BiBranch column holds
// q's accessed percentage, the Histo column repeats q=2 as the reference.
func AblationQ(cfg Config) *Table {
	spec := syntheticSpec(4, 50, 8)
	ts := datagen.New(spec, cfg.Seed).Dataset(cfg.DatasetSize, cfg.Seeds)
	rng := rand.New(rand.NewSource(cfg.Seed))
	avg := cfg.avgPairwiseDistance(ts, rng)
	tau := int(avg*cfg.RangeFraction + 0.5)
	if tau < 1 {
		tau = 1
	}
	qs := cfg.sampleQueries(ts, rng)

	ref := search.NewIndex(ts, &search.BiBranch{Q: 2, Positional: true})
	t := &Table{
		Figure:  "Ablation: branch level q",
		Title:   "q-level filtering (BiBranch column) vs q=2 reference (Histo column), range queries",
		Dataset: spec.String(),
		XLabel:  "q",
	}
	for _, q := range []int{2, 3, 4} {
		ix := search.NewIndex(ts, &search.BiBranch{Q: q, Positional: true})
		t.Rows = append(t.Rows,
			ablationRow(cfg, fmt.Sprintf("%d", q), qs, func(qt *tree.Tree) search.Stats {
				_, st, _ := ix.Range(context.Background(), qt, tau)
				return st
			}, func(qt *tree.Tree) search.Stats {
				_, st, _ := ref.Range(context.Background(), qt, tau)
				return st
			}))
	}
	return t
}

// AblationFilters compares the BiBranch filter family on range queries:
// the plain per-candidate engine, the pivot cascade (stage-one bounds from
// precomputed pivot distances), and the VP-tree candidate enumeration.
// All three verify the same trees (they share the stage-two bound); the
// difference is filter-phase time. The BiBranch column holds each
// variant's accessed percentage, the Histo column the plain variant as
// reference.
func AblationFilters(cfg Config) *Table {
	spec := syntheticSpec(4, 50, 8)
	ts := datagen.New(spec, cfg.Seed).Dataset(cfg.DatasetSize, cfg.Seeds)
	rng := rand.New(rand.NewSource(cfg.Seed))
	avg := cfg.avgPairwiseDistance(ts, rng)
	tau := int(avg*cfg.RangeFraction + 0.5)
	if tau < 1 {
		tau = 1
	}
	qs := cfg.sampleQueries(ts, rng)

	ref := search.NewIndex(ts, search.NewBiBranch())
	variants := []struct {
		name string
		f    search.Filter
	}{
		{"plain", search.NewBiBranch()},
		{"pivot", search.NewPivotBiBranch()},
		{"vptree", search.NewVPBiBranch()},
	}
	t := &Table{
		Figure:  "Ablation: filter variants",
		Title:   fmt.Sprintf("BiBranch engine variants, range queries at tau=%d (Histo column = plain reference)", tau),
		Dataset: spec.String(),
		XLabel:  "variant",
	}
	for _, v := range variants {
		ix := search.NewIndex(ts, search.WithFilter(v.f))
		t.Rows = append(t.Rows,
			ablationRow(cfg, v.name, qs, func(q *tree.Tree) search.Stats {
				_, st, _ := ix.Range(context.Background(), q, tau)
				return st
			}, func(q *tree.Tree) search.Stats {
				_, st, _ := ref.Range(context.Background(), q, tau)
				return st
			}))
	}
	return t
}

// ablationRow runs the variant (→ BiBranch column) and the reference
// (→ Histo column) over the query set and aggregates.
func ablationRow(cfg Config, label string, qs []*tree.Tree,
	variant, reference func(*tree.Tree) search.Stats) Row {
	var va, ra search.Stats
	for _, st := range cfg.forEachQuery(qs, variant) {
		va.Add(st)
	}
	for _, st := range cfg.forEachQuery(qs, reference) {
		ra.Add(st)
	}
	n := time.Duration(len(qs))
	return Row{
		X:            label,
		BiBranchPct:  100 * va.AccessedFraction(),
		HistoPct:     100 * ra.AccessedFraction(),
		BiBranchTime: va.Total() / n,
		SeqTime:      ra.Total() / n,
	}
}
