// Package experiments regenerates every figure of the paper's evaluation
// (Section 5, Figs. 7–15): the sensitivity studies on synthetic data, the
// DBLP query studies, and the distance-distribution comparison of filter
// lower bounds. Each figure function returns a Table whose rows are the
// series the paper plots — the percentage of accessed data for the
// BiBranch and Histo filters, the CPU time of the filtered search and of
// the sequential scan, and the result-set size.
//
// Absolute timings obviously differ from the paper's 2005 C++/Pentium 4
// setup; the reproduction targets the figure *shapes*: who wins, by what
// factor, and where the trends bend (see EXPERIMENTS.md).
package experiments

import (
	"math/rand"
	"runtime"
	"sync"

	"treesim/internal/editdist"
	"treesim/internal/search"
	"treesim/internal/tree"
)

// Config scales an experiment run.
type Config struct {
	// DatasetSize is the number of trees per dataset (paper: 2000).
	DatasetSize int
	// Queries is the number of random queries averaged (paper: 100).
	Queries int
	// Seeds is the number of seed trees (mutation chains) per synthetic
	// dataset.
	Seeds int
	// KNNFraction sets k = max(1, round(fraction·|D|)) (paper: 0.25%).
	KNNFraction float64
	// RangeFraction sets the range radius τ as a fraction of the average
	// pairwise distance (paper: 1/5).
	RangeFraction float64
	// DistSamplePairs is how many random pairs are sampled to estimate
	// the average pairwise distance.
	DistSamplePairs int
	// Seed drives all random choices.
	Seed int64
	// Workers bounds query parallelism; 0 means GOMAXPROCS.
	Workers int
}

// PaperScale returns the paper's experiment dimensions. A full run at this
// scale takes on the order of hours (it is dominated by the sequential
// scans the paper also ran).
func PaperScale() Config {
	return Config{
		DatasetSize:     2000,
		Queries:         100,
		Seeds:           20,
		KNNFraction:     0.0025,
		RangeFraction:   0.2,
		DistSamplePairs: 500,
		Seed:            1,
	}
}

// QuickScale returns a laptop-scale configuration that preserves the
// figure shapes while keeping the full suite in the minutes range.
func QuickScale() Config {
	return Config{
		DatasetSize:     300,
		Queries:         20,
		Seeds:           12,
		KNNFraction:     0.01,
		RangeFraction:   0.2,
		DistSamplePairs: 150,
		Seed:            1,
	}
}

// UnitScale is a minimal configuration for tests.
func UnitScale() Config {
	return Config{
		DatasetSize:     80,
		Queries:         6,
		Seeds:           8,
		KNNFraction:     0.03,
		RangeFraction:   0.2,
		DistSamplePairs: 60,
		Seed:            1,
	}
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// k returns the k-NN parameter for a dataset of size n.
func (c Config) k(n int) int {
	k := int(float64(n)*c.KNNFraction + 0.5)
	if k < 1 {
		k = 1
	}
	return k
}

// sampleQueries draws Queries random members of the dataset (the paper
// selects queries randomly from the dataset).
func (c Config) sampleQueries(ts []*tree.Tree, rng *rand.Rand) []*tree.Tree {
	qs := make([]*tree.Tree, c.Queries)
	for i := range qs {
		qs[i] = ts[rng.Intn(len(ts))]
	}
	return qs
}

// avgPairwiseDistance estimates the average tree edit distance over the
// dataset by sampling random pairs.
func (c Config) avgPairwiseDistance(ts []*tree.Tree, rng *rand.Rand) float64 {
	if len(ts) < 2 || c.DistSamplePairs == 0 {
		return 0
	}
	type pair struct{ i, j int }
	pairs := make([]pair, c.DistSamplePairs)
	for n := range pairs {
		i, j := rng.Intn(len(ts)), rng.Intn(len(ts))
		for i == j {
			j = rng.Intn(len(ts))
		}
		pairs[n] = pair{i, j}
	}
	sums := make([]int, c.workers())
	var wg sync.WaitGroup
	chunk := (len(pairs) + len(sums) - 1) / len(sums)
	for w := range sums {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for _, p := range pairs[lo:hi] {
				sums[w] += editdist.Distance(ts[p.i], ts[p.j])
			}
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, s := range sums {
		total += s
	}
	return float64(total) / float64(len(pairs))
}

// forEachQuery runs fn over the queries with bounded parallelism and
// returns the per-query stats in order.
func (c Config) forEachQuery(qs []*tree.Tree, fn func(q *tree.Tree) search.Stats) []search.Stats {
	out := make([]search.Stats, len(qs))
	sem := make(chan struct{}, c.workers())
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q *tree.Tree) {
			defer wg.Done()
			out[i] = fn(q)
			<-sem
		}(i, q)
	}
	wg.Wait()
	return out
}
