package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"treesim/internal/dblp"
)

func TestConfigK(t *testing.T) {
	cfg := Config{KNNFraction: 0.0025}
	if cfg.k(2000) != 5 {
		t.Errorf("k(2000) = %d, want 5 (the paper's 0.25%%)", cfg.k(2000))
	}
	if cfg.k(10) != 1 {
		t.Errorf("k(10) = %d, want at least 1", cfg.k(10))
	}
}

func TestAvgPairwiseDistance(t *testing.T) {
	cfg := UnitScale()
	ts := DBLPDataset(cfg)
	rng := rand.New(rand.NewSource(1))
	avg := cfg.avgPairwiseDistance(ts, rng)
	if avg <= 0 {
		t.Fatalf("average pairwise distance %f must be positive", avg)
	}
	// DBLP-like records are ~10 nodes; avg distance must be far below the
	// delete-all/insert-all bound.
	if avg > 20 {
		t.Errorf("average pairwise distance %f implausibly large", avg)
	}
}

// TestFigureRangeSmoke runs a synthetic range figure at unit scale and
// checks the structural claims the paper makes: BiBranch accesses no more
// than Histo, and at least the result set.
func TestFigureRangeSmoke(t *testing.T) {
	cfg := UnitScale()
	tbl := Fig07(cfg)
	if len(tbl.Rows) != 4 {
		t.Fatalf("Fig07 has %d rows, want 4", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.BiBranchPct > r.HistoPct+1e-9 {
			t.Errorf("fanout %s: BiBranch %.2f%% accessed more than Histo %.2f%%",
				r.X, r.BiBranchPct, r.HistoPct)
		}
		if r.BiBranchPct+1e-9 < r.ResultPct {
			t.Errorf("fanout %s: accessed %.2f%% below result size %.2f%% — impossible for a complete search",
				r.X, r.BiBranchPct, r.ResultPct)
		}
		if r.Tau < 1 {
			t.Errorf("fanout %s: tau = %d", r.X, r.Tau)
		}
	}
	if s := tbl.String(); !strings.Contains(s, "Figure 7") {
		t.Error("table rendering lost the figure header")
	}
}

func TestFigureKNNSmoke(t *testing.T) {
	cfg := UnitScale()
	tbl := Fig13(cfg)
	if len(tbl.Rows) != 7 {
		t.Fatalf("Fig13 has %d rows, want 7", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.BiBranchPct <= 0 || r.BiBranchPct > 100 {
			t.Errorf("k=%s: BiBranch%% = %f out of range", r.X, r.BiBranchPct)
		}
		// k-NN must access at least k trees.
		minPct := 100 * float64(r.K) / float64(cfg.DatasetSize)
		if r.BiBranchPct+1e-9 < minPct {
			t.Errorf("k=%s: accessed %.2f%% below k/|D| = %.2f%%", r.X, r.BiBranchPct, minPct)
		}
	}
}

// TestFig15Monotone: every cumulative curve is non-decreasing in the
// distance, ends ≤ 100, and each lower bound's curve dominates (lies above)
// the Edit curve — lower bounds only ever shift mass toward smaller values.
func TestFig15(t *testing.T) {
	cfg := UnitScale()
	tbl := Fig15(cfg)
	if len(tbl.Rows) != 12 {
		t.Fatalf("Fig15 has %d rows, want 12", len(tbl.Rows))
	}
	prev := DistRow{}
	for i, r := range tbl.Rows {
		curves := []float64{r.Edit, r.Histo, r.BiBranch2, r.BiBranch3, r.BiBranch4}
		prevCurves := []float64{prev.Edit, prev.Histo, prev.BiBranch2, prev.BiBranch3, prev.BiBranch4}
		for c := range curves {
			if curves[c] < 0 || curves[c] > 100+1e-9 {
				t.Errorf("row %d curve %d out of range: %f", i, c, curves[c])
			}
			if i > 0 && curves[c]+1e-9 < prevCurves[c] {
				t.Errorf("row %d curve %d decreased: %f -> %f", i, c, prevCurves[c], curves[c])
			}
		}
		// A lower bound never exceeds the true distance, so its CDF is ≥
		// the Edit CDF pointwise.
		for c := 1; c < len(curves); c++ {
			if curves[c]+1e-9 < r.Edit {
				t.Errorf("distance %d: bound curve %d (%.1f) below Edit (%.1f)",
					r.Distance, c, curves[c], r.Edit)
			}
		}
		prev = r
	}
	if !strings.Contains(tbl.String(), "BiBranch(3)") {
		t.Error("Fig15 rendering lost a curve header")
	}
}

func TestAblationTables(t *testing.T) {
	cfg := UnitScale()
	pos := AblationPositional(cfg)
	if len(pos.Rows) != 2 {
		t.Fatalf("positional ablation rows: %d", len(pos.Rows))
	}
	for _, r := range pos.Rows {
		// The positional bound dominates the plain bound, so it can never
		// verify more.
		if r.BiBranchPct > r.HistoPct+1e-9 {
			t.Errorf("%s: positional %.2f%% verified more than plain %.2f%%",
				r.X, r.BiBranchPct, r.HistoPct)
		}
	}
	qt := AblationQ(cfg)
	if len(qt.Rows) != 3 {
		t.Fatalf("q ablation rows: %d", len(qt.Rows))
	}
	if qt.Rows[0].BiBranchPct > qt.Rows[2].BiBranchPct {
		t.Errorf("q=2 (%.2f%%) should verify no more than q=4 (%.2f%%) on 50-node trees",
			qt.Rows[0].BiBranchPct, qt.Rows[2].BiBranchPct)
	}
}

func TestAblationFilters(t *testing.T) {
	tbl := AblationFilters(UnitScale())
	if len(tbl.Rows) != 3 {
		t.Fatalf("filter ablation rows: %d", len(tbl.Rows))
	}
	// All variants share the stage-two bound, so accessed percentages are
	// identical to the plain reference.
	for _, r := range tbl.Rows {
		if r.BiBranchPct != r.HistoPct {
			t.Errorf("variant %s verified %.2f%%, reference %.2f%% — cascade changed results",
				r.X, r.BiBranchPct, r.HistoPct)
		}
	}
}

func TestIOCost(t *testing.T) {
	cfg := UnitScale()
	tbl, err := IOCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("IO cost rows: %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.HistoPct < 99.9 {
			t.Errorf("tau=%s: sequential scan read %.2f%% of pages, want 100%%", r.X, r.HistoPct)
		}
		if r.BiBranchPct > r.HistoPct+1e-9 {
			t.Errorf("tau=%s: filtered read more pages than the scan", r.X)
		}
	}
	// The most selective radius must actually save I/O.
	if tbl.Rows[0].BiBranchPct >= 99 {
		t.Errorf("tau=%s: filtered query read %.2f%% of pages — no I/O saving",
			tbl.Rows[0].X, tbl.Rows[0].BiBranchPct)
	}
}

func TestCSVOutput(t *testing.T) {
	cfg := UnitScale()
	var sb strings.Builder
	if err := RunFormat("13", cfg, &sb, "csv"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "k,bibranch_pct") {
		t.Errorf("csv header missing: %q", out[:40])
	}
	if got := strings.Count(out, "\n"); got != 8 { // header + 7 rows
		t.Errorf("csv has %d lines, want 8", got)
	}
	sb.Reset()
	if err := RunFormat("15", cfg, &sb, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "distance,edit") {
		t.Error("distribution csv header missing")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := Run("99", UnitScale(), &sb); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := Run("14", UnitScale(), &sb); err != nil {
		t.Errorf("figure 14 failed: %v", err)
	}
}

// tinyScale keeps the all-figure smoke test fast.
func tinyScale() Config {
	return Config{
		DatasetSize:     40,
		Queries:         3,
		Seeds:           6,
		KNNFraction:     0.05,
		RangeFraction:   0.2,
		DistSamplePairs: 30,
		Seed:            1,
	}
}

// TestAllFiguresSmoke runs every figure end to end at a tiny scale,
// checking only structural sanity — each figure's row count and that
// percentages are in range.
func TestAllFiguresSmoke(t *testing.T) {
	cfg := tinyScale()
	figs := []struct {
		name string
		rows int
		tbl  *Table
	}{
		{"Fig08", 4, Fig08(cfg)},
		{"Fig09", 4, Fig09(cfg)},
		{"Fig10", 4, Fig10(cfg)},
		{"Fig11", 4, Fig11(cfg)},
		{"Fig12", 4, Fig12(cfg)},
		{"Fig14", 7, Fig14(cfg)},
	}
	for _, f := range figs {
		if len(f.tbl.Rows) != f.rows {
			t.Errorf("%s: %d rows, want %d", f.name, len(f.tbl.Rows), f.rows)
		}
		for _, r := range f.tbl.Rows {
			if r.BiBranchPct < 0 || r.BiBranchPct > 100+1e-9 ||
				r.HistoPct < 0 || r.HistoPct > 100+1e-9 {
				t.Errorf("%s row %s: percentages out of range (%.2f, %.2f)",
					f.name, r.X, r.BiBranchPct, r.HistoPct)
			}
		}
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	var sb strings.Builder
	if err := RunAll(tinyScale(), &sb); err != nil {
		t.Fatal(err)
	}
	for _, fig := range FigureNames {
		if !strings.Contains(sb.String(), "Figure "+fig) {
			t.Errorf("RunAll output missing figure %s", fig)
		}
	}
}

func TestScalePresets(t *testing.T) {
	p := PaperScale()
	if p.DatasetSize != 2000 || p.Queries != 100 || p.KNNFraction != 0.0025 {
		t.Errorf("PaperScale changed: %+v", p)
	}
	q := QuickScale()
	if q.DatasetSize >= p.DatasetSize {
		t.Error("QuickScale should be smaller than PaperScale")
	}
	cfg := Config{Workers: 3}
	if cfg.workers() != 3 {
		t.Error("explicit worker count ignored")
	}
	if (Config{}).workers() < 1 {
		t.Error("default workers must be positive")
	}
}

func TestDBLPDatasetShape(t *testing.T) {
	cfg := UnitScale()
	ts := DBLPDataset(cfg)
	if len(ts) != cfg.DatasetSize {
		t.Fatalf("dataset size %d", len(ts))
	}
	avgSize, avgHeight := dblp.Stats(ts)
	// The paper's DBLP sample: avg 10.15 nodes, shallow (height 3).
	if avgSize < 7 || avgSize > 14 {
		t.Errorf("avg record size %.2f outside DBLP-like envelope", avgSize)
	}
	if avgHeight < 2.5 || avgHeight > 3.5 {
		t.Errorf("avg record height %.2f outside DBLP-like envelope", avgHeight)
	}
}
