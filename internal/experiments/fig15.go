package experiments

import (
	"fmt"
	"math/rand"

	"treesim/internal/branch"
	"treesim/internal/editdist"
	"treesim/internal/histogram"
	"treesim/internal/tree"
)

// Fig15 — data distribution on distance (Section 5.3). For every query and
// every data tree we compute the exact edit distance and the four filter
// lower bounds (Histo; BiBranch at q = 2, 3, 4 — each binary branch
// distance scaled to its edit-distance bound by Factor(q)), then report
// the cumulative percentage of the dataset whose value is ≤ d for
// d = 1..12, averaged over queries. A good lower bound's curve stays close
// below the Edit curve; a loose one piles mass onto small distances.
func Fig15(cfg Config) *DistTable {
	ts := DBLPDataset(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	qs := cfg.sampleQueries(ts, rng)

	spaces := []*branch.Space{branch.NewSpace(2), branch.NewSpace(3), branch.NewSpace(4)}
	profiles := make([][]*branch.Profile, len(spaces))
	for i, s := range spaces {
		profiles[i] = s.ProfileAll(ts)
	}
	// The histogram distance uses the same equal-space folding as the
	// Histo search filter (Section 5's fairness rule).
	nodes := 0
	for _, t := range ts {
		nodes += t.Size()
	}
	hcfg := histogram.EqualSpace(3 * nodes / len(ts))
	hists := histogram.ProfileAllConfig(ts, hcfg)

	const maxDist = 12
	// counts[m][d] accumulates, per measure m, how many (query, data)
	// pairs have value ≤ d.
	const (
		mEdit = iota
		mHisto
		mBB2
		mBB3
		mBB4
		nMeasures
	)
	var counts [nMeasures][maxDist + 1]int

	type qprofiles struct {
		bb [3]*branch.Profile
		h  *histogram.Profile
		t  *tree.Tree
	}
	for _, q := range qs {
		qp := qprofiles{t: q, h: histogram.NewProfileConfig(q, hcfg)}
		for i, s := range spaces {
			qp.bb[i] = s.Profile(q)
		}
		dists := cfg.forEachQueryIdx(len(ts), func(i int) [nMeasures]int {
			var v [nMeasures]int
			v[mEdit] = editdist.Distance(qp.t, ts[i])
			v[mHisto] = histogram.LowerBound(qp.h, hists[i])
			for s := 0; s < 3; s++ {
				v[mBB2+s] = branch.BDistLowerBound(qp.bb[s], profiles[s][i])
			}
			return v
		})
		for _, v := range dists {
			for m := 0; m < nMeasures; m++ {
				for d := v[m]; d <= maxDist; d++ {
					if d >= 0 {
						counts[m][d]++
					}
				}
			}
		}
	}

	total := float64(len(qs) * len(ts))
	t := &DistTable{
		Figure:  "Figure 15",
		Title:   "Data Distribution on Distance",
		Dataset: fmt.Sprintf("DBLP-like, %d records, %d queries", len(ts), len(qs)),
	}
	for d := 1; d <= maxDist; d++ {
		t.Rows = append(t.Rows, DistRow{
			Distance:  d,
			Edit:      100 * float64(counts[mEdit][d]) / total,
			Histo:     100 * float64(counts[mHisto][d]) / total,
			BiBranch2: 100 * float64(counts[mBB2][d]) / total,
			BiBranch3: 100 * float64(counts[mBB3][d]) / total,
			BiBranch4: 100 * float64(counts[mBB4][d]) / total,
		})
	}
	return t
}

// forEachQueryIdx evaluates fn(0..n-1) with bounded parallelism, returning
// the results in order.
func (c Config) forEachQueryIdx(n int, fn func(i int) [5]int) [][5]int {
	out := make([][5]int, n)
	workers := c.workers()
	chunk := (n + workers - 1) / workers
	done := make(chan struct{}, workers)
	started := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		started++
		go func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = fn(i)
			}
			done <- struct{}{}
		}(lo, hi)
	}
	for i := 0; i < started; i++ {
		<-done
	}
	return out
}
