package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"treesim/internal/datagen"
	"treesim/internal/dblp"
	"treesim/internal/search"
	"treesim/internal/tree"
)

// syntheticSpec builds the Section 5.1 dataset specification with one
// parameter swept.
func syntheticSpec(fanout, size float64, labels int) datagen.Spec {
	return datagen.Spec{
		FanoutMean: fanout, FanoutStd: 0.5,
		SizeMean: size, SizeStd: 2,
		Labels: labels, Decay: 0.05,
	}
}

// rangeRow runs the range-query experiment on one dataset: the radius is
// RangeFraction of the (sampled) average pairwise distance, queries are
// dataset members, and the row reports the accessed-data percentages of
// BiBranch and Histo plus the CPU time of BiBranch search vs. the
// sequential scan.
func (c Config) rangeRow(x string, ts []*tree.Tree, rng *rand.Rand) Row {
	avg := c.avgPairwiseDistance(ts, rng)
	tau := int(avg*c.RangeFraction + 0.5)
	if tau < 1 {
		tau = 1
	}
	return c.rangeRowTau(x, ts, tau, rng)
}

func (c Config) rangeRowTau(x string, ts []*tree.Tree, tau int, rng *rand.Rand) Row {
	qs := c.sampleQueries(ts, rng)
	bib := search.NewIndex(ts, search.NewBiBranch())
	his := search.NewIndex(ts, search.NewHisto())
	seq := search.NewIndex(ts, search.NewNone())

	var bibAgg, hisAgg, seqAgg search.Stats
	for _, st := range c.forEachQuery(qs, func(q *tree.Tree) search.Stats {
		_, st, _ := bib.Range(context.Background(), q, tau)
		return st
	}) {
		bibAgg.Add(st)
	}
	for _, st := range c.forEachQuery(qs, func(q *tree.Tree) search.Stats {
		_, st, _ := his.Range(context.Background(), q, tau)
		return st
	}) {
		hisAgg.Add(st)
	}
	for _, st := range c.forEachQuery(qs, func(q *tree.Tree) search.Stats {
		_, st, _ := seq.Range(context.Background(), q, tau)
		return st
	}) {
		seqAgg.Add(st)
	}

	n := time.Duration(len(qs))
	return Row{
		X:            x,
		Tau:          tau,
		BiBranchPct:  100 * bibAgg.AccessedFraction(),
		HistoPct:     100 * hisAgg.AccessedFraction(),
		ResultPct:    100 * float64(seqAgg.Results) / float64(seqAgg.Dataset),
		BiBranchTime: bibAgg.Total() / n,
		SeqTime:      seqAgg.Total() / n,
	}
}

// knnRow runs the k-NN experiment on one dataset.
func (c Config) knnRow(x string, ts []*tree.Tree, k int, rng *rand.Rand) Row {
	qs := c.sampleQueries(ts, rng)
	bib := search.NewIndex(ts, search.NewBiBranch())
	his := search.NewIndex(ts, search.NewHisto())
	seq := search.NewIndex(ts, search.NewNone())

	var bibAgg, hisAgg, seqAgg search.Stats
	for _, st := range c.forEachQuery(qs, func(q *tree.Tree) search.Stats {
		_, st, _ := bib.KNN(context.Background(), q, k)
		return st
	}) {
		bibAgg.Add(st)
	}
	for _, st := range c.forEachQuery(qs, func(q *tree.Tree) search.Stats {
		_, st, _ := his.KNN(context.Background(), q, k)
		return st
	}) {
		hisAgg.Add(st)
	}
	for _, st := range c.forEachQuery(qs, func(q *tree.Tree) search.Stats {
		_, st, _ := seq.KNN(context.Background(), q, k)
		return st
	}) {
		seqAgg.Add(st)
	}

	n := time.Duration(len(qs))
	return Row{
		X:            x,
		K:            k,
		BiBranchPct:  100 * bibAgg.AccessedFraction(),
		HistoPct:     100 * hisAgg.AccessedFraction(),
		ResultPct:    100 * float64(seqAgg.Results) / float64(seqAgg.Dataset),
		BiBranchTime: bibAgg.Total() / n,
		SeqTime:      seqAgg.Total() / n,
	}
}

// Fig07 — sensitivity to fanout, range queries (dataset N{f,0.5}N{50,2}L8D0.05).
func Fig07(cfg Config) *Table {
	return cfg.fanoutSweep("Figure 7", "Sensitivity to Fanout Variation for Range Queries", false)
}

// Fig08 — sensitivity to fanout, k-NN queries.
func Fig08(cfg Config) *Table {
	return cfg.fanoutSweep("Figure 8", "Sensitivity to Fanout Variation for k-NN Queries", true)
}

func (c Config) fanoutSweep(fig, title string, knn bool) *Table {
	t := &Table{Figure: fig, Title: title, Dataset: "N{f,0.5}N{50,2}L8D0.05", XLabel: "fanout"}
	for _, f := range []float64{2, 4, 6, 8} {
		spec := syntheticSpec(f, 50, 8)
		rng := rand.New(rand.NewSource(c.Seed))
		ts := datagen.New(spec, c.Seed).Dataset(c.DatasetSize, c.Seeds)
		x := fmt.Sprintf("%g", f)
		if knn {
			t.Rows = append(t.Rows, c.knnRow(x, ts, c.k(len(ts)), rng))
		} else {
			t.Rows = append(t.Rows, c.rangeRow(x, ts, rng))
		}
	}
	return t
}

// Fig09 — sensitivity to tree size, range queries (N{4,0.5}N{s,2}L8D0.05).
func Fig09(cfg Config) *Table {
	return cfg.sizeSweep("Figure 9", "Sensitivity to Size of Trees for Range Queries", false)
}

// Fig10 — sensitivity to tree size, k-NN queries.
func Fig10(cfg Config) *Table {
	return cfg.sizeSweep("Figure 10", "Sensitivity to Size of Trees for k-NN Queries", true)
}

func (c Config) sizeSweep(fig, title string, knn bool) *Table {
	t := &Table{Figure: fig, Title: title, Dataset: "N{4,0.5}N{s,2}L8D0.05", XLabel: "tree size"}
	for _, s := range []float64{25, 50, 75, 125} {
		spec := syntheticSpec(4, s, 8)
		rng := rand.New(rand.NewSource(c.Seed))
		ts := datagen.New(spec, c.Seed).Dataset(c.DatasetSize, c.Seeds)
		x := fmt.Sprintf("%g", s)
		if knn {
			t.Rows = append(t.Rows, c.knnRow(x, ts, c.k(len(ts)), rng))
		} else {
			t.Rows = append(t.Rows, c.rangeRow(x, ts, rng))
		}
	}
	return t
}

// Fig11 — sensitivity to the number of labels, range queries
// (N{4,0.5}N{50,2}L{y}D0.05).
func Fig11(cfg Config) *Table {
	return cfg.labelSweep("Figure 11", "Sensitivity to Number of Labels for Range Queries", false)
}

// Fig12 — sensitivity to the number of labels, k-NN queries.
func Fig12(cfg Config) *Table {
	return cfg.labelSweep("Figure 12", "Sensitivity to Number of Labels for k-NN Queries", true)
}

func (c Config) labelSweep(fig, title string, knn bool) *Table {
	t := &Table{Figure: fig, Title: title, Dataset: "N{4,0.5}N{50,2}L{y}D0.05", XLabel: "labels"}
	for _, y := range []int{8, 16, 32, 64} {
		spec := syntheticSpec(4, 50, y)
		rng := rand.New(rand.NewSource(c.Seed))
		ts := datagen.New(spec, c.Seed).Dataset(c.DatasetSize, c.Seeds)
		x := fmt.Sprintf("%d", y)
		if knn {
			t.Rows = append(t.Rows, c.knnRow(x, ts, c.k(len(ts)), rng))
		} else {
			t.Rows = append(t.Rows, c.rangeRow(x, ts, rng))
		}
	}
	return t
}

// DBLPDataset builds the DBLP-like dataset used by Figs. 13–15.
func DBLPDataset(cfg Config) []*tree.Tree {
	return dblp.New(cfg.Seed).Dataset(cfg.DatasetSize)
}

// Fig13 — k-NN searches on DBLP with k swept over the paper's values.
func Fig13(cfg Config) *Table {
	ts := DBLPDataset(cfg)
	avgSize, avgHeight := dblp.Stats(ts)
	t := &Table{
		Figure:  "Figure 13",
		Title:   "k-NN Searches on DBLP",
		Dataset: fmt.Sprintf("DBLP-like, %d records (avg size %.2f, avg height %.2f)", len(ts), avgSize, avgHeight),
		XLabel:  "k",
	}
	for _, k := range []int{5, 7, 10, 12, 15, 17, 20} {
		rng := rand.New(rand.NewSource(cfg.Seed))
		t.Rows = append(t.Rows, cfg.knnRow(fmt.Sprintf("%d", k), ts, k, rng))
	}
	return t
}

// Fig14 — range searches on DBLP with the radius swept over the paper's
// values.
func Fig14(cfg Config) *Table {
	ts := DBLPDataset(cfg)
	t := &Table{
		Figure:  "Figure 14",
		Title:   "Range Searches on DBLP",
		Dataset: fmt.Sprintf("DBLP-like, %d records", len(ts)),
		XLabel:  "range",
	}
	for _, tau := range []int{1, 2, 3, 4, 5, 7, 10} {
		rng := rand.New(rand.NewSource(cfg.Seed))
		t.Rows = append(t.Rows, cfg.rangeRowTau(fmt.Sprintf("%d", tau), ts, tau, rng))
	}
	return t
}
