package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"treesim/internal/branch"
	"treesim/internal/datagen"
	"treesim/internal/editdist"
	"treesim/internal/storage"
)

// IOCost measures the disk side of filter-and-refine: the dataset trees
// live in a paged store behind an LRU buffer pool, branch vectors stay in
// memory (they are the index), and a range query must fetch from disk
// exactly the trees whose exact distance it computes. Rows sweep the
// range radius; the BiBranch column reports the percentage of data pages
// physically read per filtered query, the Histo column the same for the
// sequential scan (which fetches everything), each against a cold pool.
// This quantifies the paper's closing claim that the pruning power leads
// to "CPU and I/O efficient solutions".
func IOCost(cfg Config) (*Table, error) {
	spec := syntheticSpec(4, 50, 8)
	ts := datagen.New(spec, cfg.Seed).Dataset(cfg.DatasetSize, cfg.Seeds)
	rng := rand.New(rand.NewSource(cfg.Seed))

	dir, err := os.MkdirTemp("", "treesim-io")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "data.tsst")
	if err := storage.Create(path, ts); err != nil {
		return nil, err
	}
	// Size the pool at 1/8 of the data region for realistic partial
	// caching; a probe open discovers the page count.
	probe, err := storage.Open(path, 1)
	if err != nil {
		return nil, err
	}
	poolPages := int(probe.DataPages()/8) + 1
	probe.Close()
	store, err := storage.Open(path, poolPages)
	if err != nil {
		return nil, err
	}
	defer store.Close()

	space := branch.NewSpace(2)
	profiles := space.ProfileAll(ts)
	qs := cfg.sampleQueries(ts, rng)
	dataPages := store.DataPages()

	t := &Table{
		Figure:  "I/O cost",
		Title:   "Data pages read per range query: filtered (BiBranch column) vs sequential scan (Histo column)",
		Dataset: fmt.Sprintf("%s, %d trees, %d data pages, pool %d pages", spec, len(ts), dataPages, poolPages),
		XLabel:  "tau",
	}

	avg := cfg.avgPairwiseDistance(ts, rng)
	taus := []int{1, int(avg*cfg.RangeFraction + 0.5), int(avg + 0.5)}
	for _, tau := range taus {
		if tau < 1 {
			tau = 1
		}
		var filteredReads, seqReads int64
		var filteredTime, seqTime time.Duration

		for _, q := range qs {
			qp := space.Profile(q)

			// Filtered query against a cold pool.
			store.Pool().Drop()
			before := readsOf(store)
			start := time.Now()
			for i := range ts {
				if branch.RangeLowerBound(qp, profiles[i], tau) > tau {
					continue
				}
				dt, err := store.Tree(i)
				if err != nil {
					return nil, err
				}
				editdist.Distance(q, dt)
			}
			filteredTime += time.Since(start)
			filteredReads += readsOf(store) - before

			// Sequential scan against a cold pool.
			store.Pool().Drop()
			before = readsOf(store)
			start = time.Now()
			for i := range ts {
				dt, err := store.Tree(i)
				if err != nil {
					return nil, err
				}
				editdist.Distance(q, dt)
			}
			seqTime += time.Since(start)
			seqReads += readsOf(store) - before
		}

		n := int64(len(qs))
		t.Rows = append(t.Rows, Row{
			X:            fmt.Sprintf("%d", tau),
			Tau:          tau,
			BiBranchPct:  100 * float64(filteredReads) / float64(n*dataPages),
			HistoPct:     100 * float64(seqReads) / float64(n*dataPages),
			BiBranchTime: filteredTime / time.Duration(n),
			SeqTime:      seqTime / time.Duration(n),
		})
	}
	return t, nil
}

func readsOf(s *storage.TreeStore) int64 {
	_, _, physical := s.Pool().Stats()
	return physical
}
