package experiments

import (
	"fmt"
	"io"
)

// FigureNames lists the reproducible figures in paper order.
var FigureNames = []string{"7", "8", "9", "10", "11", "12", "13", "14", "15"}

// Run executes one figure by number and writes its table to w as aligned
// text.
func Run(fig string, cfg Config, w io.Writer) error {
	return RunFormat(fig, cfg, w, "text")
}

// RunFormat is Run with an output format: "text" (aligned, human-readable)
// or "csv" (for plotting tools).
func RunFormat(fig string, cfg Config, w io.Writer, format string) error {
	emit := func(t *Table) error {
		if format == "csv" {
			return t.CSV(w)
		}
		t.Format(w)
		return nil
	}
	switch fig {
	case "7":
		return emit(Fig07(cfg))
	case "8":
		return emit(Fig08(cfg))
	case "9":
		return emit(Fig09(cfg))
	case "10":
		return emit(Fig10(cfg))
	case "11":
		return emit(Fig11(cfg))
	case "12":
		return emit(Fig12(cfg))
	case "13":
		return emit(Fig13(cfg))
	case "14":
		return emit(Fig14(cfg))
	case "15":
		t := Fig15(cfg)
		if format == "csv" {
			return t.CSV(w)
		}
		t.Format(w)
		return nil
	case "ablation-positional":
		return emit(AblationPositional(cfg))
	case "ablation-q":
		return emit(AblationQ(cfg))
	case "ablation-filters":
		return emit(AblationFilters(cfg))
	case "io":
		t, err := IOCost(cfg)
		if err != nil {
			return err
		}
		return emit(t)
	default:
		return fmt.Errorf("experiments: unknown figure %q (have %v, ablation-positional, ablation-q)",
			fig, FigureNames)
	}
}

// RunAll executes every figure in order, separating them with blank lines.
func RunAll(cfg Config, w io.Writer) error {
	for i, fig := range FigureNames {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := Run(fig, cfg, w); err != nil {
			return err
		}
	}
	return nil
}
