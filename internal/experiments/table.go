package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// Row is one x-position of a figure: the measures the paper plots there.
type Row struct {
	// X is the swept parameter value (fanout, tree size, label count, k,
	// or range radius).
	X string
	// BiBranchPct and HistoPct are the percentages of the dataset whose
	// real edit distance had to be evaluated (the bars of Figs. 7–14).
	BiBranchPct float64
	HistoPct    float64
	// ResultPct is the result-set size as a percentage of the dataset
	// (the "Result %" bars of the range-query figures).
	ResultPct float64
	// BiBranchTime and SeqTime are the average per-query CPU times of the
	// filtered search and the sequential scan (the lines of the figures).
	BiBranchTime time.Duration
	SeqTime      time.Duration
	// Tau or K records the query parameter actually used at this row.
	Tau int
	K   int
}

// Table is one reproduced figure.
type Table struct {
	Figure  string // e.g. "Figure 7"
	Title   string // the paper's caption
	Dataset string // dataset descriptor, e.g. the generator spec
	XLabel  string
	Rows    []Row
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.Figure, t.Title)
	if t.Dataset != "" {
		fmt.Fprintf(w, "dataset: %s\n", t.Dataset)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tBiBranch%%\tHisto%%\tResult%%\tBiBranch CPU\tSequential CPU\tspeedup\n", t.XLabel)
	for _, r := range t.Rows {
		speedup := "-"
		if r.BiBranchTime > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(r.SeqTime)/float64(r.BiBranchTime))
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%s\t%s\t%s\n",
			r.X, r.BiBranchPct, r.HistoPct, r.ResultPct,
			round(r.BiBranchTime), round(r.SeqTime), speedup)
	}
	tw.Flush()
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Format(&sb)
	return sb.String()
}

// CSV writes the table as comma-separated values (header row first) for
// plotting tools. Times are in microseconds.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		t.XLabel, "bibranch_pct", "histo_pct", "result_pct",
		"bibranch_us", "sequential_us", "param_tau", "param_k",
	}); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := []string{
			r.X,
			fmt.Sprintf("%.4f", r.BiBranchPct),
			fmt.Sprintf("%.4f", r.HistoPct),
			fmt.Sprintf("%.4f", r.ResultPct),
			fmt.Sprintf("%d", r.BiBranchTime.Microseconds()),
			fmt.Sprintf("%d", r.SeqTime.Microseconds()),
			fmt.Sprintf("%d", r.Tau),
			fmt.Sprintf("%d", r.K),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

// DistRow is one distance value of the Fig. 15 distribution plot.
type DistRow struct {
	Distance int
	// Cumulative percentage of the dataset whose distance (under each
	// measure) to the query is ≤ Distance, averaged over queries.
	Edit      float64
	Histo     float64
	BiBranch2 float64
	BiBranch3 float64
	BiBranch4 float64
}

// DistTable is the reproduced Fig. 15.
type DistTable struct {
	Figure  string
	Title   string
	Dataset string
	Rows    []DistRow
}

// Format renders the distribution table as aligned text.
func (t *DistTable) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.Figure, t.Title)
	if t.Dataset != "" {
		fmt.Fprintf(w, "dataset: %s\n", t.Dataset)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "distance\tEdit\tHisto\tBiBranch(2)\tBiBranch(3)\tBiBranch(4)")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			r.Distance, r.Edit, r.Histo, r.BiBranch2, r.BiBranch3, r.BiBranch4)
	}
	tw.Flush()
}

// String renders the distribution table to a string.
func (t *DistTable) String() string {
	var sb strings.Builder
	t.Format(&sb)
	return sb.String()
}

// CSV writes the distribution table as comma-separated values.
func (t *DistTable) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"distance", "edit", "histo", "bibranch2", "bibranch3", "bibranch4",
	}); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := []string{
			fmt.Sprintf("%d", r.Distance),
			fmt.Sprintf("%.4f", r.Edit),
			fmt.Sprintf("%.4f", r.Histo),
			fmt.Sprintf("%.4f", r.BiBranch2),
			fmt.Sprintf("%.4f", r.BiBranch3),
			fmt.Sprintf("%.4f", r.BiBranch4),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
