// Package faultfs is the filesystem seam of the durability subsystem: a
// narrow write-oriented interface (OpenFile/CreateTemp/Rename/SyncDir and
// friends) with two implementations — the real OS, and an Injector that
// fails the Nth write, short-writes, refuses renames or syncs, or
// "crashes" at a chosen point (every later operation fails).
//
// internal/wal and internal/server write through this interface, so tests
// can prove crash-recovery guarantees end to end: abandon the in-memory
// state after an injected crash, reopen the real files a second process
// would see, and check that recovery reconstructs every acknowledged
// write.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// File is the slice of *os.File the durability code needs.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Name() string
}

// FS is the filesystem surface the durability code writes through.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, making a just-renamed entry durable.
	SyncDir(dir string) error
	// ReadDir lists a directory's entry names in lexical order — how the
	// segmented WAL discovers its segment files at open.
	ReadDir(dir string) ([]string, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Injected faults are distinguishable from real filesystem errors.
var (
	ErrInjected = errors.New("faultfs: injected fault")
	ErrCrashed  = errors.New("faultfs: crashed")
)

// Injector wraps a base FS (default OS) and injects faults according to
// its plan fields. The zero value injects nothing. Write operations are
// counted across all files opened through the injector, in call order;
// the counting fields are 1-based ("fail the 3rd write").
//
// A "crash" freezes the filesystem as a kill -9 would: every operation on
// the Injector and on files opened through it fails with ErrCrashed and
// has no effect. Bytes written before the crash remain on disk (the
// simulated kernel survived; lost-page-cache scenarios are modeled with
// FailWriteN/ShortWriteN instead). Tests then reopen the real files —
// through OS or a fresh Injector — to observe what a restarted process
// would find.
type Injector struct {
	// Base is the wrapped filesystem; nil means OS.
	Base FS

	// FailWriteN, when > 0, makes the Nth write call fail with
	// ErrInjected before writing anything.
	FailWriteN int
	// ShortWriteN, when > 0, makes the Nth write call persist only the
	// first half of its bytes, then return ErrInjected — a torn write.
	ShortWriteN int
	// CrashAfterWriteN, when > 0, crashes the filesystem immediately
	// after the Nth write call completes.
	CrashAfterWriteN int
	// CrashOnRename crashes instead of performing the rename — the
	// classic "temp file written, never published" power-cut point.
	CrashOnRename bool
	// FailSync makes every Sync and SyncDir call fail with ErrInjected
	// (the write itself still lands in the page cache).
	FailSync bool
	// FailWritesFrom, when > 0, makes every write call numbered >= it fail
	// with ErrInjected before writing anything — a disk that filled up and
	// stays full until the plan is cleared (SetFailWritesFrom(0)).
	FailWritesFrom int

	mu      sync.Mutex
	writes  int
	crashed bool
}

// The Set* methods change the fault plan while operations are running on
// other goroutines (a disk "healing" mid-test). Direct field writes are
// only safe before the injector is shared.

// SetFailSync arms or clears the every-sync failure.
func (in *Injector) SetFailSync(v bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.FailSync = v
}

// SetFailWritesFrom arms (n > 0) or clears (n <= 0) the full-disk plan;
// n is compared against the injector-wide 1-based write counter.
func (in *Injector) SetFailWritesFrom(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.FailWritesFrom = n
}

// SetShortWriteN arms a torn write at the Nth write call.
func (in *Injector) SetShortWriteN(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ShortWriteN = n
}

// SetCrashAfterWriteN arms a crash after the Nth write call completes.
func (in *Injector) SetCrashAfterWriteN(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.CrashAfterWriteN = n
}

// SetFailWriteN arms a clean failure of the Nth write call.
func (in *Injector) SetFailWriteN(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.FailWriteN = n
}

// SetCrashOnRename arms or clears the crash-at-rename point.
func (in *Injector) SetCrashOnRename(v bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.CrashOnRename = v
}

// failSync reads the sync plan under the lock.
func (in *Injector) failSync() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.FailSync
}

func (in *Injector) base() FS {
	if in.Base == nil {
		return OS
	}
	return in.Base
}

// Writes returns how many write calls the injector has seen.
func (in *Injector) Writes() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.writes
}

// Crashed reports whether a crash point has triggered.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// checkAlive fails every operation after a crash.
func (in *Injector) checkAlive() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	return nil
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := in.checkAlive(); err != nil {
		return nil, err
	}
	f, err := in.base().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.checkAlive(); err != nil {
		return nil, err
	}
	f, err := in.base().CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.checkAlive(); err != nil {
		return err
	}
	in.mu.Lock()
	if in.CrashOnRename {
		in.crashed = true
		in.mu.Unlock()
		return fmt.Errorf("rename %s: %w", newpath, ErrCrashed)
	}
	in.mu.Unlock()
	return in.base().Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.checkAlive(); err != nil {
		return err
	}
	return in.base().Remove(name)
}

func (in *Injector) SyncDir(dir string) error {
	if err := in.checkAlive(); err != nil {
		return err
	}
	if in.failSync() {
		return fmt.Errorf("syncdir %s: %w", dir, ErrInjected)
	}
	return in.base().SyncDir(dir)
}

func (in *Injector) ReadDir(dir string) ([]string, error) {
	if err := in.checkAlive(); err != nil {
		return nil, err
	}
	return in.base().ReadDir(dir)
}

// faultFile routes a file's operations through its injector's plan.
type faultFile struct {
	in *Injector
	f  File
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.in.mu.Lock()
	if w.in.crashed {
		w.in.mu.Unlock()
		return 0, ErrCrashed
	}
	w.in.writes++
	n := w.in.writes
	fail := (w.in.FailWriteN > 0 && n == w.in.FailWriteN) ||
		(w.in.FailWritesFrom > 0 && n >= w.in.FailWritesFrom)
	short := w.in.ShortWriteN > 0 && n == w.in.ShortWriteN
	crashAfter := w.in.CrashAfterWriteN > 0 && n >= w.in.CrashAfterWriteN
	w.in.mu.Unlock()

	if fail {
		return 0, fmt.Errorf("write %d: %w", n, ErrInjected)
	}
	var k int
	var werr error
	if short {
		k, werr = w.f.Write(p[:len(p)/2])
		if werr == nil {
			werr = fmt.Errorf("short write %d: %w", n, ErrInjected)
		}
	} else {
		k, werr = w.f.Write(p)
	}
	if crashAfter {
		w.in.mu.Lock()
		w.in.crashed = true
		w.in.mu.Unlock()
	}
	return k, werr
}

func (w *faultFile) Read(p []byte) (int, error) {
	if err := w.in.checkAlive(); err != nil {
		return 0, err
	}
	return w.f.Read(p)
}

func (w *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := w.in.checkAlive(); err != nil {
		return 0, err
	}
	return w.f.Seek(offset, whence)
}

func (w *faultFile) Sync() error {
	if err := w.in.checkAlive(); err != nil {
		return err
	}
	if w.in.failSync() {
		return fmt.Errorf("sync %s: %w", w.f.Name(), ErrInjected)
	}
	return w.f.Sync()
}

func (w *faultFile) Truncate(size int64) error {
	if err := w.in.checkAlive(); err != nil {
		return err
	}
	return w.f.Truncate(size)
}

func (w *faultFile) Close() error {
	// Closing after a crash is allowed (the test harness cleaning up);
	// the descriptor is real either way.
	return w.f.Close()
}

func (w *faultFile) Name() string { return w.f.Name() }
