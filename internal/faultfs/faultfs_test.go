package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openForWrite(t *testing.T, fsys FS, path string) File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestOSRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f := openForWrite(t, OS, path)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(filepath.Dir(path)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back %q, %v", b, err)
	}
}

func TestFailNthWrite(t *testing.T) {
	in := &Injector{FailWriteN: 2}
	f := openForWrite(t, in, filepath.Join(t.TempDir(), "f"))
	defer f.Close()
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if got := in.Writes(); got != 3 {
		t.Fatalf("counted %d writes, want 3", got)
	}
}

func TestShortWritePersistsHalf(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	in := &Injector{ShortWriteN: 1}
	f := openForWrite(t, in, path)
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err %v, want ErrInjected", err)
	}
	if n != 4 {
		t.Fatalf("short write persisted %d bytes, want 4", n)
	}
	f.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "abcd" {
		t.Fatalf("on disk %q, want %q", b, "abcd")
	}
}

func TestCrashAfterWriteFreezesEverything(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	in := &Injector{CrashAfterWriteN: 1}
	f := openForWrite(t, in, path)
	if _, err := f.Write([]byte("survives")); err != nil {
		t.Fatalf("the crashing write itself completes: %v", err)
	}
	if !in.Crashed() {
		t.Fatal("injector not crashed")
	}
	if _, err := f.Write([]byte("lost")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v, want ErrCrashed", err)
	}
	if _, err := in.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: %v, want ErrCrashed", err)
	}
	if err := in.Rename(path, path+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v, want ErrCrashed", err)
	}
	f.Close()
	// What a restarted process sees: the pre-crash bytes.
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "survives" {
		t.Fatalf("post-restart read %q, %v", b, err)
	}
}

func TestCrashOnRenameLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "snap")
	if err := os.WriteFile(target, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := &Injector{CrashOnRename: true}
	tmp, err := in.CreateTemp(dir, "tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	tmp.Write([]byte("new"))
	tmp.Close()
	if err := in.Rename(tmp.Name(), target); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename: %v, want ErrCrashed", err)
	}
	b, _ := os.ReadFile(target)
	if string(b) != "old" {
		t.Fatalf("target is %q after crashed rename, want %q", b, "old")
	}
}

func TestFailSync(t *testing.T) {
	in := &Injector{FailSync: true}
	f := openForWrite(t, in, filepath.Join(t.TempDir(), "f"))
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: %v, want ErrInjected", err)
	}
	if err := in.SyncDir(t.TempDir()); !errors.Is(err, ErrInjected) {
		t.Fatalf("syncdir: %v, want ErrInjected", err)
	}
}
