// Package histogram implements the histogram filtration baseline of
// Kailing, Kriegel, Schönauer and Seidl (EDBT 2004) — reference [7] of the
// paper and the competitor ("Histo") in every experiment of Section 5.
//
// A tree is summarized by three histograms: the distribution of node
// heights, the distribution of node degrees (fanouts), and the distribution
// of labels. Each histogram yields a lower bound of the unit-cost edit
// distance, and the combined filter takes their maximum.
//
// The exact bound constants of the original publication target the
// *unordered* edit distance and are reconstructed here with constants we
// can prove sound for the ordered unit-cost edit distance used in this
// repository (see DESIGN.md, "Substitutions"):
//
//   - Label histogram: a relabel moves one unit of mass between two bins
//     (L1 change 2); an insert or delete adds or removes one unit (L1
//     change 1). Hence EDist ≥ ceil(L1(labelHist)/2).
//   - Degree histogram: a relabel changes no degree; an insert or delete
//     moves the parent's count between two bins (L1 change ≤ 2) and
//     adds/removes the node's own bin entry (change 1). Hence
//     EDist ≥ ceil(L1(degreeHist)/3).
//   - Height: a single edit operation changes the tree height by at most
//     one (a delete lifts one subtree by one level; an insert pushes one
//     run of subtrees down one level). Hence EDist ≥ |height(T1)−height(T2)|.
//     The full node-height histogram has no constant per-operation L1 bound
//     (one delete shifts every ancestor's height), so the histogram itself
//     is kept for inspection but only the sound height-difference enters
//     the bound.
//   - Size: every operation changes |T| by at most one, so
//     EDist ≥ ||T1|−|T2||.
package histogram

import (
	"hash/fnv"
	"strconv"

	"treesim/internal/tree"
)

// Config bounds the dimensionality of each histogram, mirroring the
// paper's equal-space rule (Section 5: the three histogram vectors
// together get as many dimensions as the average branch vector plus two
// average tree sizes). Values ≤ 0 leave the histogram unbounded.
//
// Folding is sound: hashing labels into LabelBins (or clamping degrees and
// heights at a last catch-all bin) can only merge histogram mass, which
// never increases the L1 distance, so every folded bound remains a lower
// bound of the edit distance.
type Config struct {
	LabelBins  int // label histogram dimensionality (hash-folded)
	DegreeBins int // degree histogram bins; degrees ≥ DegreeBins−1 share the last bin
	HeightBins int // height histogram bins; heights ≥ HeightBins−1 share the last bin
}

// Unbounded keeps every distinct label, degree and height in its own bin.
func Unbounded() Config { return Config{} }

// EqualSpace distributes a total dimension budget evenly across the three
// histograms (with a floor of 2 bins each) — the way the paper equalizes
// the space of the Histo baseline with the binary branch representation:
// "the sum of dimension of the three type histogram vectors for one tree"
// equals the branch representation's footprint.
func EqualSpace(totalBins int) Config {
	if totalBins < 6 {
		totalBins = 6
	}
	l := totalBins / 3
	d := totalBins / 3
	h := totalBins - l - d
	return Config{LabelBins: l, DegreeBins: d, HeightBins: h}
}

// Profile is the histogram summary of one tree.
type Profile struct {
	Size   int
	Height int
	// Label[l] counts nodes labeled l. When folded, l is the bucket id.
	Label map[string]int
	// Degree[d] counts nodes with exactly d children (or the clamp bin).
	Degree map[int]int
	// HeightHist[h] counts nodes whose subtree height is h (leaf = 1, or
	// the clamp bin).
	HeightHist map[int]int
}

// NewProfile computes the unbounded histogram profile of t in one
// traversal per histogram, O(|T|) total.
func NewProfile(t *tree.Tree) *Profile {
	return NewProfileConfig(t, Config{})
}

// NewProfileConfig computes the histogram profile with the given folding
// configuration.
func NewProfileConfig(t *tree.Tree, cfg Config) *Profile {
	p := &Profile{
		Size:       t.Size(),
		Height:     t.Height(),
		Label:      t.LabelCounts(),
		Degree:     t.DegreeCounts(),
		HeightHist: t.HeightCounts(),
	}
	if cfg.LabelBins > 0 {
		folded := make(map[string]int, cfg.LabelBins)
		for l, c := range p.Label {
			folded[bucketLabel(l, cfg.LabelBins)] += c
		}
		p.Label = folded
	}
	if cfg.DegreeBins > 0 {
		p.Degree = clampBins(p.Degree, cfg.DegreeBins)
	}
	if cfg.HeightBins > 0 {
		p.HeightHist = clampBins(p.HeightHist, cfg.HeightBins)
	}
	return p
}

func bucketLabel(label string, bins int) string {
	h := fnv.New32a()
	h.Write([]byte(label))
	return "#" + strconv.Itoa(int(h.Sum32()%uint32(bins)))
}

func clampBins(m map[int]int, bins int) map[int]int {
	out := make(map[int]int, bins)
	for k, c := range m {
		if k >= bins-1 {
			k = bins - 1
		}
		out[k] += c
	}
	return out
}

// ProfileAll profiles every tree of a dataset in order, unbounded.
func ProfileAll(ts []*tree.Tree) []*Profile {
	return ProfileAllConfig(ts, Config{})
}

// ProfileAllConfig profiles every tree with the given folding.
func ProfileAllConfig(ts []*tree.Tree, cfg Config) []*Profile {
	out := make([]*Profile, len(ts))
	for i, t := range ts {
		out[i] = NewProfileConfig(t, cfg)
	}
	return out
}

// LabelBound returns the label-histogram lower bound ceil(L1/2).
func LabelBound(a, b *Profile) int {
	return (l1Str(a.Label, b.Label) + 1) / 2
}

// DegreeBound returns the degree-histogram lower bound ceil(L1/3).
func DegreeBound(a, b *Profile) int {
	return (l1Int(a.Degree, b.Degree) + 2) / 3
}

// HeightBound returns the height lower bound |height(T1)−height(T2)|.
func HeightBound(a, b *Profile) int {
	return iabs(a.Height - b.Height)
}

// SizeBound returns the size lower bound ||T1|−|T2||.
func SizeBound(a, b *Profile) int {
	return iabs(a.Size - b.Size)
}

// LowerBound returns the combined histogram filter distance: the maximum of
// the individual sound bounds. LowerBound(a,b) ≤ EDist(Ta,Tb) always.
func LowerBound(a, b *Profile) int {
	m := LabelBound(a, b)
	if v := DegreeBound(a, b); v > m {
		m = v
	}
	if v := HeightBound(a, b); v > m {
		m = v
	}
	if v := SizeBound(a, b); v > m {
		m = v
	}
	return m
}

// HeightHistL1 returns the raw L1 distance of the node-height histograms.
// It is *not* a lower bound of the edit distance (see the package comment);
// it is exposed for the Fig. 15-style distance-distribution analysis.
func HeightHistL1(a, b *Profile) int {
	return l1Int(a.HeightHist, b.HeightHist)
}

func l1Str(a, b map[string]int) int {
	d := 0
	for k, va := range a {
		d += iabs(va - b[k])
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			d += vb
		}
	}
	return d
}

func l1Int(a, b map[int]int) int {
	d := 0
	for k, va := range a {
		d += iabs(va - b[k])
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			d += vb
		}
	}
	return d
}

func iabs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
