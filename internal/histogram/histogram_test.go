package histogram

import (
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/editdist"
	"treesim/internal/tree"
)

func paperT1() *tree.Tree { return tree.MustParse("a(b(c,d),b(c,d),e)") }
func paperT2() *tree.Tree { return tree.MustParse("a(b(c,d,b(e)),c,d,e)") }

func TestProfileFields(t *testing.T) {
	p := NewProfile(paperT1())
	if p.Size != 8 || p.Height != 3 {
		t.Errorf("Size=%d Height=%d, want 8, 3", p.Size, p.Height)
	}
	if p.Label["b"] != 2 || p.Degree[3] != 1 || p.HeightHist[1] != 5 {
		t.Errorf("histograms wrong: %+v", p)
	}
}

func TestBoundsPaperPair(t *testing.T) {
	a, b := NewProfile(paperT1()), NewProfile(paperT2())
	// Labels: T1 {a:1,b:2,c:2,d:2,e:1}, T2 {a:1,b:2,c:2,d:2,e:2} → L1=1 → ceil(1/2)=1.
	if got := LabelBound(a, b); got != 1 {
		t.Errorf("LabelBound = %d, want 1", got)
	}
	// Degrees: T1 {3:1,2:2,0:5}, T2 {4:1,3:1,1:1,0:6} → L1 = 1+1+2+1+1 = wait:
	// |3:1−1| =0? T2 has 3:1 (b with 3 children). T1 3:1. diff 0.
	// 2: T1 2, T2 0 → 2. 0: |5−6| = 1. 4: T2 1 → 1. 1: T2 1 → 1. Total 5 → ceil(5/3)=2.
	if got := DegreeBound(a, b); got != 2 {
		t.Errorf("DegreeBound = %d, want 2", got)
	}
	// Heights: T1 height 3, T2 height 4 → 1.
	if got := HeightBound(a, b); got != 1 {
		t.Errorf("HeightBound = %d, want 1", got)
	}
	if got := SizeBound(a, b); got != 1 {
		t.Errorf("SizeBound = %d, want 1", got)
	}
	if got := LowerBound(a, b); got != 2 {
		t.Errorf("LowerBound = %d, want 2", got)
	}
}

func TestLowerBoundIdentity(t *testing.T) {
	p := NewProfile(paperT1())
	if got := LowerBound(p, p); got != 0 {
		t.Errorf("self lower bound = %d", got)
	}
}

func TestLowerBoundSymmetric(t *testing.T) {
	a, b := NewProfile(paperT1()), NewProfile(paperT2())
	if LowerBound(a, b) != LowerBound(b, a) {
		t.Error("LowerBound not symmetric")
	}
}

// TestSoundness: every component bound and the combined bound never exceed
// the true edit distance, on random related and unrelated tree pairs.
func TestSoundness(t *testing.T) {
	spec := datagen.Spec{FanoutMean: 2.5, FanoutStd: 1, SizeMean: 12, SizeStd: 4, Labels: 4, Decay: 0.1}
	g := datagen.New(spec, 17)
	for trial := 0; trial < 150; trial++ {
		t1 := g.Seed()
		var t2 *tree.Tree
		if trial%2 == 0 {
			t2 = g.Seed()
		} else {
			t2 = g.RandomEdits(t1, 1+trial%6)
		}
		ed := editdist.Distance(t1, t2)
		a, b := NewProfile(t1), NewProfile(t2)
		checks := []struct {
			name string
			got  int
		}{
			{"label", LabelBound(a, b)},
			{"degree", DegreeBound(a, b)},
			{"height", HeightBound(a, b)},
			{"size", SizeBound(a, b)},
			{"combined", LowerBound(a, b)},
		}
		for _, c := range checks {
			if c.got > ed {
				t.Fatalf("%s bound %d exceeds EDist %d for\n  %s\n  %s",
					c.name, c.got, ed, t1, t2)
			}
		}
	}
}

// TestFoldingSoundAndContractive: folded bounds never exceed the unbounded
// bounds (folding is an L1 contraction) and stay below the edit distance.
func TestFoldingSoundAndContractive(t *testing.T) {
	spec := datagen.Spec{FanoutMean: 2.5, FanoutStd: 1, SizeMean: 14, SizeStd: 4, Labels: 12, Decay: 0.1}
	g := datagen.New(spec, 23)
	cfgs := []Config{
		EqualSpace(9),
		EqualSpace(30),
		{LabelBins: 2, DegreeBins: 2, HeightBins: 2},
		{LabelBins: 5}, // fold labels only
	}
	for trial := 0; trial < 80; trial++ {
		t1 := g.Seed()
		t2 := g.RandomEdits(t1, 1+trial%5)
		ed := editdist.Distance(t1, t2)
		fullA, fullB := NewProfile(t1), NewProfile(t2)
		fullBound := LowerBound(fullA, fullB)
		for _, cfg := range cfgs {
			a := NewProfileConfig(t1, cfg)
			b := NewProfileConfig(t2, cfg)
			folded := LowerBound(a, b)
			if folded > ed {
				t.Fatalf("cfg %+v: folded bound %d exceeds EDist %d for\n  %s\n  %s",
					cfg, folded, ed, t1, t2)
			}
			if folded > fullBound {
				t.Fatalf("cfg %+v: folded bound %d above unbounded bound %d",
					cfg, folded, fullBound)
			}
		}
	}
}

func TestFoldingPreservesMass(t *testing.T) {
	tr := paperT2()
	p := NewProfileConfig(tr, EqualSpace(9))
	sum := 0
	for _, c := range p.Label {
		sum += c
	}
	if sum != tr.Size() {
		t.Errorf("folded label histogram sums to %d, want %d", sum, tr.Size())
	}
	sum = 0
	for _, c := range p.Degree {
		sum += c
	}
	if sum != tr.Size() {
		t.Errorf("clamped degree histogram sums to %d, want %d", sum, tr.Size())
	}
}

func TestUnboundedConfig(t *testing.T) {
	if Unbounded() != (Config{}) {
		t.Error("Unbounded should be the zero config")
	}
	full := NewProfileConfig(paperT1(), Unbounded())
	plain := NewProfile(paperT1())
	if LowerBound(full, plain) != 0 {
		t.Error("unbounded config differs from NewProfile")
	}
}

func TestEqualSpaceSplit(t *testing.T) {
	cfg := EqualSpace(30)
	if cfg.LabelBins+cfg.DegreeBins+cfg.HeightBins != 30 {
		t.Errorf("bins do not sum to the budget: %+v", cfg)
	}
	tiny := EqualSpace(1) // floors at 6
	if tiny.LabelBins < 2 || tiny.DegreeBins < 2 || tiny.HeightBins < 2 {
		t.Errorf("tiny budget produced %+v", tiny)
	}
}

func TestHeightHistL1(t *testing.T) {
	a, b := NewProfile(paperT1()), NewProfile(paperT2())
	// T1 {1:5,2:2,3:1}; T2 {1:6,2:1,3:1,4:1} → |5−6|+|2−1|+0+1 = 3.
	if got := HeightHistL1(a, b); got != 3 {
		t.Errorf("HeightHistL1 = %d, want 3", got)
	}
}

func TestProfileAll(t *testing.T) {
	ps := ProfileAll([]*tree.Tree{paperT1(), paperT2()})
	if len(ps) != 2 || ps[0].Size != 8 || ps[1].Size != 9 {
		t.Error("ProfileAll order or content wrong")
	}
}

func TestEmptyTree(t *testing.T) {
	e := NewProfile(tree.New(nil))
	p := NewProfile(paperT1())
	if got := LowerBound(e, p); got > paperT1().Size() {
		t.Errorf("bound vs empty = %d exceeds |T| = %d", got, paperT1().Size())
	}
	if LowerBound(e, e) != 0 {
		t.Error("empty-empty bound non-zero")
	}
}
