// Package invfile implements the extended inverted file index (IFI) of
// Algorithm 1. The vocabulary is the set of distinct q-level binary
// branches of the whole dataset (the alphabet Γ, interned by a
// branch.Space); the inverted list of each branch records, per tree, the
// number of occurrences and the preorder/postorder positions at which the
// branch occurs. Scanning the IFI emits the sparse branch vector and
// position arrays of every tree — the batch counterpart of profiling trees
// one by one, and the representation a disk-resident system would persist.
package invfile

import (
	"fmt"
	"sort"

	"treesim/internal/branch"
	"treesim/internal/tree"
	"treesim/internal/vector"
)

// Posting is one entry of an inverted list: the occurrences of a branch in
// one tree. Pre and Post are parallel, ordered by ascending Pre.
type Posting struct {
	TreeID int32
	Pre    []int32
	Post   []int32
}

// Count returns the number of occurrences of the branch in the tree.
func (p *Posting) Count() int { return len(p.Pre) }

// Index is the populated inverted file.
type Index struct {
	space    *branch.Space
	postings map[vector.Dim][]*Posting
	sizes    []int // node count per tree, indexed by TreeID
}

// Build constructs the IFI over the dataset in one pass (Algorithm 1 lines
// 1–5): each tree is traversed once and every branch occurrence is appended
// to the tail of its inverted list, so construction is linear in the total
// node count Σ|Ti|.
func Build(space *branch.Space, ts []*tree.Tree) *Index {
	x := &Index{
		space:    space,
		postings: make(map[vector.Dim][]*Posting),
		sizes:    make([]int, len(ts)),
	}
	for id, t := range ts {
		x.sizes[id] = space.Branches(t, func(d vector.Dim, pre, post int32) {
			list := x.postings[d]
			if len(list) == 0 || list[len(list)-1].TreeID != int32(id) {
				list = append(list, &Posting{TreeID: int32(id)})
				x.postings[d] = list
			}
			p := list[len(list)-1]
			p.Pre = append(p.Pre, pre)
			p.Post = append(p.Post, post)
		})
	}
	return x
}

// Space returns the branch space (vocabulary interner) of the index.
func (x *Index) Space() *branch.Space { return x.space }

// Trees returns the number of indexed trees.
func (x *Index) Trees() int { return len(x.sizes) }

// Vocabulary returns the number of distinct branches with at least one
// posting.
func (x *Index) Vocabulary() int { return len(x.postings) }

// TotalNodes returns Σ|Ti| over the indexed trees — the quantity the
// linear time/space complexity claims of Section 4.4 are stated in.
func (x *Index) TotalNodes() int {
	s := 0
	for _, n := range x.sizes {
		s += n
	}
	return s
}

// PostingList returns the inverted list of dimension d in tree-id order
// (the append order of Build). The slice is shared; do not modify.
func (x *Index) PostingList(d vector.Dim) []*Posting { return x.postings[d] }

// Profiles scans the whole IFI and materializes the sparse branch vector
// and position arrays of every indexed tree (Algorithm 1 lines 6–13). The
// result is identical to profiling each tree individually with
// Space.Profile.
func (x *Index) Profiles() []*branch.Profile {
	type acc struct {
		elems []vector.Elem
		pos   [][]branch.Occurrence
	}
	accs := make([]acc, len(x.sizes))

	dims := make([]vector.Dim, 0, len(x.postings))
	for d := range x.postings {
		dims = append(dims, d)
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i] < dims[j] })

	for _, d := range dims {
		for _, p := range x.postings[d] {
			a := &accs[p.TreeID]
			a.elems = append(a.elems, vector.Elem{Dim: d, Count: p.Count()})
			occ := make([]branch.Occurrence, p.Count())
			for i := range occ {
				occ[i] = branch.Occurrence{Pre: p.Pre[i], Post: p.Post[i]}
			}
			a.pos = append(a.pos, occ)
		}
	}

	out := make([]*branch.Profile, len(x.sizes))
	for id := range accs {
		// Dimensions were visited in ascending order, so each tree's
		// coordinate list is already sorted and parallel to its position
		// lists.
		v, err := vector.FromSorted(accs[id].elems)
		if err != nil {
			panic(fmt.Sprintf("invfile: corrupt postings for tree %d: %v", id, err))
		}
		out[id] = branch.Assemble(x.space, x.sizes[id], v, accs[id].pos)
	}
	return out
}
