package invfile

import (
	"testing"

	"treesim/internal/branch"
	"treesim/internal/datagen"
	"treesim/internal/tree"
	"treesim/internal/vector"
)

func dataset() []*tree.Tree {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 15, SizeStd: 5, Labels: 5, Decay: 0.1}
	g := datagen.New(spec, 23)
	return g.Dataset(40, 4)
}

// TestProfilesMatchDirect: scanning the IFI yields exactly the same
// profiles as profiling each tree directly (Algorithm 1's two halves are
// consistent).
func TestProfilesMatchDirect(t *testing.T) {
	ts := dataset()
	for _, q := range []int{2, 3} {
		space := branch.NewSpace(q)
		direct := space.ProfileAll(ts)
		x := Build(space, ts)
		scanned := x.Profiles()
		if len(scanned) != len(direct) {
			t.Fatalf("q=%d: %d profiles, want %d", q, len(scanned), len(direct))
		}
		for i := range direct {
			if !vector.Equal(direct[i].Vec, scanned[i].Vec) {
				t.Fatalf("q=%d tree %d: vectors differ\n direct: %v\n scanned: %v",
					q, i, direct[i].Vec, scanned[i].Vec)
			}
			if direct[i].Size != scanned[i].Size {
				t.Fatalf("q=%d tree %d: sizes differ", q, i)
			}
			for j := range direct[i].Pos {
				if len(direct[i].Pos[j]) != len(scanned[i].Pos[j]) {
					t.Fatalf("q=%d tree %d dim %d: occurrence lists differ", q, i, j)
				}
				for k := range direct[i].Pos[j] {
					if direct[i].Pos[j][k] != scanned[i].Pos[j][k] {
						t.Fatalf("q=%d tree %d dim %d occ %d: %v vs %v",
							q, i, j, k, direct[i].Pos[j][k], scanned[i].Pos[j][k])
					}
				}
			}
		}
	}
}

// TestDistancesMatch: branch distances computed through IFI-scanned
// profiles agree with the direct ones.
func TestDistancesMatch(t *testing.T) {
	ts := dataset()[:12]
	space := branch.NewSpace(2)
	direct := space.ProfileAll(ts)
	scanned := Build(branch.NewSpace(2), ts).Profiles()
	for i := range ts {
		for j := range ts {
			want := branch.BDist(direct[i], direct[j])
			got := branch.BDist(scanned[i], scanned[j])
			if got != want {
				t.Fatalf("BDist(%d,%d): scanned %d, direct %d", i, j, got, want)
			}
			if lb, lb2 := branch.SearchLBound(direct[i], direct[j]),
				branch.SearchLBound(scanned[i], scanned[j]); lb != lb2 {
				t.Fatalf("SearchLBound(%d,%d): scanned %d, direct %d", i, j, lb2, lb)
			}
		}
	}
}

func TestIndexAccounting(t *testing.T) {
	ts := dataset()
	space := branch.NewSpace(2)
	x := Build(space, ts)
	if x.Trees() != len(ts) {
		t.Errorf("Trees = %d, want %d", x.Trees(), len(ts))
	}
	total := 0
	for _, tr := range ts {
		total += tr.Size()
	}
	if x.TotalNodes() != total {
		t.Errorf("TotalNodes = %d, want %d", x.TotalNodes(), total)
	}
	if x.Vocabulary() == 0 || x.Vocabulary() != space.Size() {
		t.Errorf("Vocabulary = %d, space = %d", x.Vocabulary(), space.Size())
	}
	// Postings cover all nodes exactly once.
	covered := 0
	for d := 0; d < space.Size(); d++ {
		for _, p := range x.PostingList(vector.Dim(d)) {
			covered += p.Count()
			if len(p.Pre) != len(p.Post) {
				t.Fatal("pre/post lists not parallel")
			}
			for k := 1; k < len(p.Pre); k++ {
				if p.Pre[k] <= p.Pre[k-1] {
					t.Fatal("posting Pre positions not ascending")
				}
			}
		}
	}
	if covered != total {
		t.Errorf("postings cover %d occurrences, want %d", covered, total)
	}
}

func TestSpaceAccessorAndPostingOrder(t *testing.T) {
	ts := dataset()
	space := branch.NewSpace(2)
	x := Build(space, ts)
	if x.Space() != space {
		t.Error("Space accessor broken")
	}
	// Postings are appended in tree order, so tree ids ascend per list.
	for d := 0; d < space.Size(); d++ {
		list := x.PostingList(vector.Dim(d))
		for k := 1; k < len(list); k++ {
			if list[k].TreeID <= list[k-1].TreeID {
				t.Fatalf("dim %d: posting tree ids not ascending", d)
			}
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	x := Build(branch.NewSpace(2), nil)
	if x.Trees() != 0 || x.Vocabulary() != 0 || x.TotalNodes() != 0 {
		t.Error("empty dataset index should be empty")
	}
	if got := x.Profiles(); len(got) != 0 {
		t.Error("empty dataset should yield no profiles")
	}
}
