// Package join implements approximate (similarity) joins on tree
// collections — one of the core database manipulations the paper motivates
// (Section 1; cf. Guha et al.'s approximate XML joins, reference [15]).
//
// A similarity join at threshold τ returns every pair of trees within tree
// edit distance τ. The nested-loop join evaluates |R|·|S| exact distances;
// here the binary branch lower bound (Sections 3–4) prunes a pair unless
// its optimistic bound is ≤ τ, and only survivors pay the Zhang–Shasha
// distance. Results are exact.
package join

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"treesim/internal/branch"
	"treesim/internal/editdist"
	"treesim/internal/tree"
)

// Pair is one join result: indexes into the joined collections and the
// exact edit distance.
type Pair struct {
	R, S int
	Dist int
}

// Stats describes the pruning achieved by a join.
type Stats struct {
	Pairs    int // candidate pairs considered (|R|·|S| or the self-join triangle)
	Verified int // pairs whose exact distance was computed
	Results  int // pairs within the threshold
}

// Options tunes a join.
type Options struct {
	// Q is the branch level (0 means 2).
	Q int
	// Workers bounds parallelism (≤ 0 means GOMAXPROCS).
	Workers int
	// Cost is the refine cost model (nil means unit costs). Filtering
	// remains exact as long as every operation costs at least 1.
	Cost editdist.CostModel
}

// SelfJoin returns every unordered pair (i < j) of trees within edit
// distance tau.
func SelfJoin(ts []*tree.Tree, tau int, opts Options) ([]Pair, Stats) {
	profiles, cost := prepare(ts, &opts)
	var out []Pair
	var mu sync.Mutex
	var verified int64
	parallelFor(len(ts), opts.Workers, func(i int) {
		var local []Pair
		for j := i + 1; j < len(ts); j++ {
			if branch.RangeLowerBound(profiles[i], profiles[j], tau) > tau {
				continue
			}
			atomic.AddInt64(&verified, 1)
			if d, ok := editdist.DistanceWithin(ts[i], ts[j], tau, editdist.WithCost(cost)); ok {
				local = append(local, Pair{R: i, S: j, Dist: d})
			}
		}
		if len(local) > 0 {
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}
	})
	sortPairs(out)
	return out, Stats{
		Pairs:    len(ts) * (len(ts) - 1) / 2,
		Verified: int(verified),
		Results:  len(out),
	}
}

// Join returns every pair (r ∈ R, s ∈ S) within edit distance tau. The two
// collections share one branch space so their vectors are comparable.
func Join(rs, ss []*tree.Tree, tau int, opts Options) ([]Pair, Stats) {
	q := opts.Q
	if q == 0 {
		q = branch.MinQ
	}
	space := branch.NewSpace(q)
	rp := space.ProfileAllParallel(rs, opts.Workers)
	sp := space.ProfileAllParallel(ss, opts.Workers)
	cost := opts.Cost
	if cost == nil {
		cost = editdist.UnitCost{}
	}

	var out []Pair
	var mu sync.Mutex
	var verified int64
	parallelFor(len(rs), opts.Workers, func(i int) {
		var local []Pair
		for j := range ss {
			if branch.RangeLowerBound(rp[i], sp[j], tau) > tau {
				continue
			}
			atomic.AddInt64(&verified, 1)
			if d, ok := editdist.DistanceWithin(rs[i], ss[j], tau, editdist.WithCost(cost)); ok {
				local = append(local, Pair{R: i, S: j, Dist: d})
			}
		}
		if len(local) > 0 {
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}
	})
	sortPairs(out)
	return out, Stats{
		Pairs:    len(rs) * len(ss),
		Verified: int(verified),
		Results:  len(out),
	}
}

func prepare(ts []*tree.Tree, opts *Options) ([]*branch.Profile, editdist.CostModel) {
	q := opts.Q
	if q == 0 {
		q = branch.MinQ
	}
	space := branch.NewSpace(q)
	profiles := space.ProfileAllParallel(ts, opts.Workers)
	cost := opts.Cost
	if cost == nil {
		cost = editdist.UnitCost{}
	}
	return profiles, cost
}

func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// sortPairs orders results by (R, S) for deterministic output across
// worker schedules.
func sortPairs(ps []Pair) {
	sort.Slice(ps, func(x, y int) bool {
		if ps[x].R != ps[y].R {
			return ps[x].R < ps[y].R
		}
		return ps[x].S < ps[y].S
	})
}
