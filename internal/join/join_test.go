package join

import (
	"reflect"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/editdist"
	"treesim/internal/tree"
)

func joinDataset(n int, seed int64) []*tree.Tree {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 12, SizeStd: 4, Labels: 5, Decay: 0.1}
	return datagen.New(spec, seed).Dataset(n, 6)
}

// nestedSelfJoin is the brute-force reference.
func nestedSelfJoin(ts []*tree.Tree, tau int) []Pair {
	var out []Pair
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			if d := editdist.Distance(ts[i], ts[j]); d <= tau {
				out = append(out, Pair{R: i, S: j, Dist: d})
			}
		}
	}
	return out
}

func TestSelfJoinExact(t *testing.T) {
	ts := joinDataset(60, 61)
	for _, tau := range []int{0, 1, 3, 6} {
		want := nestedSelfJoin(ts, tau)
		got, stats := SelfJoin(ts, tau, Options{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tau=%d: filtered join differs\n got: %v\nwant: %v", tau, got, want)
		}
		if stats.Results != len(want) || stats.Verified > stats.Pairs {
			t.Fatalf("tau=%d: bad stats %+v", tau, stats)
		}
	}
}

func TestSelfJoinPrunes(t *testing.T) {
	ts := joinDataset(100, 62)
	_, stats := SelfJoin(ts, 2, Options{})
	if stats.Verified >= stats.Pairs/2 {
		t.Errorf("join verified %d of %d pairs — filter barely pruning", stats.Verified, stats.Pairs)
	}
}

func TestSelfJoinDeterministicAcrossWorkers(t *testing.T) {
	ts := joinDataset(50, 63)
	a, _ := SelfJoin(ts, 3, Options{Workers: 1})
	b, _ := SelfJoin(ts, 3, Options{Workers: 8})
	if !reflect.DeepEqual(a, b) {
		t.Error("worker count changed the result")
	}
}

func TestTwoSetJoinExact(t *testing.T) {
	rs := joinDataset(40, 64)
	ss := joinDataset(40, 65)
	tau := 4
	var want []Pair
	for i := range rs {
		for j := range ss {
			if d := editdist.Distance(rs[i], ss[j]); d <= tau {
				want = append(want, Pair{R: i, S: j, Dist: d})
			}
		}
	}
	got, stats := Join(rs, ss, tau, Options{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("two-set join differs\n got: %v\nwant: %v", got, want)
	}
	if stats.Pairs != 1600 {
		t.Errorf("Pairs = %d, want 1600", stats.Pairs)
	}
}

func TestJoinQ3(t *testing.T) {
	ts := joinDataset(40, 66)
	want := nestedSelfJoin(ts, 2)
	got, _ := SelfJoin(ts, 2, Options{Q: 3})
	if !reflect.DeepEqual(got, want) {
		t.Error("q=3 join lost results")
	}
}

func TestJoinCustomCost(t *testing.T) {
	ts := joinDataset(30, 67)
	c := doubleCost{}
	var want []Pair
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			if d := editdist.DistanceCost(ts[i], ts[j], c); d <= 4 {
				want = append(want, Pair{R: i, S: j, Dist: d})
			}
		}
	}
	got, _ := SelfJoin(ts, 4, Options{Cost: c})
	if !reflect.DeepEqual(got, want) {
		t.Error("custom-cost join differs from brute force")
	}
}

// doubleCost charges 2 per operation — still ≥ 1 per op, so unit-cost
// lower bounds stay valid.
type doubleCost struct{}

func (doubleCost) Relabel(a, b string) int {
	if a == b {
		return 0
	}
	return 2
}
func (doubleCost) Insert(string) int { return 2 }
func (doubleCost) Delete(string) int { return 2 }

func TestJoinDegenerate(t *testing.T) {
	if got, stats := SelfJoin(nil, 3, Options{}); len(got) != 0 || stats.Pairs != 0 {
		t.Error("empty self-join should be empty")
	}
	one := joinDataset(1, 68)
	if got, _ := SelfJoin(one, 3, Options{}); len(got) != 0 {
		t.Error("singleton self-join should be empty")
	}
	if got, _ := Join(nil, one, 3, Options{}); len(got) != 0 {
		t.Error("empty R join should be empty")
	}
}
