// Package labels provides string interning for tree node labels.
//
// Similarity evaluation touches every label of every tree many times
// (branch construction, histogram construction, edit-distance cost
// evaluation). Interning labels into dense small integer identifiers makes
// branch keys hashable as fixed-size values and lets per-label tables be
// plain slices instead of string-keyed maps.
//
// Identifier 0 is reserved for the ε label: the artificial "does not exist"
// node appended when the binary tree representation of a tree is normalized
// into a full binary tree (Section 3.2 of the paper). ε never appears as a
// label of a real tree node.
package labels

import (
	"fmt"
	"sync"
)

// ID is a dense identifier for an interned label. The zero value is Epsilon.
type ID int32

// Epsilon is the reserved identifier of the ε label used to pad binary tree
// representations into full binary trees.
const Epsilon ID = 0

// EpsilonString is the textual rendering of the ε label.
const EpsilonString = "ε"

// Interner assigns dense IDs to label strings. It is safe for concurrent
// use. The zero value is not usable; call NewInterner.
type Interner struct {
	mu   sync.RWMutex
	ids  map[string]ID
	strs []string
}

// NewInterner returns an interner whose table is pre-populated with ε at
// identifier 0.
func NewInterner() *Interner {
	in := &Interner{
		ids:  make(map[string]ID, 64),
		strs: make([]string, 0, 64),
	}
	in.strs = append(in.strs, EpsilonString)
	in.ids[EpsilonString] = Epsilon
	return in
}

// Intern returns the identifier for s, assigning a fresh one if s has not
// been seen before.
func (in *Interner) Intern(s string) ID {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[s]; ok {
		return id
	}
	id = ID(len(in.strs))
	in.strs = append(in.strs, s)
	in.ids[s] = id
	return id
}

// Lookup returns the identifier for s if it has been interned.
func (in *Interner) Lookup(s string) (ID, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, ok := in.ids[s]
	return id, ok
}

// String returns the label string for id. It panics if id was never issued
// by this interner.
func (in *Interner) String(id ID) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if id < 0 || int(id) >= len(in.strs) {
		panic(fmt.Sprintf("labels: unknown id %d", id))
	}
	return in.strs[id]
}

// Len reports how many distinct labels (including ε) have been interned.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.strs)
}
