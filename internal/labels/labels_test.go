package labels

import (
	"fmt"
	"sync"
	"testing"
)

func TestEpsilonReserved(t *testing.T) {
	in := NewInterner()
	if in.Len() != 1 {
		t.Fatalf("fresh interner has %d labels, want 1 (ε)", in.Len())
	}
	if got := in.String(Epsilon); got != EpsilonString {
		t.Errorf("String(Epsilon) = %q", got)
	}
	if id := in.Intern(EpsilonString); id != Epsilon {
		t.Errorf("re-interning ε gave %d", id)
	}
}

func TestInternStable(t *testing.T) {
	in := NewInterner()
	a := in.Intern("a")
	b := in.Intern("b")
	if a == b || a == Epsilon || b == Epsilon {
		t.Fatalf("ids not distinct: a=%d b=%d", a, b)
	}
	if in.Intern("a") != a {
		t.Error("second Intern returned a different id")
	}
	if got, ok := in.Lookup("a"); !ok || got != a {
		t.Error("Lookup failed for interned label")
	}
	if _, ok := in.Lookup("zzz"); ok {
		t.Error("Lookup succeeded for unknown label")
	}
	if in.String(a) != "a" || in.String(b) != "b" {
		t.Error("String round trip failed")
	}
}

func TestStringPanicsOnUnknown(t *testing.T) {
	in := NewInterner()
	defer func() {
		if recover() == nil {
			t.Error("String of unknown id should panic")
		}
	}()
	in.String(42)
}

func TestConcurrentIntern(t *testing.T) {
	in := NewInterner()
	var wg sync.WaitGroup
	const workers = 8
	ids := make([][]ID, workers)
	for w := 0; w < workers; w++ {
		ids[w] = make([]ID, 100)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ids[w][i] = in.Intern(fmt.Sprintf("label-%d", i))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range ids[w] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got id %d for label %d, worker 0 got %d",
					w, ids[w][i], i, ids[0][i])
			}
		}
	}
	if in.Len() != 101 { // 100 labels + ε
		t.Errorf("Len = %d, want 101", in.Len())
	}
}
