package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Exemplar links one histogram bucket to a concrete request: the most
// recent observation that landed in the bucket, by ID. When the p99
// bucket of a latency histogram spikes, its exemplar names a request
// whose retained trace (see Recorder) shows where the time went —
// turning an aggregate into something debuggable.
type Exemplar struct {
	RequestID string    `json:"request_id"`
	Value     float64   `json:"value"` // the observed value (seconds for latency)
	Time      time.Time `json:"time"`
}

// Exemplars tracks one exemplar per histogram bucket over the same
// ascending le bounds as a Histogram, plus the +Inf overflow bucket.
// Observations are a single atomic pointer store, so the hot path stays
// lock-free; last writer wins, which is exactly the "most recent" the
// type promises. A nil *Exemplars ignores observations.
type Exemplars struct {
	bounds []float64
	slots  []atomic.Pointer[Exemplar] // len(bounds)+1; last = overflow
}

// NewExemplars returns an exemplar store over the given strictly
// ascending upper bounds. It panics on unordered bounds — a programmer
// error, matching NewHistogram.
func NewExemplars(bounds []float64) *Exemplars {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: exemplar bounds not ascending at %d: %v", i, bounds))
		}
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	return &Exemplars{bounds: bs, slots: make([]atomic.Pointer[Exemplar], len(bs)+1)}
}

// Observe records requestID as the latest exemplar of v's bucket.
func (e *Exemplars) Observe(v float64, requestID string) {
	if e == nil {
		return
	}
	i := sort.SearchFloat64s(e.bounds, v) // first bound >= v (le convention)
	e.slots[i].Store(&Exemplar{RequestID: requestID, Value: v, Time: time.Now()})
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (e *Exemplars) Bounds() []float64 {
	if e == nil {
		return nil
	}
	return e.bounds
}

// Snapshot returns the current exemplar per bucket, indexed like
// HistogramSnapshot.Counts (nil entries where a bucket has never been
// hit). Safe on nil.
func (e *Exemplars) Snapshot() []*Exemplar {
	if e == nil {
		return nil
	}
	out := make([]*Exemplar, len(e.slots))
	for i := range e.slots {
		out[i] = e.slots[i].Load()
	}
	return out
}
