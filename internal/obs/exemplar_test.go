package obs

import "testing"

func TestExemplarsTrackMostRecentPerBucket(t *testing.T) {
	e := NewExemplars([]float64{0.001, 0.01, 0.1})
	e.Observe(0.0005, "fast-1")
	e.Observe(0.0008, "fast-2") // same bucket: replaces fast-1
	e.Observe(0.05, "mid")
	e.Observe(3.0, "huge") // past the last bound: overflow bucket

	snap := e.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d slots, want bounds+1 = 4", len(snap))
	}
	if snap[0] == nil || snap[0].RequestID != "fast-2" || snap[0].Value != 0.0008 {
		t.Fatalf("bucket 0 exemplar = %+v, want the most recent fast request", snap[0])
	}
	if snap[1] != nil {
		t.Fatalf("untouched bucket should have no exemplar: %+v", snap[1])
	}
	if snap[2] == nil || snap[2].RequestID != "mid" {
		t.Fatalf("bucket 2 exemplar = %+v", snap[2])
	}
	if snap[3] == nil || snap[3].RequestID != "huge" {
		t.Fatalf("overflow exemplar = %+v", snap[3])
	}
	if got := e.Bounds(); len(got) != 3 || got[2] != 0.1 {
		t.Fatalf("bounds = %v", got)
	}
}

func TestExemplarsBoundaryUsesLeConvention(t *testing.T) {
	e := NewExemplars([]float64{0.001, 0.01})
	e.Observe(0.001, "exact") // v <= bound: lands in the bound's own bucket
	if snap := e.Snapshot(); snap[0] == nil || snap[0].RequestID != "exact" {
		t.Fatalf("exact-boundary observation landed wrong: %+v", snap)
	}
}

func TestExemplarsNilAndPanics(t *testing.T) {
	var e *Exemplars
	e.Observe(1, "x") // must not panic
	if e.Snapshot() != nil || e.Bounds() != nil {
		t.Fatal("nil exemplars returned data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unordered bounds should panic")
		}
	}()
	NewExemplars([]float64{2, 1})
}
