package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Exporter ships completed root-span trees to an OTLP/JSON collector
// (the standard OTLP/HTTP v1/traces shape: ResourceSpans → ScopeSpans →
// flattened spans with hex ids and unix-nano timestamps), on the
// standard library alone.
//
// Offers go into a bounded queue; a single background worker batches
// them by count or age and POSTs each batch with jittered exponential
// backoff, honoring a Retry-After header on 429/503. A full queue or an
// exhausted retry budget drops trees and counts them — export never
// blocks or fails a request. Close flushes whatever is queued, bounded
// by the caller's context.
//
// Methods are safe on a nil *Exporter (disabled: Offer drops, Stats is
// zero), mirroring the package's Span and Recorder contracts.
type Exporter struct {
	cfg    ExporterConfig
	queue  chan ExportTrace
	stop   chan struct{}
	done   chan struct{}
	closed sync.Once

	offered atomic.Uint64
	sent    atomic.Uint64 // spans delivered
	batches atomic.Uint64
	dropped atomic.Uint64 // root trees dropped (queue full or retries exhausted)
	retries atomic.Uint64

	batchLat *Histogram // seconds per successful batch POST
	rng      *IDSource  // backoff jitter, off the math/rand global
}

// ExportTrace is one completed root-span tree offered for export. Root
// is the ended span itself, not a snapshot: the deep copy happens on
// the exporter's own goroutine at encode time, so offering a trace
// costs the request path only a channel send. Snapshot locks the span,
// so the background copy is safe even against stragglers.
type ExportTrace struct {
	Root  *Span     // ended root span; carries the trace identity
	Start time.Time // absolute start of the root span
	Err   bool      // request failed: the root exports with OTLP status ERROR
}

// ExporterConfig sizes an Exporter. Zero values take defaults.
type ExporterConfig struct {
	Endpoint    string        // collector URL, e.g. http://host:4318/v1/traces (required)
	Service     string        // resource service.name (default "treesimd")
	Interval    time.Duration // max age of a partial batch (default 2s)
	MaxBatch    int           // root trees per POST (default 64)
	Queue       int           // bounded queue of pending trees (default 1024)
	MaxAttempts int           // delivery attempts per batch (default 4)
	BaseBackoff time.Duration // first retry wait (default 100ms)
	MaxBackoff  time.Duration // backoff cap (default 5s)
	Client      *http.Client  // default: 10s-timeout client
	Logger      *slog.Logger  // delivery failures (default: discard)
}

func (c ExporterConfig) withDefaults() ExporterConfig {
	if c.Service == "" {
		c.Service = "treesimd"
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Queue <= 0 {
		c.Queue = 1024
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// NewExporter starts the background worker. Close it to flush.
func NewExporter(cfg ExporterConfig) *Exporter {
	cfg = cfg.withDefaults()
	e := &Exporter{
		cfg:      cfg,
		queue:    make(chan ExportTrace, cfg.Queue),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		batchLat: NewHistogram(DefDurationBuckets),
		rng:      NewIDSource(uint64(time.Now().UnixNano())),
	}
	go e.run()
	return e
}

// Offer enqueues one completed trace; it never blocks. False means the
// queue was full and the tree was dropped (counted).
func (e *Exporter) Offer(t ExportTrace) bool {
	if e == nil {
		return false
	}
	e.offered.Add(1)
	select {
	case e.queue <- t:
		return true
	default:
		e.dropped.Add(1)
		return false
	}
}

// Close stops the worker after flushing everything queued, bounded by
// ctx: when the deadline fires first, the remaining trees are counted
// dropped and the worker exits.
func (e *Exporter) Close(ctx context.Context) error {
	if e == nil {
		return nil
	}
	e.closed.Do(func() { close(e.stop) })
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("obs: exporter flush: %w", ctx.Err())
	}
}

// run is the worker loop: batch by size or age, flush on shutdown.
func (e *Exporter) run() {
	defer close(e.done)
	var batch []ExportTrace
	timer := time.NewTimer(e.cfg.Interval)
	defer timer.Stop()
	flush := func() {
		if len(batch) > 0 {
			e.send(batch)
			batch = nil
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(e.cfg.Interval)
	}
	for {
		select {
		case t := <-e.queue:
			batch = append(batch, t)
			if len(batch) >= e.cfg.MaxBatch {
				flush()
			}
		case <-timer.C:
			flush()
		case <-e.stop:
			// Drain whatever made it into the queue before the stop, in
			// MaxBatch-sized posts.
			for {
				select {
				case t := <-e.queue:
					batch = append(batch, t)
					if len(batch) >= e.cfg.MaxBatch {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

// send delivers one batch, retrying transient failures with jittered
// exponential backoff and honoring Retry-After. Exhausted retries drop
// the batch.
func (e *Exporter) send(batch []ExportTrace) {
	body, spans, err := e.encode(batch)
	if err != nil { // cannot happen for marshalable snapshots; count and move on
		e.dropped.Add(uint64(len(batch)))
		e.cfg.Logger.Error("otlp encode failed", "err", err)
		return
	}
	t0 := time.Now()
	for attempt := 0; ; attempt++ {
		status, retryAfter, err := e.post(body)
		if err == nil && status/100 == 2 {
			e.batches.Add(1)
			e.sent.Add(uint64(spans))
			e.batchLat.ObserveDuration(time.Since(t0))
			return
		}
		// 4xx other than 429 means the payload itself is refused;
		// retrying cannot help.
		permanent := err == nil && status/100 == 4 && status != http.StatusTooManyRequests
		if permanent || attempt >= e.cfg.MaxAttempts-1 {
			e.dropped.Add(uint64(len(batch)))
			e.cfg.Logger.Warn("otlp batch dropped", "status", status, "attempts", attempt+1, "err", err)
			return
		}
		e.retries.Add(1)
		wait := e.backoff(attempt, retryAfter)
		select {
		case <-time.After(wait):
		case <-e.stop:
			// Shutting down: one final immediate attempt happens on the
			// next loop turn; don't sit out a long backoff first.
		}
	}
}

// post does one HTTP delivery attempt.
func (e *Exporter) post(body []byte) (status int, retryAfter string, err error) {
	req, err := http.NewRequest(http.MethodPost, e.cfg.Endpoint, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.cfg.Client.Do(req)
	if err != nil {
		return 0, "", err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

// backoff computes the wait before retry attempt (0-based): equal-jitter
// exponential, overridden upward by Retry-After.
func (e *Exporter) backoff(attempt int, retryAfter string) time.Duration {
	d := e.cfg.BaseBackoff << attempt
	if d <= 0 || d > e.cfg.MaxBackoff {
		d = e.cfg.MaxBackoff
	}
	half := d / 2
	wait := half + time.Duration(e.rng.Uint64()%uint64(half+1))
	if s, err := strconv.Atoi(retryAfter); err == nil && s >= 0 {
		if ra := time.Duration(s) * time.Second; ra > wait {
			wait = ra
		}
	}
	return wait
}

// ExporterStats summarizes the exporter for /metrics.
type ExporterStats struct {
	Queued       int               `json:"queued"`  // trees waiting in the queue
	Offered      uint64            `json:"offered"` // trees offered since start
	Batches      uint64            `json:"batches"` // batches delivered
	SentSpans    uint64            `json:"sent_spans"`
	Dropped      uint64            `json:"dropped"` // trees lost (queue full or retries exhausted)
	Retries      uint64            `json:"retries"`
	BatchLatency HistogramSnapshot `json:"-"` // rendered by the caller's histogram convention
}

// Stats reads the current counters. Safe on nil (zero stats).
func (e *Exporter) Stats() ExporterStats {
	if e == nil {
		return ExporterStats{}
	}
	return ExporterStats{
		Queued:       len(e.queue),
		Offered:      e.offered.Load(),
		Batches:      e.batches.Load(),
		SentSpans:    e.sent.Load(),
		Dropped:      e.dropped.Load(),
		Retries:      e.retries.Load(),
		BatchLatency: e.batchLat.Snapshot(),
	}
}

// --- OTLP/JSON wire shape -------------------------------------------------
//
// The subset of opentelemetry-proto's trace service request that a
// collector's OTLP/HTTP JSON receiver accepts: protojson field names,
// int64 timestamps as decimal strings, ids as lowercase hex.

type otlpRequest struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID      string         `json:"traceId"`
	SpanID       string         `json:"spanId"`
	ParentSpanID string         `json:"parentSpanId,omitempty"`
	TraceState   string         `json:"traceState,omitempty"`
	Name         string         `json:"name"`
	Kind         int            `json:"kind"` // 2 = SERVER (roots), 1 = INTERNAL (children)
	StartNano    string         `json:"startTimeUnixNano"`
	EndNano      string         `json:"endTimeUnixNano"`
	Attributes   []otlpKeyValue `json:"attributes,omitempty"`
	Status       *otlpStatus    `json:"status,omitempty"`
}

type otlpStatus struct {
	Code int `json:"code"` // 2 = ERROR
}

type otlpKeyValue struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

// otlpValue is protojson's AnyValue: exactly one arm set.
type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"` // int64 renders as a string in protojson
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

const (
	otlpKindInternal = 1
	otlpKindServer   = 2
	otlpStatusError  = 2
)

// encode renders one batch as an OTLP/JSON request body: one resource
// for the whole process, one scope, the batch's span trees flattened.
func (e *Exporter) encode(batch []ExportTrace) (body []byte, spans int, err error) {
	var flat []otlpSpan
	for _, t := range batch {
		if t.Root == nil {
			continue
		}
		flat = appendOTLPSpans(flat, t.Root.Snapshot(), t.Start, t.Err, true)
	}
	spans = len(flat)
	req := otlpRequest{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKeyValue{
			otlpAttr("service.name", e.cfg.Service),
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "treesim/internal/obs"},
			Spans: flat,
		}},
	}}}
	body, err = json.Marshal(req)
	return body, spans, err
}

// appendOTLPSpans flattens one snapshot subtree. Snapshot times are
// microseconds relative to the root, so each span's absolute interval is
// base + StartUS .. + DurUS.
func appendOTLPSpans(dst []otlpSpan, sn SpanSnapshot, base time.Time, errStatus, root bool) []otlpSpan {
	start := base.Add(time.Duration(sn.StartUS) * time.Microsecond)
	end := start.Add(time.Duration(sn.DurUS) * time.Microsecond)
	sp := otlpSpan{
		TraceID:      sn.TraceID,
		SpanID:       sn.SpanID,
		ParentSpanID: sn.ParentSpanID,
		TraceState:   sn.TraceState,
		Name:         sn.Name,
		Kind:         otlpKindInternal,
		StartNano:    strconv.FormatInt(start.UnixNano(), 10),
		EndNano:      strconv.FormatInt(end.UnixNano(), 10),
	}
	if root {
		sp.Kind = otlpKindServer
		if errStatus {
			sp.Status = &otlpStatus{Code: otlpStatusError}
		}
	}
	if len(sn.Attrs) > 0 {
		sp.Attributes = make([]otlpKeyValue, 0, len(sn.Attrs))
		for k, v := range sn.Attrs {
			sp.Attributes = append(sp.Attributes, otlpAttrAny(k, v))
		}
		// Map iteration is random; exports should be byte-stable for a
		// given tree.
		sortOTLPAttrs(sp.Attributes)
	}
	dst = append(dst, sp)
	for _, c := range sn.Children {
		dst = appendOTLPSpans(dst, c, base, false, false)
	}
	return dst
}

func sortOTLPAttrs(attrs []otlpKeyValue) {
	for i := 1; i < len(attrs); i++ {
		for j := i; j > 0 && attrs[j].Key < attrs[j-1].Key; j-- {
			attrs[j], attrs[j-1] = attrs[j-1], attrs[j]
		}
	}
}

func otlpAttr(k, v string) otlpKeyValue {
	return otlpKeyValue{Key: k, Value: otlpValue{StringValue: &v}}
}

// otlpAttrAny maps a span attribute to the matching AnyValue arm.
func otlpAttrAny(k string, v any) otlpKeyValue {
	switch x := v.(type) {
	case int64:
		s := strconv.FormatInt(x, 10)
		return otlpKeyValue{Key: k, Value: otlpValue{IntValue: &s}}
	case int:
		s := strconv.Itoa(x)
		return otlpKeyValue{Key: k, Value: otlpValue{IntValue: &s}}
	case float64:
		return otlpKeyValue{Key: k, Value: otlpValue{DoubleValue: &x}}
	case bool:
		return otlpKeyValue{Key: k, Value: otlpValue{BoolValue: &x}}
	case string:
		return otlpAttr(k, x)
	default:
		return otlpAttr(k, fmt.Sprint(x))
	}
}

// CountOTLPSpans validates an OTLP/JSON request body the way a strict
// collector would — well-formed JSON of the expected shape, every span
// with a 32-hex trace id, 16-hex span id, a name, and parseable
// unix-nano timestamps — and returns the span count. Test sinks and the
// benchserver harness use it to assert the exporter speaks real OTLP,
// not a lookalike.
func CountOTLPSpans(body []byte) (int, error) {
	var req otlpRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return 0, fmt.Errorf("obs: otlp decode: %w", err)
	}
	if len(req.ResourceSpans) == 0 {
		return 0, errors.New("obs: otlp body has no resourceSpans")
	}
	n := 0
	for _, rs := range req.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				if _, ok := ParseTraceID(sp.TraceID); !ok {
					return 0, fmt.Errorf("obs: otlp span %q: bad traceId %q", sp.Name, sp.TraceID)
				}
				if _, ok := ParseSpanID(sp.SpanID); !ok {
					return 0, fmt.Errorf("obs: otlp span %q: bad spanId %q", sp.Name, sp.SpanID)
				}
				if sp.Name == "" {
					return 0, errors.New("obs: otlp span with empty name")
				}
				for _, ts := range []string{sp.StartNano, sp.EndNano} {
					if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
						return 0, fmt.Errorf("obs: otlp span %q: bad timestamp %q", sp.Name, ts)
					}
				}
				n++
			}
		}
	}
	if n == 0 {
		return 0, errors.New("obs: otlp body has no spans")
	}
	return n, nil
}
