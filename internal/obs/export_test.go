package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// otlpSink is an in-process OTLP/JSON collector for tests: it validates
// every body with CountOTLPSpans and remembers the decoded requests.
type otlpSink struct {
	t  *testing.T
	mu sync.Mutex

	spans   int
	batches int
	bodies  [][]byte

	failFirst  atomic.Int32 // respond with this status for the first N posts
	failStatus int
	retryAfter string
}

func (s *otlpSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.t.Errorf("sink read: %v", err)
		http.Error(w, "read", http.StatusBadRequest)
		return
	}
	if n := s.failFirst.Load(); n > 0 {
		s.failFirst.Add(-1)
		if s.retryAfter != "" {
			w.Header().Set("Retry-After", s.retryAfter)
		}
		w.WriteHeader(s.failStatus)
		return
	}
	n, err := CountOTLPSpans(body)
	if err != nil {
		s.t.Errorf("sink got invalid OTLP body: %v\n%s", err, body)
		http.Error(w, "invalid", http.StatusBadRequest)
		return
	}
	if r.Header.Get("Content-Type") != "application/json" {
		s.t.Errorf("content type %q", r.Header.Get("Content-Type"))
	}
	s.mu.Lock()
	s.spans += n
	s.batches++
	s.bodies = append(s.bodies, body)
	s.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func (s *otlpSink) counts() (spans, batches int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spans, s.batches
}

func finishedTrace(name string) ExportTrace {
	root := New(name)
	child := root.StartChild("filter")
	child.SetInt("candidates", 7)
	child.End()
	root.SetStr("request_id", "req-1")
	root.End()
	return ExportTrace{Root: root, Start: time.Now().Add(-time.Millisecond)}
}

func TestExporterDeliversValidOTLP(t *testing.T) {
	sink := &otlpSink{t: t}
	srv := httptest.NewServer(sink)
	defer srv.Close()

	e := NewExporter(ExporterConfig{Endpoint: srv.URL, Interval: 20 * time.Millisecond})
	for i := 0; i < 3; i++ {
		if !e.Offer(finishedTrace("knn")) {
			t.Fatalf("offer %d rejected", i)
		}
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	spans, batches := sink.counts()
	if spans != 6 { // 3 trees x (root + child)
		t.Errorf("sink saw %d spans, want 6", spans)
	}
	if batches < 1 {
		t.Error("sink saw no batches")
	}
	st := e.Stats()
	if st.SentSpans != 6 || st.Dropped != 0 || st.Offered != 3 {
		t.Errorf("stats %+v", st)
	}

	// Shape details a real collector cares about.
	var req otlpRequest
	sink.mu.Lock()
	body := sink.bodies[0]
	sink.mu.Unlock()
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatalf("decode: %v", err)
	}
	res := req.ResourceSpans[0]
	if len(res.Resource.Attributes) == 0 || res.Resource.Attributes[0].Key != "service.name" {
		t.Errorf("missing service.name resource attr: %+v", res.Resource)
	}
	sp := res.ScopeSpans[0].Spans
	if sp[0].Kind != otlpKindServer {
		t.Errorf("root kind %d, want SERVER", sp[0].Kind)
	}
	if sp[1].Kind != otlpKindInternal {
		t.Errorf("child kind %d, want INTERNAL", sp[1].Kind)
	}
	if sp[1].ParentSpanID != sp[0].SpanID {
		t.Errorf("child parent %q, root span %q", sp[1].ParentSpanID, sp[0].SpanID)
	}
	var start, end int64
	if _, err := json.Number(sp[0].StartNano).Int64(); err != nil {
		t.Errorf("start nano %q", sp[0].StartNano)
	}
	json.Unmarshal([]byte(sp[0].StartNano), &start) //nolint:errcheck
	json.Unmarshal([]byte(sp[0].EndNano), &end)     //nolint:errcheck
	if end <= start {
		t.Errorf("root interval [%d, %d] empty", start, end)
	}
}

func TestExporterErrorStatus(t *testing.T) {
	sink := &otlpSink{t: t}
	srv := httptest.NewServer(sink)
	defer srv.Close()

	e := NewExporter(ExporterConfig{Endpoint: srv.URL})
	tr := finishedTrace("knn")
	tr.Err = true
	e.Offer(tr)
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	var req otlpRequest
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.bodies) == 0 {
		t.Fatal("no batch delivered")
	}
	if err := json.Unmarshal(sink.bodies[0], &req); err != nil {
		t.Fatalf("decode: %v", err)
	}
	root := req.ResourceSpans[0].ScopeSpans[0].Spans[0]
	if root.Status == nil || root.Status.Code != otlpStatusError {
		t.Errorf("errored root exported without ERROR status: %+v", root.Status)
	}
}

func TestExporterRetriesThenDelivers(t *testing.T) {
	sink := &otlpSink{t: t, failStatus: http.StatusServiceUnavailable, retryAfter: "0"}
	sink.failFirst.Store(2)
	srv := httptest.NewServer(sink)
	defer srv.Close()

	e := NewExporter(ExporterConfig{
		Endpoint:    srv.URL,
		Interval:    10 * time.Millisecond,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
	e.Offer(finishedTrace("knn"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, batches := sink.counts(); batches >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never delivered after transient failures")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	st := e.Stats()
	if st.Retries < 2 {
		t.Errorf("retries %d, want >= 2", st.Retries)
	}
	if st.Dropped != 0 {
		t.Errorf("dropped %d after eventual success", st.Dropped)
	}
}

func TestExporterDropsOnPermanentRejection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer srv.Close()

	e := NewExporter(ExporterConfig{Endpoint: srv.URL, BaseBackoff: time.Millisecond})
	e.Offer(finishedTrace("knn"))
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	st := e.Stats()
	if st.Dropped != 1 {
		t.Errorf("dropped %d, want 1 (400 is permanent)", st.Dropped)
	}
	if st.Retries != 0 {
		t.Errorf("retried a permanent rejection %d times", st.Retries)
	}
}

func TestExporterBoundedQueueDrops(t *testing.T) {
	// An endpoint that never answers within the test, so the queue backs
	// up behind the first in-flight batch.
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)

	e := NewExporter(ExporterConfig{Endpoint: srv.URL, Queue: 4, MaxBatch: 1, Interval: time.Millisecond})
	time.Sleep(10 * time.Millisecond) // let the worker pick up and block on a first batch
	dropped := 0
	for i := 0; i < 32; i++ {
		if !e.Offer(finishedTrace("knn")) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("bounded queue never rejected an offer")
	}
	if st := e.Stats(); st.Dropped != uint64(dropped) {
		t.Errorf("drop counter %d, offers rejected %d", st.Dropped, dropped)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := e.Close(ctx); err == nil {
		t.Log("close drained despite blocked sink (ok: sink unblocked late)")
	}
}

func TestExporterNilSafe(t *testing.T) {
	var e *Exporter
	if e.Offer(ExportTrace{}) {
		t.Error("nil exporter accepted an offer")
	}
	if err := e.Close(context.Background()); err != nil {
		t.Errorf("nil close: %v", err)
	}
	if st := e.Stats(); st.Offered != 0 || st.Dropped != 0 || st.Queued != 0 {
		t.Errorf("nil stats %+v", st)
	}
}

func TestCountOTLPSpansRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		``,
		`{}`,
		`{"resourceSpans":[]}`,
		`{"resourceSpans":[{"resource":{},"scopeSpans":[{"scope":{"name":"x"},"spans":[]}]}]}`,
		`{"resourceSpans":[{"resource":{},"scopeSpans":[{"scope":{"name":"x"},"spans":[{"traceId":"zz","spanId":"00f067aa0ba902b7","name":"a","kind":2,"startTimeUnixNano":"1","endTimeUnixNano":"2"}]}]}]}`,
		`{"resourceSpans":[{"resource":{},"scopeSpans":[{"scope":{"name":"x"},"spans":[{"traceId":"4bf92f3577b34da6a3ce929d0e0e4736","spanId":"00f067aa0ba902b7","name":"a","kind":2,"startTimeUnixNano":"soon","endTimeUnixNano":"2"}]}]}]}`,
	} {
		if n, err := CountOTLPSpans([]byte(bad)); err == nil {
			t.Errorf("CountOTLPSpans accepted %q (n=%d)", bad, n)
		}
	}
}
