package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefDurationBuckets are the default bucket upper bounds, in seconds, for
// duration histograms (WAL fsync, per-stage query time): 100µs to 2.5s in
// a 1-2.5-5 ladder. Everything slower lands in the +Inf bucket.
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5,
}

// Histogram counts observations into fixed buckets, Prometheus-style:
// bucket i holds values v <= Bounds[i] (the le convention), with one
// overflow bucket past the last bound. Observations are lock-free atomics,
// so hot paths (a WAL fsync per insert, a pair of observations per query)
// never contend. A nil *Histogram ignores observations, mirroring Span's
// nil contract.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = overflow (+Inf)
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given strictly ascending
// upper bounds. It panics on unordered bounds — a programmer error.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bounds[i]
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a consistent-enough copy for rendering: Counts are
// per-bucket (not cumulative), Count is their total. Under concurrent
// observation Sum may trail the counts by in-flight observations; renders
// derive totals from Counts so the exposed document stays self-consistent.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last is the +Inf bucket
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the current state. Safe on nil (zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	out := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		out.Counts[i] = c
		out.Count += c
	}
	return out
}
