package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefDurationBuckets are the default bucket upper bounds, in seconds, for
// duration histograms (WAL fsync, per-stage query time): 100µs to 2.5s in
// a 1-2.5-5 ladder. Everything slower lands in the +Inf bucket.
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5,
}

// Histogram counts observations into fixed buckets, Prometheus-style:
// bucket i holds values v <= Bounds[i] (the le convention), with one
// overflow bucket past the last bound. Observations are lock-free atomics,
// so hot paths (a WAL fsync per insert, a pair of observations per query)
// never contend. A nil *Histogram ignores observations, mirroring Span's
// nil contract.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = overflow (+Inf)
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given strictly ascending
// upper bounds. It panics on unordered bounds — a programmer error.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bounds[i]
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a consistent-enough copy for rendering: Counts are
// per-bucket (not cumulative), Count is their total. Under concurrent
// observation Sum may trail the counts by in-flight observations; renders
// derive totals from Counts so the exposed document stays self-consistent.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last is the +Inf bucket
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (clamped to [0,1]) from the bucketed
// counts: it walks to the bucket holding the q·Count-th observation and
// interpolates linearly between the bucket's bounds. Values in the +Inf
// overflow bucket report the last finite bound — a floor, which is the
// honest answer a bucketed histogram can give. Returns 0 on an empty
// snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			break // overflow bucket: no upper bound to interpolate toward
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// QuantileLower is Quantile without the interpolation: it returns the
// lower bound of the bucket holding the rank. Interpolation can land
// above every actual observation when the rank falls in a sparse, coarse
// bucket; the lower edge never does, so a threshold derived from it
// over-selects by at most one bucket's width instead of silently missing
// the tail. Returns 0 on an empty snapshot.
func (s HistogramSnapshot) QuantileLower(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == 0 {
			return 0
		}
		if i >= len(s.Bounds) {
			break
		}
		return s.Bounds[i-1]
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot copies the current state. Safe on nil (zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	out := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		out.Counts[i] = c
		out.Count += c
	}
	return out
}
