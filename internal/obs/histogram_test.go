package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets: the le convention (v <= bound) routes values to
// the right buckets, including bound-equal values and the overflow.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // bucket 0
	h.Observe(0.001)  // bucket 0 (le is inclusive)
	h.Observe(0.002)  // bucket 1
	h.Observe(0.1)    // bucket 2
	h.Observe(5)      // overflow

	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-5.1035) > 1e-9 {
		t.Errorf("sum %v, want 5.1035", s.Sum)
	}
}

// TestHistogramNil: a nil histogram swallows observations, so optional
// wiring (wal.Options without metrics) needs no branches.
func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || len(s.Counts) != 0 {
		t.Fatalf("nil snapshot %+v", s)
	}
}

// TestHistogramConcurrent: parallel observers lose nothing.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefDurationBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) * 0.0002)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count %d, want %d", s.Count, workers*per)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Errorf("bucket total %d != count %d", total, s.Count)
	}
	wantSum := float64(workers/4) * per * (0 + 0.0002 + 0.0004 + 0.0006)
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("sum %v, want %v", s.Sum, wantSum)
	}
}

// TestHistogramBadBounds: unordered bounds are a programmer error.
func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unordered bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}
