package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets: the le convention (v <= bound) routes values to
// the right buckets, including bound-equal values and the overflow.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // bucket 0
	h.Observe(0.001)  // bucket 0 (le is inclusive)
	h.Observe(0.002)  // bucket 1
	h.Observe(0.1)    // bucket 2
	h.Observe(5)      // overflow

	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-5.1035) > 1e-9 {
		t.Errorf("sum %v, want 5.1035", s.Sum)
	}
}

// TestHistogramNil: a nil histogram swallows observations, so optional
// wiring (wal.Options without metrics) needs no branches.
func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || len(s.Counts) != 0 {
		t.Fatalf("nil snapshot %+v", s)
	}
}

// TestHistogramConcurrent: parallel observers lose nothing.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefDurationBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) * 0.0002)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count %d, want %d", s.Count, workers*per)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Errorf("bucket total %d != count %d", total, s.Count)
	}
	wantSum := float64(workers/4) * per * (0 + 0.0002 + 0.0004 + 0.0006)
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("sum %v, want %v", s.Sum, wantSum)
	}
}

// TestHistogramBadBounds: unordered bounds are a programmer error.
func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unordered bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // bucket (0,1]
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.5) // bucket (1,2]
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 1.0},  // rank 10: exactly fills the first bucket
		{0.75, 1.5}, // rank 15: halfway through (1,2]
		{0.25, 0.5}, // rank 5: halfway through (0,1]
		{1.0, 2.0},  // max lands at the second bound
		{-1, 0},     // clamped to the minimum
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot quantile = %v, want 0", got)
	}
	// Everything in the overflow bucket: the last finite bound is the
	// only honest answer.
	over := NewHistogram([]float64{1, 2})
	over.Observe(100)
	if got := over.Snapshot().Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want last bound 2", got)
	}
}

// TestHistogramSnapshotQuantileLower: the conservative variant returns
// the rank bucket's lower edge — never above any observation in or past
// that bucket, which is what a tail-retention threshold needs.
func TestHistogramSnapshotQuantileLower(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // bucket (0,1]
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.5) // bucket (1,2]
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.25, 0}, // rank 5 in the first bucket: lower edge 0
		{0.5, 0},  // rank 10 exactly fills the first bucket
		{0.75, 1}, // rank 15 in (1,2]: lower edge 1
		{1.0, 1},  // max is in (1,2] too
	} {
		if got := s.QuantileLower(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("QuantileLower(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Interpolated Quantile may exceed the true maximum (1.5); the lower
	// variant never does — the property the flight recorder relies on.
	if got := s.QuantileLower(0.99); got > 1.5 {
		t.Errorf("QuantileLower(0.99) = %v exceeds the max observation", got)
	}
	if got := (HistogramSnapshot{}).QuantileLower(0.5); got != 0 {
		t.Errorf("empty snapshot = %v, want 0", got)
	}
	over := NewHistogram([]float64{1, 2})
	over.Observe(100)
	if got := over.Snapshot().QuantileLower(0.5); got != 2 {
		t.Errorf("overflow = %v, want last bound 2", got)
	}
}
