package obs

import (
	"bytes"
	"fmt"
	"io"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// TailProfiler turns the flight recorder's verdicts into evidence:
// when a trace is retained as slow or errored, Trigger starts a short
// CPU profile and files the pprof-gzip bytes in an in-memory ring,
// keyed back to the trace that caused it. The operator reads the
// profile from /debug/profiles minutes later instead of racing to
// attach pprof while the tail condition still holds.
//
// Profiles are expensive and runtime/pprof allows only one CPU profile
// per process, so Trigger is doubly guarded: a token bucket (default
// one capture per minute) absorbs tail storms, and a busy flag drops
// triggers that land mid-capture. Dropped triggers are counted, never
// queued — the next slow request will re-trigger.
//
// Methods are safe on a nil *TailProfiler (disabled), like the
// package's other optional components.
type TailProfiler struct {
	cfg   ProfilerConfig
	start func(io.Writer) error // pprof.StartCPUProfile, injectable for tests
	stop  func()

	mu      sync.Mutex
	ring    []CapturedProfile // newest last, capped at cfg.Ring
	seq     uint64
	tokens  float64
	lastRef time.Time // last token refill

	busy      atomic.Bool
	triggered atomic.Uint64
	captured  atomic.Uint64
	skipped   atomic.Uint64 // rate-limited or mid-capture

	wg     sync.WaitGroup
	closed atomic.Bool
}

// ProfilerConfig sizes a TailProfiler. Zero values take defaults.
type ProfilerConfig struct {
	Every   time.Duration // token refill interval: one capture per Every (default 1m)
	Burst   int           // bucket capacity (default 1)
	Capture time.Duration // CPU profile duration (default 500ms)
	Ring    int           // retained profiles (default 8)

	// Start/Stop override runtime/pprof for tests; both or neither.
	Start func(io.Writer) error
	Stop  func()
}

func (c ProfilerConfig) withDefaults() ProfilerConfig {
	if c.Every <= 0 {
		c.Every = time.Minute
	}
	if c.Burst <= 0 {
		c.Burst = 1
	}
	if c.Capture <= 0 {
		c.Capture = 500 * time.Millisecond
	}
	if c.Ring <= 0 {
		c.Ring = 8
	}
	if c.Start == nil || c.Stop == nil {
		c.Start = pprof.StartCPUProfile
		c.Stop = pprof.StopCPUProfile
	}
	return c
}

// CapturedProfile is one completed capture. Bytes holds the pprof-gzip
// payload, served verbatim by /debug/profiles/{id}.
type CapturedProfile struct {
	ID         string    `json:"id"`
	TraceID    string    `json:"trace_id,omitempty"`
	RequestID  string    `json:"request_id,omitempty"`
	Reason     string    `json:"reason"` // recorder class that pulled the trigger
	Start      time.Time `json:"start"`
	DurationMS int64     `json:"duration_ms"`
	Size       int       `json:"size_bytes"`

	Bytes []byte `json:"-"`
}

// NewTailProfiler returns a profiler with a full token bucket, so the
// first tail after startup profiles immediately.
func NewTailProfiler(cfg ProfilerConfig) *TailProfiler {
	cfg = cfg.withDefaults()
	return &TailProfiler{
		cfg:     cfg,
		start:   cfg.Start,
		stop:    cfg.Stop,
		tokens:  float64(cfg.Burst),
		lastRef: time.Now(),
	}
}

// Trigger requests a capture attributed to the given trace. It returns
// immediately; the capture itself runs on its own goroutine. False
// means the trigger was absorbed (rate limit, capture in progress, or
// closed) — counted, not queued.
func (p *TailProfiler) Trigger(traceID, requestID, reason string) bool {
	if p == nil || p.closed.Load() {
		return false
	}
	p.triggered.Add(1)
	if !p.takeToken() {
		p.skipped.Add(1)
		return false
	}
	if !p.busy.CompareAndSwap(false, true) {
		p.skipped.Add(1)
		return false
	}
	p.wg.Add(1)
	go p.capture(traceID, requestID, reason)
	return true
}

// takeToken refills by elapsed time and spends one token if available.
func (p *TailProfiler) takeToken() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	p.tokens += now.Sub(p.lastRef).Seconds() / p.cfg.Every.Seconds()
	if max := float64(p.cfg.Burst); p.tokens > max {
		p.tokens = max
	}
	p.lastRef = now
	if p.tokens < 1 {
		return false
	}
	p.tokens--
	return true
}

// capture runs one CPU profile and files it in the ring.
func (p *TailProfiler) capture(traceID, requestID, reason string) {
	defer p.wg.Done()
	defer p.busy.Store(false)
	var buf bytes.Buffer
	start := time.Now()
	if err := p.start(&buf); err != nil {
		// Another subsystem holds the CPU profiler (e.g. an operator on
		// /debug/pprof); skip rather than fight over it.
		p.skipped.Add(1)
		return
	}
	timer := time.NewTimer(p.cfg.Capture)
	<-timer.C
	p.stop()
	dur := time.Since(start)

	p.mu.Lock()
	p.seq++
	cp := CapturedProfile{
		ID:         fmt.Sprintf("p%06d", p.seq),
		TraceID:    traceID,
		RequestID:  requestID,
		Reason:     reason,
		Start:      start,
		DurationMS: dur.Milliseconds(),
		Size:       buf.Len(),
		Bytes:      buf.Bytes(),
	}
	p.ring = append(p.ring, cp)
	if len(p.ring) > p.cfg.Ring {
		p.ring = p.ring[len(p.ring)-p.cfg.Ring:]
	}
	p.mu.Unlock()
	p.captured.Add(1)
}

// List returns the retained profiles, newest first, without payloads.
func (p *TailProfiler) List() []CapturedProfile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]CapturedProfile, 0, len(p.ring))
	for i := len(p.ring) - 1; i >= 0; i-- {
		cp := p.ring[i]
		cp.Bytes = nil
		out = append(out, cp)
	}
	return out
}

// Get returns one profile, payload included, by its id.
func (p *TailProfiler) Get(id string) (CapturedProfile, bool) {
	if p == nil {
		return CapturedProfile{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, cp := range p.ring {
		if cp.ID == id {
			return cp, true
		}
	}
	return CapturedProfile{}, false
}

// ByTraceID returns the newest profile attributed to the trace, without
// its payload — the link /debug/traces/{id} embeds.
func (p *TailProfiler) ByTraceID(traceID string) (CapturedProfile, bool) {
	if p == nil || traceID == "" {
		return CapturedProfile{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.ring) - 1; i >= 0; i-- {
		if p.ring[i].TraceID == traceID {
			cp := p.ring[i]
			cp.Bytes = nil
			return cp, true
		}
	}
	return CapturedProfile{}, false
}

// ProfilerStats summarizes the profiler for /metrics.
type ProfilerStats struct {
	Triggered uint64 `json:"triggered"`
	Captured  uint64 `json:"captured"`
	Skipped   uint64 `json:"skipped"` // rate-limited, busy, or profiler contended
	Retained  int    `json:"retained"`
}

// Stats reads the current counters. Safe on nil (zero stats).
func (p *TailProfiler) Stats() ProfilerStats {
	if p == nil {
		return ProfilerStats{}
	}
	p.mu.Lock()
	retained := len(p.ring)
	p.mu.Unlock()
	return ProfilerStats{
		Triggered: p.triggered.Load(),
		Captured:  p.captured.Load(),
		Skipped:   p.skipped.Load(),
		Retained:  retained,
	}
}

// Close refuses new triggers and waits for an in-flight capture to
// finish (at most one, bounded by cfg.Capture).
func (p *TailProfiler) Close() {
	if p == nil {
		return
	}
	p.closed.Store(true)
	p.wg.Wait()
}
