package obs

import (
	"io"
	"sync/atomic"
	"testing"
	"time"
)

// fakeCapture stands in for runtime/pprof: it writes a recognizable
// payload and counts start/stop pairing.
type fakeCapture struct {
	starts atomic.Int32
	stops  atomic.Int32
	w      atomic.Value // io.Writer of the active capture
}

func (f *fakeCapture) start(w io.Writer) error {
	f.starts.Add(1)
	f.w.Store(&w)
	return nil
}

func (f *fakeCapture) stop() {
	f.stops.Add(1)
	if wp, ok := f.w.Load().(*io.Writer); ok {
		(*wp).Write([]byte("pprof-gzip-bytes")) //nolint:errcheck
	}
}

func fastProfiler(fc *fakeCapture, every time.Duration, burst int) *TailProfiler {
	return NewTailProfiler(ProfilerConfig{
		Every:   every,
		Burst:   burst,
		Capture: time.Millisecond,
		Ring:    3,
		Start:   fc.start,
		Stop:    fc.stop,
	})
}

func waitCaptured(t *testing.T, p *TailProfiler, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Captured < want {
		if time.Now().After(deadline) {
			t.Fatalf("captured %d, want %d", p.Stats().Captured, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestProfilerCapturesAndLinks(t *testing.T) {
	fc := &fakeCapture{}
	p := fastProfiler(fc, time.Hour, 1)
	defer p.Close()

	trace := NewTraceID().String()
	if !p.Trigger(trace, "req-7", "slow") {
		t.Fatal("first trigger with a full bucket refused")
	}
	waitCaptured(t, p, 1)

	list := p.List()
	if len(list) != 1 {
		t.Fatalf("list has %d entries", len(list))
	}
	cp := list[0]
	if cp.TraceID != trace || cp.RequestID != "req-7" || cp.Reason != "slow" {
		t.Errorf("attribution wrong: %+v", cp)
	}
	if cp.Bytes != nil {
		t.Error("list leaked payload bytes")
	}
	if cp.Size != len("pprof-gzip-bytes") {
		t.Errorf("size %d", cp.Size)
	}

	got, ok := p.Get(cp.ID)
	if !ok || string(got.Bytes) != "pprof-gzip-bytes" {
		t.Fatalf("Get(%s) = %+v, %v", cp.ID, got, ok)
	}
	byTrace, ok := p.ByTraceID(trace)
	if !ok || byTrace.ID != cp.ID {
		t.Fatalf("ByTraceID(%s) = %+v, %v", trace, byTrace, ok)
	}
	if _, ok := p.ByTraceID("no-such-trace"); ok {
		t.Error("ByTraceID matched a foreign trace")
	}
	if fc.starts.Load() != fc.stops.Load() {
		t.Errorf("start/stop unbalanced: %d/%d", fc.starts.Load(), fc.stops.Load())
	}
}

func TestProfilerRateLimit(t *testing.T) {
	fc := &fakeCapture{}
	p := fastProfiler(fc, time.Hour, 1) // one token, no refill within the test
	defer p.Close()

	if !p.Trigger("t1", "r1", "slow") {
		t.Fatal("first trigger refused")
	}
	waitCaptured(t, p, 1)
	for i := 0; i < 5; i++ {
		if p.Trigger("t2", "r2", "slow") {
			t.Fatal("trigger accepted with an empty bucket")
		}
	}
	st := p.Stats()
	if st.Captured != 1 || st.Skipped != 5 || st.Triggered != 6 {
		t.Errorf("stats %+v", st)
	}
}

func TestProfilerTokenRefill(t *testing.T) {
	fc := &fakeCapture{}
	p := fastProfiler(fc, 20*time.Millisecond, 1)
	defer p.Close()

	if !p.Trigger("t1", "r1", "slow") {
		t.Fatal("first trigger refused")
	}
	waitCaptured(t, p, 1)
	deadline := time.Now().Add(5 * time.Second)
	for !p.Trigger("t2", "r2", "error") {
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitCaptured(t, p, 2)
}

func TestProfilerRingEviction(t *testing.T) {
	fc := &fakeCapture{}
	p := fastProfiler(fc, time.Nanosecond, 10) // effectively unlimited tokens
	defer p.Close()

	for i := 0; i < 5; i++ {
		id := NewTraceID().String()
		deadline := time.Now().Add(5 * time.Second)
		for !p.Trigger(id, "r", "slow") {
			if time.Now().After(deadline) {
				t.Fatal("trigger starved")
			}
			time.Sleep(time.Millisecond)
		}
		waitCaptured(t, p, uint64(i+1))
	}
	list := p.List()
	if len(list) != 3 { // Ring: 3
		t.Fatalf("ring holds %d, want 3", len(list))
	}
	// Newest first, and the oldest two evicted.
	if list[0].ID != "p000005" || list[2].ID != "p000003" {
		t.Errorf("ring order/eviction wrong: %s .. %s", list[0].ID, list[2].ID)
	}
	if _, ok := p.Get("p000001"); ok {
		t.Error("evicted profile still retrievable")
	}
}

func TestProfilerCloseStopsTriggers(t *testing.T) {
	fc := &fakeCapture{}
	p := fastProfiler(fc, time.Nanosecond, 10)
	p.Trigger("t", "r", "slow")
	p.Close()
	if p.Trigger("t2", "r2", "slow") {
		t.Error("closed profiler accepted a trigger")
	}
	if fc.starts.Load() != fc.stops.Load() {
		t.Errorf("capture left running across Close: %d/%d", fc.starts.Load(), fc.stops.Load())
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *TailProfiler
	if p.Trigger("t", "r", "slow") {
		t.Error("nil profiler accepted a trigger")
	}
	if got := p.List(); got != nil {
		t.Errorf("nil list %v", got)
	}
	if _, ok := p.Get("p000001"); ok {
		t.Error("nil get succeeded")
	}
	if _, ok := p.ByTraceID("t"); ok {
		t.Error("nil by-trace succeeded")
	}
	if st := p.Stats(); st != (ProfilerStats{}) {
		t.Errorf("nil stats %+v", st)
	}
	p.Close()
}

func TestProfilerRealPprof(t *testing.T) {
	// One capture through the real runtime/pprof hooks: the payload must
	// be non-empty and gzip-framed (0x1f 0x8b).
	p := NewTailProfiler(ProfilerConfig{Every: time.Hour, Burst: 1, Capture: 50 * time.Millisecond, Ring: 1})
	defer p.Close()
	if !p.Trigger(NewTraceID().String(), "req-real", "slow") {
		t.Skip("CPU profiler unavailable (held elsewhere)")
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Captured == 0 {
		if p.Stats().Skipped > 0 {
			t.Skip("CPU profiler contended in this process")
		}
		if time.Now().After(deadline) {
			t.Fatal("real capture never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	list := p.List()
	cp, ok := p.Get(list[0].ID)
	if !ok || cp.Size == 0 {
		t.Fatalf("real profile empty: %+v", cp)
	}
	if cp.Bytes[0] != 0x1f || cp.Bytes[1] != 0x8b {
		t.Errorf("payload not gzip-framed: % x", cp.Bytes[:2])
	}
}
