package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4): the format a Prometheus
// server scrapes. A PromWriter renders metric families — a # HELP line, a
// # TYPE line, then one sample per label set — with proper escaping and
// cumulative histogram buckets ending in le="+Inf".
//
//	pw := obs.NewPromWriter(w)
//	pw.Family("app_requests_total", "counter", "Requests served.").
//	    Sample(obs.Labels{"endpoint": "/v1/knn"}, 42)
//	pw.Family("app_latency_seconds", "histogram", "Request latency.").
//	    Histogram(nil, hist.Snapshot())
//	err := pw.Err()

// Labels is one sample's label set. Rendering sorts keys, so output is
// deterministic.
type Labels map[string]string

// PromWriter renders metric families to w, remembering the first write
// error (check Err once at the end, encoder-style).
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter returns a writer rendering to w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first error any write hit.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family opens a metric family, writing its # HELP and # TYPE header.
// typ is "counter", "gauge" or "histogram". Call the returned family's
// sample methods before opening the next family.
func (p *PromWriter) Family(name, typ, help string) *PromFamily {
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
	return &PromFamily{p: p, name: name}
}

// PromFamily renders the samples of one family.
type PromFamily struct {
	p    *PromWriter
	name string
}

// Sample writes one counter or gauge sample.
func (f *PromFamily) Sample(labels Labels, v float64) {
	f.p.printf("%s%s %s\n", f.name, renderLabels(labels, "", ""), formatFloat(v))
}

// Histogram writes one label set's _bucket series (cumulative, ending in
// le="+Inf"), _sum and _count. The _count equals the +Inf bucket by
// construction, whatever races the snapshot saw.
func (f *PromFamily) Histogram(labels Labels, s HistogramSnapshot) {
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		f.p.printf("%s_bucket%s %d\n", f.name, renderLabels(labels, "le", formatFloat(b)), cum)
	}
	if len(s.Counts) > 0 {
		cum += s.Counts[len(s.Counts)-1]
	}
	f.p.printf("%s_bucket%s %d\n", f.name, renderLabels(labels, "le", "+Inf"), cum)
	f.p.printf("%s_sum%s %s\n", f.name, renderLabels(labels, "", ""), formatFloat(s.Sum))
	f.p.printf("%s_count%s %d\n", f.name, renderLabels(labels, "", ""), cum)
}

// renderLabels renders {k="v",...} with sorted keys, appending the extra
// pair (the histogram le) last when set. Empty label sets render as "".
func renderLabels(labels Labels, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders v the way Prometheus clients do: shortest exact
// decimal ('g'), so bucket bounds like 0.0025 round-trip as written.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
