package obs

import (
	"strings"
	"testing"
)

// TestPromCounterGauge: HELP/TYPE headers precede samples, labels render
// sorted, floats render shortest-exact.
func TestPromCounterGauge(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	f := pw.Family("app_requests_total", "counter", "Requests served.")
	f.Sample(Labels{"endpoint": "/v1/knn"}, 42)
	f.Sample(Labels{"endpoint": "/v1/range"}, 7)
	pw.Family("app_uptime_seconds", "gauge", "Uptime.").Sample(nil, 1.5)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{endpoint="/v1/knn"} 42
app_requests_total{endpoint="/v1/range"} 7
# HELP app_uptime_seconds Uptime.
# TYPE app_uptime_seconds gauge
app_uptime_seconds 1.5
`
	if b.String() != want {
		t.Errorf("output:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestPromHistogram: buckets are cumulative, end in +Inf, and _count
// matches the +Inf bucket.
func TestPromHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.0025, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 3} {
		h.Observe(v)
	}
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Family("app_latency_seconds", "histogram", "Latency.").
		Histogram(Labels{"endpoint": "/x"}, h.Snapshot())
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`app_latency_seconds_bucket{endpoint="/x",le="0.001"} 1`,
		`app_latency_seconds_bucket{endpoint="/x",le="0.0025"} 3`,
		`app_latency_seconds_bucket{endpoint="/x",le="0.1"} 4`,
		`app_latency_seconds_bucket{endpoint="/x",le="+Inf"} 5`,
		`app_latency_seconds_count{endpoint="/x"} 5`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
	if !strings.Contains(b.String(), "app_latency_seconds_sum{") {
		t.Errorf("no _sum in:\n%s", b.String())
	}
}

// TestPromEscaping: label values escape quotes, backslashes and newlines;
// help escapes backslashes and newlines.
func TestPromEscaping(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Family("m", "gauge", "line1\nline2 \\ done").
		Sample(Labels{"path": "a\"b\\c\nd"}, 1)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# HELP m line1\nline2 \\ done`) {
		t.Errorf("help not escaped:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `m{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}
