package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is an in-process flight recorder: a fixed-size sharded ring
// of completed request traces with tail-based retention. Every request
// is offered on completion; the recorder always keeps errored requests
// and requests slower than an adaptive threshold (a rolling latency
// quantile), and reservoir-samples a small baseline of normal requests
// so slow traces have something to diff against. Everything else is
// dropped before its span tree is ever snapshotted — the drop path is a
// rolling-histogram observation plus a few atomics and allocates
// nothing.
//
// Retention classes are strictly ordered: a baseline trace never evicts
// an error or slow trace, and an incoming error/slow trace evicts the
// oldest baseline anywhere in the ring before it recycles one of its
// own kind. Errored and over-threshold traces are therefore never lost
// while a baseline sample survives.
//
// Methods are safe for concurrent use and safe on a nil *Recorder
// (disabled: Offer drops everything, List/Get find nothing), mirroring
// the package's Span contract.
type Recorder struct {
	capacity int
	baseCap  int // reservoir target for baseline traces
	quantile float64
	floorNS  int64

	lat       *RollingHistogram // all offered durations, feeding the threshold
	threshold atomic.Int64      // cached quantile, ns; recomputed every recalcEvery offers
	offers    atomic.Uint64
	dropped   atomic.Uint64
	baseSeen  atomic.Uint64 // normal (non-tail) requests seen, for the reservoir
	rng       atomic.Uint64 // xorshift state for reservoir admission
	seq       atomic.Uint64 // insertion order, for oldest-first eviction

	shards []recShard
}

// recalcEvery is how many offers share one cached threshold before it is
// recomputed from the rolling histogram.
const recalcEvery = 64

// thresholdMinSamples is how many observations the rolling window needs
// before the quantile is trusted over the configured floor.
const thresholdMinSamples = 32

// TraceClass says why a trace was retained.
type TraceClass string

const (
	TraceError    TraceClass = "error"    // request failed (5xx); always kept
	TraceSlow     TraceClass = "slow"     // duration >= adaptive threshold
	TraceBaseline TraceClass = "baseline" // reservoir-sampled normal request
)

// RetainedTrace is one request the recorder kept. Entries are immutable
// once inserted; List and Get hand out shared pointers.
type RetainedTrace struct {
	RequestID   string       `json:"request_id"`
	TraceID     string       `json:"trace_id,omitempty"` // hex W3C trace id
	Endpoint    string       `json:"endpoint"`
	Status      int          `json:"status"`
	Class       TraceClass   `json:"class"`
	Degraded    bool         `json:"degraded,omitempty"`
	Start       time.Time    `json:"start"`
	DurationUS  int64        `json:"dur_us"`
	ThresholdUS int64        `json:"threshold_us"` // the slow threshold when this trace completed
	Trace       SpanSnapshot `json:"trace"`
	Explain     any          `json:"explain,omitempty"` // per-query analysis, when the server had one

	seq uint64
}

// CompletedRequest describes one finished request offered to the
// recorder. Root is snapshotted only if the trace is retained.
type CompletedRequest struct {
	RequestID string
	TraceID   string // hex W3C trace id of Root's trace
	Endpoint  string
	Status    int
	Error     bool // terminal server failure; always retained
	Degraded  bool // completed inside a degraded (read-only) window
	Start     time.Time
	Duration  time.Duration
	Root      *Span
	Explain   any
}

// RecorderConfig sizes a Recorder. Zero values take defaults.
type RecorderConfig struct {
	Capacity int           // total retained traces (default 256)
	Shards   int           // ring shards (default 4)
	Baseline int           // reservoir target for normal requests (default Capacity/8, min 1)
	Window   time.Duration // rolling window feeding the adaptive threshold (default 1m)
	Quantile float64       // latency quantile defining "slow" (default 0.99)
	MinSlow  time.Duration // threshold floor while the window is cold or fast (default 1ms)
}

type recShard struct {
	mu      sync.Mutex
	entries []*RetainedTrace
	cap     int
}

// NewRecorder returns a recorder with cfg's sizing.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Shards > cfg.Capacity {
		cfg.Shards = cfg.Capacity
	}
	if cfg.Baseline <= 0 {
		cfg.Baseline = cfg.Capacity / 8
	}
	if cfg.Baseline < 1 {
		cfg.Baseline = 1
	}
	if cfg.Baseline > cfg.Capacity {
		cfg.Baseline = cfg.Capacity
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.Quantile <= 0 || cfg.Quantile >= 1 {
		cfg.Quantile = 0.99
	}
	if cfg.MinSlow <= 0 {
		cfg.MinSlow = time.Millisecond
	}
	r := &Recorder{
		capacity: cfg.Capacity,
		baseCap:  cfg.Baseline,
		quantile: cfg.Quantile,
		floorNS:  cfg.MinSlow.Nanoseconds(),
		lat:      NewRollingHistogram(DefDurationBuckets, cfg.Window, 12),
		shards:   make([]recShard, cfg.Shards),
	}
	// Spread capacity over the shards, remainder to the first ones.
	per, rem := cfg.Capacity/cfg.Shards, cfg.Capacity%cfg.Shards
	for i := range r.shards {
		r.shards[i].cap = per
		if i < rem {
			r.shards[i].cap++
		}
	}
	r.threshold.Store(r.floorNS)
	r.rng.Store(0x9e3779b97f4a7c15) // fixed seed: the reservoir needs spread, not secrecy
	return r
}

// Offer presents a completed request. It returns the retention class
// and whether the trace was retained; when it was not, req.Root has not
// been touched and nothing was allocated. Callers use the class to
// chain tail reactions — the server triggers a profile capture on a
// retained error or slow trace, never on a baseline sample.
func (r *Recorder) Offer(req CompletedRequest) (TraceClass, bool) {
	if r == nil {
		return "", false
	}
	n := r.offers.Add(1)
	r.lat.Observe(req.Duration.Seconds())
	if n%recalcEvery == 1 {
		r.recalcThreshold()
	}
	thr := r.threshold.Load()

	var class TraceClass
	switch {
	case req.Error:
		class = TraceError
	case req.Duration.Nanoseconds() >= thr:
		class = TraceSlow
	default:
		class = TraceBaseline
		// Reservoir admission (algorithm R) before paying for a snapshot:
		// the k-th baseline of n seen is kept with probability k/n, so the
		// survivors approximate a uniform sample of normal traffic.
		seen := r.baseSeen.Add(1)
		if seen > uint64(r.baseCap) && r.rand(seen) >= uint64(r.baseCap) {
			r.dropped.Add(1)
			return class, false
		}
	}

	ent := &RetainedTrace{
		RequestID:   req.RequestID,
		TraceID:     req.TraceID,
		Endpoint:    req.Endpoint,
		Status:      req.Status,
		Class:       class,
		Degraded:    req.Degraded,
		Start:       req.Start,
		DurationUS:  req.Duration.Microseconds(),
		ThresholdUS: thr / 1e3,
		Trace:       req.Root.Snapshot(),
		Explain:     req.Explain,
		seq:         r.seq.Add(1),
	}
	home := int(ent.seq % uint64(len(r.shards)))
	if class == TraceBaseline {
		if !r.insertBaseline(home, ent) {
			r.dropped.Add(1)
			return class, false
		}
		return class, true
	}
	r.insertTail(home, ent)
	return class, true
}

// insertBaseline adds a baseline trace: into the first shard (walking
// the ring from home) with free space or an older baseline to replace.
// It never touches an error or slow entry; when the whole ring is tail
// traces the insert is refused.
func (r *Recorder) insertBaseline(home int, ent *RetainedTrace) bool {
	for off := range r.shards {
		sh := &r.shards[(home+off)%len(r.shards)]
		sh.mu.Lock()
		if len(sh.entries) < sh.cap {
			sh.entries = append(sh.entries, ent)
			sh.mu.Unlock()
			return true
		}
		if i := oldestOf(sh.entries, true); i >= 0 {
			sh.entries[i] = ent
			sh.mu.Unlock()
			return true
		}
		sh.mu.Unlock()
	}
	return false
}

// insertTail adds an error/slow trace. Order of preference: free space
// in the home shard, the oldest baseline in the home shard, the oldest
// baseline in any other shard (walking the ring, one lock at a time),
// and only when no baseline exists anywhere, the home shard's oldest
// entry of any class.
func (r *Recorder) insertTail(home int, ent *RetainedTrace) {
	for off := range r.shards {
		sh := &r.shards[(home+off)%len(r.shards)]
		sh.mu.Lock()
		if len(sh.entries) < sh.cap {
			sh.entries = append(sh.entries, ent)
			sh.mu.Unlock()
			return
		}
		if i := oldestOf(sh.entries, true); i >= 0 {
			sh.entries[i] = ent
			sh.mu.Unlock()
			return
		}
		sh.mu.Unlock()
	}
	// Ring is wall-to-wall errors and slow traces: recycle the oldest in
	// the home shard (every shard holds at least one entry here).
	sh := &r.shards[home]
	sh.mu.Lock()
	if i := oldestOf(sh.entries, false); i >= 0 {
		sh.entries[i] = ent
	}
	sh.mu.Unlock()
}

// oldestOf returns the index of the oldest entry (lowest seq), optionally
// restricted to baselines; -1 when no candidate exists.
func oldestOf(entries []*RetainedTrace, baselineOnly bool) int {
	best := -1
	for i, e := range entries {
		if baselineOnly && e.Class != TraceBaseline {
			continue
		}
		if best < 0 || e.seq < entries[best].seq {
			best = i
		}
	}
	return best
}

// recalcThreshold refreshes the cached slow threshold from the rolling
// quantile, floored at MinSlow. With a cold window the floor stands
// alone, so early traffic is judged against an honest minimum rather
// than a quantile of three requests. QuantileLower (the bucket's lower
// edge, no interpolation) keeps the threshold at or below every true
// tail observation: a recorder that over-retains by a bucket's width is
// mildly wasteful, one that overshoots misses the very requests it
// exists to keep.
func (r *Recorder) recalcThreshold() {
	snap := r.lat.Snapshot()
	thr := r.floorNS
	if snap.Count >= thresholdMinSamples {
		if ns := int64(snap.QuantileLower(r.quantile) * 1e9); ns > thr {
			thr = ns
		}
	}
	r.threshold.Store(thr)
}

// Threshold returns the current adaptive slow threshold.
func (r *Recorder) Threshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.threshold.Load())
}

// rand draws from [0, max) via an atomic xorshift step.
func (r *Recorder) rand(max uint64) uint64 {
	for {
		old := r.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if r.rng.CompareAndSwap(old, x) {
			return x % max
		}
	}
}

// TraceFilter selects retained traces in List.
type TraceFilter struct {
	Endpoint  string        // exact match when non-empty
	MinDur    time.Duration // only traces at least this slow
	ErrorOnly bool          // only the error class
	Limit     int           // max results, most recent first; <=0 means all
}

// List returns the retained traces matching f, newest first.
func (r *Recorder) List(f TraceFilter) []*RetainedTrace {
	if r == nil {
		return nil
	}
	minUS := f.MinDur.Microseconds()
	var out []*RetainedTrace
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if f.Endpoint != "" && e.Endpoint != f.Endpoint {
				continue
			}
			if e.DurationUS < minUS {
				continue
			}
			if f.ErrorOnly && e.Class != TraceError {
				continue
			}
			out = append(out, e)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// Get returns the retained trace whose request ID or hex trace ID
// matches id, or nil. Accepting either spelling lets an operator paste
// whatever identifier they have — a request id from a log line or a
// trace id from a collector UI.
func (r *Recorder) Get(id string) *RetainedTrace {
	if r == nil || id == "" {
		return nil
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.RequestID == id || (e.TraceID != "" && e.TraceID == id) {
				sh.mu.Unlock()
				return e
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// RecorderStats summarizes the recorder for /metrics and /debug/traces.
type RecorderStats struct {
	Capacity    int    `json:"capacity"`
	Retained    int    `json:"retained"`
	Errors      int    `json:"errors"`
	Slow        int    `json:"slow"`
	Baseline    int    `json:"baseline"`
	Offered     uint64 `json:"offered"`
	Dropped     uint64 `json:"dropped"`
	ThresholdUS int64  `json:"threshold_us"`
}

// Stats counts the current ring contents. Safe on nil (zero stats).
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	st := RecorderStats{
		Capacity:    r.capacity,
		Offered:     r.offers.Load(),
		Dropped:     r.dropped.Load(),
		ThresholdUS: r.threshold.Load() / 1e3,
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			st.Retained++
			switch e.Class {
			case TraceError:
				st.Errors++
			case TraceSlow:
				st.Slow++
			default:
				st.Baseline++
			}
		}
		sh.mu.Unlock()
	}
	return st
}
