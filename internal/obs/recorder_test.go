package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// offerN offers n copies of a request template with distinct IDs.
func offerN(r *Recorder, n int, prefix string, d time.Duration, status int, isErr bool) {
	for i := 0; i < n; i++ {
		root := New("/v1/knn")
		root.End()
		r.Offer(CompletedRequest{
			RequestID: fmt.Sprintf("%s%04d", prefix, i),
			Endpoint:  "/v1/knn",
			Status:    status,
			Error:     isErr,
			Start:     time.Now(),
			Duration:  d,
			Root:      root,
		})
	}
}

func TestRecorderRetainsAllErrors(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 32, Shards: 4, Baseline: 8})
	// Interleave a flood of fast, healthy requests with 30 errors: every
	// error must survive, however many baselines competed for the ring.
	for i := 0; i < 30; i++ {
		offerN(r, 10, fmt.Sprintf("ok%02d-", i), 100*time.Microsecond, 200, false)
		offerN(r, 1, fmt.Sprintf("err%02d-", i), 100*time.Microsecond, 500, true)
	}
	got := r.List(TraceFilter{ErrorOnly: true})
	if len(got) != 30 {
		t.Fatalf("retained %d errored traces, want all 30", len(got))
	}
	st := r.Stats()
	if st.Errors != 30 || st.Retained > 32 {
		t.Fatalf("stats = %+v, want 30 errors within capacity 32", st)
	}
}

// TestRecorderRetentionProperty is the retention-policy property test:
// errored and over-threshold traces are never evicted while a baseline
// sample occupies a slot, in whatever order the classes arrive.
func TestRecorderRetentionProperty(t *testing.T) {
	const capacity = 24
	for _, order := range []string{"baseline-first", "tail-first", "interleaved"} {
		t.Run(order, func(t *testing.T) {
			r := NewRecorder(RecorderConfig{Capacity: capacity, Shards: 3, Baseline: 6})
			tail := func(i int) {
				// Half errors, half over-threshold (default floor is 1ms).
				if i%2 == 0 {
					offerN(r, 1, fmt.Sprintf("e%03d-", i), 200*time.Microsecond, 503, true)
				} else {
					offerN(r, 1, fmt.Sprintf("s%03d-", i), 50*time.Millisecond, 200, false)
				}
			}
			base := func(i int) {
				offerN(r, 1, fmt.Sprintf("b%03d-", i), 100*time.Microsecond, 200, false)
			}
			const tails = capacity - 4 // fits in the ring with room to spare
			switch order {
			case "baseline-first":
				for i := 0; i < 100; i++ {
					base(i)
				}
				for i := 0; i < tails; i++ {
					tail(i)
				}
			case "tail-first":
				for i := 0; i < tails; i++ {
					tail(i)
				}
				for i := 0; i < 100; i++ {
					base(i)
				}
			default:
				for i := 0; i < 100; i++ {
					base(i)
					if i < tails {
						tail(i)
					}
				}
			}
			st := r.Stats()
			if st.Errors+st.Slow != tails {
				t.Fatalf("%s: retained %d error + %d slow, want %d tail traces held; stats %+v",
					order, st.Errors, st.Slow, tails, st)
			}
			if st.Retained > capacity {
				t.Fatalf("%s: retained %d > capacity %d", order, st.Retained, capacity)
			}
			if st.Baseline == 0 {
				t.Fatalf("%s: no baseline samples survived alongside %d tails (capacity %d)",
					order, tails, capacity)
			}
		})
	}
}

func TestRecorderAdaptiveThreshold(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 64, MinSlow: time.Millisecond})
	if got := r.Threshold(); got != time.Millisecond {
		t.Fatalf("cold threshold = %v, want the 1ms floor", got)
	}
	// A uniformly slow workload must raise the threshold above the floor
	// once the rolling window has enough samples.
	offerN(r, 200, "w", 20*time.Millisecond, 200, false)
	if got := r.Threshold(); got < 10*time.Millisecond {
		t.Fatalf("threshold after 200 × 20ms requests = %v, want it adapted above 10ms", got)
	}
	// And a genuinely slow outlier is retained as class "slow".
	offerN(r, 1, "spike-", 500*time.Millisecond, 200, false)
	traces := r.List(TraceFilter{MinDur: 400 * time.Millisecond})
	if len(traces) != 1 || traces[0].Class != TraceSlow {
		t.Fatalf("List(min 400ms) = %v, want the one spike as class slow", traces)
	}
	if traces[0].ThresholdUS < 10_000 {
		t.Fatalf("retained trace records threshold %dus, want the adapted value", traces[0].ThresholdUS)
	}
}

func TestRecorderBaselineReservoirBounded(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 32, Baseline: 4})
	offerN(r, 5000, "b", 100*time.Microsecond, 200, false)
	st := r.Stats()
	// The reservoir may briefly exceed its target only by what free ring
	// space allows; with an otherwise empty ring that is the shard spill.
	if st.Baseline == 0 || st.Retained > 32 {
		t.Fatalf("stats after 5000 normal requests: %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatal("reservoir admitted everything; expected most normal traces dropped")
	}
	if st.Offered != 5000 {
		t.Fatalf("offered = %d, want 5000", st.Offered)
	}
}

func TestRecorderListFiltersAndGet(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 64})
	rootA := New("/v1/knn")
	rootA.End()
	r.Offer(CompletedRequest{RequestID: "r1", Endpoint: "/v1/knn", Status: 200,
		Duration: 30 * time.Millisecond, Root: rootA, Explain: map[string]int{"candidates": 7}})
	rootB := New("/v1/range")
	rootB.End()
	r.Offer(CompletedRequest{RequestID: "r2", Endpoint: "/v1/range", Status: 500, Error: true,
		Duration: 2 * time.Millisecond, Root: rootB, Degraded: true})

	if got := r.List(TraceFilter{Endpoint: "/v1/knn"}); len(got) != 1 || got[0].RequestID != "r1" {
		t.Fatalf("endpoint filter: %+v", got)
	}
	if got := r.List(TraceFilter{MinDur: 10 * time.Millisecond}); len(got) != 1 || got[0].RequestID != "r1" {
		t.Fatalf("min-duration filter: %+v", got)
	}
	if got := r.List(TraceFilter{ErrorOnly: true}); len(got) != 1 || got[0].RequestID != "r2" {
		t.Fatalf("error filter: %+v", got)
	}
	if got := r.List(TraceFilter{Limit: 1}); len(got) != 1 || got[0].RequestID != "r2" {
		t.Fatalf("limit should keep the newest trace: %+v", got)
	}
	tr := r.Get("r2")
	if tr == nil || !tr.Degraded || tr.Class != TraceError {
		t.Fatalf("Get(r2) = %+v, want a degraded errored trace", tr)
	}
	if tr.Trace.Name != "/v1/range" {
		t.Fatalf("retained span tree root = %q", tr.Trace.Name)
	}
	if r.Get("nope") != nil {
		t.Fatal("Get of unknown ID should be nil")
	}
	if ex, ok := r.Get("r1").Explain.(map[string]int); !ok || ex["candidates"] != 7 {
		t.Fatalf("explain payload lost: %+v", r.Get("r1").Explain)
	}
}

// TestRecorderDropIsAllocationFree pins the tentpole's perf contract:
// once the reservoir is saturated, offering a normal request that the
// recorder declines costs no allocation. The average stays below one
// even counting the rare reservoir admissions and threshold recomputes.
func TestRecorderDropIsAllocationFree(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 32, Baseline: 4})
	offerN(r, 10_000, "warm", 100*time.Microsecond, 200, false)
	req := CompletedRequest{
		RequestID: "hot",
		Endpoint:  "/v1/knn",
		Status:    200,
		Start:     time.Now(),
		Duration:  100 * time.Microsecond,
		Root:      New("hot"),
	}
	req.Root.End()
	avg := testing.AllocsPerRun(2000, func() { r.Offer(req) })
	if avg >= 1 {
		t.Fatalf("dropped offer allocates %.3f objects/op, want amortized zero", avg)
	}
}

// TestRecorderHammer drives concurrent writers and readers; run under
// -race it is the ring buffer's concurrency test.
func TestRecorderHammer(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 64, Shards: 4, Baseline: 8})
	const writers, readers, perWriter = 4, 3, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				root := New("/v1/knn")
				root.StartChild("refine").End()
				root.End()
				r.Offer(CompletedRequest{
					RequestID: fmt.Sprintf("w%d-%04d", w, i),
					Endpoint:  "/v1/knn",
					Status:    []int{200, 200, 200, 503}[i%4],
					Error:     i%4 == 3,
					Duration:  time.Duration(i%50) * time.Millisecond,
					Root:      root,
				})
			}
		}(w)
	}
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range r.List(TraceFilter{Limit: 16}) {
					_ = tr.Trace.Name
				}
				r.Get(fmt.Sprintf("w%d-0001", g))
				_ = r.Stats()
				_ = r.Threshold()
			}
		}(g)
	}
	// Stop the readers once every writer's offers have landed.
	go func() {
		defer close(stop)
		for r.Stats().Offered < writers*perWriter {
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	st := r.Stats()
	if st.Offered != writers*perWriter {
		t.Fatalf("offered = %d, want %d", st.Offered, writers*perWriter)
	}
	if st.Retained == 0 || st.Retained > 64 {
		t.Fatalf("retained = %d, want within (0, 64]", st.Retained)
	}
}

func TestRecorderNilIsDisabled(t *testing.T) {
	var r *Recorder
	if _, kept := r.Offer(CompletedRequest{RequestID: "x"}); kept {
		t.Fatal("nil recorder retained a trace")
	}
	if r.List(TraceFilter{}) != nil || r.Get("x") != nil {
		t.Fatal("nil recorder returned traces")
	}
	if st := r.Stats(); st != (RecorderStats{}) {
		t.Fatalf("nil recorder stats = %+v", st)
	}
	if r.Threshold() != 0 {
		t.Fatal("nil recorder threshold != 0")
	}
}
