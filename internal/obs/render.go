package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// FprintSpanTree renders a span tree as indented text, one line per span
// with its duration, share of the root's time and sorted attributes:
//
//	/v1/knn         1789us 100.0%  request_id=r00000001
//	  filter          312us  17.4%  candidates=41
//	  refine         1401us  78.3%  verified=12
//
// It is the one human-facing span formatter in the repo, shared by
// examples/client -trace, cmd/treesim-trace and anything else that wants
// a terminal-friendly trace (structured logs go through LogValue
// instead).
func FprintSpanTree(w io.Writer, sn SpanSnapshot) {
	fprintSpan(w, sn, 0, sn.DurUS)
}

// RenderSpanTree is FprintSpanTree into a string.
func RenderSpanTree(sn SpanSnapshot) string {
	var b strings.Builder
	FprintSpanTree(&b, sn)
	return b.String()
}

func fprintSpan(w io.Writer, sp SpanSnapshot, depth int, rootUS int64) {
	pct := 0.0
	if rootUS > 0 {
		pct = 100 * float64(sp.DurUS) / float64(rootUS)
	}
	fmt.Fprintf(w, "  %*s%-12s %8dus %5.1f%%", depth*2, "", sp.Name, sp.DurUS, pct)
	// Attrs in sorted order so transcripts are stable.
	keys := make([]string, 0, len(sp.Attrs))
	for k := range sp.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %s=%v", k, sp.Attrs[k])
	}
	fmt.Fprintln(w)
	for _, c := range sp.Children {
		fprintSpan(w, c, depth+1, rootUS)
	}
}
