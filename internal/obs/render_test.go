package obs

import (
	"strings"
	"testing"
)

func TestRenderSpanTree(t *testing.T) {
	sn := SpanSnapshot{
		Name:  "/v1/knn",
		DurUS: 2000,
		Attrs: map[string]any{"request_id": "r00000001"},
		Children: []SpanSnapshot{
			{Name: "filter", DurUS: 500, Attrs: map[string]any{"candidates": int64(41), "ashard": int64(2)}},
			{Name: "refine", DurUS: 1500, Attrs: map[string]any{"verified": int64(12)}},
		},
	}
	out := RenderSpanTree(sn)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines, want 3:\n%s", len(lines), out)
	}
	for _, want := range []string{"/v1/knn", "request_id=r00000001", "100.0%"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("root line missing %q: %s", want, lines[0])
		}
	}
	// Children indent two spaces deeper than the root.
	if !strings.HasPrefix(lines[1], "    filter") {
		t.Errorf("child not indented: %q", lines[1])
	}
	// Attrs render sorted, so ashard precedes candidates.
	if a, c := strings.Index(lines[1], "ashard="), strings.Index(lines[1], "candidates="); a < 0 || c < 0 || a > c {
		t.Errorf("attrs not sorted on child line: %q", lines[1])
	}
	if !strings.Contains(lines[2], "75.0%") {
		t.Errorf("refine share of root time wrong: %q", lines[2])
	}
}

func TestRenderSpanTreeZeroRoot(t *testing.T) {
	// A zero-duration root must not divide by zero.
	out := RenderSpanTree(SpanSnapshot{Name: "noop"})
	if !strings.Contains(out, "noop") || !strings.Contains(out, "0.0%") {
		t.Fatalf("zero-duration render: %q", out)
	}
}
