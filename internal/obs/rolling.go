package obs

import (
	"sync"
	"time"
)

// RollingHistogram is a histogram over a sliding time window with bounded
// memory: the window is divided into a fixed ring of slots, each holding
// its own bucket counts, and observations older than the window fall out
// as their slot is recycled. Memory is O(slots × buckets) forever, however
// many observations arrive — what lets a long-lived server expose "filter
// tightness over the last N minutes" without ever growing.
//
// Unlike Histogram (cumulative since process start, lock-free), a
// RollingHistogram is mutex-guarded: rotation and observation must agree
// on the current slot. It is intended for per-query quality samples
// (a handful of observations per request), not per-operation hot paths.
type RollingHistogram struct {
	mu     sync.Mutex
	bounds []float64
	slots  []rollingSlot
	slotD  time.Duration // duration covered by one slot
	cur    int           // index of the active slot
	curT   time.Time     // start of the active slot
	now    func() time.Time
}

type rollingSlot struct {
	counts []uint64
	sum    float64
}

// NewRollingHistogram returns a histogram whose Snapshot covers at most
// `window` of history at `slots` granularity (expiry happens a slot at a
// time). Bounds follow the same ascending le convention as NewHistogram.
// It panics on unordered bounds, non-positive window or slots < 1.
func NewRollingHistogram(bounds []float64, window time.Duration, slots int) *RollingHistogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: rolling histogram bounds not ascending")
		}
	}
	if window <= 0 || slots < 1 {
		panic("obs: rolling histogram needs a positive window and at least one slot")
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	h := &RollingHistogram{
		bounds: bs,
		slots:  make([]rollingSlot, slots),
		slotD:  window / time.Duration(slots),
		now:    time.Now,
	}
	for i := range h.slots {
		h.slots[i].counts = make([]uint64, len(bs)+1)
	}
	h.curT = h.now()
	return h
}

// advance recycles slots the clock has moved past. Called under mu.
func (h *RollingHistogram) advance() {
	now := h.now()
	// A gap of a full window or more outlives every slot: clear them all
	// in one O(slots) pass and jump the epoch, instead of spinning once
	// per elapsed slot (and instead of jumping with stale slots intact,
	// which is what the per-slot loop alone used to do).
	if now.Sub(h.curT) >= h.slotD*time.Duration(len(h.slots)) {
		for i := range h.slots {
			s := &h.slots[i]
			for j := range s.counts {
				s.counts[j] = 0
			}
			s.sum = 0
		}
		h.curT = now
		return
	}
	for now.Sub(h.curT) >= h.slotD {
		h.cur = (h.cur + 1) % len(h.slots)
		s := &h.slots[h.cur]
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.sum = 0
		h.curT = h.curT.Add(h.slotD)
	}
}

// Observe records one value into the current slot. Safe on nil.
func (h *RollingHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.advance()
	s := &h.slots[h.cur]
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	s.counts[i]++
	s.sum += v
}

// Snapshot merges the live slots into one HistogramSnapshot covering the
// rolling window. Safe on nil (zero snapshot).
func (h *RollingHistogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.advance()
	out := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for _, s := range h.slots {
		for i, c := range s.counts {
			out.Counts[i] += c
			out.Count += c
		}
		out.Sum += s.sum
	}
	return out
}
