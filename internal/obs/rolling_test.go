package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a RollingHistogram deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newRollingForTest(bounds []float64, window time.Duration, slots int) (*RollingHistogram, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h := NewRollingHistogram(bounds, window, slots)
	h.now = clk.now
	h.curT = clk.now()
	return h, clk
}

func TestRollingHistogramObserveAndBucket(t *testing.T) {
	h, _ := newRollingForTest([]float64{1, 2, 5}, time.Minute, 6)
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1} // le_1: {0.5,1}, le_2: {1.5}, le_5: {3}, +Inf: {10}
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Sum != 0.5+1+1.5+3+10 {
		t.Errorf("Sum = %v", s.Sum)
	}
}

func TestRollingHistogramExpiry(t *testing.T) {
	h, clk := newRollingForTest([]float64{1}, time.Minute, 6) // 10s slots
	h.Observe(0.5)
	clk.advance(30 * time.Second)
	h.Observe(0.5)
	if got := h.Snapshot().Count; got != 2 {
		t.Fatalf("mid-window Count = %d, want 2", got)
	}
	// 50s after the second observation: the first (80s old) is expired,
	// the second still in window.
	clk.advance(50 * time.Second)
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("after expiry Count = %d, want 1", got)
	}
	// Far past the window: everything gone, including after a huge idle
	// gap (the advance loop must not spin per-slot over the whole gap).
	clk.advance(24 * time.Hour)
	if got := h.Snapshot().Count; got != 0 {
		t.Fatalf("after window Count = %d, want 0", got)
	}
	h.Observe(2)
	s := h.Snapshot()
	if s.Count != 1 || s.Counts[1] != 1 {
		t.Fatalf("post-gap observe: %+v", s)
	}
}

func TestRollingHistogramNil(t *testing.T) {
	var h *RollingHistogram
	h.Observe(1) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot Count = %d", s.Count)
	}
}

func TestRollingHistogramConcurrent(t *testing.T) {
	h, _ := newRollingForTest([]float64{1, 2}, time.Minute, 4)
	var wg sync.WaitGroup
	const n, per = 8, 100
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != n*per {
		t.Fatalf("Count = %d, want %d", got, n*per)
	}
}

// TestRollingIdleGapClearsEverything is a regression test: a gap of a
// full window or more used to jump the epoch with stale slots intact,
// so old observations reappeared in the next Snapshot.
func TestRollingIdleGapClearsEverything(t *testing.T) {
	h := NewRollingHistogram([]float64{1}, time.Minute, 6)
	clk := &fakeClock{t: time.Unix(0, 0)}
	h.now = clk.now
	h.curT = clk.now()
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	clk.mu.Lock()
	clk.t = clk.t.Add(3 * time.Hour)
	clk.mu.Unlock()
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("after 3h idle, count = %d, want 0 (counts %v)", s.Count, s.Counts)
	}
}
