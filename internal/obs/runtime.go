package obs

import (
	"math"
	"runtime/metrics"
	"sort"
)

// Runtime telemetry, sampled from runtime/metrics on demand (at scrape
// time — no background goroutine): heap size, goroutine count, GC cycle
// count, and the runtime's GC-pause and scheduler-latency histograms
// downsampled onto a fixed bucket ladder so they render through the
// same HistogramSnapshot/Prometheus path as everything else.

// DefPauseBuckets are the upper bounds, in seconds, for GC pause and
// scheduler latency distributions: 1µs to 100ms in decades. Stop-the-
// world pauses past 100ms land in +Inf and deserve the attention.
var DefPauseBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// RuntimeStats is one sample of the Go runtime's health.
type RuntimeStats struct {
	HeapBytes    uint64            `json:"heap_bytes"`
	Goroutines   uint64            `json:"goroutines"`
	GCCycles     uint64            `json:"gc_cycles"`
	GCPause      HistogramSnapshot `json:"gc_pause_seconds"`
	SchedLatency HistogramSnapshot `json:"sched_latency_seconds"`
}

var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// ReadRuntime samples the runtime. Metrics a future runtime drops are
// reported as zero rather than failing the scrape.
func ReadRuntime() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	var out RuntimeStats
	for _, s := range samples {
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			out.HeapBytes = sampleUint64(s)
		case "/sched/goroutines:goroutines":
			out.Goroutines = sampleUint64(s)
		case "/gc/cycles/total:gc-cycles":
			out.GCCycles = sampleUint64(s)
		case "/gc/pauses:seconds":
			out.GCPause = downsampleRuntimeHistogram(s, DefPauseBuckets)
		case "/sched/latencies:seconds":
			out.SchedLatency = downsampleRuntimeHistogram(s, DefPauseBuckets)
		}
	}
	return out
}

func sampleUint64(s metrics.Sample) uint64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s.Value.Uint64()
}

// downsampleRuntimeHistogram folds a runtime Float64Histogram (hundreds
// of variable-width buckets, possibly with infinite edges) onto our
// fixed le bounds. Each runtime bucket [lo, hi) is attributed to the
// bound covering its finite edge — hi normally, lo when hi is +Inf — a
// conservative upper-bound placement consistent with the le convention.
// The sum is approximated the same way; renders only need it to be
// plausible and monotone.
func downsampleRuntimeHistogram(s metrics.Sample, bounds []float64) HistogramSnapshot {
	out := HistogramSnapshot{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return out
	}
	h := s.Value.Float64Histogram()
	if h == nil {
		return out
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		v := hi
		if math.IsInf(v, 1) {
			v = lo
		}
		if math.IsInf(v, -1) || v < 0 {
			v = 0
		}
		j := sort.SearchFloat64s(bounds, v)
		out.Counts[j] += c
		out.Count += c
		out.Sum += v * float64(c)
	}
	return out
}
