package obs

import (
	"runtime"
	"testing"
)

func TestReadRuntime(t *testing.T) {
	runtime.GC() // guarantee at least one cycle and one pause sample
	st := ReadRuntime()
	if st.HeapBytes == 0 {
		t.Error("heap bytes = 0")
	}
	if st.Goroutines == 0 {
		t.Error("goroutines = 0")
	}
	if st.GCCycles == 0 {
		t.Error("gc cycles = 0 after an explicit GC")
	}
	for name, h := range map[string]HistogramSnapshot{
		"gc_pause": st.GCPause, "sched_latency": st.SchedLatency,
	} {
		if len(h.Bounds) != len(DefPauseBuckets) || len(h.Counts) != len(h.Bounds)+1 {
			t.Fatalf("%s histogram shape: bounds=%d counts=%d", name, len(h.Bounds), len(h.Counts))
		}
		var total uint64
		for _, c := range h.Counts {
			total += c
		}
		if total != h.Count {
			t.Errorf("%s: Count %d != bucket total %d", name, h.Count, total)
		}
	}
	if st.GCPause.Count == 0 {
		t.Error("gc pause histogram empty after an explicit GC")
	}
}
