package obs

import (
	"sort"
	"sync"
	"time"
)

// SLO tracking: per-endpoint rolling RED counters (rate, errors,
// duration-over-objective) and multi-window burn rates.
//
// A request is "bad" when it errors or runs past the latency objective;
// the burn rate is the bad fraction divided by the error budget
// (1 − target), so burn 1.0 means the budget is being spent exactly as
// fast as the SLO allows, and burn 10 means ten times too fast. Two
// windows are reported per endpoint — a short one that reacts to an
// active incident and a long one that shows sustained budget spend —
// the standard fast/slow multi-window alerting pair.

// SLOConfig sets the objectives and windows. Zero values take defaults.
type SLOConfig struct {
	Latency    time.Duration // per-request latency objective (default 100ms)
	Target     float64       // good-request objective in (0,1) (default 0.99)
	Window     time.Duration // slow-burn window (default 1h)
	FastWindow time.Duration // fast-burn window (default 5m)
	Slots      int           // ring granularity over Window (default 60)
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Latency <= 0 {
		c.Latency = 100 * time.Millisecond
	}
	if c.Target <= 0 || c.Target >= 1 {
		c.Target = 0.99
	}
	if c.Window <= 0 {
		c.Window = time.Hour
	}
	if c.FastWindow <= 0 || c.FastWindow > c.Window {
		c.FastWindow = c.Window / 12
	}
	if c.Slots < 1 {
		c.Slots = 60
	}
	return c
}

// SLOTracker accumulates per-endpoint RED counters into a fixed ring of
// time slots, like RollingHistogram: memory stays O(endpoints × slots)
// forever. One mutex guards the whole tracker — each request touches it
// once, which is in the same cost class as the metrics it already pays
// for. A nil tracker ignores observations.
type SLOTracker struct {
	cfg SLOConfig

	mu    sync.Mutex
	rings map[string]*sloRing
	now   func() time.Time
}

type sloRing struct {
	slots []sloSlot
	cur   int
	curT  time.Time
}

type sloSlot struct {
	requests, errors, slow uint64
}

// NewSLOTracker returns a tracker with cfg's objectives.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	return &SLOTracker{
		cfg:   cfg.withDefaults(),
		rings: make(map[string]*sloRing),
		now:   time.Now,
	}
}

// Config returns the tracker's resolved objectives (zero value on nil).
func (t *SLOTracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}
	}
	return t.cfg
}

// Observe records one completed request.
func (t *SLOTracker) Observe(endpoint string, d time.Duration, isError bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ring := t.rings[endpoint]
	if ring == nil {
		ring = &sloRing{slots: make([]sloSlot, t.cfg.Slots), curT: t.now()}
		t.rings[endpoint] = ring
	}
	t.advance(ring)
	s := &ring.slots[ring.cur]
	s.requests++
	switch {
	case isError:
		s.errors++
	case d > t.cfg.Latency:
		s.slow++
	}
}

// advance recycles slots the clock has moved past. Called under mu.
func (t *SLOTracker) advance(ring *sloRing) {
	slotD := t.cfg.Window / time.Duration(t.cfg.Slots)
	now := t.now()
	if now.Sub(ring.curT) >= slotD*time.Duration(len(ring.slots)) {
		for i := range ring.slots {
			ring.slots[i] = sloSlot{} // full-window gap: nothing survives
		}
		ring.curT = now
		return
	}
	for now.Sub(ring.curT) >= slotD {
		ring.cur = (ring.cur + 1) % len(ring.slots)
		ring.slots[ring.cur] = sloSlot{}
		ring.curT = ring.curT.Add(slotD)
	}
}

// SLOWindow is one window's aggregated counters and burn rate.
type SLOWindow struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	Slow     uint64  `json:"slow"`
	BadRatio float64 `json:"bad_ratio"`
	BurnRate float64 `json:"burn_rate"`
}

// EndpointSLO is one endpoint's fast- and slow-window view.
type EndpointSLO struct {
	Endpoint string    `json:"endpoint"`
	Fast     SLOWindow `json:"fast"`
	Slow     SLOWindow `json:"slow"`
}

// SLOReport is the full SLO table.
type SLOReport struct {
	LatencyObjectiveS float64       `json:"latency_objective_seconds"`
	Target            float64       `json:"target"`
	FastWindowS       float64       `json:"fast_window_seconds"`
	WindowS           float64       `json:"window_seconds"`
	Endpoints         []EndpointSLO `json:"endpoints"`
}

// Report aggregates every endpoint's rings, sorted by endpoint. Safe on
// nil (zero report).
func (t *SLOTracker) Report() SLOReport {
	if t == nil {
		return SLOReport{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rep := SLOReport{
		LatencyObjectiveS: t.cfg.Latency.Seconds(),
		Target:            t.cfg.Target,
		FastWindowS:       t.cfg.FastWindow.Seconds(),
		WindowS:           t.cfg.Window.Seconds(),
	}
	slotD := t.cfg.Window / time.Duration(t.cfg.Slots)
	fastSlots := int((t.cfg.FastWindow + slotD - 1) / slotD)
	if fastSlots < 1 {
		fastSlots = 1
	}
	budget := 1 - t.cfg.Target
	for name, ring := range t.rings {
		t.advance(ring)
		var fast, slow SLOWindow
		for back := 0; back < len(ring.slots); back++ {
			s := ring.slots[(ring.cur-back+len(ring.slots))%len(ring.slots)]
			slow.Requests += s.requests
			slow.Errors += s.errors
			slow.Slow += s.slow
			if back < fastSlots {
				fast.Requests += s.requests
				fast.Errors += s.errors
				fast.Slow += s.slow
			}
		}
		finishWindow(&fast, budget)
		finishWindow(&slow, budget)
		rep.Endpoints = append(rep.Endpoints, EndpointSLO{Endpoint: name, Fast: fast, Slow: slow})
	}
	sort.Slice(rep.Endpoints, func(i, j int) bool {
		return rep.Endpoints[i].Endpoint < rep.Endpoints[j].Endpoint
	})
	return rep
}

func finishWindow(w *SLOWindow, budget float64) {
	if w.Requests == 0 {
		return
	}
	w.BadRatio = float64(w.Errors+w.Slow) / float64(w.Requests)
	if budget > 0 {
		w.BurnRate = w.BadRatio / budget
	}
}
