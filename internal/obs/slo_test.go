package obs

import (
	"math"
	"testing"
	"time"
)

// newTestTracker wires a tracker to rolling_test.go's fakeClock.
func newTestTracker(cfg SLOConfig) (*SLOTracker, *fakeClock) {
	tr := NewSLOTracker(cfg)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	tr.now = clk.now
	return tr, clk
}

func TestSLOBurnRate(t *testing.T) {
	tr, _ := newTestTracker(SLOConfig{Latency: 10 * time.Millisecond, Target: 0.99})
	for i := 0; i < 97; i++ {
		tr.Observe("/v1/knn", time.Millisecond, false)
	}
	tr.Observe("/v1/knn", time.Millisecond, true)     // error
	tr.Observe("/v1/knn", 50*time.Millisecond, false) // over objective
	tr.Observe("/v1/knn", 50*time.Millisecond, true)  // error AND slow: counted once, as error
	rep := tr.Report()
	if len(rep.Endpoints) != 1 {
		t.Fatalf("endpoints = %+v", rep.Endpoints)
	}
	ep := rep.Endpoints[0]
	if ep.Endpoint != "/v1/knn" {
		t.Fatalf("endpoint = %q", ep.Endpoint)
	}
	w := ep.Slow
	if w.Requests != 100 || w.Errors != 2 || w.Slow != 1 {
		t.Fatalf("window = %+v, want 100 requests / 2 errors / 1 slow", w)
	}
	// 3 bad of 100 against a 1% budget: burning 3× too fast.
	if w.BadRatio != 0.03 || math.Abs(w.BurnRate-3) > 1e-9 {
		t.Fatalf("bad ratio %v burn %v, want 0.03 and 3", w.BadRatio, w.BurnRate)
	}
	// Both windows see the same traffic when nothing has expired.
	if ep.Fast != ep.Slow {
		t.Fatalf("fast %+v != slow %+v with no rollover", ep.Fast, ep.Slow)
	}
	if rep.Target != 0.99 || rep.LatencyObjectiveS != 0.01 {
		t.Fatalf("report objectives: %+v", rep)
	}
}

func TestSLOFastWindowReactsSlowWindowRemembers(t *testing.T) {
	// 60-slot hour: 1-minute slots, 5-minute fast window.
	tr, clk := newTestTracker(SLOConfig{Latency: 10 * time.Millisecond, Target: 0.9,
		Window: time.Hour, FastWindow: 5 * time.Minute, Slots: 60})
	// An incident 30 minutes ago...
	for i := 0; i < 10; i++ {
		tr.Observe("/v1/knn", time.Millisecond, true)
	}
	clk.t = clk.t.Add(30 * time.Minute)
	// ...followed by healthy traffic now.
	for i := 0; i < 10; i++ {
		tr.Observe("/v1/knn", time.Millisecond, false)
	}
	ep := tr.Report().Endpoints[0]
	if ep.Fast.Errors != 0 || ep.Fast.Requests != 10 {
		t.Fatalf("fast window should only see recent traffic: %+v", ep.Fast)
	}
	if ep.Slow.Errors != 10 || ep.Slow.Requests != 20 {
		t.Fatalf("slow window should remember the incident: %+v", ep.Slow)
	}
	if ep.Fast.BurnRate != 0 || math.Abs(ep.Slow.BurnRate-5) > 1e-9 {
		t.Fatalf("burn fast=%v slow=%v, want 0 and 5", ep.Fast.BurnRate, ep.Slow.BurnRate)
	}
	// Two hours later everything has aged out.
	clk.t = clk.t.Add(2 * time.Hour)
	ep = tr.Report().Endpoints[0]
	if ep.Slow.Requests != 0 {
		t.Fatalf("window should be empty after 2h idle: %+v", ep.Slow)
	}
}

func TestSLOTrackerDefaultsAndNil(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{})
	cfg := tr.Config()
	if cfg.Latency != 100*time.Millisecond || cfg.Target != 0.99 ||
		cfg.Window != time.Hour || cfg.FastWindow != 5*time.Minute || cfg.Slots != 60 {
		t.Fatalf("defaults = %+v", cfg)
	}
	var nilTr *SLOTracker
	nilTr.Observe("/v1/knn", time.Second, true)
	if rep := nilTr.Report(); len(rep.Endpoints) != 0 {
		t.Fatalf("nil tracker report: %+v", rep)
	}
	if nilTr.Config() != (SLOConfig{}) {
		t.Fatal("nil tracker config not zero")
	}
}
