// Package obs is the repository's lightweight observability layer:
// per-request span trees, lock-free histograms and a Prometheus text
// renderer, all on the standard library alone.
//
// A Span is one timed region of work. Spans form a tree per request: the
// server's middleware opens a root span, threads it through the request
// context, and the search engine hangs filter/refine child spans (with
// candidate and verification counts as attributes) off whatever span the
// context carries. The whole tree renders three ways: inline in a JSON
// response (?trace=1), as structured slog attributes (the slow-query
// log), and — aggregated through Histogram — as /metrics families.
//
// Every method is safe on a nil *Span and does nothing, so instrumented
// code calls spans unconditionally; running without a tracing context
// costs one nil check per call.
package obs

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are int64, float64,
// string or bool.
type Attr struct {
	Key   string
	Value any
}

// Span is one node of a trace tree. Create roots with New, children with
// StartChild, and close each span with End. Methods are safe for
// concurrent use (a batch request appends child spans from many
// goroutines) and safe on a nil receiver.
type Span struct {
	name  string
	start time.Time // carries the monotonic clock

	// W3C identity: every span belongs to a 128-bit trace and has a
	// 64-bit id of its own; parentID is the caller's span (a remote one
	// for a root continuing an inbound traceparent). Immutable after
	// creation, so reads need no lock.
	traceID  TraceID
	spanID   SpanID
	parentID SpanID
	state    string // raw tracestate, roots only

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// New starts a root span of a fresh trace.
func New(name string) *Span {
	return &Span{name: name, start: time.Now(), traceID: NewTraceID(), spanID: NewSpanID()}
}

// NewRemote starts a root span that continues a caller's trace: same
// trace id, parented under the caller's span, tracestate carried along
// for export. An invalid context falls back to a fresh trace — the
// spec's rule for unusable headers.
func NewRemote(name string, tc TraceContext) *Span {
	if !tc.Valid() {
		return New(name)
	}
	return &Span{
		name:     name,
		start:    time.Now(),
		traceID:  tc.TraceID,
		spanID:   NewSpanID(),
		parentID: tc.SpanID,
		state:    tc.State,
	}
}

// StartChild starts and attaches a child span, inheriting the trace id.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), traceID: s.traceID, spanID: NewSpanID(), parentID: s.spanID}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// TraceID returns the span's trace id (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// SpanID returns the span's own id (zero on nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// TraceContext returns the propagation state an outbound call from this
// span should carry: same trace, this span as parent.
func (s *Span) TraceContext() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.traceID, SpanID: s.spanID, Flags: FlagSampled, State: s.state}
}

// End freezes the span's duration. Later Ends are no-ops, so deferred and
// explicit ends can coexist on error paths.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Duration returns the frozen duration of an ended span, or the elapsed
// time so far of a running one.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr appends one annotation.
func (s *Span) SetAttr(a Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, a)
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) { s.SetAttr(Attr{Key: key, Value: v}) }

// SetFloat annotates the span with a float value.
func (s *Span) SetFloat(key string, v float64) { s.SetAttr(Attr{Key: key, Value: v}) }

// SetStr annotates the span with a string value.
func (s *Span) SetStr(key, v string) { s.SetAttr(Attr{Key: key, Value: v}) }

// SetBool annotates the span with a boolean value.
func (s *Span) SetBool(key string, v bool) { s.SetAttr(Attr{Key: key, Value: v}) }

// ctxKey carries the active span in a context.
type ctxKey struct{}

// NewContext returns ctx carrying s as the active span.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, or nil when ctx carries none — a
// valid no-op receiver, so callers never branch on it.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartChildContext starts a child of the context's active span and
// returns a context carrying the child. Without an active span it returns
// ctx unchanged and a nil (no-op) span.
func StartChildContext(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	return NewContext(ctx, c), c
}

// SpanSnapshot is the exportable form of a span tree: JSON for ?trace=1
// responses, slog groups (via LogValue) for the slow-query log. StartUS is
// the span's start relative to the snapshot root.
type SpanSnapshot struct {
	Name string `json:"name"`
	// Hex W3C identities; ParentSpanID is empty on a root that started
	// its own trace. TraceState rides only on roots that received one.
	TraceID      string         `json:"trace_id,omitempty"`
	SpanID       string         `json:"span_id,omitempty"`
	ParentSpanID string         `json:"parent_span_id,omitempty"`
	TraceState   string         `json:"trace_state,omitempty"`
	StartUS      int64          `json:"start_us"`
	DurUS        int64          `json:"dur_us"`
	Attrs        map[string]any `json:"attrs,omitempty"`
	Children     []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot renders the tree rooted at s. A still-running span reports its
// elapsed time so far, so snapshotting just before the response is written
// yields a root that covers all its (ended) children.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	return s.snapshot(s.start)
}

func (s *Span) snapshot(base time.Time) SpanSnapshot {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	out := SpanSnapshot{
		Name:       s.name,
		TraceState: s.state,
		StartUS:    s.start.Sub(base).Microseconds(),
		DurUS:      dur.Microseconds(),
	}
	if !s.traceID.IsZero() {
		out.TraceID = s.traceID.String()
		out.SpanID = s.spanID.String()
		if !s.parentID.IsZero() {
			out.ParentSpanID = s.parentID.String()
		}
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()

	if len(children) > 0 {
		out.Children = make([]SpanSnapshot, len(children))
		for i, c := range children {
			out.Children[i] = c.snapshot(base)
		}
	}
	return out
}

// LogValue renders the snapshot as nested slog groups, so a slow-query
// record stays structured under both text and JSON handlers.
func (sn SpanSnapshot) LogValue() slog.Value {
	attrs := make([]slog.Attr, 0, 2+len(sn.Attrs)+len(sn.Children))
	attrs = append(attrs,
		slog.Int64("start_us", sn.StartUS),
		slog.Int64("dur_us", sn.DurUS))
	keys := make([]string, 0, len(sn.Attrs))
	for k := range sn.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		attrs = append(attrs, slog.Any(k, sn.Attrs[k]))
	}
	for _, c := range sn.Children {
		attrs = append(attrs, slog.Attr{Key: c.Name, Value: c.LogValue()})
	}
	return slog.GroupValue(attrs...)
}
