package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanTree: children nest, durations freeze at End, and the snapshot
// carries names, offsets, attributes and structure.
func TestSpanTree(t *testing.T) {
	root := New("request")
	root.SetStr("request_id", "r1")

	filter := root.StartChild("filter")
	time.Sleep(time.Millisecond)
	filter.SetInt("candidates", 42)
	filter.End()

	refine := root.StartChild("refine")
	time.Sleep(time.Millisecond)
	refine.SetInt("verified", 7)
	refine.End()
	root.End()

	if root.Duration() < filter.Duration()+refine.Duration() {
		t.Errorf("root %v shorter than children %v + %v",
			root.Duration(), filter.Duration(), refine.Duration())
	}
	frozen := root.Duration()
	root.End() // second End is a no-op
	if root.Duration() != frozen {
		t.Errorf("second End changed duration %v -> %v", frozen, root.Duration())
	}

	snap := root.Snapshot()
	if snap.Name != "request" || snap.StartUS != 0 {
		t.Errorf("root snapshot %+v", snap)
	}
	if snap.Attrs["request_id"] != "r1" {
		t.Errorf("root attrs %v", snap.Attrs)
	}
	if len(snap.Children) != 2 || snap.Children[0].Name != "filter" || snap.Children[1].Name != "refine" {
		t.Fatalf("children %+v", snap.Children)
	}
	if got := snap.Children[0].Attrs["candidates"]; got != int64(42) {
		t.Errorf("filter candidates attr %v (%T)", got, got)
	}
	if snap.Children[1].StartUS < snap.Children[0].DurUS {
		t.Errorf("refine started at %dus, before filter's %dus ended",
			snap.Children[1].StartUS, snap.Children[0].DurUS)
	}
	var sum int64
	for _, c := range snap.Children {
		sum += c.DurUS
	}
	if sum > snap.DurUS {
		t.Errorf("children durations %dus exceed root %dus", sum, snap.DurUS)
	}
}

// TestNilSpan: every method is a no-op on nil, the contract that lets
// instrumented code skip nil checks.
func TestNilSpan(t *testing.T) {
	var s *Span
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	s.SetInt("k", 1)
	s.SetStr("k", "v")
	s.SetFloat("k", 1.5)
	s.SetBool("k", true)
	s.End()
	if s.Duration() != 0 || s.Name() != "" {
		t.Errorf("nil span has state: %v %q", s.Duration(), s.Name())
	}
	if snap := s.Snapshot(); snap.Name != "" || len(snap.Children) != 0 {
		t.Errorf("nil snapshot %+v", snap)
	}
}

// TestSpanContext: spans travel through contexts; StartChildContext is a
// no-op without an active span.
func TestSpanContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context has a span")
	}
	ctx, child := StartChildContext(context.Background(), "x")
	if child != nil || FromContext(ctx) != nil {
		t.Fatal("StartChildContext invented a span without a parent")
	}

	root := New("root")
	ctx = NewContext(context.Background(), root)
	if FromContext(ctx) != root {
		t.Fatal("span did not round-trip the context")
	}
	ctx2, c := StartChildContext(ctx, "stage")
	if c == nil || FromContext(ctx2) != c {
		t.Fatal("child not active in derived context")
	}
	c.End()
	if snap := root.Snapshot(); len(snap.Children) != 1 || snap.Children[0].Name != "stage" {
		t.Fatalf("root children %+v", snap.Children)
	}
}

// TestSpanConcurrentChildren: concurrent child creation and attr setting
// is safe (the batch endpoint attaches per-query spans from workers).
func TestSpanConcurrentChildren(t *testing.T) {
	root := New("batch")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.StartChild("query")
			c.SetInt("n", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if n := len(root.Snapshot().Children); n != 32 {
		t.Fatalf("children %d, want 32", n)
	}
}

// TestSnapshotLogValue: the snapshot renders as nested slog groups whose
// attribute keys survive into both JSON and text handler output.
func TestSnapshotLogValue(t *testing.T) {
	root := New("req")
	f := root.StartChild("filter")
	f.SetInt("candidates", 5)
	f.End()
	root.End()

	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	log.Info("slow query", "request_id", "r42", "trace", root.Snapshot())

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log record not JSON: %v\n%s", err, buf.String())
	}
	trace, ok := rec["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace group in %v", rec)
	}
	filter, ok := trace["filter"].(map[string]any)
	if !ok {
		t.Fatalf("no filter group in %v", trace)
	}
	if filter["candidates"] != float64(5) {
		t.Errorf("filter candidates %v", filter["candidates"])
	}
	if !strings.Contains(buf.String(), "dur_us") {
		t.Error("no dur_us in log output")
	}
}
