package obs

import (
	"encoding/binary"
	"encoding/hex"
	"os"
	"sync/atomic"
	"time"
)

// Trace identity: every span tree carries a W3C-shaped 128-bit trace ID
// and each span a 64-bit span ID, so a trace survives an HTTP hop — the
// router of a future multi-node cluster parses the inbound traceparent
// header, its shard fan-out reuses the same trace ID, and a collector
// joins the pieces back into one tree.
//
// IDs come from an IDSource: a process-local splitmix64 stream behind a
// single atomic counter. The package default is seeded once per process
// (start time xor pid), never the math/rand global — the sequence after
// the seed is fully deterministic, which is what tests pin down with
// NewIDSource(fixedSeed).

// TraceID is a 128-bit W3C trace id. The all-zero value is invalid per
// the trace-context spec and doubles as "no trace".
type TraceID [16]byte

// SpanID is a 64-bit W3C span (parent) id. All-zero means "no span".
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits (the wire form).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits (the wire form).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID decodes 32 hex digits; ok is false on bad length, bad
// digits (uppercase included, per the spec), or the all-zero id.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if !decodeLowerHex(t[:], s) || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// ParseSpanID decodes 16 hex digits; ok is false on bad length, bad
// digits, or the all-zero id.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if !decodeLowerHex(id[:], s) || id.IsZero() {
		return SpanID{}, false
	}
	return id, true
}

// decodeLowerHex fills dst from exactly len(dst)*2 lowercase hex digits.
// encoding/hex accepts uppercase, which the trace-context ABNF does not,
// so the digit check is explicit.
func decodeLowerHex(dst []byte, s string) bool {
	if len(s) != len(dst)*2 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	_, err := hex.Decode(dst, []byte(s))
	return err == nil
}

// IDSource generates trace and span ids: splitmix64 over an atomic
// counter, so concurrent draws never repeat and a fixed seed replays the
// exact sequence.
type IDSource struct {
	state atomic.Uint64
}

// NewIDSource returns a source whose sequence is fully determined by
// seed.
func NewIDSource(seed uint64) *IDSource {
	s := &IDSource{}
	s.state.Store(seed)
	return s
}

// next is one splitmix64 output step.
func (s *IDSource) next() uint64 {
	x := s.state.Add(0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TraceID draws a fresh non-zero 128-bit trace id.
func (s *IDSource) TraceID() TraceID {
	for {
		var t TraceID
		binary.BigEndian.PutUint64(t[:8], s.next())
		binary.BigEndian.PutUint64(t[8:], s.next())
		if !t.IsZero() {
			return t
		}
	}
}

// SpanID draws a fresh non-zero 64-bit span id.
func (s *IDSource) SpanID() SpanID {
	for {
		var id SpanID
		binary.BigEndian.PutUint64(id[:], s.next())
		if !id.IsZero() {
			return id
		}
	}
}

// Uint64 draws one raw value — the exporter uses it for backoff jitter,
// keeping the whole package off the math/rand global.
func (s *IDSource) Uint64() uint64 { return s.next() }

// ids is the process-wide default source. The seed folds the start time
// and pid so two processes started together diverge, but everything
// after the seed is a deterministic function of it.
var ids = NewIDSource(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)

// NewTraceID draws from the process default source.
func NewTraceID() TraceID { return ids.TraceID() }

// NewSpanID draws from the process default source.
func NewSpanID() SpanID { return ids.SpanID() }

// SampleTraceID is the head-sampling decision: deterministic in the
// trace id, so every process that sees the same trace makes the same
// call with the same rate — no coordination, no flapping mid-trace.
// rate <= 0 samples nothing, rate >= 1 everything.
func SampleTraceID(t TraceID, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	// The low 8 bytes are uniform for generated ids; callers honoring the
	// W3C randomness flag get the same property from remote ids.
	v := binary.BigEndian.Uint64(t[8:])
	return float64(v>>11)/float64(1<<53) < rate
}
