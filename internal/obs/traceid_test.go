package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestIDSourceDeterministic(t *testing.T) {
	a, b := NewIDSource(42), NewIDSource(42)
	for i := 0; i < 100; i++ {
		if got, want := a.TraceID(), b.TraceID(); got != want {
			t.Fatalf("draw %d: sources diverged: %s vs %s", i, got, want)
		}
		if got, want := a.SpanID(), b.SpanID(); got != want {
			t.Fatalf("draw %d: span sources diverged: %s vs %s", i, got, want)
		}
	}
	c := NewIDSource(43)
	if a.TraceID() == c.TraceID() {
		t.Fatal("different seeds produced the same id")
	}
}

func TestIDSourceConcurrentUnique(t *testing.T) {
	src := NewIDSource(7)
	const workers, per = 8, 500
	var mu sync.Mutex
	seen := make(map[TraceID]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]TraceID, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, src.TraceID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate trace id %s", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestParseTraceIDStrict(t *testing.T) {
	valid := "4bf92f3577b34da6a3ce929d0e0e4736"
	id, ok := ParseTraceID(valid)
	if !ok || id.String() != valid {
		t.Fatalf("ParseTraceID(%q) = %s, %v", valid, id, ok)
	}
	for _, bad := range []string{
		"",
		strings.Repeat("0", 32),                // all-zero invalid per spec
		strings.ToUpper(valid),                 // uppercase forbidden by the ABNF
		valid[:31],                             // short
		valid + "0",                            // long
		"4bf92f3577b34da6a3ce929d0e0e473g",     // non-hex digit
		"4bf92f3577b34da6-3ce929d0e0e4736xyz"[:32], // punctuation
	} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestParseSpanIDStrict(t *testing.T) {
	valid := "00f067aa0ba902b7"
	id, ok := ParseSpanID(valid)
	if !ok || id.String() != valid {
		t.Fatalf("ParseSpanID(%q) = %s, %v", valid, id, ok)
	}
	for _, bad := range []string{"", "0000000000000000", "00F067AA0BA902B7", "00f067aa0ba902", "00f067aa0ba902b7ff"} {
		if _, ok := ParseSpanID(bad); ok {
			t.Errorf("ParseSpanID(%q) accepted", bad)
		}
	}
}

func TestSampleTraceID(t *testing.T) {
	src := NewIDSource(99)
	id := src.TraceID()
	if SampleTraceID(id, 0) {
		t.Error("rate 0 sampled")
	}
	if !SampleTraceID(id, 1) {
		t.Error("rate 1 did not sample")
	}
	// Deterministic: the same id always gets the same verdict.
	for i := 0; i < 10; i++ {
		if SampleTraceID(id, 0.3) != SampleTraceID(id, 0.3) {
			t.Fatal("sampling decision flapped for a fixed id")
		}
	}
	// Statistically sane: over many ids the hit rate tracks the target.
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if SampleTraceID(src.TraceID(), 0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("sample rate 0.25 hit %.3f of ids", frac)
	}
	// A higher rate never samples fewer ids (monotone in rate).
	id2 := src.TraceID()
	if SampleTraceID(id2, 0.1) && !SampleTraceID(id2, 0.9) {
		t.Error("sampling not monotone in rate")
	}
}

func TestSpanIdentity(t *testing.T) {
	root := New("req")
	if root.TraceID().IsZero() || root.SpanID().IsZero() {
		t.Fatal("fresh root has zero identity")
	}
	child := root.StartChild("filter")
	if child.TraceID() != root.TraceID() {
		t.Error("child did not inherit trace id")
	}
	if child.SpanID() == root.SpanID() {
		t.Error("child reused parent span id")
	}
	sn := root.Snapshot()
	if sn.TraceID != root.TraceID().String() || sn.SpanID != root.SpanID().String() {
		t.Errorf("snapshot ids %s/%s don't match span %s/%s", sn.TraceID, sn.SpanID, root.TraceID(), root.SpanID())
	}
	if sn.ParentSpanID != "" {
		t.Errorf("self-started root has parent %q", sn.ParentSpanID)
	}
	if len(sn.Children) != 1 || sn.Children[0].ParentSpanID != root.SpanID().String() {
		t.Errorf("child snapshot not parented under root: %+v", sn.Children)
	}
}

func TestNewRemoteContinuesTrace(t *testing.T) {
	tc := NewTraceContext()
	tc.State = RetryState(2)
	root := NewRemote("req", tc)
	if root.TraceID() != tc.TraceID {
		t.Errorf("remote root trace %s, want caller's %s", root.TraceID(), tc.TraceID)
	}
	if root.SpanID() == tc.SpanID {
		t.Error("remote root reused the caller's span id")
	}
	sn := root.Snapshot()
	if sn.ParentSpanID != tc.SpanID.String() {
		t.Errorf("remote root parent %q, want caller span %s", sn.ParentSpanID, tc.SpanID)
	}
	if sn.TraceState != tc.State {
		t.Errorf("tracestate %q not carried, want %q", sn.TraceState, tc.State)
	}
	// Invalid inbound context: fresh trace, no parent.
	fresh := NewRemote("req", TraceContext{})
	if fresh.TraceID().IsZero() {
		t.Fatal("fallback root has no trace id")
	}
	if fresh.TraceID() == tc.TraceID {
		t.Error("fallback reused the invalid context's trace")
	}
	out := root.TraceContext()
	if out.TraceID != tc.TraceID || out.SpanID != root.SpanID() || !out.Sampled() {
		t.Errorf("outbound context %+v doesn't chain from the root", out)
	}
}
