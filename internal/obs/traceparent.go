package obs

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// W3C trace-context propagation (https://www.w3.org/TR/trace-context/):
// the traceparent header carries version, trace id, parent span id and
// flags as dash-separated lowercase hex —
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// ParseTraceparent is deliberately strict about the fields it consumes
// and deliberately tolerant of the rest: a malformed header yields an
// error and the caller starts a fresh trace (the spec's "restart the
// trace" rule), an unknown future version parses as long as the four
// known fields are well-formed.

// FlagSampled is the traceparent flags bit meaning "the caller sampled
// this trace"; a server honoring it exports the trace regardless of its
// own head-sampling rate.
const FlagSampled = 0x01

// TraceContext is one hop's propagation state: the trace identity, the
// caller's span id (the parent of whatever span the receiver opens), the
// flags byte, and the raw tracestate list, passed through verbatim.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
	State   string // raw tracestate header, "" when absent
}

// Valid reports whether the context carries a usable identity.
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() && !tc.SpanID.IsZero() }

// Sampled reports the sampled flag.
func (tc TraceContext) Sampled() bool { return tc.Flags&FlagSampled != 0 }

// Traceparent renders the version-00 header value.
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceID, tc.SpanID, tc.Flags)
}

// NewTraceContext starts a fresh sampled trace from the process id
// source — what a client (or the first server in a chain) uses before
// its first outbound call.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
}

// WithNewSpan returns the context re-parented under a fresh span id:
// same trace, new caller identity. A client retry loop calls this per
// attempt, so every attempt is a distinct span of one trace.
func (tc TraceContext) WithNewSpan() TraceContext {
	tc.SpanID = NewSpanID()
	return tc
}

var (
	errTraceparentEmpty   = errors.New("empty traceparent")
	errTraceparentFields  = errors.New("traceparent needs at least 4 dash-separated fields")
	errTraceparentVersion = errors.New("bad traceparent version")
	errTraceparentTrace   = errors.New("bad traceparent trace-id")
	errTraceparentParent  = errors.New("bad traceparent parent-id")
	errTraceparentFlags   = errors.New("bad traceparent flags")
)

// ParseTraceparent parses a traceparent header value. Errors mean "start
// a fresh trace", per spec: version ff and malformed versions are
// rejected, trace and parent ids must be exact-length lowercase hex and
// non-zero, flags must be two hex digits. Version 00 must have exactly
// four fields; higher versions may carry more (forward compatibility)
// but never fewer.
func ParseTraceparent(h string) (TraceContext, error) {
	if h == "" {
		return TraceContext{}, errTraceparentEmpty
	}
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return TraceContext{}, errTraceparentFields
	}
	ver := parts[0]
	if len(ver) != 2 || !isLowerHex(ver) || ver == "ff" {
		return TraceContext{}, errTraceparentVersion
	}
	if ver == "00" && len(parts) != 4 {
		return TraceContext{}, errTraceparentFields
	}
	var tc TraceContext
	var ok bool
	if tc.TraceID, ok = ParseTraceID(parts[1]); !ok {
		return TraceContext{}, errTraceparentTrace
	}
	if tc.SpanID, ok = ParseSpanID(parts[2]); !ok {
		return TraceContext{}, errTraceparentParent
	}
	if len(parts[3]) != 2 || !isLowerHex(parts[3]) {
		return TraceContext{}, errTraceparentFlags
	}
	f, err := strconv.ParseUint(parts[3], 16, 8)
	if err != nil {
		return TraceContext{}, errTraceparentFlags
	}
	tc.Flags = byte(f)
	return tc, nil
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// The tracestate vendor member this repo uses to carry the client's
// retry counter: "treesim=retry:N". The server lifts it onto the root
// span as a retry attribute, so a retried request reads as one trace
// whose spans are numbered attempts instead of three unrelated traces.
const tracestateVendor = "treesim"

// RetryState renders the tracestate member for retry attempt n (0 is
// the first attempt).
func RetryState(n int) string {
	return tracestateVendor + "=retry:" + strconv.Itoa(n)
}

// ParseRetryState extracts the retry attempt from a tracestate header,
// tolerating other vendors' members around ours. ok is false when the
// treesim member is absent or malformed.
func ParseRetryState(state string) (int, bool) {
	for _, member := range strings.Split(state, ",") {
		member = strings.TrimSpace(member)
		val, found := strings.CutPrefix(member, tracestateVendor+"=")
		if !found {
			continue
		}
		num, found := strings.CutPrefix(val, "retry:")
		if !found {
			return 0, false
		}
		n, err := strconv.Atoi(num)
		if err != nil || n < 0 {
			return 0, false
		}
		return n, true
	}
	return 0, false
}
