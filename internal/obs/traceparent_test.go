package obs

import (
	"strings"
	"testing"
)

const (
	tpTrace  = "4bf92f3577b34da6a3ce929d0e0e4736"
	tpParent = "00f067aa0ba902b7"
)

func TestParseTraceparentValid(t *testing.T) {
	for _, tt := range []struct {
		header  string
		sampled bool
	}{
		{"00-" + tpTrace + "-" + tpParent + "-01", true},
		{"00-" + tpTrace + "-" + tpParent + "-00", false},
		{"00-" + tpTrace + "-" + tpParent + "-ff", true},
		// A future version may carry extra fields; the four known ones
		// must still parse.
		{"cc-" + tpTrace + "-" + tpParent + "-01-extra-stuff", true},
	} {
		tc, err := ParseTraceparent(tt.header)
		if err != nil {
			t.Errorf("ParseTraceparent(%q): %v", tt.header, err)
			continue
		}
		if tc.TraceID.String() != tpTrace || tc.SpanID.String() != tpParent {
			t.Errorf("ParseTraceparent(%q) ids %s/%s", tt.header, tc.TraceID, tc.SpanID)
		}
		if tc.Sampled() != tt.sampled {
			t.Errorf("ParseTraceparent(%q) sampled=%v, want %v", tt.header, tc.Sampled(), tt.sampled)
		}
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"00",
		"00-" + tpTrace,
		"00-" + tpTrace + "-" + tpParent,                       // missing flags
		"ff-" + tpTrace + "-" + tpParent + "-01",               // version ff forbidden
		"0-" + tpTrace + "-" + tpParent + "-01",                // one-digit version
		"000-" + tpTrace + "-" + tpParent + "-01",              // three-digit version
		"0g-" + tpTrace + "-" + tpParent + "-01",               // non-hex version
		"00-" + strings.Repeat("0", 32) + "-" + tpParent + "-01", // all-zero trace id
		"00-" + tpTrace + "-0000000000000000-01",               // all-zero parent id
		"00-" + strings.ToUpper(tpTrace) + "-" + tpParent + "-01", // uppercase trace id
		"00-" + tpTrace[:30] + "-" + tpParent + "-01",          // short trace id
		"00-" + tpTrace + "ab-" + tpParent + "-01",             // long trace id
		"00-" + tpTrace + "-" + tpParent[:14] + "-01",          // short parent id
		"00-" + tpTrace + "-" + tpParent + "-1",                // one-digit flags
		"00-" + tpTrace + "-" + tpParent + "-0g",               // junk flags
		"00-" + tpTrace + "-" + tpParent + "-01-extra",         // version 00 with 5 fields
		"00_" + tpTrace + "_" + tpParent + "_01",               // wrong separator
	} {
		if tc, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted: %+v", bad, tc)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	orig := NewTraceContext()
	tc, err := ParseTraceparent(orig.Traceparent())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if tc.TraceID != orig.TraceID || tc.SpanID != orig.SpanID || tc.Flags != orig.Flags {
		t.Fatalf("round trip changed the context: %+v vs %+v", tc, orig)
	}
}

func TestWithNewSpan(t *testing.T) {
	tc := NewTraceContext()
	retry := tc.WithNewSpan()
	if retry.TraceID != tc.TraceID {
		t.Error("WithNewSpan changed the trace id")
	}
	if retry.SpanID == tc.SpanID {
		t.Error("WithNewSpan kept the span id")
	}
}

func TestRetryState(t *testing.T) {
	if got := RetryState(2); got != "treesim=retry:2" {
		t.Fatalf("RetryState(2) = %q", got)
	}
	for _, tt := range []struct {
		state string
		n     int
		ok    bool
	}{
		{"treesim=retry:0", 0, true},
		{"treesim=retry:7", 7, true},
		{"othervendor=abc,treesim=retry:3", 3, true},
		{" treesim=retry:1 , other=x", 1, true},
		{"", 0, false},
		{"othervendor=abc", 0, false},
		{"treesim=congo:4", 0, false},
		{"treesim=retry:-1", 0, false},
		{"treesim=retry:x", 0, false},
	} {
		n, ok := ParseRetryState(tt.state)
		if n != tt.n || ok != tt.ok {
			t.Errorf("ParseRetryState(%q) = %d, %v; want %d, %v", tt.state, n, ok, tt.n, tt.ok)
		}
	}
}

// FuzzParseTraceparent asserts the parser's core property on arbitrary
// input: it either rejects the header, or it returns a context whose
// rendered form parses back to the identical identity — and it never
// yields an all-zero id, the spec's "restart the trace" precondition.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-" + tpTrace + "-" + tpParent + "-01")
	f.Add("00-" + strings.Repeat("0", 32) + "-" + tpParent + "-01")
	f.Add("ff-" + tpTrace + "-" + tpParent + "-01")
	f.Add("00-" + tpTrace + "-" + tpParent + "-00")
	f.Add("cc-" + tpTrace + "-" + tpParent + "-01-future")
	f.Add("garbage")
	f.Add("00-xyz-abc-zz")
	f.Fuzz(func(t *testing.T, header string) {
		tc, err := ParseTraceparent(header)
		if err != nil {
			// The middleware's fallback path: a rejected header must leave
			// NewRemote starting a usable fresh trace.
			root := NewRemote("req", tc)
			if root.TraceID().IsZero() || root.SpanID().IsZero() {
				t.Fatalf("fallback trace unusable for header %q", header)
			}
			return
		}
		if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
			t.Fatalf("accepted header %q with zero identity", header)
		}
		back, err := ParseTraceparent(tc.Traceparent())
		if err != nil {
			t.Fatalf("re-render of %q does not parse: %v", header, err)
		}
		if back.TraceID != tc.TraceID || back.SpanID != tc.SpanID || back.Flags != tc.Flags {
			t.Fatalf("round trip of %q changed identity: %+v vs %+v", header, back, tc)
		}
	})
}
