package qgram

import "sort"

// Positional q-grams — Sutinen & Tarhio and Gravano et al. (references
// [17] and [5] of the paper): if two strings are within edit distance k,
// two identical q-grams can correspond only when their positions differ by
// at most k. Section 4.2 builds the positional binary branch distance as
// the tree analogue of exactly this refinement.

// PositionalProfile is a q-gram profile that also records the (0-based)
// start positions of every gram, each list ascending.
type PositionalProfile struct {
	Q         int
	Length    int
	Positions map[string][]int
}

// NewPositionalProfile collects the positional q-grams of s.
func NewPositionalProfile(s string, q int) *PositionalProfile {
	if q < 1 {
		panic("qgram: q must be positive")
	}
	p := &PositionalProfile{Q: q, Length: len(s), Positions: make(map[string][]int)}
	for i := 0; i+q <= len(s); i++ {
		g := s[i : i+q]
		p.Positions[g] = append(p.Positions[g], i)
	}
	return p
}

// Total returns the number of q-grams (with multiplicity).
func (p *PositionalProfile) Total() int {
	if p.Length < p.Q {
		return 0
	}
	return p.Length - p.Q + 1
}

// PosL1 is the positional q-gram distance with positional range pr: the
// string analogue of the paper's PosBDist. Occurrences of a gram match
// one-to-one only when their positions differ by at most pr; the distance
// is totals minus twice the maximum matching. Positions are
// one-dimensional, so the sorted greedy sweep is a maximum matching.
func PosL1(a, b *PositionalProfile, pr int) int {
	if a.Q != b.Q {
		panic("qgram: profiles with different q are not comparable")
	}
	matched := 0
	for g, ap := range a.Positions {
		bp, ok := b.Positions[g]
		if !ok {
			continue
		}
		matched += matchPositions(ap, bp, pr)
	}
	return a.Total() + b.Total() - 2*matched
}

// matchPositions greedily matches two ascending position lists under
// |pa − pb| ≤ pr (maximum for 1-D interval matching).
func matchPositions(ap, bp []int, pr int) int {
	i, j, m := 0, 0, 0
	for i < len(ap) && j < len(bp) {
		d := ap[i] - bp[j]
		switch {
		case d < -pr:
			i++
		case d > pr:
			j++
		default:
			m++
			i++
			j++
		}
	}
	return m
}

// WithinDistancePositional reports whether the positional filter permits
// edit distance ≤ k: a false result proves the strings are farther than k
// apart. Each edit operation destroys or displaces at most q grams, and
// surviving grams shift by at most k positions, so within distance k the
// positional match at range k leaves at most 2·q·k unmatched mass.
func WithinDistancePositional(a, b *PositionalProfile, k int) bool {
	return PosL1(a, b, k) <= 2*a.Q*k
}

// Grams returns the distinct grams of the profile, sorted (for inspection
// and deterministic iteration in callers).
func (p *PositionalProfile) Grams() []string {
	out := make([]string, 0, len(p.Positions))
	for g := range p.Positions {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}
