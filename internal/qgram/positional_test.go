package qgram

import (
	"math/rand"
	"testing"
)

func TestPositionalProfile(t *testing.T) {
	p := NewPositionalProfile("banana", 2)
	if got := p.Positions["an"]; len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("positions of 'an' = %v", got)
	}
	if p.Total() != 5 {
		t.Errorf("Total = %d", p.Total())
	}
	grams := p.Grams()
	if len(grams) != 3 || grams[0] != "an" || grams[1] != "ba" || grams[2] != "na" {
		t.Errorf("Grams = %v", grams)
	}
}

func TestPosL1Monotone(t *testing.T) {
	a := NewPositionalProfile("abcabcabc", 2)
	b := NewPositionalProfile("xabcabcab", 2)
	plain := L1(NewProfile("abcabcabc", 2), NewProfile("xabcabcab", 2))
	prev := PosL1(a, b, 0)
	for pr := 1; pr <= 10; pr++ {
		cur := PosL1(a, b, pr)
		if cur > prev {
			t.Fatalf("PosL1 increased at pr=%d", pr)
		}
		prev = cur
	}
	if prev != plain {
		t.Errorf("PosL1 at large pr = %d, plain L1 = %d", prev, plain)
	}
	// At pr=0 shifted copies share almost nothing positionally.
	if PosL1(a, b, 0) <= plain {
		t.Error("pr=0 should be strictly larger than plain L1 for shifted strings")
	}
}

func TestPosL1Identity(t *testing.T) {
	p := NewPositionalProfile("hello world", 3)
	if PosL1(p, p, 0) != 0 {
		t.Error("self positional distance non-zero")
	}
}

// TestPositionalFilterSound: strings within edit distance k always pass
// the positional filter at range k.
func TestPositionalFilterSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, q := range []int{2, 3} {
		for trial := 0; trial < 300; trial++ {
			s1 := randString(rng, 10+rng.Intn(25))
			k := 1 + trial%5
			s2 := editString(rng, s1, k)
			if Distance(s1, s2) > k {
				t.Fatal("edit helper exceeded budget")
			}
			a := NewPositionalProfile(s1, q)
			b := NewPositionalProfile(s2, q)
			if !WithinDistancePositional(a, b, k) {
				t.Fatalf("q=%d: positional filter rejected %q ~ %q at k=%d",
					q, s1, s2, k)
			}
		}
	}
}

// TestPositionalStrongerThanPlain: the positional filter rejects shifted
// repetitions that the plain count filter cannot (the exact phenomenon
// positions are for).
func TestPositionalStrongerThanPlain(t *testing.T) {
	// A block swap: nearly the same gram multiset, but every shared gram
	// is displaced by 4 positions.
	s1 := "abcdefgh"
	s2 := "efghabcd"
	k := 1
	a2, b2 := NewProfile(s1, 2), NewProfile(s2, 2)
	pa, pb := NewPositionalProfile(s1, 2), NewPositionalProfile(s2, 2)
	// The plain count filter is blind at k=1 (6 of 7 grams shared)...
	if !WithinDistance(a2, b2, k) {
		t.Fatal("plain filter unexpectedly rejected the block swap")
	}
	// ...although the true distance is far larger.
	if d := Distance(s1, s2); d <= k {
		t.Fatalf("example broken: distance %d", d)
	}
	// The positional filter sees the displacement and rejects.
	if WithinDistancePositional(pa, pb, k) {
		t.Error("positional filter failed to reject the block swap at k=1")
	}
}

func TestMatchPositions(t *testing.T) {
	cases := []struct {
		a, b []int
		pr   int
		want int
	}{
		{[]int{1, 5, 9}, []int{2, 6, 10}, 1, 3},
		{[]int{1, 5, 9}, []int{2, 6, 10}, 0, 0},
		{[]int{0, 1, 2}, []int{10}, 3, 0},
		{[]int{0, 4}, []int{2}, 2, 1},
		{nil, []int{1}, 5, 0},
	}
	for _, c := range cases {
		if got := matchPositions(c.a, c.b, c.pr); got != c.want {
			t.Errorf("matchPositions(%v,%v,%d) = %d, want %d", c.a, c.b, c.pr, got, c.want)
		}
	}
}

func TestPosL1MismatchedQPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mixed q accepted")
		}
	}()
	PosL1(NewPositionalProfile("abc", 2), NewPositionalProfile("abc", 3), 1)
}
