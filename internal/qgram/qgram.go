// Package qgram implements the classic q-gram filter for string edit
// distance (Ukkonen, TCS 1992 — reference [19] of the paper). The binary
// branch embedding is the paper's tree-structured analogue of this filter
// (Section 3.4 explicitly develops the correspondence), so the string
// version is included both as a substrate for string-valued workloads and
// as the conceptual baseline the tree result generalizes:
//
//	strings within edit distance k share at least
//	max(|S1|,|S2|) − q + 1 − k·q   q-grams
//
// (each edit operation destroys at most q of the max(|S1|,|S2|)−q+1
// grams of the longer string), and equivalently the L1 distance of the
// q-gram count vectors is at most 2·q·k — the exact shape of Theorem 3.2
// with 2q playing the role of the branch constant.
package qgram

import (
	"strings"

	"treesim/internal/editdist"
)

// Profile is the q-gram count vector of one string.
type Profile struct {
	Q      int
	Length int // string length in bytes
	Counts map[string]int
}

// NewProfile counts the q-grams (length-q substrings) of s. Strings
// shorter than q have an empty profile.
func NewProfile(s string, q int) *Profile {
	if q < 1 {
		panic("qgram: q must be positive")
	}
	p := &Profile{Q: q, Length: len(s), Counts: make(map[string]int)}
	for i := 0; i+q <= len(s); i++ {
		p.Counts[s[i:i+q]]++
	}
	return p
}

// Total returns the number of q-grams (with multiplicity): max(0, len−q+1).
func (p *Profile) Total() int {
	if p.Length < p.Q {
		return 0
	}
	return p.Length - p.Q + 1
}

// Common returns the size of the multiset intersection of two profiles.
func Common(a, b *Profile) int {
	mustSameQ(a, b)
	small, large := a, b
	if len(small.Counts) > len(large.Counts) {
		small, large = large, small
	}
	c := 0
	for g, ca := range small.Counts {
		if cb := large.Counts[g]; cb < ca {
			c += cb
		} else {
			c += ca
		}
	}
	return c
}

// L1 returns the L1 distance of the q-gram count vectors — the string
// analogue of the binary branch distance.
func L1(a, b *Profile) int {
	mustSameQ(a, b)
	return a.Total() + b.Total() - 2*Common(a, b)
}

// EditLowerBound converts the q-gram L1 distance into a lower bound on
// the string edit distance: one edit operation changes at most q grams on
// each side of the count vector, so L1 ≤ 2q·k and k ≥ ceil(L1/(2q)).
func EditLowerBound(a, b *Profile) int {
	mustSameQ(a, b)
	den := 2 * a.Q
	return (L1(a, b) + den - 1) / den
}

// WithinDistance reports whether the q-gram count filter permits the two
// strings to be within edit distance k — Ukkonen's condition
// Common ≥ max(|S1|,|S2|) − q + 1 − k·q. A false result proves the edit
// distance exceeds k; a true result is only a candidate.
func WithinDistance(a, b *Profile, k int) bool {
	mustSameQ(a, b)
	longer := a.Total()
	if b.Total() > longer {
		longer = b.Total()
	}
	need := longer - k*a.Q
	return Common(a, b) >= need
}

// Distance returns the exact unit-cost string edit distance over bytes
// (the refine step for string similarity).
func Distance(s1, s2 string) int {
	return editdist.StringDistance(strings.Split(s1, ""), strings.Split(s2, ""))
}

func mustSameQ(a, b *Profile) {
	if a.Q != b.Q {
		panic("qgram: profiles with different q are not comparable")
	}
}
