package qgram

import (
	"math/rand"
	"testing"
)

func TestProfileCounts(t *testing.T) {
	p := NewProfile("banana", 2)
	want := map[string]int{"ba": 1, "an": 2, "na": 2}
	if len(p.Counts) != len(want) {
		t.Fatalf("Counts = %v", p.Counts)
	}
	for g, c := range want {
		if p.Counts[g] != c {
			t.Errorf("count[%q] = %d, want %d", g, p.Counts[g], c)
		}
	}
	if p.Total() != 5 {
		t.Errorf("Total = %d, want 5", p.Total())
	}
}

func TestShortStrings(t *testing.T) {
	p := NewProfile("ab", 3)
	if p.Total() != 0 || len(p.Counts) != 0 {
		t.Errorf("short string profile: %v (total %d)", p.Counts, p.Total())
	}
	if L1(p, NewProfile("xyz", 3)) != 1 {
		t.Error("L1 vs single-gram string")
	}
}

func TestCommonAndL1(t *testing.T) {
	a := NewProfile("banana", 2)
	b := NewProfile("ananas", 2)
	// a: ba, an×2, na×2; b: an×2, na×2, as. Common = 4, totals 5 and 5.
	if got := Common(a, b); got != 4 {
		t.Errorf("Common = %d, want 4", got)
	}
	if got := L1(a, b); got != 2 {
		t.Errorf("L1 = %d, want 2", got)
	}
	if L1(a, a) != 0 {
		t.Error("self L1 non-zero")
	}
}

func randString(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(4))
	}
	return string(b)
}

// editString applies k random single-character edits.
func editString(rng *rand.Rand, s string, k int) string {
	b := []byte(s)
	for i := 0; i < k; i++ {
		switch op := rng.Intn(3); {
		case op == 0 && len(b) > 0: // substitute
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(4))
		case op == 1 && len(b) > 0: // delete
			p := rng.Intn(len(b))
			b = append(b[:p], b[p+1:]...)
		default: // insert
			p := rng.Intn(len(b) + 1)
			b = append(b[:p], append([]byte{byte('a' + rng.Intn(4))}, b[p:]...)...)
		}
	}
	return string(b)
}

// TestLowerBoundSound: the q-gram lower bound never exceeds the true
// string edit distance, for several q.
func TestLowerBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, q := range []int{1, 2, 3, 4} {
		for trial := 0; trial < 200; trial++ {
			s1 := randString(rng, 5+rng.Intn(25))
			var s2 string
			if trial%2 == 0 {
				s2 = randString(rng, 5+rng.Intn(25))
			} else {
				s2 = editString(rng, s1, 1+trial%6)
			}
			ed := Distance(s1, s2)
			lb := EditLowerBound(NewProfile(s1, q), NewProfile(s2, q))
			if lb > ed {
				t.Fatalf("q=%d: bound %d exceeds distance %d for %q vs %q",
					q, lb, ed, s1, s2)
			}
		}
	}
}

// TestWithinDistanceNoFalseDismissals: Ukkonen's count condition never
// rejects a pair that is truly within distance k.
func TestWithinDistanceNoFalseDismissals(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, q := range []int{2, 3} {
		for trial := 0; trial < 200; trial++ {
			s1 := randString(rng, 8+rng.Intn(20))
			k := 1 + trial%5
			s2 := editString(rng, s1, k)
			ed := Distance(s1, s2)
			if ed > k {
				t.Fatalf("edit script exceeded budget: %d > %d", ed, k)
			}
			if !WithinDistance(NewProfile(s1, q), NewProfile(s2, q), k) {
				t.Fatalf("q=%d: filter rejected %q ~ %q at k=%d (true distance %d)",
					q, s1, s2, k, ed)
			}
		}
	}
}

// TestFilterSelective: unrelated random strings usually fail the filter at
// small k.
func TestFilterSelective(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rejected := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		a := NewProfile(randString(rng, 30), 3)
		b := NewProfile(randString(rng, 30), 3)
		if !WithinDistance(a, b, 2) {
			rejected++
		}
	}
	if rejected < trials/2 {
		t.Errorf("filter rejected only %d/%d unrelated pairs", rejected, trials)
	}
}

func TestMismatchedQPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mixing q values should panic")
		}
	}()
	L1(NewProfile("abc", 2), NewProfile("abc", 3))
}

func TestDistance(t *testing.T) {
	if Distance("kitten", "sitting") != 3 {
		t.Error("Levenshtein broken")
	}
}
