// Package qlog records a server's similarity-query workload as a sampled,
// size-rotated JSONL log — one line per recorded query carrying the query
// tree, the parameters and the filter-quality stats the engine measured.
// A recorded workload is the input to cmd/treesim-analyze, which replays
// it offline against a matrix of filters: the paper's filter-comparison
// experiment (§6) reproduced on the traffic the server actually saw,
// instead of a synthetic workload.
//
// Design constraints, in order:
//
//   - Never fail a query: recording errors are counted, not propagated.
//   - Bounded disk: when the current file exceeds MaxBytes it is rotated
//     atomically (rename to path+".1", replacing the previous rotation),
//     so the log holds at most ~2×MaxBytes.
//   - Deterministic sampling: record i of the stream is kept iff the
//     accumulated rate crosses an integer at i — the same stream always
//     selects the same records, so recorded workloads are reproducible
//     and testable without a seed.
//   - Concurrency-safe: one mutex serializes writers; the file is written
//     in whole lines, so a reader tailing the live log sees only complete
//     records plus at most one torn tail.
package qlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Record is one logged query.
type Record struct {
	// Time is the query's wall-clock time, RFC3339Nano.
	Time string `json:"ts"`
	// Op is "knn" or "range".
	Op string `json:"op"`
	// Tree is the query tree in canonical text encoding.
	Tree string `json:"tree"`
	// K is the k of a knn query (0 otherwise).
	K int `json:"k,omitempty"`
	// Tau is the radius of a range query (0 otherwise).
	Tau int `json:"tau,omitempty"`
	// Filter names the filter that served the query.
	Filter string `json:"filter,omitempty"`
	// Stats is what the query cost on the recording server.
	Stats RecordStats `json:"stats"`
}

// RecordStats is the filter-quality view of one recorded query: the same
// counters search.Stats measures, in wire-stable form.
type RecordStats struct {
	Dataset        int   `json:"dataset"`
	Candidates     int   `json:"candidates"`
	Verified       int   `json:"verified"`
	Results        int   `json:"results"`
	FalsePositives int   `json:"false_positives"`
	FilterUS       int64 `json:"filter_us"`
	RefineUS       int64 `json:"refine_us"`
}

// Validate rejects records that could not be replayed.
func (r *Record) Validate() error {
	switch r.Op {
	case "knn":
		if r.K <= 0 {
			return fmt.Errorf("qlog: knn record with k=%d", r.K)
		}
	case "range":
		if r.Tau < 0 {
			return fmt.Errorf("qlog: range record with tau=%d", r.Tau)
		}
	default:
		return fmt.Errorf("qlog: unknown op %q", r.Op)
	}
	if r.Tree == "" {
		return errors.New("qlog: record without a query tree")
	}
	return nil
}

// Options tunes a Writer. The zero value records everything and rotates
// at 64 MiB.
type Options struct {
	// SampleRate in (0,1] is the fraction of queries recorded; 0 means 1
	// (record everything). Sampling is deterministic in the stream
	// position, not random.
	SampleRate float64
	// MaxBytes rotates the file when its size would exceed it; 0 means
	// 64 MiB, negative disables rotation.
	MaxBytes int64
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

const defaultMaxBytes = 64 << 20

// Writer appends sampled query records to a JSONL file. Safe for
// concurrent use.
type Writer struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	opts   Options
	size   int64
	acc    float64 // accumulated sample credit
	seen   uint64
	kept   uint64
	errors uint64
	closed bool
}

// Open creates (or appends to) the log at path.
func Open(path string, opts Options) (*Writer, error) {
	if opts.SampleRate < 0 || opts.SampleRate > 1 {
		return nil, fmt.Errorf("qlog: sample rate %v outside (0,1]", opts.SampleRate)
	}
	if opts.SampleRate == 0 {
		opts.SampleRate = 1
	}
	if opts.MaxBytes == 0 {
		opts.MaxBytes = defaultMaxBytes
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("qlog: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("qlog: %w", err)
	}
	return &Writer{f: f, path: path, opts: opts, size: st.Size()}, nil
}

// Path returns the log's current file path.
func (w *Writer) Path() string { return w.path }

// Record offers one query to the log. It applies the sampling decision,
// stamps the record's time when unset, and rotates the file when full.
// A nil Writer records nothing (so call sites need no guard). The returned
// error is informational — the server counts it but keeps serving.
func (w *Writer) Record(r Record) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("qlog: writer closed")
	}
	w.seen++
	// Deterministic sampling: keep a record whenever the accumulated rate
	// crosses 1. At rate 1 every record is kept; at rate 1/k, exactly
	// every k-th.
	w.acc += w.opts.SampleRate
	if w.acc < 1 {
		return nil
	}
	w.acc--

	if r.Time == "" {
		r.Time = w.opts.Now().UTC().Format(time.RFC3339Nano)
	}
	if err := r.Validate(); err != nil {
		w.errors++
		return err
	}
	line, err := json.Marshal(r)
	if err != nil {
		w.errors++
		return fmt.Errorf("qlog: %w", err)
	}
	line = append(line, '\n')

	if w.opts.MaxBytes > 0 && w.size > 0 && w.size+int64(len(line)) > w.opts.MaxBytes {
		if err := w.rotate(); err != nil {
			w.errors++
			return err
		}
	}
	n, err := w.f.Write(line)
	w.size += int64(n)
	if err != nil {
		w.errors++
		return fmt.Errorf("qlog: %w", err)
	}
	w.kept++
	return nil
}

// rotate moves the live file to path+".1" (replacing any previous
// rotation — rename is atomic, so a reader sees the old or the new file,
// never a partial one) and starts a fresh live file. Called under mu.
func (w *Writer) rotate() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("qlog: rotate: %w", err)
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return fmt.Errorf("qlog: rotate: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("qlog: rotate: %w", err)
	}
	w.f = f
	w.size = 0
	return nil
}

// Counters reports the writer's lifetime totals: queries offered, records
// written, and recording errors.
func (w *Writer) Counters() (seen, kept, errs uint64) {
	if w == nil {
		return 0, 0, 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seen, w.kept, w.errors
}

// Close flushes and closes the log file.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Read parses a JSONL stream of records. Unparsable or invalid lines are
// skipped and counted — the last line of a live log may be torn, and a
// replayer should not abandon a million-record workload over one bad line.
func Read(r io.Reader) (records []Record, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Validate() != nil {
			skipped++
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return records, skipped, fmt.Errorf("qlog: %w", err)
	}
	return records, skipped, nil
}

// ReadFile loads a recorded workload from path, including the previous
// rotation (path+".1", read first so records stay roughly in time order)
// when it exists.
func ReadFile(path string) (records []Record, skipped int, err error) {
	for _, p := range []string{path + ".1", path} {
		f, err := os.Open(p)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) && p != path {
				continue
			}
			return records, skipped, fmt.Errorf("qlog: %w", err)
		}
		recs, sk, rerr := Read(f)
		f.Close()
		records = append(records, recs...)
		skipped += sk
		if rerr != nil {
			return records, skipped, rerr
		}
	}
	return records, skipped, nil
}
