package qlog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testRecord(i int) Record {
	return Record{
		Op:     "knn",
		Tree:   fmt.Sprintf("a(b%d,c)", i),
		K:      5,
		Filter: "BiBranch",
		Stats:  RecordStats{Dataset: 100, Candidates: 10, Verified: 8, Results: 5, FalsePositives: 3},
	}
}

func TestSamplingDeterministic(t *testing.T) {
	// The same stream at the same rate must select the same positions,
	// run after run — no RNG involved.
	accepted := func(rate float64, n int) []uint64 {
		w, err := Open(filepath.Join(t.TempDir(), "q.jsonl"), Options{SampleRate: rate})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		var out []uint64
		for i := 0; i < n; i++ {
			before, kept, _ := w.Counters()
			_ = before
			if err := w.Record(testRecord(i)); err != nil {
				t.Fatal(err)
			}
			if _, k2, _ := w.Counters(); k2 > kept {
				out = append(out, uint64(i))
			}
		}
		return out
	}

	a := accepted(0.25, 40)
	b := accepted(0.25, 40)
	if len(a) != 10 {
		t.Fatalf("rate 0.25 over 40 records kept %d, want 10 (%v)", len(a), a)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("sampling not deterministic: %v vs %v", a, b)
	}
	if all := accepted(1, 17); len(all) != 17 {
		t.Fatalf("rate 1 kept %d of 17", len(all))
	}
}

func TestRecordValidateAndRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.jsonl")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r := testRecord(i)
		if i == 2 {
			r.Op = "range"
			r.K = 0
			r.Tau = 3
		}
		if err := w.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	// Invalid records are refused and counted, not written.
	if err := w.Record(Record{Op: "nonsense", Tree: "a"}); err == nil {
		t.Fatal("invalid op accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn tail: append half a record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"ts":"2026-01-01T00:00:00Z","op":"knn","tree":"a(`)
	f.Close()

	recs, skipped, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("read %d records, want 5", len(recs))
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the torn tail)", skipped)
	}
	if recs[2].Op != "range" || recs[2].Tau != 3 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
	if recs[0].Time == "" {
		t.Fatal("record time not stamped")
	}
	_, kept, errs := w.Counters()
	if kept != 5 || errs != 1 {
		t.Fatalf("counters kept=%d errs=%d, want 5/1", kept, errs)
	}
}

func TestRotationUnderConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.jsonl")
	// Small MaxBytes forces many rotations while 8 goroutines hammer the
	// writer; run under -race this is the concurrency proof.
	w, err := Open(path, Options{MaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Record(testRecord(g*1000 + i)); err != nil {
					t.Errorf("record: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	seen, kept, errs := w.Counters()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if seen != workers*per || kept != workers*per || errs != 0 {
		t.Fatalf("counters seen=%d kept=%d errs=%d", seen, kept, errs)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("expected a rotated file: %v", err)
	}
	// Every surviving line (live + one rotation) must be a complete,
	// valid record: rotation never tears a line.
	recs, skipped, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d corrupt lines after concurrent rotation", skipped)
	}
	if len(recs) == 0 || len(recs) > workers*per {
		t.Fatalf("read %d records", len(recs))
	}
	// The live file respects the size bound.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 2048+512 {
		t.Fatalf("live file %d bytes exceeds rotation bound", st.Size())
	}
}

func TestWriterNil(t *testing.T) {
	var w *Writer
	if err := w.Record(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if s, k, e := w.Counters(); s+k+e != 0 {
		t.Fatal("nil writer counted something")
	}
}

func TestOpenAppendsAndRejectsBadRate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.jsonl")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Record(testRecord(0))
	w.Close()
	// Reopen: appends, does not truncate.
	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w2.Record(testRecord(1))
	w2.Close()
	data, _ := os.ReadFile(path)
	if got := strings.Count(string(data), "\n"); got != 2 {
		t.Fatalf("reopened log has %d lines, want 2", got)
	}
	if _, err := Open(path, Options{SampleRate: 1.5}); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
	if _, err := Open(path, Options{SampleRate: -0.1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}
