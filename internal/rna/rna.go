// Package rna converts RNA secondary structures into rooted, ordered,
// labeled trees — one of the paper's motivating applications (Section 1:
// "efficient prediction of the functions of RNA molecules").
//
// A secondary structure is given in dot-bracket notation over a base
// sequence: matching parentheses denote a base pair (a stem position),
// dots denote unpaired bases. The conventional tree encoding makes every
// base pair an internal node labeled with the two paired bases (e.g. "GC")
// whose children are the structure elements enclosed by the pair, and
// every unpaired base a leaf labeled with the base; a virtual root labeled
// "RNA" holds the top-level elements. Structurally similar molecules then
// have small tree edit distance — the classic Shapiro/Zhang view of RNA
// comparison.
package rna

import (
	"fmt"
	"math/rand"
	"strings"

	"treesim/internal/tree"
)

// Molecule is an RNA sequence with its secondary structure annotation.
type Molecule struct {
	Name      string
	Sequence  string // bases: A, C, G, U
	Structure string // dot-bracket, same length as Sequence
}

// Validate checks that the molecule is well-formed: equal lengths, known
// bases, balanced brackets.
func (m Molecule) Validate() error {
	if len(m.Sequence) != len(m.Structure) {
		return fmt.Errorf("rna: sequence length %d != structure length %d",
			len(m.Sequence), len(m.Structure))
	}
	depth := 0
	for i := 0; i < len(m.Sequence); i++ {
		switch b := m.Sequence[i]; b {
		case 'A', 'C', 'G', 'U':
		default:
			return fmt.Errorf("rna: unknown base %q at position %d", string(b), i)
		}
		switch c := m.Structure[i]; c {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return fmt.Errorf("rna: unbalanced ')' at position %d", i)
			}
		case '.':
		default:
			return fmt.Errorf("rna: unknown structure char %q at position %d", string(c), i)
		}
	}
	if depth != 0 {
		return fmt.Errorf("rna: %d unclosed '('", depth)
	}
	return nil
}

// Tree converts the molecule into its structure tree.
func (m Molecule) Tree() (*tree.Tree, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	root := &tree.Node{Label: "RNA"}
	stack := []*tree.Node{root}
	opens := []int{} // positions of currently open '('
	for i := 0; i < len(m.Structure); i++ {
		cur := stack[len(stack)-1]
		switch m.Structure[i] {
		case '.':
			cur.Children = append(cur.Children, &tree.Node{Label: string(m.Sequence[i])})
		case '(':
			n := &tree.Node{} // label completed at the matching ')'
			cur.Children = append(cur.Children, n)
			stack = append(stack, n)
			opens = append(opens, i)
		case ')':
			open := opens[len(opens)-1]
			opens = opens[:len(opens)-1]
			pairNode := stack[len(stack)-1]
			pairNode.Label = string(m.Sequence[open]) + string(m.Sequence[i])
			stack = stack[:len(stack)-1]
		}
	}
	return tree.New(root), nil
}

// MustTree is Tree that panics on error, for literals in examples.
func (m Molecule) MustTree() *tree.Tree {
	t, err := m.Tree()
	if err != nil {
		panic(err)
	}
	return t
}

// Random generates a random molecule of roughly n bases: hairpin stems of
// 3–6 pairs with 3–5-base loops, joined by short unpaired linkers. The
// shapes are plausible enough to exercise structure similarity search.
func Random(rng *rand.Rand, n int) Molecule {
	bases := "ACGU"
	pairs := []string{"AU", "UA", "GC", "CG", "GU", "UG"}
	var seq, str strings.Builder
	for seq.Len() < n {
		// Linker.
		for k := rng.Intn(3); k > 0 && seq.Len() < n; k-- {
			seq.WriteByte(bases[rng.Intn(4)])
			str.WriteByte('.')
		}
		// Hairpin: stem of s pairs around a loop of l bases.
		s, l := 3+rng.Intn(4), 3+rng.Intn(3)
		if seq.Len()+2*s+l > n+6 {
			break
		}
		stem := make([]string, s)
		for i := range stem {
			stem[i] = pairs[rng.Intn(len(pairs))]
		}
		for i := 0; i < s; i++ {
			seq.WriteByte(stem[i][0])
			str.WriteByte('(')
		}
		for i := 0; i < l; i++ {
			seq.WriteByte(bases[rng.Intn(4)])
			str.WriteByte('.')
		}
		for i := s - 1; i >= 0; i-- {
			seq.WriteByte(stem[i][1])
			str.WriteByte(')')
		}
	}
	return Molecule{
		Name:      fmt.Sprintf("synthetic-%d", n),
		Sequence:  seq.String(),
		Structure: str.String(),
	}
}

// Mutate returns a copy of m with k point mutations: an unpaired base
// substitution, a base-pair substitution, or an unpaired-base
// insertion/deletion. The result stays well-formed.
func Mutate(rng *rand.Rand, m Molecule, k int) Molecule {
	seq := []byte(m.Sequence)
	str := []byte(m.Structure)
	bases := "ACGU"
	for i := 0; i < k && len(seq) > 0; i++ {
		p := rng.Intn(len(seq))
		switch str[p] {
		case '.':
			if rng.Intn(2) == 0 {
				seq[p] = bases[rng.Intn(4)] // substitute
			} else { // delete the unpaired base
				seq = append(seq[:p], seq[p+1:]...)
				str = append(str[:p], str[p+1:]...)
			}
		case '(', ')':
			// Substitute the pair consistently.
			q := matchOf(str, p)
			pair := []string{"AU", "UA", "GC", "CG"}[rng.Intn(4)]
			lo, hi := p, q
			if lo > hi {
				lo, hi = hi, lo
			}
			seq[lo], seq[hi] = pair[0], pair[1]
		}
	}
	return Molecule{Name: m.Name + "*", Sequence: string(seq), Structure: string(str)}
}

// matchOf finds the partner of the bracket at position p.
func matchOf(str []byte, p int) int {
	depth := 0
	if str[p] == '(' {
		for i := p; i < len(str); i++ {
			switch str[i] {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 {
					return i
				}
			}
		}
	} else {
		for i := p; i >= 0; i-- {
			switch str[i] {
			case ')':
				depth++
			case '(':
				depth--
				if depth == 0 {
					return i
				}
			}
		}
	}
	return p
}
