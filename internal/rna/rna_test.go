package rna

import (
	"math/rand"
	"testing"

	"treesim/internal/editdist"
	"treesim/internal/tree"
)

func TestValidate(t *testing.T) {
	good := Molecule{Sequence: "GCAU", Structure: "(..)"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid molecule rejected: %v", err)
	}
	bad := []Molecule{
		{Sequence: "GCA", Structure: "(..)"},  // length mismatch
		{Sequence: "GCAT", Structure: "(..)"}, // T is DNA, not RNA
		{Sequence: "GCAU", Structure: "(..("}, // unclosed
		{Sequence: "GCAU", Structure: ")..("}, // negative depth
		{Sequence: "GCAU", Structure: "(.x)"}, // unknown char
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("invalid molecule %+v accepted", m)
		}
	}
}

func TestTreeHairpin(t *testing.T) {
	// G-C pair around loop AAA:  G A A A C
	m := Molecule{Sequence: "GAAAC", Structure: "(...)"}
	got := m.MustTree()
	want := tree.MustParse("RNA(GC(A,A,A))")
	if !tree.Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestTreeNestedStem(t *testing.T) {
	// Two stacked pairs: G( A( U U )U )C with leading/trailing dots.
	m := Molecule{Sequence: "GAUUUC", Structure: "((..))"}
	got := m.MustTree()
	want := tree.MustParse("RNA(GC(AU(U,U)))")
	if !tree.Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestTreeMultiloop(t *testing.T) {
	m := Molecule{Sequence: "AGAAACGGGCU", Structure: ".(...)(...)"}
	got := m.MustTree()
	// Positions: A unpaired; (1,5) is a G–C pair around loop AAA;
	// (6,10) is a G–U pair around loop GGC.
	want := tree.MustParse("RNA(A,GC(A,A,A),GU(G,G,C))")
	if !tree.Equal(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestTreeSizeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		m := Random(rng, 30+rng.Intn(60))
		if err := m.Validate(); err != nil {
			t.Fatalf("Random produced invalid molecule: %v", err)
		}
		tr := m.MustTree()
		// Node count = 1 (root) + unpaired + pairs.
		pairs, unpaired := 0, 0
		for _, c := range m.Structure {
			switch c {
			case '(':
				pairs++
			case '.':
				unpaired++
			}
		}
		if got, want := tr.Size(), 1+pairs+unpaired; got != want {
			t.Fatalf("tree size %d, want %d for %q", got, want, m.Structure)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("structure tree invalid: %v", err)
		}
	}
}

func TestMutateStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := Random(rng, 60)
	for k := 0; k < 20; k++ {
		m := Mutate(rng, base, k)
		if err := m.Validate(); err != nil {
			t.Fatalf("mutant with %d mutations invalid: %v (%q/%q)",
				k, err, m.Sequence, m.Structure)
		}
	}
}

// TestMutantsAreNear: point mutations keep structures close in edit
// distance relative to unrelated molecules — the property the RNA
// similarity-search example relies on.
func TestMutantsAreNear(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := Random(rng, 60)
	other := Random(rng, 60)
	bt := base.MustTree()
	mutant := Mutate(rng, base, 2)
	dNear := editdist.Distance(bt, mutant.MustTree())
	dFar := editdist.Distance(bt, other.MustTree())
	if dNear >= dFar {
		t.Errorf("mutant distance %d not below unrelated distance %d", dNear, dFar)
	}
	if dNear > 8 {
		t.Errorf("2-point mutant unexpectedly far: %d", dNear)
	}
}

func TestMatchOf(t *testing.T) {
	str := []byte("((..))")
	if got := matchOf(str, 0); got != 5 {
		t.Errorf("matchOf(0) = %d, want 5", got)
	}
	if got := matchOf(str, 1); got != 4 {
		t.Errorf("matchOf(1) = %d, want 4", got)
	}
	if got := matchOf(str, 5); got != 0 {
		t.Errorf("matchOf(5) = %d, want 0", got)
	}
}
