package search

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"treesim/internal/tree"
)

// Batch query execution. Queries are independent, so a query workload
// parallelizes trivially; the index is read-only during querying and safe
// for concurrent use.

// BatchKNN answers every query with its k nearest neighbors, running up to
// workers queries concurrently (≤ 0 means GOMAXPROCS). Results and stats
// are returned in query order.
func (ix *Index) BatchKNN(qs []*tree.Tree, k, workers int) ([][]Result, []Stats) {
	res := make([][]Result, len(qs))
	stats := make([]Stats, len(qs))
	forEach(len(qs), workers, func(i int) {
		res[i], stats[i], _ = ix.KNN(context.Background(), qs[i], k)
	})
	return res, stats
}

// BatchRange answers every query with all trees within distance tau,
// running up to workers queries concurrently (≤ 0 means GOMAXPROCS).
func (ix *Index) BatchRange(qs []*tree.Tree, tau, workers int) ([][]Result, []Stats) {
	res := make([][]Result, len(qs))
	stats := make([]Stats, len(qs))
	forEach(len(qs), workers, func(i int) {
		res[i], stats[i], _ = ix.Range(context.Background(), qs[i], tau)
	})
	return res, stats
}

func forEach(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
