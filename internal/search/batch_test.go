package search

import (
	"context"
	"reflect"
	"testing"

	"treesim/internal/tree"
)

func TestBatchKNNMatchesSequentialCalls(t *testing.T) {
	ts := testDataset(80, 41)
	ix := NewIndex(ts, NewBiBranch())
	qs := []*tree.Tree{ts[0], ts[10], ts[20], ts[30], ts[40], ts[50], ts[60]}

	batch, stats := ix.BatchKNN(qs, 4, 3)
	if len(batch) != len(qs) || len(stats) != len(qs) {
		t.Fatalf("batch sizes: %d results, %d stats", len(batch), len(stats))
	}
	for i, q := range qs {
		want, _, _ := ix.KNN(context.Background(), q, 4)
		if !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("query %d: batch %v, sequential %v", i, batch[i], want)
		}
		if stats[i].Dataset != len(ts) {
			t.Fatalf("query %d stats missing", i)
		}
	}
}

func TestBatchRangeMatchesSequentialCalls(t *testing.T) {
	ts := testDataset(60, 42)
	ix := NewIndex(ts, NewBiBranch())
	qs := []*tree.Tree{ts[1], ts[2], ts[3]}

	batch, _ := ix.BatchRange(qs, 3, 0)
	for i, q := range qs {
		want, _, _ := ix.Range(context.Background(), q, 3)
		if !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("query %d: batch %v, sequential %v", i, batch[i], want)
		}
	}
}

func TestBatchDegenerate(t *testing.T) {
	ts := testDataset(20, 43)
	ix := NewIndex(ts, NewBiBranch())
	if res, stats := ix.BatchKNN(nil, 3, 4); len(res) != 0 || len(stats) != 0 {
		t.Error("empty batch should return empty slices")
	}
	// One query, more workers than queries.
	res, _ := ix.BatchKNN([]*tree.Tree{ts[0]}, 2, 16)
	want, _, _ := ix.KNN(context.Background(), ts[0], 2)
	if !reflect.DeepEqual(res[0], want) {
		t.Error("single-query batch differs")
	}
	// Serial path (workers=1).
	res2, _ := ix.BatchKNN([]*tree.Tree{ts[0], ts[1]}, 2, 1)
	if len(res2) != 2 {
		t.Error("serial batch broken")
	}
}

// TestParallelProfilesMatchSerial: parallel index construction produces
// distances identical to serial construction.
func TestParallelProfilesMatchSerial(t *testing.T) {
	ts := testDataset(100, 44)
	serial := &BiBranch{Q: 2, Positional: true}
	serial.space = nil
	ixP := NewIndex(ts, NewBiBranch()) // parallel build inside Index
	ixS := NewIndex(ts, &BiBranch{Q: 2, Positional: true})
	for _, q := range []*tree.Tree{ts[7], ts[77]} {
		a, _, _ := ixP.KNN(context.Background(), q, 5)
		b, _, _ := ixS.KNN(context.Background(), q, 5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("parallel vs serial build differ: %v vs %v", a, b)
		}
	}
}
