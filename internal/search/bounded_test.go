package search

import (
	"context"
	"reflect"
	"testing"

	"treesim/internal/tree"
)

// TestBoundedRefineInvariance is the bounded verification engine's
// exactness certificate: across every filter family, several shard counts
// and both query kinds, an index refining against the live cutoff returns
// byte-identical results (and identical deterministic counters) to one
// computing every distance in full. Verified counts attempts in both
// modes, so for range queries even the attempt counter must match.
func TestBoundedRefineInvariance(t *testing.T) {
	ts := testDataset(90, 53)
	queries := []*tree.Tree{ts[3], ts[60], testDataset(1, 77)[0]}
	for _, f := range shardFilters() {
		for _, S := range []int{1, 3, 0} {
			full := NewIndex(ts, WithFilter(freshFilter(f)), WithShards(S), WithBoundedRefine(false))
			bounded := NewIndex(ts, WithFilter(freshFilter(f)), WithShards(S))
			if full.BoundedRefine() || !bounded.BoundedRefine() {
				t.Fatal("BoundedRefine accessor disagrees with the options")
			}
			for qi, q := range queries {
				for _, k := range []int{1, 5, 12} {
					want, _, err := full.KNN(context.Background(), q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, bstats, err := bounded.KNN(context.Background(), q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s S=%d q=%d k=%d: bounded %v, full %v", f.Name(), S, qi, k, got, want)
					}
					if bstats.DPCells > bstats.DPCellsFull {
						t.Fatalf("%s S=%d q=%d k=%d: touched %d cells > full %d",
							f.Name(), S, qi, k, bstats.DPCells, bstats.DPCellsFull)
					}
				}
				for _, tau := range []int{0, 2, 6} {
					want, wstats, err := full.Range(context.Background(), q, tau)
					if err != nil {
						t.Fatal(err)
					}
					got, bstats, err := bounded.Range(context.Background(), q, tau)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s S=%d q=%d tau=%d: bounded %v, full %v", f.Name(), S, qi, tau, got, want)
					}
					if bstats.Verified != wstats.Verified ||
						bstats.Candidates != wstats.Candidates ||
						bstats.Results != wstats.Results ||
						bstats.FalsePositives != wstats.FalsePositives {
						t.Fatalf("%s S=%d q=%d tau=%d: stats %+v, want %+v",
							f.Name(), S, qi, tau, bstats, wstats)
					}
					if wstats.RefineAborted != 0 || wstats.PrecheckRejects != 0 {
						t.Fatalf("full refine reported bounded counters: %+v", wstats)
					}
					if bstats.Verified > 0 && bstats.DPCells >= bstats.DPCellsFull &&
						bstats.RefineAborted+bstats.PrecheckRejects > 0 {
						t.Fatalf("%s S=%d q=%d tau=%d: rejections without cell savings: %+v",
							f.Name(), S, qi, tau, bstats)
					}
				}
			}
		}
	}
}

// TestBoundedRefineCountersFire: on a realistic workload the bounded
// engine must actually exercise both cut-short paths — pre-check
// rejections and DP early aborts — and touch strictly fewer cells than
// full verification would. (The exact split is data-dependent; firing at
// all is the regression being pinned.)
func TestBoundedRefineCountersFire(t *testing.T) {
	ts := testDataset(200, 9)
	ix := NewIndex(ts, NewBiBranch())
	var agg Stats
	for qi := 0; qi < 8; qi++ {
		_, st, err := ix.KNN(context.Background(), ts[qi*20], 3)
		if err != nil {
			t.Fatal(err)
		}
		agg.Add(st)
		_, st, err = ix.Range(context.Background(), ts[qi*20+7], 2)
		if err != nil {
			t.Fatal(err)
		}
		agg.Add(st)
	}
	if agg.PrecheckRejects == 0 {
		t.Errorf("no pre-check rejections across the workload: %+v", agg)
	}
	if agg.RefineAborted == 0 {
		t.Errorf("no DP early aborts across the workload: %+v", agg)
	}
	if agg.DPCells >= agg.DPCellsFull {
		t.Errorf("bounded refine touched %d of %d full cells; want strictly fewer", agg.DPCells, agg.DPCellsFull)
	}
}
