package search

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"treesim/internal/branch"
	"treesim/internal/segstore"
	"treesim/internal/tree"
)

// Persistence of a BiBranch-filtered index: the dataset trees (canonical
// text encoding) plus the pre-built branch spaces and profiles, so loading
// skips both tree parsing of external formats and re-profiling.
//
// Three on-disk versions exist:
//
//	TSIX1 (legacy): magic "TSIX1\x00", then one payload.
//	TSIX2 (legacy): magic "TSIX2\x00", u64 payload length, payload,
//	                u32 CRC32C over the payload.
//	TSIX3:          magic "TSIX3\x00", a checksummed segment manifest
//	                (internal/segstore framing: u32 length, body,
//	                u32 CRC32C), then one blob per manifest segment —
//	                the payload bytes followed by a u32 CRC32C trailer.
//
// The payload format is identical in all versions: u8 positional flag,
// branch.Write blob, u32 tree count, then each tree as (u32 len,
// canonical text bytes). All integers are little-endian. A TSIX1/2 file
// is a single payload; a TSIX3 file carries one payload per storage
// segment, preserving the segment layout, the dataset-id assignment and
// the unresolved tombstones across restarts.
//
// SaveIndex writes TSIX3; LoadIndex reads all three. Checksums make
// corruption a first-class, precisely reported condition: LoadIndex
// distinguishes a truncated snapshot (ErrSnapshotTruncated — the file
// ends before declared data) from a corrupt one (ErrSnapshotCorrupt —
// checksum mismatch, or structural nonsense inside length-complete data).

var (
	indexMagicV1 = [6]byte{'T', 'S', 'I', 'X', '1', 0}
	indexMagicV2 = [6]byte{'T', 'S', 'I', 'X', '2', 0}
	indexMagicV3 = [6]byte{'T', 'S', 'I', 'X', '3', 0}
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxPayload caps a declared payload length (1 TiB) so a corrupt header
// can neither overflow the int64 LimitReader nor promise absurd work;
// real bounds come from the per-structure caps during decoding.
const maxPayload = 1 << 40

// ErrSnapshotCorrupt reports a snapshot whose bytes are all present but
// wrong: a checksum does not match, or a structurally invalid payload
// hides behind a matching length. Loaders must refuse to serve from it.
var ErrSnapshotCorrupt = errors.New("snapshot corrupt")

// ErrSnapshotTruncated reports a snapshot that ends early — the classic
// partial write. The prefix that exists may be pristine; there is just
// not enough of it.
var ErrSnapshotTruncated = errors.New("snapshot truncated")

// SaveIndex serializes an index whose filter is a *BiBranch in the TSIX3
// segmented format. Other filters are cheap to rebuild from the dataset
// and are not supported.
//
// SaveIndex is safe to call while the index serves queries, inserts and
// deletes: it takes a consistent cut of the segmented store (sealed
// segments plus a frozen memtable snapshot) and serializes from the
// immutable cut without blocking anyone.
func SaveIndex(w io.Writer, ix *Index) error {
	if _, ok := ix.filter.(*BiBranch); !ok {
		return fmt.Errorf("search: only BiBranch indexes can be saved (have %s)", ix.filter.Name())
	}
	cut := ix.store.Read()
	blobs := make([][]byte, len(cut.Segments))
	metas := make([]segstore.SegmentMeta, len(cut.Segments))
	for i, sg := range cut.Segments {
		p := payloadOf(sg)
		f, ok := p.filter.(*BiBranch)
		if !ok {
			return fmt.Errorf("search: only BiBranch indexes can be saved (segment %d holds %s)", i, p.filter.Name())
		}
		var buf bytes.Buffer
		if err := encodePayload(&buf, f, f.profiles, p.trees); err != nil {
			return err
		}
		blobs[i] = buf.Bytes()
		metas[i] = segstore.SegmentMeta{Base: sg.Base, N: sg.N, IDs: sg.IDs, BlobLen: uint64(len(blobs[i]))}
	}
	m := &segstore.Manifest{NextID: cut.NextID, Tombstones: cut.Tombs.IDs(), Segments: metas}

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(indexMagicV3[:]); err != nil {
		return err
	}
	if err := segstore.WriteManifest(bw, m); err != nil {
		return err
	}
	for _, b := range blobs {
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, crc32.Checksum(b, castagnoli)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// saveIndexV1 writes the legacy unchecksummed single-payload TSIX1
// format. Kept (and exercised by tests) so the TSIX1-compatibility path
// in LoadIndex is honest: snapshots from previous releases must keep
// loading. Only single-segment, delete-free indexes fit the format.
func saveIndexV1(w io.Writer, ix *Index) error {
	f, profiles, trees, err := snapshotCut(ix)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(indexMagicV1[:]); err != nil {
		return err
	}
	if err := encodePayload(bw, f, profiles, trees); err != nil {
		return err
	}
	return bw.Flush()
}

// saveIndexV2 writes the legacy checksummed single-payload TSIX2 format,
// for the same compatibility honesty as saveIndexV1.
func saveIndexV2(w io.Writer, ix *Index) error {
	f, profiles, trees, err := snapshotCut(ix)
	if err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := encodePayload(&payload, f, profiles, trees); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(indexMagicV2[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(payload.Len())); err != nil {
		return err
	}
	sum := crc32.Checksum(payload.Bytes(), castagnoli)
	if _, err := bw.Write(payload.Bytes()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, sum); err != nil {
		return err
	}
	return bw.Flush()
}

// snapshotCut extracts the single-payload serializable state for the
// legacy formats, which cannot represent segment layouts or tombstones.
func snapshotCut(ix *Index) (*BiBranch, []*branch.Profile, []*tree.Tree, error) {
	f, ok := ix.filter.(*BiBranch)
	if !ok {
		return nil, nil, nil, fmt.Errorf("search: only BiBranch indexes can be saved (have %s)", ix.filter.Name())
	}
	cut := ix.store.Read()
	if len(cut.Segments) > 1 || cut.Tombs.Len() > 0 {
		return nil, nil, nil, errors.New("search: legacy snapshot formats require a single-segment index without deletes")
	}
	if len(cut.Segments) == 0 {
		return f, nil, nil, nil
	}
	p := payloadOf(cut.Segments[0])
	sf, ok := p.filter.(*BiBranch)
	if !ok {
		return nil, nil, nil, fmt.Errorf("search: only BiBranch indexes can be saved (have %s)", p.filter.Name())
	}
	return sf, sf.profiles, p.trees, nil
}

// encodePayload writes the version-independent payload.
func encodePayload(w io.Writer, f *BiBranch, profiles []*branch.Profile, trees []*tree.Tree) error {
	bw := bufio.NewWriter(w)
	positional := byte(0)
	if f.Positional {
		positional = 1
	}
	if err := bw.WriteByte(positional); err != nil {
		return err
	}
	if err := branch.Write(bw, f.space, profiles); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(trees))); err != nil {
		return err
	}
	for _, t := range trees {
		s := t.String()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadIndex deserializes an index saved by SaveIndex (TSIX3) or by a
// previous release (TSIX1/TSIX2). Options configure the loaded index the
// same way they configure NewIndex: cost model, shard count, worker pool,
// memtable sizing. A filter option replaces the snapshot's BiBranch
// filter and re-indexes the loaded dataset under it (collapsing a
// segmented snapshot into one segment, with dataset ids and the id
// high-water mark preserved). With no options the index uses unit edit
// costs and the default execution shape.
//
// Errors satisfy errors.Is against ErrSnapshotTruncated (file ends early)
// or ErrSnapshotCorrupt (checksum mismatch / structural damage) so
// callers can report the failure mode precisely.
func LoadIndex(r io.Reader, opts ...IndexOption) (*Index, error) {
	var magic [6]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("search: reading magic: %w", err)
	}
	cfg := applyIndexOpts(opts)
	switch magic {
	case indexMagicV1:
		// Legacy format: no checksum, structural validation only.
		f, ts, err := decodePayload(bufio.NewReader(r))
		if err != nil {
			return nil, err
		}
		return assembleSingle(cfg, f, ts), nil
	case indexMagicV2:
		f, ts, err := loadV2(r)
		if err != nil {
			return nil, err
		}
		return assembleSingle(cfg, f, ts), nil
	case indexMagicV3:
		return loadV3(r, cfg)
	default:
		return nil, fmt.Errorf("search: bad index magic %q (want TSIX1, TSIX2 or TSIX3)", magic)
	}
}

// indexShell builds an Index around an already-indexed prototype filter,
// with an empty store ready for Bootstrap.
func indexShell(cfg indexConfig, proto Filter) *Index {
	ix := &Index{
		filter: proto,
		cost:   cfg.cost,
		shards: cfg.shards,
		pool:   newWorkPool(cfg.refineWorkers),
	}
	ix.store = segstore.New(segstore.Config{
		MemtableSize: cfg.memtableSize,
		CompactAfter: cfg.compactAfter,
	}, ix.segHooks())
	return ix
}

// assembleSingle builds an index from a legacy single-payload snapshot.
func assembleSingle(cfg indexConfig, f *BiBranch, ts []*tree.Tree) *Index {
	proto := Filter(f)
	if cfg.filter != nil {
		proto = cfg.filter
		proto.Index(ts)
	}
	ix := indexShell(cfg, proto)
	if len(ts) > 0 {
		base := &segstore.Segment{N: len(ts), Payload: &segPayload{trees: ts, filter: proto}}
		ix.store.Bootstrap([]*segstore.Segment{base}, nil, len(ts))
	}
	return ix
}

// loadV3 reads the segmented format: manifest, then one checksummed
// payload blob per segment.
func loadV3(r io.Reader, cfg indexConfig) (*Index, error) {
	m, err := segstore.ReadManifest(r)
	if err != nil {
		if errors.Is(err, segstore.ErrManifestTruncated) {
			return nil, fmt.Errorf("search: %w: %v", ErrSnapshotTruncated, err)
		}
		return nil, fmt.Errorf("search: %w: %v", ErrSnapshotCorrupt, err)
	}

	segs := make([]*segstore.Segment, len(m.Segments))
	for i, meta := range m.Segments {
		if meta.BlobLen > maxPayload {
			return nil, fmt.Errorf("search: %w: segment %d declares implausible payload length %d",
				ErrSnapshotCorrupt, i, meta.BlobLen)
		}
		f, ts, err := loadBlob(r, int64(meta.BlobLen), i)
		if err != nil {
			return nil, err
		}
		if len(ts) != meta.N {
			return nil, fmt.Errorf("search: %w: segment %d holds %d trees but the manifest says %d",
				ErrSnapshotCorrupt, i, len(ts), meta.N)
		}
		segs[i] = &segstore.Segment{
			Base:    meta.Base,
			N:       meta.N,
			IDs:     meta.IDs,
			Payload: &segPayload{trees: ts, filter: f},
		}
	}

	if cfg.filter != nil {
		// Filter replacement collapses the snapshot to one segment over
		// the live trees, re-indexed under the new filter. Ids and the
		// high-water mark survive; tombstones resolve here.
		return assembleReindexed(cfg, m, segs), nil
	}

	var proto Filter
	if len(segs) > 0 {
		proto = payloadOf(segs[0]).filter
	} else {
		proto = NewBiBranch()
		proto.Index(nil)
	}
	ix := indexShell(cfg, proto)
	ix.store.Bootstrap(segs, m.Tombstones, m.NextID)
	return ix, nil
}

// assembleReindexed merges a segmented snapshot's live trees into one
// segment under a replacement filter.
func assembleReindexed(cfg indexConfig, m *segstore.Manifest, segs []*segstore.Segment) *Index {
	tombs := segstore.NewTombstones(m.Tombstones)
	var ids []int
	var trees []*tree.Tree
	for _, sg := range segs {
		p := payloadOf(sg)
		for i := 0; i < sg.Len(); i++ {
			if id := sg.ID(i); !tombs.Has(id) {
				ids = append(ids, id)
				trees = append(trees, p.trees[i])
			}
		}
	}
	cfg.filter.Index(trees)
	ix := indexShell(cfg, cfg.filter)
	if len(ids) == 0 {
		ix.store.Bootstrap(nil, nil, m.NextID)
		return ix
	}
	merged := &segstore.Segment{N: len(ids), IDs: ids, Payload: &segPayload{trees: trees, filter: cfg.filter}}
	if ids[len(ids)-1]-ids[0] == len(ids)-1 {
		merged.Base, merged.IDs = ids[0], nil
	}
	ix.store.Bootstrap([]*segstore.Segment{merged}, nil, m.NextID)
	return ix
}

// loadBlob decodes one checksummed payload blob (TSIX3 segment), hashing
// exactly the declared bytes and classifying failures.
func loadBlob(r io.Reader, blen int64, seg int) (*BiBranch, []*tree.Tree, error) {
	cr := &countingHashReader{r: io.LimitReader(r, blen), h: crc32.New(castagnoli)}
	br := bufio.NewReader(cr)
	f, ts, derr := decodePayload(br)

	// Drain whatever the decoder did not consume — on success this should
	// be nothing; on error it completes the checksum so the failure can be
	// classified.
	var drained int64
	if rest, err := io.Copy(io.Discard, br); err == nil {
		drained = rest
	}
	if cr.n < blen {
		return nil, nil, fmt.Errorf("search: %w: segment %d payload has %d of %d declared bytes",
			ErrSnapshotTruncated, seg, cr.n, blen)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, nil, fmt.Errorf("search: %w: segment %d missing checksum trailer", ErrSnapshotTruncated, seg)
	}
	want := binary.LittleEndian.Uint32(trailer[:])
	if got := cr.h.Sum32(); got != want {
		return nil, nil, fmt.Errorf("search: %w: segment %d payload checksum %08x, trailer says %08x",
			ErrSnapshotCorrupt, seg, got, want)
	}
	// Checksum matched: the bytes are exactly what the writer produced, so
	// any remaining failure is structural corruption (or a writer bug),
	// not I/O damage.
	if derr != nil {
		return nil, nil, fmt.Errorf("search: %w: segment %d: %v", ErrSnapshotCorrupt, seg, derr)
	}
	if drained > 0 {
		return nil, nil, fmt.Errorf("search: %w: segment %d has %d payload bytes beyond the index structure",
			ErrSnapshotCorrupt, seg, drained)
	}
	return f, ts, nil
}

// countingHashReader hashes and counts everything read through it.
type countingHashReader struct {
	r io.Reader
	h hash.Hash32
	n int64
}

func (c *countingHashReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.h.Write(p[:n])
	c.n += int64(n)
	return n, err
}

func loadV2(r io.Reader) (*BiBranch, []*tree.Tree, error) {
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, nil, fmt.Errorf("search: %w: reading payload length: %v", ErrSnapshotTruncated, err)
	}
	plen := binary.LittleEndian.Uint64(lenBuf[:])
	if plen > maxPayload {
		return nil, nil, fmt.Errorf("search: %w: implausible payload length %d", ErrSnapshotCorrupt, plen)
	}

	// Hash exactly the payload while decoding it. The hash taps the
	// stream below the decoder's buffering and above the file, capped by
	// the LimitReader at the payload boundary, so read-ahead can never
	// swallow trailer bytes or hash past the payload.
	cr := &countingHashReader{r: io.LimitReader(r, int64(plen)), h: crc32.New(castagnoli)}
	br := bufio.NewReader(cr)
	f, ts, derr := decodePayload(br)

	var drained int64
	if rest, err := io.Copy(io.Discard, br); err == nil {
		drained = rest
	}
	if cr.n < int64(plen) {
		return nil, nil, fmt.Errorf("search: %w: payload has %d of %d declared bytes",
			ErrSnapshotTruncated, cr.n, plen)
	}

	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, nil, fmt.Errorf("search: %w: missing checksum trailer", ErrSnapshotTruncated)
	}
	want := binary.LittleEndian.Uint32(trailer[:])
	if got := cr.h.Sum32(); got != want {
		return nil, nil, fmt.Errorf("search: %w: payload checksum %08x, trailer says %08x",
			ErrSnapshotCorrupt, got, want)
	}
	if derr != nil {
		return nil, nil, fmt.Errorf("search: %w: %v", ErrSnapshotCorrupt, derr)
	}
	if drained > 0 {
		return nil, nil, fmt.Errorf("search: %w: %d payload bytes beyond the index structure",
			ErrSnapshotCorrupt, drained)
	}
	return f, ts, nil
}

// VerifySnapshot checks a snapshot's integrity — lengths and checksums —
// without decoding it: cheap enough to run after every snapshot write,
// before the rename publishes it. TSIX1 snapshots carry no checksum; they
// verify vacuously.
func VerifySnapshot(r io.Reader) error {
	var magic [6]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("search: %w: reading magic: %v", ErrSnapshotTruncated, err)
	}
	switch magic {
	case indexMagicV1:
		return nil
	case indexMagicV2:
		return verifyV2(r)
	case indexMagicV3:
		return verifyV3(r)
	default:
		return fmt.Errorf("search: %w: bad magic %q", ErrSnapshotCorrupt, magic)
	}
}

func verifyV2(r io.Reader) error {
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return fmt.Errorf("search: %w: reading payload length: %v", ErrSnapshotTruncated, err)
	}
	plen := binary.LittleEndian.Uint64(lenBuf[:])
	if plen > maxPayload {
		return fmt.Errorf("search: %w: implausible payload length %d", ErrSnapshotCorrupt, plen)
	}
	return verifyChecksummed(r, int64(plen), -1)
}

func verifyV3(r io.Reader) error {
	m, err := segstore.ReadManifest(r)
	if err != nil {
		if errors.Is(err, segstore.ErrManifestTruncated) {
			return fmt.Errorf("search: %w: %v", ErrSnapshotTruncated, err)
		}
		return fmt.Errorf("search: %w: %v", ErrSnapshotCorrupt, err)
	}
	for i, meta := range m.Segments {
		if meta.BlobLen > maxPayload {
			return fmt.Errorf("search: %w: segment %d declares implausible payload length %d",
				ErrSnapshotCorrupt, i, meta.BlobLen)
		}
		if err := verifyChecksummed(r, int64(meta.BlobLen), i); err != nil {
			return err
		}
	}
	return nil
}

// verifyChecksummed hashes blen bytes and compares against the u32
// trailer; seg < 0 means the single legacy payload.
func verifyChecksummed(r io.Reader, blen int64, seg int) error {
	where := "payload"
	if seg >= 0 {
		where = fmt.Sprintf("segment %d payload", seg)
	}
	h := crc32.New(castagnoli)
	n, err := io.Copy(h, io.LimitReader(r, blen))
	if err != nil {
		return fmt.Errorf("search: verifying snapshot: %w", err)
	}
	if n < blen {
		return fmt.Errorf("search: %w: %s has %d of %d declared bytes", ErrSnapshotTruncated, where, n, blen)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return fmt.Errorf("search: %w: %s missing checksum trailer", ErrSnapshotTruncated, where)
	}
	if want := binary.LittleEndian.Uint32(trailer[:]); h.Sum32() != want {
		return fmt.Errorf("search: %w: %s checksum %08x, trailer says %08x",
			ErrSnapshotCorrupt, where, h.Sum32(), want)
	}
	return nil
}

// decodePayload reads the version-independent payload. br must be the
// single buffering layer over the source: branch.Read adopts a
// *bufio.Reader as-is, so no read-ahead escapes the payload.
//
// The tree blobs are read sequentially (the stream dictates it) but
// parsed in parallel: parsing dominates decode time on large snapshots
// and each blob parses independently. The first error in dataset order
// wins, keeping failure messages identical to the sequential decoder's.
func decodePayload(br *bufio.Reader) (*BiBranch, []*tree.Tree, error) {
	positional, err := br.ReadByte()
	if err != nil {
		return nil, nil, err
	}
	space, profiles, err := branch.Read(br)
	if err != nil {
		return nil, nil, err
	}

	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, nil, err
	}
	if int(n) != len(profiles) {
		return nil, nil, fmt.Errorf("search: %d trees but %d profiles", n, len(profiles))
	}
	blobs := make([][]byte, n)
	for i := range blobs {
		var l uint32
		if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
			return nil, nil, err
		}
		if l > 1<<26 {
			return nil, nil, fmt.Errorf("search: tree %d implausibly large (%d bytes)", i, l)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, nil, err
		}
		blobs[i] = buf
	}

	trees := make([]*tree.Tree, n)
	errs := make([]error, n)
	forEach(int(n), 0, func(i int) {
		t, err := tree.Parse(string(blobs[i]))
		if err != nil {
			errs[i] = fmt.Errorf("search: tree %d: %w", i, err)
			return
		}
		if t.Size() != profiles[i].Size {
			errs[i] = fmt.Errorf("search: tree %d has %d nodes but profile says %d",
				i, t.Size(), profiles[i].Size)
			return
		}
		trees[i] = t
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	f := &BiBranch{
		Q:          space.Q(),
		Positional: positional == 1,
		space:      space,
		profiles:   profiles,
	}
	return f, trees, nil
}
