package search

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"treesim/internal/branch"
	"treesim/internal/tree"
)

// Persistence of a BiBranch-filtered index: the dataset trees (canonical
// text encoding) plus the pre-built branch space and profiles, so loading
// skips both tree parsing of external formats and re-profiling.
//
// Format: magic "TSIX1\x00", u8 positional flag, branch.Write blob, u32
// tree count, then each tree as (u32 len, canonical text bytes).

var indexMagic = [6]byte{'T', 'S', 'I', 'X', '1', 0}

// SaveIndex serializes an index whose filter is a *BiBranch. Other filters
// are cheap to rebuild from the dataset and are not supported.
//
// SaveIndex is safe to call while the index serves queries and inserts: it
// copies the tree and profile slices under the index's read lock (a
// consistent cut — inserts are atomic under the write lock), then
// serializes from the copies without blocking anyone.
func SaveIndex(w io.Writer, ix *Index) error {
	ix.mu.RLock()
	f, ok := ix.filter.(*BiBranch)
	if !ok {
		name := ix.filter.Name()
		ix.mu.RUnlock()
		return fmt.Errorf("search: only BiBranch indexes can be saved (have %s)", name)
	}
	trees := append([]*tree.Tree(nil), ix.trees...)
	profiles := append([]*branch.Profile(nil), f.profiles...)
	ix.mu.RUnlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return err
	}
	positional := byte(0)
	if f.Positional {
		positional = 1
	}
	if err := bw.WriteByte(positional); err != nil {
		return err
	}
	if err := branch.Write(bw, f.space, profiles); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(trees))); err != nil {
		return err
	}
	for _, t := range trees {
		s := t.String()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadIndex deserializes an index saved by SaveIndex. The loaded index
// uses unit edit costs; wrap with NewIndexCost manually if needed.
func LoadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("search: reading magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("search: bad index magic %q", magic)
	}
	positional, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	space, profiles, err := branch.Read(br)
	if err != nil {
		return nil, err
	}

	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) != len(profiles) {
		return nil, fmt.Errorf("search: %d trees but %d profiles", n, len(profiles))
	}
	trees := make([]*tree.Tree, n)
	for i := range trees {
		var l uint32
		if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
			return nil, err
		}
		if l > 1<<26 {
			return nil, fmt.Errorf("search: tree %d implausibly large (%d bytes)", i, l)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		t, err := tree.Parse(string(buf))
		if err != nil {
			return nil, fmt.Errorf("search: tree %d: %w", i, err)
		}
		if t.Size() != profiles[i].Size {
			return nil, fmt.Errorf("search: tree %d has %d nodes but profile says %d",
				i, t.Size(), profiles[i].Size)
		}
		trees[i] = t
	}

	f := &BiBranch{
		Q:          space.Q(),
		Positional: positional == 1,
		space:      space,
		profiles:   profiles,
	}
	return &Index{trees: trees, filter: f, cost: defaultCost()}, nil
}
