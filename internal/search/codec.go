package search

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"treesim/internal/branch"
	"treesim/internal/tree"
)

// Persistence of a BiBranch-filtered index: the dataset trees (canonical
// text encoding) plus the pre-built branch space and profiles, so loading
// skips both tree parsing of external formats and re-profiling.
//
// Two on-disk versions exist:
//
//	TSIX1 (legacy): magic "TSIX1\x00", then the payload.
//	TSIX2:          magic "TSIX2\x00", u64 payload length, payload,
//	                u32 CRC32C over the payload.
//
// The payload is identical in both: u8 positional flag, branch.Write
// blob, u32 tree count, then each tree as (u32 len, canonical text
// bytes). All integers are little-endian.
//
// SaveIndex writes TSIX2; LoadIndex reads both. The TSIX2 checksum makes
// corruption a first-class, precisely reported condition instead of a
// lucky structural-validation catch: LoadIndex distinguishes a truncated
// snapshot (ErrSnapshotTruncated — the file ends before the declared
// payload or trailer) from a corrupt one (ErrSnapshotCorrupt — checksum
// mismatch, or structural nonsense inside a length-complete payload).

var (
	indexMagicV1 = [6]byte{'T', 'S', 'I', 'X', '1', 0}
	indexMagicV2 = [6]byte{'T', 'S', 'I', 'X', '2', 0}
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxPayload caps the declared TSIX2 payload length (1 TiB) so a corrupt
// header can neither overflow the int64 LimitReader nor promise absurd
// work; real bounds come from the per-structure caps during decoding.
const maxPayload = 1 << 40

// ErrSnapshotCorrupt reports a snapshot whose bytes are all present but
// wrong: the payload checksum does not match, or a structurally invalid
// payload hides behind a matching length. Loaders must refuse to serve
// from it.
var ErrSnapshotCorrupt = errors.New("snapshot corrupt")

// ErrSnapshotTruncated reports a snapshot that ends early — the classic
// partial write. The prefix that exists may be pristine; there is just
// not enough of it.
var ErrSnapshotTruncated = errors.New("snapshot truncated")

// SaveIndex serializes an index whose filter is a *BiBranch in the TSIX2
// format (checksummed). Other filters are cheap to rebuild from the
// dataset and are not supported.
//
// SaveIndex is safe to call while the index serves queries and inserts: it
// copies the tree and profile slices under the index's read lock (a
// consistent cut — inserts are atomic under the write lock), then
// serializes from the copies without blocking anyone.
func SaveIndex(w io.Writer, ix *Index) error {
	f, profiles, trees, err := snapshotCut(ix)
	if err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := encodePayload(&payload, f, profiles, trees); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(indexMagicV2[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(payload.Len())); err != nil {
		return err
	}
	sum := crc32.Checksum(payload.Bytes(), castagnoli)
	if _, err := bw.Write(payload.Bytes()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, sum); err != nil {
		return err
	}
	return bw.Flush()
}

// saveIndexV1 writes the legacy uncheck-summed TSIX1 format. Kept (and
// exercised by tests) so the TSIX1-compatibility path in LoadIndex is
// honest: snapshots from previous releases must keep loading.
func saveIndexV1(w io.Writer, ix *Index) error {
	f, profiles, trees, err := snapshotCut(ix)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(indexMagicV1[:]); err != nil {
		return err
	}
	if err := encodePayload(bw, f, profiles, trees); err != nil {
		return err
	}
	return bw.Flush()
}

// snapshotCut copies the serializable state under the index's read lock.
func snapshotCut(ix *Index) (*BiBranch, []*branch.Profile, []*tree.Tree, error) {
	ix.mu.RLock()
	f, ok := ix.filter.(*BiBranch)
	if !ok {
		name := ix.filter.Name()
		ix.mu.RUnlock()
		return nil, nil, nil, fmt.Errorf("search: only BiBranch indexes can be saved (have %s)", name)
	}
	trees := append([]*tree.Tree(nil), ix.trees...)
	profiles := append([]*branch.Profile(nil), f.profiles...)
	ix.mu.RUnlock()
	return f, profiles, trees, nil
}

// encodePayload writes the version-independent payload.
func encodePayload(w io.Writer, f *BiBranch, profiles []*branch.Profile, trees []*tree.Tree) error {
	bw := bufio.NewWriter(w)
	positional := byte(0)
	if f.Positional {
		positional = 1
	}
	if err := bw.WriteByte(positional); err != nil {
		return err
	}
	if err := branch.Write(bw, f.space, profiles); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(trees))); err != nil {
		return err
	}
	for _, t := range trees {
		s := t.String()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadIndex deserializes an index saved by SaveIndex (TSIX2) or by a
// previous release (TSIX1). Options configure the loaded index the same
// way they configure NewIndex: cost model, shard count, worker pool. A
// filter option replaces the snapshot's BiBranch filter and re-indexes
// the loaded dataset under it. With no options the index uses unit edit
// costs and the default execution shape.
//
// For TSIX2, errors satisfy errors.Is against ErrSnapshotTruncated (file
// ends early) or ErrSnapshotCorrupt (checksum mismatch / structural
// damage) so callers can report the failure mode precisely.
func LoadIndex(r io.Reader, opts ...IndexOption) (*Index, error) {
	var magic [6]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("search: reading magic: %w", err)
	}
	var (
		f   *BiBranch
		ts  []*tree.Tree
		err error
	)
	switch magic {
	case indexMagicV1:
		// Legacy format: no checksum, structural validation only.
		f, ts, err = decodePayload(bufio.NewReader(r))
	case indexMagicV2:
		f, ts, err = loadV2(r)
	default:
		return nil, fmt.Errorf("search: bad index magic %q (want TSIX1 or TSIX2)", magic)
	}
	if err != nil {
		return nil, err
	}
	cfg := applyIndexOpts(opts)
	ix := &Index{
		trees:  ts,
		cost:   cfg.cost,
		shards: cfg.shards,
		pool:   newWorkPool(cfg.refineWorkers),
	}
	if cfg.filter != nil {
		cfg.filter.Index(ts)
		ix.filter = cfg.filter
	} else {
		ix.filter = f
	}
	return ix, nil
}

// countingHashReader hashes and counts everything read through it.
type countingHashReader struct {
	r io.Reader
	h hash.Hash32
	n int64
}

func (c *countingHashReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.h.Write(p[:n])
	c.n += int64(n)
	return n, err
}

func loadV2(r io.Reader) (*BiBranch, []*tree.Tree, error) {
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, nil, fmt.Errorf("search: %w: reading payload length: %v", ErrSnapshotTruncated, err)
	}
	plen := binary.LittleEndian.Uint64(lenBuf[:])
	if plen > maxPayload {
		return nil, nil, fmt.Errorf("search: %w: implausible payload length %d", ErrSnapshotCorrupt, plen)
	}

	// Hash exactly the payload while decoding it. The hash taps the
	// stream below the decoder's buffering and above the file, capped by
	// the LimitReader at the payload boundary, so read-ahead can never
	// swallow trailer bytes or hash past the payload.
	cr := &countingHashReader{r: io.LimitReader(r, int64(plen)), h: crc32.New(castagnoli)}
	br := bufio.NewReader(cr)
	f, ts, derr := decodePayload(br)

	// Drain whatever the decoder did not consume — on success this
	// should be nothing; on error it completes the checksum so the
	// failure can be classified.
	var drained int64
	if rest, err := io.Copy(io.Discard, br); err == nil {
		drained = rest
	}
	if cr.n < int64(plen) {
		return nil, nil, fmt.Errorf("search: %w: payload has %d of %d declared bytes",
			ErrSnapshotTruncated, cr.n, plen)
	}

	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, nil, fmt.Errorf("search: %w: missing checksum trailer", ErrSnapshotTruncated)
	}
	want := binary.LittleEndian.Uint32(trailer[:])
	if got := cr.h.Sum32(); got != want {
		return nil, nil, fmt.Errorf("search: %w: payload checksum %08x, trailer says %08x",
			ErrSnapshotCorrupt, got, want)
	}
	// Checksum matched: the bytes are exactly what the writer produced,
	// so any remaining failure is structural corruption (or a writer
	// bug), not I/O damage.
	if derr != nil {
		return nil, nil, fmt.Errorf("search: %w: %v", ErrSnapshotCorrupt, derr)
	}
	if drained > 0 {
		return nil, nil, fmt.Errorf("search: %w: %d payload bytes beyond the index structure",
			ErrSnapshotCorrupt, drained)
	}
	return f, ts, nil
}

// VerifySnapshot checks a TSIX2 snapshot's integrity — length and
// checksum — without decoding it: cheap enough to run after every
// snapshot write, before the rename publishes it. TSIX1 snapshots carry
// no checksum; they verify vacuously.
func VerifySnapshot(r io.Reader) error {
	var magic [6]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("search: %w: reading magic: %v", ErrSnapshotTruncated, err)
	}
	switch magic {
	case indexMagicV1:
		return nil
	case indexMagicV2:
	default:
		return fmt.Errorf("search: %w: bad magic %q", ErrSnapshotCorrupt, magic)
	}
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return fmt.Errorf("search: %w: reading payload length: %v", ErrSnapshotTruncated, err)
	}
	plen := binary.LittleEndian.Uint64(lenBuf[:])
	if plen > maxPayload {
		return fmt.Errorf("search: %w: implausible payload length %d", ErrSnapshotCorrupt, plen)
	}
	h := crc32.New(castagnoli)
	n, err := io.Copy(h, io.LimitReader(r, int64(plen)))
	if err != nil {
		return fmt.Errorf("search: verifying snapshot: %w", err)
	}
	if n < int64(plen) {
		return fmt.Errorf("search: %w: payload has %d of %d declared bytes", ErrSnapshotTruncated, n, plen)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return fmt.Errorf("search: %w: missing checksum trailer", ErrSnapshotTruncated)
	}
	if want := binary.LittleEndian.Uint32(trailer[:]); h.Sum32() != want {
		return fmt.Errorf("search: %w: payload checksum %08x, trailer says %08x",
			ErrSnapshotCorrupt, h.Sum32(), want)
	}
	return nil
}

// decodePayload reads the version-independent payload. br must be the
// single buffering layer over the source: branch.Read adopts a
// *bufio.Reader as-is, so no read-ahead escapes the payload.
//
// The tree blobs are read sequentially (the stream dictates it) but
// parsed in parallel: parsing dominates decode time on large snapshots
// and each blob parses independently. The first error in dataset order
// wins, keeping failure messages identical to the sequential decoder's.
func decodePayload(br *bufio.Reader) (*BiBranch, []*tree.Tree, error) {
	positional, err := br.ReadByte()
	if err != nil {
		return nil, nil, err
	}
	space, profiles, err := branch.Read(br)
	if err != nil {
		return nil, nil, err
	}

	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, nil, err
	}
	if int(n) != len(profiles) {
		return nil, nil, fmt.Errorf("search: %d trees but %d profiles", n, len(profiles))
	}
	blobs := make([][]byte, n)
	for i := range blobs {
		var l uint32
		if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
			return nil, nil, err
		}
		if l > 1<<26 {
			return nil, nil, fmt.Errorf("search: tree %d implausibly large (%d bytes)", i, l)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, nil, err
		}
		blobs[i] = buf
	}

	trees := make([]*tree.Tree, n)
	errs := make([]error, n)
	forEach(int(n), 0, func(i int) {
		t, err := tree.Parse(string(blobs[i]))
		if err != nil {
			errs[i] = fmt.Errorf("search: tree %d: %w", i, err)
			return
		}
		if t.Size() != profiles[i].Size {
			errs[i] = fmt.Errorf("search: tree %d has %d nodes but profile says %d",
				i, t.Size(), profiles[i].Size)
			return
		}
		trees[i] = t
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	f := &BiBranch{
		Q:          space.Q(),
		Positional: positional == 1,
		space:      space,
		profiles:   profiles,
	}
	return f, trees, nil
}
