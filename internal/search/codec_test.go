package search

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"treesim/internal/tree"
)

func TestSaveLoadIndexRoundTrip(t *testing.T) {
	ts := testDataset(60, 21)
	ix := NewIndex(ts, NewBiBranch())

	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != ix.Size() {
		t.Fatalf("loaded %d trees, want %d", loaded.Size(), ix.Size())
	}
	for i := 0; i < ix.Size(); i++ {
		if !tree.Equal(loaded.Tree(i), ix.Tree(i)) {
			t.Fatalf("tree %d changed in round trip", i)
		}
	}

	// Queries return identical results through the loaded index.
	for _, q := range []*tree.Tree{ts[0], ts[33], testDataset(1, 5)[0]} {
		wantK, _, _ := ix.KNN(context.Background(), q, 5)
		gotK, _, _ := loaded.KNN(context.Background(), q, 5)
		if !reflect.DeepEqual(wantK, gotK) {
			t.Fatalf("KNN differs after reload: %v vs %v", gotK, wantK)
		}
		wantR, _, _ := ix.Range(context.Background(), q, 3)
		gotR, _, _ := loaded.Range(context.Background(), q, 3)
		if !reflect.DeepEqual(wantR, gotR) {
			t.Fatalf("Range differs after reload: %v vs %v", gotR, wantR)
		}
	}
}

func TestSaveLoadPreservesConfig(t *testing.T) {
	ts := testDataset(20, 22)
	for _, f := range []*BiBranch{
		{Q: 2, Positional: true},
		{Q: 3, Positional: false},
	} {
		ix := NewIndex(ts, WithFilter(f))
		var buf bytes.Buffer
		if err := SaveIndex(&buf, ix); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadIndex(&buf)
		if err != nil {
			t.Fatal(err)
		}
		lf := loaded.Filter().(*BiBranch)
		if lf.Q != f.Q || lf.Positional != f.Positional {
			t.Errorf("config lost: got Q=%d pos=%v, want Q=%d pos=%v",
				lf.Q, lf.Positional, f.Q, f.Positional)
		}
	}
}

func TestSaveRejectsOtherFilters(t *testing.T) {
	ix := NewIndex(testDataset(5, 23), NewHisto())
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err == nil {
		t.Error("Histo index saved")
	}
}

// TestLoadTSIX1BackCompat: a snapshot in the previous release's format
// (no checksum) must keep loading byte-for-byte.
func TestLoadTSIX1BackCompat(t *testing.T) {
	ts := testDataset(40, 25)
	ix := NewIndex(ts, NewBiBranch())
	var buf bytes.Buffer
	if err := saveIndexV1(&buf, ix); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[:6]; string(got) != "TSIX1\x00" {
		t.Fatalf("legacy writer produced magic %q", got)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatalf("TSIX1 snapshot does not load: %v", err)
	}
	if loaded.Size() != ix.Size() {
		t.Fatalf("loaded %d trees, want %d", loaded.Size(), ix.Size())
	}
	for _, q := range []*tree.Tree{ts[0], ts[17]} {
		wantK, _, _ := ix.KNN(context.Background(), q, 5)
		gotK, _, _ := loaded.KNN(context.Background(), q, 5)
		if !reflect.DeepEqual(wantK, gotK) {
			t.Fatalf("KNN differs through TSIX1 reload: %v vs %v", gotK, wantK)
		}
	}
}

// TestLoadClassifiesCorruptVsTruncated: TSIX2's contract — a bit flip
// anywhere in the payload is reported as corrupt, a short file as
// truncated, and neither ever loads.
func TestLoadClassifiesCorruptVsTruncated(t *testing.T) {
	ix := NewIndex(testDataset(15, 26), NewBiBranch())
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	payloadStart := 6 + 8 // magic + u64 length

	// Bit flips across the payload and the trailer: always ErrSnapshotCorrupt.
	for _, flip := range []int{payloadStart, payloadStart + 100, len(full) / 2, len(full) - 2} {
		mut := append([]byte(nil), full...)
		mut[flip] ^= 0x20
		_, err := LoadIndex(bytes.NewReader(mut))
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("flip at %d: err %v, want ErrSnapshotCorrupt", flip, err)
		}
	}

	// Truncations: always ErrSnapshotTruncated.
	for _, cut := range []int{7, payloadStart, payloadStart + 50, len(full) - 5, len(full) - 1} {
		_, err := LoadIndex(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrSnapshotTruncated) {
			t.Errorf("cut at %d: err %v, want ErrSnapshotTruncated", cut, err)
		}
	}
}

func TestVerifySnapshot(t *testing.T) {
	ix := NewIndex(testDataset(12, 27), NewBiBranch())
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if err := VerifySnapshot(bytes.NewReader(full)); err != nil {
		t.Fatalf("pristine snapshot fails verification: %v", err)
	}
	mut := append([]byte(nil), full...)
	mut[len(mut)/2] ^= 0x01
	if err := VerifySnapshot(bytes.NewReader(mut)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("bit flip: %v, want ErrSnapshotCorrupt", err)
	}
	if err := VerifySnapshot(bytes.NewReader(full[:len(full)-7])); !errors.Is(err, ErrSnapshotTruncated) {
		t.Fatal("truncation passed verification")
	}
	// TSIX1 has no checksum: verification is vacuous but not an error.
	var v1 bytes.Buffer
	if err := saveIndexV1(&v1, ix); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshot(&v1); err != nil {
		t.Fatalf("TSIX1 verification: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("WRONGM agic and more data here..."),
	}
	for _, c := range cases {
		if _, err := LoadIndex(bytes.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
	// Truncated valid prefix.
	ts := testDataset(10, 24)
	ix := NewIndex(ts, NewBiBranch())
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{7, len(full) / 2, len(full) - 3} {
		if _, err := LoadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
