package search

import (
	"bytes"
	"reflect"
	"testing"

	"treesim/internal/tree"
)

func TestSaveLoadIndexRoundTrip(t *testing.T) {
	ts := testDataset(60, 21)
	ix := NewIndex(ts, NewBiBranch())

	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != ix.Size() {
		t.Fatalf("loaded %d trees, want %d", loaded.Size(), ix.Size())
	}
	for i := 0; i < ix.Size(); i++ {
		if !tree.Equal(loaded.Tree(i), ix.Tree(i)) {
			t.Fatalf("tree %d changed in round trip", i)
		}
	}

	// Queries return identical results through the loaded index.
	for _, q := range []*tree.Tree{ts[0], ts[33], testDataset(1, 5)[0]} {
		wantK, _ := ix.KNN(q, 5)
		gotK, _ := loaded.KNN(q, 5)
		if !reflect.DeepEqual(wantK, gotK) {
			t.Fatalf("KNN differs after reload: %v vs %v", gotK, wantK)
		}
		wantR, _ := ix.Range(q, 3)
		gotR, _ := loaded.Range(q, 3)
		if !reflect.DeepEqual(wantR, gotR) {
			t.Fatalf("Range differs after reload: %v vs %v", gotR, wantR)
		}
	}
}

func TestSaveLoadPreservesConfig(t *testing.T) {
	ts := testDataset(20, 22)
	for _, f := range []*BiBranch{
		{Q: 2, Positional: true},
		{Q: 3, Positional: false},
	} {
		ix := NewIndex(ts, f)
		var buf bytes.Buffer
		if err := SaveIndex(&buf, ix); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadIndex(&buf)
		if err != nil {
			t.Fatal(err)
		}
		lf := loaded.Filter().(*BiBranch)
		if lf.Q != f.Q || lf.Positional != f.Positional {
			t.Errorf("config lost: got Q=%d pos=%v, want Q=%d pos=%v",
				lf.Q, lf.Positional, f.Q, f.Positional)
		}
	}
}

func TestSaveRejectsOtherFilters(t *testing.T) {
	ix := NewIndex(testDataset(5, 23), NewHisto())
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err == nil {
		t.Error("Histo index saved")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("WRONGM agic and more data here..."),
	}
	for _, c := range cases {
		if _, err := LoadIndex(bytes.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
	// Truncated valid prefix.
	ts := testDataset(10, 24)
	ix := NewIndex(ts, NewBiBranch())
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{7, len(full) / 2, len(full) - 3} {
		if _, err := LoadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
