package search

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"treesim/internal/tree"
)

func TestSaveLoadIndexRoundTrip(t *testing.T) {
	ts := testDataset(60, 21)
	ix := NewIndex(ts, NewBiBranch())

	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != ix.Size() {
		t.Fatalf("loaded %d trees, want %d", loaded.Size(), ix.Size())
	}
	for i := 0; i < ix.Size(); i++ {
		if !tree.Equal(loaded.Tree(i), ix.Tree(i)) {
			t.Fatalf("tree %d changed in round trip", i)
		}
	}

	// Queries return identical results through the loaded index.
	for _, q := range []*tree.Tree{ts[0], ts[33], testDataset(1, 5)[0]} {
		wantK, _, _ := ix.KNN(context.Background(), q, 5)
		gotK, _, _ := loaded.KNN(context.Background(), q, 5)
		if !reflect.DeepEqual(wantK, gotK) {
			t.Fatalf("KNN differs after reload: %v vs %v", gotK, wantK)
		}
		wantR, _, _ := ix.Range(context.Background(), q, 3)
		gotR, _, _ := loaded.Range(context.Background(), q, 3)
		if !reflect.DeepEqual(wantR, gotR) {
			t.Fatalf("Range differs after reload: %v vs %v", gotR, wantR)
		}
	}
}

func TestSaveLoadPreservesConfig(t *testing.T) {
	ts := testDataset(20, 22)
	for _, f := range []*BiBranch{
		{Q: 2, Positional: true},
		{Q: 3, Positional: false},
	} {
		ix := NewIndex(ts, WithFilter(f))
		var buf bytes.Buffer
		if err := SaveIndex(&buf, ix); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadIndex(&buf)
		if err != nil {
			t.Fatal(err)
		}
		lf := loaded.Filter().(*BiBranch)
		if lf.Q != f.Q || lf.Positional != f.Positional {
			t.Errorf("config lost: got Q=%d pos=%v, want Q=%d pos=%v",
				lf.Q, lf.Positional, f.Q, f.Positional)
		}
	}
}

// TestSaveLoadSegmentedRoundTrip: a TSIX3 snapshot of a multi-segment,
// tombstoned index preserves the segment layout, the id assignment, the
// tombstones and the id high-water mark exactly.
func TestSaveLoadSegmentedRoundTrip(t *testing.T) {
	all := testDataset(40, 28)
	ix := NewIndex(all[:10], NewBiBranch(), WithMemtableSize(6), WithCompactionThreshold(-1))
	for _, tr := range all[10:] {
		ix.Insert(tr)
	}
	for _, id := range []int{3, 17, 39} {
		if !ix.Delete(id) {
			t.Fatalf("delete %d refused", id)
		}
	}

	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[:6]; string(got) != "TSIX3\x00" {
		t.Fatalf("SaveIndex produced magic %q, want TSIX3", got)
	}
	loaded, err := LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 40 || loaded.Live() != 37 {
		t.Fatalf("loaded size/live %d/%d, want 40/37", loaded.Size(), loaded.Live())
	}
	if a, b := ix.StoreStats(), loaded.StoreStats(); a.Segments != b.Segments || a.Tombstones != b.Tombstones {
		t.Fatalf("layout changed in round trip: %+v vs %+v", a, b)
	}
	for i := 0; i < 40; i++ {
		lt, lok := loaded.TreeAt(i)
		ot, ook := ix.TreeAt(i)
		if lok != ook || (lok && !tree.Equal(lt, ot)) {
			t.Fatalf("tree %d changed in round trip (visible %v/%v)", i, ook, lok)
		}
	}
	for _, q := range []*tree.Tree{all[0], all[25], testDataset(1, 29)[0]} {
		wantK, _, _ := ix.KNN(context.Background(), q, 5)
		gotK, _, _ := loaded.KNN(context.Background(), q, 5)
		if !reflect.DeepEqual(wantK, gotK) {
			t.Fatalf("KNN differs after segmented reload: %v vs %v", gotK, wantK)
		}
	}
	// The loaded index stays writable: insert and delete keep working at
	// the preserved high-water mark.
	novel := testDataset(1, 30)[0]
	id, _ := loaded.Insert(novel)
	if id != 40 {
		t.Fatalf("insert after reload got id %d, want 40", id)
	}
}

// TestLoadSegmentedWithFilterReplace: a filter option on LoadIndex
// re-indexes a segmented snapshot under the new filter, keeping ids and
// the high-water mark while resolving tombstones.
func TestLoadSegmentedWithFilterReplace(t *testing.T) {
	all := testDataset(30, 31)
	ix := NewIndex(all[:10], NewBiBranch(), WithMemtableSize(5), WithCompactionThreshold(-1))
	for _, tr := range all[10:] {
		ix.Insert(tr)
	}
	ix.Delete(7)
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf, WithFilter(NewPivotBiBranch()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Filter().Name() != "BiBranch-pivot" {
		t.Fatalf("filter %s, want BiBranch-pivot", loaded.Filter().Name())
	}
	if loaded.Size() != 30 || loaded.Live() != 29 {
		t.Fatalf("size/live %d/%d, want 30/29", loaded.Size(), loaded.Live())
	}
	if _, ok := loaded.TreeAt(7); ok {
		t.Fatal("tombstoned tree visible after filter-replacing load")
	}
	for _, q := range []*tree.Tree{all[3], all[20]} {
		wantK, _, _ := ix.KNN(context.Background(), q, 4)
		gotK, _, _ := loaded.KNN(context.Background(), q, 4)
		if !reflect.DeepEqual(wantK, gotK) {
			t.Fatalf("KNN differs under replaced filter: %v vs %v", gotK, wantK)
		}
	}
}

// TestLoadTSIX2BackCompat: checksummed single-payload snapshots from the
// previous release keep loading.
func TestLoadTSIX2BackCompat(t *testing.T) {
	ts := testDataset(25, 32)
	ix := NewIndex(ts, NewBiBranch())
	var buf bytes.Buffer
	if err := saveIndexV2(&buf, ix); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[:6]; string(got) != "TSIX2\x00" {
		t.Fatalf("legacy writer produced magic %q", got)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatalf("TSIX2 snapshot does not load: %v", err)
	}
	wantK, _, _ := ix.KNN(context.Background(), ts[4], 5)
	gotK, _, _ := loaded.KNN(context.Background(), ts[4], 5)
	if !reflect.DeepEqual(wantK, gotK) {
		t.Fatalf("KNN differs through TSIX2 reload: %v vs %v", gotK, wantK)
	}
}

func TestSaveRejectsOtherFilters(t *testing.T) {
	ix := NewIndex(testDataset(5, 23), NewHisto())
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err == nil {
		t.Error("Histo index saved")
	}
}

// TestLoadTSIX1BackCompat: a snapshot in the previous release's format
// (no checksum) must keep loading byte-for-byte.
func TestLoadTSIX1BackCompat(t *testing.T) {
	ts := testDataset(40, 25)
	ix := NewIndex(ts, NewBiBranch())
	var buf bytes.Buffer
	if err := saveIndexV1(&buf, ix); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[:6]; string(got) != "TSIX1\x00" {
		t.Fatalf("legacy writer produced magic %q", got)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatalf("TSIX1 snapshot does not load: %v", err)
	}
	if loaded.Size() != ix.Size() {
		t.Fatalf("loaded %d trees, want %d", loaded.Size(), ix.Size())
	}
	for _, q := range []*tree.Tree{ts[0], ts[17]} {
		wantK, _, _ := ix.KNN(context.Background(), q, 5)
		gotK, _, _ := loaded.KNN(context.Background(), q, 5)
		if !reflect.DeepEqual(wantK, gotK) {
			t.Fatalf("KNN differs through TSIX1 reload: %v vs %v", gotK, wantK)
		}
	}
}

// TestLoadClassifiesCorruptVsTruncated: TSIX2's contract — a bit flip
// anywhere in the payload is reported as corrupt, a short file as
// truncated, and neither ever loads.
func TestLoadClassifiesCorruptVsTruncated(t *testing.T) {
	ix := NewIndex(testDataset(15, 26), NewBiBranch())
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	payloadStart := 6 + 8 // magic + u64 length

	// Bit flips across the payload and the trailer: always ErrSnapshotCorrupt.
	for _, flip := range []int{payloadStart, payloadStart + 100, len(full) / 2, len(full) - 2} {
		mut := append([]byte(nil), full...)
		mut[flip] ^= 0x20
		_, err := LoadIndex(bytes.NewReader(mut))
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("flip at %d: err %v, want ErrSnapshotCorrupt", flip, err)
		}
	}

	// Truncations: always ErrSnapshotTruncated.
	for _, cut := range []int{7, payloadStart, payloadStart + 50, len(full) - 5, len(full) - 1} {
		_, err := LoadIndex(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrSnapshotTruncated) {
			t.Errorf("cut at %d: err %v, want ErrSnapshotTruncated", cut, err)
		}
	}
}

func TestVerifySnapshot(t *testing.T) {
	ix := NewIndex(testDataset(12, 27), NewBiBranch())
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if err := VerifySnapshot(bytes.NewReader(full)); err != nil {
		t.Fatalf("pristine snapshot fails verification: %v", err)
	}
	mut := append([]byte(nil), full...)
	mut[len(mut)/2] ^= 0x01
	if err := VerifySnapshot(bytes.NewReader(mut)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("bit flip: %v, want ErrSnapshotCorrupt", err)
	}
	if err := VerifySnapshot(bytes.NewReader(full[:len(full)-7])); !errors.Is(err, ErrSnapshotTruncated) {
		t.Fatal("truncation passed verification")
	}
	// TSIX1 has no checksum: verification is vacuous but not an error.
	var v1 bytes.Buffer
	if err := saveIndexV1(&v1, ix); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshot(&v1); err != nil {
		t.Fatalf("TSIX1 verification: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("WRONGM agic and more data here..."),
	}
	for _, c := range cases {
		if _, err := LoadIndex(bytes.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
	// Truncated valid prefix.
	ts := testDataset(10, 24)
	ix := NewIndex(ts, NewBiBranch())
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{7, len(full) / 2, len(full) - 3} {
		if _, err := LoadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
