package search

import (
	"context"
	"io"
	"sync"
	"testing"

	"treesim/internal/tree"
)

// TestConcurrentInsertQuery hammers one index with inserts, k-NN queries,
// range queries, metadata reads and snapshot saves from many goroutines at
// once. Run under -race (the CI gate does) it proves Index's locking: no
// torn reads of the tree/profile slices, no lost inserts.
func TestConcurrentInsertQuery(t *testing.T) {
	base := testDataset(40, 60)
	extra := testDataset(120, 61)
	queries := testDataset(6, 62)
	ix := NewIndex(base, NewBiBranch())

	var wg sync.WaitGroup
	// 4 inserters, 30 trees each.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, tr := range extra[w*30 : (w+1)*30] {
				if _, err := ix.Insert(tr); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(w)
	}
	// 4 k-NN queriers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				res, stats, _ := ix.KNN(context.Background(), queries[w%len(queries)], 3)
				if len(res) != 3 || stats.Dataset < len(base) {
					t.Errorf("KNN under load: %d results, dataset %d", len(res), stats.Dataset)
					return
				}
			}
		}(w)
	}
	// 2 range queriers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				_, stats, _ := ix.Range(context.Background(), queries[(w+3)%len(queries)], 2)
				if stats.Dataset < len(base) {
					t.Errorf("Range under load: dataset %d", stats.Dataset)
					return
				}
			}
		}(w)
	}
	// 2 metadata readers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := ix.Size()
				if tr, ok := ix.TreeAt(n - 1); !ok || tr.IsEmpty() {
					t.Errorf("TreeAt(%d) failed under load", n-1)
					return
				}
			}
		}()
	}
	// 1 snapshotter saving while everything else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := SaveIndex(io.Discard, ix); err != nil {
				t.Errorf("SaveIndex under load: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got, want := ix.Size(), len(base)+len(extra); got != want {
		t.Fatalf("after concurrent inserts: size %d, want %d", got, want)
	}
	// The hammered index answers like a cleanly rebuilt one.
	all := append(append([]*tree.Tree(nil), base...), extra...)
	clean := NewIndex(all, NewBiBranch())
	for _, q := range queries {
		a, _, _ := ix.KNN(context.Background(), q, 5)
		b, _, _ := clean.KNN(context.Background(), q, 5)
		if !sameDistances(a, b) {
			t.Fatalf("hammered index KNN %v, clean rebuild %v", dists(a), dists(b))
		}
	}
}

// TestQueryContextCanceled: a canceled context aborts both query kinds
// with ctx.Err() and no results.
func TestQueryContextCanceled(t *testing.T) {
	ix := NewIndex(testDataset(30, 63), NewBiBranch())
	q := testDataset(1, 64)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, _, err := ix.KNNContext(ctx, q, 3); err != context.Canceled || res != nil {
		t.Fatalf("KNNContext on canceled ctx: res=%v err=%v", res, err)
	}
	if res, _, err := ix.RangeContext(ctx, q, 2); err != context.Canceled || res != nil {
		t.Fatalf("RangeContext on canceled ctx: res=%v err=%v", res, err)
	}
}

// TestQueryContextComplete: a live context leaves results identical to the
// plain API.
func TestQueryContextComplete(t *testing.T) {
	ts := testDataset(40, 65)
	ix := NewIndex(ts, NewBiBranch())
	q := ts[7]
	a, _, err := ix.KNNContext(context.Background(), q, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := ix.KNN(context.Background(), q, 4)
	if !sameDistances(a, b) {
		t.Fatalf("KNNContext %v != KNN %v", dists(a), dists(b))
	}
}
