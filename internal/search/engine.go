package search

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"treesim/internal/editdist"
	"treesim/internal/obs"
	"treesim/internal/tree"
)

// The sharded parallel execution engine. A query's filter stage partitions
// the dataset into S contiguous shards (S = WithShards, default GOMAXPROCS,
// clamped to the dataset size) whose lower bounds are computed concurrently
// on the index's shared worker pool; the refine stage fans exact-distance
// verifications over the same pool, with a k-NN query propagating its
// current k-th-best distance across workers through an atomic so late
// verifications prune harder.
//
// Results are shard-count invariant by construction:
//
//   - every tree's bound is computed exactly once, into its own slot;
//   - k-NN candidates are globally merged in ascending (bound, id) order,
//     and the top-k heap breaks distance ties by id, so the answer is the
//     unique k-minimal (dist, id) set no matter which worker verified what;
//   - a verification is skipped only when its bound exceeds the atomic
//     threshold, which never rises and ends at the final k-th distance —
//     by the lower-bound property such a tree cannot be in the answer.
//
// Stats.Verified (and therefore FalsePositives and Tightness) for k-NN can
// vary with worker timing — opportunistic pruning means a fast machine may
// verify a few candidates a slow one skips — but results, Candidates and
// Results are deterministic. Range queries verify every candidate, so all
// their counters are deterministic too.

// shardCount resolves the shard count for a domain of n items.
func (ix *Index) shardCount(n int) int {
	s := ix.shards
	if s <= 0 {
		s = ix.pool.size
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardRange returns the half-open range of shard s out of S over n items.
func shardRange(n, S, s int) (lo, hi int) {
	return s * n / S, (s + 1) * n / S
}

// sortByBound orders ids by ascending (bound, id).
func sortByBound(ids []int, bounds []int) {
	sort.Slice(ids, func(x, y int) bool {
		bx, by := bounds[ids[x]], bounds[ids[y]]
		if bx != by {
			return bx < by
		}
		return ids[x] < ids[y]
	})
}

// mergeRuns merges per-shard (bound, id)-sorted runs into one globally
// sorted order. Shard counts are small (≈ GOMAXPROCS), so a linear scan
// over the run heads beats heap bookkeeping.
func mergeRuns(runs [][]int, bounds []int) []int {
	if len(runs) == 1 {
		return runs[0]
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]int, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		bestS := -1
		bestID := 0
		for s, r := range runs {
			if heads[s] >= len(r) {
				continue
			}
			id := r[heads[s]]
			if bestS < 0 || bounds[id] < bounds[bestID] ||
				(bounds[id] == bounds[bestID] && id < bestID) {
				bestS, bestID = s, id
			}
		}
		out = append(out, bestID)
		heads[bestS]++
	}
	return out
}

// knn runs one k-NN query (Algorithm 2, sharded).
func (ix *Index) knn(ctx context.Context, q *tree.Tree, k int, qc *queryConfig, ex *Explain) ([]Result, Stats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	stats := Stats{Dataset: len(ix.trees)}
	if k <= 0 || len(ix.trees) == 0 {
		return nil, stats, nil
	}
	if k > len(ix.trees) {
		k = len(ix.trees)
	}

	// Stage spans hang off the caller's trace (nil span methods are
	// no-ops, so untraced queries pay one nil check per stage).
	span := qc.trace(ctx)

	start := time.Now()
	fspan := span.StartChild("filter")
	prim, order, bounds, err := ix.filterKNN(ctx, q, fspan)
	stats.FilterTime = time.Since(start)
	if err != nil {
		fspan.SetBool("canceled", true)
		fspan.End()
		return nil, stats, err
	}
	fspan.SetInt("candidates", int64(len(order)))
	fspan.End()
	if ex != nil {
		// order is sorted by bound, so the distribution falls out of the
		// nearest-rank positions directly.
		n := len(order)
		ex.Bounds = BoundDist{
			Computed: n,
			Min:      bounds[order[0]],
			P50:      bounds[order[(n-1)/2]],
			P99:      bounds[order[(n-1)*99/100]],
			Max:      bounds[order[n-1]],
		}
	}

	start = time.Now()
	rspan := span.StartChild("refine")
	out, err := ix.refineKNN(ctx, q, k, order, bounds, prim, &stats, ex)
	stats.RefineTime = time.Since(start)
	if err != nil {
		rspan.SetInt("verified", int64(stats.Verified))
		rspan.SetBool("canceled", true)
		rspan.End()
		return nil, stats, err
	}
	stats.Results = len(out)
	if len(out) > 0 {
		// A tree is a candidate when its bound does not exceed the final
		// k-th distance: no verification order could prune it unverified.
		worst := out[len(out)-1].Dist
		stats.Candidates = sort.Search(len(order), func(i int) bool {
			return bounds[order[i]] > worst
		})
	}
	stats.FalsePositives = stats.Verified - len(out)
	rspan.SetInt("verified", int64(stats.Verified))
	rspan.SetInt("results", int64(len(out)))
	rspan.End()
	return out, stats, nil
}

// filterKNN computes every tree's optimistic lower bound — sharded when
// the index is configured for it — and returns the ids sorted by
// ascending (bound, id), plus the caller-goroutine bounder (reused for
// tightness sampling in the refine stage).
func (ix *Index) filterKNN(ctx context.Context, q *tree.Tree, fspan *obs.Span) (Bounder, []int, []int, error) {
	n := len(ix.trees)
	S := ix.shardCount(n)
	bounds := make([]int, n)
	prim := ix.filter.Query(q)

	if S == 1 {
		order := make([]int, n)
		for i := 0; i < n; i++ {
			if i%ctxCheckEvery == 0 && ctx.Err() != nil {
				return prim, nil, nil, ctx.Err()
			}
			order[i] = i
			bounds[i] = prim.KNNBound(i)
		}
		sortByBound(order, bounds)
		if ar, ok := prim.(AttrReporter); ok {
			ar.ReportAttrs(fspan)
		}
		return prim, order, bounds, nil
	}

	// Sharded: each shard computes bounds for a contiguous id block into
	// disjoint slots of the shared bounds slice and sorts its own run;
	// runs are then merged. Bounders may keep per-query counters, so every
	// shard profiles the query into a bounder of its own (O(|q|), dwarfed
	// by the per-shard O(n/S) bound pass it pays for).
	runs := make([][]int, S)
	var canceled atomic.Bool
	ix.pool.run(S, func(s int) {
		if canceled.Load() {
			return
		}
		b := prim
		if s > 0 {
			b = ix.filter.Query(q)
		}
		sspan := fspan.StartChild(fmt.Sprintf("shard[%d]", s))
		lo, hi := shardRange(n, S, s)
		run := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if (i-lo)%ctxCheckEvery == 0 && (canceled.Load() || ctx.Err() != nil) {
				canceled.Store(true)
				sspan.SetBool("canceled", true)
				sspan.End()
				return
			}
			bounds[i] = b.KNNBound(i)
			run = append(run, i)
		}
		sortByBound(run, bounds)
		runs[s] = run
		sspan.SetInt("bounds", int64(hi-lo))
		if ar, ok := b.(AttrReporter); ok {
			ar.ReportAttrs(sspan)
		}
		sspan.End()
	})
	if canceled.Load() || ctx.Err() != nil {
		return prim, nil, nil, ctx.Err()
	}
	return prim, mergeRuns(runs, bounds), bounds, nil
}

// refineKNN verifies candidates in ascending-bound order on the worker
// pool, maintaining the k-minimal (dist, id) heap under a mutex and the
// current k-th distance in an atomic that only ever decreases. A worker
// that meets a bound above the threshold stops the scan: the cursor hands
// tasks out in ascending order, so everything not yet started bounds at
// least as high and cannot enter the answer.
func (ix *Index) refineKNN(ctx context.Context, q *tree.Tree, k int, order, bounds []int, prim Bounder, stats *Stats, ex *Explain) ([]Result, error) {
	var (
		mu       sync.Mutex
		h        = &maxHeap{}
		stop     atomic.Bool
		canceled atomic.Bool
		verified atomic.Int64
		thresh   atomic.Int64
	)
	thresh.Store(math.MaxInt64) // nothing prunes until the heap holds k

	ix.pool.run(len(order), func(j int) {
		if stop.Load() || canceled.Load() {
			return
		}
		id := order[j]
		if int64(bounds[id]) > thresh.Load() {
			stop.Store(true)
			return
		}
		// A verification can cost milliseconds, so check the context on
		// every task, not every ctxCheckEvery-th.
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		d := editdist.DistanceCost(q, ix.trees[id], ix.cost)
		verified.Add(1)
		mu.Lock()
		sampleTightness(prim, stats, ex, id, bounds[id], d)
		switch {
		case h.Len() < k:
			heap.Push(h, Result{ID: id, Dist: d})
			if h.Len() == k {
				thresh.Store(int64(h.top().Dist))
			}
		case d < h.top().Dist || (d == h.top().Dist && id < h.top().ID):
			h.items[0] = Result{ID: id, Dist: d}
			heap.Fix(h, 0)
			thresh.Store(int64(h.top().Dist))
		}
		mu.Unlock()
	})
	stats.Verified = int(verified.Load())
	if canceled.Load() {
		return nil, ctx.Err()
	}

	out := make([]Result, h.Len())
	copy(out, h.items)
	sortResults(out)
	return out, nil
}

// rangeq runs one range query (filter-and-refine, sharded).
func (ix *Index) rangeq(ctx context.Context, q *tree.Tree, tau int, qc *queryConfig, ex *Explain) ([]Result, Stats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	stats := Stats{Dataset: len(ix.trees)}
	if tau < 0 {
		return nil, stats, nil
	}

	span := qc.trace(ctx)

	start := time.Now()
	fspan := span.StartChild("filter")
	prim, candidates, candBounds, col, err := ix.filterRange(ctx, q, tau, fspan, ex != nil)
	stats.FilterTime = time.Since(start)
	if err != nil {
		fspan.SetBool("canceled", true)
		fspan.End()
		return nil, stats, err
	}
	stats.Candidates = len(candidates)
	fspan.SetInt("candidates", int64(len(candidates)))
	fspan.End()
	if ex != nil {
		ex.Bounds = col.boundDist()
	}

	start = time.Now()
	rspan := span.StartChild("refine")
	out, err := ix.refineRange(ctx, q, tau, candidates, candBounds, prim, &stats, ex)
	stats.RefineTime = time.Since(start)
	if err != nil {
		rspan.SetInt("verified", int64(stats.Verified))
		rspan.SetBool("canceled", true)
		rspan.End()
		return nil, stats, err
	}
	stats.Results = len(out)
	stats.FalsePositives = stats.Verified - len(out)
	rspan.SetInt("verified", int64(stats.Verified))
	rspan.SetInt("results", int64(len(out)))
	rspan.End()
	return out, stats, nil
}

// filterRange computes range bounds over the candidate domain — the whole
// dataset, or the sound superset a CandidateLister enumerates — sharded
// when configured, returning the surviving candidates with their bounds
// (in deterministic domain order) and, when asked, the collected bound
// distribution.
func (ix *Index) filterRange(ctx context.Context, q *tree.Tree, tau int, fspan *obs.Span, wantBounds bool) (Bounder, []int, []int, *explainCollector, error) {
	prim := ix.filter.Query(q)

	// The filter may enumerate a sound candidate superset directly (e.g.
	// through a VP-tree in BDist space) without touching every indexed
	// tree. The walk runs once, before sharding; the bound pass over the
	// pool is what shards.
	domain := len(ix.trees)
	var pool []int
	hasPool := false
	if cl, ok := prim.(CandidateLister); ok {
		vspan := fspan.StartChild("vptree")
		pool = cl.RangeCandidates(tau)
		vspan.SetInt("candidates", int64(len(pool)))
		vspan.End()
		hasPool = true
		domain = len(pool)
	}
	idAt := func(j int) int { return j }
	if hasPool {
		idAt = func(j int) int { return pool[j] }
	}

	S := ix.shardCount(domain)
	var col *explainCollector
	if wantBounds {
		col = &explainCollector{bounds: make([]int, 0, domain)}
	}

	if S <= 1 {
		var candidates, candBounds []int
		for j := 0; j < domain; j++ {
			if j%ctxCheckEvery == 0 && ctx.Err() != nil {
				return prim, nil, nil, nil, ctx.Err()
			}
			id := idAt(j)
			rb := prim.RangeBound(id, tau)
			col.addBound(rb)
			if rb <= tau {
				candidates = append(candidates, id)
				candBounds = append(candBounds, rb)
			}
		}
		if ar, ok := prim.(AttrReporter); ok {
			ar.ReportAttrs(fspan)
		}
		return prim, candidates, candBounds, col, nil
	}

	type shardOut struct {
		cands, bnds []int
		col         *explainCollector
	}
	outs := make([]shardOut, S)
	var canceled atomic.Bool
	ix.pool.run(S, func(s int) {
		if canceled.Load() {
			return
		}
		b := prim
		if s > 0 {
			b = ix.filter.Query(q)
		}
		sspan := fspan.StartChild(fmt.Sprintf("shard[%d]", s))
		lo, hi := shardRange(domain, S, s)
		var o shardOut
		if wantBounds {
			o.col = &explainCollector{bounds: make([]int, 0, hi-lo)}
		}
		for j := lo; j < hi; j++ {
			if (j-lo)%ctxCheckEvery == 0 && (canceled.Load() || ctx.Err() != nil) {
				canceled.Store(true)
				sspan.SetBool("canceled", true)
				sspan.End()
				return
			}
			id := idAt(j)
			rb := b.RangeBound(id, tau)
			o.col.addBound(rb)
			if rb <= tau {
				o.cands = append(o.cands, id)
				o.bnds = append(o.bnds, rb)
			}
		}
		outs[s] = o
		sspan.SetInt("bounds", int64(hi-lo))
		if ar, ok := b.(AttrReporter); ok {
			ar.ReportAttrs(sspan)
		}
		sspan.End()
	})
	if canceled.Load() || ctx.Err() != nil {
		return prim, nil, nil, nil, ctx.Err()
	}

	// Concatenating in shard order reproduces the sequential domain
	// order, so the candidate list is byte-identical for every S.
	var candidates, candBounds []int
	for _, o := range outs {
		candidates = append(candidates, o.cands...)
		candBounds = append(candBounds, o.bnds...)
		if col != nil && o.col != nil {
			col.bounds = append(col.bounds, o.col.bounds...)
		}
	}
	return prim, candidates, candBounds, col, nil
}

// refineRange verifies every candidate on the worker pool. There is no
// early termination (the radius is fixed), so Verified is deterministic;
// the final sort makes the result order independent of worker timing.
func (ix *Index) refineRange(ctx context.Context, q *tree.Tree, tau int, candidates, candBounds []int, prim Bounder, stats *Stats, ex *Explain) ([]Result, error) {
	var (
		mu       sync.Mutex
		out      []Result
		canceled atomic.Bool
		verified atomic.Int64
	)
	ix.pool.run(len(candidates), func(j int) {
		if canceled.Load() {
			return
		}
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		id := candidates[j]
		d := editdist.DistanceCost(q, ix.trees[id], ix.cost)
		verified.Add(1)
		mu.Lock()
		sampleTightness(prim, stats, ex, id, candBounds[j], d)
		if d <= tau {
			out = append(out, Result{ID: id, Dist: d})
		}
		mu.Unlock()
	})
	stats.Verified = int(verified.Load())
	if canceled.Load() {
		return nil, ctx.Err()
	}
	sortResults(out)
	return out, nil
}

// sortResults orders results by ascending (dist, id) — the canonical
// answer order every query method documents.
func sortResults(out []Result) {
	sort.Slice(out, func(x, y int) bool {
		if out[x].Dist != out[y].Dist {
			return out[x].Dist < out[y].Dist
		}
		return out[x].ID < out[y].ID
	})
}
