package search

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"treesim/internal/editdist"
	"treesim/internal/obs"
	"treesim/internal/tree"
)

// The sharded parallel execution engine over the segmented store. A query
// starts by taking a consistent cut of the store — the sealed segments
// plus a frozen memtable snapshot — and flattens them into one global
// position domain [0, n); positions ascend with dataset ids. The filter
// stage partitions that domain into S contiguous shards (S = WithShards,
// default GOMAXPROCS, clamped to the domain size) whose lower bounds are
// computed concurrently on the index's shared worker pool, each position
// bounded by its own segment's filter; the refine stage fans
// exact-distance verifications over the same pool, with a k-NN query
// propagating its current k-th-best distance across workers through an
// atomic so late verifications prune harder. Tombstoned positions are
// skipped before any bound is computed.
//
// Results are shard- and segment-layout invariant by construction:
//
//   - every visible tree's bound is computed exactly once, into its own
//     slot, and every per-segment bound is a sound lower bound of the
//     same edit distance (differently-built filters only differ in
//     tightness, never in soundness);
//   - k-NN candidates are globally merged in ascending (bound, id) order,
//     and the top-k heap breaks distance ties by id, so the answer is the
//     unique k-minimal (dist, id) set no matter which worker verified
//     what or how the dataset is cut into segments;
//   - a verification is skipped only when its bound exceeds the atomic
//     threshold, which never rises and ends at the final k-th distance —
//     by the lower-bound property such a tree cannot be in the answer.
//
// By default the refine stage is threshold-bounded: every verification
// runs through editdist.DistanceWithin against the live cutoff (τ, or the
// k-NN atomic threshold), so most false positives are disproven by an
// O(n) pre-check or an early-abandoned banded DP instead of the full
// program. This never changes results — a distance proven above the
// cutoff can't enter the answer — only the work: see the verifier type
// and the bounded-refine invariance tests. WithBoundedRefine(false)
// restores full verification.
//
// Stats.Verified (and therefore FalsePositives and Tightness) for k-NN can
// vary with worker timing — opportunistic pruning means a fast machine may
// verify a few candidates a slow one skips — but results, Candidates and
// Results are deterministic. Range queries verify every candidate, so all
// their counters are deterministic too.

// shardCount resolves the shard count for a domain of n items.
func (ix *Index) shardCount(n int) int {
	s := ix.shards
	if s <= 0 {
		s = ix.pool.size
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardRange returns the half-open range of shard s out of S over n items.
func shardRange(n, S, s int) (lo, hi int) {
	return s * n / S, (s + 1) * n / S
}

// sortByBound orders positions by ascending (bound, position). Positions
// ascend with dataset ids, so this is the canonical (bound, id) order.
func sortByBound(ids []int, bounds []int) {
	sort.Slice(ids, func(x, y int) bool {
		bx, by := bounds[ids[x]], bounds[ids[y]]
		if bx != by {
			return bx < by
		}
		return ids[x] < ids[y]
	})
}

// mergeRuns merges per-shard (bound, position)-sorted runs into one
// globally sorted order. Shard counts are small (≈ GOMAXPROCS), so a
// linear scan over the run heads beats heap bookkeeping.
func mergeRuns(runs [][]int, bounds []int) []int {
	if len(runs) == 1 {
		return runs[0]
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]int, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		bestS := -1
		bestID := 0
		for s, r := range runs {
			if heads[s] >= len(r) {
				continue
			}
			id := r[heads[s]]
			if bestS < 0 || bounds[id] < bounds[bestID] ||
				(bounds[id] == bounds[bestID] && id < bestID) {
				bestS, bestID = s, id
			}
		}
		out = append(out, bestID)
		heads[bestS]++
	}
	return out
}

// knn runs one k-NN query (Algorithm 2, sharded across segments).
func (ix *Index) knn(ctx context.Context, q *tree.Tree, k int, qc *queryConfig, ex *Explain) ([]Result, Stats, error) {
	cut := ix.cut()
	stats := Stats{Dataset: cut.live}
	if k <= 0 || cut.live == 0 {
		return nil, stats, nil
	}
	if k > cut.live {
		k = cut.live
	}
	if ex != nil {
		ex.Segments = len(cut.segs)
	}

	// Stage spans hang off the caller's trace (nil span methods are
	// no-ops, so untraced queries pay one nil check per stage).
	span := qc.trace(ctx)

	start := time.Now()
	fspan := span.StartChild("filter")
	prims, order, bounds, err := ix.filterKNN(ctx, cut, q, fspan)
	stats.FilterTime = time.Since(start)
	if err != nil {
		fspan.SetBool("canceled", true)
		fspan.End()
		return nil, stats, err
	}
	fspan.SetInt("candidates", int64(len(order)))
	fspan.SetInt("segments", int64(len(cut.segs)))
	fspan.End()
	if ex != nil && len(order) > 0 {
		// order is sorted by bound, so the distribution falls out of the
		// nearest-rank positions directly.
		n := len(order)
		ex.Bounds = BoundDist{
			Computed: n,
			Min:      bounds[order[0]],
			P50:      bounds[order[(n-1)/2]],
			P99:      bounds[order[(n-1)*99/100]],
			Max:      bounds[order[n-1]],
		}
	}

	start = time.Now()
	rspan := span.StartChild("refine")
	out, err := ix.refineKNN(ctx, cut, q, k, order, bounds, prims, &stats, ex, rspan)
	stats.RefineTime = time.Since(start)
	rspan.SetInt("pruned", int64(len(order)-stats.Verified))
	if err != nil {
		rspan.SetInt("verified", int64(stats.Verified))
		rspan.SetBool("canceled", true)
		rspan.End()
		return nil, stats, err
	}
	stats.Results = len(out)
	if len(out) > 0 {
		// A tree is a candidate when its bound does not exceed the final
		// k-th distance: no verification order could prune it unverified.
		worst := out[len(out)-1].Dist
		stats.Candidates = sort.Search(len(order), func(i int) bool {
			return bounds[order[i]] > worst
		})
	}
	stats.FalsePositives = stats.Verified - len(out)
	rspan.SetInt("verified", int64(stats.Verified))
	rspan.SetInt("results", int64(len(out)))
	rspan.End()
	return out, stats, nil
}

// filterKNN computes every visible tree's optimistic lower bound —
// sharded when the index is configured for it — and returns the global
// positions sorted by ascending (bound, id), plus the caller's per-segment
// bounder set (reused for tightness sampling in the refine stage).
func (ix *Index) filterKNN(ctx context.Context, cut *qcut, q *tree.Tree, fspan *obs.Span) (*segBounders, []int, []int, error) {
	n := cut.n
	S := ix.shardCount(n)
	bounds := make([]int, n)
	prims := newSegBounders(cut, q)
	// Materialized up front so the refine stage can read the set
	// concurrently without lazy-init races.
	prims.materialize()

	if S == 1 {
		order := make([]int, 0, cut.live)
		si := 0
		for pos := 0; pos < n; pos++ {
			if pos%ctxCheckEvery == 0 && ctx.Err() != nil {
				return prims, nil, nil, ctx.Err()
			}
			for pos >= cut.starts[si+1] {
				si++
			}
			local := pos - cut.starts[si]
			if cut.tombs.Has(cut.segs[si].ID(local)) {
				continue
			}
			bounds[pos] = prims.at(si).KNNBound(local)
			order = append(order, pos)
		}
		sortByBound(order, bounds)
		prims.report(fspan)
		return prims, order, bounds, nil
	}

	// Sharded: each shard computes bounds for a contiguous position block
	// into disjoint slots of the shared bounds slice and sorts its own
	// run; runs are then merged. Bounders may keep per-query counters, so
	// every shard profiles the query into bounders of its own (O(|q|) per
	// touched segment, dwarfed by the per-shard O(n/S) bound pass).
	runs := make([][]int, S)
	var canceled atomic.Bool
	ix.pool.run(S, func(s int) {
		if canceled.Load() {
			return
		}
		sb := prims
		if s > 0 {
			sb = newSegBounders(cut, q)
		}
		sspan := fspan.StartChild(fmt.Sprintf("shard[%d]", s))
		lo, hi := shardRange(n, S, s)
		run := make([]int, 0, hi-lo)
		si := cut.segOf(lo)
		for pos := lo; pos < hi; pos++ {
			if (pos-lo)%ctxCheckEvery == 0 && (canceled.Load() || ctx.Err() != nil) {
				canceled.Store(true)
				sspan.SetBool("canceled", true)
				sspan.End()
				return
			}
			for pos >= cut.starts[si+1] {
				si++
			}
			local := pos - cut.starts[si]
			if cut.tombs.Has(cut.segs[si].ID(local)) {
				continue
			}
			bounds[pos] = sb.at(si).KNNBound(local)
			run = append(run, pos)
		}
		sortByBound(run, bounds)
		runs[s] = run
		sspan.SetInt("bounds", int64(len(run)))
		sb.report(sspan)
		sspan.End()
	})
	if canceled.Load() || ctx.Err() != nil {
		return prims, nil, nil, ctx.Err()
	}
	return prims, mergeRuns(runs, bounds), bounds, nil
}

// verifier is the refine stage's shared verification kernel: both query
// kinds funnel their exact-distance computations through it, so the
// bounded-verification logic — live cutoff, pre-checks, early abandoning,
// DP-cell accounting — lives in exactly one place. cutoff returns the
// threshold a distance must not exceed to matter for the answer: τ for
// range queries, the current k-th-best for k-NN. It is read once per
// verification, before the DP; for k-NN that read can be stale, but the
// threshold only ever decreases, so a stale value is merely a looser
// (still correct) cutoff.
type verifier struct {
	cut     *qcut
	q       *tree.Tree
	cutoff  func() int
	bounded bool
	costOpt editdist.Option

	verified    atomic.Int64
	aborted     atomic.Int64
	prechecked  atomic.Int64
	dpCells     atomic.Int64
	dpCellsFull atomic.Int64
}

func (ix *Index) newVerifier(cut *qcut, q *tree.Tree, cutoff func() int) *verifier {
	return &verifier{
		cut: cut, q: q, cutoff: cutoff,
		bounded: ix.bounded,
		costOpt: editdist.WithCost(ix.cost),
	}
}

// verify computes the edit distance between the query and the tree at
// global position pos. within reports whether d is the exact distance
// (it was ≤ the cutoff at verification time); when false, d is only a
// certified lower bound — the tree is provably too far to matter, which
// is all the engine needs.
func (v *verifier) verify(pos int) (si, local, gid, d int, within bool) {
	si, local, gid = v.cut.locate(pos)
	t := v.cut.treeOf(si, local)
	v.verified.Add(1)
	var m editdist.Metrics
	if v.bounded {
		d, within = editdist.DistanceWithin(v.q, t, v.cutoff(), v.costOpt, editdist.WithMetrics(&m))
		if !within {
			if m.Precheck {
				v.prechecked.Add(1)
			} else {
				v.aborted.Add(1)
			}
		}
	} else {
		d = editdist.Distance(v.q, t, v.costOpt, editdist.WithMetrics(&m))
		within = true
	}
	v.dpCells.Add(m.Cells)
	v.dpCellsFull.Add(m.FullCells)
	return si, local, gid, d, within
}

// finish copies the verifier's counters into the query stats and the
// refine span. dp_cells is the dynamic-programming work the refine stage
// actually paid; dp_cells_full is what full verification of the same
// pairs would have cost — the paper's accessed-fraction measure, made
// cell-exact.
func (v *verifier) finish(stats *Stats, rspan *obs.Span) {
	stats.Verified = int(v.verified.Load())
	stats.RefineAborted = int(v.aborted.Load())
	stats.PrecheckRejects = int(v.prechecked.Load())
	stats.DPCells = v.dpCells.Load()
	stats.DPCellsFull = v.dpCellsFull.Load()
	rspan.SetInt("dp_cells", stats.DPCells)
	rspan.SetInt("dp_cells_full", stats.DPCellsFull)
	rspan.SetInt("aborted", int64(stats.RefineAborted))
	rspan.SetInt("precheck_rejects", int64(stats.PrecheckRejects))
}

// clampCutoff converts the k-NN atomic threshold to an editdist cutoff.
func clampCutoff(v int64) int {
	if v > int64(math.MaxInt) {
		return math.MaxInt
	}
	return int(v)
}

// refineKNN verifies candidates in ascending-bound order on the worker
// pool, maintaining the k-minimal (dist, id) heap under a mutex and the
// current k-th distance in an atomic that only ever decreases. A worker
// that meets a bound above the threshold stops the scan: the cursor hands
// tasks out in ascending order, so everything not yet started bounds at
// least as high and cannot enter the answer.
//
// The same threshold is the bounded verifier's cutoff: a candidate enters
// the heap only with d < top.Dist, or d == top.Dist on an id tie-break, so
// a distance proven > thresh can never change the answer, and while the
// heap is short the threshold is MaxInt64 — every verification is exact.
func (ix *Index) refineKNN(ctx context.Context, cut *qcut, q *tree.Tree, k int, order, bounds []int, prims *segBounders, stats *Stats, ex *Explain, rspan *obs.Span) ([]Result, error) {
	var (
		mu       sync.Mutex
		h        = &maxHeap{}
		stop     atomic.Bool
		canceled atomic.Bool
		thresh   atomic.Int64
	)
	thresh.Store(math.MaxInt64) // nothing prunes until the heap holds k
	ver := ix.newVerifier(cut, q, func() int { return clampCutoff(thresh.Load()) })

	ix.pool.run(len(order), func(j int) {
		if stop.Load() || canceled.Load() {
			return
		}
		pos := order[j]
		if int64(bounds[pos]) > thresh.Load() {
			stop.Store(true)
			return
		}
		// A verification can cost milliseconds, so check the context on
		// every task, not every ctxCheckEvery-th.
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		si, local, gid, d, within := ver.verify(pos)
		if !within {
			return
		}
		mu.Lock()
		sampleTightness(prims.at(si), stats, ex, local, gid, bounds[pos], d)
		switch {
		case h.Len() < k:
			heap.Push(h, Result{ID: gid, Dist: d})
			if h.Len() == k {
				thresh.Store(int64(h.top().Dist))
			}
		case d < h.top().Dist || (d == h.top().Dist && gid < h.top().ID):
			h.items[0] = Result{ID: gid, Dist: d}
			heap.Fix(h, 0)
			thresh.Store(int64(h.top().Dist))
		}
		mu.Unlock()
	})
	ver.finish(stats, rspan)
	if canceled.Load() {
		return nil, ctx.Err()
	}

	out := make([]Result, h.Len())
	copy(out, h.items)
	sortResults(out)
	return out, nil
}

// rangeq runs one range query (filter-and-refine, sharded across
// segments).
func (ix *Index) rangeq(ctx context.Context, q *tree.Tree, tau int, qc *queryConfig, ex *Explain) ([]Result, Stats, error) {
	cut := ix.cut()
	stats := Stats{Dataset: cut.live}
	if tau < 0 || cut.live == 0 {
		return nil, stats, nil
	}
	if ex != nil {
		ex.Segments = len(cut.segs)
	}

	span := qc.trace(ctx)

	start := time.Now()
	fspan := span.StartChild("filter")
	prims, candidates, candBounds, col, err := ix.filterRange(ctx, cut, q, tau, fspan, ex != nil)
	stats.FilterTime = time.Since(start)
	if err != nil {
		fspan.SetBool("canceled", true)
		fspan.End()
		return nil, stats, err
	}
	stats.Candidates = len(candidates)
	fspan.SetInt("candidates", int64(len(candidates)))
	fspan.SetInt("segments", int64(len(cut.segs)))
	fspan.End()
	if ex != nil {
		ex.Bounds = col.boundDist()
	}

	start = time.Now()
	rspan := span.StartChild("refine")
	out, err := ix.refineRange(ctx, cut, q, tau, candidates, candBounds, prims, &stats, ex, rspan)
	stats.RefineTime = time.Since(start)
	if err != nil {
		rspan.SetInt("verified", int64(stats.Verified))
		rspan.SetBool("canceled", true)
		rspan.End()
		return nil, stats, err
	}
	stats.Results = len(out)
	stats.FalsePositives = stats.Verified - len(out)
	rspan.SetInt("verified", int64(stats.Verified))
	rspan.SetInt("results", int64(len(out)))
	rspan.End()
	return out, stats, nil
}

// filterRange computes range bounds over the candidate domain — every
// visible position, or the sound superset the segments' CandidateListers
// enumerate — sharded when configured, returning the surviving candidates
// with their bounds (in deterministic domain order) and, when asked, the
// collected bound distribution.
func (ix *Index) filterRange(ctx context.Context, cut *qcut, q *tree.Tree, tau int, fspan *obs.Span, wantBounds bool) (*segBounders, []int, []int, *explainCollector, error) {
	prims := newSegBounders(cut, q)
	prims.materialize()

	// A segment's filter may enumerate a sound candidate superset directly
	// (e.g. through a VP-tree in BDist space) without touching every tree
	// of the segment. The walks run once, before sharding; the bound pass
	// over the pool is what shards. Segments without a lister contribute
	// their full position range.
	domain := cut.n
	var pool []int
	hasPool := false
	for si := range cut.segs {
		if _, ok := prims.at(si).(CandidateLister); ok {
			hasPool = true
			break
		}
	}
	if hasPool {
		vspan := fspan.StartChild("vptree")
		for si, sg := range cut.segs {
			if cl, ok := prims.at(si).(CandidateLister); ok {
				for _, local := range cl.RangeCandidates(tau) {
					pool = append(pool, cut.starts[si]+local)
				}
			} else {
				for local := 0; local < sg.Len(); local++ {
					pool = append(pool, cut.starts[si]+local)
				}
			}
		}
		vspan.SetInt("candidates", int64(len(pool)))
		vspan.End()
		domain = len(pool)
	}
	idAt := func(j int) int { return j }
	if hasPool {
		idAt = func(j int) int { return pool[j] }
	}

	S := ix.shardCount(domain)
	var col *explainCollector
	if wantBounds {
		col = &explainCollector{bounds: make([]int, 0, domain)}
	}

	if S <= 1 {
		var candidates, candBounds []int
		for j := 0; j < domain; j++ {
			if j%ctxCheckEvery == 0 && ctx.Err() != nil {
				return prims, nil, nil, nil, ctx.Err()
			}
			pos := idAt(j)
			si, local, gid := cut.locate(pos)
			if cut.tombs.Has(gid) {
				continue
			}
			rb := prims.at(si).RangeBound(local, tau)
			col.addBound(rb)
			if rb <= tau {
				candidates = append(candidates, pos)
				candBounds = append(candBounds, rb)
			}
		}
		prims.report(fspan)
		return prims, candidates, candBounds, col, nil
	}

	type shardOut struct {
		cands, bnds []int
		col         *explainCollector
	}
	outs := make([]shardOut, S)
	var canceled atomic.Bool
	ix.pool.run(S, func(s int) {
		if canceled.Load() {
			return
		}
		sb := prims
		if s > 0 {
			sb = newSegBounders(cut, q)
		}
		sspan := fspan.StartChild(fmt.Sprintf("shard[%d]", s))
		lo, hi := shardRange(domain, S, s)
		var o shardOut
		if wantBounds {
			o.col = &explainCollector{bounds: make([]int, 0, hi-lo)}
		}
		for j := lo; j < hi; j++ {
			if (j-lo)%ctxCheckEvery == 0 && (canceled.Load() || ctx.Err() != nil) {
				canceled.Store(true)
				sspan.SetBool("canceled", true)
				sspan.End()
				return
			}
			pos := idAt(j)
			si, local, gid := cut.locate(pos)
			if cut.tombs.Has(gid) {
				continue
			}
			rb := sb.at(si).RangeBound(local, tau)
			o.col.addBound(rb)
			if rb <= tau {
				o.cands = append(o.cands, pos)
				o.bnds = append(o.bnds, rb)
			}
		}
		outs[s] = o
		sspan.SetInt("bounds", int64(hi-lo))
		sb.report(sspan)
		sspan.End()
	})
	if canceled.Load() || ctx.Err() != nil {
		return prims, nil, nil, nil, ctx.Err()
	}

	// Concatenating in shard order reproduces the sequential domain
	// order, so the candidate list is byte-identical for every S.
	var candidates, candBounds []int
	for _, o := range outs {
		candidates = append(candidates, o.cands...)
		candBounds = append(candBounds, o.bnds...)
		if col != nil && o.col != nil {
			col.bounds = append(col.bounds, o.col.bounds...)
		}
	}
	return prims, candidates, candBounds, col, nil
}

// refineRange verifies every candidate on the worker pool. There is no
// early termination (the radius is fixed), so Verified — and, because the
// cutoff τ is the same for every candidate, the whole bounded-verification
// breakdown — is deterministic; the final sort makes the result order
// independent of worker timing.
func (ix *Index) refineRange(ctx context.Context, cut *qcut, q *tree.Tree, tau int, candidates, candBounds []int, prims *segBounders, stats *Stats, ex *Explain, rspan *obs.Span) ([]Result, error) {
	var (
		mu       sync.Mutex
		out      []Result
		canceled atomic.Bool
	)
	ver := ix.newVerifier(cut, q, func() int { return tau })
	ix.pool.run(len(candidates), func(j int) {
		if canceled.Load() {
			return
		}
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		si, local, gid, d, within := ver.verify(candidates[j])
		if !within {
			// Proven > τ; an inexact distance carries no tightness signal.
			return
		}
		mu.Lock()
		sampleTightness(prims.at(si), stats, ex, local, gid, candBounds[j], d)
		if d <= tau {
			out = append(out, Result{ID: gid, Dist: d})
		}
		mu.Unlock()
	})
	ver.finish(stats, rspan)
	if canceled.Load() {
		return nil, ctx.Err()
	}
	sortResults(out)
	return out, nil
}

// sortResults orders results by ascending (dist, id) — the canonical
// answer order every query method documents.
func sortResults(out []Result) {
	sort.Slice(out, func(x, y int) bool {
		if out[x].Dist != out[y].Dist {
			return out[x].Dist < out[y].Dist
		}
		return out[x].ID < out[y].ID
	})
}
