package search

import (
	"fmt"
	"sort"
	"strings"
)

// Filter-quality introspection: EXPLAIN records. The paper's experiments
// judge a filter by its candidate-set quality — accessed fraction, false
// positives, lower-bound tightness (the ≤ Factor(q) = 4(q-1)+1 gap between
// the binary branch distance and the real edit distance) — not by raw
// latency. An Explain captures exactly those quantities for one live query
// so they are observable per request (?explain=1, the slow-query log) and
// replayable offline (cmd/treesim-analyze).

// tightnessCap bounds how many tightness samples one query collects —
// enough for the rolling histogram without measurably taxing the refine
// loop (each sample is one L1 distance between sparse vectors, orders of
// magnitude cheaper than the edit distance already paid for the pair).
const tightnessCap = 16

// statsTightnessCap bounds Stats.Tightness growth under Add, so
// aggregating millions of queries keeps bounded memory.
const statsTightnessCap = 4096

// BDister is an optional Bounder capability: expose the raw binary branch
// distance BDist(query, tree i). Filters that implement it give EXPLAIN its
// tightness samples (BDist/EDist, empirically confirming Theorem 4.1's
// factor bound); filters without a branch embedding simply produce none.
type BDister interface {
	BDist(i int) int
}

// FactorReporter is an optional Filter capability: the proven worst-case
// BDist/EDist factor (4(q-1)+1 for q-level binary branches). EXPLAIN
// reports it so a dashboard can plot observed tightness against the bound.
type FactorReporter interface {
	Factor() int
}

// TightnessSample is one verified pair's filter-quality datum: how the
// lower bound and the branch distance compare to the exact edit distance
// the refine stage paid for.
type TightnessSample struct {
	// ID is the dataset position of the verified tree.
	ID int `json:"id"`
	// Bound is the lower bound the filter produced for the pair.
	Bound int `json:"bound"`
	// BDist is the raw binary branch distance (-1 when the filter has no
	// branch embedding).
	BDist int `json:"bdist"`
	// Exact is the exact tree edit distance (> 0; identical pairs carry no
	// tightness information).
	Exact int `json:"exact"`
	// Ratio is BDist/Exact — the empirical tightness, provably ≤ the
	// filter's Factor.
	Ratio float64 `json:"ratio"`
}

// BoundDist summarizes the distribution of the lower bounds the filter
// computed for one query.
type BoundDist struct {
	Computed int `json:"computed"` // bounds actually computed
	Min      int `json:"min"`
	P50      int `json:"p50"`
	P99      int `json:"p99"`
	Max      int `json:"max"`
}

// Explain is the per-query filter-quality analysis: what the filter let
// through, what the refine stage disproved, and how tight the bounds were.
// It is computed inside the engine (KNNExplain/RangeExplain) so the CLI,
// the server and the offline analyzer all report identical numbers.
type Explain struct {
	// Op is "knn" or "range".
	Op string `json:"op"`
	// Filter is the index filter's name.
	Filter string `json:"filter"`
	// K is the k of a knn query (0 for range).
	K int `json:"k,omitempty"`
	// Tau is the radius of a range query (0 for knn).
	Tau int `json:"tau,omitempty"`
	// Dataset is the visible dataset size (tombstoned trees excluded).
	Dataset int `json:"dataset"`
	// Segments is how many storage segments (sealed segments plus the
	// memtable snapshot, when non-empty) the query fanned over.
	Segments int `json:"segments,omitempty"`
	// Candidates counts trees the filter could not prune: for a range
	// query, bounds ≤ tau; for a k-NN query, bounds ≤ the final k-th
	// distance (what any verification order must at least consider).
	Candidates int `json:"candidates"`
	// Verified counts exact edit-distance computations.
	Verified int `json:"verified"`
	// FalsePositives counts verified candidates whose exact distance
	// failed the query predicate (range: > tau; knn: outside the final
	// result set).
	FalsePositives int `json:"false_positives"`
	// Results is the answer set size.
	Results int `json:"results"`
	// AccessedFraction is Verified/Dataset — the paper's quality measure.
	AccessedFraction float64 `json:"accessed_fraction"`
	// RefineAborted and PrecheckRejects break down how many of the
	// Verified attempts the bounded verifier cut short: DP early aborts
	// and O(n) pre-check rejections (both zero under full refine).
	RefineAborted   int `json:"refine_aborted"`
	PrecheckRejects int `json:"precheck_rejects"`
	// DPCells is the dynamic-programming cells the refine stage computed;
	// DPCellsFull is what full verification of the same pairs would have
	// cost.
	DPCells     int64 `json:"dp_cells"`
	DPCellsFull int64 `json:"dp_cells_full"`
	// Bounds is the distribution of the computed lower bounds.
	Bounds BoundDist `json:"bounds"`
	// Tightness holds up to tightnessCap verified-pair samples.
	Tightness []TightnessSample `json:"tightness,omitempty"`
	// TightnessLimit is the filter's proven worst-case ratio (0 when the
	// filter reports none); every sample's Ratio is ≤ it.
	TightnessLimit int `json:"tightness_limit,omitempty"`
	// FilterUS and RefineUS are the stage timings in microseconds.
	FilterUS int64 `json:"filter_us"`
	RefineUS int64 `json:"refine_us"`
}

// explainCollector accumulates the raw material for an Explain while a
// query runs; nil means "not asked", costing the query nothing beyond the
// always-on Stats counters.
type explainCollector struct {
	bounds []int // every bound the filter computed
}

// addBound records one computed lower bound.
func (c *explainCollector) addBound(b int) {
	if c == nil {
		return
	}
	c.bounds = append(c.bounds, b)
}

// boundDist sorts the collected bounds and summarizes their distribution.
func (c *explainCollector) boundDist() BoundDist {
	if c == nil || len(c.bounds) == 0 {
		return BoundDist{}
	}
	bs := c.bounds
	sort.Ints(bs)
	n := len(bs)
	return BoundDist{
		Computed: n,
		Min:      bs[0],
		P50:      bs[(n-1)/2],
		P99:      bs[(n-1)*99/100],
		Max:      bs[n-1],
	}
	// Percentiles use the nearest-rank convention on the sorted bounds.
}

// sampleTightness records one verified pair into the always-on Stats
// sample set (capped) and, when ex is non-nil, the full EXPLAIN sample.
// The bounder addresses trees by segment-local position (local) while the
// sample reports the dataset id (gid). Pairs at exact distance 0 carry no
// ratio and are skipped; filters without a branch embedding produce no
// samples.
func sampleTightness(b Bounder, st *Stats, ex *Explain, local, gid, bound, exact int) {
	if exact <= 0 {
		return
	}
	bd, ok := b.(BDister)
	if !ok {
		return
	}
	full := ex != nil && len(ex.Tightness) < tightnessCap
	brief := len(st.Tightness) < tightnessCap
	if !full && !brief {
		return
	}
	d := bd.BDist(local)
	ratio := float64(d) / float64(exact)
	if brief {
		st.Tightness = append(st.Tightness, ratio)
	}
	if full {
		ex.Tightness = append(ex.Tightness, TightnessSample{
			ID: gid, Bound: bound, BDist: d, Exact: exact, Ratio: ratio,
		})
	}
}

// finish fills the derived Explain fields from the final stats.
func (e *Explain) finish(f Filter, st Stats) {
	if e == nil {
		return
	}
	e.Filter = f.Name()
	e.Dataset = st.Dataset
	e.Candidates = st.Candidates
	e.Verified = st.Verified
	e.FalsePositives = st.FalsePositives
	e.Results = st.Results
	e.AccessedFraction = st.AccessedFraction()
	e.RefineAborted = st.RefineAborted
	e.PrecheckRejects = st.PrecheckRejects
	e.DPCells = st.DPCells
	e.DPCellsFull = st.DPCellsFull
	e.FilterUS = st.FilterTime.Microseconds()
	e.RefineUS = st.RefineTime.Microseconds()
	if fr, ok := f.(FactorReporter); ok {
		e.TightnessLimit = fr.Factor()
	}
}

// String renders the analysis for terminals (cmd/treesim -explain).
func (e *Explain) String() string {
	var b strings.Builder
	param := ""
	switch e.Op {
	case "knn":
		param = fmt.Sprintf(" k=%d", e.K)
	case "range":
		param = fmt.Sprintf(" tau=%d", e.Tau)
	}
	fmt.Fprintf(&b, "explain: %s%s filter=%s dataset=%d\n", e.Op, param, e.Filter, e.Dataset)
	fmt.Fprintf(&b, "  candidates=%d verified=%d false_positives=%d results=%d accessed=%.4f\n",
		e.Candidates, e.Verified, e.FalsePositives, e.Results, e.AccessedFraction)
	fmt.Fprintf(&b, "  bounds: computed=%d min=%d p50=%d p99=%d max=%d\n",
		e.Bounds.Computed, e.Bounds.Min, e.Bounds.P50, e.Bounds.P99, e.Bounds.Max)
	fmt.Fprintf(&b, "  refine: aborted=%d precheck_rejects=%d dp_cells=%d/%d\n",
		e.RefineAborted, e.PrecheckRejects, e.DPCells, e.DPCellsFull)
	fmt.Fprintf(&b, "  stages: filter=%dµs refine=%dµs\n", e.FilterUS, e.RefineUS)
	if len(e.Tightness) > 0 {
		limit := ""
		if e.TightnessLimit > 0 {
			limit = fmt.Sprintf(" (proven ≤ %d)", e.TightnessLimit)
		}
		fmt.Fprintf(&b, "  tightness BDist/EDist%s:", limit)
		for _, s := range e.Tightness {
			fmt.Fprintf(&b, " %.2f", s.Ratio)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
