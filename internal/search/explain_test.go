package search

import (
	"context"
	"regexp"
	"strings"
	"testing"

	"treesim/internal/branch"
)

// TestExplainKNNConsistency: KNNExplain returns the same results as the
// plain path, and the analysis is internally consistent — counters match
// the stats, the bound distribution is monotone and covers the dataset.
func TestExplainKNNConsistency(t *testing.T) {
	ts := testDataset(60, 80)
	ix := NewIndex(ts, NewBiBranch())
	q := testDataset(1, 81)[0]

	plain, _, _ := ix.KNN(context.Background(), q, 5)
	res, stats, ex, err := ix.KNNExplain(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ex == nil {
		t.Fatal("no explain")
	}
	if !sameDistances(plain, res) {
		t.Fatalf("explain path changed results: %v vs %v", dists(plain), dists(res))
	}
	if ex.Op != "knn" || ex.K != 5 {
		t.Errorf("op=%q k=%d, want knn/5", ex.Op, ex.K)
	}
	if ex.Filter != "BiBranch" || ex.Dataset != 60 {
		t.Errorf("filter=%q dataset=%d", ex.Filter, ex.Dataset)
	}
	if ex.Candidates != stats.Candidates || ex.Verified != stats.Verified ||
		ex.FalsePositives != stats.FalsePositives || ex.Results != stats.Results {
		t.Errorf("explain counters %+v disagree with stats %+v", ex, stats)
	}
	if ex.FalsePositives != ex.Verified-ex.Results {
		t.Errorf("false positives %d != verified-results %d-%d", ex.FalsePositives, ex.Verified, ex.Results)
	}
	if ex.Bounds.Computed != 60 {
		t.Errorf("knn computed %d bounds, want 60 (all trees bounded)", ex.Bounds.Computed)
	}
	if ex.Bounds.Min > ex.Bounds.P50 || ex.Bounds.P50 > ex.Bounds.P99 || ex.Bounds.P99 > ex.Bounds.Max {
		t.Errorf("bound distribution not monotone: %+v", ex.Bounds)
	}
	// Every verified result's distance is >= the minimum bound's floor.
	if len(res) > 0 && res[len(res)-1].Dist < ex.Bounds.Min {
		t.Errorf("k-th distance %d below min bound %d", res[len(res)-1].Dist, ex.Bounds.Min)
	}
}

// TestExplainRangeConsistency: same contract on the range path, where the
// filter may prune without computing every positional bound.
func TestExplainRangeConsistency(t *testing.T) {
	ts := testDataset(50, 82)
	ix := NewIndex(ts, NewBiBranch())
	q := ts[10]

	plain, _, _ := ix.Range(context.Background(), q, 4)
	res, stats, ex, err := ix.RangeExplain(context.Background(), q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDistances(plain, res) {
		t.Fatalf("explain path changed results")
	}
	if ex.Op != "range" || ex.Tau != 4 {
		t.Errorf("op=%q tau=%d, want range/4", ex.Op, ex.Tau)
	}
	if ex.Candidates != stats.Candidates || ex.Candidates < ex.Verified {
		t.Errorf("candidates %d (stats %d), verified %d", ex.Candidates, stats.Candidates, ex.Verified)
	}
	if ex.Bounds.Computed == 0 || ex.Bounds.Computed > 50 {
		t.Errorf("range computed %d bounds", ex.Bounds.Computed)
	}
	if ex.AccessedFraction != stats.AccessedFraction() {
		t.Errorf("accessed fraction %v != stats %v", ex.AccessedFraction, stats.AccessedFraction())
	}
}

// TestTightnessWithinFactor: for q in {2,3,4}, every tightness sample on
// both query paths respects Theorem 4.1's bound BDist <= Factor(q)*EDist,
// and the explain reports exactly that factor as the limit.
func TestTightnessWithinFactor(t *testing.T) {
	ts := testDataset(40, 83)
	for _, q := range []int{2, 3, 4} {
		ix := NewIndex(ts, &BiBranch{Q: q, Positional: true})
		want := branch.Factor(q)
		query := ts[3]
		_, _, exK, err := ix.KNNExplain(context.Background(), query, 4)
		if err != nil {
			t.Fatal(err)
		}
		_, _, exR, err := ix.RangeExplain(context.Background(), query, 6)
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range []*Explain{exK, exR} {
			if ex.TightnessLimit != want {
				t.Errorf("q=%d: tightness limit %d, want %d", q, ex.TightnessLimit, want)
			}
			if len(ex.Tightness) == 0 {
				t.Errorf("q=%d %s: no tightness samples", q, ex.Op)
			}
			for _, s := range ex.Tightness {
				if s.Exact <= 0 {
					t.Errorf("q=%d: sample with exact=%d", q, s.Exact)
				}
				if s.BDist > want*s.Exact {
					t.Errorf("q=%d: BDist %d > %d*EDist %d — violates Theorem 4.1", q, s.BDist, want, s.Exact)
				}
				if s.Ratio > float64(want) {
					t.Errorf("q=%d: ratio %.3f exceeds factor %d", q, s.Ratio, want)
				}
			}
		}
	}
}

// TestExplainFilterlessPaths: filters without a branch embedding produce
// a valid explain with no tightness samples and no factor claim.
func TestExplainFilterlessPaths(t *testing.T) {
	ts := testDataset(20, 84)
	for _, f := range []Filter{NewHisto(), NewNone()} {
		ix := NewIndex(ts, WithFilter(f))
		_, _, ex, err := ix.KNNExplain(context.Background(), ts[0], 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.Tightness) != 0 {
			t.Errorf("%s produced tightness samples without a branch embedding", f.Name())
		}
		if ex.TightnessLimit != 0 {
			t.Errorf("%s claims factor %d", f.Name(), ex.TightnessLimit)
		}
		if ex.Verified == 0 || ex.Dataset != 20 {
			t.Errorf("%s explain incomplete: %+v", f.Name(), ex)
		}
	}
}

// TestExplainString: the terminal rendering is stable up to timings —
// the golden form for a seeded index, with stage micros normalized.
func TestExplainString(t *testing.T) {
	ts := testDataset(30, 85)
	ix := NewIndex(ts, NewBiBranch())
	_, _, ex, err := ix.KNNExplain(context.Background(), ts[5], 3)
	if err != nil {
		t.Fatal(err)
	}
	got := ex.String()
	// Normalize the only nondeterministic parts: the stage timings.
	got = regexp.MustCompile(`filter=\d+µs refine=\d+µs`).ReplaceAllString(got, "filter=Xµs refine=Xµs")
	for _, want := range []string{
		"explain: knn k=3 filter=BiBranch dataset=30\n",
		"false_positives=", "accessed=0.",
		"bounds: computed=30 ",
		"refine: aborted=", " precheck_rejects=", " dp_cells=",
		"stages: filter=Xµs refine=Xµs\n",
		"tightness BDist/EDist (proven ≤ 5):",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rendering lacks %q:\n%s", want, got)
		}
	}
	// The whole layout: five-plus lines, each prefixed predictably.
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 6 {
		t.Errorf("rendering has %d lines, want 6:\n%s", len(lines), got)
	}
}

// TestStatsQualityCounters: the always-on Stats counters (no explain
// requested) carry candidates, false positives and capped tightness
// samples, and Add aggregates them with the cap.
func TestStatsQualityCounters(t *testing.T) {
	ts := testDataset(40, 86)
	ix := NewIndex(ts, NewBiBranch())
	_, stats, _ := ix.KNN(context.Background(), ts[7], 5)
	if stats.Candidates <= 0 || stats.Candidates > 40 {
		t.Errorf("candidates %d outside (0,40]", stats.Candidates)
	}
	if stats.FalsePositives != stats.Verified-stats.Results {
		t.Errorf("false positives %d != verified-results", stats.FalsePositives)
	}
	if len(stats.Tightness) == 0 {
		t.Error("plain KNN collected no tightness samples")
	}
	if stats.FalsePositiveRate() < 0 || stats.FalsePositiveRate() > 1 {
		t.Errorf("false positive rate %v outside [0,1]", stats.FalsePositiveRate())
	}

	var total Stats
	for i := 0; i < 2000; i++ {
		total.Add(stats)
	}
	if total.Candidates != 2000*stats.Candidates {
		t.Errorf("Add lost candidates: %d", total.Candidates)
	}
	if len(total.Tightness) > statsTightnessCap {
		t.Errorf("aggregated tightness grew to %d, cap is %d", len(total.Tightness), statsTightnessCap)
	}
}
