// Package search implements the filter-and-refine similarity search
// framework of Section 4: k-NN and range queries over a dataset of trees,
// where a cheap lower bound of the tree edit distance prunes most
// candidates (filter) and the Zhang–Shasha distance verifies the survivors
// (refine). The lower-bound property guarantees completeness: no true
// result is ever filtered out.
//
// Filters are pluggable. The paper's contribution is the BiBranch filter
// (binary branch vectors with the positional SearchLBound optimistic
// bound); Histo is the histogram baseline of Kailing et al.; Seq is the
// preorder/postorder sequence bound of Guha et al.; None disables filtering
// and degenerates to the sequential scan used as the timing baseline.
package search

import (
	"treesim/internal/branch"
	"treesim/internal/editdist"
	"treesim/internal/histogram"
	"treesim/internal/tree"
)

// Filter preprocesses a dataset once and then produces a Bounder per query.
type Filter interface {
	// Name identifies the filter in statistics and experiment output.
	Name() string
	// Index preprocesses the dataset (e.g. builds branch vectors).
	Index(ts []*tree.Tree)
	// Query preprocesses one query tree and returns its bounder.
	Query(q *tree.Tree) Bounder
}

// Appender is an optional Filter capability: extend the indexed state with
// one more tree (appended at the next dataset position). The segmented
// store appends into the memtable's filter through it.
type Appender interface {
	Append(t *tree.Tree)
}

// Fresher is an optional Filter capability: produce an empty filter of the
// same configuration, ready to Index a new dataset. The segmented store
// uses it to rebuild per-segment filters at compaction time, which is what
// makes globally-preprocessed filters (pivot tables, VP-trees) appendable:
// the expensive global build happens per segment, off the write path.
type Fresher interface {
	Fresh() Filter
}

// snapshotter is the internal capability of memtable filters: freeze the
// first n indexed entries into a read-only filter sharing the underlying
// space. The frozen filter must stay valid while the original keeps
// appending (slice-header copies, never data copies — seals are O(1)).
type snapshotter interface {
	snapshotAt(n int) Filter
}

// Bounder computes edit-distance lower bounds between one query and the
// indexed trees.
type Bounder interface {
	// KNNBound returns a lower bound L ≤ EDist(query, tree i), used as the
	// optimistic bound of Algorithm 2.
	KNNBound(i int) int
	// RangeBound returns a value L such that L > tau implies
	// EDist(query, tree i) > tau; range queries prune on it. For most
	// filters it coincides with KNNBound, but the positional filter can
	// tighten it at a known threshold (Section 4.3).
	RangeBound(i, tau int) int
}

// BiBranch is the paper's filter: q-level binary branch vectors with,
// optionally, the positional lower bound of Section 4.2–4.3.
type BiBranch struct {
	// Q is the branch level (≥ 2). The zero value means 2.
	Q int
	// Positional selects the positional optimistic bound (SearchLBound /
	// RangeLowerBound); when false the plain ceil(BDist/Factor(q)) bound
	// is used — the ablation of DESIGN.md.
	Positional bool

	space    *branch.Space
	profiles []*branch.Profile
}

// NewBiBranch returns the standard configuration of the paper: two-level
// branches with the positional bound.
func NewBiBranch() *BiBranch { return &BiBranch{Q: 2, Positional: true} }

// Name implements Filter.
func (f *BiBranch) Name() string {
	if f.Positional {
		return "BiBranch"
	}
	return "BiBranch-nopos"
}

// Index implements Filter.
func (f *BiBranch) Index(ts []*tree.Tree) {
	q := f.Q
	if q == 0 {
		q = branch.MinQ
	}
	f.space = branch.NewSpace(q)
	f.profiles = f.space.ProfileAllParallel(ts, 0)
}

// Append implements Appender: profiles the new tree into the existing
// space.
func (f *BiBranch) Append(t *tree.Tree) {
	f.profiles = append(f.profiles, f.space.Profile(t))
}

// Fresh implements Fresher.
func (f *BiBranch) Fresh() Filter { return &BiBranch{Q: f.Q, Positional: f.Positional} }

// snapshotAt freezes the first n profiles. The branch space is shared —
// it is internally synchronized and only ever grows — and the profile
// slice is capped at n, so appends to the live filter never show through.
func (f *BiBranch) snapshotAt(n int) Filter {
	return &BiBranch{Q: f.Q, Positional: f.Positional, space: f.space, profiles: f.profiles[:n:n]}
}

// Space exposes the branch space built by Index (nil before Index).
func (f *BiBranch) Space() *branch.Space { return f.space }

// Profiles exposes the dataset profiles built by Index.
func (f *BiBranch) Profiles() []*branch.Profile { return f.profiles }

// Query implements Filter.
func (f *BiBranch) Query(q *tree.Tree) Bounder {
	return &biBranchBounder{f: f, qp: f.space.Profile(q)}
}

// Factor implements FactorReporter: the proven worst-case BDist/EDist
// ratio 4(q-1)+1 (Theorem 4.1; 5 for the paper's standard q=2).
func (f *BiBranch) Factor() int {
	q := f.Q
	if q == 0 {
		q = branch.MinQ
	}
	return branch.Factor(q)
}

type biBranchBounder struct {
	f  *BiBranch
	qp *branch.Profile
}

// BDist implements BDister: the raw binary branch distance to tree i, the
// quantity the tightness metric relates to the exact edit distance.
func (b *biBranchBounder) BDist(i int) int {
	return branch.BDist(b.qp, b.f.profiles[i])
}

func (b *biBranchBounder) KNNBound(i int) int {
	if b.f.Positional {
		return branch.SearchLBound(b.qp, b.f.profiles[i])
	}
	return branch.BDistLowerBound(b.qp, b.f.profiles[i])
}

func (b *biBranchBounder) RangeBound(i, tau int) int {
	if b.f.Positional {
		return branch.RangeLowerBound(b.qp, b.f.profiles[i], tau)
	}
	return branch.BDistLowerBound(b.qp, b.f.profiles[i])
}

// Histo is the histogram filtration baseline (Kailing et al.): the maximum
// of the label, degree, height and size lower bounds. Following the
// paper's equal-space rule, the three histograms together are given as
// many dimensions as the average binary branch representation (the average
// branch vector size plus two average tree sizes), unless an explicit
// Config is set.
type Histo struct {
	// Config overrides the folding configuration; the zero value selects
	// the equal-space rule at Index time.
	Config histogram.Config
	// Unbounded disables folding entirely (every label in its own bin).
	Unbounded bool

	cfg      histogram.Config
	profiles []*histogram.Profile
}

// NewHisto returns the histogram filter with the paper's equal-space
// sizing.
func NewHisto() *Histo { return &Histo{} }

// Name implements Filter.
func (f *Histo) Name() string {
	if f.Unbounded {
		return "Histo-unbounded"
	}
	return "Histo"
}

// Index implements Filter.
func (f *Histo) Index(ts []*tree.Tree) {
	switch {
	case f.Unbounded:
		f.cfg = histogram.Unbounded()
	case f.Config != (histogram.Config{}):
		f.cfg = f.Config
	default:
		// Equal-space rule: a branch vector has at most |T| non-zero
		// dimensions and stores two positions per node, so its space is
		// ≈ 3·|T| numbers; give the histograms the same total.
		total := 0
		for _, t := range ts {
			total += t.Size()
		}
		avg := 0
		if len(ts) > 0 {
			avg = total / len(ts)
		}
		f.cfg = histogram.EqualSpace(3 * avg)
	}
	// Per-tree profiling is independent once the folding configuration is
	// fixed, so the build fans out like the query stages do.
	f.profiles = make([]*histogram.Profile, len(ts))
	forEach(len(ts), 0, func(i int) {
		f.profiles[i] = histogram.NewProfileConfig(ts[i], f.cfg)
	})
}

// Append implements Appender. The folding configuration chosen at Index
// time is kept, so bounds stay mutually consistent.
func (f *Histo) Append(t *tree.Tree) {
	f.profiles = append(f.profiles, histogram.NewProfileConfig(t, f.cfg))
}

// Fresh implements Fresher. The resolved folding configuration (not the
// zero Config that selects equal-space sizing) carries over, so a fresh
// filter over an empty segment does not degenerate to zero dimensions.
func (f *Histo) Fresh() Filter {
	cfg := f.Config
	if f.cfg != (histogram.Config{}) {
		cfg = f.cfg
	}
	return &Histo{Config: cfg, Unbounded: f.Unbounded}
}

// snapshotAt freezes the first n profiles (shared folding configuration,
// capped profile slice).
func (f *Histo) snapshotAt(n int) Filter {
	return &Histo{Config: f.Config, Unbounded: f.Unbounded, cfg: f.cfg, profiles: f.profiles[:n:n]}
}

// Query implements Filter.
func (f *Histo) Query(q *tree.Tree) Bounder {
	return &histoBounder{f: f, qp: histogram.NewProfileConfig(q, f.cfg)}
}

type histoBounder struct {
	f  *Histo
	qp *histogram.Profile
}

func (b *histoBounder) KNNBound(i int) int {
	return histogram.LowerBound(b.qp, b.f.profiles[i])
}

func (b *histoBounder) RangeBound(i, tau int) int { return b.KNNBound(i) }

// Seq is the preorder/postorder label sequence lower bound of Guha et al.
// (reference [15]). Its bound costs O(|T1|·|T2|) per pair — the same order
// as the real distance, illustrating why a linear-time filter matters.
type Seq struct {
	trees []*tree.Tree
}

// NewSeq returns the sequence lower-bound filter.
func NewSeq() *Seq { return &Seq{} }

// Name implements Filter.
func (f *Seq) Name() string { return "Seq" }

// Index implements Filter.
func (f *Seq) Index(ts []*tree.Tree) { f.trees = ts }

// Append implements Appender.
func (f *Seq) Append(t *tree.Tree) { f.trees = append(f.trees, t) }

// Fresh implements Fresher.
func (f *Seq) Fresh() Filter { return &Seq{} }

// snapshotAt freezes the first n trees.
func (f *Seq) snapshotAt(n int) Filter { return &Seq{trees: f.trees[:n:n]} }

// Query implements Filter.
func (f *Seq) Query(q *tree.Tree) Bounder { return &seqBounder{f: f, q: q} }

type seqBounder struct {
	f *Seq
	q *tree.Tree
}

func (b *seqBounder) KNNBound(i int) int {
	return editdist.SequenceLowerBound(b.q, b.f.trees[i])
}

func (b *seqBounder) RangeBound(i, tau int) int { return b.KNNBound(i) }

// None disables filtering: every lower bound is zero, so every data tree is
// verified with the real edit distance. Searching with None is the
// sequential scan baseline of the experiments.
type None struct{}

// NewNone returns the no-op filter.
func NewNone() *None { return &None{} }

// Name implements Filter.
func (*None) Name() string { return "Sequential" }

// Index implements Filter.
func (*None) Index([]*tree.Tree) {}

// Append implements Appender (no per-tree state).
func (*None) Append(*tree.Tree) {}

// Fresh implements Fresher.
func (*None) Fresh() Filter { return &None{} }

// snapshotAt implements snapshotter (stateless, so the filter is its own
// snapshot).
func (f *None) snapshotAt(int) Filter { return f }

// Query implements Filter.
func (*None) Query(*tree.Tree) Bounder { return noneBounder{} }

type noneBounder struct{}

func (noneBounder) KNNBound(int) int        { return 0 }
func (noneBounder) RangeBound(_, _ int) int { return 0 }
