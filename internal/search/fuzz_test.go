package search

import (
	"bytes"
	"testing"

	"treesim/internal/tree"
)

// FuzzLoadIndex feeds arbitrary bytes to the snapshot loader. The
// contract under corruption: fail cleanly — no panics, and no allocation
// sized by an untrusted length prefix (the codec caps every claimed
// count, so a 50-byte input can never demand gigabytes). When an input
// does load, it must re-save and re-load into an equivalent index.
func FuzzLoadIndex(f *testing.F) {
	ix := NewIndex(testDataset(8, 41), NewBiBranch())
	var v3 bytes.Buffer
	if err := SaveIndex(&v3, ix); err != nil {
		f.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := saveIndexV1(&v1, ix); err != nil {
		f.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := saveIndexV2(&v2, ix); err != nil {
		f.Fatal(err)
	}
	// A segmented snapshot with a tombstone: sealed segments, a memtable
	// snapshot, and a hole in the id space.
	seg := NewIndex(testDataset(6, 42), NewBiBranch(), WithMemtableSize(3), WithCompactionThreshold(-1))
	for _, tr := range testDataset(5, 43) {
		seg.Insert(tr)
	}
	seg.Delete(4)
	var v3seg bytes.Buffer
	if err := SaveIndex(&v3seg, seg); err != nil {
		f.Fatal(err)
	}
	f.Add(v3.Bytes())
	f.Add(v3seg.Bytes())
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v3.Bytes()[:len(v3.Bytes())/2])
	f.Add([]byte("TSIX3\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("TSIX2\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("TSIX1\x00garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadIndex(bytes.NewReader(data))
		if err != nil {
			return // malformed input must fail cleanly, never panic
		}
		// A load that succeeded must be internally consistent enough to
		// round-trip.
		var buf bytes.Buffer
		if err := SaveIndex(&buf, loaded); err != nil {
			t.Fatalf("loaded index does not re-save: %v", err)
		}
		again, err := LoadIndex(&buf)
		if err != nil {
			t.Fatalf("re-saved index does not re-load: %v", err)
		}
		if again.Size() != loaded.Size() || again.Live() != loaded.Live() {
			t.Fatalf("round trip changed size/live: %d/%d -> %d/%d",
				loaded.Size(), loaded.Live(), again.Size(), again.Live())
		}
		for i := 0; i < loaded.Size(); i++ {
			lt, lok := loaded.TreeAt(i)
			at, aok := again.TreeAt(i)
			if lok != aok {
				t.Fatalf("round trip changed visibility of id %d", i)
			}
			if lok && !tree.Equal(at, lt) {
				t.Fatalf("round trip changed tree %d", i)
			}
		}
	})
}
