package search

import (
	"bytes"
	"testing"

	"treesim/internal/tree"
)

// FuzzLoadIndex feeds arbitrary bytes to the snapshot loader. The
// contract under corruption: fail cleanly — no panics, and no allocation
// sized by an untrusted length prefix (the codec caps every claimed
// count, so a 50-byte input can never demand gigabytes). When an input
// does load, it must re-save and re-load into an equivalent index.
func FuzzLoadIndex(f *testing.F) {
	ix := NewIndex(testDataset(8, 41), NewBiBranch())
	var v2 bytes.Buffer
	if err := SaveIndex(&v2, ix); err != nil {
		f.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := saveIndexV1(&v1, ix); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	f.Add([]byte("TSIX2\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("TSIX1\x00garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadIndex(bytes.NewReader(data))
		if err != nil {
			return // malformed input must fail cleanly, never panic
		}
		// A load that succeeded must be internally consistent enough to
		// round-trip.
		var buf bytes.Buffer
		if err := SaveIndex(&buf, loaded); err != nil {
			t.Fatalf("loaded index does not re-save: %v", err)
		}
		again, err := LoadIndex(&buf)
		if err != nil {
			t.Fatalf("re-saved index does not re-load: %v", err)
		}
		if again.Size() != loaded.Size() {
			t.Fatalf("round trip changed size: %d -> %d", loaded.Size(), again.Size())
		}
		for i := 0; i < loaded.Size(); i++ {
			if !tree.Equal(again.Tree(i), loaded.Tree(i)) {
				t.Fatalf("round trip changed tree %d", i)
			}
		}
	})
}
