package search

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"sync"
	"testing"

	"treesim/internal/tree"
)

// TestHammerCompaction drives every mutation path of the segmented index
// at once — inserts, deletes, queries, explicit compactions and snapshot
// writes — under aggressive segment churn (tiny memtable, automatic
// compaction trigger). Run with -race (make hammer, ci.sh) it proves the
// epoch-snapshot protocol: queries never observe a torn cut, compaction
// never loses a mid-merge write, and the final state matches a clean
// rebuild exactly.
func TestHammerCompaction(t *testing.T) {
	const (
		writers     = 3
		perWriter   = 120
		base        = 30
		deleteEvery = 4 // writers delete every 4th id they inserted
		baseDeletes = 5 // per writer, from its partition of the base
	)
	all := testDataset(base+writers*perWriter, 81)
	ix := NewIndex(all[:base], NewBiBranch(), WithMemtableSize(8), WithCompactionThreshold(3))

	// visible[w] is writer w's authoritative record of what it left
	// visible; the base partitions below writer 0's slots.
	visible := make([]map[int]*tree.Tree, writers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var bg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make(map[int]*tree.Tree)
			// Each writer owns a disjoint slice of the base dataset and
			// deletes a few of its ids, so every Delete must succeed
			// exactly once.
			lo, hi := w*base/writers, (w+1)*base/writers
			for id := lo; id < hi; id++ {
				mine[id] = all[id]
			}
			for i := 0; i < baseDeletes && lo+i < hi; i++ {
				id := lo + i
				if !ix.Delete(id) {
					t.Errorf("writer %d: delete of own base id %d refused", w, id)
				}
				delete(mine, id)
			}
			for i := 0; i < perWriter; i++ {
				tr := all[base+w*perWriter+i]
				id, err := ix.Insert(tr)
				if err != nil {
					t.Errorf("writer %d: insert: %v", w, err)
					return
				}
				mine[id] = tr
				if i%deleteEvery == 0 {
					if !ix.Delete(id) {
						t.Errorf("writer %d: delete of own insert %d refused", w, id)
					}
					delete(mine, id)
				}
			}
			visible[w] = mine
		}(w)
	}

	// Queriers, a compactor and a snapshotter churn until the writers are
	// done; their results are checked for internal consistency only (the
	// dataset is a moving target while they run).
	q := all[base/2]
	for g := 0; g < 2; g++ {
		bg.Add(1)
		go func() {
			defer bg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, _, err := ix.KNN(context.Background(), q, 5)
				if err != nil {
					t.Errorf("querier: %v", err)
					return
				}
				for i := 1; i < len(res); i++ {
					if res[i].Dist < res[i-1].Dist {
						t.Errorf("querier: unsorted results %v", res)
						return
					}
				}
				if _, _, err := ix.Range(context.Background(), q, 2); err != nil {
					t.Errorf("querier: %v", err)
					return
				}
			}
		}()
	}
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ix.Compact()
			}
		}
	}()
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := SaveIndex(io.Discard, ix); err != nil {
					t.Errorf("snapshotter: %v", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	bg.Wait()

	want := make(map[int]*tree.Tree)
	for _, m := range visible {
		for id, tr := range m {
			want[id] = tr
		}
	}
	if ix.Size() != base+writers*perWriter {
		t.Fatalf("size %d, want %d", ix.Size(), base+writers*perWriter)
	}
	if ix.Live() != len(want) {
		t.Fatalf("live %d, want %d", ix.Live(), len(want))
	}

	// Final parity, three ways: the churned index, its snapshot loaded
	// back, and the brute-force ground truth all agree on (dist, id).
	ix.Seal()
	ix.Compact()
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []*tree.Tree{q, all[base+7], testDataset(1, 82)[0]} {
		truth := bruteKNNAnswers(want, probe, 6)
		got, _, _ := ix.KNN(context.Background(), probe, 6)
		if !reflect.DeepEqual(got, truth) {
			t.Fatalf("churned index KNN = %v, want %v", got, truth)
		}
		lgot, _, _ := loaded.KNN(context.Background(), probe, 6)
		if !reflect.DeepEqual(lgot, truth) {
			t.Fatalf("reloaded snapshot KNN = %v, want %v", lgot, truth)
		}
	}
}
