package search

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"treesim/internal/editdist"
	"treesim/internal/obs"
	"treesim/internal/segstore"
	"treesim/internal/tree"
)

// AttrReporter is an optional Bounder capability: annotate the query's
// filter span with per-stage counters accumulated during the bound pass
// (pivot-screen prunes, VP-tree distance evaluations). The engine calls it
// once per bounder, after its bound pass, on the span that timed it — the
// filter span itself when the query ran unsharded, each shard's child span
// otherwise.
type AttrReporter interface {
	ReportAttrs(sp *obs.Span)
}

// Result is one answer of a similarity query.
type Result struct {
	ID   int // dataset id of the tree
	Dist int // exact tree edit distance to the query
}

// Stats records what one query cost. The headline measure of the paper's
// experiments is AccessedFraction — the share of the dataset whose real
// edit distance had to be computed. Candidates, FalsePositives and
// Tightness are the filter-quality counters behind EXPLAIN and the
// server's rolling metrics; they are cheap enough to compute on every
// query.
//
// Results, Candidates and Dataset are deterministic for fixed inputs
// regardless of sharding and worker count. Verified (and the counters
// derived from it) is deterministic for range queries; for k-NN under
// parallel refinement it can vary slightly with worker timing, because
// the shared k-th-distance threshold prunes opportunistically.
type Stats struct {
	Dataset        int           // visible dataset size (tombstoned trees excluded)
	Candidates     int           // trees the filter could not prune (see Explain.Candidates)
	Verified       int           // trees the refine stage took to verification
	Results        int           // result set size
	FalsePositives int           // verified candidates whose exact distance failed the predicate
	FilterTime     time.Duration // time spent computing lower bounds
	RefineTime     time.Duration // time spent computing exact distances
	// Bounded-verification breakdown (zero when the index runs full
	// refine): of the Verified attempts, PrecheckRejects were disproven by
	// an O(n) pre-check before any DP, and RefineAborted by the DP
	// abandoning early once the distance provably exceeded the live
	// cutoff. DPCells is the dynamic-programming cells actually computed
	// across the query's verifications; DPCellsFull is what the unbounded
	// program would have computed for the same pairs — the gap is the
	// refine work the cutoff saved.
	RefineAborted   int
	PrecheckRejects int
	DPCells         int64
	DPCellsFull     int64
	// Tightness holds sampled BDist/EDist ratios of verified pairs (capped
	// per query), when the filter exposes a branch distance. Each ratio is
	// provably ≤ the filter's Factor; the server feeds them into a rolling
	// histogram.
	Tightness []float64
}

// AccessedFraction returns Verified/Dataset in [0,1].
func (s Stats) AccessedFraction() float64 {
	if s.Dataset == 0 {
		return 0
	}
	return float64(s.Verified) / float64(s.Dataset)
}

// Total returns the end-to-end query time.
func (s Stats) Total() time.Duration { return s.FilterTime + s.RefineTime }

// Add accumulates another query's stats (for averaging over query sets).
// Tightness samples are carried over up to a fixed cap, so aggregates over
// arbitrarily many queries keep bounded memory.
func (s *Stats) Add(o Stats) {
	s.Dataset += o.Dataset
	s.Candidates += o.Candidates
	s.Verified += o.Verified
	s.Results += o.Results
	s.FalsePositives += o.FalsePositives
	s.FilterTime += o.FilterTime
	s.RefineTime += o.RefineTime
	s.RefineAborted += o.RefineAborted
	s.PrecheckRejects += o.PrecheckRejects
	s.DPCells += o.DPCells
	s.DPCellsFull += o.DPCellsFull
	if room := statsTightnessCap - len(s.Tightness); room > 0 {
		if len(o.Tightness) < room {
			room = len(o.Tightness)
		}
		s.Tightness = append(s.Tightness, o.Tightness[:room]...)
	}
}

// FalsePositiveRate returns FalsePositives/Verified in [0,1].
func (s Stats) FalsePositiveRate() float64 {
	if s.Verified == 0 {
		return 0
	}
	return float64(s.FalsePositives) / float64(s.Verified)
}

func (s Stats) String() string {
	out := fmt.Sprintf("verified %d/%d (%.2f%%), %d candidates, %d false positives, filter %v, refine %v",
		s.Verified, s.Dataset, 100*s.AccessedFraction(), s.Candidates, s.FalsePositives, s.FilterTime, s.RefineTime)
	if s.RefineAborted > 0 || s.PrecheckRejects > 0 {
		out += fmt.Sprintf(", bounded: %d aborted, %d precheck rejects, %d/%d dp cells",
			s.RefineAborted, s.PrecheckRejects, s.DPCells, s.DPCellsFull)
	}
	return out
}

// Index is a similarity-searchable tree collection with a storage
// lifecycle: the dataset lives in a segmented, epoch-based store
// (internal/segstore) — inserts land in a small mutable memtable, sealed
// segments are immutable with their own pre-built filters, deletes are
// tombstones, and background compaction merges segments back into one.
//
// An Index is safe for concurrent use, and reads don't block writes:
// queries snapshot the segment list and fan the shard engine across
// segments, so a long query never delays an insert and an insert never
// invalidates a running query's view. Dataset ids are assigned
// monotonically and never reused; results across any segment layout are
// identical (see the segment-layout invariance tests).
type Index struct {
	filter  Filter // the configured prototype (also the initial segment's filter)
	cost    editdist.CostModel
	bounded bool // WithBoundedRefine: verify against the live cutoff

	shards int       // WithShards; 0 = pool size
	pool   *workPool // shared worker budget for shard + refine helpers

	store        *segstore.Store
	onCompaction atomic.Pointer[func(CompactionStats)]
}

// ctxCheckEvery is how many cheap filter-bound computations happen between
// context checks. Exact-distance verifications check on every iteration —
// a single verification can cost milliseconds.
const ctxCheckEvery = 1024

// defaultCost is the cost model of indexes built without an explicit one.
func defaultCost() editdist.CostModel { return editdist.UnitCost{} }

// NewIndex builds an index over the dataset, preprocessing the whole
// dataset once under the selected filter. Options pick the filter, the
// cost model, the parallel execution shape, and the storage lifecycle:
//
//	ix := search.NewIndex(ts, search.NewBiBranch())          // filter as option
//	ix := search.NewIndex(ts, search.WithFilter(f),          // interface-typed filter
//	    search.WithShards(4), search.WithRefineWorkers(8),
//	    search.WithMemtableSize(512))
//
// With no filter option (or a nil one) the index degenerates to the
// sequential scan; with no cost option it uses unit edit costs.
func NewIndex(ts []*tree.Tree, opts ...IndexOption) *Index {
	cfg := applyIndexOpts(opts)
	return newIndexFromConfig(ts, cfg)
}

// newIndexFromConfig is NewIndex after option folding (shared with
// LoadIndex).
func newIndexFromConfig(ts []*tree.Tree, cfg indexConfig) *Index {
	if cfg.filter == nil {
		cfg.filter = NewNone()
	}
	ix := &Index{
		filter:  cfg.filter,
		cost:    cfg.cost,
		bounded: cfg.boundedRefine,
		shards:  cfg.shards,
		pool:    newWorkPool(cfg.refineWorkers),
	}
	// Build the prototype before the store: the memtable hook derives its
	// filter from the (then fully resolved) prototype configuration.
	ix.filter.Index(ts)
	ix.store = segstore.New(segstore.Config{
		MemtableSize: cfg.memtableSize,
		CompactAfter: cfg.compactAfter,
	}, ix.segHooks())
	if len(ts) > 0 {
		base := &segstore.Segment{N: len(ts), Payload: &segPayload{trees: ts, filter: ix.filter}}
		ix.store.Bootstrap([]*segstore.Segment{base}, nil, len(ts))
	}
	return ix
}

// NewIndexCost is NewIndex with an explicit cost model for the refine step.
//
// Deprecated: use NewIndex(ts, WithFilter(f), WithCostModel(c)).
func NewIndexCost(ts []*tree.Tree, f Filter, c editdist.CostModel) *Index {
	return NewIndex(ts, WithFilter(f), WithCostModel(c))
}

// Size returns the dataset's id high-water mark: the id the next insert
// will be assigned. Deleted ids stay burned, so Size never decreases and
// is NOT the visible tree count — see Live for that. (Keeping Size as the
// high-water mark is what makes WAL replay idempotent: a log record for
// position p applies exactly when p == Size.)
func (ix *Index) Size() int { return ix.store.NextID() }

// Live returns the number of visible (non-tombstoned) trees.
func (ix *Index) Live() int { return ix.store.Stats().Live }

// Epoch returns the index's logical-state counter: it advances with every
// insert, delete, seal and compaction. Equal epochs imply an identical
// visible dataset, so the epoch is the invalidation key for anything
// cached per dataset state (query caches, prepared EXPLAIN baselines).
func (ix *Index) Epoch() uint64 { return ix.store.Epoch() }

// StoreStats snapshots the storage engine's gauges (segment count,
// memtable fill, tombstones, seal/compaction counters).
func (ix *Index) StoreStats() segstore.Stats { return ix.store.Stats() }

// Insert appends a tree, returning its dataset id. Every filter
// configuration accepts inserts: the tree lands in the memtable segment
// (with an appendable filter of the configured family), and globally
// preprocessed structures are rebuilt per segment at the next compaction.
// The error is always nil and remains in the signature for compatibility.
//
// Insert is safe to call concurrently with queries — it never blocks on
// them. When the insert fills the memtable, the memtable is sealed (O(1))
// and a background compaction starts if the sealed-segment count reached
// the configured threshold.
func (ix *Index) Insert(t *tree.Tree) (int, error) {
	id, sealed := ix.store.Insert(func(id int, mem any) {
		m := mem.(*memPayload)
		m.filter.(Appender).Append(t)
		m.trees = append(m.trees, t)
	})
	if sealed {
		ix.maybeCompact()
	}
	return id, nil
}

// Delete tombstones the tree with the given id so it no longer appears in
// any query result. It reports false when the id was never assigned or is
// already deleted. The tree's storage is reclaimed at the next
// compaction; the id is never reused.
func (ix *Index) Delete(id int) bool { return ix.store.Delete(id) }

// Seal freezes the current memtable into an immutable segment regardless
// of fill (used by tests and deterministic snapshots). It reports whether
// anything was sealed.
func (ix *Index) Seal() bool { return ix.store.Seal() }

// TreeAt returns the tree with dataset id i and true, or nil and false
// when the id was never assigned or the tree is deleted. Ids are stable:
// assigned monotonically and never reused.
func (ix *Index) TreeAt(i int) (*tree.Tree, bool) {
	c := ix.store.Read()
	sg, local, ok := c.Find(i)
	if !ok {
		return nil, false
	}
	return payloadOf(sg).trees[local], true
}

// Tree returns the tree with dataset id i. It panics when the id is
// absent; see TreeAt for the checked variant.
func (ix *Index) Tree(i int) *tree.Tree {
	t, ok := ix.TreeAt(i)
	if !ok {
		panic(fmt.Sprintf("search: no tree %d", i))
	}
	return t
}

// Filter returns the index's configured filter prototype.
func (ix *Index) Filter() Filter { return ix.filter }

// Shards returns the configured shard count (0 means GOMAXPROCS).
func (ix *Index) Shards() int { return ix.shards }

// RefineWorkers returns the size of the index's worker pool.
func (ix *Index) RefineWorkers() int { return ix.pool.size }

// BoundedRefine reports whether the refine stage verifies candidates
// against the live cutoff (the default) or always computes full distances.
func (ix *Index) BoundedRefine() bool { return ix.bounded }

// KNN returns the k nearest neighbors of q by tree edit distance,
// implementing Algorithm 2 over the segmented store: lower bounds are
// computed for every visible tree (sharded across the worker pool, each
// segment bounded by its own filter), candidates are verified in
// ascending bound order, and the scan stops as soon as the next bound
// exceeds the current k-th distance. The result is sorted by ascending
// distance (ties by ascending ID) and is identical for every shard,
// worker and segment configuration.
//
// The scan checks ctx before every exact-distance verification (and
// periodically during the cheap filter pass) and returns ctx.Err() with
// nil results and the stats accumulated so far. A nil error means the
// result is complete and exact.
func (ix *Index) KNN(ctx context.Context, q *tree.Tree, k int, opts ...QueryOption) ([]Result, Stats, error) {
	qc := applyQueryOpts(opts)
	var ex *Explain
	if qc.explain != nil {
		*qc.explain = nil
		ex = &Explain{Op: "knn", K: k}
	}
	res, stats, err := ix.knn(ctx, q, k, &qc, ex)
	if err != nil {
		return nil, stats, err
	}
	if qc.explain != nil {
		ex.finish(ix.filter, stats)
		*qc.explain = ex
	}
	return res, stats, err
}

// Range returns every tree within edit distance tau of q (inclusive),
// sorted by ascending distance then ID. A candidate is verified only when
// its range lower bound does not exceed tau; the lower-bound property makes
// the result exact. Cancellation follows the same contract as KNN.
func (ix *Index) Range(ctx context.Context, q *tree.Tree, tau int, opts ...QueryOption) ([]Result, Stats, error) {
	qc := applyQueryOpts(opts)
	var ex *Explain
	if qc.explain != nil {
		*qc.explain = nil
		ex = &Explain{Op: "range", Tau: tau}
	}
	res, stats, err := ix.rangeq(ctx, q, tau, &qc, ex)
	if err != nil {
		return nil, stats, err
	}
	if qc.explain != nil {
		ex.finish(ix.filter, stats)
		*qc.explain = ex
	}
	return res, stats, err
}

// KNNContext is the old name of KNN.
//
// Deprecated: use KNN.
func (ix *Index) KNNContext(ctx context.Context, q *tree.Tree, k int) ([]Result, Stats, error) {
	return ix.KNN(ctx, q, k)
}

// KNNExplain is KNN plus the per-query filter-quality analysis.
//
// Deprecated: use KNN with WithExplain.
func (ix *Index) KNNExplain(ctx context.Context, q *tree.Tree, k int) ([]Result, Stats, *Explain, error) {
	var ex *Explain
	res, stats, err := ix.KNN(ctx, q, k, WithExplain(&ex))
	return res, stats, ex, err
}

// RangeContext is the old name of Range.
//
// Deprecated: use Range.
func (ix *Index) RangeContext(ctx context.Context, q *tree.Tree, tau int) ([]Result, Stats, error) {
	return ix.Range(ctx, q, tau)
}

// RangeExplain is Range plus the per-query filter-quality analysis.
//
// Deprecated: use Range with WithExplain.
func (ix *Index) RangeExplain(ctx context.Context, q *tree.Tree, tau int) ([]Result, Stats, *Explain, error) {
	var ex *Explain
	res, stats, err := ix.Range(ctx, q, tau, WithExplain(&ex))
	return res, stats, ex, err
}

// maxHeap is a max-heap of Results keyed by (distance, id), holding the
// current k best candidates; the root is the worst of them (the pruning
// key). Breaking distance ties by id makes the heap's final content the
// unique k-minimal (dist, id) set, independent of insertion order — what
// makes k-NN results shard-count invariant.
type maxHeap struct {
	items []Result
}

func (h *maxHeap) Len() int { return len(h.items) }
func (h *maxHeap) Less(i, j int) bool {
	if h.items[i].Dist != h.items[j].Dist {
		return h.items[i].Dist > h.items[j].Dist
	}
	return h.items[i].ID > h.items[j].ID
}
func (h *maxHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *maxHeap) Push(x interface{}) { h.items = append(h.items, x.(Result)) }
func (h *maxHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
func (h *maxHeap) top() Result { return h.items[0] }
