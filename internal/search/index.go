package search

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"treesim/internal/editdist"
	"treesim/internal/obs"
	"treesim/internal/tree"
)

// AttrReporter is an optional Bounder capability: annotate the query's
// filter span with per-stage counters accumulated during the bound pass
// (pivot-screen prunes, VP-tree distance evaluations). The engine calls it
// once, after the filter stage, on the span that timed it.
type AttrReporter interface {
	ReportAttrs(sp *obs.Span)
}

// Result is one answer of a similarity query.
type Result struct {
	ID   int // index of the tree in the dataset
	Dist int // exact tree edit distance to the query
}

// Stats records what one query cost. The headline measure of the paper's
// experiments is AccessedFraction — the share of the dataset whose real
// edit distance had to be computed. Candidates, FalsePositives and
// Tightness are the filter-quality counters behind EXPLAIN and the
// server's rolling metrics; they are cheap enough to compute on every
// query.
type Stats struct {
	Dataset        int           // dataset size |D|
	Candidates     int           // trees the filter could not prune (see Explain.Candidates)
	Verified       int           // trees whose exact edit distance was computed
	Results        int           // result set size
	FalsePositives int           // verified candidates whose exact distance failed the predicate
	FilterTime     time.Duration // time spent computing lower bounds
	RefineTime     time.Duration // time spent computing exact distances
	// Tightness holds sampled BDist/EDist ratios of verified pairs (capped
	// per query), when the filter exposes a branch distance. Each ratio is
	// provably ≤ the filter's Factor; the server feeds them into a rolling
	// histogram.
	Tightness []float64
}

// AccessedFraction returns Verified/Dataset in [0,1].
func (s Stats) AccessedFraction() float64 {
	if s.Dataset == 0 {
		return 0
	}
	return float64(s.Verified) / float64(s.Dataset)
}

// Total returns the end-to-end query time.
func (s Stats) Total() time.Duration { return s.FilterTime + s.RefineTime }

// Add accumulates another query's stats (for averaging over query sets).
// Tightness samples are carried over up to a fixed cap, so aggregates over
// arbitrarily many queries keep bounded memory.
func (s *Stats) Add(o Stats) {
	s.Dataset += o.Dataset
	s.Candidates += o.Candidates
	s.Verified += o.Verified
	s.Results += o.Results
	s.FalsePositives += o.FalsePositives
	s.FilterTime += o.FilterTime
	s.RefineTime += o.RefineTime
	if room := statsTightnessCap - len(s.Tightness); room > 0 {
		if len(o.Tightness) < room {
			room = len(o.Tightness)
		}
		s.Tightness = append(s.Tightness, o.Tightness[:room]...)
	}
}

// FalsePositiveRate returns FalsePositives/Verified in [0,1].
func (s Stats) FalsePositiveRate() float64 {
	if s.Verified == 0 {
		return 0
	}
	return float64(s.FalsePositives) / float64(s.Verified)
}

func (s Stats) String() string {
	return fmt.Sprintf("verified %d/%d (%.2f%%), %d candidates, %d false positives, filter %v, refine %v",
		s.Verified, s.Dataset, 100*s.AccessedFraction(), s.Candidates, s.FalsePositives, s.FilterTime, s.RefineTime)
}

// Index is a similarity-searchable tree collection: the dataset plus the
// preprocessed state of one filter.
//
// An Index is safe for concurrent use: queries run under a shared read
// lock and Insert takes the write lock, so readers never observe a
// half-appended dataset. Long-running queries therefore delay inserts (and
// vice versa); servers that need bounded insert latency should bound query
// time with KNNContext/RangeContext.
type Index struct {
	mu     sync.RWMutex
	trees  []*tree.Tree
	filter Filter
	cost   editdist.CostModel
}

// ctxCheckEvery is how many cheap filter-bound computations happen between
// context checks. Exact-distance verifications check on every iteration —
// a single verification can cost milliseconds.
const ctxCheckEvery = 1024

// defaultCost is the cost model of indexes built without an explicit one.
func defaultCost() editdist.CostModel { return editdist.UnitCost{} }

// NewIndex builds an index over the dataset with the given filter,
// preprocessing the whole dataset once. The filter may be nil, which means
// None (sequential scan). Unit edit costs are used; see NewIndexCost.
func NewIndex(ts []*tree.Tree, f Filter) *Index {
	return NewIndexCost(ts, f, editdist.UnitCost{})
}

// NewIndexCost is NewIndex with an explicit cost model for the refine step.
// The filters' lower bounds are proved for unit costs; a custom model is
// sound for filtering as long as every operation costs at least 1.
func NewIndexCost(ts []*tree.Tree, f Filter, c editdist.CostModel) *Index {
	if f == nil {
		f = NewNone()
	}
	f.Index(ts)
	return &Index{trees: ts, filter: f, cost: c}
}

// Size returns the number of indexed trees.
func (ix *Index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.trees)
}

// Insert appends a tree to the index without rebuilding, returning its
// dataset position. It fails when the index's filter keeps precomputed
// global structures that appending would invalidate (the pivot and
// VP-tree filters); rebuild with NewIndex in that case. Insert is safe to
// call concurrently with queries: it takes the index's write lock, so it
// waits for in-flight queries and appears atomically to later ones.
func (ix *Index) Insert(t *tree.Tree) (int, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ap, ok := ix.filter.(Appender)
	if !ok {
		return -1, fmt.Errorf("search: filter %s does not support incremental inserts", ix.filter.Name())
	}
	ap.Append(t)
	ix.trees = append(ix.trees, t)
	return len(ix.trees) - 1, nil
}

// Appendable reports whether Insert can succeed — the filter supports
// incremental appends. Callers with a durability log check this before
// logging an insert that would then be refused.
func (ix *Index) Appendable() bool {
	_, ok := ix.filter.(Appender)
	return ok
}

// Tree returns the i-th indexed tree and true, or nil and false when i is
// out of range. Dataset positions are stable: trees are only ever
// appended, never removed or reordered.
func (ix *Index) TreeAt(i int) (*tree.Tree, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if i < 0 || i >= len(ix.trees) {
		return nil, false
	}
	return ix.trees[i], true
}

// Tree returns the i-th indexed tree. It panics when i is out of range;
// see TreeAt for the checked variant.
func (ix *Index) Tree(i int) *tree.Tree {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.trees[i]
}

// Filter returns the index's filter.
func (ix *Index) Filter() Filter { return ix.filter }

// KNN returns the k nearest neighbors of q by tree edit distance,
// implementing Algorithm 2: lower bounds are computed for the whole
// dataset, candidates are verified in ascending bound order, and the scan
// stops as soon as the next bound exceeds the current k-th distance. The
// result is sorted by ascending distance (ties by ascending ID).
func (ix *Index) KNN(q *tree.Tree, k int) ([]Result, Stats) {
	res, stats, _ := ix.KNNContext(context.Background(), q, k)
	return res, stats
}

// KNNContext is KNN with cancellation: the scan checks ctx before every
// exact-distance verification (and periodically during the cheap filter
// pass) and returns ctx.Err() with nil results and the stats accumulated
// so far. A nil error means the result is complete and exact.
func (ix *Index) KNNContext(ctx context.Context, q *tree.Tree, k int) ([]Result, Stats, error) {
	return ix.knnContext(ctx, q, k, nil)
}

// KNNExplain is KNNContext plus a per-query filter-quality analysis: the
// candidate count, the lower-bound distribution, false positives and
// tightness samples (see Explain). The results are identical to
// KNNContext's; the analysis costs one extra O(n) pass over the already
// computed bounds.
func (ix *Index) KNNExplain(ctx context.Context, q *tree.Tree, k int) ([]Result, Stats, *Explain, error) {
	ex := &Explain{Op: "knn", K: k}
	res, stats, err := ix.knnContext(ctx, q, k, ex)
	if err != nil {
		return nil, stats, nil, err
	}
	ex.finish(ix.filter, stats)
	return res, stats, ex, nil
}

func (ix *Index) knnContext(ctx context.Context, q *tree.Tree, k int, ex *Explain) ([]Result, Stats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	stats := Stats{Dataset: len(ix.trees)}
	if k <= 0 || len(ix.trees) == 0 {
		return nil, stats, nil
	}
	if k > len(ix.trees) {
		k = len(ix.trees)
	}

	// Stage spans hang off the caller's trace (nil span methods are
	// no-ops, so untraced queries pay one nil check per stage).
	span := obs.FromContext(ctx)

	start := time.Now()
	fspan := span.StartChild("filter")
	b := ix.filter.Query(q)
	order := make([]int, len(ix.trees))
	bounds := make([]int, len(ix.trees))
	for i := range ix.trees {
		if i%ctxCheckEvery == 0 && ctx.Err() != nil {
			stats.FilterTime = time.Since(start)
			fspan.SetBool("canceled", true)
			fspan.End()
			return nil, stats, ctx.Err()
		}
		order[i] = i
		bounds[i] = b.KNNBound(i)
	}
	sort.Slice(order, func(x, y int) bool {
		bx, by := bounds[order[x]], bounds[order[y]]
		if bx != by {
			return bx < by
		}
		return order[x] < order[y]
	})
	stats.FilterTime = time.Since(start)
	fspan.SetInt("candidates", int64(len(order)))
	if ar, ok := b.(AttrReporter); ok {
		ar.ReportAttrs(fspan)
	}
	fspan.End()
	if ex != nil {
		// order is sorted by bound, so the distribution falls out of the
		// nearest-rank positions directly.
		n := len(order)
		ex.Bounds = BoundDist{
			Computed: n,
			Min:      bounds[order[0]],
			P50:      bounds[order[(n-1)/2]],
			P99:      bounds[order[(n-1)*99/100]],
			Max:      bounds[order[n-1]],
		}
	}

	start = time.Now()
	rspan := span.StartChild("refine")
	h := &maxHeap{}
	for _, id := range order {
		if h.Len() == k && bounds[id] > h.top().Dist {
			break
		}
		if ctx.Err() != nil {
			stats.RefineTime = time.Since(start)
			rspan.SetInt("verified", int64(stats.Verified))
			rspan.SetBool("canceled", true)
			rspan.End()
			return nil, stats, ctx.Err()
		}
		d := editdist.DistanceCost(q, ix.trees[id], ix.cost)
		stats.Verified++
		sampleTightness(b, &stats, ex, id, bounds[id], d)
		switch {
		case h.Len() < k:
			heap.Push(h, Result{ID: id, Dist: d})
		case d < h.top().Dist:
			h.items[0] = Result{ID: id, Dist: d}
			heap.Fix(h, 0)
		}
	}
	stats.RefineTime = time.Since(start)

	out := make([]Result, h.Len())
	copy(out, h.items)
	sort.Slice(out, func(x, y int) bool {
		if out[x].Dist != out[y].Dist {
			return out[x].Dist < out[y].Dist
		}
		return out[x].ID < out[y].ID
	})
	stats.Results = len(out)
	if len(out) > 0 {
		// A tree is a candidate when its bound does not exceed the final
		// k-th distance: no verification order could prune it unverified.
		worst := out[len(out)-1].Dist
		stats.Candidates = sort.Search(len(order), func(i int) bool {
			return bounds[order[i]] > worst
		})
	}
	stats.FalsePositives = stats.Verified - len(out)
	rspan.SetInt("verified", int64(stats.Verified))
	rspan.SetInt("results", int64(len(out)))
	rspan.End()
	return out, stats, nil
}

// Range returns every tree within edit distance tau of q (inclusive),
// sorted by ascending distance then ID. A candidate is verified only when
// its range lower bound does not exceed tau; the lower-bound property makes
// the result exact.
func (ix *Index) Range(q *tree.Tree, tau int) ([]Result, Stats) {
	res, stats, _ := ix.RangeContext(context.Background(), q, tau)
	return res, stats
}

// RangeContext is Range with cancellation, under the same contract as
// KNNContext.
func (ix *Index) RangeContext(ctx context.Context, q *tree.Tree, tau int) ([]Result, Stats, error) {
	return ix.rangeContext(ctx, q, tau, nil)
}

// RangeExplain is RangeContext plus the per-query filter-quality analysis
// of Explain, mirroring KNNExplain.
func (ix *Index) RangeExplain(ctx context.Context, q *tree.Tree, tau int) ([]Result, Stats, *Explain, error) {
	ex := &Explain{Op: "range", Tau: tau}
	res, stats, err := ix.rangeContext(ctx, q, tau, ex)
	if err != nil {
		return nil, stats, nil, err
	}
	ex.finish(ix.filter, stats)
	return res, stats, ex, nil
}

func (ix *Index) rangeContext(ctx context.Context, q *tree.Tree, tau int, ex *Explain) ([]Result, Stats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	stats := Stats{Dataset: len(ix.trees)}
	if tau < 0 {
		return nil, stats, nil
	}

	span := obs.FromContext(ctx)
	var col *explainCollector
	if ex != nil {
		col = &explainCollector{bounds: make([]int, 0, len(ix.trees))}
	}

	start := time.Now()
	fspan := span.StartChild("filter")
	b := ix.filter.Query(q)
	var pool []int
	if cl, ok := b.(CandidateLister); ok {
		// The filter can enumerate a sound candidate superset directly
		// (e.g. through a VP-tree in BDist space) without touching every
		// indexed tree.
		vspan := fspan.StartChild("vptree")
		pool = cl.RangeCandidates(tau)
		vspan.SetInt("candidates", int64(len(pool)))
		vspan.End()
	}
	candidates := make([]int, 0, len(ix.trees))
	candBounds := make([]int, 0, len(ix.trees))
	if pool != nil {
		for _, i := range pool {
			rb := b.RangeBound(i, tau)
			col.addBound(rb)
			if rb <= tau {
				candidates = append(candidates, i)
				candBounds = append(candBounds, rb)
			}
		}
	} else {
		for i := range ix.trees {
			if i%ctxCheckEvery == 0 && ctx.Err() != nil {
				stats.FilterTime = time.Since(start)
				fspan.SetBool("canceled", true)
				fspan.End()
				return nil, stats, ctx.Err()
			}
			rb := b.RangeBound(i, tau)
			col.addBound(rb)
			if rb <= tau {
				candidates = append(candidates, i)
				candBounds = append(candBounds, rb)
			}
		}
	}
	stats.FilterTime = time.Since(start)
	stats.Candidates = len(candidates)
	fspan.SetInt("candidates", int64(len(candidates)))
	if ar, ok := b.(AttrReporter); ok {
		ar.ReportAttrs(fspan)
	}
	fspan.End()
	if ex != nil {
		ex.Bounds = col.boundDist()
	}

	start = time.Now()
	rspan := span.StartChild("refine")
	var out []Result
	for j, id := range candidates {
		if ctx.Err() != nil {
			stats.RefineTime = time.Since(start)
			rspan.SetInt("verified", int64(stats.Verified))
			rspan.SetBool("canceled", true)
			rspan.End()
			return nil, stats, ctx.Err()
		}
		d := editdist.DistanceCost(q, ix.trees[id], ix.cost)
		stats.Verified++
		sampleTightness(b, &stats, ex, id, candBounds[j], d)
		if d <= tau {
			out = append(out, Result{ID: id, Dist: d})
		}
	}
	stats.RefineTime = time.Since(start)

	sort.Slice(out, func(x, y int) bool {
		if out[x].Dist != out[y].Dist {
			return out[x].Dist < out[y].Dist
		}
		return out[x].ID < out[y].ID
	})
	stats.Results = len(out)
	stats.FalsePositives = stats.Verified - len(out)
	rspan.SetInt("verified", int64(stats.Verified))
	rspan.SetInt("results", int64(len(out)))
	rspan.End()
	return out, stats, nil
}

// maxHeap is a max-heap of Results keyed by distance, holding the current
// k best candidates; the root is the worst of them (the pruning key).
type maxHeap struct {
	items []Result
}

func (h *maxHeap) Len() int           { return len(h.items) }
func (h *maxHeap) Less(i, j int) bool { return h.items[i].Dist > h.items[j].Dist }
func (h *maxHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *maxHeap) Push(x interface{}) { h.items = append(h.items, x.(Result)) }
func (h *maxHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
func (h *maxHeap) top() Result { return h.items[0] }
