package search

import (
	"context"
	"reflect"
	"testing"

	"treesim/internal/tree"
)

// TestInsertMatchesRebuild: incrementally built indexes answer queries
// identically to an index built over the full dataset at once.
func TestInsertMatchesRebuild(t *testing.T) {
	all := testDataset(60, 51)
	for _, mk := range []func() Filter{
		func() Filter { return NewBiBranch() },
		func() Filter { return NewHisto() },
		func() Filter { return NewSeq() },
		func() Filter { return NewNone() },
	} {
		incr := NewIndex(all[:30], WithFilter(mk()))
		for _, tr := range all[30:] {
			id, err := incr.Insert(tr)
			if err != nil {
				t.Fatal(err)
			}
			if incr.Tree(id) != tr {
				t.Fatal("Insert returned wrong id")
			}
		}
		full := NewIndex(all, WithFilter(mk()))
		for _, q := range []*tree.Tree{all[0], all[45], testDataset(1, 52)[0]} {
			a, _, _ := incr.KNN(context.Background(), q, 4)
			b, _, _ := full.KNN(context.Background(), q, 4)
			if !sameDistances(a, b) {
				t.Fatalf("%s: incremental KNN %v, rebuilt %v", incr.Filter().Name(), dists(a), dists(b))
			}
			ar, _, _ := incr.Range(context.Background(), q, 3)
			br, _, _ := full.Range(context.Background(), q, 3)
			if !reflect.DeepEqual(ar, br) {
				t.Fatalf("%s: incremental Range differs", incr.Filter().Name())
			}
		}
	}
}

// TestInsertAcceptedByGlobalFilters: pivot tables and VP-trees were once
// rejected as not appendable; with segmented storage the inserts land in
// a memtable with its own sound filter, so every configuration accepts
// them — and answers must match a from-scratch rebuild without any
// explicit compaction.
func TestInsertAcceptedByGlobalFilters(t *testing.T) {
	all := testDataset(40, 53)
	for _, mk := range []func() Filter{
		func() Filter { return NewPivotBiBranch() },
		func() Filter { return NewVPBiBranch() },
	} {
		incr := NewIndex(all[:20], WithFilter(mk()), WithCompactionThreshold(-1))
		for i, tr := range all[20:] {
			id, err := incr.Insert(tr)
			if err != nil {
				t.Fatalf("%s rejected insert: %v", incr.Filter().Name(), err)
			}
			if id != 20+i {
				t.Fatalf("%s: insert %d got id %d", incr.Filter().Name(), 20+i, id)
			}
		}
		full := NewIndex(all, WithFilter(mk()))
		for _, q := range []*tree.Tree{all[0], all[35], testDataset(1, 54)[0]} {
			a, _, _ := incr.KNN(context.Background(), q, 4)
			b, _, _ := full.KNN(context.Background(), q, 4)
			if !sameDistances(a, b) {
				t.Fatalf("%s: incremental KNN %v, rebuilt %v", incr.Filter().Name(), dists(a), dists(b))
			}
			ar, _, _ := incr.Range(context.Background(), q, 3)
			br, _, _ := full.Range(context.Background(), q, 3)
			if !reflect.DeepEqual(ar, br) {
				t.Fatalf("%s: incremental Range differs", incr.Filter().Name())
			}
		}
	}
}

// TestInsertFindable: a newly inserted tree is immediately retrievable as
// its own nearest neighbor.
func TestInsertFindable(t *testing.T) {
	ix := NewIndex(testDataset(25, 55), NewBiBranch())
	novel := tree.MustParse("zz(yy(xx),ww,vv(uu,tt))")
	id, err := ix.Insert(novel)
	if err != nil {
		t.Fatal(err)
	}
	res, _, _ := ix.KNN(context.Background(), novel, 1)
	if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
		t.Fatalf("inserted tree not found: %v", res)
	}
}
