package search

import (
	"context"

	"treesim/internal/editdist"
	"treesim/internal/obs"
)

// Functional options for the index and query surface. NewIndex takes
// IndexOptions; KNN and Range take QueryOptions. Concrete filter values
// (*BiBranch, *Histo, ...) are themselves IndexOptions, so the common case
// reads NewIndex(ts, NewBiBranch()) with no wrapper; interface-typed
// filters go through WithFilter.

// indexConfig collects what the index options select.
type indexConfig struct {
	filter        Filter
	cost          editdist.CostModel
	boundedRefine bool
	shards        int
	refineWorkers int
	memtableSize  int
	compactAfter  int
}

// IndexOption configures NewIndex and LoadIndex.
type IndexOption interface {
	applyIndex(*indexConfig)
}

// indexOption adapts a plain function to IndexOption.
type indexOption func(*indexConfig)

func (f indexOption) applyIndex(c *indexConfig) { f(c) }

// applyIndexOpts folds the options over the defaults. Nil options are
// skipped, so NewIndex(ts, nil) keeps its historical meaning: no filter,
// i.e. the sequential scan.
func applyIndexOpts(opts []IndexOption) indexConfig {
	cfg := indexConfig{cost: defaultCost(), boundedRefine: true}
	for _, o := range opts {
		if o == nil {
			continue
		}
		o.applyIndex(&cfg)
	}
	return cfg
}

// WithFilter selects the index's filter (nil means None, the sequential
// scan). Concrete filter values can also be passed directly as options.
func WithFilter(f Filter) IndexOption {
	return indexOption(func(c *indexConfig) { c.filter = f })
}

// WithCostModel sets the refine stage's edit cost model. The filters'
// lower bounds are proved for unit costs; a custom model is sound for
// filtering as long as every operation costs at least 1.
func WithCostModel(m editdist.CostModel) IndexOption {
	return indexOption(func(c *indexConfig) {
		if m != nil {
			c.cost = m
		}
	})
}

// WithBoundedRefine selects how the refine stage verifies candidates.
// Enabled (the default), every verification runs against the live cutoff —
// τ for range queries, the running k-th-best for k-NN — through
// editdist.DistanceWithin: O(n) pre-checks, a diagonal DP band and early
// abandoning prove most false positives too far without paying the full
// O(n²·h²) program. Results are identical either way (see the
// bounded-refine invariance tests); only Stats' bounded-verification
// breakdown and the refine latency change. Disabled, every verification
// computes the full distance — the configuration benchserver's
// bounded_refine dimension compares against.
func WithBoundedRefine(enabled bool) IndexOption {
	return indexOption(func(c *indexConfig) { c.boundedRefine = enabled })
}

// WithShards sets how many dataset shards a single query's filter stage
// fans out over. 0 (the default) means GOMAXPROCS at query time; 1 forces
// the sequential path. The shard count never changes query results — see
// the shard-count invariance tests.
func WithShards(s int) IndexOption {
	return indexOption(func(c *indexConfig) { c.shards = s })
}

// WithRefineWorkers bounds the index-wide worker pool that queries borrow
// goroutines from: refine-stage verifications and filter-shard helpers
// across all concurrent queries share it, so one heavy query cannot
// monopolize the machine. 0 (the default) means GOMAXPROCS.
func WithRefineWorkers(n int) IndexOption {
	return indexOption(func(c *indexConfig) { c.refineWorkers = n })
}

// WithMemtableSize sets how many inserts the mutable memtable segment
// accepts before it is sealed into an immutable segment (0 means the
// store default, segstore.DefaultMemtableSize). Smaller memtables bound
// the per-query cost of the weaker memtable filter at the price of more
// segments between compactions.
func WithMemtableSize(n int) IndexOption {
	return indexOption(func(c *indexConfig) { c.memtableSize = n })
}

// WithCompactionThreshold sets how many sealed segments accumulate before
// a seal triggers a background compaction (0 means the store default,
// segstore.DefaultCompactAfter; negative disables automatic compaction —
// call Index.Compact explicitly).
func WithCompactionThreshold(n int) IndexOption {
	return indexOption(func(c *indexConfig) { c.compactAfter = n })
}

// The concrete filters are their own index options.

func (f *BiBranch) applyIndex(c *indexConfig)      { c.filter = f }
func (f *Histo) applyIndex(c *indexConfig)         { c.filter = f }
func (f *Seq) applyIndex(c *indexConfig)           { c.filter = f }
func (f *None) applyIndex(c *indexConfig)          { c.filter = f }
func (f *PivotBiBranch) applyIndex(c *indexConfig) { c.filter = f }
func (f *VPBiBranch) applyIndex(c *indexConfig)    { c.filter = f }

// queryConfig collects what the query options select.
type queryConfig struct {
	explain **Explain
	span    *obs.Span
}

// QueryOption configures one KNN or Range call.
type QueryOption interface {
	applyQuery(*queryConfig)
}

// queryOption adapts a plain function to QueryOption.
type queryOption func(*queryConfig)

func (f queryOption) applyQuery(c *queryConfig) { f(c) }

// applyQueryOpts folds the options, skipping nils.
func applyQueryOpts(opts []QueryOption) queryConfig {
	var cfg queryConfig
	for _, o := range opts {
		if o == nil {
			continue
		}
		o.applyQuery(&cfg)
	}
	return cfg
}

// WithExplain asks the query to produce its per-query filter-quality
// analysis into *dst. *dst is set only when the query completes (nil on
// error); the results are identical with or without the option — the
// analysis costs one extra O(n) pass over already-computed bounds.
func WithExplain(dst **Explain) QueryOption {
	return queryOption(func(c *queryConfig) { c.explain = dst })
}

// WithTrace hangs the query's stage spans (filter, refine, per-shard
// children) off sp instead of the span carried by the context.
func WithTrace(sp *obs.Span) QueryOption {
	return queryOption(func(c *queryConfig) { c.span = sp })
}

// trace resolves the span the query's stage children attach to.
func (c *queryConfig) trace(ctx context.Context) *obs.Span {
	if c.span != nil {
		return c.span
	}
	return obs.FromContext(ctx)
}
