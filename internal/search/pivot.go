package search

import (
	"treesim/internal/branch"
	"treesim/internal/obs"
	"treesim/internal/tree"
)

// PivotBiBranch is a two-stage cascade over the BiBranch filter that
// exploits the pseudometric structure of the binary branch distance
// (Section 3.2: BDist satisfies the triangle inequality). For any pivot
// tree p,
//
//	|BDist(q,p) − BDist(t,p)| ≤ BDist(q,t) ≤ Factor(q)·EDist(q,t)
//
// so with per-tree pivot distances precomputed at index time, a per-pair
// lower bound costs O(#pivots) integer operations — no vector merge at
// all. Candidates that survive the pivot stage fall through to the full
// positional bound. The cascade never weakens the bound, so search results
// stay exact; it trades a little index time and memory (#pivots ints per
// tree) for cheaper filtering of clearly-distant trees.
//
// Pivots are chosen by farthest-first traversal in BDist space, which
// spreads them toward the dataset's extremes.
type PivotBiBranch struct {
	// Q is the branch level (0 means 2).
	Q int
	// Pivots is the number of pivots (0 means 8).
	Pivots int
	// Positional selects the stage-two bound (SearchLBound when true,
	// plain ceil(BDist/Factor) otherwise).
	Positional bool

	inner      *BiBranch
	pivots     []int   // dataset indexes of the chosen pivots
	pivotDists [][]int // pivotDists[p][i] = BDist(pivot p, tree i)
}

// NewPivotBiBranch returns the cascade with default settings (q=2, 8
// pivots, positional stage two).
func NewPivotBiBranch() *PivotBiBranch {
	return &PivotBiBranch{Positional: true}
}

// Name implements Filter.
func (f *PivotBiBranch) Name() string { return "BiBranch-pivot" }

// Fresh implements Fresher: the same cascade configuration over a new
// dataset. The segmented store rebuilds the pivot table per segment at
// compaction, which is what makes this filter appendable.
func (f *PivotBiBranch) Fresh() Filter {
	return &PivotBiBranch{Q: f.Q, Pivots: f.Pivots, Positional: f.Positional}
}

// Factor implements FactorReporter.
func (f *PivotBiBranch) Factor() int {
	q := f.Q
	if q == 0 {
		q = branch.MinQ
	}
	return branch.Factor(q)
}

// Index implements Filter.
func (f *PivotBiBranch) Index(ts []*tree.Tree) {
	f.inner = &BiBranch{Q: f.Q, Positional: f.Positional}
	f.inner.Index(ts)

	nPivots := f.Pivots
	if nPivots <= 0 {
		nPivots = 8
	}
	if nPivots > len(ts) {
		nPivots = len(ts)
	}
	profiles := f.inner.profiles
	f.pivots = f.pivots[:0]
	f.pivotDists = make([][]int, 0, nPivots)
	if len(ts) == 0 {
		return
	}

	// Farthest-first traversal: start from tree 0, then repeatedly pick
	// the tree farthest (in BDist) from all chosen pivots.
	minDist := make([]int, len(ts)) // distance to nearest chosen pivot
	pivot := 0
	for p := 0; p < nPivots; p++ {
		// Pivot selection is sequential (each pivot depends on the last),
		// but a pivot's distance row parallelizes across the dataset.
		row := make([]int, len(ts))
		forEach(len(ts), 0, func(i int) {
			row[i] = branch.BDist(profiles[pivot], profiles[i])
		})
		f.pivots = append(f.pivots, pivot)
		f.pivotDists = append(f.pivotDists, row)
		next, far := 0, -1
		for i := range ts {
			if p == 0 || row[i] < minDist[i] {
				minDist[i] = row[i]
			}
			if minDist[i] > far {
				far, next = minDist[i], i
			}
		}
		if far == 0 {
			break // every tree coincides with a pivot in BDist space
		}
		pivot = next
	}
}

// Query implements Filter.
func (f *PivotBiBranch) Query(q *tree.Tree) Bounder {
	qp := f.inner.space.Profile(q)
	qDist := make([]int, len(f.pivots))
	for p, idx := range f.pivots {
		qDist[p] = branch.BDist(qp, f.inner.profiles[idx])
	}
	fac := branch.Factor(f.inner.space.Q())
	return &pivotBounder{f: f, qp: qp, qDist: qDist, factor: fac}
}

type pivotBounder struct {
	f      *PivotBiBranch
	qp     *branch.Profile
	qDist  []int
	factor int

	// Per-query stage counters for the trace layer: how often the cheap
	// pivot screen settled the bound alone versus falling through to the
	// stage-two vector merge. A bounder serves one query on one goroutine,
	// so plain ints suffice.
	pivotPruned int
	stage2Evals int
}

// ReportAttrs implements AttrReporter: the cascade's effectiveness for
// this query, attached to its filter span.
func (b *pivotBounder) ReportAttrs(sp *obs.Span) {
	sp.SetInt("pivots", int64(len(b.qDist)))
	sp.SetInt("pivot_pruned", int64(b.pivotPruned))
	sp.SetInt("stage2_evals", int64(b.stage2Evals))
}

// BDist implements BDister: the raw branch distance to tree i (a stage-two
// vector merge; used only for EXPLAIN tightness sampling).
func (b *pivotBounder) BDist(i int) int {
	return branch.BDist(b.qp, b.f.inner.profiles[i])
}

// pivotBound returns ceil(max_p |BDist(q,p) − BDist(t_i,p)| / Factor(q)).
func (b *pivotBounder) pivotBound(i int) int {
	best := 0
	for p, qd := range b.qDist {
		d := qd - b.f.pivotDists[p][i]
		if d < 0 {
			d = -d
		}
		if d > best {
			best = d
		}
	}
	return (best + b.factor - 1) / b.factor
}

func (b *pivotBounder) stage2(i int) int {
	if b.f.inner.Positional {
		return branch.SearchLBound(b.qp, b.f.inner.profiles[i])
	}
	return branch.BDistLowerBound(b.qp, b.f.inner.profiles[i])
}

// KNNBound combines both stages: the pivot bound is free-ish, and stage
// two only ever tightens it.
func (b *pivotBounder) KNNBound(i int) int {
	pb := b.pivotBound(i)
	b.stage2Evals++
	if s2 := b.stage2(i); s2 > pb {
		return s2
	}
	return pb
}

// RangeBound prunes on the pivot bound alone when it already exceeds tau,
// avoiding the vector merge entirely; otherwise it falls through to the
// full bound.
func (b *pivotBounder) RangeBound(i, tau int) int {
	if pb := b.pivotBound(i); pb > tau {
		b.pivotPruned++
		return pb
	}
	b.stage2Evals++
	if b.f.inner.Positional {
		return branch.RangeLowerBound(b.qp, b.f.inner.profiles[i], tau)
	}
	return branch.BDistLowerBound(b.qp, b.f.inner.profiles[i])
}
