package search

import (
	"context"
	"reflect"
	"testing"

	"treesim/internal/tree"
)

func TestPivotCompleteness(t *testing.T) {
	ts := testDataset(80, 71)
	seq := NewIndex(ts, NewNone())
	for _, f := range []*PivotBiBranch{
		NewPivotBiBranch(),
		{Q: 2, Pivots: 1, Positional: true},
		{Q: 2, Pivots: 16, Positional: false},
		{Q: 3, Pivots: 4, Positional: true},
	} {
		ix := NewIndex(ts, WithFilter(f))
		for _, q := range []*tree.Tree{ts[0], ts[40], testDataset(1, 99)[0]} {
			want, _, _ := seq.KNN(context.Background(), q, 5)
			got, _, _ := ix.KNN(context.Background(), q, 5)
			if !sameDistances(got, want) {
				t.Fatalf("pivot KNN differs: %v vs %v", dists(got), dists(want))
			}
			wantR, _, _ := seq.Range(context.Background(), q, 4)
			gotR, _, _ := ix.Range(context.Background(), q, 4)
			if !reflect.DeepEqual(gotR, wantR) {
				t.Fatalf("pivot Range differs: %v vs %v", gotR, wantR)
			}
		}
	}
}

// TestPivotBoundSound: the stage-one pivot bound alone never exceeds the
// true edit distance (soundness of the BDist triangle-inequality
// argument), and the combined bound dominates it.
func TestPivotBoundSound(t *testing.T) {
	ts := testDataset(50, 72)
	f := NewPivotBiBranch()
	ix := NewIndex(ts, WithFilter(f))
	q := testDataset(1, 73)[0]
	b := f.Query(q).(*pivotBounder)
	exact, _, _ := NewIndex(ts, NewNone()).KNN(context.Background(), q, ix.Size())
	distByID := make(map[int]int, len(exact))
	for _, r := range exact {
		distByID[r.ID] = r.Dist
	}
	for i := 0; i < ix.Size(); i++ {
		pb := b.pivotBound(i)
		if pb > distByID[i] {
			t.Fatalf("pivot bound %d exceeds exact distance %d for tree %d",
				pb, distByID[i], i)
		}
		if pb > b.KNNBound(i) {
			t.Fatalf("pivot bound %d above combined bound %d", pb, b.KNNBound(i))
		}
	}
}

func TestPivotSelectionSpread(t *testing.T) {
	ts := testDataset(60, 74)
	f := &PivotBiBranch{Pivots: 6}
	f.Index(ts)
	if len(f.pivots) == 0 || len(f.pivots) > 6 {
		t.Fatalf("chose %d pivots", len(f.pivots))
	}
	seen := map[int]bool{}
	for _, p := range f.pivots {
		if seen[p] {
			t.Fatalf("pivot %d chosen twice", p)
		}
		seen[p] = true
	}
	// Row p must be the distances from pivot p (zero at the pivot).
	for p, idx := range f.pivots {
		if f.pivotDists[p][idx] != 0 {
			t.Errorf("pivot %d self-distance %d", p, f.pivotDists[p][idx])
		}
	}
}

func TestPivotMoreThanDataset(t *testing.T) {
	ts := testDataset(3, 75)
	f := &PivotBiBranch{Pivots: 50}
	ix := NewIndex(ts, WithFilter(f))
	res, _, _ := ix.KNN(context.Background(), ts[0], 2)
	if len(res) != 2 || res[0].Dist != 0 {
		t.Fatalf("tiny dataset with excess pivots broken: %v", res)
	}
}

func TestPivotEmptyDataset(t *testing.T) {
	f := NewPivotBiBranch()
	ix := NewIndex(nil, WithFilter(f))
	if res, _, _ := ix.KNN(context.Background(), tree.MustParse("a"), 1); res != nil {
		t.Error("empty index returned results")
	}
}
