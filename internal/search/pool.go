package search

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workPool bounds how many extra goroutines an index lends its queries.
// The pool is shared index-wide: filter-shard helpers and refine-stage
// verifiers of every in-flight query draw from the same budget, so a
// heavy query degrades to fewer helpers instead of starving the rest of
// the process (or the server's admission semaphore).
//
// The calling goroutine always participates in its own work, so running
// out of pool capacity never blocks or deadlocks — execution just falls
// back toward sequential.
type workPool struct {
	size int
	sem  chan struct{} // one token per helper goroutine (size-1 of them)
}

// newWorkPool sizes a pool; size <= 0 means GOMAXPROCS. A pool of size 1
// lends no helpers: every query runs fully on its own goroutine.
func newWorkPool(size int) *workPool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	if size < 1 {
		size = 1
	}
	return &workPool{size: size, sem: make(chan struct{}, size-1)}
}

// run executes fn(t) for every task t in [0, n), handing tasks out in
// ascending order through a shared cursor. The caller works the cursor
// itself and up to n-1 helper goroutines join it, each gated by a
// non-blocking pool-token acquire — when the pool is busy the caller
// simply does a larger share. run returns only after every started task
// finished. A nil pool runs everything inline.
func (p *workPool) run(n int, fn func(task int)) {
	var next atomic.Int64
	next.Store(-1)
	work := func() {
		for {
			t := next.Add(1)
			if t >= int64(n) {
				return
			}
			fn(int(t))
		}
	}
	if p == nil {
		work()
		return
	}
	var wg sync.WaitGroup
spawn:
	for i := 1; i < n; i++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.sem }()
				work()
			}()
		default:
			break spawn
		}
	}
	work()
	wg.Wait()
}
