package search

import (
	"container/heap"
	"context"
	"reflect"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/editdist"
	"treesim/internal/tree"
)

func testDataset(n int, seed int64) []*tree.Tree {
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 14, SizeStd: 4, Labels: 5, Decay: 0.1}
	return datagen.New(spec, seed).Dataset(n, 5)
}

func allFilters() []Filter {
	return []Filter{
		NewBiBranch(),
		&BiBranch{Q: 2, Positional: false},
		&BiBranch{Q: 3, Positional: true},
		NewHisto(),
		NewSeq(),
		NewNone(),
	}
}

// TestKNNCompleteness: every filter returns exactly the sequential-scan
// k-NN answer (same distance multiset; the k-th place may tie arbitrarily).
func TestKNNCompleteness(t *testing.T) {
	ts := testDataset(60, 3)
	queries := []*tree.Tree{ts[0], ts[17], ts[59], testDataset(1, 77)[0]}
	base := NewIndex(ts, NewNone())
	for _, k := range []int{1, 3, 7} {
		for _, q := range queries {
			want, wantStats, _ := base.KNN(context.Background(), q, k)
			if wantStats.Verified != len(ts) {
				t.Fatalf("sequential scan verified %d, want all %d", wantStats.Verified, len(ts))
			}
			for _, f := range allFilters() {
				ix := NewIndex(ts, WithFilter(f))
				got, stats, _ := ix.KNN(context.Background(), q, k)
				if !sameDistances(got, want) {
					t.Fatalf("filter %s k=%d: distances %v, want %v",
						f.Name(), k, dists(got), dists(want))
				}
				if stats.Verified > len(ts) {
					t.Fatalf("filter %s verified more than the dataset", f.Name())
				}
			}
		}
	}
}

// TestRangeCompleteness: range queries return identical result sets for all
// filters (IDs and distances, not just distances).
func TestRangeCompleteness(t *testing.T) {
	ts := testDataset(60, 4)
	queries := []*tree.Tree{ts[2], ts[31], testDataset(1, 88)[0]}
	base := NewIndex(ts, NewNone())
	for _, tau := range []int{0, 1, 3, 6, 12} {
		for _, q := range queries {
			want, _, _ := base.Range(context.Background(), q, tau)
			for _, f := range allFilters() {
				got, stats, _ := NewIndex(ts, WithFilter(f)).Range(context.Background(), q, tau)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("filter %s tau=%d: results %v, want %v",
						f.Name(), tau, got, want)
				}
				if stats.Verified < len(got) {
					t.Fatalf("filter %s verified %d but returned %d results",
						f.Name(), stats.Verified, len(got))
				}
			}
		}
	}
}

// TestBiBranchPrunes: on a clustered dataset the BiBranch filter verifies
// strictly less than the sequential scan for selective queries.
func TestBiBranchPrunes(t *testing.T) {
	ts := testDataset(100, 5)
	q := ts[10]
	_, seq, _ := NewIndex(ts, NewNone()).KNN(context.Background(), q, 3)
	_, bib, _ := NewIndex(ts, NewBiBranch()).KNN(context.Background(), q, 3)
	if bib.Verified >= seq.Verified {
		t.Errorf("BiBranch verified %d, sequential %d — no pruning", bib.Verified, seq.Verified)
	}
	_, seqR, _ := NewIndex(ts, NewNone()).Range(context.Background(), q, 2)
	_, bibR, _ := NewIndex(ts, NewBiBranch()).Range(context.Background(), q, 2)
	if bibR.Verified >= seqR.Verified {
		t.Errorf("range: BiBranch verified %d, sequential %d", bibR.Verified, seqR.Verified)
	}
}

func TestKNNSelfQuery(t *testing.T) {
	ts := testDataset(30, 6)
	ix := NewIndex(ts, NewBiBranch())
	res, _, _ := ix.KNN(context.Background(), ts[7], 1)
	if len(res) != 1 || res[0].Dist != 0 {
		t.Fatalf("1-NN of a dataset member should be itself at distance 0, got %v", res)
	}
}

func TestKNNEdgeCases(t *testing.T) {
	ts := testDataset(10, 7)
	ix := NewIndex(ts, NewBiBranch())
	q := ts[0]
	if res, _, _ := ix.KNN(context.Background(), q, 0); res != nil {
		t.Error("k=0 should return nothing")
	}
	if res, _, _ := ix.KNN(context.Background(), q, 100); len(res) != len(ts) {
		t.Errorf("k>|D| should return all %d, got %d", len(ts), len(res))
	}
	empty := NewIndex(nil, NewBiBranch())
	if res, _, _ := empty.KNN(context.Background(), q, 3); res != nil {
		t.Error("empty index should return nothing")
	}
}

func TestRangeEdgeCases(t *testing.T) {
	ts := testDataset(10, 8)
	ix := NewIndex(ts, NewBiBranch())
	if res, _, _ := ix.Range(context.Background(), ts[0], -1); res != nil {
		t.Error("negative range should return nothing")
	}
	res, _, _ := ix.Range(context.Background(), ts[0], 0)
	found := false
	for _, r := range res {
		if r.ID == 0 {
			found = true
		}
		if r.Dist != 0 {
			t.Errorf("tau=0 returned distance %d", r.Dist)
		}
	}
	if !found {
		t.Error("tau=0 must return the query itself")
	}
}

func TestResultsSorted(t *testing.T) {
	ts := testDataset(50, 9)
	ix := NewIndex(ts, NewBiBranch())
	res, _, _ := ix.KNN(context.Background(), ts[3], 10)
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("k-NN results not sorted by distance")
		}
	}
	resR, _, _ := ix.Range(context.Background(), ts[3], 8)
	for i := 1; i < len(resR); i++ {
		if resR[i].Dist < resR[i-1].Dist {
			t.Fatal("range results not sorted by distance")
		}
	}
}

func TestStats(t *testing.T) {
	ts := testDataset(40, 10)
	ix := NewIndex(ts, NewBiBranch())
	_, st, _ := ix.KNN(context.Background(), ts[0], 3)
	if st.Dataset != 40 {
		t.Errorf("Dataset = %d", st.Dataset)
	}
	if st.AccessedFraction() <= 0 || st.AccessedFraction() > 1 {
		t.Errorf("AccessedFraction = %f", st.AccessedFraction())
	}
	if st.Results != 3 {
		t.Errorf("Results = %d", st.Results)
	}
	var agg Stats
	agg.Add(st)
	agg.Add(st)
	if agg.Verified != 2*st.Verified || agg.Dataset != 80 {
		t.Error("Stats.Add broken")
	}
	if st.String() == "" || st.Total() < 0 {
		t.Error("Stats stringer/total broken")
	}
	if (Stats{}).AccessedFraction() != 0 {
		t.Error("empty stats fraction should be 0")
	}
}

// TestCustomCostModel: filtering stays complete under a cost model where
// every operation costs at least 1.
func TestCustomCostModel(t *testing.T) {
	ts := testDataset(30, 11)
	c := costModel{}
	seq := NewIndexCost(ts, NewNone(), c)
	bib := NewIndexCost(ts, NewBiBranch(), c)
	q := ts[5]
	want, _, _ := seq.Range(context.Background(), q, 6)
	got, _, _ := bib.Range(context.Background(), q, 6)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("custom-cost range results differ: %v vs %v", got, want)
	}
}

// costModel charges 2 for relabels and deletes, 1 for inserts — all ≥ 1,
// so unit-cost lower bounds remain valid.
type costModel struct{}

func (costModel) Relabel(a, b string) int {
	if a == b {
		return 0
	}
	return 2
}
func (costModel) Insert(string) int { return 1 }
func (costModel) Delete(string) int { return 2 }

func TestNilFilterDefaultsToSequential(t *testing.T) {
	ts := testDataset(10, 12)
	ix := NewIndex(ts, nil)
	if ix.Filter().Name() != "Sequential" {
		t.Errorf("nil filter resolved to %q", ix.Filter().Name())
	}
	if ix.Size() != 10 || ix.Tree(3) != ts[3] {
		t.Error("accessors broken")
	}
}

func sameDistances(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

func dists(rs []Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Dist
	}
	return out
}

func TestFilterNames(t *testing.T) {
	names := map[Filter]string{
		NewBiBranch():                      "BiBranch",
		&BiBranch{Q: 2, Positional: false}: "BiBranch-nopos",
		NewHisto():                         "Histo",
		&Histo{Unbounded: true}:            "Histo-unbounded",
		NewSeq():                           "Seq",
		NewNone():                          "Sequential",
		NewPivotBiBranch():                 "BiBranch-pivot",
		NewVPBiBranch():                    "BiBranch-vptree",
	}
	for f, want := range names {
		if f.Name() != want {
			t.Errorf("Name = %q, want %q", f.Name(), want)
		}
	}
}

// TestBiBranchDefaultQ: the zero value of Q selects the paper's two-level
// branches.
func TestBiBranchDefaultQ(t *testing.T) {
	f := &BiBranch{Positional: true}
	f.Index(testDataset(5, 30))
	if f.Space().Q() != 2 {
		t.Errorf("default Q resolved to %d", f.Space().Q())
	}
	if len(f.Profiles()) != 5 {
		t.Errorf("Profiles() returned %d", len(f.Profiles()))
	}
}

// TestHistoUnboundedCompleteness: the unbounded histogram variant is also
// a complete filter.
func TestHistoUnboundedCompleteness(t *testing.T) {
	ts := testDataset(40, 31)
	want, _, _ := NewIndex(ts, NewNone()).Range(context.Background(), ts[3], 4)
	got, _, _ := NewIndex(ts, &Histo{Unbounded: true}).Range(context.Background(), ts[3], 4)
	if !reflect.DeepEqual(got, want) {
		t.Error("unbounded Histo lost results")
	}
}

func TestMaxHeapInterface(t *testing.T) {
	h := &maxHeap{}
	heap.Push(h, Result{ID: 1, Dist: 5})
	heap.Push(h, Result{ID: 2, Dist: 9})
	heap.Push(h, Result{ID: 3, Dist: 1})
	if h.top().Dist != 9 {
		t.Errorf("top = %d, want 9", h.top().Dist)
	}
	if got := heap.Pop(h).(Result); got.Dist != 9 {
		t.Errorf("Pop = %d, want 9", got.Dist)
	}
	if h.top().Dist != 5 {
		t.Errorf("after pop top = %d, want 5", h.top().Dist)
	}
}

// TestKNNAgainstBruteforce cross-checks distances returned by KNN against
// direct edit distance computation.
func TestKNNDistancesExact(t *testing.T) {
	ts := testDataset(25, 13)
	ix := NewIndex(ts, NewBiBranch())
	q := testDataset(1, 14)[0]
	res, _, _ := ix.KNN(context.Background(), q, 5)
	for _, r := range res {
		if want := editdist.Distance(q, ts[r.ID]); r.Dist != want {
			t.Errorf("result %d: distance %d, want %d", r.ID, r.Dist, want)
		}
	}
}
