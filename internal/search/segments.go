package search

import (
	"time"

	"treesim/internal/obs"
	"treesim/internal/segstore"
	"treesim/internal/tree"
)

// The glue between the search layer and the segmented store: what a
// segment payload is, how the memtable grows and freezes, and how
// compaction rebuilds the index's configured filter per segment.
//
// Every sealed segment carries its own trees and its own fully-built
// filter over them. The memtable instead carries an appendable filter
// (the configured one when it supports Append, a plain BiBranch of the
// same level for the pivot/VP cascades, the sequential scan as the
// sound fallback) — so an insert is one profile append, and the
// expensive global preprocessing of pivot tables and VP-trees happens
// only at compaction, off the write path. Bounds from differently-built
// filters are all sound lower bounds, so mixing them across segments
// never costs exactness, only a little filter power until the next
// compaction.

// segPayload is the payload of a sealed (immutable) segment.
type segPayload struct {
	trees  []*tree.Tree
	filter Filter
}

// memPayload is the payload of the mutable memtable. It is mutated only
// under the store's mutation lock; snapshots freeze prefix slices of it.
type memPayload struct {
	trees  []*tree.Tree
	filter Filter // always an Appender and a snapshotter
}

// memFilterFor picks the memtable filter for a configured prototype.
func memFilterFor(proto Filter) Filter {
	switch p := proto.(type) {
	case *PivotBiBranch:
		return &BiBranch{Q: p.Q, Positional: p.Positional}
	case *VPBiBranch:
		return &BiBranch{Q: p.Q, Positional: p.Positional}
	}
	if fr, ok := proto.(Fresher); ok {
		nf := fr.Fresh()
		_, appends := nf.(Appender)
		_, snaps := nf.(snapshotter)
		if appends && snaps {
			return nf
		}
	}
	// A filter we cannot append into or freeze: the memtable degrades to
	// the unfiltered scan (bound 0 is always sound); compaction restores
	// full filtering.
	return NewNone()
}

// segHooks builds the store hooks over the index's filter configuration.
func (ix *Index) segHooks() segstore.Hooks {
	return segstore.Hooks{
		NewMem: func(base int) any {
			f := memFilterFor(ix.filter)
			f.Index(nil)
			return &memPayload{filter: f}
		},
		Snapshot: func(mem any, n int) any {
			m := mem.(*memPayload)
			return &segPayload{
				trees:  m.trees[:n:n],
				filter: m.filter.(snapshotter).snapshotAt(n),
			}
		},
	}
}

// payloadOf returns a segment's payload (sealed segments and memtable
// snapshots both carry *segPayload).
func payloadOf(sg *segstore.Segment) *segPayload { return sg.Payload.(*segPayload) }

// CompactionStats describes one finished compaction for observability
// hooks.
type CompactionStats struct {
	// Inputs is the number of segments merged.
	Inputs int
	// InputTrees is the entry count across them, tombstoned included.
	InputTrees int
	// Output is the surviving entry count of the merged segment.
	Output int
	// Duration is the wall time of the merge and publish.
	Duration time.Duration
}

// Compact merges every sealed segment (the memtable is untouched) into
// one, rebuilding the configured filter over the survivors with the
// parallel index build and dropping tombstoned entries. It reports false
// when there was nothing to do, another compaction was in flight, or the
// filter cannot be rebuilt (no Fresher). Safe to call concurrently with
// everything else; queries switch to the merged segment atomically.
func (ix *Index) Compact() bool {
	fr, ok := ix.filter.(Fresher)
	if !ok {
		return false
	}
	var cs CompactionStats
	start := time.Now()
	done := ix.store.Compact(func(segs []*segstore.Segment, tombs *segstore.Tombstones) *segstore.Segment {
		var ids []int
		var trees []*tree.Tree
		for _, sg := range segs {
			p := payloadOf(sg)
			cs.InputTrees += sg.Len()
			for i := 0; i < sg.Len(); i++ {
				if id := sg.ID(i); !tombs.Has(id) {
					ids = append(ids, id)
					trees = append(trees, p.trees[i])
				}
			}
		}
		cs.Inputs = len(segs)
		cs.Output = len(ids)
		if len(ids) == 0 {
			return nil
		}
		nf := fr.Fresh()
		nf.Index(trees) // the parallel build is the merge kernel
		out := &segstore.Segment{N: len(ids), IDs: ids, Payload: &segPayload{trees: trees, filter: nf}}
		if ids[len(ids)-1]-ids[0] == len(ids)-1 {
			// No holes: the compact contiguous representation.
			out.Base, out.IDs = ids[0], nil
		}
		return out
	})
	if done {
		cs.Duration = time.Since(start)
		if fn := ix.onCompaction.Load(); fn != nil {
			(*fn)(cs)
		}
	}
	return done
}

// maybeCompact runs a background compaction when the store's advisory
// trigger fires.
func (ix *Index) maybeCompact() {
	if ix.store.ShouldCompact() {
		go ix.Compact()
	}
}

// OnCompaction registers fn to run after every completed compaction (on
// the compacting goroutine). One hook; nil clears it.
func (ix *Index) OnCompaction(fn func(CompactionStats)) {
	if fn == nil {
		ix.onCompaction.Store(nil)
		return
	}
	ix.onCompaction.Store(&fn)
}

// qcut is a query's consistent view of the dataset: the cut's segments
// flattened into one global position domain [0, n), with prefix sums for
// position↔segment mapping. Global positions ascend with dataset ids
// (segments are id-ordered and non-overlapping), so ordering by position
// is ordering by id.
type qcut struct {
	segs   []*segstore.Segment
	tombs  *segstore.Tombstones
	starts []int // starts[i] = global position of segs[i]'s first entry
	n      int   // total entries, tombstoned included
	live   int
}

// cut snapshots the store into a query view.
func (ix *Index) cut() *qcut {
	c := ix.store.Read()
	qc := &qcut{segs: c.Segments, tombs: c.Tombs}
	qc.starts = make([]int, len(c.Segments)+1)
	for i, sg := range c.Segments {
		qc.starts[i+1] = qc.starts[i] + sg.Len()
	}
	qc.n = qc.starts[len(c.Segments)]
	qc.live = qc.n - c.Tombs.Len()
	return qc
}

// segOf returns the index of the segment holding global position pos.
func (qc *qcut) segOf(pos int) int {
	lo, hi := 0, len(qc.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if qc.starts[mid+1] <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// locate maps a global position to (segment index, local position,
// dataset id).
func (qc *qcut) locate(pos int) (si, local, gid int) {
	si = qc.segOf(pos)
	local = pos - qc.starts[si]
	return si, local, qc.segs[si].ID(local)
}

// treeOf returns the tree at a segment-local position.
func (qc *qcut) treeOf(si, local int) *tree.Tree {
	return payloadOf(qc.segs[si]).trees[local]
}

// segBounders is one goroutine's per-segment bounder set, materialized
// lazily: a shard only profiles the query into the filters of segments it
// actually touches.
type segBounders struct {
	qc *qcut
	q  *tree.Tree
	bs []Bounder
}

func newSegBounders(qc *qcut, q *tree.Tree) *segBounders {
	return &segBounders{qc: qc, q: q, bs: make([]Bounder, len(qc.segs))}
}

// at returns the bounder for segment si, creating it on first use. Not
// safe for concurrent use; materialize (or use a per-goroutine instance)
// before sharing read-only.
func (sb *segBounders) at(si int) Bounder {
	if sb.bs[si] == nil {
		sb.bs[si] = payloadOf(sb.qc.segs[si]).filter.Query(sb.q)
	}
	return sb.bs[si]
}

// materialize creates every segment's bounder up front, after which the
// set is safe to share read-only across goroutines.
func (sb *segBounders) materialize() {
	for si := range sb.bs {
		sb.at(si)
	}
}

// report forwards per-query filter counters of every materialized bounder
// to the span that timed the pass. With several segments of the same
// filter family the last report per key wins — the span is diagnostic,
// not an aggregate.
func (sb *segBounders) report(sp *obs.Span) {
	for _, b := range sb.bs {
		if ar, ok := b.(AttrReporter); ok {
			ar.ReportAttrs(sp)
		}
	}
}
