package search

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"treesim/internal/editdist"
	"treesim/internal/tree"
)

// bruteAnswers computes the exact (dist, id)-ordered answers over the
// visible trees: the ground truth every segment layout must reproduce.
func bruteAnswers(trees map[int]*tree.Tree, q *tree.Tree) []Result {
	var out []Result
	for id, t := range trees {
		out = append(out, Result{ID: id, Dist: editdist.Distance(q, t)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func bruteKNNAnswers(trees map[int]*tree.Tree, q *tree.Tree, k int) []Result {
	all := bruteAnswers(trees, q)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func bruteRangeAnswers(trees map[int]*tree.Tree, q *tree.Tree, tau int) []Result {
	var out []Result
	for _, r := range bruteAnswers(trees, q) {
		if r.Dist <= tau {
			out = append(out, r)
		}
	}
	return out
}

// TestSegmentLayoutInvariance is the storage engine's core correctness
// property: the physical layout of the dataset — one base segment, many
// small segments before compaction, one merged segment after — never
// changes a query's (dist, id) answers, for every filter family and
// shard count, with tombstoned ids never appearing.
func TestSegmentLayoutInvariance(t *testing.T) {
	const n = 60
	all := testDataset(n, 71)
	deleted := []int{2, 13, 27, 39, 59}
	tombed := make(map[int]bool)
	for _, id := range deleted {
		tombed[id] = true
	}
	visible := make(map[int]*tree.Tree)
	for id, tr := range all {
		if !tombed[id] {
			visible[id] = tr
		}
	}
	queries := append([]*tree.Tree{all[0], all[27], all[50]}, testDataset(2, 72)...)

	filters := map[string]func() Filter{
		"BiBranch": func() Filter { return NewBiBranch() },
		"Pivot":    func() Filter { return NewPivotBiBranch() },
		"VP":       func() Filter { return NewVPBiBranch() },
		"Histo":    func() Filter { return NewHisto() },
	}
	layouts := map[string]func(mk func() Filter, shards int) *Index{
		"one-segment": func(mk func() Filter, shards int) *Index {
			return NewIndex(all, WithFilter(mk()), WithShards(shards))
		},
		"multi-segment": func(mk func() Filter, shards int) *Index {
			ix := NewIndex(all[:10], WithFilter(mk()), WithShards(shards),
				WithMemtableSize(7), WithCompactionThreshold(-1))
			for _, tr := range all[10:] {
				ix.Insert(tr)
			}
			return ix
		},
		"compacted": func(mk func() Filter, shards int) *Index {
			ix := NewIndex(all[:10], WithFilter(mk()), WithShards(shards),
				WithMemtableSize(7), WithCompactionThreshold(-1))
			for _, tr := range all[10:] {
				ix.Insert(tr)
			}
			ix.Seal()
			if !ix.Compact() {
				t.Fatal("compaction did not run")
			}
			return ix
		},
	}

	for fname, mk := range filters {
		for lname, build := range layouts {
			for _, shards := range []int{1, 3} {
				name := fmt.Sprintf("%s/%s/shards=%d", fname, lname, shards)
				ix := build(mk, shards)
				for _, id := range deleted {
					if !ix.Delete(id) {
						t.Fatalf("%s: delete %d refused", name, id)
					}
				}
				if lname == "compacted" {
					// Deleting after the first compaction and compacting again
					// exercises tombstone resolution too.
					if !ix.Compact() {
						t.Fatalf("%s: second compaction did not run", name)
					}
				}
				if ix.Live() != n-len(deleted) {
					t.Fatalf("%s: live %d, want %d", name, ix.Live(), n-len(deleted))
				}
				for qi, q := range queries {
					got, _, _ := ix.KNN(context.Background(), q, 5)
					want := bruteKNNAnswers(visible, q, 5)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s: query %d KNN = %v, want %v", name, qi, got, want)
					}
					gr, _, _ := ix.Range(context.Background(), q, 3)
					wr := bruteRangeAnswers(visible, q, 3)
					if len(gr) == 0 && len(wr) == 0 {
						continue
					}
					if !reflect.DeepEqual(gr, wr) {
						t.Fatalf("%s: query %d Range = %v, want %v", name, qi, gr, wr)
					}
					for _, r := range append(got, gr...) {
						if tombed[r.ID] {
							t.Fatalf("%s: tombstoned id %d in results", name, r.ID)
						}
					}
				}
			}
		}
	}
}

// TestSegmentedStatsAndExplain: the merged stats and EXPLAIN record of a
// multi-segment query describe the whole cut — visible dataset size,
// segment count, and bounds from every segment.
func TestSegmentedStatsAndExplain(t *testing.T) {
	all := testDataset(30, 73)
	ix := NewIndex(all[:10], NewBiBranch(), WithMemtableSize(8), WithCompactionThreshold(-1))
	for _, tr := range all[10:] {
		ix.Insert(tr)
	}
	ix.Delete(4)
	res, stats, ex, err := ix.KNNExplain(context.Background(), all[20], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if stats.Dataset != 29 {
		t.Fatalf("stats.Dataset = %d, want 29 (live)", stats.Dataset)
	}
	if ex.Segments < 2 {
		t.Fatalf("explain.Segments = %d, want ≥ 2", ex.Segments)
	}
	if ex.Bounds.Computed != 29 {
		t.Fatalf("explain bounds over %d trees, want 29", ex.Bounds.Computed)
	}
}

// TestEpochAdvancesOnWrites: the epoch — the query-cache invalidation
// key — moves on inserts, deletes, seals and compactions, and stays put
// across pure queries.
func TestEpochAdvancesOnWrites(t *testing.T) {
	ix := NewIndex(testDataset(10, 74), NewBiBranch(), WithMemtableSize(4), WithCompactionThreshold(-1))
	e0 := ix.Epoch()
	ix.KNN(context.Background(), testDataset(1, 75)[0], 2)
	if ix.Epoch() != e0 {
		t.Fatal("query advanced the epoch")
	}
	ix.Insert(testDataset(1, 76)[0])
	e1 := ix.Epoch()
	if e1 <= e0 {
		t.Fatal("insert did not advance the epoch")
	}
	ix.Delete(3)
	e2 := ix.Epoch()
	if e2 <= e1 {
		t.Fatal("delete did not advance the epoch")
	}
	ix.Seal()
	e3 := ix.Epoch()
	if e3 <= e2 {
		t.Fatal("seal did not advance the epoch")
	}
	if !ix.Compact() {
		t.Fatal("compaction did not run")
	}
	if ix.Epoch() <= e3 {
		t.Fatal("compaction did not advance the epoch")
	}
}
