package search

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"treesim/internal/obs"
	"treesim/internal/tree"
)

// shardCounts are the shard configurations the invariance tests sweep:
// forced-sequential, a couple of odd splits, and the GOMAXPROCS default.
var shardCounts = []int{1, 2, 7, 0}

// shardFilters returns a fresh instance of every filter family, including
// the global-structure ones (pivot tables, VP-tree) that exercise the
// CandidateLister path.
func shardFilters() []Filter {
	return append(allFilters(), NewPivotBiBranch(), NewVPBiBranch())
}

// TestShardCountInvarianceKNN: k-NN answers — results including tie order,
// and every execution-independent counter — are identical for every shard
// count. Verified is deliberately not compared: opportunistic pruning makes
// it timing-dependent (see the engine doc comment).
func TestShardCountInvarianceKNN(t *testing.T) {
	ts := testDataset(80, 31)
	queries := []*tree.Tree{ts[0], ts[41], testDataset(1, 99)[0]}
	for _, f := range shardFilters() {
		base := NewIndex(ts, WithFilter(f), WithShards(1))
		for _, q := range queries {
			for _, k := range []int{1, 4, 11} {
				want, wantStats, err := base.KNN(context.Background(), q, k)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range shardCounts[1:] {
					ix := NewIndex(ts, WithFilter(freshFilter(f)), WithShards(s), WithRefineWorkers(8))
					got, stats, err := ix.KNN(context.Background(), q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s S=%d k=%d: results %v, want %v", f.Name(), s, k, got, want)
					}
					if stats.Candidates != wantStats.Candidates ||
						stats.Results != wantStats.Results ||
						stats.Dataset != wantStats.Dataset {
						t.Fatalf("%s S=%d k=%d: stats %+v, want %+v", f.Name(), s, k, stats, wantStats)
					}
				}
			}
		}
	}
}

// TestShardCountInvarianceRange: range answers and every counter —
// including Verified, which has no early exit — are identical for every
// shard count.
func TestShardCountInvarianceRange(t *testing.T) {
	ts := testDataset(80, 32)
	queries := []*tree.Tree{ts[3], ts[77]}
	for _, f := range shardFilters() {
		base := NewIndex(ts, WithFilter(f), WithShards(1))
		for _, q := range queries {
			for _, tau := range []int{0, 2, 5} {
				want, wantStats, err := base.Range(context.Background(), q, tau)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range shardCounts[1:] {
					ix := NewIndex(ts, WithFilter(freshFilter(f)), WithShards(s), WithRefineWorkers(8))
					got, stats, err := ix.Range(context.Background(), q, tau)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s S=%d tau=%d: results %v, want %v", f.Name(), s, tau, got, want)
					}
					if stats.Candidates != wantStats.Candidates ||
						stats.Verified != wantStats.Verified ||
						stats.Results != wantStats.Results ||
						stats.FalsePositives != wantStats.FalsePositives {
						t.Fatalf("%s S=%d tau=%d: stats %+v, want %+v", f.Name(), s, tau, stats, wantStats)
					}
				}
			}
		}
	}
}

// freshFilter rebuilds a filter of the same configuration so each index
// gets its own instance (filters hold per-dataset state).
func freshFilter(f Filter) Filter {
	switch v := f.(type) {
	case *BiBranch:
		return &BiBranch{Q: v.Q, Positional: v.Positional}
	case *Histo:
		return &Histo{Config: v.Config, Unbounded: v.Unbounded}
	case *Seq:
		return NewSeq()
	case *None:
		return NewNone()
	case *PivotBiBranch:
		return &PivotBiBranch{Q: v.Q, Pivots: v.Pivots, Positional: v.Positional}
	case *VPBiBranch:
		return &VPBiBranch{Q: v.Q, Positional: v.Positional, Seed: v.Seed}
	}
	return f
}

// TestShardEdgeCases: clamping and degenerate domains behave identically
// across shard counts — k beyond the dataset, more shards than trees,
// a radius that prunes every candidate, and duplicate trees tying at the
// k-th distance.
func TestShardEdgeCases(t *testing.T) {
	ts := testDataset(10, 33)
	// Duplicate a tree several times so distance ties at the k-th place are
	// guaranteed and the canonical (dist, id) order is observable.
	ts = append(ts, ts[4], ts[4], ts[4])

	for _, s := range shardCounts {
		ix := NewIndex(ts, NewBiBranch(), WithShards(s), WithRefineWorkers(8))

		// k far beyond the dataset: all trees come back, sorted (dist, id).
		res, stats, err := ix.KNN(context.Background(), ts[4], 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(ts) || stats.Results != len(ts) {
			t.Fatalf("S=%d: k>n returned %d of %d", s, len(res), len(ts))
		}
		for i := 1; i < len(res); i++ {
			if res[i-1].Dist > res[i].Dist ||
				(res[i-1].Dist == res[i].Dist && res[i-1].ID >= res[i].ID) {
				t.Fatalf("S=%d: results not in canonical (dist, id) order: %v", s, res)
			}
		}
		// The three duplicates of ts[4] plus itself are all at distance 0,
		// and k=2 must keep the two smallest ids among them.
		top2, _, _ := ix.KNN(context.Background(), ts[4], 2)
		want := []Result{{ID: 4, Dist: 0}, {ID: 10, Dist: 0}}
		if !reflect.DeepEqual(top2, want) {
			t.Fatalf("S=%d: tie at k not broken by id: %v, want %v", s, top2, want)
		}

		// A query far from everything with tau 0 prunes every candidate.
		far := tree.MustParse("zz(zz(zz(zz)))")
		rres, rstats, err := ix.Range(context.Background(), far, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(rres) != 0 || rstats.Results != 0 {
			t.Fatalf("S=%d: all-pruned range returned %v", s, rres)
		}
	}

	// More shards than trees: the count clamps to the dataset size.
	tiny := NewIndex(ts[:2], NewBiBranch(), WithShards(64))
	res, _, err := tiny.KNN(context.Background(), ts[0], 2)
	if err != nil || len(res) != 2 {
		t.Fatalf("S>n: res=%v err=%v", res, err)
	}
	// Empty dataset stays a no-op under any shard count.
	empty := NewIndex(nil, NewBiBranch(), WithShards(4))
	if res, _, _ := empty.KNN(context.Background(), ts[0], 3); res != nil {
		t.Fatalf("empty dataset returned %v", res)
	}
}

// TestShardHammer drives many concurrent queries through a deliberately
// over-sharded index so the worker pool, the atomic threshold and the span
// plumbing race against each other; run under -race this is the engine's
// data-race certificate. Results are checked against a sequential index.
func TestShardHammer(t *testing.T) {
	ts := testDataset(60, 34)
	ix := NewIndex(ts, NewBiBranch(), WithShards(7), WithRefineWorkers(8))
	seq := NewIndex(ts, NewBiBranch(), WithShards(1))
	queries := []*tree.Tree{ts[1], ts[30], ts[59], testDataset(1, 5)[0]}

	wantK := make([][]Result, len(queries))
	wantR := make([][]Result, len(queries))
	for i, q := range queries {
		wantK[i], _, _ = seq.KNN(context.Background(), q, 5)
		wantR[i], _, _ = seq.Range(context.Background(), q, 3)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 10; it++ {
				i := (w + it) % len(queries)
				got, _, err := ix.KNN(context.Background(), queries[i], 5)
				if err != nil || !reflect.DeepEqual(got, wantK[i]) {
					errs <- "knn diverged under concurrency"
					return
				}
				gotR, _, err := ix.Range(context.Background(), queries[i], 3)
				if err != nil || !reflect.DeepEqual(gotR, wantR[i]) {
					errs <- "range diverged under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestMergeRuns: the run merge reproduces a global (bound, id) sort.
func TestMergeRuns(t *testing.T) {
	bounds := []int{5, 1, 3, 1, 4, 0, 3, 2}
	runs := [][]int{{1, 2, 0}, {5, 3}, {7, 6, 4}}
	for _, r := range runs {
		sortByBound(r, bounds)
	}
	got := mergeRuns(runs, bounds)
	want := make([]int, len(bounds))
	for i := range want {
		want[i] = i
	}
	sortByBound(want, bounds)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeRuns = %v, want %v", got, want)
	}
}

// TestDeprecatedWrappers: the old query-method names still answer exactly
// like the new surface.
func TestDeprecatedWrappers(t *testing.T) {
	ts := testDataset(30, 35)
	ix := NewIndex(ts, NewBiBranch())
	ctx := context.Background()
	q := ts[9]

	a, _, err := ix.KNN(ctx, q, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ix.KNNContext(ctx, q, 4)
	if err != nil || !reflect.DeepEqual(a, b) {
		t.Fatalf("KNNContext diverged: %v vs %v (%v)", b, a, err)
	}
	var ex *Explain
	c, _, err := ix.KNN(ctx, q, 4, WithExplain(&ex))
	if err != nil || ex == nil || !reflect.DeepEqual(a, c) {
		t.Fatalf("WithExplain diverged: %v vs %v (ex=%v, %v)", c, a, ex, err)
	}
	d, _, ex2, err := ix.KNNExplain(ctx, q, 4)
	if err != nil || ex2 == nil || !reflect.DeepEqual(a, d) {
		t.Fatalf("KNNExplain diverged: %v vs %v (%v)", d, a, err)
	}

	ra, _, _ := ix.Range(ctx, q, 3)
	rb, _, err := ix.RangeContext(ctx, q, 3)
	if err != nil || !reflect.DeepEqual(ra, rb) {
		t.Fatalf("RangeContext diverged: %v vs %v (%v)", rb, ra, err)
	}
	rc, _, rex, err := ix.RangeExplain(ctx, q, 3)
	if err != nil || rex == nil || !reflect.DeepEqual(ra, rc) {
		t.Fatalf("RangeExplain diverged: %v vs %v (%v)", rc, ra, err)
	}
}

// TestIndexOptionAccessors: shard and worker settings survive construction
// and are visible through the accessors.
func TestIndexOptionAccessors(t *testing.T) {
	ix := NewIndex(testDataset(5, 36), NewBiBranch(), WithShards(3), WithRefineWorkers(2))
	if ix.Shards() != 3 {
		t.Errorf("Shards() = %d, want 3", ix.Shards())
	}
	if ix.RefineWorkers() != 2 {
		t.Errorf("RefineWorkers() = %d, want 2", ix.RefineWorkers())
	}
}

// TestShardSpans: a query forced over several shards hangs shard[i]
// children off its filter span, each reporting its bound count, and the
// filter span still carries the global candidate total.
func TestShardSpans(t *testing.T) {
	ts := testDataset(50, 37)
	ix := NewIndex(ts, NewBiBranch(), WithShards(4), WithRefineWorkers(4))

	root := obs.New("query")
	_, _, err := ix.KNN(context.Background(), ts[2], 3, WithTrace(root))
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	snap := root.Snapshot()

	var filter *obs.SpanSnapshot
	for i := range snap.Children {
		if snap.Children[i].Name == "filter" {
			filter = &snap.Children[i]
		}
	}
	if filter == nil {
		t.Fatalf("no filter span in %+v", snap)
	}
	if got := filter.Attrs["candidates"]; got != int64(len(ts)) {
		t.Errorf("filter candidates %v, want %d", got, len(ts))
	}
	total := int64(0)
	shards := 0
	for _, c := range filter.Children {
		if len(c.Name) >= 5 && c.Name[:5] == "shard" {
			shards++
			b, _ := c.Attrs["bounds"].(int64)
			total += b
		}
	}
	if shards != 4 {
		t.Fatalf("filter has %d shard children, want 4: %+v", shards, filter)
	}
	if total != int64(len(ts)) {
		t.Errorf("shard bounds sum %d, want %d", total, len(ts))
	}
}
