package search

import (
	"context"
	"testing"

	"treesim/internal/datagen"
	"treesim/internal/obs"
	"treesim/internal/tree"
)

func traceDataset(t *testing.T, n int) []*tree.Tree {
	t.Helper()
	spec := datagen.Spec{FanoutMean: 3, FanoutStd: 1, SizeMean: 12, SizeStd: 4, Labels: 6, Decay: 0.1}
	return datagen.New(spec, 11).Dataset(n, 5)
}

// childByName finds a direct child span by name.
func childByName(sn obs.SpanSnapshot, name string) (obs.SpanSnapshot, bool) {
	for _, c := range sn.Children {
		if c.Name == name {
			return c, true
		}
	}
	return obs.SpanSnapshot{}, false
}

// TestKNNContextSpans: a traced KNN query produces filter and refine
// children whose durations fit the root and whose attrs carry the
// candidate/verified counts matching the returned Stats.
func TestKNNContextSpans(t *testing.T) {
	ts := traceDataset(t, 60)
	// WithShards(1) pins the sequential span shape: sharded queries hang
	// bounder attrs off shard[i] children instead of the filter span.
	ix := NewIndex(ts, NewBiBranch(), WithShards(1))

	root := obs.New("query")
	ctx := obs.NewContext(context.Background(), root)
	_, stats, err := ix.KNNContext(ctx, ts[3], 4)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	snap := root.Snapshot()
	filter, ok := childByName(snap, "filter")
	if !ok {
		t.Fatalf("no filter span in %+v", snap)
	}
	refine, ok := childByName(snap, "refine")
	if !ok {
		t.Fatalf("no refine span in %+v", snap)
	}
	if filter.DurUS+refine.DurUS > snap.DurUS {
		t.Errorf("stages %d+%dus exceed root %dus", filter.DurUS, refine.DurUS, snap.DurUS)
	}
	if got := filter.Attrs["candidates"]; got != int64(60) {
		t.Errorf("filter candidates %v, want 60", got)
	}
	if got := refine.Attrs["verified"]; got != int64(stats.Verified) {
		t.Errorf("refine verified attr %v, stats say %d", got, stats.Verified)
	}
	if got := refine.Attrs["results"]; got != int64(stats.Results) {
		t.Errorf("refine results attr %v, stats say %d", got, stats.Results)
	}
	// pruned + verified covers the whole candidate order, and the DP work
	// is at least |q|·|t_min| per verification (every tree has ≥1 node).
	if got := refine.Attrs["pruned"]; got != int64(60-stats.Verified) {
		t.Errorf("refine pruned attr %v, want %d", got, 60-stats.Verified)
	}
	cells, _ := refine.Attrs["dp_cells"].(int64)
	if stats.Verified > 0 && cells < int64(stats.Verified) {
		t.Errorf("dp_cells %d below verified count %d", cells, stats.Verified)
	}
}

// TestRangeContextSpansUntraced: queries without a span in the context
// still work (the nil-span fast path) and produce identical results.
func TestRangeContextSpansUntraced(t *testing.T) {
	ts := traceDataset(t, 40)
	ix := NewIndex(ts, NewBiBranch())
	r1, s1, err := ix.RangeContext(context.Background(), ts[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	root := obs.New("query")
	r2, s2, err := ix.RangeContext(obs.NewContext(context.Background(), root), ts[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) || s1.Verified != s2.Verified {
		t.Fatalf("traced query changed results: %v/%v vs %v/%v", len(r1), s1.Verified, len(r2), s2.Verified)
	}
}

// TestPivotStageAttrs: the pivot cascade reports its screen counters on
// the filter span, and they account for every candidate it bounded.
func TestPivotStageAttrs(t *testing.T) {
	ts := traceDataset(t, 80)
	ix := NewIndex(ts, NewPivotBiBranch(), WithShards(1))

	root := obs.New("query")
	_, _, err := ix.RangeContext(obs.NewContext(context.Background(), root), ts[7], 2)
	if err != nil {
		t.Fatal(err)
	}
	snap := root.Snapshot()
	filter, ok := childByName(snap, "filter")
	if !ok {
		t.Fatalf("no filter span in %+v", snap)
	}
	pruned, _ := filter.Attrs["pivot_pruned"].(int64)
	evals, _ := filter.Attrs["stage2_evals"].(int64)
	if pruned+evals != int64(len(ts)) {
		t.Errorf("pivot_pruned %d + stage2_evals %d != dataset %d (attrs %v)",
			pruned, evals, len(ts), filter.Attrs)
	}
	if filter.Attrs["pivots"] != int64(8) {
		t.Errorf("pivots attr %v, want 8", filter.Attrs["pivots"])
	}
}

// TestVPTreeSpan: the VP-tree candidate enumeration appears as a child of
// the filter span with its candidate count and distance-evaluation attr.
func TestVPTreeSpan(t *testing.T) {
	ts := traceDataset(t, 100)
	ix := NewIndex(ts, NewVPBiBranch(), WithShards(1))

	root := obs.New("query")
	res, stats, err := ix.RangeContext(obs.NewContext(context.Background(), root), ts[5], 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := root.Snapshot()
	filter, ok := childByName(snap, "filter")
	if !ok {
		t.Fatalf("no filter span in %+v", snap)
	}
	vp, ok := childByName(filter, "vptree")
	if !ok {
		t.Fatalf("no vptree span under filter: %+v", filter)
	}
	cands, _ := vp.Attrs["candidates"].(int64)
	if cands < int64(len(res)) || cands < int64(stats.Verified) {
		t.Errorf("vptree candidates %d below results %d / verified %d", cands, len(res), stats.Verified)
	}
	evals, _ := filter.Attrs["vptree_dist_evals"].(int64)
	if evals <= 0 || evals > int64(len(ts)) {
		t.Errorf("vptree_dist_evals %d out of (0, %d]", evals, len(ts))
	}
}
