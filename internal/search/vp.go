package search

import (
	"treesim/internal/branch"
	"treesim/internal/obs"
	"treesim/internal/tree"
	"treesim/internal/vptree"
)

// CandidateLister is an optional Bounder capability: produce the candidate
// set of a range query directly, instead of having the engine test a
// lower bound for every indexed tree. The returned set must be a superset
// of the true result set (soundness); the engine still applies RangeBound
// and the exact distance to every candidate.
type CandidateLister interface {
	RangeCandidates(tau int) []int
}

// VPBiBranch is the BiBranch filter with a vantage-point tree over the
// BDist pseudometric. Because EDist(q,t) ≤ τ implies
// BDist(q,t) ≤ Factor(q)·τ (Theorem 3.2/3.3), the BDist ball of radius
// Factor(q)·τ around the query is a sound candidate set for an
// edit-distance range query — and the VP-tree finds it while touching only
// part of the collection. k-NN queries fall back to the plain BiBranch
// bounds (Algorithm 2 needs a bound for every object anyway).
type VPBiBranch struct {
	// Q is the branch level (0 means 2).
	Q int
	// Positional selects the stage-two bound for surviving candidates.
	Positional bool
	// Seed drives vantage-point sampling.
	Seed int64

	inner *BiBranch
	vt    *vptree.Tree
}

// NewVPBiBranch returns the VP-tree accelerated filter with defaults
// (q=2, positional bounds).
func NewVPBiBranch() *VPBiBranch { return &VPBiBranch{Positional: true} }

// Name implements Filter.
func (f *VPBiBranch) Name() string { return "BiBranch-vptree" }

// Fresh implements Fresher: the same configuration over a new dataset.
// The segmented store rebuilds the VP-tree per segment at compaction,
// which is what makes this filter appendable.
func (f *VPBiBranch) Fresh() Filter {
	return &VPBiBranch{Q: f.Q, Positional: f.Positional, Seed: f.Seed}
}

// Index implements Filter.
func (f *VPBiBranch) Index(ts []*tree.Tree) {
	f.inner = &BiBranch{Q: f.Q, Positional: f.Positional}
	f.inner.Index(ts)
	ids := make([]int, len(ts))
	for i := range ids {
		ids[i] = i
	}
	profiles := f.inner.profiles
	f.vt = vptree.Build(ids, func(a, b int) int {
		return branch.BDist(profiles[a], profiles[b])
	}, f.Seed+1)
}

// Query implements Filter.
func (f *VPBiBranch) Query(q *tree.Tree) Bounder {
	return &vpBounder{
		f:     f,
		inner: f.inner.Query(q).(*biBranchBounder),
	}
}

type vpBounder struct {
	f     *VPBiBranch
	inner *biBranchBounder

	// distEvals counts BDist evaluations the VP-tree walk performed — the
	// sub-linearity evidence a trace reports (compare against the dataset
	// size). One query, one goroutine, so a plain int.
	distEvals int
}

func (b *vpBounder) KNNBound(i int) int { return b.inner.KNNBound(i) }

func (b *vpBounder) RangeBound(i, tau int) int { return b.inner.RangeBound(i, tau) }

// BDist implements BDister (delegated to the wrapped BiBranch bounder).
func (b *vpBounder) BDist(i int) int { return b.inner.BDist(i) }

// Factor implements FactorReporter.
func (f *VPBiBranch) Factor() int {
	q := f.Q
	if q == 0 {
		q = branch.MinQ
	}
	return branch.Factor(q)
}

// ReportAttrs implements AttrReporter.
func (b *vpBounder) ReportAttrs(sp *obs.Span) {
	sp.SetInt("vptree_dist_evals", int64(b.distEvals))
}

// RangeCandidates implements CandidateLister: all trees within BDist
// radius Factor(q)·tau of the query, found through the VP-tree.
func (b *vpBounder) RangeCandidates(tau int) []int {
	radius := branch.Factor(b.inner.qp.Q()) * tau
	var out []int
	profiles := b.f.inner.profiles
	b.f.vt.Range(func(id int) int {
		b.distEvals++
		return branch.BDist(b.inner.qp, profiles[id])
	}, radius, func(id int) {
		out = append(out, id)
	})
	return out
}
