package search

import (
	"context"
	"reflect"
	"testing"

	"treesim/internal/tree"
)

func TestVPCompleteness(t *testing.T) {
	ts := testDataset(90, 91)
	seq := NewIndex(ts, NewNone())
	for _, f := range []*VPBiBranch{
		NewVPBiBranch(),
		{Q: 2, Positional: false, Seed: 7},
		{Q: 3, Positional: true},
	} {
		ix := NewIndex(ts, WithFilter(f))
		for _, q := range []*tree.Tree{ts[3], ts[45], testDataset(1, 92)[0]} {
			for _, tau := range []int{0, 2, 5} {
				want, _, _ := seq.Range(context.Background(), q, tau)
				got, _, _ := ix.Range(context.Background(), q, tau)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s tau=%d: %v, want %v", f.Name(), tau, got, want)
				}
			}
			wantK, _, _ := seq.KNN(context.Background(), q, 4)
			gotK, _, _ := ix.KNN(context.Background(), q, 4)
			if !sameDistances(gotK, wantK) {
				t.Fatalf("VP KNN differs: %v vs %v", dists(gotK), dists(wantK))
			}
		}
	}
}

// TestVPCandidatesSuperset: the VP candidate set must contain every true
// result and be no larger than the dataset.
func TestVPCandidatesSuperset(t *testing.T) {
	ts := testDataset(80, 93)
	f := NewVPBiBranch()
	ix := NewIndex(ts, WithFilter(f))
	q := ts[11]
	b := f.Query(q).(*vpBounder)
	for _, tau := range []int{1, 3} {
		cands := b.RangeCandidates(tau)
		if len(cands) > len(ts) {
			t.Fatalf("candidate set larger than dataset")
		}
		inCands := map[int]bool{}
		for _, c := range cands {
			inCands[c] = true
		}
		want, _, _ := ix.Range(context.Background(), q, tau)
		for _, r := range want {
			if !inCands[r.ID] {
				t.Fatalf("tau=%d: true result %d missing from candidates", tau, r.ID)
			}
		}
	}
}

// TestVPSelective: on a clustered dataset a selective range query's
// candidate set is much smaller than the dataset.
func TestVPSelective(t *testing.T) {
	ts := testDataset(300, 94)
	f := NewVPBiBranch()
	NewIndex(ts, WithFilter(f))
	b := f.Query(ts[50]).(*vpBounder)
	cands := b.RangeCandidates(1)
	if len(cands) > len(ts)/2 {
		t.Errorf("tau=1 candidate set has %d of %d trees — VP-tree not pruning", len(cands), len(ts))
	}
}

func TestVPEmptyDataset(t *testing.T) {
	ix := NewIndex(nil, NewVPBiBranch())
	if res, _, _ := ix.Range(context.Background(), tree.MustParse("a"), 3); res != nil {
		t.Error("empty index returned results")
	}
}
