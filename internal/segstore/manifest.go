package segstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// castagnoli matches the polynomial used by the WAL and snapshot codecs.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crcManifest(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// The segment manifest: the small, checksummed header of a segmented
// snapshot. It names every segment (id layout and payload blob length),
// the unresolved tombstones, and the id high-water mark; the payload
// blobs follow it in the container file. Like the index snapshot codec,
// decoding classifies failures precisely: a manifest that ends early is
// truncated (the classic partial write), one whose bytes are all present
// but wrong is corrupt.
//
// Framing: u32 body length | body | u32 CRC32C(body). Body layout (all
// little-endian):
//
//	u8  version (1)
//	u64 next id
//	u32 tombstone count, then that many u64 ids (strictly ascending)
//	u32 segment count, then per segment:
//	    u8 id mode: 0 = contiguous (u64 base, u64 n)
//	               1 = explicit   (u64 n, then n u64 ids, strictly ascending)
//	    u64 payload blob length
var (
	// ErrManifestCorrupt reports a length-complete manifest whose checksum
	// or structure is wrong.
	ErrManifestCorrupt = errors.New("segment manifest corrupt")
	// ErrManifestTruncated reports a manifest that ends before its
	// declared length or trailer.
	ErrManifestTruncated = errors.New("segment manifest truncated")
)

const (
	manifestVersion = 1
	// maxManifestBody caps the declared body length (64 MiB — a manifest
	// is metadata, not data), so a corrupt length prefix is an error, not
	// an allocation request.
	maxManifestBody = 1 << 26
	// maxManifestID caps ids and counts well below int overflow on any
	// platform.
	maxManifestID = 1 << 40
)

// SegmentMeta describes one segment in a manifest. IDs follows the same
// convention as Segment: nil means contiguous [Base, Base+N).
type SegmentMeta struct {
	Base    int
	N       int
	IDs     []int
	BlobLen uint64
}

// ID returns the dataset id of the local entry.
func (m SegmentMeta) ID(local int) int {
	if m.IDs != nil {
		return m.IDs[local]
	}
	return m.Base + local
}

func (m SegmentMeta) minID() int {
	if m.IDs != nil {
		return m.IDs[0]
	}
	return m.Base
}

func (m SegmentMeta) maxID() int {
	if m.IDs != nil {
		return m.IDs[len(m.IDs)-1]
	}
	return m.Base + m.N - 1
}

// Manifest is the decoded header of a segmented snapshot.
type Manifest struct {
	NextID     int
	Tombstones []int
	Segments   []SegmentMeta
}

// WriteManifest encodes and frames m. It validates first, so a manifest
// that would not load back is never written.
func WriteManifest(w io.Writer, m *Manifest) error {
	if err := m.validate(); err != nil {
		return fmt.Errorf("segstore: refusing to write invalid manifest: %w", err)
	}
	var body bytes.Buffer
	body.WriteByte(manifestVersion)
	le := binary.LittleEndian
	var u64 [8]byte
	put64 := func(v int) {
		le.PutUint64(u64[:], uint64(v))
		body.Write(u64[:])
	}
	var u32 [4]byte
	put32 := func(v int) {
		le.PutUint32(u32[:], uint32(v))
		body.Write(u32[:])
	}
	put64(m.NextID)
	put32(len(m.Tombstones))
	for _, id := range m.Tombstones {
		put64(id)
	}
	put32(len(m.Segments))
	for _, sg := range m.Segments {
		if sg.IDs == nil {
			body.WriteByte(0)
			put64(sg.Base)
			put64(sg.N)
		} else {
			body.WriteByte(1)
			put64(sg.N)
			for _, id := range sg.IDs {
				put64(id)
			}
		}
		le.PutUint64(u64[:], sg.BlobLen)
		body.Write(u64[:])
	}

	le.PutUint32(u32[:], uint32(body.Len()))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return err
	}
	le.PutUint32(u32[:], crcManifest(body.Bytes()))
	_, err := w.Write(u32[:])
	return err
}

// ReadManifest decodes one framed manifest from r. Errors satisfy
// errors.Is against ErrManifestTruncated (stream ends early) or
// ErrManifestCorrupt (checksum mismatch or structural damage inside a
// length-complete body).
func ReadManifest(r io.Reader) (*Manifest, error) {
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("segstore: %w: reading manifest length: %v", ErrManifestTruncated, err)
	}
	blen := binary.LittleEndian.Uint32(u32[:])
	if blen > maxManifestBody {
		return nil, fmt.Errorf("segstore: %w: implausible manifest length %d", ErrManifestCorrupt, blen)
	}
	body := make([]byte, blen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("segstore: %w: manifest body: %v", ErrManifestTruncated, err)
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("segstore: %w: missing manifest checksum", ErrManifestTruncated)
	}
	if want, got := binary.LittleEndian.Uint32(u32[:]), crcManifest(body); got != want {
		return nil, fmt.Errorf("segstore: %w: manifest checksum %08x, trailer says %08x",
			ErrManifestCorrupt, got, want)
	}
	m, err := decodeManifestBody(body)
	if err != nil {
		return nil, fmt.Errorf("segstore: %w: %v", ErrManifestCorrupt, err)
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("segstore: %w: %v", ErrManifestCorrupt, err)
	}
	return m, nil
}

// decodeManifestBody parses a checksum-verified body; every failure here
// is structural (the caller wraps it as corrupt).
func decodeManifestBody(body []byte) (*Manifest, error) {
	d := &bodyReader{b: body}
	if v := d.u8(); v != manifestVersion {
		return nil, fmt.Errorf("unknown manifest version %d", v)
	}
	m := &Manifest{NextID: d.id()}
	nTombs := d.count()
	if d.err == nil && nTombs > len(d.b)-d.off {
		// Each id takes 8 bytes; a count beyond the remaining bytes can
		// only be garbage.
		return nil, fmt.Errorf("tombstone count %d exceeds body", nTombs)
	}
	for i := 0; i < nTombs && d.err == nil; i++ {
		m.Tombstones = append(m.Tombstones, d.id())
	}
	nSegs := d.count()
	if d.err == nil && nSegs > len(d.b)-d.off {
		return nil, fmt.Errorf("segment count %d exceeds body", nSegs)
	}
	for i := 0; i < nSegs && d.err == nil; i++ {
		var sg SegmentMeta
		switch mode := d.u8(); mode {
		case 0:
			sg.Base = d.id()
			sg.N = d.id()
		case 1:
			sg.N = d.id()
			if d.err == nil && sg.N > (len(d.b)-d.off)/8 {
				return nil, fmt.Errorf("segment %d id count %d exceeds body", i, sg.N)
			}
			sg.IDs = make([]int, 0, sg.N)
			for j := 0; j < sg.N && d.err == nil; j++ {
				sg.IDs = append(sg.IDs, d.id())
			}
			if len(sg.IDs) == 0 {
				sg.IDs = []int{} // explicit mode stays explicit
			}
		default:
			if d.err == nil {
				return nil, fmt.Errorf("segment %d has unknown id mode %d", i, mode)
			}
		}
		sg.BlobLen = d.u64()
		m.Segments = append(m.Segments, sg)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%d trailing bytes in manifest body", len(d.b)-d.off)
	}
	return m, nil
}

// validate checks the structural invariants shared by writer and reader:
// ascending unique ids within and across segments, tombstones referring
// to present ids, and the high-water mark above everything.
func (m *Manifest) validate() error {
	if m.NextID < 0 || m.NextID > maxManifestID {
		return fmt.Errorf("bad next id %d", m.NextID)
	}
	prevMax := -1
	for i, sg := range m.Segments {
		if sg.N <= 0 {
			return fmt.Errorf("segment %d is empty", i)
		}
		if sg.IDs != nil {
			if len(sg.IDs) != sg.N {
				return fmt.Errorf("segment %d declares %d ids but carries %d", i, sg.N, len(sg.IDs))
			}
			for j, id := range sg.IDs {
				if id < 0 || (j > 0 && id <= sg.IDs[j-1]) {
					return fmt.Errorf("segment %d ids not strictly ascending", i)
				}
			}
		} else if sg.Base < 0 {
			return fmt.Errorf("segment %d has negative base", i)
		}
		if sg.BlobLen > maxManifestID {
			return fmt.Errorf("segment %d declares an implausible blob length %d", i, sg.BlobLen)
		}
		if sg.minID() <= prevMax {
			return fmt.Errorf("segment %d overlaps its predecessor", i)
		}
		prevMax = sg.maxID()
		if prevMax >= m.NextID {
			return fmt.Errorf("segment %d reaches id %d beyond next id %d", i, prevMax, m.NextID)
		}
	}
	prev := -1
	for _, id := range m.Tombstones {
		if id <= prev {
			return errors.New("tombstones not strictly ascending")
		}
		prev = id
		if id >= m.NextID {
			return fmt.Errorf("tombstone %d beyond next id %d", id, m.NextID)
		}
		if !metaContain(m.Segments, id) {
			return fmt.Errorf("tombstone %d refers to no segment entry", id)
		}
	}
	return nil
}

// metaContain mirrors segmentsContain over metadata.
func metaContain(segs []SegmentMeta, id int) bool {
	for _, sg := range segs {
		if id < sg.minID() || id > sg.maxID() {
			continue
		}
		if sg.IDs == nil {
			return true
		}
		lo, hi := 0, len(sg.IDs)
		for lo < hi {
			mid := (lo + hi) / 2
			if sg.IDs[mid] < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(sg.IDs) && sg.IDs[lo] == id
	}
	return false
}

// bodyReader is a cursor over the body with sticky errors, so decode
// logic reads linearly without per-field error plumbing.
type bodyReader struct {
	b   []byte
	off int
	err error
}

func (d *bodyReader) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.b) {
		d.err = errors.New("body ends inside a field")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *bodyReader) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.err = errors.New("body ends inside a field")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// id reads a u64 and range-checks it as an id/count.
func (d *bodyReader) id() int {
	v := d.u64()
	if d.err == nil && v > maxManifestID {
		d.err = fmt.Errorf("implausible id %d", v)
	}
	return int(v)
}

// count reads a u32 element count.
func (d *bodyReader) count() int {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.err = errors.New("body ends inside a field")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return int(v)
}
