package segstore

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func sampleManifest() *Manifest {
	return &Manifest{
		NextID:     100,
		Tombstones: []int{3, 17},
		Segments: []SegmentMeta{
			{Base: 0, N: 10, BlobLen: 512},
			{N: 3, IDs: []int{12, 17, 20}, BlobLen: 64},
			{Base: 40, N: 5, BlobLen: 128},
		},
	}
}

func encodeManifest(t *testing.T, m *Manifest) []byte {
	t.Helper()
	enc, err := tryEncodeManifest(m)
	if err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	return enc
}

func tryEncodeManifest(m *Manifest) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func mustEncodeManifest(m *Manifest) []byte {
	enc, err := tryEncodeManifest(m)
	if err != nil {
		panic(err)
	}
	return enc
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	got, err := ReadManifest(bytes.NewReader(encodeManifest(t, m)))
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip changed manifest:\n in %+v\nout %+v", m, got)
	}
}

func TestManifestEmptyRoundTrip(t *testing.T) {
	m := &Manifest{NextID: 0}
	got, err := ReadManifest(bytes.NewReader(encodeManifest(t, m)))
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if got.NextID != 0 || len(got.Segments) != 0 || len(got.Tombstones) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestManifestTruncated(t *testing.T) {
	enc := encodeManifest(t, sampleManifest())
	for _, cut := range []int{0, 2, 4, len(enc) / 2, len(enc) - 1} {
		_, err := ReadManifest(bytes.NewReader(enc[:cut]))
		if !errors.Is(err, ErrManifestTruncated) {
			t.Fatalf("cut at %d: err = %v, want truncated", cut, err)
		}
	}
}

func TestManifestCorrupt(t *testing.T) {
	enc := encodeManifest(t, sampleManifest())
	for _, pos := range []int{4, 5, 13, len(enc) - 5, len(enc) - 1} {
		bad := bytes.Clone(enc)
		bad[pos] ^= 0xFF
		_, err := ReadManifest(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flip at %d: decode succeeded", pos)
		}
		if !errors.Is(err, ErrManifestCorrupt) && !errors.Is(err, ErrManifestTruncated) {
			t.Fatalf("flip at %d: unclassified error %v", pos, err)
		}
	}
	// A checksum flip specifically must read as corrupt, not truncated.
	bad := bytes.Clone(enc)
	bad[len(enc)-1] ^= 0xFF
	if _, err := ReadManifest(bytes.NewReader(bad)); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("checksum flip: err = %v", err)
	}
}

func TestWriteManifestRejectsInvalid(t *testing.T) {
	cases := []*Manifest{
		{NextID: -1},
		{NextID: 5, Segments: []SegmentMeta{{Base: 0, N: 0}}},
		{NextID: 5, Segments: []SegmentMeta{{Base: 0, N: 10}}},                          // exceeds next id
		{NextID: 20, Segments: []SegmentMeta{{Base: 5, N: 3}, {Base: 4, N: 2}}},         // overlap
		{NextID: 20, Segments: []SegmentMeta{{N: 2, IDs: []int{4, 4}, Base: 0}}},        // not ascending
		{NextID: 20, Segments: []SegmentMeta{{Base: 0, N: 3}}, Tombstones: []int{7}},    // tomb outside segments
		{NextID: 20, Segments: []SegmentMeta{{Base: 0, N: 5}}, Tombstones: []int{3, 3}}, // dup tombs
	}
	for i, m := range cases {
		var buf bytes.Buffer
		if err := WriteManifest(&buf, m); err == nil {
			t.Fatalf("case %d: invalid manifest accepted: %+v", i, m)
		}
	}
}

// FuzzManifest mirrors FuzzLoadIndex: every input must either decode or
// fail with a classified error, and decoded manifests must re-encode to a
// byte-identical form.
func FuzzManifest(f *testing.F) {
	f.Add(mustEncodeManifest(sampleManifest()))
	f.Add(mustEncodeManifest(&Manifest{NextID: 0}))
	f.Add(mustEncodeManifest(&Manifest{
		NextID:   8,
		Segments: []SegmentMeta{{N: 2, IDs: []int{1, 7}, BlobLen: 9}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadManifest(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrManifestCorrupt) && !errors.Is(err, ErrManifestTruncated) {
				t.Fatalf("unclassified error %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteManifest(&buf, m); err != nil {
			t.Fatalf("decoded manifest fails to re-encode: %v", err)
		}
		back, err := ReadManifest(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded manifest fails to decode: %v", err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("re-encode changed manifest:\n in %+v\nout %+v", m, back)
		}
	})
}
