// Package segstore is the segmented, epoch-based storage engine under the
// live search index: an LSM-style lifecycle for an append-mostly dataset
// with deletes.
//
// Writes land in a small mutable memtable; when it reaches the configured
// size it is sealed into an immutable segment in O(1) (the caller's
// Snapshot hook freezes the payload without copying data). Deletes are
// tombstones in an immutable copy-on-write set. Background compaction
// merges every sealed segment into one, dropping tombstoned entries and
// letting the caller rebuild expensive per-segment structures (filters)
// outside any lock. Readers take a consistent cut — the immutable segment
// list and tombstone set are published through one atomic pointer per
// epoch, and the memtable is peeked under a mutex held for O(1).
//
// The store is generic over the segment payload (an opaque `any` the
// caller owns); it manages only identity, lifecycle and visibility:
//
//   - ids are assigned monotonically and never reused, so NextID is the
//     dataset's high-water mark (deleted ids stay burned);
//   - a View's generation increases with every structural change
//     (seal, delete, compaction), while Epoch also counts inserts — the
//     invalidation point for anything cached per logical dataset state;
//   - tombstones always refer to ids present in some segment or the
//     memtable; compaction resolves exactly the tombstones whose ids it
//     merged away.
package segstore

import (
	"sync"
	"sync/atomic"
)

// Defaults for the zero Config.
const (
	// DefaultMemtableSize is how many entries the memtable accepts before
	// it is sealed into an immutable segment.
	DefaultMemtableSize = 1024
	// DefaultCompactAfter is how many sealed segments accumulate before
	// ShouldCompact reports true.
	DefaultCompactAfter = 4
)

// Config sizes the store's lifecycle; zero fields take the defaults.
type Config struct {
	// MemtableSize is the seal threshold (entries per memtable).
	MemtableSize int
	// CompactAfter is the sealed-segment count that makes ShouldCompact
	// report true. Negative disables the advisory trigger entirely.
	CompactAfter int
}

func (c Config) memtableSize() int {
	if c.MemtableSize <= 0 {
		return DefaultMemtableSize
	}
	return c.MemtableSize
}

func (c Config) compactAfter() int {
	if c.CompactAfter == 0 {
		return DefaultCompactAfter
	}
	return c.CompactAfter
}

// Hooks are the payload callbacks the store calls under its mutation lock;
// both must be O(1) (slice-header copies, not data copies).
type Hooks struct {
	// NewMem creates an empty memtable payload whose first entry will get
	// id base.
	NewMem func(base int) any
	// Snapshot freezes the first n entries of a memtable payload into an
	// immutable payload safe for concurrent readers while the original
	// keeps growing.
	Snapshot func(mem any, n int) any
}

// Segment is an immutable run of entries. IDs == nil means the ids are
// contiguous [Base, Base+N); a compacted segment with holes (resolved
// tombstones) carries the explicit ascending id list instead.
type Segment struct {
	Base    int
	N       int
	IDs     []int
	Payload any
}

// Len returns the number of entries.
func (s *Segment) Len() int { return s.N }

// ID returns the dataset id of the segment-local entry.
func (s *Segment) ID(local int) int {
	if s.IDs != nil {
		return s.IDs[local]
	}
	return s.Base + local
}

// MinID returns the smallest id (undefined for empty segments).
func (s *Segment) MinID() int {
	if s.IDs != nil {
		return s.IDs[0]
	}
	return s.Base
}

// MaxID returns the largest id (undefined for empty segments).
func (s *Segment) MaxID() int {
	if s.IDs != nil {
		return s.IDs[len(s.IDs)-1]
	}
	return s.Base + s.N - 1
}

// Find returns the local position of id, or false when the segment does
// not hold it.
func (s *Segment) Find(id int) (int, bool) {
	if s.N == 0 {
		return 0, false
	}
	if s.IDs == nil {
		if id < s.Base || id >= s.Base+s.N {
			return 0, false
		}
		return id - s.Base, true
	}
	lo, hi := 0, len(s.IDs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.IDs[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.IDs) && s.IDs[lo] == id {
		return lo, true
	}
	return 0, false
}

// View is one epoch's immutable state: the sealed segments (oldest first,
// strictly ascending id ranges) and the unresolved tombstones. Tombstones
// may also refer to memtable ids not covered by Segments; a Cut always
// covers them.
type View struct {
	Gen      uint64
	Segments []*Segment
	Tombs    *Tombstones
}

// Cut is a reader's consistent snapshot: the view's sealed segments plus a
// frozen snapshot of the memtable (appended as a final segment when
// non-empty). Every unresolved tombstone refers to an id inside Segments.
type Cut struct {
	Gen      uint64
	Segments []*Segment
	Tombs    *Tombstones
	NextID   int
}

// Total returns the number of entries across all segments, tombstoned
// ones included.
func (c Cut) Total() int {
	n := 0
	for _, sg := range c.Segments {
		n += sg.N
	}
	return n
}

// Live returns the number of visible (non-tombstoned) entries.
func (c Cut) Live() int { return c.Total() - c.Tombs.Len() }

// Find locates a visible id in the cut: the segment holding it and its
// local position there, or false when the id is absent or tombstoned.
func (c Cut) Find(id int) (*Segment, int, bool) {
	if c.Tombs.Has(id) {
		return nil, 0, false
	}
	lo, hi := 0, len(c.Segments)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.Segments[mid].N == 0 || c.Segments[mid].MaxID() < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(c.Segments) {
		return nil, 0, false
	}
	local, ok := c.Segments[lo].Find(id)
	if !ok {
		return nil, 0, false
	}
	return c.Segments[lo], local, true
}

// Stats is a point-in-time gauge snapshot for observability.
type Stats struct {
	Epoch       uint64
	Gen         uint64
	Segments    int // sealed segments (memtable excluded)
	MemtableLen int
	Tombstones  int
	NextID      int
	Live        int
	Seals       uint64
	Compactions uint64
}

// Store coordinates the segment lifecycle. Methods are safe for
// concurrent use.
type Store struct {
	cfg   Config
	hooks Hooks

	mu      sync.Mutex
	view    atomic.Pointer[View]
	nextID  int
	memBase int
	memLen  int
	mem     any

	epoch       atomic.Uint64
	compacting  atomic.Bool
	seals       atomic.Uint64
	compactions atomic.Uint64
}

// New returns an empty store.
func New(cfg Config, hooks Hooks) *Store {
	s := &Store{cfg: cfg, hooks: hooks}
	s.view.Store(&View{})
	s.mem = hooks.NewMem(0)
	return s
}

// Bootstrap installs recovered state: sealed segments (oldest first,
// strictly ascending id ranges), unresolved tombstone ids, and the
// high-water id. It must run before any concurrent use.
func (s *Store) Bootstrap(segs []*Segment, tombIDs []int, nextID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.view.Store(&View{Segments: segs, Tombs: NewTombstones(tombIDs)})
	s.nextID = nextID
	s.memBase = nextID
	s.memLen = 0
	s.mem = s.hooks.NewMem(nextID)
}

// Insert assigns the next id, applies add to the memtable payload under
// the mutation lock, and seals the memtable when it reaches the
// configured size. It reports the assigned id and whether a seal
// happened (the caller's cue to consider compaction).
func (s *Store) Insert(add func(id int, mem any)) (id int, sealed bool) {
	s.mu.Lock()
	id = s.nextID
	s.nextID++
	add(id, s.mem)
	s.memLen++
	if s.memLen >= s.cfg.memtableSize() {
		s.sealLocked()
		sealed = true
	}
	s.mu.Unlock()
	s.epoch.Add(1)
	return id, sealed
}

// sealLocked freezes the memtable into an immutable segment and starts a
// fresh one. Callers hold s.mu.
func (s *Store) sealLocked() {
	frozen := &Segment{
		Base:    s.memBase,
		N:       s.memLen,
		Payload: s.hooks.Snapshot(s.mem, s.memLen),
	}
	v := s.view.Load()
	segs := make([]*Segment, len(v.Segments)+1)
	copy(segs, v.Segments)
	segs[len(v.Segments)] = frozen
	s.view.Store(&View{Gen: v.Gen + 1, Segments: segs, Tombs: v.Tombs})
	s.memBase = s.nextID
	s.memLen = 0
	s.mem = s.hooks.NewMem(s.memBase)
	s.seals.Add(1)
}

// Seal freezes a non-empty memtable regardless of size (for tests and
// deterministic shutdowns). It reports whether anything was sealed.
func (s *Store) Seal() bool {
	s.mu.Lock()
	if s.memLen == 0 {
		s.mu.Unlock()
		return false
	}
	s.sealLocked()
	s.mu.Unlock()
	s.epoch.Add(1)
	return true
}

// Delete tombstones id. It reports false for ids never assigned, already
// tombstoned, or already resolved away by compaction — the id no longer
// (or never did) exist.
func (s *Store) Delete(id int) bool {
	s.mu.Lock()
	if id < 0 || id >= s.nextID {
		s.mu.Unlock()
		return false
	}
	v := s.view.Load()
	if v.Tombs.Has(id) {
		s.mu.Unlock()
		return false
	}
	// Ids at or above the memtable base live in the memtable; below it
	// the id must still be present in a sealed segment (a miss means an
	// earlier delete was compacted away).
	if id < s.memBase && !segmentsContain(v.Segments, id) {
		s.mu.Unlock()
		return false
	}
	s.view.Store(&View{Gen: v.Gen + 1, Segments: v.Segments, Tombs: v.Tombs.With(id)})
	s.mu.Unlock()
	s.epoch.Add(1)
	return true
}

// Contains reports whether id is currently visible (present and not
// tombstoned).
func (s *Store) Contains(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= s.nextID {
		return false
	}
	v := s.view.Load()
	if v.Tombs.Has(id) {
		return false
	}
	return id >= s.memBase || segmentsContain(v.Segments, id)
}

// View returns the current immutable view, lock-free. It excludes the
// memtable; use Read for a full consistent cut.
func (s *Store) View() *View { return s.view.Load() }

// Read takes a consistent cut: the immutable view plus an O(1) frozen
// snapshot of the memtable, captured together under the mutation lock so
// no seal or delete can fall between them.
func (s *Store) Read() Cut {
	s.mu.Lock()
	v := s.view.Load()
	var mem *Segment
	if s.memLen > 0 {
		mem = &Segment{Base: s.memBase, N: s.memLen, Payload: s.hooks.Snapshot(s.mem, s.memLen)}
	}
	nextID := s.nextID
	s.mu.Unlock()

	segs := v.Segments
	if mem != nil {
		segs = make([]*Segment, len(v.Segments)+1)
		copy(segs, v.Segments)
		segs[len(v.Segments)] = mem
	}
	return Cut{Gen: v.Gen, Segments: segs, Tombs: v.Tombs, NextID: nextID}
}

// Epoch returns the logical-state counter: it increases with every
// insert, delete, seal and compaction, so equal epochs imply an identical
// visible dataset — the invalidation key for query caches.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// NextID returns the high-water mark: the id the next insert will get.
func (s *Store) NextID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID
}

// Stats snapshots the store's gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	v := s.view.Load()
	st := Stats{
		Epoch:       s.epoch.Load(),
		Gen:         v.Gen,
		Segments:    len(v.Segments),
		MemtableLen: s.memLen,
		Tombstones:  v.Tombs.Len(),
		NextID:      s.nextID,
		Seals:       s.seals.Load(),
		Compactions: s.compactions.Load(),
	}
	total := s.memLen
	for _, sg := range v.Segments {
		total += sg.N
	}
	st.Live = total - st.Tombstones
	s.mu.Unlock()
	return st
}

// ShouldCompact reports whether the sealed-segment count reached the
// configured trigger (advisory; Compact itself runs whenever asked).
func (s *Store) ShouldCompact() bool {
	after := s.cfg.compactAfter()
	if after < 0 {
		return false
	}
	return len(s.view.Load().Segments) >= after
}

// Compact merges every currently sealed segment into one. The merge
// callback runs outside any lock with an immutable input slice and the
// tombstone set frozen at compaction start; it must return a segment
// holding exactly the non-tombstoned entries of the inputs in ascending
// id order (nil when none survive). Segments sealed while the merge runs
// are spliced in unchanged behind the merged output, and only tombstones
// the merge resolved are removed — ones that arrived mid-merge stay until
// the next cycle. Compaction is single-flight: a call that finds one
// already running returns false immediately.
func (s *Store) Compact(merge func(segs []*Segment, tombs *Tombstones) *Segment) bool {
	if !s.compacting.CompareAndSwap(false, true) {
		return false
	}
	defer s.compacting.Store(false)

	v := s.view.Load()
	inputs := v.Segments
	if len(inputs) == 0 {
		return false
	}

	merged := merge(inputs, v.Tombs)
	resolved := resolvedIDs(inputs, v.Tombs)

	s.mu.Lock()
	cur := s.view.Load()
	segs := make([]*Segment, 0, len(cur.Segments)-len(inputs)+1)
	if merged != nil && merged.N > 0 {
		segs = append(segs, merged)
	}
	segs = append(segs, cur.Segments[len(inputs):]...)
	s.view.Store(&View{Gen: cur.Gen + 1, Segments: segs, Tombs: cur.Tombs.Without(resolved)})
	s.mu.Unlock()
	s.epoch.Add(1)
	s.compactions.Add(1)
	return true
}

// segmentsContain reports whether id falls inside one of the (ascending,
// non-overlapping) segments.
func segmentsContain(segs []*Segment, id int) bool {
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid].N == 0 || segs[mid].MaxID() < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(segs) {
		return false
	}
	_, ok := segs[lo].Find(id)
	return ok
}

// resolvedIDs lists the tombstoned ids that live inside segs — the ones a
// merge over segs drops.
func resolvedIDs(segs []*Segment, tombs *Tombstones) []int {
	if tombs.Len() == 0 {
		return nil
	}
	var out []int
	for _, id := range tombs.IDs() {
		if segmentsContain(segs, id) {
			out = append(out, id)
		}
	}
	return out
}
