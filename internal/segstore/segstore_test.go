package segstore

import (
	"errors"
	"sync"
	"testing"
)

// memPayload is the test stand-in for the caller's payload: a growing int
// slice whose snapshot is a slice-header copy.
type memPayload struct {
	vals []int
}

func testHooks() Hooks {
	return Hooks{
		NewMem: func(base int) any { return &memPayload{} },
		Snapshot: func(mem any, n int) any {
			m := mem.(*memPayload)
			return m.vals[:n:n]
		},
	}
}

func insertVal(s *Store, v int) (int, bool) {
	return s.Insert(func(id int, mem any) {
		m := mem.(*memPayload)
		m.vals = append(m.vals, v)
	})
}

// collectLive walks a cut and returns id→value for every visible entry.
func collectLive(c Cut) map[int]int {
	out := map[int]int{}
	for _, sg := range c.Segments {
		var vals []int
		switch p := sg.Payload.(type) {
		case []int:
			vals = p
		case *memPayload:
			vals = p.vals
		}
		for i := 0; i < sg.Len(); i++ {
			id := sg.ID(i)
			if !c.Tombs.Has(id) {
				out[id] = vals[i]
			}
		}
	}
	return out
}

func TestLifecycleSealAndRead(t *testing.T) {
	s := New(Config{MemtableSize: 3}, testHooks())
	for i := 0; i < 7; i++ {
		id, sealed := insertVal(s, 100+i)
		if id != i {
			t.Fatalf("insert %d got id %d", i, id)
		}
		if wantSeal := (i+1)%3 == 0; sealed != wantSeal {
			t.Fatalf("insert %d sealed=%v, want %v", i, sealed, wantSeal)
		}
	}
	st := s.Stats()
	if st.Segments != 2 || st.MemtableLen != 1 || st.NextID != 7 || st.Live != 7 {
		t.Fatalf("stats %+v", st)
	}
	c := s.Read()
	if len(c.Segments) != 3 { // 2 sealed + memtable snapshot
		t.Fatalf("cut has %d segments", len(c.Segments))
	}
	live := collectLive(c)
	if len(live) != 7 {
		t.Fatalf("cut shows %d entries", len(live))
	}
	for id, v := range live {
		if v != 100+id {
			t.Fatalf("id %d has value %d", id, v)
		}
	}
	// The cut's memtable snapshot must not see later inserts.
	insertVal(s, 999)
	if got := collectLive(c); len(got) != 7 {
		t.Fatalf("old cut grew to %d entries", len(got))
	}
}

func TestDeleteSemantics(t *testing.T) {
	s := New(Config{MemtableSize: 4}, testHooks())
	for i := 0; i < 6; i++ {
		insertVal(s, i)
	}
	if s.Delete(-1) || s.Delete(6) {
		t.Fatal("deleted an id that was never assigned")
	}
	if !s.Delete(2) { // sealed segment
		t.Fatal("delete of sealed id failed")
	}
	if !s.Delete(5) { // memtable
		t.Fatal("delete of memtable id failed")
	}
	if s.Delete(2) {
		t.Fatal("double delete succeeded")
	}
	if s.Contains(2) || s.Contains(5) || !s.Contains(0) {
		t.Fatal("visibility wrong after deletes")
	}
	c := s.Read()
	live := collectLive(c)
	if len(live) != 4 {
		t.Fatalf("live count %d after 2 deletes of 6", len(live))
	}
	if _, ok := live[2]; ok {
		t.Fatal("tombstoned id visible in cut")
	}
	if got := s.Stats().Live; got != 4 {
		t.Fatalf("stats live %d", got)
	}
}

// mergeInts is the test merge kernel: concatenates surviving values in id
// order, explicit ids when holes appear.
func mergeInts(segs []*Segment, tombs *Tombstones) *Segment {
	var ids []int
	var vals []int
	for _, sg := range segs {
		sv := sg.Payload.([]int)
		for i := 0; i < sg.Len(); i++ {
			if id := sg.ID(i); !tombs.Has(id) {
				ids = append(ids, id)
				vals = append(vals, sv[i])
			}
		}
	}
	if len(ids) == 0 {
		return nil
	}
	out := &Segment{N: len(ids), IDs: ids, Payload: vals}
	if ids[len(ids)-1]-ids[0] == len(ids)-1 {
		out.Base, out.IDs = ids[0], nil
	}
	return out
}

func TestCompactResolvesTombstones(t *testing.T) {
	s := New(Config{MemtableSize: 2}, testHooks())
	for i := 0; i < 6; i++ {
		insertVal(s, 10*i)
	}
	s.Delete(1)
	s.Delete(4)
	before := collectLive(s.Read())

	if !s.Compact(mergeInts) {
		t.Fatal("compact returned false")
	}
	st := s.Stats()
	if st.Segments != 1 {
		t.Fatalf("%d segments after compaction", st.Segments)
	}
	if st.Tombstones != 0 {
		t.Fatalf("%d tombstones survived full compaction", st.Tombstones)
	}
	after := collectLive(s.Read())
	if len(after) != len(before) {
		t.Fatalf("live set changed size: %d -> %d", len(before), len(after))
	}
	for id, v := range before {
		if after[id] != v {
			t.Fatalf("id %d: %d -> %d", id, v, after[id])
		}
	}
	// Deleting a compacted-away id must fail; NextID never rewinds.
	if s.Delete(1) {
		t.Fatal("delete of resolved id succeeded")
	}
	if s.NextID() != 6 {
		t.Fatalf("next id %d", s.NextID())
	}
	if id, _ := insertVal(s, 60); id != 6 {
		t.Fatalf("post-compaction insert got id %d", id)
	}
}

func TestCompactKeepsMidMergeState(t *testing.T) {
	s := New(Config{MemtableSize: 2}, testHooks())
	for i := 0; i < 4; i++ {
		insertVal(s, i)
	}
	// The merge callback simulates concurrent traffic: a new sealed
	// segment and a new tombstone arrive while it runs.
	ok := s.Compact(func(segs []*Segment, tombs *Tombstones) *Segment {
		insertVal(s, 4)
		insertVal(s, 5) // seals a third segment mid-merge
		s.Delete(4)     // tombstone the mid-merge insert
		return mergeInts(segs, tombs)
	})
	if !ok {
		t.Fatal("compact returned false")
	}
	st := s.Stats()
	if st.Segments != 2 { // merged + the mid-merge seal
		t.Fatalf("%d segments", st.Segments)
	}
	if st.Tombstones != 1 { // the mid-merge tombstone must survive
		t.Fatalf("%d tombstones", st.Tombstones)
	}
	live := collectLive(s.Read())
	if len(live) != 5 {
		t.Fatalf("live %d", len(live))
	}
	if _, ok := live[4]; ok {
		t.Fatal("mid-merge tombstoned id visible")
	}
}

func TestEpochAdvances(t *testing.T) {
	s := New(Config{MemtableSize: 2}, testHooks())
	e0 := s.Epoch()
	insertVal(s, 0)
	if s.Epoch() == e0 {
		t.Fatal("insert did not advance epoch")
	}
	insertVal(s, 1) // seals
	e1 := s.Epoch()
	s.Delete(0)
	if s.Epoch() == e1 {
		t.Fatal("delete did not advance epoch")
	}
	e2 := s.Epoch()
	s.Compact(mergeInts)
	if s.Epoch() == e2 {
		t.Fatal("compaction did not advance epoch")
	}
}

func TestBootstrap(t *testing.T) {
	s := New(Config{}, testHooks())
	seg := &Segment{N: 3, IDs: []int{0, 2, 5}, Payload: []int{10, 12, 15}}
	s.Bootstrap([]*Segment{seg}, []int{2}, 6)
	if s.Contains(2) || !s.Contains(5) || s.Contains(3) {
		t.Fatal("bootstrap visibility wrong")
	}
	if id, _ := insertVal(s, 16); id != 6 {
		t.Fatalf("first post-bootstrap id %d", id)
	}
	live := collectLive(s.Read())
	if len(live) != 3 || live[5] != 15 || live[6] != 16 {
		t.Fatalf("live %v", live)
	}
}

func TestShouldCompact(t *testing.T) {
	s := New(Config{MemtableSize: 1, CompactAfter: 2}, testHooks())
	insertVal(s, 0)
	if s.ShouldCompact() {
		t.Fatal("trigger fired at 1 segment")
	}
	insertVal(s, 1)
	if !s.ShouldCompact() {
		t.Fatal("trigger idle at 2 segments")
	}
	off := New(Config{MemtableSize: 1, CompactAfter: -1}, testHooks())
	for i := 0; i < 10; i++ {
		insertVal(off, i)
	}
	if off.ShouldCompact() {
		t.Fatal("disabled trigger fired")
	}
}

// TestConcurrentMixedOps drives inserts, deletes, reads and compactions in
// parallel; run under -race it checks the publication protocol.
func TestConcurrentMixedOps(t *testing.T) {
	s := New(Config{MemtableSize: 8, CompactAfter: 2}, testHooks())
	var writers, bg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 300; i++ {
				id, _ := insertVal(s, i)
				if i%3 == 0 {
					s.Delete(id)
				}
			}
		}()
	}
	bg.Add(2)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := s.Read()
			for id := range collectLive(c) {
				if c.Tombs.Has(id) {
					t.Error("tombstoned id in live set")
					return
				}
			}
		}
	}()
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s.ShouldCompact() {
				s.Compact(mergeInts)
			}
		}
	}()
	writers.Wait()
	close(stop)
	bg.Wait()

	s.Compact(mergeInts)
	st := s.Stats()
	if st.NextID != 1200 {
		t.Fatalf("next id %d", st.NextID)
	}
	live := collectLive(s.Read())
	if len(live) != st.Live {
		t.Fatalf("cut live %d, stats live %d", len(live), st.Live)
	}
}

func TestTombstonesCOW(t *testing.T) {
	var nilSet *Tombstones
	if nilSet.Has(0) || nilSet.Len() != 0 || nilSet.IDs() != nil {
		t.Fatal("nil set misbehaves")
	}
	a := nilSet.With(3)
	b := a.With(1)
	if a.Len() != 1 || b.Len() != 2 || a.Has(1) {
		t.Fatal("With mutated the receiver")
	}
	ids := b.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("ids %v", ids)
	}
	if got := b.Without([]int{1, 3}); got != nil {
		t.Fatal("emptied set is not nil")
	}
	if got := b.Without([]int{3}); got.Len() != 1 || !got.Has(1) {
		t.Fatal("partial Without wrong")
	}
	if b.Len() != 2 {
		t.Fatal("Without mutated the receiver")
	}
}

func TestDeleteErrorsDistinguishable(t *testing.T) {
	// Sanity that errors.Is works on the exported manifest errors (they
	// are the package's only error values).
	if errors.Is(ErrManifestCorrupt, ErrManifestTruncated) {
		t.Fatal("manifest errors alias each other")
	}
}
