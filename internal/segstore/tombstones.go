package segstore

import "sort"

// Tombstones is an immutable set of deleted ids. Mutation returns a new
// set (copy-on-write), so a published View's tombstones never change
// under a reader; a nil *Tombstones is the valid empty set, letting the
// hot Has path stay one nil check for delete-free workloads.
type Tombstones struct {
	m map[int]struct{}
}

// NewTombstones builds a set from ids (nil for an empty list).
func NewTombstones(ids []int) *Tombstones {
	if len(ids) == 0 {
		return nil
	}
	m := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		m[id] = struct{}{}
	}
	return &Tombstones{m: m}
}

// Has reports whether id is tombstoned.
func (t *Tombstones) Has(id int) bool {
	if t == nil {
		return false
	}
	_, ok := t.m[id]
	return ok
}

// Len returns the set size.
func (t *Tombstones) Len() int {
	if t == nil {
		return 0
	}
	return len(t.m)
}

// IDs returns the tombstoned ids in ascending order.
func (t *Tombstones) IDs() []int {
	if t == nil {
		return nil
	}
	out := make([]int, 0, len(t.m))
	for id := range t.m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// With returns the set plus id.
func (t *Tombstones) With(id int) *Tombstones {
	m := make(map[int]struct{}, t.Len()+1)
	if t != nil {
		for k := range t.m {
			m[k] = struct{}{}
		}
	}
	m[id] = struct{}{}
	return &Tombstones{m: m}
}

// Without returns the set minus ids (nil when it empties).
func (t *Tombstones) Without(ids []int) *Tombstones {
	if t == nil || len(ids) == 0 {
		return t
	}
	drop := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		drop[id] = struct{}{}
	}
	m := make(map[int]struct{}, len(t.m))
	for k := range t.m {
		if _, gone := drop[k]; !gone {
			m[k] = struct{}{}
		}
	}
	if len(m) == 0 {
		return nil
	}
	return &Tombstones{m: m}
}
