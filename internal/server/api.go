package server

import (
	"treesim/internal/obs"
	"treesim/internal/search"
)

// Wire types of the HTTP/JSON API. Trees travel in the canonical text
// encoding of package tree (the same format datasets use on disk), e.g.
// "a(b(c,d),e)".

// KNNRequest asks for the K nearest neighbors of Tree.
type KNNRequest struct {
	Tree string `json:"tree"`
	K    int    `json:"k"`
}

// RangeRequest asks for every indexed tree within edit distance Tau of
// Tree (inclusive).
type RangeRequest struct {
	Tree string `json:"tree"`
	Tau  int    `json:"tau"`
}

// DistRequest asks for the exact edit distance between two ad-hoc trees
// (neither needs to be indexed).
type DistRequest struct {
	T1 string `json:"t1"`
	T2 string `json:"t2"`
}

// DistResponse reports the exact distance and the binary branch lower
// bound that a filter would have used — handy for eyeballing filter
// tightness.
type DistResponse struct {
	EditDistance int `json:"edit_distance"`
	LowerBound   int `json:"lower_bound"`
}

// BatchRequest runs one query per tree, all with the same parameters.
// Op is "knn" or "range".
type BatchRequest struct {
	Op    string   `json:"op"`
	Trees []string `json:"trees"`
	K     int      `json:"k,omitempty"`
	Tau   int      `json:"tau,omitempty"`
}

// InsertRequest adds one tree to the live index.
type InsertRequest struct {
	Tree string `json:"tree"`
}

// InsertResponse reports the dataset position assigned to the inserted
// tree and the index size after the insert.
type InsertResponse struct {
	ID   int `json:"id"`
	Size int `json:"size"`
}

// DeleteResponse reports the id a DELETE /v1/trees/{id} tombstoned and
// the number of visible trees after the delete.
type DeleteResponse struct {
	ID   int `json:"id"`
	Live int `json:"live"`
}

// TreeResponse is one indexed tree.
type TreeResponse struct {
	ID   int    `json:"id"`
	Tree string `json:"tree"`
	Size int    `json:"size"`
}

// ResultJSON is one query answer.
type ResultJSON struct {
	ID   int    `json:"id"`
	Dist int    `json:"dist"`
	Tree string `json:"tree,omitempty"`
}

// StatsJSON mirrors search.Stats; AccessedFraction is the paper's quality
// measure (share of the dataset that paid an exact distance computation),
// Candidates the filter's survivor count, FalsePositives the verified
// candidates whose exact distance then failed the predicate.
type StatsJSON struct {
	Dataset          int     `json:"dataset"`
	Candidates       int     `json:"candidates"`
	Verified         int     `json:"verified"`
	Results          int     `json:"results"`
	FalsePositives   int     `json:"false_positives"`
	AccessedFraction float64 `json:"accessed_fraction"`
	FilterMicros     int64   `json:"filter_us"`
	RefineMicros     int64   `json:"refine_us"`
}

// QueryResponse answers /v1/knn and /v1/range. Trace is present only when
// the request asked for it (?trace=1): the request's span tree, stage
// durations and counters included. Explain is present only with
// ?explain=1: the query's filter-quality analysis (bound distribution,
// false positives, tightness samples — see search.Explain).
type QueryResponse struct {
	Results []ResultJSON      `json:"results"`
	Stats   StatsJSON         `json:"stats"`
	Trace   *obs.SpanSnapshot `json:"trace,omitempty"`
	Explain *search.Explain   `json:"explain,omitempty"`
}

// BatchResponse answers /v1/batch, one entry per input tree in order.
// With ?trace=1, Trace carries the whole batch's span tree (one query[i]
// child per input tree).
type BatchResponse struct {
	Queries []QueryResponse   `json:"queries"`
	Trace   *obs.SpanSnapshot `json:"trace,omitempty"`
}

// ReadyResponse answers /readyz. Status is "ready", "recovering" (WAL
// replay in progress; ReplayedRecords counts records applied so far),
// "degraded" (durable writes failing: queries still serve — the response
// stays 200 — but inserts and deletes get 503 not_durable until the disk
// heals; DegradedReason names what failed) or "draining". When ready,
// ReplayedRecords is the startup recovery total and WALRecords counts
// writes logged since.
type ReadyResponse struct {
	Status          string `json:"status"`
	DegradedReason  string `json:"degraded_reason,omitempty"`
	ReplayedRecords uint64 `json:"replayed_records,omitempty"`
	WALRecords      uint64 `json:"wal_records,omitempty"`
}

// Stable machine-readable error codes carried by ErrorDetail.Code. Clients
// should branch on these, not on message text or HTTP status alone: the
// code distinguishes causes that share a status (e.g. a malformed JSON
// body and a malformed tree are both 400).
const (
	ErrCodeInvalidRequest   = "invalid_request"   // body is not valid JSON for the endpoint
	ErrCodeInvalidTree      = "invalid_tree"      // a tree field failed to parse or was empty
	ErrCodeInvalidArgument  = "invalid_argument"  // a scalar parameter is out of range (k, tau, op, id, batch size)
	ErrCodeNotFound         = "not_found"         // the referenced resource does not exist
	ErrCodeDeadlineExceeded = "deadline_exceeded" // the request deadline expired mid-query
	ErrCodeCanceled         = "canceled"          // the client went away mid-query
	ErrCodeOverloaded       = "overloaded"        // admission control refused the request; retry later
	ErrCodeNotDurable       = "not_durable"       // the durable write path is failing (WAL append or degraded mode); retry
	ErrCodeForbidden        = "forbidden"         // the endpoint is restricted (debug endpoints are loopback-only)
	ErrCodeInternal         = "internal"          // handler panic or other server-side fault
)

// ErrorDetail is the payload of every non-2xx JSON answer: a stable code
// for programs, a human-readable message, and the request id for log
// correlation.
type ErrorDetail struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// ErrorResponse is the body of every non-2xx JSON answer, the uniform
// envelope {"error": {"code": ..., "message": ..., "request_id": ...}}.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

func statsJSON(s search.Stats) StatsJSON {
	return StatsJSON{
		Dataset:          s.Dataset,
		Candidates:       s.Candidates,
		Verified:         s.Verified,
		Results:          s.Results,
		FalsePositives:   s.FalsePositives,
		AccessedFraction: s.AccessedFraction(),
		FilterMicros:     s.FilterTime.Microseconds(),
		RefineMicros:     s.RefineTime.Microseconds(),
	}
}
