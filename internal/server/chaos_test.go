package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"treesim/internal/faultfs"
	"treesim/internal/search"
)

// The chaos matrix: every durability operation crossed with every fault
// class. Each cell runs a small workload that drives the target
// operation while the fault is armed, records exactly which writes the
// server acknowledged, then "restarts" — abandons the process state and
// rebuilds a server from nothing but the on-disk files — and asserts the
// two invariants every cell of the grid must uphold:
//
//  1. Zero acked-write loss: every insert and delete the server
//     answered 200 is present (or still deleted) after recovery.
//     Refused writes may or may not have left bytes behind; either way
//     they must not displace an acknowledged one.
//  2. Parity: the recovered live index, a snapshot written from it, and
//     a second recovery from that snapshot + WAL all describe the same
//     tree-for-tree state.
//
// Run the full grid under the race detector with `make chaos`.

// chaosFault is one armed fault: kind ∈ {crash, short_write,
// fsync_error}; offset counts write calls after arming for the
// write-counted kinds, so the same operation is hit at several distinct
// syscall boundaries.
type chaosFault struct {
	kind   string
	offset int
}

func (f chaosFault) name() string {
	if f.offset > 0 {
		return fmt.Sprintf("%s@%d", f.kind, f.offset)
	}
	return f.kind
}

// arm installs the fault relative to the injector's current write count.
// A short write is paired with an immediate crash: the torn bytes stay
// on disk exactly as a power cut would leave them, instead of being
// rolled back by the still-running process.
func (f chaosFault) arm(inj *faultfs.Injector) {
	switch f.kind {
	case "crash":
		inj.SetCrashAfterWriteN(inj.Writes() + f.offset)
	case "short_write":
		inj.SetShortWriteN(inj.Writes() + f.offset)
		inj.SetCrashAfterWriteN(inj.Writes() + f.offset)
	case "fsync_error":
		inj.SetFailSync(true)
	default:
		panic("unknown fault " + f.kind)
	}
}

// chaosIndexOpts makes seal and compaction frequent enough that a
// handful of inserts drives them: the memtable seals every 4 trees and
// two sealed segments trigger a compaction.
func chaosIndexOpts() []search.IndexOption {
	return []search.IndexOption{search.WithMemtableSize(4), search.WithCompactionThreshold(2)}
}

// chaosCell is the running state of one grid cell.
type chaosCell struct {
	cfg     Config
	inj     *faultfs.Injector
	s       *Server
	hs      *httptest.Server
	n       int             // inserts attempted, for unique tree texts
	acked   map[string]bool // tree text → acknowledged, must survive
	deleted map[int]bool    // id → acknowledged delete, must stay deleted
}

func startChaosCell(t *testing.T) *chaosCell {
	t.Helper()
	cfg := durableConfig(t.TempDir())
	cfg.SnapshotKeep = 2
	cfg.WALMaxBytes = 160 // a few records per segment: rotation is routine
	cfg.DegradedProbeInterval = time.Minute
	c := &chaosCell{
		cfg: cfg, inj: &faultfs.Injector{},
		acked: map[string]bool{}, deleted: map[int]bool{},
	}
	opts := append([]search.IndexOption{search.WithFilter(search.NewBiBranch())}, chaosIndexOpts()...)
	ix := search.NewIndex(testDataset(8, 7), opts...)
	c.s = New(ix, cfg)
	c.s.fs = c.inj
	if _, err := c.s.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := c.s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	c.hs = httptest.NewServer(c.s.Handler())
	t.Cleanup(c.hs.Close)
	return c
}

// tryInsert drives one insert; a 200 is recorded as acknowledged, a 503
// (fault or degraded mode) as refused. Anything else fails the cell.
func (c *chaosCell) tryInsert(t *testing.T) {
	t.Helper()
	c.n++
	text := fmt.Sprintf("chaos%d(a(b%d),c)", c.n, c.n)
	code := postJSON(t, c.hs.URL+"/v1/trees", InsertRequest{Tree: text}, nil)
	switch code {
	case 200:
		c.acked[text] = true
	case 503:
	default:
		t.Fatalf("insert %q: status %d, want 200 or 503", text, code)
	}
}

func (c *chaosCell) tryDelete(t *testing.T, id int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/trees/%d", c.hs.URL, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case 200:
		c.deleted[id] = true
	case 503:
	default:
		t.Fatalf("delete %d: status %d, want 200 or 503", id, resp.StatusCode)
	}
}

// driveOp runs the cell's target operation with the fault armed. Ops
// that are side effects of inserts (seal, compact, rotate) are driven by
// enough inserts to cross their thresholds; snapshot and trim are driven
// directly (trim fires inside the second snapshot once the keep=2
// retention ring is full).
func (c *chaosCell) driveOp(t *testing.T, op string) {
	t.Helper()
	switch op {
	case "insert":
		c.tryInsert(t)
		c.tryInsert(t)
	case "delete":
		c.tryDelete(t, 0)
		c.tryDelete(t, 1)
		c.tryInsert(t)
	case "seal":
		for i := 0; i < 6; i++ { // memtable seals every 4 trees
			c.tryInsert(t)
		}
	case "compact":
		for i := 0; i < 12; i++ { // 3 seals → compaction threshold 2
			c.tryInsert(t)
		}
	case "snapshot":
		c.tryInsert(t)
		_ = c.s.Snapshot() // fault may refuse it; the invariants hold either way
		c.tryInsert(t)
	case "rotate":
		for i := 0; i < 8; i++ { // ~40-byte records, 160-byte segments
			c.tryInsert(t)
		}
	case "trim":
		c.tryInsert(t)
		_ = c.s.Snapshot() // ring full (baseline + this) → TrimPrefix runs
		c.tryInsert(t)
		_ = c.s.Snapshot()
	default:
		t.Fatalf("unknown op %s", op)
	}
}

// abandon kills the cell's process state without any graceful teardown —
// no final snapshot, no WAL close — leaving the disk exactly as the
// fault did. The degraded prober (if one started) is stopped so cells
// don't leak goroutines.
func (c *chaosCell) abandon() {
	c.hs.Close()
	c.s.degradedMu.Lock()
	c.s.closing = true
	c.s.degradedMu.Unlock()
	c.s.stopSnapshotLoop()
	c.s.bg.Wait()
}

// chaosRestart is what a fresh process does: fall back to the newest
// loadable snapshot generation, replay the WAL, serve.
func chaosRestart(t *testing.T, cfg Config) *Server {
	t.Helper()
	ix, _, err := LoadSnapshotFallback(nil, cfg.SnapshotPath, cfg.SnapshotKeep, chaosIndexOpts()...)
	if err != nil {
		t.Fatalf("snapshot fallback after fault: %v", err)
	}
	s := New(ix, cfg)
	if _, err := s.Recover(); err != nil {
		t.Fatalf("recovery after fault: %v", err)
	}
	return s
}

// chaosState captures an index tree-for-tree: text at every live id,
// absence at every deleted one.
func chaosState(s *Server) map[int]string {
	state := make(map[int]string)
	for id := 0; id < s.ix.Size(); id++ {
		if tr, ok := s.ix.TreeAt(id); ok {
			state[id] = tr.String()
		}
	}
	return state
}

func runChaosCell(t *testing.T, op string, fault chaosFault) {
	c := startChaosCell(t)

	// Healthy traffic first, so recovery has real state to preserve.
	for i := 0; i < 2; i++ {
		c.tryInsert(t)
		if !c.acked[fmt.Sprintf("chaos%d(a(b%d),c)", c.n, c.n)] {
			t.Fatalf("healthy insert %d refused before any fault", c.n)
		}
	}
	c.tryDelete(t, 2)
	if !c.deleted[2] {
		t.Fatal("healthy delete refused before any fault")
	}

	fault.arm(c.inj)
	c.driveOp(t, op)
	c.tryInsert(t) // post-fault traffic: degraded fast-path or recovery
	c.abandon()

	// Invariant 1: zero acked-write loss across the restart.
	s2 := chaosRestart(t, c.cfg)
	visible := make(map[string]bool, s2.ix.Size())
	for _, text := range chaosState(s2) {
		visible[text] = true
	}
	for text := range c.acked {
		if !visible[text] {
			t.Errorf("acked insert %q lost after %s/%s recovery", text, op, fault.name())
		}
	}
	for id := range c.deleted {
		if _, ok := s2.ix.TreeAt(id); ok {
			t.Errorf("acked delete of %d resurrected after %s/%s recovery", id, op, fault.name())
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Invariant 2: snapshot / WAL / live-index parity. A snapshot written
	// from the recovered state plus the trimmed WAL must reproduce it
	// exactly in a second recovery.
	if err := s2.Snapshot(); err != nil {
		t.Fatalf("snapshot on healed disk: %v", err)
	}
	want := chaosState(s2)
	s2.wal.Close()
	s3 := chaosRestart(t, c.cfg)
	defer s3.wal.Close()
	if got := chaosState(s3); len(got) != len(want) {
		t.Fatalf("second recovery has %d live trees, want %d", len(got), len(want))
	} else {
		for id, text := range want {
			if got[id] != text {
				t.Fatalf("second recovery: tree %d = %q, want %q", id, got[id], text)
			}
		}
	}
}

// TestChaosMatrix: the full operation × fault grid. Each write-counted
// fault is fired at several offsets so crashes land on distinct syscall
// boundaries (mid-rotation, mid-publication, between records).
func TestChaosMatrix(t *testing.T) {
	ops := []string{"insert", "delete", "seal", "compact", "snapshot", "rotate", "trim"}
	faults := []chaosFault{
		{kind: "crash", offset: 1},
		{kind: "crash", offset: 2},
		{kind: "crash", offset: 4},
		{kind: "short_write", offset: 1},
		{kind: "short_write", offset: 2},
		{kind: "short_write", offset: 4},
		{kind: "fsync_error"},
	}
	for _, op := range ops {
		for _, fault := range faults {
			t.Run(op+"/"+fault.name(), func(t *testing.T) {
				runChaosCell(t, op, fault)
			})
		}
	}
}
