package server

import (
	"net"
	"net/http"
	"strconv"
	"time"

	"treesim/internal/obs"
)

// Debug endpoints for the tail-latency flight recorder and the SLO
// table. They expose raw span trees and per-request analysis, so they
// are loopback-only: an operator shells into the box (or port-forwards)
// to use them, the same trust model as Go's net/http/pprof convention.

// DebugTracesResponse is the GET /debug/traces body: the recorder's
// retention stats followed by the matching traces, newest first.
type DebugTracesResponse struct {
	Stats  obs.RecorderStats    `json:"stats"`
	Traces []*obs.RetainedTrace `json:"traces"`
}

// SLOResponse is the GET /debug/slo body: the burn-rate table plus the
// degraded-mode view, so one fetch answers both "are we burning budget"
// and "is the write path healthy".
type SLOResponse struct {
	obs.SLOReport
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	DegradedTotal  uint64 `json:"degraded_total"`
}

// loopbackOnly gates a handler to connections from the local host. An
// empty RemoteAddr (direct handler invocation, as in unit tests) is
// allowed; anything unparseable or non-loopback gets 403.
func (s *Server) loopbackOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.RemoteAddr != "" {
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				host = r.RemoteAddr
			}
			ip := net.ParseIP(host)
			if ip == nil || !ip.IsLoopback() {
				writeError(w, http.StatusForbidden, ErrCodeForbidden,
					"debug endpoints are loopback-only", requestID(w))
				return
			}
		}
		h(w, r)
	}
}

// handleDebugTraces lists retained traces. Query parameters: endpoint
// (exact match), min_us (minimum duration in microseconds), error=1
// (errored requests only), limit (cap the result count).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			"flight recorder disabled (-trace-ring < 0)", requestID(w))
		return
	}
	q := r.URL.Query()
	f := obs.TraceFilter{
		Endpoint:  q.Get("endpoint"),
		ErrorOnly: q.Get("error") == "1",
	}
	if v := q.Get("min_us"); v != "" {
		us, err := strconv.ParseInt(v, 10, 64)
		if err != nil || us < 0 {
			writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument,
				"min_us must be a non-negative integer", requestID(w))
			return
		}
		f.MinDur = time.Duration(us) * time.Microsecond
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, ErrCodeInvalidArgument,
				"limit must be a non-negative integer", requestID(w))
			return
		}
		f.Limit = n
	}
	resp := DebugTracesResponse{Stats: s.recorder.Stats(), Traces: s.recorder.List(f)}
	if resp.Traces == nil {
		resp.Traces = []*obs.RetainedTrace{} // render as [], not null
	}
	writeJSON(w, http.StatusOK, resp)
}

// DebugTraceResponse is the GET /debug/traces/{id} body: the retained
// trace plus, when the tail profiler captured one for the same trace,
// the profile's id — the link from "this request was slow" to "here is
// the CPU evidence" (GET /debug/profiles/{profile_id}).
type DebugTraceResponse struct {
	*obs.RetainedTrace
	ProfileID string `json:"profile_id,omitempty"`
}

// handleDebugTrace fetches one retained trace by request ID or hex
// trace ID.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			"flight recorder disabled (-trace-ring < 0)", requestID(w))
		return
	}
	id := r.PathValue("id")
	tr := s.recorder.Get(id)
	if tr == nil {
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			"no retained trace for request or trace id "+strconv.Quote(id)+" (evicted or never retained)", requestID(w))
		return
	}
	resp := DebugTraceResponse{RetainedTrace: tr}
	if cp, ok := s.profiler.ByTraceID(tr.TraceID); ok {
		resp.ProfileID = cp.ID
	}
	writeJSON(w, http.StatusOK, resp)
}

// DebugProfilesResponse is the GET /debug/profiles body: capture stats
// followed by the retained profiles, newest first, payloads omitted.
type DebugProfilesResponse struct {
	Stats    obs.ProfilerStats     `json:"stats"`
	Profiles []obs.CapturedProfile `json:"profiles"`
}

// handleDebugProfiles lists tail-triggered CPU profiles.
func (s *Server) handleDebugProfiles(w http.ResponseWriter, r *http.Request) {
	if s.profiler == nil {
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			"tail profiler disabled (-profile-every < 0 or flight recorder off)", requestID(w))
		return
	}
	resp := DebugProfilesResponse{Stats: s.profiler.Stats(), Profiles: s.profiler.List()}
	if resp.Profiles == nil {
		resp.Profiles = []obs.CapturedProfile{} // render as [], not null
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDebugProfile serves one profile's pprof-gzip payload, ready for
// `go tool pprof` straight off a curl.
func (s *Server) handleDebugProfile(w http.ResponseWriter, r *http.Request) {
	if s.profiler == nil {
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			"tail profiler disabled (-profile-every < 0 or flight recorder off)", requestID(w))
		return
	}
	id := r.PathValue("id")
	cp, ok := s.profiler.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound,
			"no profile "+strconv.Quote(id)+" (evicted or never captured)", requestID(w))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename="+strconv.Quote(cp.ID+".pprof.gz"))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(cp.Bytes)
}

// handleDebugSLO serves the burn-rate table.
func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	deg, reason := s.degradedState()
	resp := SLOResponse{
		SLOReport:      s.slo.Report(),
		Degraded:       deg,
		DegradedReason: reason,
		DegradedTotal:  s.degradedTotal.Load(),
	}
	if resp.Endpoints == nil {
		resp.Endpoints = []obs.EndpointSLO{}
	}
	writeJSON(w, http.StatusOK, resp)
}
