package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"treesim/internal/faultfs"
)

// These tests pin the debug surface of the flight recorder: listing and
// filtering retained traces, fetching one by request ID, the SLO table,
// the loopback-only guard, and the recorder's behavior under concurrent
// query traffic and debug reads (the -race hammer).

// TestDebugTracesListAndGet: traffic through the real middleware stack
// lands in the recorder; the list endpoint filters and the get endpoint
// returns the full span tree for a listed request ID.
func TestDebugTracesListAndGet(t *testing.T) {
	_, hs, ts := newTestServer(t, quietConfig(), 40, 1)

	for i := 0; i < 10; i++ {
		if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[i].String(), K: 3}, nil); code != 200 {
			t.Fatalf("knn status %d", code)
		}
	}
	// A bad request errors with 400 — not retained as an error (only 5xx
	// spends error budget), but still offered as a normal request.
	if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: "not a tree", K: 3}, nil); code != 400 {
		t.Fatalf("bad knn status %d, want 400", code)
	}

	var list DebugTracesResponse
	if code := getJSON(t, hs.URL+"/debug/traces", &list); code != 200 {
		t.Fatalf("debug/traces status %d", code)
	}
	if list.Stats.Offered < 11 {
		t.Fatalf("recorder offered %d, want >= 11", list.Stats.Offered)
	}
	if len(list.Traces) == 0 {
		t.Fatal("no retained traces after 11 requests into an empty ring")
	}
	for _, tr := range list.Traces {
		if tr.Endpoint != "/v1/knn" {
			t.Fatalf("unexpected endpoint %q in retained trace", tr.Endpoint)
		}
		if tr.Trace.Name != "/v1/knn" {
			t.Fatalf("trace root span %q, want /v1/knn", tr.Trace.Name)
		}
	}

	// Endpoint filter: nothing was retained for /v1/range.
	var empty DebugTracesResponse
	if code := getJSON(t, hs.URL+"/debug/traces?endpoint=/v1/range", &empty); code != 200 {
		t.Fatalf("filtered list status %d", code)
	}
	if len(empty.Traces) != 0 {
		t.Fatalf("endpoint filter leaked %d traces", len(empty.Traces))
	}

	// Limit caps the result count.
	var limited DebugTracesResponse
	getJSON(t, hs.URL+"/debug/traces?limit=2", &limited)
	if len(limited.Traces) > 2 {
		t.Fatalf("limit=2 returned %d traces", len(limited.Traces))
	}

	// Get by ID round-trips the full entry.
	id := list.Traces[0].RequestID
	var one map[string]any
	if code := getJSON(t, hs.URL+"/debug/traces/"+id, &one); code != 200 {
		t.Fatalf("get %s status %d", id, code)
	}
	if one["request_id"] != id {
		t.Fatalf("get returned id %v, want %s", one["request_id"], id)
	}
	if code := getJSON(t, hs.URL+"/debug/traces/r00000000", nil); code != 404 {
		t.Fatalf("unknown id status %d, want 404", code)
	}

	// Bad filter parameters are rejected.
	if code := getJSON(t, hs.URL+"/debug/traces?min_us=abc", nil); code != 400 {
		t.Fatalf("min_us=abc status %d, want 400", code)
	}
}

// TestDebugSLO: served traffic shows up in the burn-rate table with the
// configured objectives.
func TestDebugSLO(t *testing.T) {
	cfg := quietConfig()
	cfg.SLOTarget = 0.95
	_, hs, ts := newTestServer(t, cfg, 30, 2)

	for i := 0; i < 5; i++ {
		postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[i].String(), K: 2}, nil)
	}
	var slo SLOResponse
	if code := getJSON(t, hs.URL+"/debug/slo", &slo); code != 200 {
		t.Fatalf("debug/slo status %d", code)
	}
	if slo.Target != 0.95 {
		t.Fatalf("slo target %v, want 0.95", slo.Target)
	}
	if slo.Degraded {
		t.Fatal("healthy server reports degraded on /debug/slo")
	}
	var knn *int
	for i, e := range slo.Endpoints {
		if e.Endpoint == "/v1/knn" {
			knn = &i
			break
		}
	}
	if knn == nil {
		t.Fatalf("no /v1/knn row in SLO table: %+v", slo.Endpoints)
	}
	e := slo.Endpoints[*knn]
	if e.Slow.Requests != 5 || e.Fast.Requests != 5 {
		t.Fatalf("slo windows %+v, want 5 requests in both", e)
	}
}

// TestDebugLoopbackOnly: a non-loopback peer gets 403 with the forbidden
// code on every debug endpoint, while loopback (the httptest transport)
// passes.
func TestDebugLoopbackOnly(t *testing.T) {
	s, hs, _ := newTestServer(t, quietConfig(), 10, 3)

	// httptest.NewRequest's default RemoteAddr is 192.0.2.1:1234 —
	// exactly the non-loopback peer the guard must refuse.
	for _, path := range []string{"/debug/traces", "/debug/traces/r1", "/debug/slo"} {
		r := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusForbidden {
			t.Fatalf("%s from non-loopback: status %d, want 403", path, w.Code)
		}
		var er ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Code != ErrCodeForbidden {
			t.Fatalf("%s error envelope %+v (err %v), want code %q", path, er, err, ErrCodeForbidden)
		}
	}

	// The real loopback connection is allowed.
	if code := getJSON(t, hs.URL+"/debug/slo", nil); code != 200 {
		t.Fatalf("loopback /debug/slo status %d, want 200", code)
	}
}

// TestDegradedRequestRetainedAsErrorTrace: a 503 not_durable write
// produces a retained errored trace tagged degraded, and /debug/slo
// reports the degraded window — the incident leaves evidence behind.
func TestDegradedRequestRetainedAsErrorTrace(t *testing.T) {
	_, hs := startDegradable(t, &faultfs.Injector{FailWriteN: 2})

	if code := postJSON(t, hs.URL+"/v1/trees", InsertRequest{Tree: "f(a,b)"}, nil); code != 503 {
		t.Fatalf("insert with failing WAL: status %d, want 503", code)
	}

	var list DebugTracesResponse
	if code := getJSON(t, hs.URL+"/debug/traces?error=1", &list); code != 200 {
		t.Fatalf("debug/traces status %d", code)
	}
	if len(list.Traces) == 0 {
		t.Fatal("503 write left no errored trace in the recorder")
	}
	tr := list.Traces[0]
	if tr.Endpoint != "/v1/trees" || tr.Status != 503 {
		t.Fatalf("errored trace %+v, want /v1/trees status 503", tr)
	}
	if tr.Class != "error" {
		t.Fatalf("trace class %q, want error", tr.Class)
	}
	if !tr.Degraded {
		t.Fatal("retained trace not tagged degraded")
	}
	if v, ok := tr.Trace.Attrs["degraded"].(bool); !ok || !v {
		t.Fatalf("root span attrs %v missing degraded=true", tr.Trace.Attrs)
	}

	var slo SLOResponse
	if code := getJSON(t, hs.URL+"/debug/slo", &slo); code != 200 {
		t.Fatalf("debug/slo status %d", code)
	}
	if !slo.Degraded || slo.DegradedReason != "wal_append" || slo.DegradedTotal != 1 {
		t.Fatalf("slo degraded view %+v, want degraded wal_append total 1",
			[]any{slo.Degraded, slo.DegradedReason, slo.DegradedTotal})
	}
	for _, e := range slo.Endpoints {
		if e.Endpoint == "/v1/trees" && e.Slow.Errors == 0 {
			t.Fatalf("/v1/trees SLO row recorded no errors: %+v", e)
		}
	}
}

// TestDebugTracesHammer: query writers and debug readers race on the
// recorder through the full HTTP stack; run under -race this is the
// ring-buffer concurrency check at the integration level.
func TestDebugTracesHammer(t *testing.T) {
	_, hs, ts := newTestServer(t, quietConfig(), 30, 4)

	const writers, readers, perWorker = 4, 3, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := ts[(w*perWorker+i)%len(ts)]
				body := fmt.Sprintf(`{"tree":%q,"k":2}`, q.String())
				resp, err := http.Post(hs.URL+"/v1/knn", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	for rdr := 0; rdr < readers; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Get(hs.URL + "/debug/traces")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				resp, err = http.Get(hs.URL + "/debug/slo")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	var list DebugTracesResponse
	if code := getJSON(t, hs.URL+"/debug/traces", &list); code != 200 {
		t.Fatalf("final list status %d", code)
	}
	if list.Stats.Offered < writers*perWorker {
		t.Fatalf("offered %d, want >= %d", list.Stats.Offered, writers*perWorker)
	}
	if list.Stats.Retained > list.Stats.Capacity {
		t.Fatalf("retained %d exceeds capacity %d", list.Stats.Retained, list.Stats.Capacity)
	}
}

// TestDebugTracesDisabled: a negative TraceRing disables the recorder and
// the endpoints answer 404 rather than serving an empty ring.
func TestDebugTracesDisabled(t *testing.T) {
	cfg := quietConfig()
	cfg.TraceRing = -1
	_, hs, _ := newTestServer(t, cfg, 10, 5)
	if code := getJSON(t, hs.URL+"/debug/traces", nil); code != 404 {
		t.Fatalf("disabled recorder list status %d, want 404", code)
	}
	if code := getJSON(t, hs.URL+"/debug/traces/r1", nil); code != 404 {
		t.Fatalf("disabled recorder get status %d, want 404", code)
	}
}
