package server

import (
	"math/rand"
	"time"

	"treesim/internal/wal"
)

// Degraded read-only mode: availability under storage faults.
//
// A write is only acknowledged after it is durable, so when durable
// writes start failing — a full disk (ENOSPC), a dying one (EIO on
// fsync), a permission flip — the server cannot accept writes. What it
// can still do is serve queries: they read lock-free epoch snapshots of
// the index and never touch the disk. Degraded mode is exactly that
// split, instead of the crash-on-fault a naive server would choose:
//
//	enter:  a WAL append/fsync or snapshot write fails
//	while:  queries answer normally; inserts and deletes fast-fail 503
//	        not_durable + Retry-After without touching the WAL; /readyz
//	        reports "degraded" (still 200 — the node serves reads);
//	        /metrics raises treesim_degraded with the entry reason
//	exit:   a background prober retries a durable write on a jittered
//	        interval; when one lands, a fresh snapshot re-covers the
//	        state and writes re-enable
//
// The probe is a no-op WAL record (wal.RecordProbe, skipped at replay)
// so healing is proven by the exact code path inserts depend on; without
// a WAL the probe is a snapshot attempt.

// enterDegraded flips the server read-only and starts the heal prober
// (unless one is already running or shutdown has begun). reason is a
// short stable label ("wal_append", "snapshot") for logs and metrics.
func (s *Server) enterDegraded(reason string, cause error) {
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	if s.degraded.Load() {
		return
	}
	s.degraded.Store(true)
	s.degradedReason = reason
	s.degradedTotal.Add(1)
	s.log.Error("entering degraded read-only mode: queries keep serving, writes get 503",
		"reason", reason, "err", cause)
	if s.probing || s.closing {
		return
	}
	s.probing = true
	s.bg.Add(1)
	go s.probeLoop()
}

// exitDegraded re-enables writes after a successful probe.
func (s *Server) exitDegraded() {
	s.degradedMu.Lock()
	reason := s.degradedReason
	s.degraded.Store(false)
	s.degradedReason = ""
	s.probing = false
	s.degradedMu.Unlock()
	s.log.Info("degraded mode cleared: durable writes re-enabled", "was", reason)
}

// degradedState reads the flag and reason consistently for /readyz and
// /metrics.
func (s *Server) degradedState() (bool, string) {
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	return s.degraded.Load(), s.degradedReason
}

// probeLoop retries a durable write until one lands or the server shuts
// down. The interval is jittered around Config.DegradedProbeInterval so
// a fleet of servers sharing a recovered disk array does not thunder
// back in lockstep.
func (s *Server) probeLoop() {
	defer s.bg.Done()
	base := s.cfg.DegradedProbeInterval
	for {
		wait := base/2 + time.Duration(rand.Int63n(int64(base)))
		select {
		case <-s.stopSnap:
			return
		case <-time.After(wait):
		}
		if s.tryHeal() {
			return
		}
	}
}

// tryHeal makes one durable-write attempt: a probe record through the
// WAL append+fsync path, then a snapshot so the covered state is durable
// again (and the log trims). Success clears degraded mode.
func (s *Server) tryHeal() bool {
	if s.wal != nil {
		s.walMu.Lock()
		err := s.wal.Append(wal.EncodeProbe())
		s.walMu.Unlock()
		if err != nil {
			s.log.Debug("degraded probe failed", "err", err)
			return false
		}
		s.walRecords.Add(1)
	}
	if s.cfg.SnapshotPath != "" {
		if err := s.Snapshot(); err != nil {
			s.log.Debug("degraded probe snapshot failed", "err", err)
			return false
		}
	}
	s.exitDegraded()
	return true
}
