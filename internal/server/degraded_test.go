package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"treesim/internal/faultfs"
	"treesim/internal/search"
)

// These tests pin the degraded read-only contract: a durable-write fault
// keeps the node serving queries, fast-fails writes with a retryable
// envelope, reports the state on /readyz and /metrics, and heals itself
// once the disk recovers.

// startDegradable starts a durable server whose filesystem is the given
// injector, with a slow prober so tests observe the degraded window.
func startDegradable(t *testing.T, inj *faultfs.Injector) (*Server, *httptest.Server) {
	t.Helper()
	cfg := durableConfig(t.TempDir())
	cfg.DegradedProbeInterval = time.Minute // effectively "no auto-heal during the test"
	ix := search.NewIndex(testDataset(10, 1), search.NewBiBranch())
	s := New(ix, cfg)
	s.fs = inj
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, hs
}

// TestDegradedServesReadsRejectsWrites: after a WAL append fault, queries
// keep answering while inserts and deletes get 503 + not_durable +
// Retry-After — the delete without ever touching the WAL again.
func TestDegradedServesReadsRejectsWrites(t *testing.T) {
	// Write 1 is the WAL magic; write 2 (the first append) fails and all
	// later writes succeed — so any 503 after the first proves the
	// fast-path, not a fresh disk error.
	s, hs := startDegradable(t, &faultfs.Injector{FailWriteN: 2})

	if code := postJSON(t, hs.URL+"/v1/trees", InsertRequest{Tree: "f(a,b)"}, nil); code != 503 {
		t.Fatalf("insert with failing WAL: status %d, want 503", code)
	}

	// Writes are refused with the retryable envelope.
	body, _ := json.Marshal(InsertRequest{Tree: "g(c,d)"})
	resp, err := http.Post(hs.URL+"/v1/trees", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("degraded insert: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded insert: no Retry-After header")
	}
	var envelope ErrorResponse
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatalf("degraded insert body %q: %v", raw, err)
	}
	if envelope.Error.Code != ErrCodeNotDurable {
		t.Fatalf("degraded insert code %q, want %q", envelope.Error.Code, ErrCodeNotDurable)
	}

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/trees/3", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 503 {
		t.Fatalf("degraded delete: status %d, want 503", dresp.StatusCode)
	}

	// Queries still serve, and nothing leaked into the index.
	var qr QueryResponse
	if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: "a(b,c)", K: 3}, &qr); code != 200 {
		t.Fatalf("degraded KNN: status %d, want 200", code)
	}
	if len(qr.Results) != 3 {
		t.Fatalf("degraded KNN returned %d results, want 3", len(qr.Results))
	}
	if got := s.ix.Size(); got != 10 {
		t.Fatalf("index size %d after refused writes, want 10", got)
	}
}

// TestDegradedObservability: /readyz reports the state (still 200 — the
// node serves reads) and /metrics carries the gauge, reason and counter
// in both JSON and Prometheus form.
func TestDegradedObservability(t *testing.T) {
	s, hs := startDegradable(t, &faultfs.Injector{FailWriteN: 2})
	if code := postJSON(t, hs.URL+"/v1/trees", InsertRequest{Tree: "f(a,b)"}, nil); code != 503 {
		t.Fatalf("insert with failing WAL: status %d, want 503", code)
	}

	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("degraded /readyz status %d, want 200 (reads still serve)", resp.StatusCode)
	}
	if ready.Status != "degraded" || ready.DegradedReason != "wal_append" {
		t.Fatalf("degraded /readyz = %+v, want degraded/wal_append", ready)
	}

	var snap Snapshot
	getJSON(t, hs.URL+"/metrics", &snap)
	if snap.Degraded != 1 || snap.DegradedReason != "wal_append" || snap.DegradedTotal != 1 {
		t.Fatalf("metrics degraded=%d reason=%q total=%d, want 1/wal_append/1",
			snap.Degraded, snap.DegradedReason, snap.DegradedTotal)
	}
	if snap.WALSegments < 1 {
		t.Fatalf("metrics wal_segments = %d, want >= 1", snap.WALSegments)
	}

	presp, err := http.Get(hs.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	for _, want := range []string{
		`treesim_degraded{reason="wal_append"} 1`,
		"treesim_degraded_total 1",
		"treesim_wal_segments 1",
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("prom output missing %q:\n%s", want, prom)
		}
	}
	_ = s
}
