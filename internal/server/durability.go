package server

import (
	"fmt"

	"treesim/internal/tree"
	"treesim/internal/wal"
)

// Durability: the server's write-ahead log and startup recovery.
//
// Every accepted insert is appended to the WAL (Config.WALPath) before
// the HTTP response acknowledges it, so the acknowledged index state is
// reconstructible from disk at any crash point:
//
//	startup: snapshot-load (cmd/treesimd) → Recover: WAL replay →
//	         post-replay snapshot → WAL trim
//	running: insert → WAL append (fsync per policy) → apply → ack
//	snapshot: capture WAL offset → consistent index cut → write/verify/
//	          rename → trim the WAL below the captured offset
//
// WAL records are typed (wal.DecodeRecord): inserts carry the dataset id
// the insert was assigned plus the tree text, tombstones carry the
// deleted id. Ids make replay idempotent: an insert whose id is already
// inside the loaded snapshot is skipped, and a tombstone re-applied to an
// already-deleted id is a no-op — so the overlap window between a
// snapshot's consistent cut and the subsequent trim never duplicates
// work. An insert id beyond the index's end means records are missing (a
// foreign or mismatched log) and recovery refuses to guess.

// RecoveryResult describes what Recover reconstructed.
type RecoveryResult struct {
	// Replayed counts WAL records applied to the index — inserts that
	// were acknowledged but not yet in the snapshot when the process
	// died.
	Replayed int
	// Skipped counts records already covered by the loaded snapshot.
	Skipped int
	// TornTail reports that the log ended in a torn or corrupt record
	// (discarded; everything acknowledged before it was recovered).
	TornTail bool
	// Snapshotted reports that a post-replay snapshot was written (and
	// the WAL trimmed), making the recovered state durable again.
	Snapshotted bool
}

func (r RecoveryResult) String() string {
	return fmt.Sprintf("replayed %d, skipped %d, torn tail %v, snapshotted %v",
		r.Replayed, r.Skipped, r.TornTail, r.Snapshotted)
}

// Recover replays the write-ahead log into the index and opens it for
// appending. Call it after loading the snapshot and before Serve; without
// Config.WALPath it is a no-op. While Recover runs, /readyz answers 503
// with the replay progress.
//
// After a replay that applied records, the recovered state is immediately
// persisted to Config.SnapshotPath (when set) and the WAL trimmed, so a
// second crash cannot replay twice against a stale snapshot (harmless,
// but slow) and the log does not grow across restarts.
func (s *Server) Recover() (RecoveryResult, error) {
	if s.cfg.WALPath == "" {
		return RecoveryResult{}, nil
	}
	s.recovering.Store(true)
	defer s.recovering.Store(false)

	var res RecoveryResult
	rres, err := wal.Replay(s.cfg.WALPath, s.fs, func(p []byte) error {
		rec, err := wal.DecodeRecord(p)
		if err != nil {
			return err
		}
		switch rec.Type {
		case wal.RecordInsert:
			size := s.ix.Size()
			switch {
			case rec.ID < size:
				res.Skipped++
				return nil
			case rec.ID > size:
				return fmt.Errorf("record for position %d but the index ends at %d — "+
					"the log does not belong to this snapshot", rec.ID, size)
			}
			t, err := tree.Parse(rec.Tree)
			if err != nil {
				return fmt.Errorf("position %d: %w", rec.ID, err)
			}
			if _, err := s.ix.Insert(t); err != nil {
				return fmt.Errorf("position %d: %w", rec.ID, err)
			}
		case wal.RecordTombstone:
			if rec.ID >= s.ix.Size() {
				return fmt.Errorf("tombstone for position %d but the index ends at %d — "+
					"the log does not belong to this snapshot", rec.ID, s.ix.Size())
			}
			// An already-deleted id reports false: the snapshot covered the
			// delete, the record replays as a no-op.
			if !s.ix.Delete(rec.ID) {
				res.Skipped++
				return nil
			}
		case wal.RecordProbe:
			// Durability probes appended by degraded mode carry no state.
			return nil
		default:
			return fmt.Errorf("unhandled record type %d", rec.Type)
		}
		res.Replayed++
		s.replayProgress.Add(1)
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("server: wal replay: %w", err)
	}
	res.TornTail = rres.Torn

	maxSeg := s.cfg.WALMaxBytes
	if maxSeg < 0 {
		maxSeg = 0 // rotation disabled
	}
	l, err := wal.Open(s.cfg.WALPath, wal.Options{
		Sync:            s.cfg.WALSync,
		FS:              s.fs,
		MaxSegmentBytes: maxSeg,
		AppendHist:      s.metrics.WALAppend,
		FsyncHist:       s.metrics.WALFsync,
	})
	if err != nil {
		return res, fmt.Errorf("server: wal open: %w", err)
	}
	s.wal = l
	s.walReplayed.Store(uint64(res.Replayed))
	s.log.Info("wal recovery", "path", s.cfg.WALPath,
		"replayed", res.Replayed, "skipped", res.Skipped, "torn_tail", res.TornTail,
		"segments", l.Segments())

	if rres.Records > 0 && s.cfg.SnapshotPath != "" {
		if err := s.Snapshot(); err != nil {
			// The replayed state is correct in memory and still covered by
			// the WAL on disk; a snapshot failure here is a storage fault,
			// not a recovery failure. Start serving reads and let the
			// degraded prober re-establish durable writes.
			s.log.Error("post-recovery snapshot failed", "err", err)
			s.enterDegraded("snapshot", err)
		} else {
			res.Snapshotted = true
		}
	}
	return res, nil
}

// appendToWAL logs one insert before it is applied; called with walMu
// held. A nil s.wal (no WAL configured, or Recover not called) appends
// nothing.
func (s *Server) appendToWAL(id int, t *tree.Tree) error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Append(wal.EncodeInsert(id, t.String())); err != nil {
		return err
	}
	s.walRecords.Add(1)
	return nil
}

// appendTombstoneToWAL logs one delete before it is applied; called with
// walMu held.
func (s *Server) appendTombstoneToWAL(id int) error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Append(wal.EncodeTombstone(id)); err != nil {
		return err
	}
	s.walRecords.Add(1)
	return nil
}
