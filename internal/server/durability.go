package server

import (
	"encoding/binary"
	"fmt"

	"treesim/internal/tree"
	"treesim/internal/wal"
)

// Durability: the server's write-ahead log and startup recovery.
//
// Every accepted insert is appended to the WAL (Config.WALPath) before
// the HTTP response acknowledges it, so the acknowledged index state is
// reconstructible from disk at any crash point:
//
//	startup: snapshot-load (cmd/treesimd) → Recover: WAL replay →
//	         post-replay snapshot → WAL trim
//	running: insert → WAL append (fsync per policy) → apply → ack
//	snapshot: capture WAL offset → consistent index cut → write/verify/
//	          rename → trim the WAL below the captured offset
//
// WAL records carry the dataset position the insert was assigned, which
// makes replay idempotent: records whose position is already inside the
// loaded snapshot are skipped, so the overlap window between a snapshot's
// consistent cut and the subsequent trim never duplicates trees. A
// position beyond the index's end means records are missing (a foreign or
// mismatched log) and recovery refuses to guess.

// insertRecord is the WAL payload of one insert: u32 dataset position
// (little-endian) followed by the tree's canonical text.
func encodeInsertRecord(id int, text string) []byte {
	buf := make([]byte, 4+len(text))
	binary.LittleEndian.PutUint32(buf[:4], uint32(id))
	copy(buf[4:], text)
	return buf
}

func decodeInsertRecord(p []byte) (id int, text string, err error) {
	if len(p) < 4 {
		return 0, "", fmt.Errorf("insert record of %d bytes", len(p))
	}
	return int(binary.LittleEndian.Uint32(p[:4])), string(p[4:]), nil
}

// RecoveryResult describes what Recover reconstructed.
type RecoveryResult struct {
	// Replayed counts WAL records applied to the index — inserts that
	// were acknowledged but not yet in the snapshot when the process
	// died.
	Replayed int
	// Skipped counts records already covered by the loaded snapshot.
	Skipped int
	// TornTail reports that the log ended in a torn or corrupt record
	// (discarded; everything acknowledged before it was recovered).
	TornTail bool
	// Snapshotted reports that a post-replay snapshot was written (and
	// the WAL trimmed), making the recovered state durable again.
	Snapshotted bool
}

func (r RecoveryResult) String() string {
	return fmt.Sprintf("replayed %d, skipped %d, torn tail %v, snapshotted %v",
		r.Replayed, r.Skipped, r.TornTail, r.Snapshotted)
}

// Recover replays the write-ahead log into the index and opens it for
// appending. Call it after loading the snapshot and before Serve; without
// Config.WALPath it is a no-op. While Recover runs, /readyz answers 503
// with the replay progress.
//
// After a replay that applied records, the recovered state is immediately
// persisted to Config.SnapshotPath (when set) and the WAL trimmed, so a
// second crash cannot replay twice against a stale snapshot (harmless,
// but slow) and the log does not grow across restarts.
func (s *Server) Recover() (RecoveryResult, error) {
	if s.cfg.WALPath == "" {
		return RecoveryResult{}, nil
	}
	s.recovering.Store(true)
	defer s.recovering.Store(false)

	var res RecoveryResult
	rres, err := wal.Replay(s.cfg.WALPath, s.fs, func(p []byte) error {
		id, text, err := decodeInsertRecord(p)
		if err != nil {
			return err
		}
		size := s.ix.Size()
		switch {
		case id < size:
			res.Skipped++
			return nil
		case id > size:
			return fmt.Errorf("record for position %d but the index ends at %d — "+
				"the log does not belong to this snapshot", id, size)
		}
		t, err := tree.Parse(text)
		if err != nil {
			return fmt.Errorf("position %d: %w", id, err)
		}
		if _, err := s.ix.Insert(t); err != nil {
			return fmt.Errorf("position %d: %w", id, err)
		}
		res.Replayed++
		s.replayProgress.Add(1)
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("server: wal replay: %w", err)
	}
	res.TornTail = rres.Torn

	l, err := wal.Open(s.cfg.WALPath, wal.Options{
		Sync:       s.cfg.WALSync,
		FS:         s.fs,
		AppendHist: s.metrics.WALAppend,
		FsyncHist:  s.metrics.WALFsync,
	})
	if err != nil {
		return res, fmt.Errorf("server: wal open: %w", err)
	}
	s.wal = l
	s.walReplayed.Store(uint64(res.Replayed))
	s.log.Info("wal recovery", "path", s.cfg.WALPath,
		"replayed", res.Replayed, "skipped", res.Skipped, "torn_tail", res.TornTail)

	if rres.Records > 0 && s.cfg.SnapshotPath != "" {
		if err := s.Snapshot(); err != nil {
			return res, fmt.Errorf("server: post-recovery snapshot: %w", err)
		}
		res.Snapshotted = true
	}
	return res, nil
}

// appendToWAL logs one insert before it is applied; called with walMu
// held. A nil s.wal (no WAL configured, or Recover not called) appends
// nothing.
func (s *Server) appendToWAL(id int, t *tree.Tree) error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Append(encodeInsertRecord(id, t.String())); err != nil {
		return err
	}
	s.walRecords.Add(1)
	return nil
}
