package server

import (
	"context"
	"encoding/binary"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"treesim/internal/faultfs"
	"treesim/internal/search"
	"treesim/internal/wal"
)

// These tests prove the durability contract end to end: an insert the
// server acknowledged survives any single crash point. Each scenario
// "crashes" by abandoning the in-memory server and rebuilding a fresh one
// from nothing but the on-disk snapshot and WAL — exactly what a
// restarted process would see.

// durableConfig is quietConfig with snapshot and WAL paths under dir.
func durableConfig(dir string) Config {
	cfg := quietConfig()
	cfg.SnapshotPath = filepath.Join(dir, "index.tsix")
	cfg.WALPath = filepath.Join(dir, "wal.log")
	return cfg
}

// startDurable builds a server over a fresh dataset, runs recovery
// (which opens the WAL), and writes a baseline snapshot to disk.
func startDurable(t *testing.T, cfg Config, n int) (*Server, *httptest.Server) {
	t.Helper()
	ix := search.NewIndex(testDataset(n, 1), search.NewBiBranch())
	s := New(ix, cfg)
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// restartDurable models a process restart: load the snapshot from disk
// exactly as cmd/treesimd would, then run recovery.
func restartDurable(t *testing.T, cfg Config) (*Server, RecoveryResult) {
	t.Helper()
	f, err := os.Open(cfg.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ix, err := search.LoadIndex(f)
	if err != nil {
		t.Fatalf("reloading snapshot: %v", err)
	}
	s := New(ix, cfg)
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return s, rec
}

func insertTree(t *testing.T, base, text string) {
	t.Helper()
	if code := postJSON(t, base+"/v1/trees", InsertRequest{Tree: text}, nil); code != 200 {
		t.Fatalf("insert %q: status %d", text, code)
	}
}

// expectTree checks the tree at dataset position id.
func expectTree(t *testing.T, s *Server, id int, want string) {
	t.Helper()
	tr, ok := s.ix.TreeAt(id)
	if !ok {
		t.Fatalf("no tree at position %d", id)
	}
	if tr.String() != want {
		t.Fatalf("tree %d = %q, want %q", id, tr.String(), want)
	}
}

// TestInsertSurvivesCrashBeforeSnapshot: the process dies after
// acknowledging inserts but before any snapshot covers them; the WAL
// alone carries them across the restart.
func TestInsertSurvivesCrashBeforeSnapshot(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	s, hs := startDurable(t, cfg, 20)

	inserted := []string{"crash(a(b),c)", "crash2(x,y(z))"}
	for _, text := range inserted {
		insertTree(t, hs.URL, text)
	}
	// Crash: no Shutdown, no snapshot — drop everything in memory.
	hs.Close()
	s.wal.Close()

	s2, rec := restartDurable(t, cfg)
	if rec.Replayed != len(inserted) {
		t.Fatalf("recovery %s, want %d replayed", rec, len(inserted))
	}
	if !rec.Snapshotted {
		t.Fatalf("recovery %s: replayed records not re-persisted", rec)
	}
	if got := s2.ix.Size(); got != 20+len(inserted) {
		t.Fatalf("recovered index holds %d trees, want %d", got, 20+len(inserted))
	}
	for i, text := range inserted {
		expectTree(t, s2, 20+i, text)
	}

	// The recovered server reports the replay on /readyz and /metrics.
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	var ready ReadyResponse
	if code := getJSON(t, hs2.URL+"/readyz", &ready); code != 200 {
		t.Fatalf("readyz status %d", code)
	}
	if ready.Status != "ready" || ready.ReplayedRecords != uint64(len(inserted)) {
		t.Fatalf("readyz = %+v, want ready with %d replayed", ready, len(inserted))
	}
	var snap Snapshot
	if code := getJSON(t, hs2.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if snap.WALReplayedRecords != uint64(len(inserted)) {
		t.Fatalf("metrics wal_replayed_records = %d, want %d", snap.WALReplayedRecords, len(inserted))
	}
	s2.wal.Close()

	// Recovery snapshotted and trimmed, so a third start replays nothing.
	s3, rec3 := restartDurable(t, cfg)
	if rec3.Replayed != 0 || rec3.Skipped != 0 {
		t.Fatalf("second recovery %s, want a clean log", rec3)
	}
	if got := s3.ix.Size(); got != 20+len(inserted) {
		t.Fatalf("third start holds %d trees, want %d", got, 20+len(inserted))
	}
	s3.wal.Close()
}

// TestCorruptWALTailRecoversPrefix: a bit flip in the last WAL record
// (a torn disk write) costs exactly that record; every earlier insert
// is recovered.
func TestCorruptWALTailRecoversPrefix(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	s, hs := startDurable(t, cfg, 20)

	inserted := []string{"w0(a,b)", "w1(c(d),e)", "w2(f,g(h))"}
	for _, text := range inserted {
		insertTree(t, hs.URL, text)
	}
	hs.Close()
	s.wal.Close()

	raw, err := os.ReadFile(wal.SegmentPath(cfg.WALPath, 1))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(wal.SegmentPath(cfg.WALPath, 1), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := restartDurable(t, cfg)
	if !rec.TornTail {
		t.Fatalf("recovery %s: corrupt tail not detected", rec)
	}
	if rec.Replayed != 2 {
		t.Fatalf("recovery %s, want 2 replayed (valid prefix)", rec)
	}
	if got := s2.ix.Size(); got != 22 {
		t.Fatalf("recovered index holds %d trees, want 22", got)
	}
	expectTree(t, s2, 20, inserted[0])
	expectTree(t, s2, 21, inserted[1])
	s2.wal.Close()
}

// TestCrashDuringSnapshotKeepsWAL: a power cut at the snapshot's
// publish point (temp file written, rename lost) leaves the old
// snapshot intact and the WAL untrimmed, so the acknowledged insert
// still recovers.
func TestCrashDuringSnapshotKeepsWAL(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	s, hs := startDurable(t, cfg, 20)

	insertTree(t, hs.URL, "mid(snap,shot)")

	inj := &faultfs.Injector{CrashOnRename: true}
	s.fs = inj
	if err := s.Snapshot(); err == nil {
		t.Fatal("snapshot published through a crashed filesystem")
	}
	if !inj.Crashed() {
		t.Fatal("injector never reached its crash point")
	}
	hs.Close()
	s.wal.Close()

	s2, rec := restartDurable(t, cfg)
	if rec.Replayed != 1 {
		t.Fatalf("recovery %s, want the acknowledged insert replayed", rec)
	}
	if got := s2.ix.Size(); got != 21 {
		t.Fatalf("recovered index holds %d trees, want 21", got)
	}
	expectTree(t, s2, 20, "mid(snap,shot)")
	s2.wal.Close()
}

// TestLegacyWALReplaysCleanly: a log written before typed records existed
// — every payload a raw (u32 id | tree text) insert, no tombstones —
// must replay unchanged. The records are hand-built bytes, not
// wal.EncodeInsert output, so the test holds even if the encoder drifts.
func TestLegacyWALReplaysCleanly(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	s, hs := startDurable(t, cfg, 20)
	hs.Close()
	s.wal.Close()

	l, err := wal.Open(cfg.WALPath, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	legacy := func(id int, text string) []byte {
		p := make([]byte, 4+len(text))
		binary.LittleEndian.PutUint32(p[:4], uint32(id))
		copy(p[4:], text)
		return p
	}
	for i, text := range []string{"old0(a,b)", "old1(c(d),e)"} {
		if err := l.Append(legacy(20+i, text)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec := restartDurable(t, cfg)
	if rec.Replayed != 2 || rec.TornTail {
		t.Fatalf("recovery %s, want 2 replayed from the legacy log", rec)
	}
	expectTree(t, s2, 20, "old0(a,b)")
	expectTree(t, s2, 21, "old1(c(d),e)")
	s2.wal.Close()
}

// TestDeleteSurvivesCrash: an acknowledged DELETE is a WAL tombstone; a
// crash before any snapshot covers it must not resurrect the tree. The
// log also mixes insert and tombstone records with a torn tail, proving
// the typed-record replay inherits the prefix-recovery semantics.
func TestDeleteSurvivesCrash(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	s, hs := startDurable(t, cfg, 20)

	insertTree(t, hs.URL, "mix0(a,b)")
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/trees/3", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	insertTree(t, hs.URL, "mix1(c,d)")
	hs.Close()
	s.wal.Close()

	// Tear the log's last record (the second insert): the delete and the
	// first insert are the recoverable prefix.
	raw, err := os.ReadFile(wal.SegmentPath(cfg.WALPath, 1))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(wal.SegmentPath(cfg.WALPath, 1), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := restartDurable(t, cfg)
	if !rec.TornTail || rec.Replayed != 2 {
		t.Fatalf("recovery %s, want torn tail with 2 replayed", rec)
	}
	if _, ok := s2.ix.TreeAt(3); ok {
		t.Fatal("deleted tree resurrected by replay")
	}
	expectTree(t, s2, 20, "mix0(a,b)")
	if got, want := s2.ix.Size(), 21; got != want {
		t.Fatalf("recovered size %d, want %d", got, want)
	}
	if got, want := s2.ix.Live(), 20; got != want {
		t.Fatalf("recovered live count %d, want %d", got, want)
	}
	s2.wal.Close()
}

// TestWALAppendFailureRefusesInsert: when the WAL write fails, the
// insert is neither acknowledged nor applied — durability before
// acknowledgment also means no acknowledgment without durability. The
// failure also flips the server into degraded read-only mode, so
// follow-up writes are refused until the background prober verifies the
// disk has healed.
func TestWALAppendFailureRefusesInsert(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	cfg.DegradedProbeInterval = 5 * time.Millisecond
	// Write 1 is the WAL magic at Open; write 2 is the first append.
	inj := &faultfs.Injector{FailWriteN: 2}
	ix := search.NewIndex(testDataset(10, 1), search.NewBiBranch())
	s := New(ix, cfg)
	s.fs = inj
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	if code := postJSON(t, hs.URL+"/v1/trees", InsertRequest{Tree: "f(a,b)"}, nil); code != 503 {
		t.Fatalf("insert with failing WAL: status %d, want 503", code)
	}
	if got := s.ix.Size(); got != 10 {
		t.Fatalf("refused insert leaked into the index (size %d, want 10)", got)
	}
	var ready ReadyResponse
	getJSON(t, hs.URL+"/readyz", &ready)
	if ready.Status != "degraded" || ready.DegradedReason != "wal_append" {
		t.Fatalf("readyz after WAL failure: %+v, want degraded/wal_append", ready)
	}

	// The fault was one-shot: once the prober re-verifies the disk, a
	// retried insert succeeds and lands at the position the failed
	// attempt would have taken.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var resp InsertResponse
		code := postJSON(t, hs.URL+"/v1/trees", InsertRequest{Tree: "f(a,b)"}, &resp)
		if code == 200 {
			break
		}
		if code != 503 {
			t.Fatalf("retried insert: status %d, want 200 or 503", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recovered from one-shot WAL failure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.ix.Size(); got != 11 {
		t.Fatalf("retried insert missing (size %d, want 11)", got)
	}
	expectTree(t, s, 10, "f(a,b)")
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
