package server

import (
	"bufio"
	"encoding/json"
	"log/slog"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"treesim/internal/qlog"
)

// TestExplainKNN: ?explain=1 returns the query's filter-quality analysis —
// candidate count, false positives, bound distribution and tightness
// samples respecting the proven factor bound.
func TestExplainKNN(t *testing.T) {
	s, hs, ts := newTestServer(t, quietConfig(), 60, 60)

	var resp QueryResponse
	if code := postJSON(t, hs.URL+"/v1/knn?explain=1", KNNRequest{Tree: ts[7].String(), K: 5}, &resp); code != 200 {
		t.Fatalf("knn status %d", code)
	}
	ex := resp.Explain
	if ex == nil {
		t.Fatal("no explain in response")
	}
	if ex.Op != "knn" || ex.K != 5 {
		t.Errorf("explain op=%q k=%d, want knn/5", ex.Op, ex.K)
	}
	if ex.Filter != s.Index().Filter().Name() {
		t.Errorf("explain filter %q, want %q", ex.Filter, s.Index().Filter().Name())
	}
	if ex.Dataset != 60 {
		t.Errorf("explain dataset %d, want 60", ex.Dataset)
	}
	if ex.Candidates <= 0 || ex.Candidates > 60 {
		t.Errorf("explain candidates %d outside (0,60]", ex.Candidates)
	}
	if ex.Verified < ex.Results {
		t.Errorf("verified %d < results %d", ex.Verified, ex.Results)
	}
	if ex.FalsePositives != ex.Verified-ex.Results {
		t.Errorf("false positives %d != verified-results %d", ex.FalsePositives, ex.Verified-ex.Results)
	}
	if ex.Bounds.Computed != 60 {
		t.Errorf("bounds computed %d, want 60", ex.Bounds.Computed)
	}
	if ex.Bounds.Min > ex.Bounds.P50 || ex.Bounds.P50 > ex.Bounds.P99 || ex.Bounds.P99 > ex.Bounds.Max {
		t.Errorf("bound distribution not monotone: %+v", ex.Bounds)
	}
	// A non-trivial index yields at least one verified pair at exact
	// distance > 0, so the BiBranch filter must produce tightness samples,
	// each within the proven Factor(q) limit.
	if len(ex.Tightness) == 0 {
		t.Fatal("no tightness samples on a 60-tree index")
	}
	if ex.TightnessLimit != 5 {
		t.Errorf("tightness limit %d, want 5 (q=2)", ex.TightnessLimit)
	}
	for _, smp := range ex.Tightness {
		if smp.Exact <= 0 || smp.BDist < 0 {
			t.Errorf("degenerate sample %+v", smp)
		}
		if smp.Ratio > float64(ex.TightnessLimit) {
			t.Errorf("sample ratio %.3f exceeds proven limit %d", smp.Ratio, ex.TightnessLimit)
		}
	}
	// Stats and explain agree on the shared counters.
	if resp.Stats.Candidates != ex.Candidates || resp.Stats.FalsePositives != ex.FalsePositives {
		t.Errorf("stats %+v disagree with explain %+v", resp.Stats, ex)
	}

	// Without the parameter the field stays absent.
	var plain map[string]json.RawMessage
	postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[7].String(), K: 5}, &plain)
	if _, ok := plain["explain"]; ok {
		t.Error("unexplained response carries an explain field")
	}
}

// TestExplainRange: same contract on the range endpoint.
func TestExplainRange(t *testing.T) {
	_, hs, ts := newTestServer(t, quietConfig(), 50, 61)
	var resp QueryResponse
	if code := postJSON(t, hs.URL+"/v1/range?explain=1", RangeRequest{Tree: ts[3].String(), Tau: 4}, &resp); code != 200 {
		t.Fatalf("range status %d", code)
	}
	ex := resp.Explain
	if ex == nil {
		t.Fatal("no explain in response")
	}
	if ex.Op != "range" || ex.Tau != 4 {
		t.Errorf("explain op=%q tau=%d, want range/4", ex.Op, ex.Tau)
	}
	if ex.Candidates < ex.Verified {
		t.Errorf("candidates %d < verified %d", ex.Candidates, ex.Verified)
	}
	if ex.FalsePositives != ex.Verified-ex.Results {
		t.Errorf("false positives %d != verified-results %d", ex.FalsePositives, ex.Verified-ex.Results)
	}
	if ex.Bounds.Computed == 0 {
		t.Error("range explain computed no bounds")
	}
}

// TestSlowQueryExplain: a slow-query record carries the EXPLAIN analysis
// even when the client did not ask for it.
func TestSlowQueryExplain(t *testing.T) {
	var buf syncBuffer
	cfg := Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))}
	threshold := time.Duration(0)
	cfg.SlowQuery = &threshold
	_, hs, ts := newTestServer(t, cfg, 40, 62)

	if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[2].String(), K: 3}, nil); code != 200 {
		t.Fatalf("knn status %d", code)
	}
	var rec map[string]any
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var r map[string]any
		if json.Unmarshal(sc.Bytes(), &r) == nil && r["msg"] == "slow query" {
			rec = r
		}
	}
	if rec == nil {
		t.Fatalf("no slow-query record in log: %s", buf.String())
	}
	exm, ok := rec["explain"].(map[string]any)
	if !ok {
		t.Fatalf("slow-query record lacks explain: %v", rec)
	}
	if op, _ := exm["op"].(string); op != "knn" {
		t.Errorf("logged explain op %v, want knn", exm["op"])
	}
	if c, _ := exm["candidates"].(float64); c <= 0 {
		t.Errorf("logged explain candidates %v, want > 0", exm["candidates"])
	}
}

// TestQueryLogRecording: with Config.QueryLog set, served knn, range and
// batch inner queries land in the workload log as replayable records.
func TestQueryLogRecording(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.jsonl")
	w, err := qlog.Open(path, qlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quietConfig()
	cfg.QueryLog = w
	_, hs, ts := newTestServer(t, cfg, 30, 63)

	if code := postJSON(t, hs.URL+"/v1/knn", KNNRequest{Tree: ts[0].String(), K: 2}, nil); code != 200 {
		t.Fatalf("knn status %d", code)
	}
	if code := postJSON(t, hs.URL+"/v1/range", RangeRequest{Tree: ts[1].String(), Tau: 2}, nil); code != 200 {
		t.Fatalf("range status %d", code)
	}
	batch := BatchRequest{Op: "knn", Trees: []string{ts[2].String(), ts[3].String()}, K: 1}
	if code := postJSON(t, hs.URL+"/v1/batch", batch, nil); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, skipped, err := qlog.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d unreadable records", skipped)
	}
	if len(recs) != 4 {
		t.Fatalf("recorded %d queries, want 4 (knn + range + 2 batch)", len(recs))
	}
	ops := map[string]int{}
	for _, r := range recs {
		ops[r.Op]++
		if r.Tree == "" || r.Filter == "" {
			t.Errorf("incomplete record %+v", r)
		}
		if r.Stats.Dataset != 30 {
			t.Errorf("record dataset %d, want 30", r.Stats.Dataset)
		}
		if r.Stats.Candidates <= 0 {
			t.Errorf("record candidates %d, want > 0", r.Stats.Candidates)
		}
	}
	if ops["knn"] != 3 || ops["range"] != 1 {
		t.Fatalf("op mix %v, want knn:3 range:1", ops)
	}
}
