package server

import (
	"errors"
	"fmt"
	"os"

	"treesim/internal/faultfs"
	"treesim/internal/search"
)

// LoadSnapshotFallback loads the newest readable snapshot generation:
// generation 0 (the snapshot path itself) first, then each older
// generation the Snapshot publication chain retained, up to keep-1. A
// generation that does not exist is skipped; one that exists but fails
// to load (corrupt, truncated, wrong magic) is recorded and the next
// older one is tried — a damaged current snapshot therefore degrades
// recovery time (the WAL suffix to replay is longer) instead of
// preventing startup.
//
// It returns the loaded index and the generation it came from. When no
// generation file exists at all the error wraps os.ErrNotExist (a cold
// start, not a failure); when generations exist but none loads, the
// error joins every per-generation failure so the operator sees exactly
// what is damaged. A nil fsys means the real filesystem.
func LoadSnapshotFallback(fsys faultfs.FS, path string, keep int, opts ...search.IndexOption) (*search.Index, int, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	if keep < 1 {
		keep = 1
	}
	var errs []error
	for gen := 0; gen < keep; gen++ {
		name := SnapshotGeneration(path, gen)
		f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			errs = append(errs, fmt.Errorf("generation %d (%s): %w", gen, name, err))
			continue
		}
		ix, lerr := search.LoadIndex(f, opts...)
		f.Close()
		if lerr == nil {
			return ix, gen, nil
		}
		errs = append(errs, fmt.Errorf("generation %d (%s): %w", gen, name, lerr))
	}
	if len(errs) == 0 {
		return nil, 0, fmt.Errorf("snapshot %s: %w", path, os.ErrNotExist)
	}
	return nil, 0, errors.Join(errs...)
}
